package obs

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		id := NewTraceID()
		if !hex16.MatchString(id) {
			t.Fatalf("NewTraceID() = %q, want 16 lowercase hex digits", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestTraceContextStringRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{Trace: "abc123"},
		{Trace: "abc123", Span: 0x1f},
		{Trace: "run-2026.08_x", Span: 0xdeadbeefcafe},
		NewTraceContext().WithSpan(7),
	}
	for _, tc := range cases {
		got, ok := ParseTraceContext(tc.String())
		if !ok || got != tc {
			t.Errorf("ParseTraceContext(%q) = %+v, %v; want %+v", tc.String(), got, ok, tc)
		}
	}
	if s := (TraceContext{}).String(); s != "" {
		t.Errorf("empty context String() = %q, want empty", s)
	}
}

func TestParseTraceContextRejects(t *testing.T) {
	bad := []string{
		"",
		"   ",
		"has space",
		"semi;colon",
		"slash/only/twice/x", // second separator lands in the span hex
		"id/notahexnumber",
		"id/",
		"/1f",
		strings.Repeat("a", maxTraceIDLen+1),
	}
	for _, s := range bad {
		if tc, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) accepted as %+v", s, tc)
		}
	}
	// Surrounding whitespace is tolerated (header values).
	if tc, ok := ParseTraceContext("  abc/2a \n"); !ok || tc.Trace != "abc" || tc.Span != 0x2a {
		t.Errorf("whitespace-wrapped parse = %+v, %v", tc, ok)
	}
}

func TestTraceContextThroughContext(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFrom(ctx); ok {
		t.Fatal("background context claims a trace")
	}
	tc := TraceContext{Trace: "t1", Span: 5}
	ctx = WithTrace(ctx, tc)
	if got, ok := TraceFrom(ctx); !ok || got != tc {
		t.Fatalf("TraceFrom = %+v, %v; want %+v", got, ok, tc)
	}
	// Invalid contexts do not displace a valid one.
	if got, _ := TraceFrom(WithTrace(ctx, TraceContext{})); got != tc {
		t.Errorf("invalid WithTrace displaced the carried trace: %+v", got)
	}
}

func TestTraceAttrs(t *testing.T) {
	base := []any{"k", "v"}
	if got := traceAttrs(context.Background(), base); len(got) != 2 {
		t.Errorf("untraced ctx grew attrs: %v", got)
	}
	ctx := WithTrace(context.Background(), TraceContext{Trace: "t1"})
	got := traceAttrs(ctx, base[:2:2])
	if len(got) != 4 || got[2] != "trace" || got[3] != "t1" {
		t.Errorf("traced attrs = %v", got)
	}
	ctx = WithTrace(context.Background(), TraceContext{Trace: "t1", Span: 0xab})
	got = traceAttrs(ctx, nil)
	if len(got) != 4 || got[3] != "ab" {
		t.Errorf("span attr = %v", got)
	}
}

// TestJournalWithTrace: a derived journal stamps every line with the
// trace attribute, while the parent stays untagged and keeps the closer.
func TestJournalWithTrace(t *testing.T) {
	var buf bytes.Buffer
	parent := NewJournal(&buf)
	tagged := parent.WithTrace(TraceContext{Trace: "abc123", Span: 9})

	parent.Event("untagged")
	tagged.Event("tagged", "k", "v")
	tagged.Error("tagged.err", context.Canceled)

	events := decodeLines(t, buf.Bytes())
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	if _, ok := events[0]["trace"]; ok {
		t.Errorf("parent journal line gained a trace attr: %v", events[0])
	}
	for _, e := range events[1:] {
		if e["trace"] != "abc123" {
			t.Errorf("tagged line missing trace: %v", e)
		}
	}
	if events[1]["schema"] != float64(SchemaVersion) {
		t.Errorf("derived journal lost the schema attr: %v", events[1])
	}

	// Nil and invalid cases degrade to the receiver.
	var nilJ *Journal
	if nilJ.WithTrace(TraceContext{Trace: "x"}) != nil {
		t.Error("nil journal WithTrace != nil")
	}
	if parent.WithTrace(TraceContext{}) != parent {
		t.Error("invalid trace did not return the parent unchanged")
	}
}
