package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// promName maps a dotted instrument name onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*: dots (and anything else outside the
// charset) become underscores, and a leading digit gains an underscore
// prefix.
func promName(name string) string {
	if name == "" {
		return "_"
	}
	b := make([]byte, 0, len(name)+1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
		default:
			c = '_'
		}
		b = append(b, c)
	}
	return string(b)
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): every family gets a # TYPE line, counters and
// gauges one sample each, histograms the standard cumulative
// _bucket{le="..."} series (ending at le="+Inf") plus _sum and _count.
// This is what the HTTP monitor's /metrics endpoint serves.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var names []string
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, snap.Gauges[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, strconv.FormatInt(bound, 10), cum); err != nil {
				return err
			}
		}
		cum += h.Counts[len(h.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			n, cum, n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
