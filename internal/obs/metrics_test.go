package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestConcurrentCounters hammers shared instruments from many goroutines;
// under -race this doubles as the data-race check for the hot paths.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("test.counter")
			ga := r.Gauge("test.gauge")
			h := r.Histogram("test.hist", []int64{10, 100, 1000})
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("test.counter").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("test.gauge").Value(); got != goroutines*perG {
		t.Errorf("gauge = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("test.hist", nil).Snapshot()
	if h.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count, goroutines*perG)
	}
	// Per goroutine: values 0..10 land ≤10 (11 of them), 11..100 in the
	// next bucket (90), 101..999 in the third (899), rest overflow.
	want := []int64{11 * goroutines, 90 * goroutines, 899 * goroutines, 0}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	var sum int64
	for i := int64(0); i < perG; i++ {
		sum += i
	}
	if h.Sum != sum*goroutines {
		t.Errorf("histogram sum = %d, want %d", h.Sum, sum*goroutines)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Error("same name resolved to different counters")
	}
	if r.Histogram("h", []int64{1, 2}) != r.Histogram("h", nil) {
		t.Error("same name resolved to different histograms")
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds accepted")
		}
	}()
	newHistogram([]int64{10, 10})
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.counter").Add(7)
	r.Gauge("a.gauge").Set(-3)
	h := r.Histogram("c.hist", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"a.gauge -3",
		"b.counter 7",
		"c.hist.count 3",
		"c.hist.le.10 1",
		"c.hist.le.100 2",
		"c.hist.le.inf 3",
		// One observation per bucket: the median interpolates to the
		// middle of the (10, 100] bucket; the tail quantiles land in the
		// +Inf bucket and clamp to the largest finite bound.
		"c.hist.p50 55",
		"c.hist.p95 100",
		"c.hist.p99 100",
		"c.hist.sum 555",
		"",
	}, "\n")
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for i := 0; i < 100; i++ {
		h.Observe(int64(i % 10)) // all 100 observations in the first bucket
	}
	s := h.Snapshot()
	// Whole population ≤ 10: interpolation inside the first bucket.
	if got := s.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %g, want 5", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Errorf("p100 = %g, want 10", got)
	}

	h2 := newHistogram([]int64{10})
	h2.Observe(99) // +Inf bucket only
	if got := h2.Snapshot().Quantile(0.5); got != 10 {
		t.Errorf("+Inf-bucket quantile = %g, want largest finite bound 10", got)
	}

	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}

	h3 := newHistogram([]int64{0, 1, 2})
	h3.Observe(0)
	h3.Observe(0)
	h3.Observe(1)
	// Zero-valued first bound must not interpolate below zero.
	if got := h3.Snapshot().Quantile(0.25); got != 0 {
		t.Errorf("p25 = %g, want 0", got)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	s := r.Snapshot()
	r.Counter("c").Inc()
	if s.Counters["c"] != 1 {
		t.Errorf("snapshot mutated by later increments: %d", s.Counters["c"])
	}
}
