package obs

import (
	"runtime/debug"
	"strings"
	"testing"
)

// TestBuildIsStableAndNonEmpty: every binary stamps the same non-empty
// identity into manifests, worker joins, and the build_info gauge.
func TestBuildIsStableAndNonEmpty(t *testing.T) {
	b := Build()
	if b == "" {
		t.Fatal("Build() returned empty")
	}
	if b != Build() {
		t.Error("Build() not stable across calls")
	}
}

func TestReadBuild(t *testing.T) {
	if got := readBuild(nil, false); got != "unknown" {
		t.Errorf("readBuild(nil) = %q, want unknown", got)
	}
	bi := &debug.BuildInfo{
		Main: debug.Module{Version: "(devel)"},
		Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: "0123456789abcdef0123456789abcdef01234567"},
			{Key: "vcs.modified", Value: "true"},
		},
	}
	got := readBuild(bi, true)
	if !strings.Contains(got, "0123456789ab") || !strings.HasSuffix(got, "+dirty") {
		t.Errorf("readBuild = %q, want 12-char revision with +dirty", got)
	}
	bi.Main.Version = "v1.2.3"
	bi.Settings = nil
	if got := readBuild(bi, true); got != "v1.2.3" {
		t.Errorf("readBuild = %q, want the module version", got)
	}
}

func TestSanitizeLabel(t *testing.T) {
	for in, want := range map[string]string{
		"v1.2.3":     "v1.2.3",
		"a b/c!":     "a_b_c_",
		"(devel)+ab": "_devel__ab",
	} {
		if got := SanitizeLabel(in); got != want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
	if got := SanitizeLabel(strings.Repeat("a", 100)); len(got) != 48 {
		t.Errorf("SanitizeLabel cap: got %d bytes, want 48", len(got))
	}
}

// TestRegisterBuildInfo: the registry grows a build_info.<version> gauge
// set to 1, the Prometheus-style identity carrier.
func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	snap := reg.Snapshot()
	found := false
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "build_info.") && v == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("no build_info gauge after RegisterBuildInfo: %v", snap.Gauges)
	}
	RegisterBuildInfo(nil) // must not panic
}
