package obs

import (
	"fmt"
	"testing"
)

// TestFanoutCountDrops: back-pressure losses accumulate on the attached
// registry counter across all subscribers, so /metrics exposes SSE event
// loss as fanout.dropped.
func TestFanoutCountDrops(t *testing.T) {
	reg := NewRegistry()
	f := NewFanout(0, 2) // no history, depth-2 channels
	f.CountDrops(reg.Counter("fanout.dropped"))

	slow1 := f.Subscribe()
	slow2 := f.Subscribe()
	defer slow1.Cancel()
	defer slow2.Cancel()

	const lines = 10
	for i := 0; i < lines; i++ {
		fmt.Fprintf(f, "{\"n\":%d}\n", i)
	}

	// Each depth-2 subscriber kept 2 and dropped the rest.
	wantPer := lines - 2
	if got := slow1.Dropped(); got != wantPer {
		t.Errorf("subscriber dropped = %d, want %d", got, wantPer)
	}
	if got := reg.Counter("fanout.dropped").Value(); got != int64(2*wantPer) {
		t.Errorf("fanout.dropped = %d, want %d", got, 2*wantPer)
	}

	// A nil counter detaches without disturbing delivery.
	f.CountDrops(nil)
	fmt.Fprint(f, "{\"n\":99}\n")
	if got := reg.Counter("fanout.dropped").Value(); got != int64(2*wantPer) {
		t.Errorf("detached counter still accumulated: %d", got)
	}

	var nilF *Fanout
	nilF.CountDrops(reg.Counter("x")) // must not panic
}
