package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRotatingWriterShiftsSegments: the live file stays under maxBytes,
// older segments shift path.1 → path.2 …, the oldest beyond keep falls
// off, and no line is ever split across segments or lost within the
// kept window.
func TestRotatingWriterShiftsSegments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	line := []byte(strings.Repeat("x", 39) + "\n") // 40 bytes
	rw, err := NewRotatingWriter(path, 100, 2)     // 2 lines per segment
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := rw.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.Close(); err != nil {
		t.Fatal(err)
	}
	// 9 lines, 2 per full segment: 4 rotations; keep=2 retains the last
	// two rotated segments plus the live file.
	if got := rw.Rotations(); got != 4 {
		t.Errorf("rotations = %d, want 4", got)
	}
	segs := SegmentPaths(path)
	want := []string{path + ".2", path + ".1", path}
	if len(segs) != len(want) {
		t.Fatalf("SegmentPaths = %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("SegmentPaths = %v, want %v", segs, want)
		}
	}
	if _, err := os.Stat(path + ".3"); !os.IsNotExist(err) {
		t.Errorf("segment beyond keep survived: %v", err)
	}
	var total int
	for _, s := range segs {
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if n := len(b); n%40 != 0 {
			t.Errorf("%s holds %d bytes — a line was split", s, n)
		}
		if int64(len(b)) > 100 {
			t.Errorf("%s is %d bytes, over the 100-byte bound", s, len(b))
		}
		total += len(b) / 40
	}
	// keep=2 bounds retention: the newest 2 full segments plus the live
	// tail survive; older lines fell off by design.
	if total != 5 {
		t.Errorf("kept %d lines, want 5 (2+2+1)", total)
	}
}

// TestRotatingWriterOversizedLine: a single line larger than maxBytes is
// written whole anyway — rotation bounds growth, it never drops data.
func TestRotatingWriterOversizedLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	rw, err := NewRotatingWriter(path, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	big := []byte(strings.Repeat("y", 50) + "\n")
	if _, err := rw.Write(big); err != nil {
		t.Fatal(err)
	}
	rw.Close()
	b, _ := os.ReadFile(path)
	if !bytes.Equal(b, big) {
		t.Errorf("oversized line mangled: %d bytes", len(b))
	}
}

// TestJournalRotationEvent: OpenJournalRotating stamps each fresh
// segment with a journal.rotated event (fired re-entrantly from the
// rotation callback), and the rotated set reads back as one stream.
func TestJournalRotationEvent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := OpenJournalRotating(path, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		j.Event("tick", "n", i)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, s := range SegmentPaths(path) {
		b, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	if !bytes.Contains(all, []byte(`"journal.rotated"`)) {
		t.Error("no journal.rotated event in the rotated set")
	}
	// The live segment must open with the rotation marker.
	live, _ := os.ReadFile(path)
	first := bytes.SplitN(live, []byte("\n"), 2)[0]
	if !bytes.Contains(first, []byte("journal.rotated")) {
		t.Errorf("live segment's first line is %s, want the rotation event", first)
	}
}

// TestOpenJournalRotatingFallbacks: stderr selectors and a zero byte
// bound degrade to the plain journal path.
func TestOpenJournalRotatingFallbacks(t *testing.T) {
	for _, path := range []string{"-", "stderr"} {
		j, err := OpenJournalRotating(path, 1024, 2)
		if err != nil {
			t.Fatalf("OpenJournalRotating(%q) = %v", path, err)
		}
		j.Close()
	}
	p := filepath.Join(t.TempDir(), "plain.jsonl")
	j, err := OpenJournalRotating(p, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	j.Event("only")
	j.Close()
	if got := SegmentPaths(p); len(got) != 1 || got[0] != p {
		t.Errorf("unrotated SegmentPaths = %v, want [%s]", got, p)
	}
}

// TestJournalRawSplicesAtomically: Raw lines and slog-encoded events
// interleave on whole-line boundaries even under contention — the
// coordinator splices shipped worker lines into a live fleet journal.
func TestJournalRawSplicesAtomically(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			j.Event("local", "n", i)
		}
	}()
	for i := 0; i < 100; i++ {
		j.Raw([]byte(fmt.Sprintf(`{"msg":"shipped","n":%d}`, i)))
	}
	<-done
	lines := bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n"))
	if len(lines) != 200 {
		t.Fatalf("got %d lines, want 200", len(lines))
	}
	for _, l := range lines {
		if !bytes.HasPrefix(l, []byte("{")) || !bytes.HasSuffix(l, []byte("}")) {
			t.Fatalf("interleaved line: %s", l)
		}
	}
	// Raw on a derived (writer-less) journal and a nil journal are no-ops.
	j.WithTrace(TraceContext{Trace: "t"}).Raw([]byte(`{"x":1}`))
	var nilJ *Journal
	nilJ.Raw([]byte(`{"x":1}`))
}
