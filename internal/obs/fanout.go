package obs

import (
	"bytes"
	"sync"
)

// Fanout is an io.Writer that broadcasts complete JSONL lines to
// subscribers, built to sit under a Journal and feed live consumers (the
// service's SSE event streams). It keeps a bounded replay history so a
// subscriber arriving mid-run still sees how the run got here, and it
// never blocks the writer: a subscriber that falls behind its channel
// buffer loses events (counted per subscription) rather than stalling
// the run that is producing them.
//
// The zero value is not usable; NewFanout sets the bounds. A nil *Fanout
// is a valid no-op writer-side sink.
type Fanout struct {
	mu      sync.Mutex
	buf     bytes.Buffer // partial line carried between Writes
	history [][]byte     // last maxHistory complete lines
	start   int          // ring index of the oldest history line
	count   int
	subs    map[*Subscription]struct{}
	closed  bool

	maxHistory int
	chanDepth  int

	// drops, when set by CountDrops, accumulates every line lost to any
	// subscriber's back-pressure (the registry's fanout.dropped counter).
	drops *Counter
}

// Subscription is one subscriber's view of a Fanout.
type Subscription struct {
	f *Fanout
	// C delivers complete journal lines (without the trailing newline).
	// It is closed when the subscriber unsubscribes or the fan-out
	// closes.
	C chan []byte
	// dropped counts lines lost because C's buffer was full.
	dropped int
}

// NewFanout builds a fan-out keeping up to history replay lines and
// giving each subscriber a channel buffer of depth lines.
func NewFanout(history, depth int) *Fanout {
	if history < 0 {
		history = 0
	}
	if depth < 1 {
		depth = 1
	}
	return &Fanout{
		history:    make([][]byte, history),
		subs:       make(map[*Subscription]struct{}),
		maxHistory: history,
		chanDepth:  depth,
	}
}

// Write implements io.Writer. slog's JSON handler emits exactly one
// complete line per call, but Write tolerates arbitrary fragmentation:
// lines are split on '\n' and partial tails are buffered for the next
// call. Write never fails and never blocks on subscribers.
func (f *Fanout) Write(p []byte) (int, error) {
	if f == nil {
		return len(p), nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.buf.Write(p)
	for {
		data := f.buf.Bytes()
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			break
		}
		line := make([]byte, i)
		copy(line, data[:i])
		f.buf.Next(i + 1)
		f.publishLocked(line)
	}
	return len(p), nil
}

func (f *Fanout) publishLocked(line []byte) {
	if f.maxHistory > 0 {
		if f.count < f.maxHistory {
			f.history[(f.start+f.count)%f.maxHistory] = line
			f.count++
		} else {
			f.history[f.start] = line
			f.start = (f.start + 1) % f.maxHistory
		}
	}
	for s := range f.subs {
		select {
		case s.C <- line:
		default:
			s.dropped++
			if f.drops != nil {
				f.drops.Inc()
			}
		}
	}
}

// CountDrops attaches a counter that accumulates every dropped line
// across all subscribers — conventionally the registry's "fanout.dropped"
// counter, so silent SSE event loss is visible on /metrics. Call before
// the fan-out is shared; nil detaches. No-op on a nil fan-out.
func (f *Fanout) CountDrops(c *Counter) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.drops = c
	f.mu.Unlock()
}

// Subscribe registers a new subscriber and replays the retained history
// into its channel (the channel depth is sized to hold a full replay).
// On a closed fan-out the subscription arrives pre-closed after the
// replay, so late readers still see the final events.
func (f *Fanout) Subscribe() *Subscription {
	f.mu.Lock()
	defer f.mu.Unlock()
	depth := f.chanDepth
	if depth < f.maxHistory {
		depth = f.maxHistory
	}
	s := &Subscription{f: f, C: make(chan []byte, depth)}
	for i := 0; i < f.count; i++ {
		s.C <- f.history[(f.start+i)%f.maxHistory]
	}
	if f.closed {
		close(s.C)
		return s
	}
	f.subs[s] = struct{}{}
	return s
}

// Close closes every subscriber channel and marks the fan-out finished.
// Further Writes are discarded; further Subscribes receive the history
// and an already-closed channel.
func (f *Fanout) Close() {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	for s := range f.subs {
		close(s.C)
		delete(f.subs, s)
	}
}

// Cancel detaches the subscription and closes its channel. Safe to call
// twice, and safe concurrently with Writes.
func (s *Subscription) Cancel() {
	f := s.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subs[s]; ok {
		delete(f.subs, s)
		close(s.C)
	}
}

// Dropped reports how many lines this subscription lost to back-pressure.
func (s *Subscription) Dropped() int {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	return s.dropped
}
