package obs

import (
	"bytes"
	"testing"
)

// TestTraceContextParentRoundTrip: the three-part wire form
// <trace>/<span>/<parent> (and the span-less <trace>//<parent>) carries
// the remote parent span across processes and parses back exactly.
func TestTraceContextParentRoundTrip(t *testing.T) {
	cases := []TraceContext{
		{Trace: "abc123", Span: 0x1f, Parent: 0xbeef},
		{Trace: "abc123", Parent: 0xbeef}, // parent without a span
		NewTraceContext().WithSpan(7).WithParent(9),
		{Trace: "abc123", Span: 0x1f}, // two-part form unchanged
	}
	for _, tc := range cases {
		got, ok := ParseTraceContext(tc.String())
		if !ok || got != tc {
			t.Errorf("ParseTraceContext(%q) = %+v, %v; want %+v", tc.String(), got, ok, tc)
		}
	}
	if s := (TraceContext{Trace: "x", Span: 5}).String(); s != "x/5" {
		t.Errorf("parentless String() = %q, want two-part x/5", s)
	}
	if s := (TraceContext{Trace: "x", Parent: 0xa}).String(); s != "x//a" {
		t.Errorf("spanless String() = %q, want x//a", s)
	}
}

func TestParseTraceContextParentRejects(t *testing.T) {
	bad := []string{
		"id/1f/",           // dangling separator
		"id/1f/nothex",     // bad parent hex
		"id//",             // neither span nor parent
		"id/1f/2f/3f",      // too many parts
		"id/1f/" + wideHex, // parent overflows uint64
	}
	for _, s := range bad {
		if tc, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) accepted as %+v", s, tc)
		}
	}
}

const wideHex = "fffffffffffffffff" // 17 hex digits, one past uint64

// TestWithParentJournalAttr: a journal derived from a parented context
// tags lines with pspan, so shipped worker lines can be re-attached to
// the coordinator's dispatch span by ID.
func TestWithParentJournalAttr(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	tc := TraceContext{Trace: "tr1", Span: 1, Parent: 0xcafe}
	j.WithTrace(tc).Event("x")
	if !bytes.Contains(buf.Bytes(), []byte(`"trace":"tr1"`)) {
		t.Errorf("journal line missing trace attr: %s", buf.String())
	}
}
