package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Profiler captures CPU and heap profiles for one run: StartProfiling
// begins a CPU profile at <dir>/cpu.pprof, Stop ends it and writes a
// heap profile to <dir>/heap.pprof.
type Profiler struct {
	dir string
	cpu *os.File
}

// StartProfiling creates dir (if needed) and starts the CPU profile.
func StartProfiling(dir string) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: pprof: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("obs: pprof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: pprof: %w", err)
	}
	return &Profiler{dir: dir, cpu: f}, nil
}

// Stop ends the CPU profile and captures the heap profile (after a GC,
// so the numbers reflect live memory, not garbage). No-op on nil.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	pprof.StopCPUProfile()
	if err := p.cpu.Close(); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(p.dir, "heap.pprof"))
	if err != nil {
		return fmt.Errorf("obs: pprof: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: pprof: %w", err)
	}
	return nil
}
