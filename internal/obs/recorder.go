package obs

import (
	"context"
	"time"
)

// Recorder binds a Registry, an optional Journal, and a per-phase time
// breakdown into one sink. Its method set structurally satisfies the
// execution engine's Observer interface (the engine imports obs, not the
// other way round), and the report pipeline opens experiment spans on it,
// so one recorder sees a whole run: every engine job, every streamed
// generation, every experiment render.
type Recorder struct {
	reg    *Registry
	jnl    *Journal
	phases Phases
}

// NewRecorder builds a recorder over the registry and journal; a nil
// registry gets a private one, a nil journal disables event emission
// (metrics and phases still accumulate).
func NewRecorder(reg *Registry, jnl *Journal) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Recorder{reg: reg, jnl: jnl}
}

// Registry returns the recorder's instrument registry.
func (r *Recorder) Registry() *Registry { return r.reg }

// Journal returns the recorder's journal (nil when none is attached).
func (r *Recorder) Journal() *Journal { return r.jnl }

// Phases returns the per-phase time breakdown accumulated so far.
func (r *Recorder) Phases() []PhaseStat { return r.phases.Stats() }

// StartSpan opens a span whose End records into the recorder's phase
// breakdown and journal; a "<phase>.start" event is emitted immediately.
func (r *Recorder) StartSpan(phase, name string) *Span {
	r.jnl.Event(phase+".start", "name", name)
	return &Span{Phase: phase, Name: name, start: time.Now(), phases: &r.phases, jnl: r.jnl}
}

// phaseOf maps an engine job kind onto the run's phase breakdown.
func phaseOf(kind string) string {
	switch kind {
	case "trace", "stream":
		return "generate"
	case "sim", "protocol":
		return "simulate"
	case "merge":
		return "merge"
	case "":
		return "other"
	}
	return kind
}

// JobScheduled implements the engine's Observer: one call per DAG node
// when a batch is submitted. Journal events carry the trace identity the
// context brings (see TraceContext), tying engine work back to the
// request or run that caused it.
func (r *Recorder) JobScheduled(ctx context.Context, id, kind, key string) {
	r.reg.Counter("engine.jobs.scheduled").Inc()
	r.jnl.Event("job.scheduled", traceAttrs(ctx, []any{"job", id, "kind", kind, "key", key})...)
}

// JobStarted implements the engine's Observer.
func (r *Recorder) JobStarted(ctx context.Context, id, kind, key string) {
	r.jnl.Event("job.start", traceAttrs(ctx, []any{"job", id, "kind", kind, "key", key})...)
}

// JobFinished implements the engine's Observer: it closes the job's
// span, feeding the per-phase breakdown, a per-kind duration histogram,
// and the journal.
func (r *Recorder) JobFinished(ctx context.Context, id, kind, key string, d time.Duration, cacheHit bool, err error) {
	r.phases.Record(phaseOf(kind), d)
	r.reg.Histogram("engine.job."+phaseOf(kind)+".us", DurationBucketsUS).ObserveDuration(d)
	attrs := traceAttrs(ctx, []any{"job", id, "kind", kind, "key", key,
		"dur_us", d.Microseconds(), "cache_hit", cacheHit})
	if err != nil {
		r.jnl.Error("job.finish", err, attrs...)
		return
	}
	r.jnl.Event("job.finish", attrs...)
}

// StreamEnded implements the engine's Observer: one call per streamed
// generation with its chunk count and producer back-pressure stalls.
func (r *Recorder) StreamEnded(ctx context.Context, trace string, chunks, stalls int64) {
	r.reg.Histogram("engine.stream.chunks", []int64{16, 64, 256, 1024, 4096, 16384}).Observe(chunks)
	r.jnl.Event("stream.end", traceAttrs(ctx, []any{"trace", trace, "chunks", chunks, "stalls", stalls})...)
}

// TierFetched implements the engine's TierObserver: one event per
// durable-store lookup, hit or clean miss. Counting stays with the store
// itself (store.* counters); this is the journal's causal record.
func (r *Recorder) TierFetched(ctx context.Context, kind, key string, hit bool, d time.Duration) {
	r.jnl.Event("store.load", traceAttrs(ctx, []any{"kind", kind, "key", key,
		"hit", hit, "dur_us", d.Microseconds()})...)
}

// TierStored implements the engine's TierObserver: one event per
// write-through to the durable store.
func (r *Recorder) TierStored(ctx context.Context, kind, key string, d time.Duration) {
	r.jnl.Event("store.store", traceAttrs(ctx, []any{"kind", kind, "key", key,
		"dur_us", d.Microseconds()})...)
}

// ShardFinished implements the engine's ShardObserver: one event per
// shard of a block-sharded simulation (shard -1 is the splitter that
// partitioned the reference stream). The per-shard refs and busy time
// are what dirsimq's stats command aggregates into throughput and skew.
func (r *Recorder) ShardFinished(ctx context.Context, trace, scheme string, shard, shards int, refs int64, d time.Duration) {
	// The workload gets its own key: the "trace" key is the request
	// trace-context ID appended by traceAttrs, and duplicate keys decode
	// last-wins downstream.
	r.jnl.Event("sim.shard", traceAttrs(ctx, []any{"workload", trace, "scheme", scheme,
		"shard", shard, "shards", shards, "refs", refs, "dur_us", d.Microseconds()})...)
}

// The failure-path events below implement the engine's FaultObserver.
// They journal only: the engine's own registry counters (engine.jobs.
// panics/retries/timeouts, engine.cache.rejected) already count these, so
// counting here again would double-report on a shared registry.

// JobRetried records a retry decision: the attempt that failed, the
// backoff about to be taken, and the triggering error.
func (r *Recorder) JobRetried(ctx context.Context, id string, attempt int, backoff time.Duration, err error) {
	r.jnl.Error("job.retry", err, traceAttrs(ctx, []any{"job", id, "attempt", attempt,
		"backoff_us", backoff.Microseconds()})...)
}

// JobPanicked records a recovered job-body panic with its stack, so a
// crashed simulator is diagnosable from the journal alone.
func (r *Recorder) JobPanicked(ctx context.Context, id string, stack []byte) {
	r.jnl.Event("job.panic", traceAttrs(ctx, []any{"job", id, "stack", string(stack)})...)
}

// CacheRejected records a cached entry failing integrity revalidation.
func (r *Recorder) CacheRejected(ctx context.Context, key string) {
	r.jnl.Event("cache.reject", traceAttrs(ctx, []any{"key", key})...)
}
