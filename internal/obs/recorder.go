package obs

import (
	"time"
)

// Recorder binds a Registry, an optional Journal, and a per-phase time
// breakdown into one sink. Its method set structurally satisfies the
// execution engine's Observer interface (the engine imports obs, not the
// other way round), and the report pipeline opens experiment spans on it,
// so one recorder sees a whole run: every engine job, every streamed
// generation, every experiment render.
type Recorder struct {
	reg    *Registry
	jnl    *Journal
	phases Phases
}

// NewRecorder builds a recorder over the registry and journal; a nil
// registry gets a private one, a nil journal disables event emission
// (metrics and phases still accumulate).
func NewRecorder(reg *Registry, jnl *Journal) *Recorder {
	if reg == nil {
		reg = NewRegistry()
	}
	return &Recorder{reg: reg, jnl: jnl}
}

// Registry returns the recorder's instrument registry.
func (r *Recorder) Registry() *Registry { return r.reg }

// Journal returns the recorder's journal (nil when none is attached).
func (r *Recorder) Journal() *Journal { return r.jnl }

// Phases returns the per-phase time breakdown accumulated so far.
func (r *Recorder) Phases() []PhaseStat { return r.phases.Stats() }

// StartSpan opens a span whose End records into the recorder's phase
// breakdown and journal; a "<phase>.start" event is emitted immediately.
func (r *Recorder) StartSpan(phase, name string) *Span {
	r.jnl.Event(phase+".start", "name", name)
	return &Span{Phase: phase, Name: name, start: time.Now(), phases: &r.phases, jnl: r.jnl}
}

// phaseOf maps an engine job kind onto the run's phase breakdown.
func phaseOf(kind string) string {
	switch kind {
	case "trace", "stream":
		return "generate"
	case "sim", "protocol":
		return "simulate"
	case "merge":
		return "merge"
	case "":
		return "other"
	}
	return kind
}

// JobScheduled implements the engine's Observer: one call per DAG node
// when a batch is submitted.
func (r *Recorder) JobScheduled(id, kind, key string) {
	r.reg.Counter("engine.jobs.scheduled").Inc()
	r.jnl.Event("job.scheduled", "job", id, "kind", kind, "key", key)
}

// JobStarted implements the engine's Observer.
func (r *Recorder) JobStarted(id, kind, key string) {
	r.jnl.Event("job.start", "job", id, "kind", kind, "key", key)
}

// JobFinished implements the engine's Observer: it closes the job's
// span, feeding the per-phase breakdown, a per-kind duration histogram,
// and the journal.
func (r *Recorder) JobFinished(id, kind, key string, d time.Duration, cacheHit bool, err error) {
	r.phases.Record(phaseOf(kind), d)
	r.reg.Histogram("engine.job."+phaseOf(kind)+".us", DurationBucketsUS).ObserveDuration(d)
	if err != nil {
		r.jnl.Error("job.finish", err, "job", id, "kind", kind, "key", key,
			"dur_us", d.Microseconds(), "cache_hit", cacheHit)
		return
	}
	r.jnl.Event("job.finish", "job", id, "kind", kind, "key", key,
		"dur_us", d.Microseconds(), "cache_hit", cacheHit)
}

// StreamEnded implements the engine's Observer: one call per streamed
// generation with its chunk count and producer back-pressure stalls.
func (r *Recorder) StreamEnded(trace string, chunks, stalls int64) {
	r.reg.Histogram("engine.stream.chunks", []int64{16, 64, 256, 1024, 4096, 16384}).Observe(chunks)
	r.jnl.Event("stream.end", "trace", trace, "chunks", chunks, "stalls", stalls)
}

// The failure-path events below implement the engine's FaultObserver.
// They journal only: the engine's own registry counters (engine.jobs.
// panics/retries/timeouts, engine.cache.rejected) already count these, so
// counting here again would double-report on a shared registry.

// JobRetried records a retry decision: the attempt that failed, the
// backoff about to be taken, and the triggering error.
func (r *Recorder) JobRetried(id string, attempt int, backoff time.Duration, err error) {
	r.jnl.Error("job.retry", err, "job", id, "attempt", attempt,
		"backoff_us", backoff.Microseconds())
}

// JobPanicked records a recovered job-body panic with its stack, so a
// crashed simulator is diagnosable from the journal alone.
func (r *Recorder) JobPanicked(id string, stack []byte) {
	r.jnl.Event("job.panic", "job", id, "stack", string(stack))
}

// CacheRejected records a cached entry failing integrity revalidation.
func (r *Recorder) CacheRejected(key string) {
	r.jnl.Event("cache.reject", "key", key)
}
