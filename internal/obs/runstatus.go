package obs

import (
	"sync"
	"time"
)

// RunStatus tracks the live state of a CLI run's experiments for the
// HTTP monitor's /runz endpoint. All methods are safe for concurrent
// use; a nil *RunStatus is a valid no-op, so the report pipeline threads
// it unconditionally.
type RunStatus struct {
	mu    sync.Mutex
	start time.Time
	order []string
	exps  map[string]*expStatus
}

type expStatus struct {
	title    string
	state    string // "running" | "done" | "failed"
	err      string
	started  time.Time
	finished time.Time
}

// NewRunStatus returns a status tracker whose uptime counts from now.
func NewRunStatus() *RunStatus {
	return &RunStatus{start: time.Now(), exps: make(map[string]*expStatus)}
}

// ExpStarted marks an experiment as running. No-op on nil.
func (s *RunStatus) ExpStarted(id, title string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.exps[id]; !ok {
		s.order = append(s.order, id)
	}
	s.exps[id] = &expStatus{title: title, state: "running", started: time.Now()}
}

// ExpFinished marks an experiment done or failed. No-op on nil.
func (s *RunStatus) ExpFinished(id string, err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.exps[id]
	if !ok {
		e = &expStatus{}
		s.order = append(s.order, id)
		s.exps[id] = e
	}
	e.finished = time.Now()
	if err != nil {
		e.state, e.err = "failed", err.Error()
	} else {
		e.state = "done"
	}
}

// RunzReport is the JSON served on /runz: run progress plus the derived
// throughput figures a dashboard wants without scraping raw counters.
type RunzReport struct {
	Schema    int       `json:"schema"`
	Now       time.Time `json:"now"`
	UptimeSec float64   `json:"uptime_seconds"`

	Experiments []RunzExperiment `json:"experiments"`
	Running     int              `json:"running"`
	Done        int              `json:"done"`
	Failed      int              `json:"failed"`

	// CacheHitRatio is hits/(hits+misses) over the engine's keyed
	// lookups so far; RefsPerSec is simulated references over uptime.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	RefsSimulated int64   `json:"refs_simulated"`
	RefsPerSec    float64 `json:"refs_per_sec"`
	SimsRun       int64   `json:"sims_run"`
	JobsRun       int64   `json:"jobs_run"`
}

// RunzExperiment is one experiment's live state.
type RunzExperiment struct {
	ID      string  `json:"id"`
	Title   string  `json:"title,omitempty"`
	State   string  `json:"state"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

// Report assembles the current /runz view, deriving throughput and cache
// figures from the engine counters on reg (which may be nil). Safe to
// call while the run mutates both the status and the registry.
func (s *RunStatus) Report(reg *Registry) RunzReport {
	now := time.Now()
	rep := RunzReport{Schema: SchemaVersion, Now: now}
	if s != nil {
		s.mu.Lock()
		rep.UptimeSec = now.Sub(s.start).Seconds()
		for _, id := range s.order {
			e := s.exps[id]
			end := e.finished
			if e.state == "running" {
				end = now
			}
			rep.Experiments = append(rep.Experiments, RunzExperiment{
				ID:      id,
				Title:   e.title,
				State:   e.state,
				Seconds: end.Sub(e.started).Seconds(),
				Error:   e.err,
			})
			switch e.state {
			case "running":
				rep.Running++
			case "failed":
				rep.Failed++
			default:
				rep.Done++
			}
		}
		s.mu.Unlock()
	}
	if reg != nil {
		snap := reg.Snapshot()
		rep.CacheHitRatio = HitRatio(snap.Counters["engine.cache.hits"], snap.Counters["engine.cache.misses"])
		rep.RefsSimulated = snap.Counters["engine.refs.simulated"]
		rep.SimsRun = snap.Counters["engine.sims.run"]
		rep.JobsRun = snap.Counters["engine.jobs.run"]
		if rep.UptimeSec > 0 {
			rep.RefsPerSec = float64(rep.RefsSimulated) / rep.UptimeSec
		}
	}
	return rep
}
