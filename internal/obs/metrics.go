// Package obs is the repository's observability layer: typed metric
// instruments on a Registry, a structured JSONL run journal, span-style
// timing helpers with a per-phase breakdown, pprof capture, and the run
// manifest written by cmd/experiments. It depends only on the standard
// library and the leaf packages internal/event and internal/obs/trace,
// so any package — the execution engine included — can report into it
// without import cycles.
//
// Hot paths are single atomic operations: a Counter or Gauge update is
// one atomic add, a Histogram observation is a binary search over a
// handful of bucket bounds plus three atomic adds. Instruments are
// resolved from the Registry once (a mutex-guarded map lookup) and the
// returned handles are then used lock-free.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions (pool occupancy,
// cache population). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed buckets. Bounds are inclusive
// upper limits in ascending order; one implicit +Inf bucket catches the
// overflow. Observations also accumulate a total count and sum, so mean
// latency/size falls out of any snapshot.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in microseconds — the unit every
// duration histogram in this repository uses.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts has one entry per bound plus a final +Inf entry.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Buckets are read
// without a global lock, so a snapshot taken during concurrent
// observation may be torn by a few in-flight counts — fine for
// monitoring, which is all it is for.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (q in [0, 1]) from the snapshot's
// buckets by linear interpolation within the containing bucket — the
// same estimate Prometheus's histogram_quantile computes. A quantile
// landing in the +Inf bucket reports the largest finite bound (the
// buckets cannot resolve anything beyond it). Returns 0 for an empty
// histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := float64(cum)
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return float64(s.Bounds[len(s.Bounds)-1])
		}
		hi := float64(s.Bounds[i])
		if i == 0 {
			if hi <= 0 {
				return hi
			}
			return hi * (rank - prev) / float64(c)
		}
		lo := float64(s.Bounds[i-1])
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return float64(s.Bounds[len(s.Bounds)-1])
}

// DurationBucketsUS is the default bound set for duration histograms, in
// microseconds: 100µs up to 10s, one bucket per decade.
var DurationBucketsUS = []int64{100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}

// Registry is a namespace of instruments. Lookups get-or-create, so
// independent packages can share instrument names without coordination;
// the returned handles are stable for the registry's lifetime.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use; later calls reuse the first bounds.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument on a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteText writes an expvar-style text exposition, one "name value"
// line per instrument, sorted by name. Histograms expand into .count,
// .sum, cumulative .le.<bound> lines (plus .le.inf), and estimated
// .p50/.p95/.p99 quantile lines, the same shape Prometheus text
// exposition uses.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	lines := make(map[string]string, len(snap.Counters)+len(snap.Gauges)+12*len(snap.Histograms))
	for name, v := range snap.Counters {
		lines[name] = strconv.FormatInt(v, 10)
	}
	for name, v := range snap.Gauges {
		lines[name] = strconv.FormatInt(v, 10)
	}
	for name, h := range snap.Histograms {
		lines[name+".count"] = strconv.FormatInt(h.Count, 10)
		lines[name+".sum"] = strconv.FormatInt(h.Sum, 10)
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			lines[fmt.Sprintf("%s.le.%d", name, bound)] = strconv.FormatInt(cum, 10)
		}
		lines[name+".le.inf"] = strconv.FormatInt(cum+h.Counts[len(h.Bounds)], 10)
		for _, q := range [...]struct {
			suffix string
			q      float64
		}{{".p50", 0.5}, {".p95", 0.95}, {".p99", 0.99}} {
			lines[name+q.suffix] = strconv.FormatFloat(h.Quantile(q.q), 'g', -1, 64)
		}
	}
	names := make([]string, 0, len(lines))
	for name := range lines {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %s\n", name, lines[name]); err != nil {
			return err
		}
	}
	return nil
}
