package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// Journal is a structured run journal: typed events written as JSON
// Lines through log/slog, one object per line, each carrying the slog
// time/level/msg envelope plus the event's attributes. A nil *Journal is
// a valid no-op sink, so callers thread an optional journal without nil
// checks at every emission site.
//
// Event names form a small schema:
//
//	run.start / run.finish      one pair per CLI invocation
//	experiment.start / .finish  one pair per experiment (report pipeline)
//	job.scheduled / .start / .finish
//	                            engine job lifecycle (kind, key, dur_us,
//	                            cache_hit)
//	stream.end                  one per streamed generation (chunks,
//	                            stalls)
//	job.retry                   one per job re-attempt (attempt,
//	                            backoff_us, error)
//	job.panic                   one per recovered job-body panic (stack)
//	cache.reject                one per cached entry failing integrity
//	                            revalidation (key)
//	simulate.finish             one per dirsim scheme run
//	error                       terminal failure summary
type Journal struct {
	log    *slog.Logger
	closer io.Closer
}

// SchemaVersion identifies the shape of the observability outputs: the
// journal's event envelope and the run manifest. Every journal line and
// manifest carries it as "schema", so downstream parsers can detect
// format changes instead of guessing. Bump it whenever either format
// changes incompatibly (see DESIGN.md for the version history).
const SchemaVersion = 2

// NewJournal writes events to w. The slog JSON handler serializes
// concurrent writes, so one journal can be shared by every goroutine of
// a run. Every line carries the journal schema version.
func NewJournal(w io.Writer) *Journal {
	return &Journal{log: slog.New(slog.NewJSONHandler(w, nil)).With(slog.Int("schema", SchemaVersion))}
}

// OpenJournal opens a JSONL journal at path; "-" and "stderr" select
// standard error. File journals are truncated, not appended: one file
// describes one run.
func OpenJournal(path string) (*Journal, error) {
	if path == "-" || path == "stderr" {
		return NewJournal(os.Stderr), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	j := NewJournal(f)
	j.closer = f
	return j, nil
}

// WithTrace returns a journal whose every line carries the trace
// identity as a "trace" attribute, so consumers (SSE subscribers,
// dirsimq) can attribute lines to the request that caused them without
// every emission site threading it. The derived journal shares the
// parent's writer; Close remains the parent's job. An invalid context
// (or nil journal) returns the journal unchanged.
func (j *Journal) WithTrace(tc TraceContext) *Journal {
	if j == nil || !tc.Valid() {
		return j
	}
	return &Journal{log: j.log.With(slog.String("trace", tc.Trace))}
}

// Event emits one informational event. Attributes follow slog's
// alternating key/value convention. No-op on a nil journal.
func (j *Journal) Event(name string, attrs ...any) {
	if j == nil {
		return
	}
	j.log.Info(name, attrs...)
}

// Error emits one error-level event carrying err under the "error" key.
// No-op on a nil journal.
func (j *Journal) Error(name string, err error, attrs ...any) {
	if j == nil {
		return
	}
	j.log.Error(name, append([]any{slog.String("error", err.Error())}, attrs...)...)
}

// Close releases the underlying file, if the journal owns one. No-op on
// a nil journal or a borrowed writer.
func (j *Journal) Close() error {
	if j == nil || j.closer == nil {
		return nil
	}
	return j.closer.Close()
}
