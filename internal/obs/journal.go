package obs

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"
)

// Journal is a structured run journal: typed events written as JSON
// Lines through log/slog, one object per line, each carrying the slog
// time/level/msg envelope plus the event's attributes. A nil *Journal is
// a valid no-op sink, so callers thread an optional journal without nil
// checks at every emission site.
//
// Event names form a small schema:
//
//	run.start / run.finish      one pair per CLI invocation
//	experiment.start / .finish  one pair per experiment (report pipeline)
//	job.scheduled / .start / .finish
//	                            engine job lifecycle (kind, key, dur_us,
//	                            cache_hit)
//	stream.end                  one per streamed generation (chunks,
//	                            stalls)
//	job.retry                   one per job re-attempt (attempt,
//	                            backoff_us, error)
//	job.panic                   one per recovered job-body panic (stack)
//	cache.reject                one per cached entry failing integrity
//	                            revalidation (key)
//	simulate.finish             one per dirsim scheme run
//	error                       terminal failure summary
type Journal struct {
	log    *slog.Logger
	w      *lockedWriter
	closer io.Closer
}

// lockedWriter serializes whole-line writes from the slog handler and
// Raw onto one writer, so shipped worker lines splice between locally
// emitted lines without interleaving.
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// SchemaVersion identifies the shape of the observability outputs: the
// journal's event envelope and the run manifest. Every journal line and
// manifest carries it as "schema", so downstream parsers can detect
// format changes instead of guessing. Bump it whenever either format
// changes incompatibly (see DESIGN.md for the version history).
const SchemaVersion = 2

// NewJournal writes events to w. Writes are serialized (one whole line
// per Write), so one journal can be shared by every goroutine of a run.
// Every line carries the journal schema version.
func NewJournal(w io.Writer) *Journal {
	lw := &lockedWriter{w: w}
	return &Journal{
		log: slog.New(slog.NewJSONHandler(lw, nil)).With(slog.Int("schema", SchemaVersion)),
		w:   lw,
	}
}

// OpenJournal opens a JSONL journal at path; "-" and "stderr" select
// standard error. File journals are truncated, not appended: one file
// describes one run.
func OpenJournal(path string) (*Journal, error) {
	if path == "-" || path == "stderr" {
		return NewJournal(os.Stderr), nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	j := NewJournal(f)
	j.closer = f
	return j, nil
}

// OpenJournalRotating opens a size-rotated file journal: when the live
// file would exceed maxBytes, it is renamed to path.1 (older segments
// shifting to path.2 … path.keep, the oldest beyond keep deleted) and a
// fresh file continues the stream, opening with a journal.rotated event.
// dirsimq reads the rotated set back as one journal. "-"/"stderr" fall
// back to an unrotated stderr journal.
func OpenJournalRotating(path string, maxBytes int64, keep int) (*Journal, error) {
	if path == "-" || path == "stderr" || maxBytes <= 0 {
		return OpenJournal(path)
	}
	rw, err := NewRotatingWriter(path, maxBytes, keep)
	if err != nil {
		return nil, fmt.Errorf("obs: journal: %w", err)
	}
	j := NewJournal(rw)
	j.closer = rw
	rw.OnRotate(RotationMarker(path))
	return j, nil
}

// RotationMarker returns the standard OnRotate callback: it opens every
// fresh segment with a journal.rotated line, hand-encoded in the slog
// line shape (the callback runs under the rotating writer's lock, so it
// cannot go back through the journal — that would deadlock on the
// journal's line lock).
func RotationMarker(path string) func(total int64, w io.Writer) {
	return func(total int64, w io.Writer) {
		fmt.Fprintf(w, "{\"time\":%q,\"level\":\"INFO\",\"msg\":\"journal.rotated\",\"schema\":%d,\"segments\":%d,\"path\":%q}\n",
			time.Now().UTC().Format(time.RFC3339Nano), SchemaVersion, total, path)
	}
}

// Raw splices one pre-encoded JSONL line (without or with its trailing
// newline) into the journal — the coordinator's path for journal lines
// shipped home by workers, which are already slog-encoded and must not
// be re-enveloped. The line is written atomically with respect to local
// events. No-op on a nil journal, a journal over a borrowed logger (a
// WithTrace derivative shares its parent's writer), or an empty line.
func (j *Journal) Raw(line []byte) {
	if j == nil || j.w == nil {
		return
	}
	line = bytes.TrimRight(line, "\r\n")
	if len(line) == 0 {
		return
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	j.w.Write(buf) //nolint:errcheck // journaling is best-effort, like slog's handler writes
}

// WithTrace returns a journal whose every line carries the trace
// identity as a "trace" attribute, so consumers (SSE subscribers,
// dirsimq) can attribute lines to the request that caused them without
// every emission site threading it. The derived journal shares the
// parent's writer; Close remains the parent's job. An invalid context
// (or nil journal) returns the journal unchanged.
func (j *Journal) WithTrace(tc TraceContext) *Journal {
	if j == nil || !tc.Valid() {
		return j
	}
	return &Journal{log: j.log.With(slog.String("trace", tc.Trace))}
}

// Event emits one informational event. Attributes follow slog's
// alternating key/value convention. No-op on a nil journal.
func (j *Journal) Event(name string, attrs ...any) {
	if j == nil {
		return
	}
	j.log.Info(name, attrs...)
}

// Error emits one error-level event carrying err under the "error" key.
// No-op on a nil journal.
func (j *Journal) Error(name string, err error, attrs ...any) {
	if j == nil {
		return
	}
	j.log.Error(name, append([]any{slog.String("error", err.Error())}, attrs...)...)
}

// Close releases the underlying file, if the journal owns one. No-op on
// a nil journal or a borrowed writer.
func (j *Journal) Close() error {
	if j == nil || j.closer == nil {
		return nil
	}
	return j.closer.Close()
}
