// Package httpmon is the opt-in live HTTP monitor the CLIs start behind
// -listen: /metrics serves the run's registry in Prometheus text
// exposition, /runz a JSON snapshot of run progress (per-experiment
// state, cache hit ratio, refs/s), and /debug/pprof/* the standard Go
// profiling handlers. Everything is read-only and served from a private
// mux, so importing this package never touches http.DefaultServeMux's
// routing of another server.
//
// Servers that are more than monitors (internal/service) compose with it:
// NewMux returns the monitor mux so callers can register their own routes
// on top, and Serve runs any handler with the monitor's lifecycle —
// including Shutdown, which drains in-flight requests where Close
// interrupts them.
package httpmon

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"dirsim/internal/obs"
)

// Options configures a monitor. Nil fields disable their endpoint's
// content, not the endpoint: /metrics with no registry serves an empty
// exposition, /runz with no Runz serves {}.
type Options struct {
	// Metrics is the registry /metrics exposes.
	Metrics *obs.Registry
	// Runz returns the current run-progress value for /runz; it is
	// called per request and must be safe for concurrent use
	// (obs.RunStatus.Report is).
	Runz func() any
	// Index lists extra endpoints on the root index page, as
	// path → description, for servers that add routes to the mux.
	Index map[string]string
}

// Server is a running monitor. Close it when the run ends, or Shutdown it
// to drain in-flight requests first.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewMux builds the monitor's routing table without starting a server,
// so callers can add their own handlers before Serve.
func NewMux(opts Options) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opts.Metrics != nil {
			opts.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/runz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if opts.Runz != nil {
			v = opts.Runz()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>dirsim monitor</h1><ul>
<li><a href="/runz">/runz</a> — live run progress</li>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiling</li>
`)
		for path, desc := range opts.Index {
			fmt.Fprintf(w, "<li><a href=%q>%s</a> — %s</li>\n", path, path, desc)
		}
		fmt.Fprint(w, `</ul></body></html>`)
	})
	return mux
}

// Serve listens on addr (":0" picks a free port, reported by Addr) and
// serves handler until Close or Shutdown.
func Serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpmon: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: handler, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Start is Serve over the standard monitor mux.
func Start(addr string, opts Options) (*Server, error) {
	return Serve(addr, NewMux(opts))
}

// Addr returns the address the monitor is listening on, with the real
// port when Start was given ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, interrupting in-flight requests.
// Long-lived servers should prefer Shutdown, which drains them.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight
// requests to finish, up to ctx's deadline; it then closes whatever is
// left and returns ctx's error. Handlers that stream indefinitely (SSE)
// should watch their request context, which Shutdown does not cancel —
// the serving loop must end them (internal/service does this by closing
// its event fan-outs during drain).
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	return err
}
