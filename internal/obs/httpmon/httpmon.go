// Package httpmon is the opt-in live HTTP monitor the CLIs start behind
// -listen: /metrics serves the run's registry in Prometheus text
// exposition, /runz a JSON snapshot of run progress (per-experiment
// state, cache hit ratio, refs/s), and /debug/pprof/* the standard Go
// profiling handlers. Everything is read-only and served from a private
// mux, so importing this package never touches http.DefaultServeMux's
// routing of another server.
package httpmon

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"dirsim/internal/obs"
)

// Options configures a monitor. Nil fields disable their endpoint's
// content, not the endpoint: /metrics with no registry serves an empty
// exposition, /runz with no Runz serves {}.
type Options struct {
	// Metrics is the registry /metrics exposes.
	Metrics *obs.Registry
	// Runz returns the current run-progress value for /runz; it is
	// called per request and must be safe for concurrent use
	// (obs.RunStatus.Report is).
	Runz func() any
}

// Server is a running monitor. Close it when the run ends.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (":0" picks a free port, reported by Addr) and
// serves the monitor endpoints until Close.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpmon: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if opts.Metrics != nil {
			opts.Metrics.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/runz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if opts.Runz != nil {
			v = opts.Runz()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>dirsim monitor</h1><ul>
<li><a href="/runz">/runz</a> — live run progress</li>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go profiling</li>
</ul></body></html>`)
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the address the monitor is listening on, with the real
// port when Start was given ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, interrupting in-flight requests.
func (s *Server) Close() error { return s.srv.Close() }
