package httpmon

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"dirsim/internal/obs"
)

func startTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return string(body), resp
}

var (
	metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9][0-9.eE+-]*|[+-]Inf|NaN)$`)
)

// lintPrometheus validates the text exposition format the way promtool's
// check would: every line is a well-formed comment or sample, metric
// names are legal, each family has exactly one TYPE declaration
// appearing before its samples, and histogram bucket series are
// cumulative and end at le="+Inf" with matching _count.
func lintPrometheus(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	familyOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typed[base] == "histogram" {
				return base
			}
		}
		return name
	}
	bucketCum := map[string][]int64{}
	bucketInf := map[string]int64{}
	counts := map[string]int64{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment: %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if !metricName.MatchString(name) {
				t.Fatalf("line %d: illegal metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		fam := familyOf(name)
		if _, ok := typed[fam]; !ok {
			t.Fatalf("line %d: sample %q before its TYPE declaration", ln+1, name)
		}
		if typed[fam] == "histogram" && strings.HasSuffix(name, "_bucket") {
			le := strings.TrimSuffix(strings.TrimPrefix(labels, `{le="`), `"}`)
			v, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", ln+1, value, err)
			}
			if le == "+Inf" {
				bucketInf[fam] = v
			} else {
				if prev := bucketCum[fam]; len(prev) > 0 && v < prev[len(prev)-1] {
					t.Fatalf("line %d: bucket series for %s not cumulative", ln+1, fam)
				}
				bucketCum[fam] = append(bucketCum[fam], v)
			}
		}
		if typed[fam] == "histogram" && strings.HasSuffix(name, "_count") {
			v, _ := strconv.ParseInt(value, 10, 64)
			counts[fam] = v
		}
	}
	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		inf, ok := bucketInf[fam]
		if !ok {
			t.Fatalf("histogram %s has no le=\"+Inf\" bucket", fam)
		}
		if inf != counts[fam] {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d", fam, inf, counts[fam])
		}
		if cum := bucketCum[fam]; len(cum) > 0 && cum[len(cum)-1] > inf {
			t.Fatalf("histogram %s: finite buckets exceed +Inf", fam)
		}
	}
}

func TestMetricsEndpointPassesPrometheusLint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine.jobs.run").Add(12)
	reg.Gauge("engine.pool.occupancy").Set(3)
	h := reg.Histogram("sim.proto.dir0b.invals_clean_write", obs.InvalBuckets)
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)
	srv := startTestServer(t, Options{Metrics: reg})

	body, resp := get(t, "http://"+srv.Addr()+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	lintPrometheus(t, body)
	for _, want := range []string{
		"# TYPE engine_jobs_run counter",
		"engine_jobs_run 12",
		"# TYPE sim_proto_dir0b_invals_clean_write histogram",
		`sim_proto_dir0b_invals_clean_write_bucket{le="1"} 2`,
		`sim_proto_dir0b_invals_clean_write_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestRunzEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("engine.cache.hits").Add(3)
	reg.Counter("engine.cache.misses").Add(1)
	reg.Counter("engine.refs.simulated").Add(1_000_000)
	st := obs.NewRunStatus()
	st.ExpStarted("exp1", "Table 4")
	st.ExpFinished("exp1", nil)
	st.ExpStarted("exp2", "Figure 1")
	st.ExpFinished("exp2", fmt.Errorf("boom"))
	st.ExpStarted("exp3", "Figure 2")
	srv := startTestServer(t, Options{Metrics: reg, Runz: func() any { return st.Report(reg) }})

	body, resp := get(t, "http://"+srv.Addr()+"/runz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/runz status %d", resp.StatusCode)
	}
	var rep obs.RunzReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/runz is not valid JSON: %v\n%s", err, body)
	}
	if rep.Schema != obs.SchemaVersion {
		t.Errorf("schema = %d, want %d", rep.Schema, obs.SchemaVersion)
	}
	if rep.Done != 1 || rep.Failed != 1 || rep.Running != 1 {
		t.Errorf("done/failed/running = %d/%d/%d, want 1/1/1", rep.Done, rep.Failed, rep.Running)
	}
	if rep.CacheHitRatio != 0.75 {
		t.Errorf("cache hit ratio = %g, want 0.75", rep.CacheHitRatio)
	}
	if rep.RefsSimulated != 1_000_000 || rep.RefsPerSec <= 0 {
		t.Errorf("refs = %d at %g/s", rep.RefsSimulated, rep.RefsPerSec)
	}
	if len(rep.Experiments) != 3 || rep.Experiments[1].Error != "boom" {
		t.Errorf("experiments: %+v", rep.Experiments)
	}
}

// TestShutdownDrainsInFlight: where Close interrupts running handlers,
// Shutdown must let them finish and deliver their full responses — the
// contract dirsimd's SIGTERM path relies on.
func TestShutdownDrainsInFlight(t *testing.T) {
	mux := NewMux(Options{})
	entered := make(chan struct{})
	release := make(chan struct{})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	})
	srv, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- result{body: string(body), err: err}
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// New connections are refused once drain begins, while the in-flight
	// request is still being served.
	for i := 0; i < 100; i++ {
		if _, err := http.Get("http://" + srv.Addr() + "/"); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight request aborted by Shutdown: %v", r.err)
	}
	if r.body != "drained" {
		t.Errorf("in-flight response = %q, want %q", r.body, "drained")
	}
}

func TestIndexListsExtraEndpoints(t *testing.T) {
	srv := startTestServer(t, Options{Index: map[string]string{
		"/api/v1/experiments": "experiment service",
	}})
	body, resp := get(t, "http://"+srv.Addr()+"/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "/api/v1/experiments") {
		t.Errorf("index (status %d) does not list extra endpoint:\n%s", resp.StatusCode, body)
	}
}

func TestPprofAndIndexEndpoints(t *testing.T) {
	srv := startTestServer(t, Options{})
	if body, resp := get(t, "http://"+srv.Addr()+"/debug/pprof/"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", resp.StatusCode)
	}
	if body, resp := get(t, "http://"+srv.Addr()+"/"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, "/runz") {
		t.Errorf("index status %d", resp.StatusCode)
	}
	if _, resp := get(t, "http://"+srv.Addr()+"/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", resp.StatusCode)
	}
}
