package httpmon

import (
	"net/http"
	"time"

	"dirsim/internal/obs"
)

// TraceHeader carries a request's trace identity in both directions: a
// caller may supply one (to stitch the service's work into its own
// traces), and every instrumented response echoes the trace ID that the
// request actually ran under, minted server-side when absent or invalid.
const TraceHeader = "X-Dirsim-Trace"

// InstrumentOptions configures the Instrument middleware.
type InstrumentOptions struct {
	// Registry receives the RED metrics; nil disables metric recording
	// (trace propagation still happens).
	Registry *obs.Registry
	// TenantHeader names the header carrying the caller's tenant
	// identity; empty disables per-tenant metrics.
	TenantHeader string
	// DefaultTenant labels requests without a tenant header.
	DefaultTenant string
}

// Instrument wraps h with the service's standard per-request
// observability:
//
//   - trace context: the inbound TraceHeader is parsed (or a fresh trace
//     ID minted) and installed in the request context via obs.WithTrace,
//     and the response carries the resulting trace ID back in the same
//     header — before the handler runs, so even error paths are tagged;
//   - RED metrics, per route and per tenant: request counts, error
//     counts (5xx), and latency histograms with derived quantiles, under
//     http.route.<route>.* and http.tenant.<tenant>.* on the registry.
//
// The route label is static per registration (e.g. "experiments.submit"),
// never derived from the URL, so metric cardinality is bounded by the
// route table; tenant labels are sanitized and length-capped for the
// same reason.
func Instrument(route string, opts InstrumentOptions, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, ok := obs.ParseTraceContext(r.Header.Get(TraceHeader))
		if !ok {
			tc = obs.NewTraceContext()
		}
		w.Header().Set(TraceHeader, tc.Trace)
		r = r.WithContext(obs.WithTrace(r.Context(), tc))

		if opts.Registry == nil {
			h.ServeHTTP(w, r)
			return
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		d := time.Since(start)

		labels := []string{"http.route." + route}
		if opts.TenantHeader != "" {
			tenant := r.Header.Get(opts.TenantHeader)
			if tenant == "" {
				tenant = opts.DefaultTenant
			}
			if tenant != "" {
				labels = append(labels, "http.tenant."+sanitizeLabel(tenant))
			}
		}
		for _, prefix := range labels {
			opts.Registry.Counter(prefix + ".requests").Inc()
			if sw.Status() >= http.StatusInternalServerError {
				opts.Registry.Counter(prefix + ".errors").Inc()
			}
			opts.Registry.Histogram(prefix+".latency.us", obs.DurationBucketsUS).ObserveDuration(d)
		}
	})
}

// statusWriter captures the response status code for the error counters.
// It forwards Flush so SSE handlers downstream keep streaming.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Status reports the response code sent, defaulting to 200 when the
// handler never wrote anything explicit.
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// sanitizeLabel makes an untrusted header value safe to embed in a
// metric name (see obs.SanitizeLabel, shared with the dist
// coordinator's per-worker metric names).
func sanitizeLabel(s string) string { return obs.SanitizeLabel(s) }
