package httpmon

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dirsim/internal/obs"
)

func serveInstrumented(t *testing.T, opts InstrumentOptions, h http.HandlerFunc,
	prep func(*http.Request)) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", "/x", nil)
	if prep != nil {
		prep(req)
	}
	rr := httptest.NewRecorder()
	Instrument("test", opts, h).ServeHTTP(rr, req)
	return rr
}

func TestInstrumentMintsTraceAndEchoesHeader(t *testing.T) {
	var seen obs.TraceContext
	rr := serveInstrumented(t, InstrumentOptions{}, func(w http.ResponseWriter, r *http.Request) {
		seen, _ = obs.TraceFrom(r.Context())
		w.WriteHeader(http.StatusNoContent)
	}, nil)
	if !seen.Valid() {
		t.Fatal("handler context carried no trace")
	}
	if got := rr.Header().Get(TraceHeader); got != seen.Trace {
		t.Errorf("response %s = %q, want the context's trace %q", TraceHeader, got, seen.Trace)
	}
	if len(seen.Trace) != 16 {
		t.Errorf("minted trace ID %q not 16 hex digits", seen.Trace)
	}
}

func TestInstrumentHonorsInboundTrace(t *testing.T) {
	var seen obs.TraceContext
	rr := serveInstrumented(t, InstrumentOptions{}, func(w http.ResponseWriter, r *http.Request) {
		seen, _ = obs.TraceFrom(r.Context())
	}, func(r *http.Request) {
		r.Header.Set(TraceHeader, "caller-supplied/2a")
	})
	if seen.Trace != "caller-supplied" || seen.Span != 0x2a {
		t.Errorf("inbound trace not adopted: %+v", seen)
	}
	if got := rr.Header().Get(TraceHeader); got != "caller-supplied" {
		t.Errorf("response header = %q", got)
	}
}

func TestInstrumentReplacesInvalidInboundTrace(t *testing.T) {
	var seen obs.TraceContext
	serveInstrumented(t, InstrumentOptions{}, func(w http.ResponseWriter, r *http.Request) {
		seen, _ = obs.TraceFrom(r.Context())
	}, func(r *http.Request) {
		r.Header.Set(TraceHeader, "bad value with spaces;;")
	})
	if !seen.Valid() || strings.Contains(seen.Trace, " ") {
		t.Errorf("invalid inbound header not replaced by a minted trace: %+v", seen)
	}
}

func TestInstrumentREDMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	opts := InstrumentOptions{Registry: reg, TenantHeader: "X-Tenant-ID", DefaultTenant: "anon"}

	ok := func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("hi")) }
	boom := func(w http.ResponseWriter, r *http.Request) { http.Error(w, "x", http.StatusInternalServerError) }
	notFound := func(w http.ResponseWriter, r *http.Request) { http.Error(w, "x", http.StatusNotFound) }

	serveInstrumented(t, opts, ok, func(r *http.Request) { r.Header.Set("X-Tenant-ID", "alice") })
	serveInstrumented(t, opts, boom, func(r *http.Request) { r.Header.Set("X-Tenant-ID", "alice") })
	serveInstrumented(t, opts, notFound, nil) // default tenant; 4xx is not an error
	serveInstrumented(t, opts, ok, func(r *http.Request) { r.Header.Set("X-Tenant-ID", "we ird/£") })

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"http.route.test.requests":      4,
		"http.route.test.errors":        1,
		"http.tenant.alice.requests":    2,
		"http.tenant.alice.errors":      1,
		"http.tenant.anon.requests":     1,
		"http.tenant.we_ird__.requests": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if snap.Counters["http.tenant.anon.errors"] != 0 {
		t.Error("a 404 counted as an error")
	}
	h := snap.Histograms["http.route.test.latency.us"]
	if h.Count != 4 {
		t.Errorf("route latency histogram count = %d, want 4", h.Count)
	}
	if q := h.Quantile(0.95); q < 0 {
		t.Errorf("latency p95 = %v", q)
	}
	if snap.Histograms["http.tenant.alice.latency.us"].Count != 2 {
		t.Error("tenant latency histogram not recorded")
	}
}

// TestInstrumentPreservesFlusher: SSE handlers downstream type-assert
// http.Flusher; the instrumented writer must keep that working.
func TestInstrumentPreservesFlusher(t *testing.T) {
	reg := obs.NewRegistry()
	flushed := false
	serveInstrumented(t, InstrumentOptions{Registry: reg}, func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("instrumented writer lost http.Flusher")
		}
		w.WriteHeader(http.StatusOK)
		f.Flush()
		flushed = true
	}, nil)
	if !flushed {
		t.Fatal("handler did not run to Flush")
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"alice":                  "alice",
		"a.b-c_d":                "a.b-c_d",
		"we ird/x":               "we_ird_x",
		strings.Repeat("x", 100): strings.Repeat("x", 48),
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
