package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFanoutSlowSubscriberNeverBlocksPublisher is the -race contract
// behind live event streaming: one subscriber draining slowly (and one
// not draining at all) must neither stall the publisher nor corrupt
// delivery to a fast subscriber. Publishers are concurrent, the slow
// reader sleeps between receives, and the publisher side must finish
// promptly — losses land on the laggards as counted drops, never as
// back-pressure.
func TestFanoutSlowSubscriberNeverBlocksPublisher(t *testing.T) {
	f := NewFanout(0, 4)
	reg := NewRegistry()
	f.CountDrops(reg.Counter("fanout.dropped"))
	defer f.Close()

	fast := f.Subscribe()
	slow := f.Subscribe()
	stuck := f.Subscribe() // never reads at all
	defer fast.Cancel()
	defer slow.Cancel()
	defer stuck.Cancel()

	const (
		writers = 4
		perW    = 50
		total   = writers * perW
	)

	// The fast subscriber drains eagerly on its own goroutine.
	var fastGot int
	fastDone := make(chan struct{})
	go func() {
		defer close(fastDone)
		for range fast.C {
			fastGot++
		}
	}()
	// The slow subscriber dawdles: it reads, but far behind the
	// publishers, so it must shed load via drops instead of stalling them.
	var slowGot int
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		for range slow.C {
			slowGot++
			time.Sleep(500 * time.Microsecond)
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				fmt.Fprintf(f, "{\"w\":%d,\"n\":%d}\n", w, i)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Publishing must complete in publisher time, not subscriber time: the
	// slow reader alone would need total*500us to drain everything.
	if floor := time.Duration(total) * 500 * time.Microsecond; elapsed >= floor {
		t.Errorf("publishers took %v — back-pressured by the slow subscriber (floor %v)", elapsed, floor)
	}

	fast.Cancel()
	slow.Cancel()
	<-fastDone
	<-slowDone

	if fastGot+fast.Dropped() != total {
		t.Errorf("fast subscriber: %d received + %d dropped != %d published",
			fastGot, fast.Dropped(), total)
	}
	if slowGot+slow.Dropped() != total {
		t.Errorf("slow subscriber: %d received + %d dropped != %d published",
			slowGot, slow.Dropped(), total)
	}
	// The stuck subscriber kept at most its channel depth; the rest are
	// accounted as drops, and every loss landed on the shared counter.
	if stuck.Dropped() < total-4 {
		t.Errorf("stuck subscriber dropped %d, want >= %d", stuck.Dropped(), total-4)
	}
	wantDrops := int64(fast.Dropped() + slow.Dropped() + stuck.Dropped())
	if got := reg.Counter("fanout.dropped").Value(); got != wantDrops {
		t.Errorf("fanout.dropped = %d, want %d", got, wantDrops)
	}
}
