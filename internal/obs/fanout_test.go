package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func drain(s *Subscription) []string {
	var out []string
	for {
		select {
		case line, ok := <-s.C:
			if !ok {
				return out
			}
			out = append(out, string(line))
		default:
			return out
		}
	}
}

func TestFanoutDeliversJournalLines(t *testing.T) {
	f := NewFanout(16, 16)
	j := NewJournal(f)
	sub := f.Subscribe()
	j.Event("experiment.start", "id", "e1")
	j.Event("experiment.finish", "id", "e1")

	lines := drain(sub)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), lines)
	}
	var ev struct {
		Msg    string `json:"msg"`
		Schema int    `json:"schema"`
		ID     string `json:"id"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if ev.Msg != "experiment.start" || ev.Schema != SchemaVersion || ev.ID != "e1" {
		t.Errorf("event = %+v", ev)
	}
}

func TestFanoutReplaysHistoryToLateSubscriber(t *testing.T) {
	f := NewFanout(4, 4)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(f, "line %d\n", i)
	}
	sub := f.Subscribe()
	lines := drain(sub)
	want := []string{"line 6", "line 7", "line 8", "line 9"}
	if len(lines) != len(want) {
		t.Fatalf("replay = %q, want %q", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("replay[%d] = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestFanoutHandlesFragmentedWrites(t *testing.T) {
	f := NewFanout(8, 8)
	sub := f.Subscribe()
	f.Write([]byte("hel"))
	f.Write([]byte("lo\nwor"))
	f.Write([]byte("ld\n"))
	lines := drain(sub)
	if len(lines) != 2 || lines[0] != "hello" || lines[1] != "world" {
		t.Errorf("lines = %q", lines)
	}
}

func TestFanoutSlowSubscriberDropsNotBlocks(t *testing.T) {
	f := NewFanout(0, 2)
	sub := f.Subscribe()
	for i := 0; i < 10; i++ {
		fmt.Fprintf(f, "line %d\n", i)
	}
	if got := drain(sub); len(got) != 2 {
		t.Errorf("delivered %d lines, want 2 (channel depth)", len(got))
	}
	if d := sub.Dropped(); d != 8 {
		t.Errorf("Dropped = %d, want 8", d)
	}
}

func TestFanoutCloseEndsSubscribers(t *testing.T) {
	f := NewFanout(4, 4)
	sub := f.Subscribe()
	fmt.Fprint(f, "final\n")
	f.Close()
	if _, ok := <-sub.C; !ok {
		t.Fatal("subscriber lost the pre-close line")
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel not closed after Close")
	}
	// Late subscribers still get the retained history, pre-closed.
	late := f.Subscribe()
	if line, ok := <-late.C; !ok || string(line) != "final" {
		t.Errorf("late subscriber: %q, %v", line, ok)
	}
	if _, ok := <-late.C; ok {
		t.Error("late subscription not pre-closed")
	}
	// Writing after Close is a discarded no-op, not a panic.
	fmt.Fprint(f, "after\n")
	sub.Cancel() // double-cancel safe
}

func TestFanoutConcurrentWriteSubscribe(t *testing.T) {
	f := NewFanout(8, 64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				fmt.Fprintf(f, "w%d line %d\n", w, i)
			}
		}(w)
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub := f.Subscribe()
			drain(sub)
			sub.Cancel()
		}()
	}
	wg.Wait()
	f.Close()
}
