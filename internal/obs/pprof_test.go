package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// unmarshalStrict decodes JSON rejecting unknown fields, so schema and
// struct stay in lockstep.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func TestProfilerWritesProfiles(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pprof")
	p, err := StartProfiling(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if name == "heap.pprof" && fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestProfilerNilStop(t *testing.T) {
	var p *Profiler
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}
