package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// TraceContext is the request-scoped identity that causally links
// everything one submission touches: the HTTP request (or CLI run) that
// originated the work, the admission wait, every engine job it schedules,
// every store-tier load and store, and every journal line any of them
// emit. It travels through context.Context (WithTrace/TraceFrom), over
// HTTP in the X-Dirsim-Trace header, and into journals as the "trace"
// attribute — so `dirsimq follow -trace <id>` can reconstruct the whole
// causal chain from JSONL journals alone.
//
// Trace is the stable request/run identifier (16 lowercase hex digits
// when generated here; inbound headers may carry any reasonable token).
// Span, when non-zero, is the execution-trace span currently enclosing
// the work (an exectrace span ID), letting journal events correlate with
// the exported Chrome trace.
//
// Parent, when non-zero, is a *remote* parent: the span ID, in the
// originating process's tracer, under which this process's work should
// nest. It crosses process boundaries in the X-Dirsim-Trace header (the
// coordinator pre-allocates its dispatch span ID and sends it with the
// lease), so a worker's engine spans — shipped home with the result —
// re-parent under the coordinator's dispatch span and the merged Chrome
// trace is a single tree. Span IDs are tracer-local; Parent is only
// meaningful to the process that minted it.
type TraceContext struct {
	Trace  string
	Span   uint64
	Parent uint64
}

// maxTraceIDLen bounds accepted trace identifiers, keeping journal lines
// and response headers sane when callers mint their own.
const maxTraceIDLen = 64

// maxTraceCtxLen bounds the whole encoded context: a maximal trace ID
// plus two 16-hex-digit span fields and their separators.
const maxTraceCtxLen = maxTraceIDLen + 2*(1+16)

// NewTraceID returns a fresh random 64-bit trace identifier in fixed-width
// lowercase hex.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; fall back to
		// a constant rather than panicking an observability path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTraceContext returns a root trace context with a fresh trace ID and
// no enclosing span.
func NewTraceContext() TraceContext { return TraceContext{Trace: NewTraceID()} }

// Valid reports whether the context names a trace.
func (tc TraceContext) Valid() bool { return tc.Trace != "" }

// WithSpan returns a copy with the enclosing span replaced.
func (tc TraceContext) WithSpan(span uint64) TraceContext {
	tc.Span = span
	return tc
}

// WithParent returns a copy with the remote parent span replaced.
func (tc TraceContext) WithParent(parent uint64) TraceContext {
	tc.Parent = parent
	return tc
}

// String encodes the context in the journal/Fanout/header-friendly text
// form: "<trace>" for a root, "<trace>/<span-hex>" inside a span, and
// "<trace>/<span-hex>/<parent-hex>" when a remote parent crosses the
// wire (the span field is left empty — "<trace>//<parent-hex>" — when
// only the parent is set). The empty context encodes as "".
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	if tc.Span == 0 && tc.Parent == 0 {
		return tc.Trace
	}
	s := tc.Trace + "/"
	if tc.Span != 0 {
		s += strconv.FormatUint(tc.Span, 16)
	}
	if tc.Parent != 0 {
		s += "/" + strconv.FormatUint(tc.Parent, 16)
	}
	return s
}

// ParseTraceContext decodes the String form (an inbound X-Dirsim-Trace
// header, a journal attribute). ok is false for an empty, oversized, or
// malformed value — callers then mint a fresh context instead. Both the
// pre-parent two-field form and the bare trace ID parse, so mixed-version
// fleets interoperate.
func ParseTraceContext(s string) (TraceContext, bool) {
	s = strings.TrimSpace(s)
	if s == "" || len(s) > maxTraceCtxLen {
		return TraceContext{}, false
	}
	id, rest, hasSpan := strings.Cut(s, "/")
	if !validTraceID(id) || len(id) > maxTraceIDLen {
		return TraceContext{}, false
	}
	tc := TraceContext{Trace: id}
	if !hasSpan {
		return tc, true
	}
	spanHex, parentHex, hasParent := strings.Cut(rest, "/")
	if spanHex != "" {
		span, err := strconv.ParseUint(spanHex, 16, 64)
		if err != nil {
			return TraceContext{}, false
		}
		tc.Span = span
	} else if !hasParent {
		// "<trace>/" with nothing after the separator is malformed.
		return TraceContext{}, false
	}
	if hasParent {
		parent, err := strconv.ParseUint(parentHex, 16, 64)
		if err != nil {
			return TraceContext{}, false
		}
		tc.Parent = parent
	}
	return tc, true
}

// validTraceID accepts the token shapes a trace ID may take: letters,
// digits, '-', '_', '.' — wide enough for caller-minted IDs, narrow
// enough to embed safely in headers, journals and file names.
func validTraceID(id string) bool {
	if id == "" {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// traceCtxKey carries a TraceContext through a context.Context.
type traceCtxKey struct{}

// WithTrace returns a context carrying tc; callees recover it with
// TraceFrom. An invalid tc returns ctx unchanged.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	if !tc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom returns the trace context carried by ctx, or ok == false when
// there is none (untraced work).
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}

// traceAttrs appends the ctx's trace identity (and enclosing span, when
// set) to a journal attribute list; untraced contexts leave it unchanged.
func traceAttrs(ctx context.Context, attrs []any) []any {
	tc, ok := TraceFrom(ctx)
	if !ok {
		return attrs
	}
	attrs = append(attrs, "trace", tc.Trace)
	if tc.Span != 0 {
		attrs = append(attrs, "span", fmt.Sprintf("%x", tc.Span))
	}
	if tc.Parent != 0 {
		// The remote parent: the upstream process's span this work nests
		// under. dirsimq timeline uses it to stitch worker journal lines
		// to their coordinator dispatch spans.
		attrs = append(attrs, "pspan", fmt.Sprintf("%x", tc.Parent))
	}
	return attrs
}
