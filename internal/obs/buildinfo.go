package obs

import (
	"runtime/debug"
	"strings"
	"sync"
)

// Build returns the binary's build identity: the main module's version
// plus the embedded VCS revision (12 hex digits, "+dirty" when the tree
// was modified), e.g. "(devel)+a1b2c3d4e5f6". Binaries print it for
// -version; manifests, worker join events, and the build_info gauge
// stamp it so every artifact names the code that produced it. Falls
// back to "unknown" when the binary carries no build info (tests,
// `go run` from a non-VCS tree).
func Build() string {
	buildOnce.Do(func() {
		buildID = readBuild(debug.ReadBuildInfo())
	})
	return buildID
}

var (
	buildOnce sync.Once
	buildID   string
)

func readBuild(bi *debug.BuildInfo, ok bool) string {
	if !ok || bi == nil {
		return "unknown"
	}
	version := bi.Main.Version
	if version == "" {
		version = "(devel)"
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return version
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	// Recent toolchains stamp pseudo-versions that already embed the
	// revision (and "+dirty"); don't duplicate the suffix then.
	if strings.Contains(version, rev) {
		if dirty != "" && !strings.Contains(version, "dirty") {
			return version + dirty
		}
		return version
	}
	return version + "+" + rev + dirty
}

// RegisterBuildInfo exposes the build identity on the registry the
// Prometheus way: a constant-1 gauge whose name embeds the (sanitized)
// build string, e.g. build_info._devel_+a1b2c3d4e5f6 → rendered by
// promName as build_info__devel__a1b2c3d4e5f6. Scrapes join on it to
// attribute metrics to a deploy. No-op on a nil registry.
func RegisterBuildInfo(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("build_info." + SanitizeLabel(Build())).Set(1)
}

// SanitizeLabel makes an untrusted or free-form value safe to embed in
// a metric name: anything outside [a-zA-Z0-9._-] becomes '_', and the
// result is capped at 48 bytes so hostile or unbounded inputs cannot
// bloat the registry.
func SanitizeLabel(s string) string {
	const maxLabel = 48
	if len(s) > maxLabel {
		s = s[:maxLabel]
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}
