package obs

import (
	"strings"

	"dirsim/internal/event"
	exectrace "dirsim/internal/obs/trace"
)

// InvalBuckets are the histogram bounds for invalidation-count
// distributions — the resolution of the paper's Figure 1, whose headline
// is how much of the mass sits at 0 and 1.
var InvalBuckets = []int64{0, 1, 2, 4, 8, 16, 32}

// ProtoSampler is the sim.Telemetry sink the engine attaches to a
// simulation when protocol sampling is on: every coherence-relevant
// event updates per-scheme counters and the live invalidation histogram
// (the Figure 1 distribution forming in real time on /runz and
// /metrics), and every Nth such event additionally lands as an instant
// on the simulation's trace lane, so Perfetto shows where in the run
// coherence activity clusters.
//
// A sampler belongs to one simulation goroutine — the lane discipline
// and the unsynchronized stride counter both require it — but the
// metric instruments it updates are shared per scheme across the whole
// registry, so concurrent simulations of one scheme accumulate into one
// family.
type ProtoSampler struct {
	every  int64
	n      int64
	lane   *exectrace.Lane
	parent exectrace.SpanID

	cleanWrites  *Counter
	broadcasts   *Counter
	forcedInvals *Counter
	invals       *Histogram
}

// NewProtoSampler builds a sampler for one simulation of scheme,
// recording an instant every stride coherence events (stride < 1 is
// clamped to 1) onto lane under parent; a nil lane records metrics only.
func NewProtoSampler(reg *Registry, scheme string, stride int, lane *exectrace.Lane, parent exectrace.SpanID) *ProtoSampler {
	if stride < 1 {
		stride = 1
	}
	base := "sim.proto." + strings.ToLower(scheme)
	return &ProtoSampler{
		every:        int64(stride),
		lane:         lane,
		parent:       parent,
		cleanWrites:  reg.Counter(base + ".clean_writes"),
		broadcasts:   reg.Counter(base + ".broadcasts"),
		forcedInvals: reg.Counter(base + ".forced_invals"),
		invals:       reg.Histogram(base+".invals_clean_write", InvalBuckets),
	}
}

// Coherence implements sim.Telemetry. out is already filtered to
// coherence-relevant events by the simulation loop.
func (p *ProtoSampler) Coherence(out event.Result) {
	switch out.Type {
	case event.WrHitClean, event.WrMissClean:
		p.cleanWrites.Inc()
		p.invals.Observe(int64(out.Holders))
	}
	if out.Broadcast && !out.Update {
		p.broadcasts.Inc()
	}
	if out.ForcedInval > 0 {
		p.forcedInvals.Add(int64(out.ForcedInval))
	}
	p.n++
	if p.lane != nil && p.n%p.every == 0 {
		p.lane.Instant(p.parent, "proto", out.Type.String(),
			"holders", out.Holders, "inval", out.Inval,
			"broadcast", out.Broadcast, "forced_inval", out.ForcedInval)
	}
}
