package obs

import (
	"sync"
	"testing"
	"time"
)

// TestHistogramConcurrentObserveAndQuantile hammers one histogram from
// many writers while readers snapshot and derive quantiles mid-flight.
// Under -race this pins the lock-free counters; the final snapshot must
// account for every observation with sane quantiles.
func TestHistogramConcurrentObserveAndQuantile(t *testing.T) {
	h := NewRegistry().Histogram("test.latency.us", DurationBucketsUS)
	const writers, perWriter = 8, 5_000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: snapshots taken while writes are in flight must be
	// internally consistent enough to quantile without panicking, and
	// monotone in q.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot()
				p50, p99 := s.Quantile(0.50), s.Quantile(0.99)
				if p50 < 0 || p99 < 0 || p50 > p99 {
					t.Errorf("mid-flight quantiles inconsistent: p50=%v p99=%v", p50, p99)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Spread observations across the bucket range.
				h.Observe(int64((w*perWriter + i) % 2_000_000))
			}
		}()
	}
	// Wait for all writers by polling the count, then stop the readers.
	for h.Count() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	var inBuckets int64
	for _, n := range s.Counts {
		inBuckets += n
	}
	if inBuckets != s.Count {
		t.Errorf("bucket counts sum to %d, want %d (no lost observations)", inBuckets, s.Count)
	}
	if p50, p99 := s.Quantile(0.50), s.Quantile(0.99); p50 <= 0 || p99 < p50 {
		t.Errorf("final quantiles wrong: p50=%v p99=%v", p50, p99)
	}
}

// TestPhasesConcurrentRecordAndStats drives Phases.Record from many
// goroutines (several phases each) with Stats readers interleaved; the
// final breakdown must account for every recorded duration exactly.
func TestPhasesConcurrentRecordAndStats(t *testing.T) {
	var p Phases
	const goroutines, iters = 10, 2_000
	names := []string{"generate", "simulate", "merge"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				p.Record(names[i%len(names)], time.Microsecond)
				if i%500 == 0 {
					// Concurrent reader: must observe a consistent copy.
					for _, s := range p.Stats() {
						if s.Count < 0 || s.Total < 0 {
							t.Errorf("mid-flight stat negative: %+v", s)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	stats := p.Stats()
	if len(stats) != len(names) {
		t.Fatalf("got %d phases, want %d: %+v", len(stats), len(names), stats)
	}
	var count int64
	var total time.Duration
	for _, s := range stats {
		count += s.Count
		total += s.Total
	}
	if want := int64(goroutines * iters); count != want {
		t.Errorf("total count = %d, want %d", count, want)
	}
	if want := time.Duration(goroutines*iters) * time.Microsecond; total != want {
		t.Errorf("total time = %v, want %v", total, want)
	}

	// Stats is a copy: mutating it must not corrupt the accumulator.
	stats[0].Count = -1
	if p.Stats()[0].Count == -1 {
		t.Error("Stats returned a live reference, not a copy")
	}
}
