package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
)

// RotatingWriter is a size-bounded file writer for long-running
// journals: when the live file at path would grow past maxBytes, it is
// renamed to path.1 — existing segments shift to path.2 … path.keep and
// the oldest falls off — and writing continues into a fresh file. A
// line (one Write call) is never split across segments.
type RotatingWriter struct {
	mu        sync.Mutex
	path      string
	maxBytes  int64
	keep      int
	f         *os.File
	size      int64
	rotations int64
	onRotate  func(total int64, w io.Writer)
}

// NewRotatingWriter opens (truncating) the live file at path. keep < 1
// keeps one rotated segment.
func NewRotatingWriter(path string, maxBytes int64, keep int) (*RotatingWriter, error) {
	if keep < 1 {
		keep = 1
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &RotatingWriter{path: path, maxBytes: maxBytes, keep: keep, f: f}, nil
}

// OnRotate installs a callback fired after each completed rotation with
// the total rotation count and a writer into the fresh segment:
// whatever fn writes lands before the line that triggered the rotation,
// so a journal's journal.rotated marker opens every segment. fn runs
// with the writer's lock held — it must write only to w, never back
// through the journal that owns this writer (a re-entrant journal write
// would deadlock on the journal's line lock).
func (rw *RotatingWriter) OnRotate(fn func(total int64, w io.Writer)) {
	rw.mu.Lock()
	rw.onRotate = fn
	rw.mu.Unlock()
}

// SegmentPaths returns the rotated-set read order for a journal at
// path: oldest segment first, the live file last. Only segments that
// exist are returned; a bare, never-rotated journal returns just path.
func SegmentPaths(path string) []string {
	var out []string
	// Collect path.N for N = 1.. until a gap; read oldest (largest N)
	// first so the set replays in write order.
	n := 0
	for {
		if _, err := os.Stat(path + "." + strconv.Itoa(n+1)); err != nil {
			break
		}
		n++
	}
	for i := n; i >= 1; i-- {
		out = append(out, path+"."+strconv.Itoa(i))
	}
	return append(out, path)
}

// Write appends p (one journal line) to the live file, rotating first
// when it would overflow. Oversized single lines are written anyway —
// rotation bounds growth, it never drops data.
func (rw *RotatingWriter) Write(p []byte) (int, error) {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.size > 0 && rw.size+int64(len(p)) > rw.maxBytes {
		if err := rw.rotateLocked(); err != nil {
			return 0, err
		}
		if rw.onRotate != nil {
			rw.onRotate(rw.rotations, segmentHead{rw})
		}
	}
	n, err := rw.f.Write(p)
	rw.size += int64(n)
	return n, err
}

// segmentHead is the writer handed to OnRotate callbacks: it appends to
// the freshly opened live file under the already-held lock, keeping the
// size accounting honest so a large marker still triggers the next
// rotation on time.
type segmentHead struct{ rw *RotatingWriter }

func (h segmentHead) Write(p []byte) (int, error) {
	n, err := h.rw.f.Write(p)
	h.rw.size += int64(n)
	return n, err
}

// rotateLocked shifts segments and reopens the live file.
func (rw *RotatingWriter) rotateLocked() error {
	if err := rw.f.Close(); err != nil {
		return err
	}
	os.Remove(seg(rw.path, rw.keep)) //nolint:errcheck // the oldest segment may not exist
	for i := rw.keep - 1; i >= 1; i-- {
		if _, err := os.Stat(seg(rw.path, i)); err == nil {
			if err := os.Rename(seg(rw.path, i), seg(rw.path, i+1)); err != nil {
				return fmt.Errorf("obs: rotate: %w", err)
			}
		}
	}
	if err := os.Rename(rw.path, seg(rw.path, 1)); err != nil {
		return fmt.Errorf("obs: rotate: %w", err)
	}
	f, err := os.Create(rw.path)
	if err != nil {
		return fmt.Errorf("obs: rotate: %w", err)
	}
	rw.f, rw.size = f, 0
	rw.rotations++
	return nil
}

func seg(path string, n int) string { return path + "." + strconv.Itoa(n) }

// Rotations reports how many rotations have happened.
func (rw *RotatingWriter) Rotations() int64 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.rotations
}

// Close closes the live file.
func (rw *RotatingWriter) Close() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.f.Close()
}
