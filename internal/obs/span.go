package obs

import (
	"sort"
	"sync"
	"time"
)

// Phases accumulates wall time per named phase of a run — "generate",
// "simulate", "merge", "experiment" — so a finished run can print where
// its time went. The zero value is ready to use; all methods are safe
// for concurrent use.
type Phases struct {
	mu sync.Mutex
	m  map[string]*PhaseStat
}

// PhaseStat is the accumulated time of one phase.
type PhaseStat struct {
	Phase string        `json:"phase"`
	Count int64         `json:"count"`
	Total time.Duration `json:"total_ns"`
}

// Record adds one timed region to the phase.
func (p *Phases) Record(phase string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.m == nil {
		p.m = make(map[string]*PhaseStat)
	}
	s, ok := p.m[phase]
	if !ok {
		s = &PhaseStat{Phase: phase}
		p.m[phase] = s
	}
	s.Count++
	s.Total += d
}

// Stats returns a copy of every phase, largest total first (ties broken
// by name, so the order is deterministic).
func (p *Phases) Stats() []PhaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseStat, 0, len(p.m))
	for _, s := range p.m {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// Span is one timed region of a run, opened by Recorder.StartSpan (or
// StartSpan for a free-standing measurement) and closed by End.
type Span struct {
	// Phase groups the span into the per-phase breakdown; Name
	// identifies the specific region ("table4", "sim:Dir0B@pops").
	Phase, Name string

	start  time.Time
	phases *Phases
	jnl    *Journal
}

// StartSpan opens a free-standing span with no recorder attached; End
// still returns the measured duration.
func StartSpan(phase, name string) *Span {
	return &Span{Phase: phase, Name: name, start: time.Now()}
}

// End closes the span, records its duration into the attached phase
// breakdown and journal (if any), and returns the duration. A non-nil
// err marks the journal event as failed.
func (s *Span) End(err error) time.Duration {
	d := time.Since(s.start)
	if s.phases != nil {
		s.phases.Record(s.Phase, d)
	}
	if s.jnl != nil {
		if err != nil {
			s.jnl.Error(s.Phase+".finish", err, "name", s.Name, "dur_us", d.Microseconds())
		} else {
			s.jnl.Event(s.Phase+".finish", "name", s.Name, "dur_us", d.Microseconds())
		}
	}
	return d
}
