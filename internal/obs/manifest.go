package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// RunManifest records everything needed to understand (and re-run) one
// cmd/experiments invocation: the configuration and workload seeds, the
// per-experiment wall times, the engine's lifetime counters, the cache
// hit ratio, and the per-phase time breakdown.
type RunManifest struct {
	// Schema is the manifest format version (SchemaVersion at write
	// time); parsers branch on it to survive format changes.
	Schema  int    `json:"schema"`
	Command string `json:"command"`
	// Build is the binary's build identity (obs.Build): module version
	// plus embedded VCS revision.
	Build       string           `json:"build,omitempty"`
	Start       time.Time        `json:"start"`
	WallSeconds float64          `json:"wall_seconds"`
	Config      ManifestConfig   `json:"config"`
	Experiments []ExperimentRun  `json:"experiments"`
	Engine      map[string]int64 `json:"engine_counters"`
	// CacheHitRatio is hits / (hits + misses) over the engine's keyed
	// lookups; 0 when the run performed none.
	CacheHitRatio float64     `json:"cache_hit_ratio"`
	Phases        []PhaseStat `json:"phases"`
	// Store records the durable second-tier store's activity, when the
	// run used one (-store).
	Store *ManifestStore `json:"store,omitempty"`
}

// ManifestStore is the durable store's view of the run: how much was
// served from disk (hits), what was computed and written through
// (misses, writes), and how many entries failed integrity revalidation
// (rejected). Entries/Bytes describe the store after the run.
type ManifestStore struct {
	Dir       string `json:"dir"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Rejected  int64  `json:"rejected"`
	Writes    int64  `json:"writes"`
	Evictions int64  `json:"evictions,omitempty"`
}

// ManifestConfig is the run's input configuration.
type ManifestConfig struct {
	Run      string `json:"run"`
	Refs     int    `json:"refs"`
	CPUs     int    `json:"cpus"`
	Check    bool   `json:"check"`
	Parallel int    `json:"parallel"`
	// Batch is the resolved simulation batch size in references; it
	// tunes throughput only, never results.
	Batch int `json:"batch"`
	// Shards is the resolved intra-trace shard count (-shards); 0 or 1
	// means sequential simulation. Sharded results are bit-identical to
	// sequential, so it tunes throughput only, never results.
	Shards   int               `json:"shards,omitempty"`
	Executor string            `json:"executor"`
	Seeds    map[string]uint64 `json:"seeds,omitempty"`
	// Faults is the fault-injection spec the run was executed under and
	// FaultSeed the seed driving its schedule; both empty/zero for clean
	// runs. Together they make a fault run reproducible: the same spec
	// and seed replay the identical fault schedule.
	Faults    string `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Trace is the execution-trace output path (-trace) and Listen the
	// HTTP monitor address (-listen); empty when off. ProtoSample is the
	// protocol-telemetry sampling stride (0 = off).
	Trace       string `json:"trace,omitempty"`
	Listen      string `json:"listen,omitempty"`
	ProtoSample int    `json:"proto_sample,omitempty"`
}

// ExperimentRun is one experiment's outcome.
type ExperimentRun struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

// HitRatio computes hits / (hits + misses), zero when there were no
// lookups.
func HitRatio(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Write serializes the manifest as indented JSON to path; "-" selects
// standard output.
func (m *RunManifest) Write(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("obs: manifest: %w", err)
	}
	return nil
}
