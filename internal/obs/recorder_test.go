package obs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestRecorderJobFlow(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(nil, NewJournal(&buf))

	ctx := context.Background()
	rec.JobScheduled(ctx, "trace:pops", "trace", "abc123")
	rec.JobStarted(ctx, "trace:pops", "trace", "abc123")
	rec.JobFinished(ctx, "trace:pops", "trace", "abc123", 5*time.Millisecond, false, nil)
	rec.JobFinished(ctx, "sim:Dir0B@pops", "sim", "def456", 7*time.Millisecond, true, nil)
	rec.JobFinished(ctx, "merge:Dir0B", "merge", "", time.Millisecond, false, errors.New("boom"))
	rec.StreamEnded(ctx, "pops", 12, 3)

	events := decodeLines(t, buf.Bytes())
	var msgs []string
	for _, e := range events {
		msgs = append(msgs, e["msg"].(string))
	}
	want := []string{"job.scheduled", "job.start", "job.finish", "job.finish", "job.finish", "stream.end"}
	if len(msgs) != len(want) {
		t.Fatalf("events = %v, want %v", msgs, want)
	}
	for i := range want {
		if msgs[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, msgs[i], want[i])
		}
	}
	if events[4]["level"] != "ERROR" || events[4]["error"] != "boom" {
		t.Errorf("failed job not journaled at error level: %v", events[4])
	}
	if events[5]["chunks"] != float64(12) || events[5]["stalls"] != float64(3) {
		t.Errorf("stream.end attrs wrong: %v", events[5])
	}

	// Job kinds fold into the phase breakdown: trace → generate,
	// sim → simulate, merge → merge.
	phases := map[string]PhaseStat{}
	for _, s := range rec.Phases() {
		phases[s.Phase] = s
	}
	if phases["generate"].Count != 1 || phases["generate"].Total != 5*time.Millisecond {
		t.Errorf("generate phase = %+v", phases["generate"])
	}
	if phases["simulate"].Count != 1 || phases["simulate"].Total != 7*time.Millisecond {
		t.Errorf("simulate phase = %+v", phases["simulate"])
	}
	if phases["merge"].Count != 1 {
		t.Errorf("merge phase = %+v", phases["merge"])
	}

	// And into per-phase duration histograms on the registry.
	h := rec.Registry().Histogram("engine.job.simulate.us", nil)
	if h.Count() != 1 {
		t.Errorf("simulate histogram count = %d, want 1", h.Count())
	}
}

func TestRecorderSpan(t *testing.T) {
	var buf bytes.Buffer
	rec := NewRecorder(NewRegistry(), NewJournal(&buf))
	sp := rec.StartSpan("experiment", "table4")
	d := sp.End(nil)
	if d < 0 {
		t.Errorf("span duration negative: %v", d)
	}
	events := decodeLines(t, buf.Bytes())
	if len(events) != 2 || events[0]["msg"] != "experiment.start" ||
		events[1]["msg"] != "experiment.finish" || events[1]["name"] != "table4" {
		t.Errorf("span events wrong: %v", events)
	}
	if len(rec.Phases()) != 1 || rec.Phases()[0].Phase != "experiment" {
		t.Errorf("phases = %v", rec.Phases())
	}
}

// TestRecorderConcurrentUse exercises one shared Recorder — spans,
// engine-observer callbacks, and fault events — from many goroutines at
// once, the way a parallel experiment run drives it. Run under -race
// this pins the recorder's concurrency safety; afterwards the journal
// must still be whole-line JSONL and the phase breakdown must account
// for every span and job.
func TestRecorderConcurrentUse(t *testing.T) {
	var buf syncBuffer
	rec := NewRecorder(NewRegistry(), NewJournal(&buf))
	const goroutines, iters = 12, 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := WithTrace(context.Background(), TraceContext{Trace: fmt.Sprintf("t%d", g)})
			for i := 0; i < iters; i++ {
				id := fmt.Sprintf("sim:S%d@w%d", g, i)
				sp := rec.StartSpan("experiment", id)
				rec.JobScheduled(ctx, id, "sim", "k")
				rec.JobStarted(ctx, id, "sim", "k")
				rec.JobFinished(ctx, id, "sim", "k", time.Microsecond, i%2 == 0, nil)
				rec.JobRetried(ctx, id, 1, time.Microsecond, errors.New("transient"))
				rec.StreamEnded(ctx, "w", 4, 1)
				sp.End(nil)
			}
		}()
	}
	wg.Wait()

	decodeLines(t, buf.Bytes()) // every journal line is valid JSON
	phases := map[string]PhaseStat{}
	for _, s := range rec.Phases() {
		phases[s.Phase] = s
	}
	if n := phases["experiment"].Count; n != goroutines*iters {
		t.Errorf("experiment spans = %d, want %d", n, goroutines*iters)
	}
	if n := phases["simulate"].Count; n != goroutines*iters {
		t.Errorf("simulate jobs = %d, want %d", n, goroutines*iters)
	}
	if n := rec.Registry().Histogram("engine.stream.chunks", nil).Count(); n != goroutines*iters {
		t.Errorf("stream histogram count = %d, want %d", n, goroutines*iters)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler
// serializes its own writes, but the test's final read must not race
// with them either.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Bytes() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Bytes()
}

func TestFreestandingSpan(t *testing.T) {
	sp := StartSpan("x", "y")
	if d := sp.End(nil); d < 0 {
		t.Errorf("duration negative: %v", d)
	}
}

func TestHitRatio(t *testing.T) {
	if got := HitRatio(0, 0); got != 0 {
		t.Errorf("HitRatio(0,0) = %v", got)
	}
	if got := HitRatio(3, 1); got != 0.75 {
		t.Errorf("HitRatio(3,1) = %v", got)
	}
}

func TestManifestWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	m := &RunManifest{
		Command:       "experiments",
		WallSeconds:   1.5,
		Config:        ManifestConfig{Run: "all", Refs: 400000, CPUs: 4, Parallel: 8, Executor: "parallel"},
		Experiments:   []ExperimentRun{{ID: "table4", Seconds: 0.8}},
		Engine:        map[string]int64{"engine.cache.hits": 10},
		CacheHitRatio: 0.5,
		Phases:        []PhaseStat{{Phase: "simulate", Count: 4, Total: time.Second}},
	}
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RunManifest
	if err := unmarshalStrict(data, &back); err != nil {
		t.Fatalf("manifest does not round-trip: %v", err)
	}
	if back.Config.Run != "all" || back.Experiments[0].ID != "table4" ||
		back.Engine["engine.cache.hits"] != 10 || back.Phases[0].Phase != "simulate" {
		t.Errorf("round-tripped manifest wrong: %+v", back)
	}
}
