package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// decodeLines decodes every JSONL line into a generic map, failing the
// test on any malformed line.
func decodeLines(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", len(out)+1, err, sc.Text())
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJournalRoundTrip writes typed events and decodes them back from
// the JSONL stream, checking the envelope and attribute values survive.
func TestJournalRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Event("run.start", "run", "all", "refs", 400000)
	j.Event("job.finish", "job", "sim:Dir0B@pops", "kind", "sim",
		"dur_us", int64(1234), "cache_hit", false)
	j.Error("error", errors.New("boom"), "failed", "table4")

	events := decodeLines(t, buf.Bytes())
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0]["msg"] != "run.start" || events[0]["run"] != "all" ||
		events[0]["refs"] != float64(400000) {
		t.Errorf("run.start event wrong: %v", events[0])
	}
	if _, ok := events[0]["time"]; !ok {
		t.Error("event missing time field")
	}
	if events[1]["job"] != "sim:Dir0B@pops" || events[1]["dur_us"] != float64(1234) ||
		events[1]["cache_hit"] != false {
		t.Errorf("job.finish event wrong: %v", events[1])
	}
	if events[2]["level"] != "ERROR" || events[2]["error"] != "boom" ||
		events[2]["failed"] != "table4" {
		t.Errorf("error event wrong: %v", events[2])
	}
}

func TestJournalNilIsNoop(t *testing.T) {
	var j *Journal
	j.Event("x")
	j.Error("y", errors.New("e"))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalConcurrentWritersProduceWholeLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j.Event("job.finish", "g", g, "i", i)
			}
		}()
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events := decodeLines(t, data)
	if len(events) != 8*50 {
		t.Errorf("got %d events, want %d", len(events), 8*50)
	}
}

// atomicFailWriter accepts whole writes until its budget is spent, then
// rejects them entirely — modelling a sink that fails between records (a
// closed pipe, a full disk under line-buffered writes). It never takes a
// partial write, the property the journal relies on for valid output.
type atomicFailWriter struct {
	budget int
	buf    bytes.Buffer
}

func (w *atomicFailWriter) Write(p []byte) (int, error) {
	if w.buf.Len()+len(p) > w.budget {
		return 0, errors.New("sink full")
	}
	return w.buf.Write(p)
}

// TestJournalTruncatedSinkKeepsValidJSONL starves the journal's sink
// mid-run: everything that did land must still be valid JSONL (dropped
// events are fine, spliced half-lines are not), and the journal must
// keep accepting events without panicking after the sink dies.
func TestJournalTruncatedSinkKeepsValidJSONL(t *testing.T) {
	w := &atomicFailWriter{budget: 700}
	j := NewJournal(w)
	for i := 0; i < 50; i++ {
		j.Event("job.finish", "i", i, "pad", strings.Repeat("x", 24))
	}
	events := decodeLines(t, w.buf.Bytes())
	if len(events) == 0 || len(events) >= 50 {
		t.Fatalf("got %d events; the sink budget should admit some but not all", len(events))
	}
	for _, m := range events {
		if int(m["schema"].(float64)) != SchemaVersion {
			t.Fatalf("event missing schema %d: %v", SchemaVersion, m)
		}
	}
}

// lineAtomicWriter fails the test if any Write is not exactly one
// complete, self-contained JSON line. That atomicity — one record, one
// Write, one line — is what makes a crash-truncated journal parsable up
// to its last newline and concurrent writers unable to interleave.
type lineAtomicWriter struct {
	t  *testing.T
	mu sync.Mutex
	n  int
}

func (w *lineAtomicWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(p) == 0 || p[len(p)-1] != '\n' || bytes.IndexByte(p[:len(p)-1], '\n') >= 0 {
		w.t.Errorf("record is not one complete line: %q", p)
	}
	var m map[string]any
	if err := json.Unmarshal(p, &m); err != nil {
		w.t.Errorf("record is not self-contained JSON: %v\n%s", err, p)
	}
	w.n++
	return len(p), nil
}

// TestJournalWritesAreLineAtomic pins the one-record-one-Write-one-line
// property under concurrency: every write the sink sees parses on its
// own, so a reader of a concurrently written or crash-truncated journal
// only ever loses the trailing partial line.
func TestJournalWritesAreLineAtomic(t *testing.T) {
	w := &lineAtomicWriter{t: t}
	j := NewJournal(w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				j.Event("job.finish", "g", g, "i", i)
				j.Error("job.retry", errors.New("transient"), "g", g)
			}
		}()
	}
	wg.Wait()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n != 8*25*2 {
		t.Errorf("sink saw %d writes, want %d", w.n, 8*25*2)
	}
}

func TestOpenJournalStderrAliases(t *testing.T) {
	for _, alias := range []string{"-", "stderr"} {
		j, err := OpenJournal(alias)
		if err != nil {
			t.Fatalf("%q: %v", alias, err)
		}
		if j.closer != nil {
			t.Errorf("%q: journal owns a closer for a borrowed stream", alias)
		}
	}
}

func TestJournalErrorLevelIsFilterable(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Error("error", errors.New("two experiments failed"))
	if !strings.Contains(buf.String(), `"level":"ERROR"`) {
		t.Errorf("error event not emitted at error level: %s", buf.String())
	}
}
