package exectrace

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestSpanRecordsOnEnd(t *testing.T) {
	tr := New()
	l := tr.Lane()
	root := l.Span(0, "job", "sim:Dir0B@pops")
	child := l.Span(root.ID(), "attempt", "attempt:0").Arg("n", 1)
	child.End(nil)
	root.Arg("cache_hit", false).End(errors.New("boom"))
	l.Instant(root.ID(), "engine", "retry", "attempt", 0)
	l.Release()

	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	r, c, i := byName["sim:Dir0B@pops"], byName["attempt:0"], byName["retry"]
	if r.Ph != 'X' || c.Ph != 'X' || i.Ph != 'i' {
		t.Errorf("phases wrong: %c %c %c", r.Ph, c.Ph, i.Ph)
	}
	if c.Parent != r.ID || i.Parent != r.ID {
		t.Errorf("parents wrong: child=%d instant=%d root=%d", c.Parent, i.Parent, r.ID)
	}
	if r.Err != "boom" {
		t.Errorf("root error = %q, want boom", r.Err)
	}
	// The child's interval must sit inside the parent's.
	if c.TS < r.TS || c.TS+c.Dur > r.TS+r.Dur {
		t.Errorf("child [%d,%d] escapes parent [%d,%d]", c.TS, c.TS+c.Dur, r.TS, r.TS+r.Dur)
	}
	if len(c.Args) != 1 || c.Args[0].Key != "n" {
		t.Errorf("child args wrong: %v", c.Args)
	}
}

func TestNilTracerLaneSpanAreInert(t *testing.T) {
	var tr *Tracer
	l := tr.Lane()
	if l != nil {
		t.Fatal("nil tracer produced a lane")
	}
	sp := l.Span(0, "a", "b")
	if sp != nil {
		t.Fatal("nil lane produced a span")
	}
	sp.Arg("k", 1)
	sp.End(nil)
	if sp.ID() != 0 {
		t.Error("nil span has a non-zero ID")
	}
	l.Instant(0, "a", "b", "k", 1)
	l.Release()
	if l.TID() != 0 {
		t.Error("nil lane has a tid")
	}
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer has events: %v", evs)
	}
}

// TestLanesAreRecycledLIFO pins the worker-occupancy property: serial
// acquire/release reuses one lane, concurrent holders get distinct lanes.
func TestLanesAreRecycledLIFO(t *testing.T) {
	tr := New()
	a := tr.Lane()
	atid := a.TID()
	a.Release()
	b := tr.Lane()
	if b.TID() != atid {
		t.Errorf("serial reacquire got lane %d, want %d", b.TID(), atid)
	}
	c := tr.Lane()
	if c.TID() == b.TID() {
		t.Error("two held lanes share a tid")
	}
	c.Release()
	b.Release()
}

// TestConcurrentLanes hammers the tracer from many goroutines starting
// and ending interleaved spans; under -race this is the data-race check
// for lane ownership and ID issue.
func TestConcurrentLanes(t *testing.T) {
	tr := New()
	const goroutines, spansPerG = 16, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansPerG; i++ {
				l := tr.Lane()
				sp := l.Span(0, "job", "work")
				child := l.Span(sp.ID(), "attempt", "attempt:0")
				l.Instant(child.ID(), "engine", "tick", "i", i)
				child.End(nil)
				sp.End(nil)
				l.Release()
			}
		}()
	}
	wg.Wait()
	evs := tr.Events()
	if len(evs) != goroutines*spansPerG*3 {
		t.Fatalf("got %d events, want %d", len(evs), goroutines*spansPerG*3)
	}
	seen := make(map[uint64]bool, len(evs))
	for _, ev := range evs {
		if seen[ev.ID] {
			t.Fatalf("duplicate event ID %d", ev.ID)
		}
		seen[ev.ID] = true
		if ev.TID < 1 {
			t.Fatalf("event on invalid lane %d", ev.TID)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New()
	l := tr.Lane()
	defer l.Release()
	sp := l.Span(0, "job", "root")
	defer sp.End(nil)

	ctx := NewContext(context.Background(), l, sp.ID())
	gotLane, gotSpan := FromContext(ctx)
	if gotLane != l || gotSpan != sp.ID() {
		t.Errorf("context round trip lost the lane/span: %v %v", gotLane, gotSpan)
	}
	if lane, span := FromContext(context.Background()); lane != nil || span != 0 {
		t.Error("empty context produced a lane")
	}
}
