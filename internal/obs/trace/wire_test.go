package exectrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// remoteTrace builds a worker-shaped trace: a root job span with a
// nested child on one lane and an instant on the same lane.
func remoteTrace() *Tracer {
	tr := New()
	l := tr.Lane()
	root := l.Span(0, "job", "sim:Dir1NB@pops")
	child := l.Span(root.ID(), "shard", "shard-0")
	l.Instant(child.ID(), "engine", "chunk", "n", 1)
	child.End(nil)
	root.End(nil)
	l.Release()
	return tr
}

// TestWireRoundTripReparents: a worker's exported spans import into the
// coordinator's tracer with IDs remapped, roots adopted under the
// dispatch span, and the merged event log orphan-free.
func TestWireRoundTripReparents(t *testing.T) {
	remote := remoteTrace()
	w := remote.ExportWire()
	if w == nil || len(w.Events) != 3 {
		t.Fatalf("ExportWire = %+v, want 3 events", w)
	}

	local := New()
	ll := local.Lane()
	dispatch := ll.Span(0, "dist", "dist:lease")
	st := local.Import(w, ImportOpts{
		Parent: dispatch.ID(), PID: 2, LanePrefix: "w1",
	})
	dispatch.End(nil)
	ll.Release()

	if st.Events != 3 {
		t.Fatalf("ImportStats = %+v, want 3 events", st)
	}
	if st.Reparented != 1 {
		t.Errorf("Reparented = %d, want 1 (the remote root)", st.Reparented)
	}
	evs := local.Events()
	if len(evs) != 4 {
		t.Fatalf("merged trace has %d events, want 4", len(evs))
	}
	if orphans := Orphans(evs); len(orphans) != 0 {
		t.Fatalf("merged trace has orphans: %+v", orphans)
	}
	byName := map[string]Event{}
	for _, ev := range evs {
		byName[ev.Name] = ev
	}
	d, root, child, inst := byName["dist:lease"], byName["sim:Dir1NB@pops"], byName["shard-0"], byName["chunk"]
	if root.Parent != d.ID {
		t.Errorf("remote root parent = %d, want dispatch %d", root.Parent, d.ID)
	}
	if child.Parent != root.ID || inst.Parent != child.ID {
		t.Errorf("remote structure lost: child.Parent=%d root.ID=%d inst.Parent=%d child.ID=%d",
			child.Parent, root.ID, inst.Parent, child.ID)
	}
	// Remote IDs were remapped into the local space: no collisions.
	seen := map[uint64]bool{}
	for _, ev := range evs {
		if ev.ID != 0 {
			if seen[ev.ID] {
				t.Errorf("duplicate span ID %d after import", ev.ID)
			}
			seen[ev.ID] = true
		}
	}
	if root.PID != 2 || child.PID != 2 || d.PID != 0 {
		t.Errorf("imported PIDs: root=%d child=%d local=%d, want 2/2/0", root.PID, child.PID, d.PID)
	}
	if len(inst.Args) != 1 || inst.Args[0].Key != "n" {
		t.Errorf("instant args lost: %+v", inst.Args)
	}
}

// TestWireImportUnresolvedParent: a parent reference that didn't survive
// the trip (span dropped from the batch) re-parents under opts.Parent —
// an import can never introduce orphans, even from a mangled wire.
func TestWireImportUnresolvedParent(t *testing.T) {
	w := &WireTrace{
		EpochUnixNS: time.Now().UnixNano(),
		Events: []WireEvent{
			{Name: "stranded", Ph: "X", TS: 10, Dur: 5, TID: 1, ID: 77, Parent: 999},
		},
	}
	local := New()
	ll := local.Lane()
	anchor := ll.Span(0, "dist", "anchor")
	st := local.Import(w, ImportOpts{Parent: anchor.ID(), PID: 3})
	anchor.End(nil)
	ll.Release()

	if st.Reparented != 1 {
		t.Errorf("Reparented = %d, want 1", st.Reparented)
	}
	if orphans := Orphans(local.Events()); len(orphans) != 0 {
		t.Fatalf("orphans after unresolved-parent import: %+v", orphans)
	}
}

// TestWireImportSkewShiftsOntoLocalClock: OffsetNS converts the remote
// wall clock to the local one, and timestamps that would land before
// the local epoch clamp to zero (counted).
func TestWireImportSkewShiftsOntoLocalClock(t *testing.T) {
	local := New()
	base := local.Events() // force nothing; epoch anchored at New()
	_ = base

	// A remote whose clock runs 1ms behind the local epoch: event at
	// remote epoch+2000ns, remote epoch = local epoch - 1ms, skew +1ms.
	w := &WireTrace{
		EpochUnixNS: time.Now().Add(-time.Millisecond).UnixNano(),
		Events: []WireEvent{
			{Name: "a", Ph: "X", TS: 2000, Dur: 1, TID: 1, ID: 1},
		},
	}
	st := local.Import(w, ImportOpts{PID: 2, OffsetNS: int64(2 * time.Millisecond)})
	if st.Clamped != 0 {
		t.Errorf("Clamped = %d, want 0 with a generous positive offset", st.Clamped)
	}

	// The same wire with a hugely negative offset must clamp, not go
	// negative (Chrome JSON rejects negative ts).
	st = local.Import(w, ImportOpts{PID: 2, OffsetNS: -int64(time.Hour)})
	if st.Clamped != 1 {
		t.Errorf("Clamped = %d, want 1", st.Clamped)
	}
	for _, ev := range local.Events() {
		if ev.TS < 0 {
			t.Errorf("negative timestamp survived import: %+v", ev)
		}
	}
}

// TestWireImportLanesAreDedicated: imported lanes never recycle into the
// free list — a later local Lane() must not inherit an import's pid or
// label.
func TestWireImportLanesAreDedicated(t *testing.T) {
	local := New()
	local.Import(remoteTrace().ExportWire(), ImportOpts{PID: 5, LanePrefix: "w9"})
	l := local.Lane()
	s := l.Span(0, "local", "after-import")
	s.End(nil)
	l.Release()
	for _, ev := range local.Events() {
		if ev.Name == "after-import" && ev.PID != 0 {
			t.Errorf("local span inherited imported pid %d", ev.PID)
		}
	}
}

// TestWireJSONRoundTrip: the wire form survives JSON (the shape that
// actually crosses the HTTP push).
func TestWireJSONRoundTrip(t *testing.T) {
	w := remoteTrace().ExportWire()
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back WireTrace
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.EpochUnixNS != w.EpochUnixNS || len(back.Events) != len(w.Events) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, w)
	}
	for i := range w.Events {
		a, b := back.Events[i], w.Events[i]
		if a.Name != b.Name || a.Ph != b.Ph || a.TS != b.TS || a.Dur != b.Dur ||
			a.TID != b.TID || a.ID != b.ID || a.Parent != b.Parent || len(a.Args) != len(b.Args) {
			t.Errorf("event %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestMultiProcessChromeExport: after RegisterProcess + import, the
// Chrome JSON carries process_name metadata for both pids and thread
// names for the imported lanes, so Perfetto renders one row per process.
func TestMultiProcessChromeExport(t *testing.T) {
	local := New()
	ll := local.Lane()
	root := ll.Span(0, "job", "sweep")
	local.RegisterProcess(2, "dirsimw:w1")
	local.Import(remoteTrace().ExportWire(), ImportOpts{
		Parent: root.ID(), PID: 2, LanePrefix: "w1",
	})
	root.End(nil)
	ll.Release()

	var buf bytes.Buffer
	if err := local.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"process_name"`, `"dirsimw:w1"`, `"dirsim"`, `"w1/lane-01"`, `"pid": 2`, `"pid": 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Chrome JSON missing %s", want)
		}
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
}

// TestRecordSpanRetroDates: RecordSpan writes a complete span with an
// explicit pre-minted ID and caller-supplied interval — the coordinator
// retro-dates dist:queue and dist:lease spans at resolution time.
func TestRecordSpanRetroDates(t *testing.T) {
	tr := New()
	id := tr.AllocID()
	if id == 0 {
		t.Fatal("AllocID returned 0")
	}
	l := tr.Lane()
	// The interval must postdate the tracer's epoch (earlier times clamp
	// to 0); in production the queue/lease spans always do — the tracer
	// outlives the request that creates them.
	start := time.Now()
	end := start.Add(30 * time.Millisecond)
	l.RecordSpan(id, 0, "dist", "dist:lease", start, end, "", Arg{Key: "worker", Val: "w1"})
	l.RecordSpan(0, 0, "dist", "ignored", start, end, "") // id 0 is a no-op
	l.Release()

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.ID != uint64(id) || ev.Ph != 'X' || ev.Name != "dist:lease" {
		t.Errorf("recorded span wrong: %+v", ev)
	}
	wantDur := (30 * time.Millisecond).Nanoseconds()
	if ev.Dur < wantDur-int64(5*time.Millisecond) || ev.Dur > wantDur+int64(5*time.Millisecond) {
		t.Errorf("Dur = %dns, want ~%dns", ev.Dur, wantDur)
	}
	// Reversed intervals clamp to zero duration instead of going negative.
	l2 := tr.Lane()
	l2.RecordSpan(tr.AllocID(), 0, "dist", "rev", end, start, "")
	l2.Release()
	for _, ev := range tr.Events() {
		if ev.Dur < 0 {
			t.Errorf("negative duration: %+v", ev)
		}
	}
}
