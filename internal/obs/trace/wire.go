package exectrace

import (
	"fmt"
	"sort"
)

// This file is the cross-process half of the tracer: a worker exports
// its per-job span tree as a WireTrace (shipped home inside the result
// push), and the coordinator imports it into the originating request's
// tracer — remapping span IDs into the local ID space, re-parenting the
// worker's root spans under the coordinator's dispatch span, and
// shifting timestamps from the worker's clock onto the coordinator's
// using the worker's skew estimate. The merged tracer then exports one
// Chrome/Perfetto tree spanning every process that touched the request.

// WireEvent is one trace event in wire form. TS is nanoseconds since the
// exporting tracer's epoch (WireTrace.EpochUnixNS anchors that epoch to
// the exporter's wall clock).
type WireEvent struct {
	Name   string `json:"name"`
	Cat    string `json:"cat,omitempty"`
	Ph     string `json:"ph"`
	TS     int64  `json:"ts"`
	Dur    int64  `json:"dur,omitempty"`
	TID    int    `json:"tid"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Err    string `json:"err,omitempty"`
	Args   []Arg  `json:"args,omitempty"`
}

// WireTrace is a tracer's event log in shippable form.
type WireTrace struct {
	// EpochUnixNS anchors event timestamps to the exporter's wall clock:
	// an event happened at EpochUnixNS + TS on the exporting machine.
	EpochUnixNS int64       `json:"epoch_unix_ns"`
	Events      []WireEvent `json:"events"`
}

// ExportWire snapshots every recorded event in wire form. Like Events,
// call it after the traced work has finished. A nil or empty tracer
// returns nil — callers ship nothing.
func (t *Tracer) ExportWire() *WireTrace {
	if t == nil {
		return nil
	}
	evs := t.Events()
	if len(evs) == 0 {
		return nil
	}
	w := &WireTrace{EpochUnixNS: t.epoch.UnixNano(), Events: make([]WireEvent, 0, len(evs))}
	for _, ev := range evs {
		w.Events = append(w.Events, WireEvent{
			Name:   ev.Name,
			Cat:    ev.Cat,
			Ph:     string(ev.Ph),
			TS:     ev.TS,
			Dur:    ev.Dur,
			TID:    ev.TID,
			ID:     ev.ID,
			Parent: ev.Parent,
			Err:    ev.Err,
			Args:   ev.Args,
		})
	}
	return w
}

// ImportOpts directs a WireTrace import.
type ImportOpts struct {
	// Parent adopts the remote trace's root spans (and any span whose
	// parent didn't survive the trip): every imported event that would
	// otherwise be parentless nests here, so an import can never
	// introduce orphans.
	Parent SpanID
	// PID is the process row imported events render under; register a
	// name for it with RegisterProcess. Must be > 1 (1 is the local
	// process).
	PID int
	// LanePrefix labels imported lanes ("w1" → "w1/lane-01", ...).
	LanePrefix string
	// OffsetNS converts remote wall-clock to local wall-clock:
	// local = remote + OffsetNS. This is the worker's skew estimate
	// (coordinator-minus-worker) from lease/heartbeat RTTs.
	OffsetNS int64
}

// ImportStats reports what an import did.
type ImportStats struct {
	Events     int // events imported
	Reparented int // events re-parented under opts.Parent
	Clamped    int // events whose timestamps predate the local epoch
}

// Import merges a remote WireTrace into the tracer. Remote span IDs are
// remapped into the local ID space (two passes, since a parent span ends
// — and so appears — after its children); parent references that don't
// resolve within the batch re-parent under opts.Parent. Remote lanes map
// to dedicated local lanes (one per remote TID, never recycled into the
// free list) carrying opts.PID. Safe to call concurrently with other
// imports and live lanes; a nil tracer or nil/empty wire is a no-op.
func (t *Tracer) Import(w *WireTrace, opts ImportOpts) ImportStats {
	var st ImportStats
	if t == nil || w == nil || len(w.Events) == 0 {
		return st
	}
	// Pass 1: allocate a local ID for every remote event ID.
	idmap := make(map[uint64]uint64, len(w.Events))
	for _, ev := range w.Events {
		if ev.ID != 0 {
			if _, dup := idmap[ev.ID]; !dup {
				idmap[ev.ID] = t.ids.Add(1)
			}
		}
	}
	// Deterministic lane order: remote TIDs ascending.
	tids := make([]int, 0, 4)
	seen := make(map[int]bool, 4)
	for _, ev := range w.Events {
		if !seen[ev.TID] {
			seen[ev.TID] = true
			tids = append(tids, ev.TID)
		}
	}
	sort.Ints(tids)
	lanes := make(map[int]*Lane, len(tids))
	for i, tid := range tids {
		label := fmt.Sprintf("%s/lane-%02d", opts.LanePrefix, i+1)
		if opts.LanePrefix == "" {
			label = fmt.Sprintf("import/lane-%02d", i+1)
		}
		lanes[tid] = t.importLane(opts.PID, label)
	}
	epoch := t.epoch.UnixNano()
	// Pass 2: convert and append.
	for _, ev := range w.Events {
		ts := w.EpochUnixNS + ev.TS + opts.OffsetNS - epoch
		if ts < 0 {
			ts = 0
			st.Clamped++
		}
		parent := uint64(opts.Parent)
		if ev.Parent != 0 {
			if p, ok := idmap[ev.Parent]; ok {
				parent = p
			} else {
				st.Reparented++
			}
		} else {
			st.Reparented++
		}
		ph := byte('X')
		if len(ev.Ph) > 0 {
			ph = ev.Ph[0]
		}
		l := lanes[ev.TID]
		l.buf = append(l.buf, Event{
			Name:   ev.Name,
			Cat:    ev.Cat,
			Ph:     ph,
			TS:     ts,
			Dur:    ev.Dur,
			PID:    l.pid,
			TID:    l.tid,
			ID:     idmap[ev.ID],
			Parent: parent,
			Err:    ev.Err,
			Args:   ev.Args,
		})
		st.Events++
	}
	for _, tid := range tids {
		lanes[tid].mu.Unlock()
	}
	return st
}

// importLane creates a dedicated lane for imported events. Unlike Lane,
// it never joins the free list — its pid/label must not leak onto later
// local spans. Returned locked, like Lane; the importer unlocks it.
func (t *Tracer) importLane(pid int, label string) *Lane {
	t.mu.Lock()
	l := &Lane{tr: t, tid: len(t.lanes) + 1, pid: pid, label: label}
	t.lanes = append(t.lanes, l)
	t.mu.Unlock()
	l.mu.Lock()
	return l
}

// Orphans returns the events whose parent reference resolves to no
// recorded event — the invariant the fleet tests (and CI) assert is
// empty on a merged trace. Parent 0 is a root, never an orphan.
func Orphans(events []Event) []Event {
	ids := make(map[uint64]bool, len(events))
	for _, ev := range events {
		if ev.ID != 0 {
			ids[ev.ID] = true
		}
	}
	var out []Event
	for _, ev := range events {
		if ev.Parent != 0 && !ids[ev.Parent] {
			out = append(out, ev)
		}
	}
	return out
}
