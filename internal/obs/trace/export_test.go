package exectrace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONChromeFormat(t *testing.T) {
	tr := New()
	l := tr.Lane()
	root := l.Span(0, "job", "sim:Dir1B@pops")
	child := l.Span(root.ID(), "attempt", "attempt:0")
	l.Instant(child.ID(), "engine", "stream.stall", "chunk", 3)
	child.End(nil)
	root.End(nil)
	l.Release()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if got.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}

	var meta, complete, instants int
	byName := map[string]chromeEvent{}
	for _, ev := range got.TraceEvents {
		if ev.PID != tracePID {
			t.Errorf("event %q has pid %d, want %d", ev.Name, ev.PID, tracePID)
		}
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.TID < 1 {
				t.Errorf("span %q on tid %d", ev.Name, ev.TID)
			}
			if ev.Dur < 0 {
				t.Errorf("span %q has negative dur", ev.Name)
			}
			byName[ev.Name] = ev
		case "i":
			instants++
			if ev.Scope != "t" {
				t.Errorf("instant %q scope = %q, want t", ev.Name, ev.Scope)
			}
			byName[ev.Name] = ev
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// process_name + per-lane thread_name and thread_sort_index.
	if meta != 3 {
		t.Errorf("got %d metadata events, want 3", meta)
	}
	if complete != 2 || instants != 1 {
		t.Errorf("got %d complete + %d instant events, want 2 + 1", complete, instants)
	}

	r, c, i := byName["sim:Dir1B@pops"], byName["attempt:0"], byName["stream.stall"]
	if got := c.Args["parent"]; got != float64(r.ID) {
		t.Errorf("attempt parent arg = %v, want %d", got, r.ID)
	}
	if got := i.Args["parent"]; got != float64(c.ID) {
		t.Errorf("instant parent arg = %v, want %d", got, c.ID)
	}
	if got := i.Args["chunk"]; got != float64(3) {
		t.Errorf("instant chunk arg = %v", got)
	}
	// Containment in exported microseconds (epsilon for float division).
	const eps = 1e-3
	if c.TS < r.TS-eps || c.TS+c.Dur > r.TS+r.Dur+eps {
		t.Errorf("attempt [%v,%v] escapes job [%v,%v]", c.TS, c.TS+c.Dur, r.TS, r.TS+r.Dur)
	}
}

func TestWriteJSONNilTracerIsValidEmptyTrace(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on nil tracer: %v", err)
	}
	var got chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(got.TraceEvents) != 0 {
		t.Errorf("nil tracer exported %d events", len(got.TraceEvents))
	}
	// traceEvents must be [] not null, or viewers reject the file.
	if !strings.Contains(buf.String(), `"traceEvents": []`) {
		t.Error("traceEvents serialized as null")
	}
}

func TestWriteFile(t *testing.T) {
	tr := New()
	l := tr.Lane()
	l.Span(0, "job", "x").End(nil)
	l.Release()

	path := t.TempDir() + "/trace.json"
	if err := tr.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Error error-path: unwritable directory.
	if err := tr.WriteFile(t.TempDir() + "/no/such/dir/trace.json"); err == nil {
		t.Error("WriteFile to missing directory succeeded")
	}
}
