// Package exectrace is the repository's hierarchical execution tracer:
// spans carry IDs and parent IDs, record onto per-worker lanes, and
// export as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing, so a whole concurrent sweep — the job DAG, worker
// occupancy, back-pressure stalls, retries, injected faults, and sampled
// coherence-protocol events — is visible on one timeline.
//
// It lives under internal/obs/trace but is named exectrace because almost
// every caller already imports internal/trace (address traces); the
// distinct name keeps call sites unambiguous without aliases.
//
// # Lanes
//
// A Lane is an append-only event buffer owned by exactly one goroutine at
// a time: a worker acquires one with Tracer.Lane for the duration of a
// job (or a stream subscription), appends events to it without any
// locking, and returns it with Lane.Release. Released lanes are recycled
// LIFO, so lane IDs map onto "workers" the way a profiler's threads do —
// the trace shows pool occupancy directly. Export locks each lane
// briefly, which is safe because the CLIs export after the run's jobs
// have finished (and released their lanes).
//
// # Cost when disabled
//
// A nil *Tracer, *Lane, or *Span is valid and inert: every method is a
// nil-check no-op. Instrumented code therefore threads the tracer
// unconditionally and pays one predictable branch per event site when
// tracing is off — the property the engine's hot-path benchmarks assert.
package exectrace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span within a tracer. Zero means "no parent".
type SpanID uint64

// Arg is one key/value annotation on an event. The JSON tags are the
// wire form (ExportWire/Import) — short keys keep shipped span batches
// small.
type Arg struct {
	Key string `json:"k"`
	Val any    `json:"v"`
}

// Event is one recorded trace event. Timestamps and durations are
// nanoseconds since the tracer's epoch; the exporter converts to the
// microseconds Chrome trace-event JSON uses. PID is the process row the
// event renders under (0 means the tracer's own process, pid 1); events
// imported from a remote process carry that process's registered pid.
type Event struct {
	Name   string
	Cat    string
	Ph     byte // 'X' complete span, 'i' instant
	TS     int64
	Dur    int64
	PID    int
	TID    int
	ID     uint64
	Parent uint64
	Err    string
	Args   []Arg
}

// Tracer owns the run's lanes and issues span IDs. Create one per run
// with New; a nil *Tracer disables tracing at zero cost beyond nil
// checks.
type Tracer struct {
	epoch time.Time
	ids   atomic.Uint64

	mu    sync.Mutex
	lanes []*Lane        // every lane ever created, in tid order
	free  []*Lane        // released lanes, reused LIFO
	procs map[int]string // registered remote processes, pid → name
}

// New returns an empty tracer whose timestamps count from now.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// AllocID pre-mints a span ID without recording anything. The dist
// coordinator allocates its dispatch span's ID at lease-grant time — so
// the ID can cross the wire and the worker's spans can nest under it —
// and records the span itself (retro-dated, via Lane.RecordSpan) only
// when the lease resolves. Returns 0 on a nil tracer.
func (t *Tracer) AllocID() SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.ids.Add(1))
}

// RegisterProcess names a remote process row for the Chrome export.
// Imported events carrying pid render under this process name. pid 1 is
// the tracer's own process ("dirsim") and cannot be renamed.
func (t *Tracer) RegisterProcess(pid int, name string) {
	if t == nil || pid <= 1 {
		return
	}
	t.mu.Lock()
	if t.procs == nil {
		t.procs = make(map[int]string)
	}
	t.procs[pid] = name
	t.mu.Unlock()
}

// now returns nanoseconds since the tracer's epoch (monotonic).
func (t *Tracer) now() int64 { return time.Since(t.epoch).Nanoseconds() }

// at converts an absolute time to nanoseconds since the tracer's epoch,
// clamped at zero for times predating it (a retro-dated span cannot start
// before the timeline does).
func (t *Tracer) at(tm time.Time) int64 {
	d := tm.Sub(t.epoch).Nanoseconds()
	if d < 0 {
		return 0
	}
	return d
}

// Lane acquires an event lane for the calling goroutine, reusing the most
// recently released one (so lane IDs stay dense and map onto concurrent
// workers). The caller owns the lane until Release and is the only
// goroutine allowed to append to it. Returns nil on a nil tracer.
func (t *Tracer) Lane() *Lane {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var l *Lane
	if n := len(t.free); n > 0 {
		l = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		l = &Lane{tr: t, tid: len(t.lanes) + 1}
		t.lanes = append(t.lanes, l)
	}
	t.mu.Unlock()
	// Held for the lane's whole tenure: appends under this ownership need
	// no per-event locking, and the exporter blocks on it only if asked
	// to export while the lane is still live.
	l.mu.Lock()
	return l
}

// Lane is one timeline row: an event buffer appended to lock-free by its
// owning goroutine. Acquire with Tracer.Lane, return with Release.
// Imported lanes (Tracer.Import) additionally carry the remote process's
// pid and a label; both are immutable after creation.
type Lane struct {
	tr    *Tracer
	tid   int
	pid   int    // 0 = the tracer's own process
	label string // "" = default "lane-NN" naming
	mu    sync.Mutex
	buf   []Event
}

// Release returns the lane to the tracer for reuse. The caller must not
// touch the lane (or spans opened on it) afterwards. No-op on nil.
func (l *Lane) Release() {
	if l == nil {
		return
	}
	l.mu.Unlock()
	l.tr.mu.Lock()
	l.tr.free = append(l.tr.free, l)
	l.tr.mu.Unlock()
}

// Span opens a span on the lane under the given parent (0 for a root).
// End records it. Returns nil on a nil lane.
func (l *Lane) Span(parent SpanID, cat, name string) *Span {
	if l == nil {
		return nil
	}
	return &Span{
		lane:   l,
		id:     l.tr.ids.Add(1),
		parent: uint64(parent),
		cat:    cat,
		name:   name,
		start:  l.tr.now(),
	}
}

// SpanAt is Span with an explicit start time, for regions that began
// before the caller could record them — an HTTP request's queue wait is
// spanned when a worker finally picks the work up, started at submission
// time. Starts predating the tracer's epoch clamp to it. Returns nil on
// a nil lane.
func (l *Lane) SpanAt(parent SpanID, cat, name string, start time.Time) *Span {
	if l == nil {
		return nil
	}
	return &Span{
		lane:   l,
		id:     l.tr.ids.Add(1),
		parent: uint64(parent),
		cat:    cat,
		name:   name,
		start:  l.tr.at(start),
	}
}

// Instant records a zero-duration marker event — a retry, a back-pressure
// stall, a sampled protocol event — under the given parent span. args
// follow the alternating key/value convention (non-string keys are
// skipped). No-op on a nil lane.
func (l *Lane) Instant(parent SpanID, cat, name string, args ...any) {
	if l == nil {
		return
	}
	ev := Event{
		Name:   name,
		Cat:    cat,
		Ph:     'i',
		TS:     l.tr.now(),
		PID:    l.pid,
		TID:    l.tid,
		ID:     l.tr.ids.Add(1),
		Parent: uint64(parent),
	}
	for i := 0; i+1 < len(args); i += 2 {
		k, ok := args[i].(string)
		if !ok {
			continue
		}
		ev.Args = append(ev.Args, Arg{Key: k, Val: args[i+1]})
	}
	l.buf = append(l.buf, ev)
}

// TID returns the lane's timeline row number (1-based).
func (l *Lane) TID() int {
	if l == nil {
		return 0
	}
	return l.tid
}

// RecordSpan appends a complete span with an explicit, pre-allocated ID
// (Tracer.AllocID) and absolute start/end times. This is how retro-dated
// cross-process spans land: the coordinator mints the dispatch span's ID
// at lease-grant time, ships it to the worker, and records the span here
// when the lease resolves — accept, reject, or expiry. Times predating
// the tracer's epoch clamp to it. No-op on a nil lane or zero id.
func (l *Lane) RecordSpan(id, parent SpanID, cat, name string, start, end time.Time, err string, args ...Arg) {
	if l == nil || id == 0 {
		return
	}
	ts := l.tr.at(start)
	dur := l.tr.at(end) - ts
	if dur < 0 {
		dur = 0
	}
	l.buf = append(l.buf, Event{
		Name:   name,
		Cat:    cat,
		Ph:     'X',
		TS:     ts,
		Dur:    dur,
		PID:    l.pid,
		TID:    l.tid,
		ID:     uint64(id),
		Parent: uint64(parent),
		Err:    err,
		Args:   args,
	})
}

// Span is one open timed region. It must be ended by the goroutine that
// owns its lane, before the lane is released.
type Span struct {
	lane   *Lane
	id     uint64
	parent uint64
	cat    string
	name   string
	start  int64
	args   []Arg
}

// ID returns the span's ID for parenting children (0 on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return SpanID(s.id)
}

// Arg annotates the span; annotations land in the exported event's args.
// Returns s for chaining. No-op on nil.
func (s *Span) Arg(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Val: val})
	return s
}

// End closes the span and appends it to its lane. A non-nil err is
// recorded on the event (and colors it in viewers that map args). No-op
// on nil.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	ev := Event{
		Name:   s.name,
		Cat:    s.cat,
		Ph:     'X',
		TS:     s.start,
		Dur:    s.lane.tr.now() - s.start,
		PID:    s.lane.pid,
		TID:    s.lane.tid,
		ID:     s.id,
		Parent: s.parent,
		Args:   s.args,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	s.lane.buf = append(s.lane.buf, ev)
}

// ctxKey carries the lane/span pair through a context.
type ctxKey struct{}

type ctxVal struct {
	lane *Lane
	span SpanID
}

// NewContext returns a context carrying the lane and current span, so
// callees parent their spans correctly across call (and, for explicitly
// re-homed goroutines, lane) boundaries.
func NewContext(ctx context.Context, lane *Lane, span SpanID) context.Context {
	return context.WithValue(ctx, ctxKey{}, ctxVal{lane: lane, span: span})
}

// FromContext returns the lane and span recorded by NewContext, or
// (nil, 0) when the context carries none — the disabled-tracing case.
func FromContext(ctx context.Context) (*Lane, SpanID) {
	v, ok := ctx.Value(ctxKey{}).(ctxVal)
	if !ok {
		return nil, 0
	}
	return v.lane, v.span
}

// tracerKey carries a *Tracer through a context, independently of the
// lane/span pair: the tracer names where new lanes come from, the
// lane/span pair names where the caller currently is.
type tracerKey struct{}

// WithTracer returns a context carrying the tracer, so work scheduled on
// behalf of a request records onto that request's timeline: the engine
// opens job lanes from the context's tracer when it has none of its own.
// A nil tracer returns ctx unchanged.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil when there is
// none.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}
