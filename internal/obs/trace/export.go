package exectrace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON array. Field
// names follow the trace-event format specification; Perfetto and
// chrome://tracing both load it. ts and dur are microseconds (fractional
// microseconds are standard and preserve the tracer's nanosecond
// resolution exactly under the containment checks the tests run).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    uint64         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format of a trace file — the variant
// that admits metadata alongside the event array.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// tracePID is the process row of the tracer's own process; lanes
// imported from remote processes carry their registered pid instead.
const tracePID = 1

// Events returns a copy of every recorded event, in timestamp order.
// Call it after the traced work has finished: it briefly locks each lane
// and blocks on lanes still held by running goroutines.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	lanes := append([]*Lane(nil), t.lanes...)
	t.mu.Unlock()
	var out []Event
	for _, l := range lanes {
		l.mu.Lock()
		out = append(out, l.buf...)
		l.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// WriteJSON writes the trace as Chrome trace-event JSON (object format):
// one complete ('X') event per span, one instant ('i') per marker, plus
// process/thread metadata naming the lanes. The output loads directly in
// Perfetto (ui.perfetto.dev) and chrome://tracing. A nil tracer writes an
// empty but valid trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	out := chromeTrace{
		TraceEvents:     []chromeEvent{},
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"tool": "dirsim exectrace"},
	}
	if t != nil {
		t.mu.Lock()
		lanes := append([]*Lane(nil), t.lanes...)
		procs := make(map[int]string, len(t.procs)+1)
		procs[tracePID] = "dirsim"
		for pid, name := range t.procs {
			procs[pid] = name
		}
		t.mu.Unlock()
		pids := make([]int, 0, len(procs))
		for pid := range procs {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": procs[pid]},
			})
		}
		// tid/pid/label are immutable after lane creation, so reading
		// them without the lane mutex is safe even for live lanes.
		for _, l := range lanes {
			pid, name := l.pid, l.label
			if pid == 0 {
				pid = tracePID
			}
			if name == "" {
				name = fmt.Sprintf("lane-%02d", l.tid)
			}
			out.TraceEvents = append(out.TraceEvents,
				chromeEvent{
					Name: "thread_name", Ph: "M", PID: pid, TID: l.tid,
					Args: map[string]any{"name": name},
				},
				chromeEvent{
					Name: "thread_sort_index", Ph: "M", PID: pid, TID: l.tid,
					Args: map[string]any{"sort_index": l.tid},
				})
		}
		for _, ev := range t.Events() {
			pid := ev.PID
			if pid == 0 {
				pid = tracePID
			}
			ce := chromeEvent{
				Name: ev.Name,
				Cat:  ev.Cat,
				Ph:   string(ev.Ph),
				TS:   float64(ev.TS) / 1e3,
				Dur:  float64(ev.Dur) / 1e3,
				PID:  pid,
				TID:  ev.TID,
				ID:   ev.ID,
			}
			if ev.Ph == 'i' {
				ce.Scope = "t" // thread-scoped instant marker
			}
			if ev.Parent != 0 || ev.Err != "" || len(ev.Args) > 0 {
				ce.Args = make(map[string]any, len(ev.Args)+2)
				if ev.Parent != 0 {
					ce.Args["parent"] = ev.Parent
				}
				if ev.Err != "" {
					ce.Args["error"] = ev.Err
				}
				for _, a := range ev.Args {
					ce.Args[a.Key] = a.Val
				}
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("exectrace: export: %w", err)
	}
	return nil
}

// WriteFile writes the Chrome trace-event JSON to path ("-" selects
// standard output).
func (t *Tracer) WriteFile(path string) error {
	if path == "-" {
		return t.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("exectrace: export: %w", err)
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("exectrace: export: %w", err)
	}
	return nil
}
