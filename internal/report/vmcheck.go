package report

import (
	"fmt"
	"strings"

	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/vm"
)

// runVM cross-checks the synthetic-workload results against traces from
// the execution-driven simulator (the paper's stated future work): real
// test-and-test-and-set locks, barriers, and a parallel reduction
// actually executing on a small machine. The scheme ordering and the
// lock pathology must reproduce on these traces too.
func runVM(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("vm", "Execution-driven traces (real programs on the mini-machine)"))

	programs := []struct {
		name string
		mk   func(cpus int) *vm.Machine
	}{
		{"counter", func(cpus int) *vm.Machine {
			progs := make([]*vm.Program, cpus)
			p := vm.LockedCounter(400)
			for i := range progs {
				progs[i] = p
			}
			return &vm.Machine{Programs: progs, Seed: 21}
		}},
		{"barrier", func(cpus int) *vm.Machine {
			progs := make([]*vm.Program, cpus)
			p := vm.Barrier(vm.Word(cpus), 120)
			for i := range progs {
				progs[i] = p
			}
			return &vm.Machine{Programs: progs, Seed: 22}
		}},
		{"reduce", func(cpus int) *vm.Machine {
			progs := make([]*vm.Program, cpus)
			p := vm.Reduce(vm.Word(cpus), 512)
			for i := range progs {
				progs[i] = p
			}
			return &vm.Machine{Programs: progs, Seed: 23, InitMem: vm.InitReduceMemory(512)}
		}},
	}
	const cpus = 4
	schemes := []string{"Dir1NB", "WTI", "Dir0B", "Dragon"}
	tbl := newTable("program", append(append([]string{}, schemes...), "refs", "spin %")...)
	for _, prog := range programs {
		m := prog.mk(cpus)
		tr, _, err := m.Run()
		if err != nil {
			return "", fmt.Errorf("vm %s: %w", prog.name, err)
		}
		cells := []string{prog.name}
		for _, scheme := range schemes {
			r, err := sim.SimulateTrace(scheme, tr, sim.Options{})
			if err != nil {
				return "", err
			}
			cells = append(cells, cyc(r.PerRef("pipelined")))
		}
		s := trace.ComputeStats(tr)
		cells = append(cells, fmt.Sprintf("%d", s.Refs),
			fmt.Sprintf("%.1f", s.Pct(s.SpinReads)))
		tbl.row(cells...)
	}
	b.WriteString(tbl.String())
	b.WriteString("\ntraces here come from programs actually executing (final memory\n" +
		"states are asserted in the test suite), not from statistical\n" +
		"generators — and the paper's ordering Dir1NB > WTI > Dir0B > Dragon\n" +
		"reproduces wherever locks dominate, while the embarrassingly\n" +
		"parallel reduction narrows every gap.\n\n")

	// Lock-algorithm comparison: the same counter workload under
	// test-and-test-and-set, a ticket lock, and an Anderson array lock.
	locks := []struct {
		name string
		mk   func() *vm.Machine
	}{
		{"tas", func() *vm.Machine {
			return &vm.Machine{Programs: samePrograms(vm.LockedCounter(400), cpus), Seed: 31}
		}},
		{"ticket", func() *vm.Machine {
			return &vm.Machine{Programs: samePrograms(vm.TicketCounter(400), cpus), Seed: 32}
		}},
		{"anderson", func() *vm.Machine {
			return &vm.Machine{Programs: samePrograms(vm.AndersonCounter(400, 8), cpus),
				InitMem: vm.InitAndersonMemory(), Seed: 33}
		}},
	}
	ltbl := newTable("lock", "Dir1NB cyc/ref", "Dir0B cyc/ref", "Dragon cyc/ref", "Dir1NB rd-miss %")
	for _, l := range locks {
		tr, _, err := l.mk().Run()
		if err != nil {
			return "", fmt.Errorf("vm lock %s: %w", l.name, err)
		}
		cells := []string{l.name}
		var d1Miss float64
		for _, scheme := range []string{"Dir1NB", "Dir0B", "Dragon"} {
			r, err := sim.SimulateTrace(scheme, tr, sim.Options{})
			if err != nil {
				return "", err
			}
			cells = append(cells, cyc(r.PerRef("pipelined")))
			if scheme == "Dir1NB" {
				d1Miss = r.Counts.ReadMisses()
			}
		}
		cells = append(cells, fmt.Sprintf("%.2f", d1Miss))
		ltbl.row(cells...)
	}
	b.WriteString("same counter workload under three lock algorithms:\n")
	b.WriteString(ltbl.String())
	b.WriteString("\nthe paper's remedy, made concrete: waiters that spin on a shared\n" +
		"word (tas, ticket) bounce the block under Dir1NB, while the Anderson\n" +
		"array lock spins on per-waiter slots and hands the lock off with one\n" +
		"directed invalidation — 'these schemes must take special care in\n" +
		"handling locks' (Section 5.2).\n")
	return b.String(), nil
}

// samePrograms replicates one program across n CPUs.
func samePrograms(p *vm.Program, n int) []*vm.Program {
	out := make([]*vm.Program, n)
	for i := range out {
		out[i] = p
	}
	return out
}
