package report

import (
	"fmt"
	"strings"

	"dirsim/internal/bus"
	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// runTable3 reproduces Table 3: per-trace reference counts and the
// user/system split, extended with the sharing measures the generators
// are tuned against.
func runTable3(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("table3", "Trace characteristics"))
	tbl := newTable("trace", "refs", "instr", "data-rd", "data-wrt", "user", "sys", "spin-rd", "shared-blk")
	for _, t := range c.Traces() {
		s := trace.ComputeStats(t)
		tbl.row(s.Name,
			fmt.Sprintf("%d", s.Refs),
			fmt.Sprintf("%d (%.1f%%)", s.Instr, s.Pct(s.Instr)),
			fmt.Sprintf("%d (%.1f%%)", s.Reads, s.Pct(s.Reads)),
			fmt.Sprintf("%d (%.1f%%)", s.Writes, s.Pct(s.Writes)),
			fmt.Sprintf("%d", s.User),
			fmt.Sprintf("%d", s.System),
			fmt.Sprintf("%.1f%% of reads", 100*float64(s.SpinReads)/float64(max(s.Reads, 1))),
			fmt.Sprintf("%d of %d", s.SharedBlk, s.DataBlocks),
		)
	}
	b.WriteString(tbl.String())
	b.WriteString("\npaper: POPS 3142k refs (1624k instr, 1257k rd, 261k wrt), THOR 3222k,\n" +
		"PERO 3508k; roughly 10% system activity; one third of POPS/THOR reads\nare lock-test spins.\n")
	return b.String(), nil
}

// table4Rows defines the paper's Table 4 row structure as functions over a
// measured event-frequency table.
var table4Rows = []struct {
	label string
	value func(*event.Counts) float64
}{
	{"instr", func(c *event.Counts) float64 { return c.Pct(event.Instr) }},
	{"read", (*event.Counts).Reads},
	{"rd-hit", func(c *event.Counts) float64 { return c.Pct(event.RdHit) }},
	{"rd-miss(rm)", (*event.Counts).ReadMisses},
	{"rm-blk-cln", func(c *event.Counts) float64 { return c.Pct(event.RdMissClean) }},
	{"rm-blk-drty", func(c *event.Counts) float64 { return c.Pct(event.RdMissDirty) }},
	{"rm-blk-mem", func(c *event.Counts) float64 { return c.Pct(event.RdMissMem) }},
	{"rm-first-ref", func(c *event.Counts) float64 { return c.Pct(event.RdMissFirst) }},
	{"write", (*event.Counts).Writes},
	{"wrt-hit(wh)", func(c *event.Counts) float64 {
		return c.PctSum(event.WrHitOwn, event.WrHitClean, event.WrHitShared, event.WrHitLocal)
	}},
	{"wh-blk-cln", func(c *event.Counts) float64 { return c.Pct(event.WrHitClean) }},
	{"wh-blk-drty", func(c *event.Counts) float64 { return c.Pct(event.WrHitOwn) }},
	{"wh-distrib", func(c *event.Counts) float64 { return c.Pct(event.WrHitShared) }},
	{"wh-local", func(c *event.Counts) float64 { return c.Pct(event.WrHitLocal) }},
	{"wrt-miss(wm)", (*event.Counts).WriteMisses},
	{"wm-blk-cln", func(c *event.Counts) float64 { return c.Pct(event.WrMissClean) }},
	{"wm-blk-drty", func(c *event.Counts) float64 { return c.Pct(event.WrMissDirty) }},
	{"wm-blk-mem", func(c *event.Counts) float64 { return c.Pct(event.WrMissMem) }},
	{"wm-first-ref", func(c *event.Counts) float64 { return c.Pct(event.WrMissFirst) }},
}

// runTable4 reproduces Table 4: measured event frequencies for the four
// schemes, with the published value beside each cell where the paper
// reports one.
func runTable4(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("table4", "Event frequencies, % of all references (measured | paper)"))
	counts := make(map[string]*event.Counts)
	for _, scheme := range PaperSchemes {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		cc := r.Counts
		counts[scheme] = &cc
	}
	tbl := newTable("event", PaperSchemes...)
	for _, row := range table4Rows {
		cells := []string{row.label}
		for _, scheme := range PaperSchemes {
			m := row.value(counts[scheme])
			cell := pct(m)
			if p, ok := PaperTable4[scheme][row.label]; ok {
				cell = fmt.Sprintf("%s | %.2f", pct(m), p)
			}
			cells = append(cells, cell)
		}
		tbl.row(cells...)
	}
	b.WriteString(tbl.String())
	b.WriteString("\nnote: rm/wm-blk-mem (miss, block uncached elsewhere) are rows this\n" +
		"simulator separates; the paper folds them into the clean cases.\n" +
		"WTI and Dir0B share a state-change model, so their columns match —\n" +
		"the property the paper calls out in Section 5.\n")
	return b.String(), nil
}

// runTable5 reproduces Table 5: the per-operation breakdown of pipelined
// bus cycles per reference for each scheme.
func runTable5(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("table5", "Breakdown of bus cycles per reference (pipelined bus)"))
	tbl := newTable("access type", PaperSchemes...)
	breakdowns := make(map[string]bus.Breakdown)
	for _, scheme := range PaperSchemes {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		breakdowns[scheme] = r.Tally("pipelined").PerRefBreakdown()
	}
	for cat := bus.Category(0); cat < bus.NumCategories; cat++ {
		cells := []string{cat.String()}
		any := false
		for _, scheme := range PaperSchemes {
			v := breakdowns[scheme][cat]
			if v != 0 {
				any = true
			}
			cells = append(cells, cyc(v))
		}
		if any {
			tbl.row(cells...)
		}
	}
	cells := []string{"cumulative"}
	for _, scheme := range PaperSchemes {
		total := breakdowns[scheme].Total()
		p, ok := PaperCyclesPipelined[scheme]
		cells = append(cells, withPaper(total, p, ok))
	}
	tbl.row(cells...)
	b.WriteString(tbl.String())
	b.WriteString(fmt.Sprintf("\npaper Dir0B non-overlapped directory access: %.4f cycles/ref;\n"+
		"measured: %s. Directory bandwidth is a small fraction of the total,\n"+
		"the paper's argument that the directory is not a bottleneck.\n",
		PaperDir0BDirAccess, cyc(breakdowns["Dir0B"][bus.CatDirAccess])))
	return b.String(), nil
}
