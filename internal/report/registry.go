package report

import (
	"fmt"
	"sort"
	"strings"
)

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments in registration order
// (which follows the paper).
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds experiments by comma-separated IDs; "all" or an empty
// string selects everything.
func Lookup(ids string) ([]Experiment, error) {
	ids = strings.TrimSpace(ids)
	if ids == "" || ids == "all" {
		return Experiments(), nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(ids, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	var out []Experiment
	for _, e := range registry {
		if want[e.ID] {
			out = append(out, e)
			delete(want, e.ID)
		}
	}
	if len(want) > 0 {
		var missing []string
		for id := range want {
			missing = append(missing, id)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("report: unknown experiment(s) %s (have: %s)",
			strings.Join(missing, ", "), strings.Join(IDs(), ", "))
	}
	return out, nil
}

// IDs lists all registered experiment IDs.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// The experiments are registered centrally, in the order the paper
// presents its results: the methodology tables first, then the Section 5
// evaluation figures, then the Section 5.1/5.2 analyses and the Section 6
// scalability studies.
func init() {
	register(Experiment{ID: "table3", Title: "Trace characteristics (Table 3)", Run: runTable3})
	register(Experiment{ID: "table4", Title: "Event frequencies, % of all references (Table 4)", Run: runTable4})
	register(Experiment{ID: "fig1", Title: "Caches invalidated on writes to previously-clean blocks (Figure 1)", Run: runFig1})
	register(Experiment{ID: "fig2", Title: "Bus cycles per reference, both bus models (Figure 2)", Run: runFig2})
	register(Experiment{ID: "fig3", Title: "Bus cycles per reference, per trace (Figure 3)", Run: runFig3})
	register(Experiment{ID: "table5", Title: "Bus-cycle breakdown, pipelined bus (Table 5)", Run: runTable5})
	register(Experiment{ID: "fig4", Title: "Breakdown as fraction of each scheme's total (Figure 4)", Run: runFig4})
	register(Experiment{ID: "fig5", Title: "Average bus cycles per bus transaction (Figure 5)", Run: runFig5})
	register(Experiment{ID: "sysperf", Title: "Effective processors on one bus (Section 5)", Run: runSysPerf})
	register(Experiment{ID: "qsens", Title: "Fixed per-transaction cost sensitivity (Section 5.1)", Run: runQSens})
	register(Experiment{ID: "spinlocks", Title: "Impact of spin locks (Section 5.2)", Run: runSpinlocks})
	register(Experiment{ID: "berkeley", Title: "Berkeley Ownership estimate (Section 5 aside)", Run: runBerkeley})
	register(Experiment{ID: "dirnnb", Title: "Sequential invalidation: DirNNB vs Dir0B (Section 6)", Run: runDirNNB})
	register(Experiment{ID: "dir1b", Title: "Single pointer + broadcast bit: Dir1B model (Section 6)", Run: runDir1B})
	register(Experiment{ID: "scaling", Title: "Limited-pointer sweep Dir_iB / Dir_iNB (Section 6)", Run: runScaling})
	register(Experiment{ID: "coarse", Title: "Coarse ternary-digit code overshoot (Section 6)", Run: runCoarse})
	register(Experiment{ID: "storage", Title: "Directory storage per entry (Section 6)", Run: runStorage})
	register(Experiment{ID: "network", Title: "Directed vs broadcast coherence on interconnects (Section 6)", Run: runNetwork})
	register(Experiment{ID: "extended", Title: "Related-work comparators: MESI, Berkeley, Firefly, Yen-Fu", Run: runExtended})
	register(Experiment{ID: "migration", Title: "Process- vs processor-based sharing (Section 4.4)", Run: runMigration})
	register(Experiment{ID: "finite", Title: "Finite-cache first-order extension (Section 4)", Run: runFinite})
	register(Experiment{ID: "finitecoh", Title: "Coherence misses in finite caches (footnote 2)", Run: runFiniteCoherence})
	register(Experiment{ID: "blocksize", Title: "Block-size sensitivity study", Run: runBlockSize})
	register(Experiment{ID: "dirbw", Title: "Directory vs memory bandwidth (conclusion)", Run: runDirBandwidth})
	register(Experiment{ID: "contention", Title: "Bus queueing vs the Section 5 bound", Run: runContention})
	register(Experiment{ID: "vm", Title: "Execution-driven traces (the paper's future work)", Run: runVM})
}
