package report

import (
	"fmt"
	"sort"
	"strings"

	"dirsim/internal/core"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// Context supplies the inputs an experiment needs: the three standard
// traces at the configured size, plus larger-machine traces for the
// Section 6 scaling studies, generated lazily and cached.
type Context struct {
	// Refs is the approximate length of each generated trace.
	Refs int
	// CPUs is the machine size for the headline experiments (4, to
	// match the paper's ATUM setup).
	CPUs int
	// Check enables coherence checking during the runs (slower).
	Check bool

	std     []*trace.Trace
	scaled  map[int][]*trace.Trace
	results map[string]*sim.Result // cache: scheme "@" cpus
}

// NewContext returns a context with the given trace size. Sensible
// defaults are applied for non-positive arguments (400k references,
// 4 CPUs).
func NewContext(refs, cpus int) *Context {
	if refs <= 0 {
		refs = 400_000
	}
	if cpus <= 0 {
		cpus = 4
	}
	return &Context{
		Refs:    refs,
		CPUs:    cpus,
		scaled:  make(map[int][]*trace.Trace),
		results: make(map[string]*sim.Result),
	}
}

// Traces returns the standard POPS/THOR/PERO traces at the headline
// machine size.
func (c *Context) Traces() []*trace.Trace {
	if c.std == nil {
		c.std = workload.Standard(c.CPUs, c.Refs)
	}
	return c.std
}

// TracesAt returns the standard traces regenerated for a different
// machine size (the scaling studies).
func (c *Context) TracesAt(cpus int) []*trace.Trace {
	if cpus == c.CPUs {
		return c.Traces()
	}
	if ts, ok := c.scaled[cpus]; ok {
		return ts
	}
	ts := workload.Standard(cpus, c.Refs)
	c.scaled[cpus] = ts
	return ts
}

// Merged returns the scheme's result merged over the standard traces,
// cached across experiments so e.g. Table 4 and Figure 2 share one
// simulation per scheme, the same economy the paper notes (one run per
// protocol, many cost models).
func (c *Context) Merged(scheme string) (*sim.Result, error) {
	key := scheme + "@std"
	if r, ok := c.results[key]; ok {
		return r, nil
	}
	_, merged, err := sim.SchemeOverTraces(scheme, c.Traces(), c.opts())
	if err != nil {
		return nil, err
	}
	c.results[key] = merged
	return merged, nil
}

// PerTrace returns the scheme's per-trace results on the standard traces.
func (c *Context) PerTrace(scheme string) ([]*sim.Result, error) {
	per, merged, err := sim.SchemeOverTraces(scheme, c.Traces(), c.opts())
	if err != nil {
		return nil, err
	}
	c.results[scheme+"@std"] = merged
	return per, nil
}

func (c *Context) opts() sim.Options {
	return sim.Options{Check: c.Check}
}

// RunProtocol runs engines built by build over the given traces (with an
// optional source filter) and merges the results. It is the escape hatch
// for experiments that need non-registry protocols (coarse vector) or
// filtered traces (the spin-lock study).
func (c *Context) RunProtocol(build func(ncpu int) core.Protocol, traces []*trace.Trace,
	filter func(trace.Source) trace.Source) (*sim.Result, error) {
	var results []*sim.Result
	for _, t := range traces {
		src := trace.Source(t.Iterator())
		if filter != nil {
			src = filter(src)
		}
		p := build(t.CPUs)
		r, err := sim.Simulate(p, src, c.opts())
		if err != nil {
			return nil, fmt.Errorf("report: %s over %s: %w", p.Name(), t.Name, err)
		}
		r.Trace = t.Name
		results = append(results, r)
	}
	return sim.Merge(results...)
}

// MergedScheme runs a registry scheme over arbitrary traces with an
// optional filter (uncached; use Merged for the standard runs).
func (c *Context) MergedScheme(scheme string, traces []*trace.Trace,
	filter func(trace.Source) trace.Source) (*sim.Result, error) {
	return c.RunProtocol(func(ncpu int) core.Protocol {
		p, err := core.NewByName(scheme, ncpu)
		if err != nil {
			panic(err)
		}
		return p
	}, traces, filter)
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	// ID is the registry key ("table4", "fig1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run performs the simulations and renders the comparison.
	Run func(c *Context) (string, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments in registration order
// (which follows the paper).
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup finds experiments by comma-separated IDs; "all" or an empty
// string selects everything.
func Lookup(ids string) ([]Experiment, error) {
	ids = strings.TrimSpace(ids)
	if ids == "" || ids == "all" {
		return Experiments(), nil
	}
	want := map[string]bool{}
	for _, id := range strings.Split(ids, ",") {
		want[strings.TrimSpace(strings.ToLower(id))] = true
	}
	var out []Experiment
	for _, e := range registry {
		if want[e.ID] {
			out = append(out, e)
			delete(want, e.ID)
		}
	}
	if len(want) > 0 {
		var missing []string
		for id := range want {
			missing = append(missing, id)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("report: unknown experiment(s) %s (have: %s)",
			strings.Join(missing, ", "), strings.Join(IDs(), ", "))
	}
	return out, nil
}

// IDs lists all registered experiment IDs.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}
