package report

import (
	"context"
	"fmt"

	"dirsim/internal/core"
	"dirsim/internal/engine"
	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// Context supplies the inputs an experiment needs: the three standard
// traces at the configured size, plus larger-machine traces for the
// Section 6 scaling studies. All simulation requests are submitted
// through an execution engine, which deduplicates and caches traces and
// results by content hash — e.g. Table 4 and Figure 2 share one
// simulation per scheme, the same economy the paper notes (one run per
// protocol, many cost models) — and, under a parallel executor, runs
// independent simulations concurrently. A Context is safe for concurrent
// use by multiple experiments.
type Context struct {
	// Refs is the approximate length of each generated trace.
	Refs int
	// CPUs is the machine size for the headline experiments (4, to
	// match the paper's ATUM setup).
	CPUs int
	// Check enables coherence checking during the runs (slower).
	Check bool

	eng    *engine.Engine
	exec   engine.Executor
	rec    *obs.Recorder
	status *obs.RunStatus
	base   context.Context
}

// NewContext returns a context with the given trace size, backed by a
// private engine and the Sequential executor (the historical serial
// behaviour). Sensible defaults are applied for non-positive arguments
// (400k references, 4 CPUs).
func NewContext(refs, cpus int) *Context {
	return NewContextWith(refs, cpus, nil, nil)
}

// NewContextWith is NewContext with an explicit execution engine and
// strategy; nil values fall back to a private engine and the Sequential
// executor. Passing a shared engine lets concurrent experiment batches
// share one result cache; passing engine.Parallel runs each experiment's
// independent simulations concurrently.
func NewContextWith(refs, cpus int, eng *engine.Engine, exec engine.Executor) *Context {
	if refs <= 0 {
		refs = 400_000
	}
	if cpus <= 0 {
		cpus = 4
	}
	if eng == nil {
		eng = engine.New(engine.Options{})
	}
	if exec == nil {
		exec = engine.Sequential{}
	}
	return &Context{Refs: refs, CPUs: cpus, eng: eng, exec: exec}
}

// Observe attaches an observability recorder: RunExperiment then wraps
// every experiment in a span, feeding the journal and the per-phase time
// breakdown. nil detaches.
func (c *Context) Observe(rec *obs.Recorder) { c.rec = rec }

// Track attaches a live run-status tracker: RunExperiment then reports
// each experiment's start and outcome, which the HTTP monitor's /runz
// endpoint serves. nil (the default) detaches.
func (c *Context) Track(status *obs.RunStatus) { c.status = status }

// WithBase sets the base context every engine submission derives from.
// Carrying an obs.TraceContext here tags every journal event the run's
// engine jobs emit with the run's trace ID. nil (the default) means
// context.Background().
func (c *Context) WithBase(ctx context.Context) { c.base = ctx }

func (c *Context) ctx() context.Context {
	if c.base != nil {
		return c.base
	}
	return context.Background()
}

// RunExperiment runs one experiment through the context. With a recorder
// attached (see Observe) the run is bracketed by experiment.start /
// experiment.finish journal events and its wall time lands in the
// "experiment" phase of the breakdown; without one it is exactly e.Run.
// A tracker attached with Track sees the run's live state either way.
func (c *Context) RunExperiment(e Experiment) (string, error) {
	c.status.ExpStarted(e.ID, e.Title)
	if c.rec == nil {
		out, err := e.Run(c)
		c.status.ExpFinished(e.ID, err)
		return out, err
	}
	sp := c.rec.StartSpan("experiment", e.ID)
	out, err := e.Run(c)
	sp.End(err)
	c.status.ExpFinished(e.ID, err)
	return out, err
}

// Engine returns the context's execution engine (for stats inspection).
func (c *Context) Engine() *engine.Engine { return c.eng }

// Executor returns the context's execution strategy.
func (c *Context) Executor() engine.Executor { return c.exec }

// StandardConfigs returns the generation configs of the standard
// POPS/THOR/PERO traces at the given machine size.
func (c *Context) StandardConfigs(cpus int) []workload.Config {
	return workload.StandardConfigs(cpus, c.Refs)
}

// Traces returns the standard POPS/THOR/PERO traces at the headline
// machine size, materialized at most once per engine.
func (c *Context) Traces() []*trace.Trace { return c.TracesAt(c.CPUs) }

// TracesAt returns the standard traces regenerated for a different
// machine size (the scaling studies).
func (c *Context) TracesAt(cpus int) []*trace.Trace {
	cfgs := c.StandardConfigs(cpus)
	out := make([]*trace.Trace, len(cfgs))
	for i, cfg := range cfgs {
		t, err := c.eng.Trace(c.ctx(), cfg)
		if err != nil {
			// The standard profiles are known-good; generation cannot
			// fail for them (mirrors workload.MustGenerate).
			panic(err)
		}
		out[i] = t
	}
	return out
}

// Merged returns the scheme's result merged over the standard traces,
// cached across experiments.
func (c *Context) Merged(scheme string) (*sim.Result, error) {
	_, merged, err := c.eng.SchemeOverTraces(c.ctx(), c.exec,
		scheme, c.StandardConfigs(c.CPUs), c.Check)
	return merged, err
}

// PerTrace returns the scheme's per-trace results on the standard traces.
func (c *Context) PerTrace(scheme string) ([]*sim.Result, error) {
	per, _, err := c.eng.SchemeOverTraces(c.ctx(), c.exec,
		scheme, c.StandardConfigs(c.CPUs), c.Check)
	return per, err
}

func (c *Context) opts() sim.Options {
	return sim.Options{Check: c.Check}
}

// RunProtocol runs engines built by build over the given traces (with an
// optional source filter) and merges the results. It is the escape hatch
// for experiments that need non-registry protocols (coarse vector) or
// filtered traces (the spin-lock study); the work parallelizes across
// traces but is not cached.
func (c *Context) RunProtocol(build func(ncpu int) core.Protocol, traces []*trace.Trace,
	filter func(trace.Source) trace.Source) (*sim.Result, error) {
	r, err := c.eng.RunProtocolOverTraces(c.ctx(), c.exec,
		build, traces, filter, c.opts())
	if err != nil {
		return nil, fmt.Errorf("report: %w", err)
	}
	return r, nil
}

// MergedScheme runs a registry scheme over arbitrary traces with an
// optional filter (uncached; use Merged for the standard runs).
func (c *Context) MergedScheme(scheme string, traces []*trace.Trace,
	filter func(trace.Source) trace.Source) (*sim.Result, error) {
	if _, err := core.NewByName(scheme, 1); err != nil {
		return nil, err
	}
	return c.RunProtocol(func(ncpu int) core.Protocol {
		p, err := core.NewByName(scheme, ncpu)
		if err != nil {
			panic(err)
		}
		return p
	}, traces, filter)
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	// ID is the registry key ("table4", "fig1", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Run performs the simulations and renders the comparison.
	Run func(c *Context) (string, error)
}
