package report

import (
	"fmt"
	"strings"
)

// table is a tiny text-table builder: fixed label column plus value
// columns, rendered with aligned widths.
type table struct {
	header []string
	rows   [][]string
}

func newTable(label string, cols ...string) *table {
	return &table{header: append([]string{label}, cols...)}
}

func (t *table) row(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// pct formats a percentage cell; empty for exact zero so unused events
// don't clutter the table.
func pct(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// cyc formats a cycles-per-reference value.
func cyc(v float64) string { return fmt.Sprintf("%.4f", v) }

// withPaper formats "measured (paper X)" when a published value exists.
func withPaper(measured float64, paper float64, ok bool) string {
	if !ok {
		return cyc(measured)
	}
	return fmt.Sprintf("%s (paper %s)", cyc(measured), cyc(paper))
}

// ratio formats a/b, guarding against division by zero.
func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a/b)
}

// section renders an experiment banner.
func section(id, title string) string {
	return fmt.Sprintf("### %s — %s\n\n", id, title)
}
