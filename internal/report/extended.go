package report

import (
	"fmt"
	"strings"

	"dirsim/internal/bus"
	cachepkg "dirsim/internal/cache"
	"dirsim/internal/contention"
	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/network"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// runExtended compares the full comparator set — the paper's four schemes
// plus the protocols its related-work section names: MESI/Illinois [5],
// Berkeley Ownership [7], Firefly [3], and the Yen–Fu single-bit
// refinement [11].
func runExtended(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("extended", "All schemes, including the related-work comparators"))
	tbl := newTable("scheme", "pipelined", "non-pipelined", "rd-miss %", "txn/ref")
	schemes := []string{"Dir1NB", "WTI", "Dir0B", "DirNNB", "YenFu", "Dir1B",
		"MESI", "Berkeley", "Firefly", "Dragon"}
	for _, scheme := range schemes {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		tbl.row(scheme,
			cyc(r.PerRef("pipelined")), cyc(r.PerRef("non-pipelined")),
			fmt.Sprintf("%.3f", r.Counts.ReadMisses()),
			fmt.Sprintf("%.4f", r.Tally("pipelined").TransactionsPerRef()))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nobservations: MESI's exclusive-clean state removes Dir0B's directory\n" +
		"query on private read-modify-writes; the simulated Berkeley engine\n" +
		"lands near the paper's re-priced Dir0B estimate; Firefly tracks\n" +
		"Dragon; Yen-Fu saves directory accesses but — as the paper notes —\n" +
		"not bus cycles, because single-bit upkeep replaces them.\n")
	return b.String(), nil
}

// runNetwork prices directory and broadcast schemes on point-to-point
// interconnects — the quantified version of the paper's claim that
// directed invalidation is what lets coherence scale beyond a bus.
func runNetwork(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("network", "Link-cycles per reference on point-to-point interconnects"))
	sizes := []struct {
		cpus  int
		topos []network.Topology
	}{
		{16, []network.Topology{network.Bus(16), network.Crossbar(16), network.Mesh(4, 4), network.Hypercube(4)}},
		{64, []network.Topology{network.Bus(64), network.Crossbar(64), network.Mesh(8, 8), network.Torus(8, 8), network.Hypercube(6)}},
	}
	for _, sz := range sizes {
		traces := c.TracesAt(sz.cpus)
		b.WriteString(fmt.Sprintf("machine size %d CPUs:\n", sz.cpus))
		names := make([]string, len(sz.topos))
		for i, t := range sz.topos {
			names[i] = t.Name
		}
		tbl := newTable("scheme", names...)
		for _, scheme := range []string{"DirNNB", "Dir2B", "Dir0B"} {
			var merged *sim.Result
			var results []*sim.Result
			for _, tr := range traces {
				p, err := core.NewByName(scheme, tr.CPUs)
				if err != nil {
					return "", err
				}
				r, err := sim.Simulate(p, tr.Iterator(), sim.Options{Topologies: sz.topos})
				if err != nil {
					return "", err
				}
				r.Trace = tr.Name
				results = append(results, r)
			}
			merged, err := sim.Merge(results...)
			if err != nil {
				return "", err
			}
			cells := []string{scheme}
			for _, name := range names {
				cells = append(cells, fmt.Sprintf("%.3f", merged.NetTallies[name].PerRef()))
			}
			tbl.row(cells...)
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	b.WriteString("DirNNB's directed messages cost only the network's average distance;\n" +
		"Dir0B must flood every invalidation on a broadcast-free fabric, and\n" +
		"the gap widens with machine size — the paper's scalability argument\n" +
		"made quantitative. Dir2B sits between: its broadcast bit fires rarely.\n")
	return b.String(), nil
}

// runMigration reproduces the paper's Section 4.4 methodology check:
// process-based and processor-based sharing classifications give nearly
// identical results when migration is rare, and diverge when it is not.
// Sharing is classified per processor by simulating caches per CPU and
// per process by remapping caches onto process ids (ProcAsCPU).
func runMigration(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("migration", "Process- vs processor-based sharing (Section 4.4)"))
	tbl := newTable("migration/turn", "shared blk (proc)", "shared blk (cpu)",
		"Dir0B cyc/ref (proc)", "Dir0B cyc/ref (cpu)")
	for _, rate := range []float64{0, 0.001, 0.01} {
		prof := workload.POPSProfile()
		prof.MigrationRate = rate
		tr, err := workload.Generate(workload.Config{
			Name: "pops", CPUs: c.CPUs, Refs: c.Refs,
			Seed: workload.SeedPOPS, Profile: prof,
		})
		if err != nil {
			return "", err
		}
		byCPU := trace.ComputeStats(tr)
		byProc := trace.ComputeStats(trace.Collect(tr.Name, trace.ProcAsCPU(tr.Iterator())))
		// byProc's per-process sharing comes from Proc fields either
		// way; the interesting difference is the simulated cost.
		perProc, err := c.MergedScheme("Dir0B", []*trace.Trace{tr}, trace.ProcAsCPU)
		if err != nil {
			return "", err
		}
		perCPU, err := c.MergedScheme("Dir0B", []*trace.Trace{tr}, nil)
		if err != nil {
			return "", err
		}
		tbl.row(fmt.Sprintf("%g", rate),
			fmt.Sprintf("%d", byProc.SharedBlk),
			fmt.Sprintf("%d", cpuSharedBlocks(byCPU, tr)),
			cyc(perProc.PerRef("pipelined")),
			cyc(perCPU.PerRef("pipelined")))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nwith no migration the classifications coincide — the check the paper\n" +
		"reports ('the numbers were not significantly different'). As the\n" +
		"migration rate rises, processor-based simulation charges the drag of\n" +
		"moving working sets between caches as sharing cost; classifying per\n" +
		"process excludes it, which is why the paper chose that model.\n")
	return b.String(), nil
}

// runSysPerf reproduces the paper's Section 5 system-performance
// estimate: how many processors a single shared bus supports before
// coherence traffic saturates it.
func runSysPerf(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("sysperf", "Effective processors on one bus (Section 5)"))
	tbl := newTable("scheme", "cycles/ref", "ns between bus cycles", "effective CPUs")
	for _, scheme := range []string{"Dir0B", "Dragon", "WTI", "Dir1NB"} {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		sp := bus.PaperSystem(r.PerRef("pipelined"))
		tbl.row(scheme, cyc(sp.CyclesPerRef),
			fmt.Sprintf("%.0f", sp.NSBetweenBusCycles()),
			fmt.Sprintf("%.1f", sp.EffectiveProcessors()))
	}
	b.WriteString(tbl.String())
	paper := bus.PaperSystem(0.03)
	b.WriteString(fmt.Sprintf("\npaper's example: %.4f cycles/ref on a 10-MIPS processor and 100ns bus\n"+
		"-> a bus cycle every ~1500ns and ~15 effective processors (computed\n"+
		"here: %.1f). This optimistic bound is why the paper argues a single\n"+
		"bus cannot scale and directories must move to a network.\n",
		0.03, paper.EffectiveProcessors()))
	return b.String(), nil
}

// runContention extends the Section 5 system estimate with queueing: the
// paper's bound divides bus capacity by demand; the timing replay makes
// processors actually wait for the bus, so achieved parallelism falls
// below the bound as the machine grows.
func runContention(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("contention", "Bus queueing vs the optimistic Section 5 bound"))
	cfg := contention.PaperConfig()
	for _, scheme := range []string{"Dir0B", "Dragon", "WTI"} {
		tbl := newTable(scheme, "effective CPUs (queued)", "bus utilization", "optimistic bound")
		for _, cpus := range []int{4, 8, 16, 32} {
			var agg contention.Stats
			var demand, refs float64
			for _, tr := range c.TracesAt(cpus) {
				s, _, err := contention.RunScheme(scheme, tr, cfg)
				if err != nil {
					return "", err
				}
				agg.Span += s.Span
				agg.BusBusy += s.BusBusy
				agg.AloneTime += s.AloneTime
				agg.CPUs = s.CPUs
				demand += s.BusBusy
				refs += float64(s.Refs)
			}
			perRefDemand := demand / refs
			bound := float64(cpus)
			if perRefDemand > 0 {
				bound = (cfg.ThinkCycles + perRefDemand) / perRefDemand
				if bound > float64(cpus) {
					bound = float64(cpus)
				}
			}
			tbl.row(fmt.Sprintf("%d CPUs", cpus),
				fmt.Sprintf("%.2f", agg.EffectiveProcessors()),
				fmt.Sprintf("%.1f%%", 100*agg.Utilization()),
				fmt.Sprintf("%.2f", bound))
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	b.WriteString("once the bus saturates, adding processors adds waiting, not work —\n" +
		"the queue-aware version of the paper's 'no more than 15-20 processors\n" +
		"on a bus' conclusion, and the quantitative case for directories on\n" +
		"point-to-point networks.\n")
	return b.String(), nil
}

// runDirBandwidth quantifies the paper's conclusion that the directory is
// not a bottleneck: per reference, the directory is consulted once per
// miss (overlapped with the memory lookup) plus once per write hit to a
// clean block, so its access rate barely exceeds memory's.
func runDirBandwidth(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("dirbw", "Directory vs memory access bandwidth"))
	tbl := newTable("scheme", "mem ops/100 refs", "dir ops/100 refs", "dir/mem ratio")
	for _, scheme := range []string{"Dir0B", "DirNNB", "Dir1NB"} {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		cc := r.Counts
		// Memory operations: fills served from memory plus dirty
		// write-backs (which also involve a memory write).
		memFills := cc.PctSum(event.RdMissClean, event.RdMissMem, event.WrMissClean, event.WrMissMem)
		wbs := cc.PctSum(event.RdMissDirty, event.WrMissDirty)
		memOps := memFills + wbs
		// Directory operations: every miss looks the entry up, every
		// write hit to a clean block queries it, and each state
		// change writes it back (counted within the same access).
		dirOps := cc.ReadMisses() + cc.WriteMisses() + cc.Pct(event.WrHitClean)
		tbl.row(scheme,
			fmt.Sprintf("%.3f", memOps),
			fmt.Sprintf("%.3f", dirOps),
			fmt.Sprintf("%.2f", dirOps/memOps))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nthe directory sees only slightly more traffic than memory (the\n" +
		"wh-blk-cln queries), and both distribute across nodes together —\n" +
		"the paper's conclusion that directory bandwidth 'is not much more\n" +
		"severe than the memory bandwidth need'.\n")
	return b.String(), nil
}

// runBlockSize is a sensitivity study on the block size the paper fixes
// at 16 bytes: larger blocks exploit spatial locality (fewer cold misses)
// but induce false sharing, which hurts invalidation protocols more than
// update protocols.
func runBlockSize(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("blocksize", "Block-size sensitivity (paper fixes 16 bytes)"))
	tbl := newTable("block", "Dir0B cyc/ref", "Dir0B rd-miss %", "Dir0B inval<=1 %", "Dragon cyc/ref")
	for _, size := range []int{16, 32, 64, 128} {
		words := size / 4
		model := bus.PipelinedWords(words)
		row := []string{fmt.Sprintf("%dB", size)}
		for _, scheme := range []string{"Dir0B", "Dragon"} {
			var results []*sim.Result
			for _, tr := range c.Traces() {
				p, err := core.NewByName(scheme, tr.CPUs)
				if err != nil {
					return "", err
				}
				src, err := trace.WithBlockSize(tr.Iterator(), size)
				if err != nil {
					return "", err
				}
				r, err := sim.Simulate(p, src, sim.Options{Models: []bus.Model{model}})
				if err != nil {
					return "", err
				}
				r.Trace = tr.Name
				results = append(results, r)
			}
			merged, err := sim.Merge(results...)
			if err != nil {
				return "", err
			}
			row = append(row, cyc(merged.PerRef("pipelined")))
			if scheme == "Dir0B" {
				row = append(row,
					fmt.Sprintf("%.3f", merged.Counts.ReadMisses()),
					fmt.Sprintf("%.1f", merged.InvalClean.PctAtMost(1)))
			}
		}
		tbl.row(row...)
	}
	b.WriteString(tbl.String())
	b.WriteString("\nbigger blocks cut the cold-miss count but each fill moves more words\n" +
		"and false sharing creeps into the invalidation pattern; the paper's\n" +
		"16-byte choice sits before the false-sharing knee on these workloads.\n")
	return b.String(), nil
}

// runFiniteCoherence verifies the paper's footnote 2 with a full
// finite-cache coherence simulation (not the first-order estimate): as
// the cache shrinks, capacity misses appear but the *coherence-related*
// miss component falls, because blocks an invalidation would have purged
// are often already evicted.
func runFiniteCoherence(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("finitecoh", "Coherence misses in finite caches (footnote 2)"))
	tr := workload.POPS(c.CPUs, c.Refs)
	tbl := newTable("cache", "coherence miss %", "capacity miss %", "cycles/ref (pipelined)")
	// An effectively infinite cache first, then smaller ones.
	for _, kb := range []int{4096, 64, 16, 4} {
		cfg := cachepkg.Config{SizeBytes: kb * 1024, Assoc: 2, HashIndex: true}
		p, err := core.NewFiniteDirNNB(tr.CPUs, cfg)
		if err != nil {
			return "", err
		}
		r, err := sim.Simulate(p, tr.Iterator(), sim.Options{})
		if err != nil {
			return "", err
		}
		fd := p.(interface{ Counters() (cold, coh, cap int64) })
		cold, coh, capm := fd.Counters()
		_ = cold
		total := float64(r.Counts.Total)
		tbl.row(fmt.Sprintf("%dKB", kb),
			fmt.Sprintf("%.3f", 100*float64(coh)/total),
			fmt.Sprintf("%.3f", 100*float64(capm)/total),
			cyc(r.PerRef("pipelined")))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nthe paper's footnote 2: 'coherency-related misses will be fewer in a\n" +
		"finite-sized cache because some of the blocks that would be\n" +
		"invalidated ... have already been purged'. The coherence column\n" +
		"falls as the cache shrinks while capacity misses take over.\n")
	return b.String(), nil
}

// cpuSharedBlocks counts data blocks touched by more than one *CPU* (the
// processor-based classification); Stats counts per process.
func cpuSharedBlocks(_ trace.Stats, tr *trace.Trace) int {
	cpus := map[trace.Block]map[uint8]struct{}{}
	for _, r := range tr.Refs {
		if !r.IsData() {
			continue
		}
		m := cpus[r.Block()]
		if m == nil {
			m = map[uint8]struct{}{}
			cpus[r.Block()] = m
		}
		m[r.CPU] = struct{}{}
	}
	n := 0
	for _, m := range cpus {
		if len(m) > 1 {
			n++
		}
	}
	return n
}
