package report

import (
	"fmt"
	"strings"

	"dirsim/internal/bus"
	"dirsim/internal/cache"
	"dirsim/internal/core"
	"dirsim/internal/directory"
	"dirsim/internal/trace"
)

// runQSens reproduces the Section 5.1 analysis: adding q fixed cycles to
// every bus transaction. cycles/ref(q) = base + q·(txn/ref), computed from
// the same simulations as Figure 2.
func runQSens(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("qsens", "Cycles per reference as fixed transaction cost q grows"))
	qs := []float64{0, 1, 2, 4}
	cols := make([]string, len(qs))
	for i, q := range qs {
		cols[i] = fmt.Sprintf("q=%g", q)
	}
	tbl := newTable("scheme", append(cols, "slope (txn/ref)")...)
	type line struct{ base, slope float64 }
	lines := map[string]line{}
	for _, scheme := range PaperSchemes {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		t := r.Tally("pipelined")
		l := line{base: t.PerRef(), slope: t.TransactionsPerRef()}
		lines[scheme] = l
		cells := []string{scheme}
		for _, q := range qs {
			cells = append(cells, cyc(l.base+q*l.slope))
		}
		cells = append(cells, fmt.Sprintf("%.4f", l.slope))
		tbl.row(cells...)
	}
	b.WriteString(tbl.String())
	d0, dg := lines["Dir0B"], lines["Dragon"]
	gap0 := 100 * (d0.base - dg.base) / dg.base
	gap1 := 100 * (d0.base + d0.slope - dg.base - dg.slope) / (dg.base + dg.slope)
	b.WriteString(fmt.Sprintf("\npaper model: Dragon 0.0336+0.0206q, Dir0B 0.0491+0.0114q; at q=1 the\n"+
		"Dir0B premium over Dragon shrinks from 46%% to 12%%.\n"+
		"measured:   Dragon %s+%.4fq, Dir0B %s+%.4fq; premium %.0f%% -> %.0f%%.\n",
		cyc(dg.base), dg.slope, cyc(d0.base), d0.slope, gap0, gap1))
	return b.String(), nil
}

// runSpinlocks reproduces Section 5.2: rerunning Dir1NB and Dir0B with all
// lock-test reads removed from the traces.
func runSpinlocks(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("spinlocks", "Pipelined cycles/ref with and without lock-test spins"))
	tbl := newTable("scheme", "with spins", "without spins", "paper")
	for _, scheme := range []string{"Dir1NB", "Dir0B"} {
		with, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		without, err := c.MergedScheme(scheme, c.Traces(), trace.WithoutSpins)
		if err != nil {
			return "", err
		}
		paperCell := "~unchanged"
		if scheme == "Dir1NB" {
			paperCell = fmt.Sprintf("%.2f -> %.2f", PaperSpinlock.With, PaperSpinlock.Without)
		}
		tbl.row(scheme, cyc(with.PerRef("pipelined")), cyc(without.PerRef("pipelined")), paperCell)
	}
	b.WriteString(tbl.String())
	b.WriteString("\nlocks bounce between the spinning caches under Dir1NB, so removing\n" +
		"the test reads collapses its cost; Dir0B is essentially unaffected.\n" +
		"Software schemes that flush critical sections behave like Dir1NB.\n")
	return b.String(), nil
}

// runDirNNB reproduces the first Section 6 result: replacing Dir0B's
// broadcast invalidations with directed sequential invalidations (full-map
// DirNNB) costs almost nothing, because writes rarely invalidate more than
// one cache.
func runDirNNB(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("dirnnb", "Broadcast vs sequential invalidation"))
	d0, err := c.Merged("Dir0B")
	if err != nil {
		return "", err
	}
	dn, err := c.Merged("DirNNB")
	if err != nil {
		return "", err
	}
	tbl := newTable("scheme", "cycles/ref (pipelined)", "paper")
	tbl.row("Dir0B (broadcast)", cyc(d0.PerRef("pipelined")), cyc(PaperCyclesPipelined["Dir0B"]))
	tbl.row("DirNNB (sequential)", cyc(dn.PerRef("pipelined")), cyc(PaperCyclesPipelined["DirNNB"]))
	b.WriteString(tbl.String())
	b.WriteString(fmt.Sprintf("\nsequential invalidation costs %.2f%% more cycles (paper: +1.6%%:\n"+
		"0.0491 -> 0.0499). Directed messages need no bus with broadcast\n"+
		"capability, the property that lets directories scale beyond one bus.\n"+
		"DirNNB sent %.3f directed invalidations per 100 refs.\n",
		100*(dn.PerRef("pipelined")-d0.PerRef("pipelined"))/d0.PerRef("pipelined"),
		100*float64(dn.SeqInvals)/float64(dn.Counts.Total)))
	return b.String(), nil
}

// runDir1B reproduces the Section 6 Dir1B analysis: one pointer plus a
// broadcast bit, with broadcast cost b as a parameter. The simulation runs
// once; the linear model follows from the measured broadcast frequency.
func runDir1B(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("dir1b", "Dir1B: cycles/ref as a function of broadcast cost b"))
	r, err := c.Merged("Dir1B")
	if err != nil {
		return "", err
	}
	t := r.Tally("pipelined")
	base := t.PerRef()
	slope := float64(r.Broadcasts) / float64(r.Counts.Total)
	// base was measured at b=1, so the b-parameterized line is
	// (base - slope) + slope*b.
	b0 := base - slope
	tbl := newTable("b (cycles)", "cycles/ref", "paper model")
	for _, bc := range []float64{1, 2, 4, 8, 16} {
		tbl.row(fmt.Sprintf("%g", bc), cyc(b0+slope*bc),
			cyc(PaperDir1B.Base+PaperDir1B.Slope*bc))
	}
	b.WriteString(tbl.String())
	b.WriteString(fmt.Sprintf("\nmeasured model: %s + %.4f·b (paper: %.4f + %.4f·b).\n"+
		"broadcasts are needed on only %.3f%% of references, so even expensive\n"+
		"broadcasts barely move the total — the single-pointer entry covers\n"+
		"the common case.\n",
		cyc(b0), slope, PaperDir1B.Base, PaperDir1B.Slope, 100*slope))
	return b.String(), nil
}

// runBerkeley reproduces the paper's aside: the Berkeley Ownership
// protocol estimated from Dir0B's event frequencies by zeroing the
// directory-check cost.
func runBerkeley(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("berkeley", "Berkeley Ownership estimate from Dir0B events"))
	d0, err := c.Merged("Dir0B")
	if err != nil {
		return "", err
	}
	dg, err := c.Merged("Dragon")
	if err != nil {
		return "", err
	}
	br := d0.Tally("pipelined").PerRefBreakdown()
	berkeley := br.Total() - br[bus.CatDirAccess]
	tbl := newTable("scheme", "cycles/ref (pipelined)")
	tbl.row("Dir0B", cyc(br.Total()))
	tbl.row("Berkeley (derived)", cyc(berkeley))
	tbl.row("Dragon", cyc(dg.PerRef("pipelined")))
	b.WriteString(tbl.String())
	b.WriteString(fmt.Sprintf("\nthe paper prints %.4f for Berkeley but describes it as between Dir0B\n"+
		"and Dragon; Dir0B minus its directory component (%.4f here) is the\n"+
		"consistent reading, and that ordering is what this run shows.\n",
		PaperBerkeley.Printed, berkeley))
	return b.String(), nil
}

// runScaling sweeps the pointer count of the Dir_i schemes at several
// machine sizes — the study the paper outlines but could not run for lack
// of wider traces.
func runScaling(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("scaling", "Dir_iB and Dir_iNB across pointer counts and machine sizes"))
	for _, cpus := range []int{4, 8, 16} {
		traces := c.TracesAt(cpus)
		b.WriteString(fmt.Sprintf("machine size %d CPUs:\n", cpus))
		tbl := newTable("scheme", "cycles/ref", "rd-miss %", "bcasts/1k refs", "forced-inv/1k refs", "inval<=1 %")
		schemes := []string{"Dir0B", "Dir1B", "Dir2B", "Dir4B", "Dir1NB", "Dir2NB", "Dir4NB", "DirNNB"}
		for _, scheme := range schemes {
			r, err := c.MergedScheme(scheme, traces, nil)
			if err != nil {
				return "", err
			}
			tbl.row(scheme,
				cyc(r.PerRef("pipelined")),
				fmt.Sprintf("%.3f", r.Counts.ReadMisses()),
				fmt.Sprintf("%.2f", 1000*float64(r.Broadcasts)/float64(r.Counts.Total)),
				fmt.Sprintf("%.2f", 1000*float64(r.ForcedInvals)/float64(r.Counts.Total)),
				fmt.Sprintf("%.1f", r.InvalClean.PctAtMost(1)))
		}
		b.WriteString(tbl.String())
		b.WriteByte('\n')
	}
	b.WriteString("a couple of pointers already make broadcasts (B schemes) or forced\n" +
		"invalidations (NB schemes) rare; the miss-rate penalty of Dir_iNB\n" +
		"shrinks as i grows, the trade the paper proposes for scalability.\n")
	return b.String(), nil
}

// runCoarse evaluates the Section 6 coarse ternary-digit code: exact
// directed invalidation (DirNNB) vs superset invalidation in 2·log n bits.
func runCoarse(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("coarse", "Coarse-code superset invalidation vs full map"))
	tbl := newTable("cpus", "DirNNB cycles/ref", "DirCV cycles/ref", "wasted invals", "overshoot")
	for _, cpus := range []int{4, 8, 16, 32} {
		traces := c.TracesAt(cpus)
		full, err := c.MergedScheme("DirNNB", traces, nil)
		if err != nil {
			return "", err
		}
		var overshoot float64
		var wasted int64
		cv, err := c.RunProtocol(func(ncpu int) core.Protocol {
			p := directory.NewCoarseVector(ncpu)
			return p
		}, traces, nil)
		if err != nil {
			return "", err
		}
		// Re-run per trace to collect engine-level overshoot (the
		// merged Result does not carry it); cheaper: derive from
		// invalidation counts.
		wasted = cv.SeqInvals - full.SeqInvals
		if cv.SeqInvals > 0 {
			overshoot = float64(wasted) / float64(cv.SeqInvals)
		}
		tbl.row(fmt.Sprintf("%d", cpus),
			cyc(full.PerRef("pipelined")), cyc(cv.PerRef("pipelined")),
			fmt.Sprintf("%d", wasted), fmt.Sprintf("%.1f%%", 100*overshoot))
	}
	b.WriteString(tbl.String())
	b.WriteString("\nthe code stores 2·log2(n) bits per entry instead of n. A sizeable\n" +
		"fraction of its invalidation messages are wasted on caches the code\n" +
		"names but that hold no copy, yet because invalidations are a small\n" +
		"share of total cycles (Table 5) the end-to-end cost stays within a\n" +
		"few percent of the full map.\n")
	return b.String(), nil
}

// runStorage renders the directory storage comparison behind the Section 6
// discussion.
func runStorage(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("storage", "Directory entry storage by organization"))
	b.WriteString(directory.StorageTable(
		directory.StandardSpecs(1, 2, 4),
		[]int{4, 16, 64, 256}))
	b.WriteString(fmt.Sprintf("\nTang duplicate-tag equivalent (64 CPUs, 64K-line caches, 16M-block\n"+
		"memory, 20-bit tags): %.2f bits/block.\n",
		directory.TangBits(64, 64*1024, 16*1024*1024, 20)))
	b.WriteString("the full map grows linearly with machine size; limited pointers and\n" +
		"the coarse code grow logarithmically — the paper's scalability case.\n")
	return b.String(), nil
}

// runFinite applies the Section 4 first-order finite-cache model: measure
// extra capacity misses at several cache sizes and add their memory
// traffic to the infinite-cache coherence cost.
func runFinite(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("finite", "First-order finite-cache estimate (Dir0B, pipelined)"))
	d0, err := c.Merged("Dir0B")
	if err != nil {
		return "", err
	}
	base := d0.PerRef("pipelined")
	mem := bus.Pipelined().MemAccess
	tbl := newTable("cache", "capacity miss/ref", "est. cycles/ref", "vs infinite")
	for _, kb := range []int{4, 16, 64, 256} {
		cfg := cache.Config{SizeBytes: kb * 1024, Assoc: 2, HashIndex: true}
		var agg cache.FiniteStats
		for _, t := range c.Traces() {
			s, err := cache.SimulateFinite(t, cfg)
			if err != nil {
				return "", err
			}
			agg.Config = s.Config
			agg.CPUs = s.CPUs
			agg.DataRefs += s.DataRefs
			agg.DataMisses += s.DataMisses
			agg.ColdMisses += s.ColdMisses
			agg.CapacityMisses += s.CapacityMisses
			agg.InstrRefs += s.InstrRefs
			agg.InstrMisses += s.InstrMisses
		}
		est := cache.FirstOrderEstimate(base, agg, mem)
		tbl.row(fmt.Sprintf("%dKB/2-way", kb),
			fmt.Sprintf("%.5f", agg.ExtraMissesPerRef()),
			cyc(est), fmt.Sprintf("+%.0f%%", 100*(est-base)/base))
	}
	b.WriteString(tbl.String())
	b.WriteString(fmt.Sprintf("\ninfinite-cache Dir0B baseline: %s cycles/ref. Large caches approach\n"+
		"the infinite-cache cost, the paper's justification for the\n"+
		"infinite-cache methodology.\n", cyc(base)))
	return b.String(), nil
}
