package report

import (
	"strings"
	"testing"
)

// smallContext builds a context small enough for unit tests yet large
// enough that the qualitative results hold.
func smallContext() *Context { return NewContext(60_000, 4) }

func TestExperimentsRegistryOrder(t *testing.T) {
	exps := Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	// Paper order: tables 3 and 4 first, conclusions last.
	if exps[0].ID != "table3" || exps[1].ID != "table4" {
		t.Errorf("registry does not start with the methodology tables: %v", IDs())
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig5",
		"table5", "qsens", "spinlocks", "dirnnb", "dir1b", "berkeley",
		"scaling", "coarse", "storage", "finite",
		"sysperf", "network", "extended", "migration", "finitecoh",
		"blocksize", "dirbw", "contention", "vm"} {
		if !seen[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}

func TestLookup(t *testing.T) {
	all, err := Lookup("all")
	if err != nil || len(all) != len(Experiments()) {
		t.Errorf("Lookup(all): %d, err %v", len(all), err)
	}
	if got, err := Lookup(""); err != nil || len(got) != len(all) {
		t.Errorf("Lookup(empty) = %d, err %v", len(got), err)
	}
	some, err := Lookup("fig1, table4")
	if err != nil || len(some) != 2 {
		t.Fatalf("Lookup subset: %v, err %v", some, err)
	}
	if _, err := Lookup("fig1,bogus"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown id not reported: %v", err)
	}
}

func TestNewContextDefaults(t *testing.T) {
	c := NewContext(0, 0)
	if c.Refs != 400_000 || c.CPUs != 4 {
		t.Errorf("defaults: %d refs, %d cpus", c.Refs, c.CPUs)
	}
}

func TestContextCachesTraces(t *testing.T) {
	c := smallContext()
	a := c.Traces()
	b := c.Traces()
	if &a[0] != &b[0] {
		// Slices are rebuilt but the underlying traces must be shared.
		if a[0] != b[0] {
			t.Error("standard traces regenerated on every call")
		}
	}
	if len(c.TracesAt(4)) != 3 {
		t.Error("TracesAt(headline size) should return the standard set")
	}
	w8a, w8b := c.TracesAt(8), c.TracesAt(8)
	if w8a[0] != w8b[0] {
		t.Error("scaled traces not cached")
	}
}

func TestContextMergedCaches(t *testing.T) {
	c := smallContext()
	a, err := c.Merged("Dir0B")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Merged("Dir0B")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("merged results not cached")
	}
	if _, err := c.Merged("NotAScheme"); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestEveryExperimentRuns executes each registered experiment at a small
// size and sanity-checks its rendered output.
func TestEveryExperimentRuns(t *testing.T) {
	c := smallContext()
	wantSnippets := map[string]string{
		"table3":     "trace",
		"table4":     "wh-distrib",
		"table5":     "cumulative",
		"fig1":       "at most one cache",
		"fig2":       "Dir0B",
		"fig3":       "pero",
		"fig4":       "%",
		"fig5":       "cycles/txn",
		"qsens":      "q=1",
		"spinlocks":  "without spins",
		"dirnnb":     "sequential",
		"dir1b":      "broadcast",
		"berkeley":   "Berkeley",
		"scaling":    "Dir2NB",
		"coarse":     "DirCV",
		"storage":    "full-map",
		"finite":     "capacity",
		"sysperf":    "effective",
		"network":    "mesh",
		"extended":   "Berkeley",
		"migration":  "process",
		"finitecoh":  "footnote 2",
		"blocksize":  "false sharing",
		"dirbw":      "dir/mem",
		"contention": "saturates",
		"vm":         "executing",
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(c)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(out) < 100 {
				t.Fatalf("%s output suspiciously short:\n%s", e.ID, out)
			}
			if want := wantSnippets[e.ID]; want != "" && !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", e.ID, want, out)
			}
		})
	}
}

// TestQualitativeResultsHold asserts the paper's headline conclusions on
// freshly simulated traces.
func TestQualitativeResultsHold(t *testing.T) {
	c := NewContext(150_000, 4)
	perRef := func(scheme string) float64 {
		r, err := c.Merged(scheme)
		if err != nil {
			t.Fatal(err)
		}
		return r.PerRef("pipelined")
	}
	d1, wti, d0, dragon := perRef("Dir1NB"), perRef("WTI"), perRef("Dir0B"), perRef("Dragon")
	if !(d1 > wti && wti > d0 && d0 > dragon) {
		t.Errorf("scheme ordering broken: Dir1NB %.4f, WTI %.4f, Dir0B %.4f, Dragon %.4f",
			d1, wti, d0, dragon)
	}
	// Dir0B within 2x of Dragon (paper: within ~1.5x).
	if d0 > 2*dragon {
		t.Errorf("Dir0B (%.4f) not competitive with Dragon (%.4f)", d0, dragon)
	}
	// Figure 1: >75% of clean-block writes invalidate at most one cache
	// (paper: >85%; leave slack for the smaller trace).
	r, err := c.Merged("Dir0B")
	if err != nil {
		t.Fatal(err)
	}
	if pct := r.InvalClean.PctAtMost(1); pct < 75 {
		t.Errorf("only %.1f%% of clean writes invalidate <=1 cache", pct)
	}
	// DirNNB within 5% of Dir0B (paper: 1.6%).
	dn := perRef("DirNNB")
	if diff := (dn - d0) / d0; diff < 0 || diff > 0.05 {
		t.Errorf("DirNNB premium over Dir0B = %.3f, want small and positive", diff)
	}
}

func TestPaperConstants(t *testing.T) {
	for _, s := range PaperSchemes {
		if _, ok := PaperTable4[s]; !ok {
			t.Errorf("no Table 4 reference values for %s", s)
		}
		if _, ok := PaperCyclesPipelined[s]; !ok {
			t.Errorf("no Table 5 cumulative value for %s", s)
		}
	}
	if PaperCyclesPipelined["Dir0B"] >= PaperCyclesPipelined["WTI"] {
		t.Error("paper constants transcribed wrong")
	}
}

// TestReportDeterminism guards end-to-end reproducibility: two fresh
// contexts with identical parameters must render byte-identical output
// for every experiment that uses only the standard traces.
func TestReportDeterminism(t *testing.T) {
	for _, id := range []string{"table4", "fig1", "fig2", "qsens"} {
		exps, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := exps[0].Run(NewContext(40_000, 4))
		if err != nil {
			t.Fatal(err)
		}
		b, err := exps[0].Run(NewContext(40_000, 4))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s output differs between identical fresh contexts", id)
		}
	}
}

func TestRenderHelpers(t *testing.T) {
	tbl := newTable("x", "a", "b")
	tbl.row("r1", "1") // short row gets padded
	out := tbl.String()
	if !strings.Contains(out, "r1") || !strings.Contains(out, "---") {
		t.Errorf("table render: %q", out)
	}
	if pct(0) != "-" || pct(1.5) != "1.50" {
		t.Error("pct formatting")
	}
	if cyc(0.12345) != "0.1234" && cyc(0.12345) != "0.1235" {
		t.Errorf("cyc formatting: %s", cyc(0.12345))
	}
	if ratio(1, 0) != "-" || ratio(3, 2) != "1.50" {
		t.Error("ratio formatting")
	}
	if !strings.Contains(withPaper(0.5, 0.4, true), "paper") {
		t.Error("withPaper should cite the paper value")
	}
	if strings.Contains(withPaper(0.5, 0.4, false), "paper") {
		t.Error("withPaper without a value should not cite one")
	}
}
