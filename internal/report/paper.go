// Package report regenerates the paper's tables and figures from fresh
// simulations and renders them side by side with the published values.
// Each experiment is registered under the paper artifact it reproduces
// (table3, table4, table5, fig1..fig5, and the Section 5.1/5.2/6 studies);
// cmd/experiments runs them all and EXPERIMENTS.md records the outcome.
package report

// Scheme display order used throughout the paper's tables.
var PaperSchemes = []string{"Dir1NB", "WTI", "Dir0B", "Dragon"}

// PaperTable4 holds the published event frequencies (percent of all
// references, averaged over POPS, THOR and PERO) from Table 4, keyed by
// the paper's row labels. Missing entries were not reported for that
// scheme.
var PaperTable4 = map[string]map[string]float64{
	"Dir1NB": {
		"instr": 49.72, "read": 39.82, "rd-hit": 34.32, "rd-miss(rm)": 5.18,
		"rm-blk-cln": 4.78, "rm-blk-drty": 0.40, "rm-first-ref": 0.32,
		"write": 10.46, "wrt-hit(wh)": 10.19,
		"wrt-miss(wm)": 0.17, "wm-blk-cln": 0.08, "wm-blk-drty": 0.09,
		"wm-first-ref": 0.08,
	},
	"WTI": {
		"instr": 49.72, "read": 39.82, "rd-hit": 38.88, "rd-miss(rm)": 0.62,
		"rm-first-ref": 0.32,
		"write":        10.46, "wrt-hit(wh)": 10.25,
		"wrt-miss(wm)": 0.12, "wm-first-ref": 0.08,
	},
	"Dir0B": {
		"instr": 49.72, "read": 39.82, "rd-hit": 38.88, "rd-miss(rm)": 0.62,
		"rm-blk-cln": 0.23, "rm-blk-drty": 0.40, "rm-first-ref": 0.32,
		"write": 10.46, "wrt-hit(wh)": 10.25, "wh-blk-cln": 0.41,
		"wh-blk-drty":  9.84,
		"wrt-miss(wm)": 0.11, "wm-blk-cln": 0.02, "wm-blk-drty": 0.09,
		"wm-first-ref": 0.08,
	},
	"Dragon": {
		"instr": 49.72, "read": 39.82, "rd-hit": 39.20, "rd-miss(rm)": 0.30,
		"rm-blk-cln": 0.14, "rm-blk-drty": 0.17, "rm-first-ref": 0.32,
		"write": 10.46, "wrt-hit(wh)": 10.36, "wh-distrib": 1.74,
		"wh-local":     8.62,
		"wrt-miss(wm)": 0.02, "wm-blk-cln": 0.01, "wm-blk-drty": 0.01,
		"wm-first-ref": 0.08,
	},
}

// PaperCyclesPipelined holds the Table 5 cumulative bus cycles per
// reference for the pipelined bus.
var PaperCyclesPipelined = map[string]float64{
	"Dir1NB": 0.3210,
	"WTI":    0.1466,
	"Dir0B":  0.0491,
	"Dragon": 0.0336,
	"DirNNB": 0.0499, // Section 6 sequential-invalidation result
}

// PaperDir0BDirAccess is the non-overlapped directory-access component of
// Dir0B's pipelined cost (Table 5).
const PaperDir0BDirAccess = 0.0041

// PaperTxnPerRef holds the Section 5.1 slopes: bus transactions per
// reference for the two schemes the paper quotes.
var PaperTxnPerRef = map[string]float64{
	"Dragon": 0.0206,
	"Dir0B":  0.0114,
}

// PaperFig1AtMostOne is the paper's headline Figure 1 statistic: the
// percentage of writes to previously-clean blocks that invalidate at most
// one remote cache.
const PaperFig1AtMostOne = 85.0

// PaperDir1B holds the Section 6 Dir1B linear model
// cycles/ref = base + slope·b, where b is the broadcast cost in cycles.
var PaperDir1B = struct{ Base, Slope float64 }{0.0485, 0.0006}

// PaperSpinlock holds the Section 5.2 result: Dir1NB pipelined cycles per
// reference with and without lock-test reads.
var PaperSpinlock = struct{ With, Without float64 }{0.32, 0.12}

// PaperBerkeley is the paper's Berkeley-Ownership estimate (pipelined
// cycles/ref, derived from Dir0B events with free directory checks). The
// printed value, 0.0499, sits above Dir0B's 0.0491 even though the text
// places Berkeley between Dir0B and Dragon; the text and arithmetic
// suggest the true value is Dir0B minus the 0.0041 directory component
// (~0.0450). Both are recorded.
var PaperBerkeley = struct{ Printed, Derived float64 }{0.0499, 0.0450}
