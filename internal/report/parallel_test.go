package report

import (
	"testing"

	"dirsim/internal/engine"
)

// TestParallelContextRendersIdentically runs the Table 4 / Figure 1 /
// Figure 2 experiments (the full paper-scheme set) under a parallel
// context and asserts the rendered artifacts are byte-identical to the
// serial context's.
func TestParallelContextRendersIdentically(t *testing.T) {
	const refs = 30_000
	serial := NewContext(refs, 4)
	parallel := NewContextWith(refs, 4,
		engine.New(engine.Options{Workers: 8}), engine.Parallel{Workers: 8})

	for _, id := range []string{"table4", "fig1", "fig2"} {
		exps, err := Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		e := exps[0]
		want, err := e.Run(serial)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		got, err := e.Run(parallel)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if got != want {
			t.Errorf("%s: parallel rendering differs from serial\nserial:\n%s\nparallel:\n%s",
				id, want, got)
		}
	}

	if parallel.Engine().Stats().SimsRun == 0 {
		t.Error("parallel context ran no simulations through its engine")
	}
}
