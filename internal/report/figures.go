package report

import (
	"fmt"
	"strings"

	"dirsim/internal/bus"
)

// runFig1 reproduces Figure 1: the histogram of how many remote caches
// hold a previously-clean block when it is written (Dir0B state model).
func runFig1(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("fig1", "Invalidations on writes to previously-clean blocks (Dir0B model)"))
	r, err := c.Merged("Dir0B")
	if err != nil {
		return "", err
	}
	h := r.InvalClean
	tbl := newTable("caches", "events", "% of such writes", "bar")
	for v, n := range h.Buckets {
		if n == 0 && v > c.CPUs {
			continue
		}
		barLen := int(h.Pct(v) / 2)
		tbl.row(fmt.Sprintf("%d", v), fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", h.Pct(v)), strings.Repeat("#", barLen))
	}
	b.WriteString(tbl.String())
	b.WriteString(fmt.Sprintf("\nat most one cache must be invalidated for %.1f%% of writes to\n"+
		"previously-clean blocks (paper: over %.0f%%); mean %.2f caches.\n",
		h.PctAtMost(1), PaperFig1AtMostOne, h.Mean()))
	b.WriteString(fmt.Sprintf("including dirty-miss flushes (footnote 3): %.1f%% need at most one.\n",
		r.HoldersAtInval.PctAtMost(1)))
	return b.String(), nil
}

// runFig2 reproduces Figure 2: average bus cycles per reference for the
// four schemes under both bus models.
func runFig2(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("fig2", "Bus cycles per memory reference (average over traces)"))
	tbl := newTable("scheme", "pipelined", "non-pipelined", "paper (pipelined)")
	for _, scheme := range PaperSchemes {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		paperCell := "-"
		if p, ok := PaperCyclesPipelined[scheme]; ok {
			paperCell = cyc(p)
		}
		tbl.row(scheme, cyc(r.PerRef("pipelined")), cyc(r.PerRef("non-pipelined")), paperCell)
	}
	b.WriteString(tbl.String())
	d0, err := c.Merged("Dir0B")
	if err != nil {
		return "", err
	}
	dg, err := c.Merged("Dragon")
	if err != nil {
		return "", err
	}
	b.WriteString(fmt.Sprintf("\nDir0B / Dragon ratio: %s (paper %.2f). The scheme ordering\n"+
		"Dir1NB > WTI > Dir0B > Dragon holds on both bus models, as in the paper.\n",
		ratio(d0.PerRef("pipelined"), dg.PerRef("pipelined")),
		PaperCyclesPipelined["Dir0B"]/PaperCyclesPipelined["Dragon"]))
	return b.String(), nil
}

// runFig3 reproduces Figure 3: the same metric per individual trace.
func runFig3(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("fig3", "Bus cycles per reference, per trace (pipelined / non-pipelined)"))
	names := make([]string, 0, 3)
	for _, t := range c.Traces() {
		names = append(names, t.Name)
	}
	tbl := newTable("scheme", names...)
	for _, scheme := range PaperSchemes {
		per, err := c.PerTrace(scheme)
		if err != nil {
			return "", err
		}
		cells := []string{scheme}
		for _, r := range per {
			cells = append(cells, fmt.Sprintf("%s / %s",
				cyc(r.PerRef("pipelined")), cyc(r.PerRef("non-pipelined"))))
		}
		tbl.row(cells...)
	}
	b.WriteString(tbl.String())
	b.WriteString("\npaper: POPS and THOR are similar; PERO is much smaller because its\n" +
		"fraction of shared references is much lower. The same holds here.\n")
	return b.String(), nil
}

// runFig4 reproduces Figure 4: the Table 5 breakdown normalized to each
// scheme's total.
func runFig4(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("fig4", "Breakdown as a fraction of each scheme's bus cycles"))
	tbl := newTable("category", PaperSchemes...)
	fracs := make(map[string]map[string]float64)
	var cats []string
	for _, scheme := range PaperSchemes {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		br := r.Tally("pipelined").PerRefBreakdown()
		total := br.Total()
		m := map[string]float64{}
		for cat := 0; cat < len(br); cat++ {
			name := bus.Category(cat).String()
			if br[cat] > 0 && total > 0 {
				m[name] = 100 * br[cat] / total
			}
			if !contains(cats, name) {
				cats = append(cats, name)
			}
		}
		fracs[scheme] = m
	}
	for _, cat := range cats {
		cells := []string{cat}
		any := false
		for _, scheme := range PaperSchemes {
			v := fracs[scheme][cat]
			if v > 0 {
				any = true
				cells = append(cells, fmt.Sprintf("%.1f%%", v))
			} else {
				cells = append(cells, "-")
			}
		}
		if any {
			tbl.row(cells...)
		}
	}
	b.WriteString(tbl.String())
	b.WriteString("\npaper: Dir1NB is dominated by memory accesses, WTI by write-throughs;\n" +
		"Dragon splits cycles between fills and write updates; Dir0B's\n" +
		"non-overlapped directory share is small.\n")
	return b.String(), nil
}

// runFig5 reproduces Figure 5: average bus cycles per bus transaction.
func runFig5(c *Context) (string, error) {
	var b strings.Builder
	b.WriteString(section("fig5", "Average bus cycles per bus transaction (pipelined)"))
	tbl := newTable("scheme", "cycles/txn", "txn/ref", "paper txn/ref")
	for _, scheme := range PaperSchemes {
		r, err := c.Merged(scheme)
		if err != nil {
			return "", err
		}
		t := r.Tally("pipelined")
		paperCell := "-"
		if p, ok := PaperTxnPerRef[scheme]; ok {
			paperCell = fmt.Sprintf("%.4f", p)
		}
		tbl.row(scheme, fmt.Sprintf("%.2f", t.PerTransaction()),
			fmt.Sprintf("%.4f", t.TransactionsPerRef()), paperCell)
	}
	b.WriteString(tbl.String())
	b.WriteString("\nDragon's average transaction is much cheaper than Dir0B's (word\n" +
		"updates vs block fills), so fixed per-transaction costs hurt Dragon\n" +
		"more — the Section 5.1 argument.\n")
	return b.String(), nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
