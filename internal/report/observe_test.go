package report

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dirsim/internal/obs"
)

// TestRunExperimentObserved checks the report pipeline's observability
// wiring: with a recorder attached, RunExperiment brackets the run in
// experiment events and contributes to the phase breakdown; without one
// it is a plain call.
func TestRunExperimentObserved(t *testing.T) {
	c := NewContext(10_000, 4)
	var buf bytes.Buffer
	rec := obs.NewRecorder(nil, obs.NewJournal(&buf))
	c.Observe(rec)

	e := Experiment{ID: "fake", Title: "fake",
		Run: func(*Context) (string, error) { return "rendered", nil }}
	out, err := c.RunExperiment(e)
	if err != nil || out != "rendered" {
		t.Fatalf("RunExperiment = %q, %v", out, err)
	}
	log := buf.String()
	if !strings.Contains(log, "experiment.start") || !strings.Contains(log, "experiment.finish") {
		t.Errorf("experiment events missing:\n%s", log)
	}
	if !strings.Contains(log, `"name":"fake"`) {
		t.Errorf("events do not carry the experiment ID:\n%s", log)
	}
	phases := rec.Phases()
	if len(phases) != 1 || phases[0].Phase != "experiment" || phases[0].Count != 1 {
		t.Errorf("phase breakdown = %+v", phases)
	}

	// Failures propagate and land in the journal at error level.
	buf.Reset()
	bad := Experiment{ID: "bad", Title: "bad",
		Run: func(*Context) (string, error) { return "", errors.New("boom") }}
	if _, err := c.RunExperiment(bad); err == nil {
		t.Fatal("failure swallowed")
	}
	if !strings.Contains(buf.String(), `"level":"ERROR"`) {
		t.Errorf("failed experiment not journaled at error level:\n%s", buf.String())
	}

	// Detached recorder: plain passthrough, no panic.
	c.Observe(nil)
	if out, err := c.RunExperiment(e); err != nil || out != "rendered" {
		t.Fatalf("detached RunExperiment = %q, %v", out, err)
	}
}
