package bus

import (
	"math"
	"strings"
	"testing"

	"dirsim/internal/event"
)

func TestPaperSystemExample(t *testing.T) {
	// The paper: 0.03 cycles/ref, 10 MIPS, 100ns bus -> a bus cycle
	// roughly every 1500ns and about 15 effective processors.
	s := PaperSystem(0.03)
	ns := s.NSBetweenBusCycles()
	if ns < 1400 || ns > 1800 {
		t.Errorf("ns between bus cycles = %.0f, paper says ~1500", ns)
	}
	eff := s.EffectiveProcessors()
	if eff < 14 || eff > 18 {
		t.Errorf("effective processors = %.1f, paper says ~15", eff)
	}
}

func TestSystemPerfScaling(t *testing.T) {
	// Halving the coherence cost doubles the effective machine.
	a := PaperSystem(0.04).EffectiveProcessors()
	b := PaperSystem(0.02).EffectiveProcessors()
	if math.Abs(b-2*a) > 1e-9 {
		t.Errorf("effective processors should be inversely proportional: %v vs %v", a, b)
	}
	// A faster bus supports proportionally more processors.
	fast := PaperSystem(0.04)
	fast.BusCycleNS = 50
	if math.Abs(fast.EffectiveProcessors()-2*a) > 1e-9 {
		t.Error("bus speed scaling wrong")
	}
}

func TestSystemPerfDegenerate(t *testing.T) {
	s := PaperSystem(0)
	if s.EffectiveProcessors() != 0 || s.NSBetweenBusCycles() != 0 {
		t.Error("zero coherence cost should report zeros, not infinities")
	}
}

func TestSystemPerfString(t *testing.T) {
	out := PaperSystem(0.03).String()
	for _, want := range []string{"10-MIPS", "100ns", "effective processors"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
}

func TestWordParameterizedModels(t *testing.T) {
	p8 := PipelinedWords(8) // 32-byte blocks
	if p8.MemAccess != 9 || p8.WriteBackFill != 8 {
		t.Errorf("8-word pipelined: %+v", p8)
	}
	n8 := NonPipelinedWords(8)
	if n8.MemAccess != 11 || n8.CacheAccess != 10 {
		t.Errorf("8-word non-pipelined: %+v", n8)
	}
	// The defaults are the 4-word instances.
	if PipelinedWords(4) != Pipelined() || NonPipelinedWords(4) != NonPipelined() {
		t.Error("default models should equal the 4-word instances")
	}
}

func TestEvictWriteBackPriced(t *testing.T) {
	m := Pipelined()
	b, txn := m.Cost(event.Result{Type: event.RdMissMem, EvictWB: true})
	if b[CatWriteBack] != m.WriteBackFill || !txn {
		t.Errorf("eviction write-back not priced: %v", b)
	}
	// On a hit path too (an eviction can accompany an instruction-free
	// refill in other engines).
	b, _ = m.Cost(event.Result{Type: event.RdHit, EvictWB: true})
	if b[CatWriteBack] != m.WriteBackFill {
		t.Errorf("standalone eviction write-back not priced: %v", b)
	}
}
