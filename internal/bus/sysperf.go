package bus

import "fmt"

// SystemPerf is the paper's Section 5 back-of-envelope system model: a
// processor issuing one data reference per instruction consumes bus
// bandwidth in proportion to its MIPS rating, and the shared bus saturates
// when the aggregate demand reaches one bus cycle per bus-cycle time.
type SystemPerf struct {
	// CyclesPerRef is the coherence cost measured by the simulator
	// (bus cycles per memory reference, instruction fetches included in
	// the denominator).
	CyclesPerRef float64
	// ProcessorMIPS is the processor's instruction rate in millions per
	// second. The paper uses 10 MIPS.
	ProcessorMIPS float64
	// BusCycleNS is the bus cycle time in nanoseconds. The paper uses
	// 100ns.
	BusCycleNS float64
	// RefsPerInstr is how many memory references (instruction fetch +
	// data) each instruction generates. The paper's traces average two:
	// one fetch plus one data reference, with instruction traffic
	// assumed to stay off the bus.
	RefsPerInstr float64
}

// PaperSystem returns the configuration of the paper's example: a 10-MIPS
// processor, a 100ns bus, two references per instruction.
func PaperSystem(cyclesPerRef float64) SystemPerf {
	return SystemPerf{
		CyclesPerRef:  cyclesPerRef,
		ProcessorMIPS: 10,
		BusCycleNS:    100,
		RefsPerInstr:  2,
	}
}

// BusCyclesPerSecondPerCPU returns how many bus cycles one processor
// consumes per second.
func (s SystemPerf) BusCyclesPerSecondPerCPU() float64 {
	refsPerSecond := s.ProcessorMIPS * 1e6 * s.RefsPerInstr
	return refsPerSecond * s.CyclesPerRef
}

// NSBetweenBusCycles returns the average time between one processor's bus
// cycles (the paper's "a bus cycle every 1500ns" for 0.03 cycles/ref).
func (s SystemPerf) NSBetweenBusCycles() float64 {
	c := s.BusCyclesPerSecondPerCPU()
	if c == 0 {
		return 0
	}
	return 1e9 / c
}

// EffectiveProcessors returns the number of processors the bus supports
// before saturating — the paper's optimistic upper bound (no contention,
// no instruction misses, infinite caches).
func (s SystemPerf) EffectiveProcessors() float64 {
	demand := s.BusCyclesPerSecondPerCPU() // cycles/s per CPU
	capacity := 1e9 / s.BusCycleNS         // cycles/s on the bus
	if demand == 0 {
		return 0
	}
	return capacity / demand
}

// String renders the estimate the way the paper narrates it.
func (s SystemPerf) String() string {
	return fmt.Sprintf(
		"%.0f-MIPS processor, %.0fns bus, %.4f cycles/ref: a bus cycle every %.0fns, %.1f effective processors",
		s.ProcessorMIPS, s.BusCycleNS, s.CyclesPerRef,
		s.NSBetweenBusCycles(), s.EffectiveProcessors())
}
