package bus

import (
	"fmt"
	"strings"

	"dirsim/internal/event"
)

// Tally accumulates priced bus traffic over a simulation run: the cycles
// per reference metric, its Table 5 breakdown by operation, and the
// transaction counts behind Figure 5 and the Section 5.1 q-model.
type Tally struct {
	// Model is the bus model used for pricing.
	Model Model
	// Cycles is the accumulated breakdown across all references.
	Cycles Breakdown
	// Refs is the number of references priced (including hits,
	// instruction fetches, and other free references).
	Refs int64
	// Transactions is the number of references that used the bus.
	Transactions int64
}

// NewTally returns a tally pricing with the given model.
func NewTally(m Model) *Tally { return &Tally{Model: m} }

// Add prices one result and accumulates it.
func (t *Tally) Add(res event.Result) {
	b, txn := t.Model.Cost(res)
	t.Refs++
	if !txn {
		// A non-transaction's breakdown is all zeros (prices are
		// non-negative), so accumulating it would change nothing.
		return
	}
	t.Cycles = t.Cycles.Add(b)
	t.Transactions++
}

// Merge folds another tally (priced under the same model) into t.
func (t *Tally) Merge(o *Tally) {
	t.Cycles = t.Cycles.Add(o.Cycles)
	t.Refs += o.Refs
	t.Transactions += o.Transactions
}

// PerRef returns the paper's central metric: average bus cycles consumed
// per memory reference.
func (t *Tally) PerRef() float64 {
	if t.Refs == 0 {
		return 0
	}
	return t.Cycles.Total() / float64(t.Refs)
}

// PerRefBreakdown returns the Table 5 row values: cycles per reference in
// each operation category.
func (t *Tally) PerRefBreakdown() Breakdown {
	if t.Refs == 0 {
		return Breakdown{}
	}
	return t.Cycles.Scale(1 / float64(t.Refs))
}

// TransactionsPerRef returns bus transactions per reference — the slope of
// the Section 5.1 fixed-cost model.
func (t *Tally) TransactionsPerRef() float64 {
	if t.Refs == 0 {
		return 0
	}
	return float64(t.Transactions) / float64(t.Refs)
}

// PerTransaction returns average bus cycles per bus transaction, the
// Figure 5 metric.
func (t *Tally) PerTransaction() float64 {
	if t.Transactions == 0 {
		return 0
	}
	return t.Cycles.Total() / float64(t.Transactions)
}

// String renders the tally as a short report.
func (t *Tally) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bus model %s: %.4f cycles/ref over %d refs (%.4f txn/ref, %.2f cycles/txn)\n",
		t.Model.Name, t.PerRef(), t.Refs, t.TransactionsPerRef(), t.PerTransaction())
	br := t.PerRefBreakdown()
	for c := Category(0); c < NumCategories; c++ {
		if br[c] == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-11s %.4f\n", c, br[c])
	}
	return sb.String()
}
