package bus

import (
	"strings"
	"testing"

	"dirsim/internal/event"
)

func TestTable2Costs(t *testing.T) {
	// The per-operation cycle costs of the paper's Table 2.
	p := Pipelined()
	if p.MemAccess != 5 || p.CacheAccess != 5 || p.WriteBackFill != 4 ||
		p.WriteWord != 1 || p.DirCheck != 1 || p.Inval != 1 || p.BroadcastInval != 1 {
		t.Errorf("pipelined costs wrong: %+v", p)
	}
	n := NonPipelined()
	if n.MemAccess != 7 || n.CacheAccess != 6 || n.WriteBackFill != 5 ||
		n.WriteWord != 2 || n.DirCheck != 3 || n.Inval != 1 {
		t.Errorf("non-pipelined costs wrong: %+v", n)
	}
}

func costOf(t *testing.T, m Model, res event.Result) float64 {
	t.Helper()
	b, _ := m.Cost(res)
	return b.Total()
}

func TestCostPerEvent(t *testing.T) {
	p := Pipelined()
	cases := []struct {
		name string
		res  event.Result
		want float64
	}{
		{"instr", event.Result{Type: event.Instr}, 0},
		{"read hit", event.Result{Type: event.RdHit}, 0},
		{"first ref excluded", event.Result{Type: event.RdMissFirst}, 0},
		{"first write excluded", event.Result{Type: event.WrMissFirst, Broadcast: true}, 0},
		{"plain fill", event.Result{Type: event.RdMissMem}, 5},
		{"clean fill", event.Result{Type: event.RdMissClean}, 5},
		{"clean fill + steal (Dir1NB)", event.Result{Type: event.RdMissClean, Inval: 1}, 6},
		{"dirty fill via wb", event.Result{Type: event.RdMissDirty, WriteBack: true, CacheSupply: true}, 4},
		{"dirty fill via wb + flush req", event.Result{Type: event.RdMissDirty, WriteBack: true, CacheSupply: true, Broadcast: true}, 5},
		{"dirty fill cache supply (Dragon)", event.Result{Type: event.RdMissDirty, CacheSupply: true}, 5},
		{"write hit clean Dir0B", event.Result{Type: event.WrHitClean, DirCheck: true, Broadcast: true}, 2},
		{"write hit clean sole holder", event.Result{Type: event.WrHitClean, DirCheck: true}, 1},
		{"write hit 3 directed invals", event.Result{Type: event.WrHitClean, DirCheck: true, Inval: 3}, 4},
		{"dragon update", event.Result{Type: event.WrHitShared, Update: true, Broadcast: true}, 1},
		{"wti write through", event.Result{Type: event.WrHitOwn, Update: true}, 1},
		{"wti write miss", event.Result{Type: event.WrMissDirty, Update: true, Broadcast: true}, 6},
		{"forced inval", event.Result{Type: event.RdMissClean, ForcedInval: 1}, 6},
	}
	for _, c := range cases {
		if got := costOf(t, p, c.res); got != c.want {
			t.Errorf("%s: cost %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCostNonPipelined(t *testing.T) {
	n := NonPipelined()
	cases := []struct {
		name string
		res  event.Result
		want float64
	}{
		{"plain fill", event.Result{Type: event.RdMissMem}, 7},
		{"dirty fill via wb + flush", event.Result{Type: event.RdMissDirty, WriteBack: true, CacheSupply: true, Inval: 1}, 6},
		{"cache supply", event.Result{Type: event.RdMissDirty, CacheSupply: true}, 6},
		{"dir check", event.Result{Type: event.WrHitClean, DirCheck: true}, 3},
		{"write through", event.Result{Type: event.WrHitOwn, Update: true}, 2},
	}
	for _, c := range cases {
		if got := costOf(t, n, c.res); got != c.want {
			t.Errorf("%s: cost %v, want %v", c.name, got, c.want)
		}
	}
}

func TestUpdateNotDoubleChargedForBroadcast(t *testing.T) {
	p := Pipelined()
	res := event.Result{Type: event.WrHitShared, Update: true, Broadcast: true}
	b, _ := p.Cost(res)
	if b[CatInval] != 0 {
		t.Error("update protocols must not pay invalidation cycles for their broadcast")
	}
	if b[CatWriteWord] != 1 {
		t.Errorf("update should cost one word: %v", b)
	}
}

func TestBroadcastCostParameter(t *testing.T) {
	m := Pipelined().WithBroadcastCost(8)
	res := event.Result{Type: event.WrHitClean, DirCheck: true, Broadcast: true}
	if got := costOf(t, m, res); got != 9 {
		t.Errorf("broadcast-8 cost = %v, want 9", got)
	}
}

func TestBerkeleyModel(t *testing.T) {
	m := Pipelined().Berkeley()
	res := event.Result{Type: event.WrHitClean, DirCheck: true, Broadcast: true}
	if got := costOf(t, m, res); got != 1 {
		t.Errorf("Berkeley dir check should be free: %v", got)
	}
}

func TestQAppliesPerTransaction(t *testing.T) {
	m := Pipelined().WithQ(2)
	// A bus-using reference pays Q once.
	b, txn := m.Cost(event.Result{Type: event.RdMissMem})
	if !txn || b[CatQ] != 2 || b.Total() != 7 {
		t.Errorf("Q accounting wrong: %v txn=%v", b, txn)
	}
	// A free reference pays nothing.
	b, txn = m.Cost(event.Result{Type: event.RdHit})
	if txn || b.Total() != 0 {
		t.Errorf("hit should not pay Q: %v txn=%v", b, txn)
	}
}

func TestTransactionFlag(t *testing.T) {
	m := Pipelined()
	if _, txn := m.Cost(event.Result{Type: event.RdMissMem}); !txn {
		t.Error("miss should be a transaction")
	}
	if _, txn := m.Cost(event.Result{Type: event.RdHit}); txn {
		t.Error("hit should not be a transaction")
	}
	if _, txn := m.Cost(event.Result{Type: event.RdMissFirst}); txn {
		t.Error("excluded first-ref miss should not count as a transaction")
	}
	if _, txn := m.Cost(event.Result{Type: event.WrHitShared, Update: true}); !txn {
		t.Error("an update is a transaction")
	}
}

func TestBreakdownOps(t *testing.T) {
	a := Breakdown{1, 2, 0, 0, 0, 0}
	b := Breakdown{0, 1, 3, 0, 0, 0}
	sum := a.Add(b)
	if sum.Total() != 7 || sum[CatWriteBack] != 3 {
		t.Errorf("Add wrong: %v", sum)
	}
	if s := a.Scale(2); s.Total() != 6 {
		t.Errorf("Scale wrong: %v", s)
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		CatInval:     "inval",
		CatWriteBack: "wb",
		CatMemAccess: "mem access",
		CatDirAccess: "dir access",
		CatWriteWord: "wt or wup",
		CatQ:         "fixed (q)",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if got := Category(99).String(); !strings.Contains(got, "99") {
		t.Errorf("out of range: %q", got)
	}
}

// TestPaperArithmetic feeds the paper's published Table 4 event
// frequencies through the cost model and checks that the paper's Table 5
// cumulative numbers come out — validating the cost model independently
// of the trace substitution.
func TestPaperArithmetic(t *testing.T) {
	type mix []struct {
		res  event.Result
		freq float64 // percent of references
	}
	const refs = 1_000_000
	run := func(m mix) float64 {
		tally := NewTally(Pipelined())
		for _, entry := range m {
			n := int(entry.freq / 100 * refs)
			for i := 0; i < n; i++ {
				tally.Add(entry.res)
			}
		}
		for tally.Refs < refs {
			tally.Add(event.Result{Type: event.RdHit})
		}
		return tally.PerRef()
	}

	dragon := run(mix{
		{event.Result{Type: event.RdMissClean}, 0.14},
		{event.Result{Type: event.RdMissDirty, CacheSupply: true}, 0.17},
		{event.Result{Type: event.WrHitShared, Update: true, Broadcast: true}, 1.74},
		{event.Result{Type: event.WrMissClean, Update: true}, 0.01},
		{event.Result{Type: event.WrMissDirty, CacheSupply: true, Update: true}, 0.01},
	})
	if dragon < 0.030 || dragon > 0.037 {
		t.Errorf("Dragon from paper frequencies = %.4f, paper 0.0336", dragon)
	}

	dir1nb := run(mix{
		{event.Result{Type: event.RdMissClean, Inval: 1}, 4.78},
		{event.Result{Type: event.RdMissDirty, Inval: 1, WriteBack: true, CacheSupply: true}, 0.40},
		{event.Result{Type: event.WrMissClean, Inval: 1}, 0.08},
		{event.Result{Type: event.WrMissDirty, Inval: 1, WriteBack: true, CacheSupply: true}, 0.09},
	})
	if dir1nb < 0.29 || dir1nb > 0.34 {
		t.Errorf("Dir1NB from paper frequencies = %.4f, paper 0.3210", dir1nb)
	}

	dir0b := run(mix{
		{event.Result{Type: event.RdMissClean}, 0.23},
		{event.Result{Type: event.RdMissDirty, WriteBack: true, CacheSupply: true, Broadcast: true}, 0.40},
		{event.Result{Type: event.WrHitClean, DirCheck: true, Broadcast: true}, 0.41},
		{event.Result{Type: event.WrMissClean, Broadcast: true}, 0.02},
		{event.Result{Type: event.WrMissDirty, WriteBack: true, CacheSupply: true, Broadcast: true}, 0.09},
	})
	if dir0b < 0.040 || dir0b > 0.055 {
		t.Errorf("Dir0B from paper frequencies = %.4f, paper 0.0491", dir0b)
	}
}
