package bus

import (
	"math"
	"strings"
	"testing"

	"dirsim/internal/event"
)

func TestTallyAccumulates(t *testing.T) {
	tl := NewTally(Pipelined())
	tl.Add(event.Result{Type: event.RdHit})
	tl.Add(event.Result{Type: event.RdMissMem}) // 5 cycles, 1 txn
	tl.Add(event.Result{Type: event.WrHitShared, Update: true})
	if tl.Refs != 3 || tl.Transactions != 2 {
		t.Fatalf("refs=%d txns=%d", tl.Refs, tl.Transactions)
	}
	if got := tl.PerRef(); math.Abs(got-2) > 1e-9 {
		t.Errorf("PerRef = %v, want 2", got)
	}
	if got := tl.PerTransaction(); math.Abs(got-3) > 1e-9 {
		t.Errorf("PerTransaction = %v, want 3", got)
	}
	if got := tl.TransactionsPerRef(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("TransactionsPerRef = %v", got)
	}
}

func TestTallyEmpty(t *testing.T) {
	tl := NewTally(Pipelined())
	if tl.PerRef() != 0 || tl.PerTransaction() != 0 || tl.TransactionsPerRef() != 0 {
		t.Error("empty tally should report zeros")
	}
}

func TestTallyMerge(t *testing.T) {
	a := NewTally(Pipelined())
	b := NewTally(Pipelined())
	a.Add(event.Result{Type: event.RdMissMem})
	b.Add(event.Result{Type: event.RdMissMem})
	b.Add(event.Result{Type: event.RdHit})
	a.Merge(b)
	if a.Refs != 3 || a.Transactions != 2 || a.Cycles.Total() != 10 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestTallyBreakdownPerRef(t *testing.T) {
	tl := NewTally(Pipelined())
	tl.Add(event.Result{Type: event.RdMissMem}) // mem 5
	tl.Add(event.Result{Type: event.RdHit})
	br := tl.PerRefBreakdown()
	if br[CatMemAccess] != 2.5 {
		t.Errorf("breakdown = %v", br)
	}
	var empty Tally
	if empty.PerRefBreakdown() != (Breakdown{}) {
		t.Error("empty breakdown should be zero")
	}
}

func TestTallyString(t *testing.T) {
	tl := NewTally(Pipelined())
	tl.Add(event.Result{Type: event.RdMissMem})
	out := tl.String()
	for _, want := range []string{"pipelined", "cycles/ref", "mem access"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}
