// Package bus implements the communication cost models of the paper's
// Section 4.3: the fundamental bus operation timings of Table 1, the
// pipelined and non-pipelined per-operation costs of Table 2, and the
// machinery that weights protocol event frequencies by those costs to
// produce the paper's central metric, bus cycles per memory reference.
//
// The cost computation is deliberately separated from the protocol engines
// (internal/core): engines fix event frequencies, this package fixes what
// each event costs, so — as in the paper — one simulation run per protocol
// suffices and hardware models can be varied afterwards.
package bus

import (
	"fmt"

	"dirsim/internal/event"
)

// Table 1: timings for fundamental bus operations, in bus cycles.
const (
	CyclesSendAddress   = 1 // place an address on the bus
	CyclesTransferWord  = 1 // move one 32-bit word
	CyclesInvalidate    = 1 // deliver one invalidation
	CyclesWaitDirectory = 2 // directory array access latency
	CyclesWaitMemory    = 2 // memory array access latency
	CyclesWaitCache     = 1 // remote cache array access latency
	WordsPerBlock       = 4 // 16-byte blocks, 32-bit words
)

// Model is a bus cost model: the cycle price of each composite operation a
// coherence protocol performs. The two instances used by the paper are
// Pipelined and NonPipelined; custom models can be built directly.
type Model struct {
	// Name identifies the model in reports ("pipelined" etc.).
	Name string
	// MemAccess is a block fetch from main memory.
	MemAccess float64
	// CacheAccess is a block supplied cache-to-cache.
	CacheAccess float64
	// WriteBackFill is a dirty block flushed to memory with the
	// requesting cache snarfing the data off the bus; the cost of
	// getting the data to the requester is entirely inside this figure.
	WriteBackFill float64
	// WriteWord is a one-word write-through or Dragon write update.
	WriteWord float64
	// DirCheck is a directory query that cannot be overlapped with a
	// memory access (e.g. on a write hit to a clean block).
	DirCheck float64
	// Inval is one directed invalidation message.
	Inval float64
	// BroadcastInval is a broadcast invalidation. The paper's
	// simplifying assumption prices it like a single invalidate; the
	// Dir1B study of Section 6 varies it (the parameter b).
	BroadcastInval float64
	// Q is a fixed overhead added to every bus transaction — the
	// Section 5.1 constant for arbitration, cache lookup, and bus
	// controller propagation. Zero in the headline tables.
	Q float64
	// DirCheckFree zeroes the DirCheck charge; it converts the Dir0B
	// tariff into the paper's Berkeley-Ownership estimate, where the
	// cache's own state supplies the would-be directory answer.
	DirCheckFree bool
}

// Pipelined returns the sophisticated bus of the paper: separate address
// and data paths, bus released during array access.
//
//	memory or remote-cache access: 5 = 1 addr + 4 words
//	write-back:                    4 (addr+word0 together, then 3 words)
//	write-through / update:        1
//	directory check:               1 (send address)
//	invalidate:                    1
func Pipelined() Model { return PipelinedWords(WordsPerBlock) }

// PipelinedWords is Pipelined for a non-standard block size of words
// 32-bit words (the block-size sensitivity study).
func PipelinedWords(words int) Model {
	return Model{
		Name:           "pipelined",
		MemAccess:      CyclesSendAddress + float64(words)*CyclesTransferWord,
		CacheAccess:    CyclesSendAddress + float64(words)*CyclesTransferWord,
		WriteBackFill:  float64(words) * CyclesTransferWord,
		WriteWord:      CyclesTransferWord,
		DirCheck:       CyclesSendAddress,
		Inval:          CyclesInvalidate,
		BroadcastInval: CyclesInvalidate,
	}
}

// NonPipelined returns the simple bus: multiplexed address/data lines, bus
// held for the duration of the access.
//
//	memory access:          7 = 1 addr + 2 memory wait + 4 words
//	remote-cache access:    6 = 1 addr + 1 cache wait + 4 words
//	write-back:             4 (memory wait counted under memory access;
//	                           the bus is released during the array write)
//	write-through / update: 2 = 1 addr + 1 word
//	directory check:        3 = 1 addr + 2 directory wait
//	invalidate:             1
func NonPipelined() Model { return NonPipelinedWords(WordsPerBlock) }

// NonPipelinedWords is NonPipelined for a non-standard block size.
func NonPipelinedWords(words int) Model {
	return Model{
		Name:           "non-pipelined",
		MemAccess:      CyclesSendAddress + CyclesWaitMemory + float64(words)*CyclesTransferWord,
		CacheAccess:    CyclesSendAddress + CyclesWaitCache + float64(words)*CyclesTransferWord,
		WriteBackFill:  CyclesWaitCache + float64(words)*CyclesTransferWord,
		WriteWord:      CyclesSendAddress + CyclesTransferWord,
		DirCheck:       CyclesSendAddress + CyclesWaitDirectory,
		Inval:          CyclesInvalidate,
		BroadcastInval: CyclesInvalidate,
	}
}

// WithQ returns a copy of the model with a per-transaction fixed cost.
func (m Model) WithQ(q float64) Model { m.Q = q; return m }

// WithBroadcastCost returns a copy with broadcast invalidations priced at b
// cycles (the Dir1B study's parameter).
func (m Model) WithBroadcastCost(b float64) Model { m.BroadcastInval = b; return m }

// Berkeley returns a copy with directory checks priced at zero, the
// paper's derivation of the Berkeley Ownership protocol from the Dir0B
// event frequencies.
func (m Model) Berkeley() Model { m.DirCheckFree = true; return m }

// Category labels the operation classes of Table 5's breakdown.
type Category uint8

const (
	// CatInval is invalidation traffic (directed or broadcast).
	CatInval Category = iota
	// CatWriteBack is dirty-block flush traffic.
	CatWriteBack
	// CatMemAccess is block-fill traffic from memory or a remote cache.
	CatMemAccess
	// CatDirAccess is non-overlapped directory query traffic.
	CatDirAccess
	// CatWriteWord is write-through ("wt") or write-update ("wup")
	// traffic.
	CatWriteWord
	// CatQ is the per-transaction fixed overhead of Section 5.1.
	CatQ

	// NumCategories is the number of breakdown categories.
	NumCategories
)

var categoryNames = [NumCategories]string{
	CatInval:     "inval",
	CatWriteBack: "wb",
	CatMemAccess: "mem access",
	CatDirAccess: "dir access",
	CatWriteWord: "wt or wup",
	CatQ:         "fixed (q)",
}

// String returns the Table 5 row label for the category.
func (c Category) String() string {
	if c < NumCategories {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Breakdown is bus cycles accumulated per operation category.
type Breakdown [NumCategories]float64

// Total returns the summed cycles across categories.
func (b Breakdown) Total() float64 {
	var t float64
	for _, v := range b {
		t += v
	}
	return t
}

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	for i, v := range o {
		b[i] += v
	}
	return b
}

// Scale returns the breakdown multiplied by f.
func (b Breakdown) Scale(f float64) Breakdown {
	for i := range b {
		b[i] *= f
	}
	return b
}

// Cost prices one protocol result under the model. It returns the cycles
// by category and whether the reference used the bus at all (a
// "transaction" in the Figure 5 / Section 5.1 sense). First-reference
// misses are excluded from the multiprocessing overhead, as in the paper,
// and cost nothing.
func (m Model) Cost(res event.Result) (b Breakdown, transaction bool) {
	if res.Type.IsFirstRef() || res.Quiet() {
		// Free references — hits, instruction fetches, excluded
		// first-reference misses — skip the category arithmetic
		// entirely. Prices are non-negative, so a quiet result could
		// only ever have produced an all-zero breakdown; returning it
		// without the additions below is bit-identical.
		return b, false
	}
	// Invalidation delivery. Update protocols (Dragon, WTI) pay for the
	// broadcast through the written word itself, so a Broadcast flag
	// accompanied by Update is not double-charged.
	if !res.Update {
		if res.Broadcast {
			b[CatInval] += m.BroadcastInval
		}
		b[CatInval] += float64(res.Inval) * m.Inval
	}
	b[CatInval] += float64(res.ForcedInval) * m.Inval
	b[CatInval] += float64(res.Control) * m.Inval
	// Block fill on a miss.
	if res.Type.IsMiss() {
		switch {
		case res.WriteBack:
			b[CatWriteBack] += m.WriteBackFill
		case res.CacheSupply:
			b[CatMemAccess] += m.CacheAccess
		default:
			b[CatMemAccess] += m.MemAccess
		}
	} else if res.WriteBack {
		b[CatWriteBack] += m.WriteBackFill
	}
	// A replacement write-back rides alongside whatever else happened.
	if res.EvictWB {
		b[CatWriteBack] += m.WriteBackFill
	}
	// Non-overlapped directory query.
	if res.DirCheck && !m.DirCheckFree {
		b[CatDirAccess] += m.DirCheck
	}
	// Write-through or write update.
	if res.Update {
		b[CatWriteWord] += m.WriteWord
	}
	if b.Total() == 0 {
		return b, false
	}
	b[CatQ] += m.Q
	return b, true
}
