package verify

import (
	"strings"
	"testing"

	"dirsim/internal/core"
	"dirsim/internal/directory"
	"dirsim/internal/event"
	"dirsim/internal/trace"
)

func TestOpAndScheduleString(t *testing.T) {
	s := Schedule{{CPU: 0, Block: 1}, {CPU: 1, Block: 0, Write: true}}
	if got := s.String(); got != "R0@1 W1@0" {
		t.Errorf("String() = %q", got)
	}
}

func TestExploreBoundsValidation(t *testing.T) {
	factory := func() core.Protocol { return core.NewDir0B(2) }
	for _, cfg := range []Config{{0, 1, 1, false}, {1, 0, 1, false}, {1, 1, 0, false}} {
		if _, err := Explore(factory, cfg); err == nil {
			t.Errorf("bounds %+v accepted", cfg)
		}
	}
}

func TestExploreCountsSchedules(t *testing.T) {
	factory := func() core.Protocol { return core.NewDir0B(2) }
	cfg := Config{CPUs: 2, Blocks: 1, Depth: 3}
	res, err := Explore(factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Alphabet = 2 cpus x 1 block x {R,W} = 4; 4^3 = 64 schedules.
	if res.Schedules != 64 {
		t.Errorf("schedules = %d, want 64", res.Schedules)
	}
	if res.Ops != 64*3 {
		t.Errorf("ops = %d, want 192", res.Ops)
	}
}

// TestExploreAllProtocolsExhaustively is the headline check: every bundled
// protocol is value-coherent and invariant-clean on EVERY interleaving of
// 2 CPUs x 2 blocks x depth 5 (20^... 8 ops alphabet -> 8^5 = 32768
// schedules per scheme).
func TestExploreAllProtocolsExhaustively(t *testing.T) {
	cfg := Config{CPUs: 2, Blocks: 2, Depth: 5, CheckEvery: true}
	extra := map[string]func() core.Protocol{
		"DirCV": func() core.Protocol { return directory.NewCoarseVector(2) },
		"Dir2NB-limited": func() core.Protocol {
			return core.NewDiriNB(2, 1) // one pointer: aggressive forced eviction
		},
	}
	results, err := ExploreAllSchemes(2, cfg, extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 10 {
		t.Fatalf("only %d schemes explored: %v", len(results), results)
	}
	for name, r := range results {
		if r.Schedules != 32768 {
			t.Errorf("%s: %d schedules, want 32768", name, r.Schedules)
		}
	}
}

// TestExploreThreeCPUs widens the alphabet at reduced depth: 3 CPUs over
// 1 block exercise every ownership-transfer interleaving.
func TestExploreThreeCPUs(t *testing.T) {
	cfg := Config{CPUs: 3, Blocks: 1, Depth: 5}
	for _, name := range []string{"Dir0B", "DirNNB", "Dragon", "MESI", "Berkeley", "Firefly", "WTI", "Dir1NB"} {
		name := name
		factory := func() core.Protocol {
			p, err := core.NewByName(name, 3)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		if _, err := Explore(factory, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// brokenProtocol deliberately violates coherence: writes do not
// invalidate other copies. The explorer must find a failing schedule and
// report it.
type brokenProtocol struct {
	core.Protocol
	checker *core.Checker
	holders map[trace.Block]map[uint8]bool
}

func newBroken() core.Protocol {
	return &brokenProtocol{holders: map[trace.Block]map[uint8]bool{}}
}

func (b *brokenProtocol) Name() string               { return "Broken" }
func (b *brokenProtocol) CPUs() int                  { return 4 }
func (b *brokenProtocol) SetChecker(c *core.Checker) { b.checker = c }
func (b *brokenProtocol) CheckInvariants() error     { return b.checker.Err() }

func (b *brokenProtocol) Access(r trace.Ref) event.Result {
	blk := r.Block()
	m := b.holders[blk]
	if m == nil {
		m = map[uint8]bool{}
		b.holders[blk] = m
	}
	if !m[r.CPU] {
		b.checker.FillFromMemory(r.CPU, blk)
		m[r.CPU] = true
	} else if r.Kind == trace.Read {
		b.checker.ReadHit(r.CPU, blk)
	}
	if r.Kind == trace.Write {
		// BUG: other holders keep their now-stale copies and no
		// write-back happens.
		b.checker.Write(r.CPU, blk)
	}
	return event.Result{}
}

func TestExploreFindsInjectedBug(t *testing.T) {
	res, err := Explore(newBroken, Config{CPUs: 2, Blocks: 1, Depth: 4})
	if err == nil {
		t.Fatal("explorer missed a deliberately broken protocol")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("error is %T, want *Violation", err)
	}
	if len(v.Schedule) == 0 || len(v.Schedule) > 4 {
		t.Errorf("violation schedule length %d", len(v.Schedule))
	}
	if !strings.Contains(v.Error(), "schedule") {
		t.Errorf("Violation.Error() = %q", v.Error())
	}
	// The bug needs at most: R1, W0, R1 (stale read) — found well within
	// the explored count.
	if res.Schedules == 0 && res.Ops == 0 {
		t.Error("no work recorded before the violation")
	}
}

func TestExploreAllSchemesPropagatesViolation(t *testing.T) {
	extra := map[string]func() core.Protocol{"Broken": newBroken}
	_, err := ExploreAllSchemes(2, Config{CPUs: 2, Blocks: 1, Depth: 4}, extra)
	if err == nil || !strings.Contains(err.Error(), "Broken") {
		t.Errorf("violation not attributed to the broken scheme: %v", err)
	}
}
