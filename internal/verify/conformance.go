package verify

import (
	"fmt"

	"dirsim/internal/core"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// Battery runs the standard correctness battery against a protocol
// implementation, the suite a new engine must pass before the simulator
// will trust it:
//
//  1. bounded-exhaustive model checking (every interleaving of 2 CPUs
//     over 2 blocks to depth 5, invariants checked after every step);
//  2. the microkernels with exactly known sharing (ping-pong, migratory,
//     producer/consumer, read-shared, spin contention), value-checked;
//  3. a full synthetic application trace (POPS at 4 CPUs), value-checked
//     with periodic invariant validation.
//
// factory must build a fresh engine for any requested CPU count. Battery
// returns nil when everything passes, or the first failure with enough
// context to reproduce it.
func Battery(factory func(ncpu int) core.Protocol) error {
	// Stage 1: exhaustive bounded exploration.
	_, err := Explore(func() core.Protocol { return factory(2) },
		Config{CPUs: 2, Blocks: 2, Depth: 5, CheckEvery: true})
	if err != nil {
		return fmt.Errorf("model check: %w", err)
	}
	// Stage 2: microkernels with exactly known sharing.
	kernels := []struct {
		name string
		tr   *trace.Trace
	}{
		{"pingpong", workload.PingPong(4000)},
		{"migratory", workload.Migratory(4, 4, 300)},
		{"prodcons", workload.ProducerConsumer(4, 8, 60)},
		{"readshared", workload.ReadShared(4, 32, 30)},
		{"spincontend", workload.SpinContention(4, 150, 6)},
	}
	for _, k := range kernels {
		name, tr := k.name, k.tr
		p := factory(tr.CPUs)
		if _, err := sim.Simulate(p, tr.Iterator(), sim.Options{Check: true, InvariantEvery: 512}); err != nil {
			return fmt.Errorf("kernel %s: %w", name, err)
		}
	}
	// Stage 3: a full application trace.
	app := workload.POPS(4, 120_000)
	p := factory(app.CPUs)
	if _, err := sim.Simulate(p, app.Iterator(), sim.Options{Check: true, InvariantEvery: 4096}); err != nil {
		return fmt.Errorf("application trace: %w", err)
	}
	return nil
}
