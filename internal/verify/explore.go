// Package verify exhaustively model-checks coherence protocols: it
// enumerates every interleaving of reads and writes by a small number of
// CPUs over a small number of blocks, up to a bounded depth, and runs each
// one through a fresh engine with the value-coherence checker and the
// engine's own invariant validation attached. Where the randomized tests
// in internal/core sample the state space, Explore covers it completely
// for the bounded configuration — the style of exhaustive reachability
// checking (à la Murphi) used to validate real coherence protocols.
package verify

import (
	"fmt"
	"strings"

	"dirsim/internal/core"
	"dirsim/internal/trace"
)

// Op is one step of a schedule: a read or write by one CPU to one block.
type Op struct {
	CPU   uint8
	Write bool
	Block int
}

// String renders the op compactly ("R0@1" = CPU 0 reads block 1).
func (o Op) String() string {
	k := "R"
	if o.Write {
		k = "W"
	}
	return fmt.Sprintf("%s%d@%d", k, o.CPU, o.Block)
}

// Schedule is an operation sequence.
type Schedule []Op

// String renders the schedule as a space-separated op list.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, o := range s {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

// ref converts an op to a trace reference.
func (o Op) ref() trace.Ref {
	kind := trace.Read
	if o.Write {
		kind = trace.Write
	}
	return trace.Ref{
		Addr: uint64(o.Block) * trace.BlockBytes,
		CPU:  o.CPU,
		Proc: uint16(o.CPU),
		Kind: kind,
	}
}

// Config bounds the exploration.
type Config struct {
	// CPUs and Blocks bound the alphabet; Depth bounds schedule length.
	// The number of schedules explored is (CPUs·Blocks·2)^Depth, so keep
	// the product modest (2 CPUs, 2 blocks, depth 6 ≈ 260k schedules).
	CPUs, Blocks, Depth int
	// CheckEvery replays invariant validation after every op when true;
	// otherwise only at the end of each schedule (faster, still exact
	// for value coherence because the checker is always live).
	CheckEvery bool
}

// Result summarizes one exploration.
type Result struct {
	// Schedules is the number of complete schedules executed.
	Schedules int64
	// Ops is the total operations applied.
	Ops int64
}

// Violation reports the shortest failing schedule found.
type Violation struct {
	Schedule Schedule
	Err      error
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("verify: schedule [%s]: %v", v.Schedule, v.Err)
}

// Explore runs every schedule of exactly cfg.Depth operations through
// fresh engines built by factory. It returns on the first violation
// (as a *Violation) so the failing schedule can be replayed; schedules
// are enumerated in length-lexicographic order, so the reported schedule
// is minimal among equal-length ones.
//
// Because engines are deterministic, prefix work is shared: the explorer
// walks the schedule tree depth-first, replaying from the root only when
// it backtracks (engines cannot be snapshotted, so a replay costs at most
// Depth operations — cheap at these depths).
func Explore(factory func() core.Protocol, cfg Config) (Result, error) {
	if cfg.CPUs < 1 || cfg.Blocks < 1 || cfg.Depth < 1 {
		return Result{}, fmt.Errorf("verify: non-positive exploration bounds %+v", cfg)
	}
	alphabet := make([]Op, 0, cfg.CPUs*cfg.Blocks*2)
	for c := 0; c < cfg.CPUs; c++ {
		for b := 0; b < cfg.Blocks; b++ {
			alphabet = append(alphabet,
				Op{CPU: uint8(c), Block: b, Write: false},
				Op{CPU: uint8(c), Block: b, Write: true})
		}
	}
	var res Result
	sched := make(Schedule, cfg.Depth)
	var walk func(pos int) error
	walk = func(pos int) error {
		if pos == cfg.Depth {
			res.Schedules++
			return runSchedule(factory, sched, cfg.CheckEvery, &res)
		}
		for _, op := range alphabet {
			sched[pos] = op
			if err := walk(pos + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0); err != nil {
		return res, err
	}
	return res, nil
}

// runSchedule executes one schedule on a fresh engine.
func runSchedule(factory func() core.Protocol, sched Schedule, checkEvery bool, res *Result) error {
	p := factory()
	checker := core.NewChecker()
	if !core.Attach(p, checker) {
		return fmt.Errorf("verify: %s does not support coherence checking", p.Name())
	}
	for i, op := range sched {
		p.Access(op.ref())
		res.Ops++
		if checkEvery {
			if err := p.CheckInvariants(); err != nil {
				return &Violation{Schedule: append(Schedule(nil), sched[:i+1]...), Err: err}
			}
		} else if err := checker.Err(); err != nil {
			return &Violation{Schedule: append(Schedule(nil), sched[:i+1]...), Err: err}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		return &Violation{Schedule: append(Schedule(nil), sched...), Err: err}
	}
	return nil
}

// ExploreAllSchemes checks every registry scheme (plus any extra
// factories) under the same bounds, returning the per-scheme schedule
// counts. It stops at the first violation.
func ExploreAllSchemes(ncpu int, cfg Config, extra map[string]func() core.Protocol) (map[string]Result, error) {
	out := make(map[string]Result)
	for _, name := range core.Schemes() {
		name := name
		factory := func() core.Protocol {
			p, err := core.NewByName(name, ncpu)
			if err != nil {
				panic(err)
			}
			return p
		}
		r, err := Explore(factory, cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = r
	}
	for name, factory := range extra {
		r, err := Explore(factory, cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", name, err)
		}
		out[name] = r
	}
	return out, nil
}
