package verify

import (
	"strings"
	"testing"

	"dirsim/internal/core"
	"dirsim/internal/directory"
)

// TestAllBundledSchemesPassBattery runs the full conformance battery —
// model check, kernels, application trace — against every registered
// scheme plus the coarse-vector directory.
func TestAllBundledSchemesPassBattery(t *testing.T) {
	if testing.Short() {
		t.Skip("battery is heavy")
	}
	names := core.Schemes()
	names = append(names, "Dir2B", "Dir2NB", "Dir4NB")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			err := Battery(func(ncpu int) core.Protocol {
				p, err := core.NewByName(name, ncpu)
				if err != nil {
					t.Fatal(err)
				}
				return p
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("DirCV", func(t *testing.T) {
		t.Parallel()
		err := Battery(func(ncpu int) core.Protocol {
			return directory.NewCoarseVector(ncpu)
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestBatteryRejectsBrokenProtocol confirms the battery fails fast on a
// protocol that skips invalidation, and names the failing stage.
func TestBatteryRejectsBrokenProtocol(t *testing.T) {
	err := Battery(func(ncpu int) core.Protocol { return newBroken() })
	if err == nil {
		t.Fatal("broken protocol passed the battery")
	}
	if !strings.Contains(err.Error(), "model check") {
		t.Errorf("failure not attributed to a stage: %v", err)
	}
}
