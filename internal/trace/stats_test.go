package trace

import (
	"strings"
	"testing"
)

func statsInput() *Trace {
	// Two processes share block 0x100; proc 0 also has a private block.
	return mkTrace(2,
		Ref{Addr: 0x1000, CPU: 0, Proc: 0, Kind: Instr},
		Ref{Addr: 0x1000, CPU: 0, Proc: 0, Kind: Read},                                   // block 0x100, proc 0
		Ref{Addr: 0x1004, CPU: 1, Proc: 1, Kind: Read, Flags: FlagSpin},                  // block 0x100, proc 1 -> shared
		Ref{Addr: 0x2000, CPU: 0, Proc: 0, Kind: Write, Flags: FlagSystem},               // private block
		Ref{Addr: 0x1008, CPU: 1, Proc: 1, Kind: Write, Flags: FlagRelease | FlagShared}, // shared again
	)
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(statsInput())
	if s.Refs != 5 || s.Instr != 1 || s.Reads != 2 || s.Writes != 2 {
		t.Fatalf("mix wrong: %+v", s)
	}
	if s.SpinReads != 1 {
		t.Errorf("SpinReads = %d, want 1", s.SpinReads)
	}
	if s.LockWrites != 1 {
		t.Errorf("LockWrites = %d, want 1", s.LockWrites)
	}
	if s.System != 1 || s.User != 4 {
		t.Errorf("user/sys split wrong: %d/%d", s.User, s.System)
	}
	if s.DataBlocks != 2 || s.SharedBlk != 1 {
		t.Errorf("blocks: data=%d shared=%d, want 2/1", s.DataBlocks, s.SharedBlk)
	}
	// Three of the four data refs touch the shared block.
	if s.SharedRefs != 3 {
		t.Errorf("SharedRefs = %d, want 3", s.SharedRefs)
	}
	if s.InstrBlocks != 1 {
		t.Errorf("InstrBlocks = %d, want 1", s.InstrBlocks)
	}
}

func TestStatsPct(t *testing.T) {
	s := ComputeStats(statsInput())
	if got := s.Pct(s.Instr); got != 20 {
		t.Errorf("Pct = %v, want 20", got)
	}
	var empty Stats
	if empty.Pct(5) != 0 {
		t.Error("Pct on empty stats should be 0")
	}
}

func TestProcsPerSharedBlock(t *testing.T) {
	s := ComputeStats(statsInput())
	// One block touched by 1 process, one by 2.
	if s.ProcsPerSharedBlock[1] != 1 || s.ProcsPerSharedBlock[2] != 1 {
		t.Errorf("ProcsPerSharedBlock = %v", s.ProcsPerSharedBlock)
	}
}

func TestTopSharers(t *testing.T) {
	s := ComputeStats(statsInput())
	top := s.TopSharers(10)
	if len(top) != 1 || top[0][0] != 2 || top[0][1] != 1 {
		t.Errorf("TopSharers = %v", top)
	}
	if got := s.TopSharers(0); len(got) != 0 {
		t.Errorf("TopSharers(0) = %v", got)
	}
}

func TestStatsString(t *testing.T) {
	out := ComputeStats(statsInput()).String()
	for _, want := range []string{"refs", "spin reads", "data blocks", "test"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
}
