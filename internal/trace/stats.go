package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a trace in the style of the paper's Table 3, extended
// with the sharing measures the rest of the evaluation depends on.
type Stats struct {
	Name string
	CPUs int

	Refs   int // total references
	Instr  int // instruction fetches
	Reads  int // data reads
	Writes int // data writes
	User   int // user-mode references
	System int // system (OS) references

	SpinReads   int // data reads flagged as lock-test spins
	LockWrites  int // acquire/release writes
	SharedRefs  int // data references to blocks touched by >1 process
	DataBlocks  int // distinct data blocks referenced
	SharedBlk   int // data blocks touched by >1 process
	InstrBlocks int // distinct instruction blocks referenced

	// ProcsPerSharedBlock is the distribution of how many distinct
	// processes touch each shared data block (index = process count).
	ProcsPerSharedBlock []int
}

// ComputeStats scans the trace once and returns its summary.
func ComputeStats(t *Trace) Stats {
	s := Stats{Name: t.Name, CPUs: t.CPUs}
	type blockInfo struct {
		procs map[uint16]struct{}
	}
	data := make(map[Block]*blockInfo)
	instr := make(map[Block]struct{})
	for _, r := range t.Refs {
		s.Refs++
		if r.Flags.Has(FlagSystem) {
			s.System++
		} else {
			s.User++
		}
		switch r.Kind {
		case Instr:
			s.Instr++
			instr[r.Block()] = struct{}{}
			continue
		case Read:
			s.Reads++
			if r.Flags.Has(FlagSpin) {
				s.SpinReads++
			}
		case Write:
			s.Writes++
			if r.Flags.Has(FlagAcquire) || r.Flags.Has(FlagRelease) {
				s.LockWrites++
			}
		}
		b := r.Block()
		bi := data[b]
		if bi == nil {
			bi = &blockInfo{procs: make(map[uint16]struct{}, 2)}
			data[b] = bi
		}
		bi.procs[r.Proc] = struct{}{}
	}
	s.DataBlocks = len(data)
	s.InstrBlocks = len(instr)
	maxProcs := 0
	for _, bi := range data {
		if n := len(bi.procs); n > maxProcs {
			maxProcs = n
		}
	}
	s.ProcsPerSharedBlock = make([]int, maxProcs+1)
	shared := make(map[Block]bool, len(data))
	for b, bi := range data {
		n := len(bi.procs)
		s.ProcsPerSharedBlock[n]++
		if n > 1 {
			s.SharedBlk++
			shared[b] = true
		}
	}
	for _, r := range t.Refs {
		if r.IsData() && shared[r.Block()] {
			s.SharedRefs++
		}
	}
	return s
}

// Pct returns 100*n/s.Refs, or 0 for an empty trace.
func (s Stats) Pct(n int) float64 {
	if s.Refs == 0 {
		return 0
	}
	return 100 * float64(n) / float64(s.Refs)
}

// String renders the summary as a small table, one row per measure.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %-8s cpus=%d\n", s.Name, s.CPUs)
	row := func(label string, n int) {
		fmt.Fprintf(&b, "  %-14s %10d  (%5.2f%%)\n", label, n, s.Pct(n))
	}
	row("refs", s.Refs)
	row("instr", s.Instr)
	row("reads", s.Reads)
	row("writes", s.Writes)
	row("user", s.User)
	row("system", s.System)
	row("spin reads", s.SpinReads)
	row("lock writes", s.LockWrites)
	row("shared refs", s.SharedRefs)
	fmt.Fprintf(&b, "  %-14s %10d (shared %d)\n", "data blocks", s.DataBlocks, s.SharedBlk)
	return b.String()
}

// TopSharers returns the n most widely shared block process-counts in the
// ProcsPerSharedBlock histogram, as (processCount, blocks) pairs sorted by
// descending process count. It is a diagnostic used by workload tests.
func (s Stats) TopSharers(n int) [][2]int {
	var out [][2]int
	for procs, blocks := range s.ProcsPerSharedBlock {
		if procs > 1 && blocks > 0 {
			out = append(out, [2]int{procs, blocks})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] > out[j][0] })
	if len(out) > n {
		out = out[:n]
	}
	return out
}
