package trace

// BatchSource extends Source with bulk delivery: NextBatch moves many
// references per call, amortizing the per-reference interface dispatch
// that dominates tight simulation loops. Implementations must keep the
// two views consistent — interleaved Next and NextBatch calls drain the
// same underlying stream.
type BatchSource interface {
	Source
	// NextBatch fills buf from the front of the stream and returns the
	// number of references written. It returns 0 only when the stream is
	// exhausted (and must keep returning 0 afterwards); a short return
	// with more data pending is allowed, so callers loop until 0. The
	// implementation must not retain buf after returning.
	NextBatch(buf []Ref) int
}

// Batched returns a BatchSource view of src: src itself when it already
// implements NextBatch natively, otherwise an adapter that fills batches
// with repeated Next calls. The adapter changes delivery granularity
// only — the reference sequence is identical either way.
func Batched(src Source) BatchSource {
	if b, ok := src.(BatchSource); ok {
		return b
	}
	return &batchAdapter{src: src}
}

type batchAdapter struct {
	src Source
}

func (a *batchAdapter) Next() (Ref, bool) { return a.src.Next() }

func (a *batchAdapter) CPUCount() int { return a.src.CPUCount() }

func (a *batchAdapter) NextBatch(buf []Ref) int {
	n := 0
	for n < len(buf) {
		r, ok := a.src.Next()
		if !ok {
			break
		}
		buf[n] = r
		n++
	}
	return n
}

// NextBatch copies up to len(buf) references out of the trace slice — a
// straight memmove, the fastest path into the simulator.
func (s *sliceSource) NextBatch(buf []Ref) int {
	n := copy(buf, s.refs[s.pos:])
	s.pos += n
	return n
}
