// Package trace defines the multiprocessor address-trace model used by the
// simulator: individual memory references, whole traces, streaming codecs,
// filters, and summary statistics.
//
// A trace is the moral equivalent of the ATUM traces used in the paper: a
// single, strictly time-ordered interleaving of the memory references issued
// by every CPU in the machine. Each reference carries the issuing CPU, the
// process running on that CPU, the reference kind (instruction fetch, data
// read, data write), the byte address, and annotation flags (lock spins,
// lock acquire/release, operating-system activity) that downstream analyses
// such as the spin-lock-exclusion study of Section 5.2 rely on.
package trace

import "fmt"

// Kind is the type of a memory reference.
type Kind uint8

// Reference kinds. Instruction fetches participate in the reference mix but
// generate no coherence traffic (paper, Section 4).
const (
	Instr Kind = iota // instruction fetch
	Read              // data read
	Write             // data write
	numKinds
)

// String returns the short mnemonic used in trace dumps.
func (k Kind) String() string {
	switch k {
	case Instr:
		return "I"
	case Read:
		return "R"
	case Write:
		return "W"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined reference kinds.
func (k Kind) Valid() bool { return k < numKinds }

// Flag annotates a reference with workload-level context. Flags do not
// affect protocol behaviour; they exist so experiments can classify or
// filter references (e.g. removing lock-test spins, or separating user from
// system activity as in Table 3).
type Flag uint8

const (
	// FlagSpin marks a data read that is the "test" part of a
	// test-and-test-and-set spin loop: the processor is polling a lock it
	// has not yet observed to be free. Section 5.2 of the paper removes
	// exactly these references.
	FlagSpin Flag = 1 << iota
	// FlagAcquire marks the read and write of a successful
	// test-and-set: the access that actually takes the lock.
	FlagAcquire
	// FlagRelease marks the write that frees a lock.
	FlagRelease
	// FlagSystem marks operating-system activity (roughly 10% of the
	// paper's traces).
	FlagSystem
	// FlagShared marks a reference the generator knows touches data that
	// is shared between processes. Used only for workload diagnostics.
	FlagShared
)

// Has reports whether all bits of q are set in f.
func (f Flag) Has(q Flag) bool { return f&q == q }

// BlockShift and BlockBytes define the coherence block (line) size. The
// paper uses 4-word (16-byte) blocks throughout.
const (
	BlockShift = 4
	BlockBytes = 1 << BlockShift
)

// Block identifies a coherence unit: a block-aligned address.
type Block uint64

// BlockOf returns the block containing byte address addr.
func BlockOf(addr uint64) Block { return Block(addr >> BlockShift) }

// Addr returns the first byte address of the block.
func (b Block) Addr() uint64 { return uint64(b) << BlockShift }

// Ref is a single memory reference in a multiprocessor trace.
type Ref struct {
	Addr  uint64 // byte address
	Proc  uint16 // process identifier (sharing is classified per process)
	CPU   uint8  // issuing processor
	Kind  Kind   // instruction fetch, read, or write
	Flags Flag   // workload annotations
}

// Block returns the coherence block the reference touches.
func (r Ref) Block() Block { return BlockOf(r.Addr) }

// IsData reports whether the reference is a data read or write.
func (r Ref) IsData() bool { return r.Kind == Read || r.Kind == Write }

// String formats the reference in the text-codec line format.
func (r Ref) String() string {
	return fmt.Sprintf("%s cpu=%d pid=%d addr=%#x flags=%#x",
		r.Kind, r.CPU, r.Proc, r.Addr, uint8(r.Flags))
}
