package trace

import "testing"

func mkTrace(cpus int, refs ...Ref) *Trace {
	t := New("test", cpus)
	for _, r := range refs {
		t.Append(r)
	}
	return t
}

func TestValidateOK(t *testing.T) {
	tr := mkTrace(2,
		Ref{Addr: 0x10, CPU: 0, Kind: Read},
		Ref{Addr: 0x20, CPU: 1, Kind: Write},
		Ref{Addr: 0x30, CPU: 1, Kind: Instr},
	)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
	}{
		{"zero cpus", &Trace{Name: "x", CPUs: 0}},
		{"too many cpus", &Trace{Name: "x", CPUs: MaxCPUs + 1}},
		{"bad kind", mkTrace(1, Ref{Kind: Kind(9)})},
		{"cpu out of range", mkTrace(1, Ref{CPU: 1, Kind: Read})},
	}
	for _, c := range cases {
		if err := c.tr.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := mkTrace(1, Ref{Addr: 1, Kind: Read})
	c := tr.Clone()
	c.Refs[0].Addr = 99
	c.Name = "other"
	if tr.Refs[0].Addr != 1 || tr.Name != "test" {
		t.Error("Clone shares state with the original")
	}
}

func TestIteratorReplaysInOrder(t *testing.T) {
	tr := mkTrace(2,
		Ref{Addr: 0x10, CPU: 0, Kind: Read},
		Ref{Addr: 0x20, CPU: 1, Kind: Write},
	)
	it := tr.Iterator()
	if it.CPUCount() != 2 {
		t.Fatalf("CPUCount = %d, want 2", it.CPUCount())
	}
	var got []Ref
	for {
		r, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 2 || got[0].Addr != 0x10 || got[1].Addr != 0x20 {
		t.Fatalf("iterator replay mismatch: %v", got)
	}
	// Exhausted iterators keep returning ok == false.
	if _, ok := it.Next(); ok {
		t.Error("exhausted iterator returned a reference")
	}
}

func TestCollect(t *testing.T) {
	tr := mkTrace(3,
		Ref{Addr: 0x10, CPU: 2, Kind: Read},
		Ref{Addr: 0x20, CPU: 0, Kind: Instr},
	)
	got := Collect("copy", tr.Iterator())
	if got.Name != "copy" || got.CPUs != 3 || got.Len() != 2 {
		t.Fatalf("Collect produced %q cpus=%d len=%d", got.Name, got.CPUs, got.Len())
	}
	if got.Refs[0] != tr.Refs[0] || got.Refs[1] != tr.Refs[1] {
		t.Error("Collect altered references")
	}
}

func TestIteratorIndependence(t *testing.T) {
	tr := mkTrace(1, Ref{Addr: 1, Kind: Read}, Ref{Addr: 2, Kind: Read})
	a, b := tr.Iterator(), tr.Iterator()
	ra, _ := a.Next()
	rb, _ := b.Next()
	if ra != rb {
		t.Error("fresh iterators should start at the same position")
	}
	a.Next()
	if _, ok := a.Next(); ok {
		t.Error("iterator a should be exhausted")
	}
	if _, ok := b.Next(); !ok {
		t.Error("iterator b should still have a reference")
	}
}
