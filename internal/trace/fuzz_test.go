package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary checks that arbitrary byte streams never panic the
// decoder and that anything it accepts is a valid trace that re-encodes
// and re-decodes to the same value.
func FuzzReadBinary(f *testing.F) {
	// Seed with valid encodings of a few shapes.
	seed := func(t *Trace) {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, t); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(New("empty", 1))
	seed(mkTraceF(4,
		Ref{Addr: 0x10, CPU: 0, Kind: Read},
		Ref{Addr: 0xffff_ffff_ffff_fff0, CPU: 3, Proc: 65535, Kind: Write, Flags: 0x3f},
	))
	f.Add([]byte("DSTR"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Name != tr.Name || back.CPUs != tr.CPUs || len(back.Refs) != len(tr.Refs) {
			t.Fatal("round trip changed the trace")
		}
		for i := range tr.Refs {
			if tr.Refs[i] != back.Refs[i] {
				t.Fatalf("ref %d changed in round trip", i)
			}
		}
	})
}

// mkTraceF is mkTrace for fuzz seeds (fuzz functions cannot use *testing.T
// helpers at seed time).
func mkTraceF(cpus int, refs ...Ref) *Trace {
	t := New("fuzzseed", cpus)
	for _, r := range refs {
		t.Append(r)
	}
	return t
}

// FuzzReadText does the same for the text codec.
func FuzzReadText(f *testing.F) {
	f.Add("# trace x cpus=2\nR 0 0 10 0\nW 1 1 20 4\n")
	f.Add("")
	f.Add("# trace cpus=banana\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("text decoder accepted an invalid trace: %v", err)
		}
	})
}
