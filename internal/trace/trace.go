package trace

import (
	"errors"
	"fmt"
)

// Trace is an in-memory multiprocessor address trace: a time-ordered
// interleaving of references from every CPU, together with identifying
// metadata. The zero value is an empty, unnamed trace ready for Append.
type Trace struct {
	// Name identifies the workload (e.g. "pops", "thor", "pero").
	Name string
	// CPUs is the number of processors that may appear in the trace.
	// References must satisfy int(r.CPU) < CPUs.
	CPUs int
	// Refs is the ordered reference stream.
	Refs []Ref
}

// New returns an empty trace for the given workload name and CPU count.
func New(name string, cpus int) *Trace {
	return &Trace{Name: name, CPUs: cpus}
}

// Append adds one reference to the end of the trace.
func (t *Trace) Append(r Ref) { t.Refs = append(t.Refs, r) }

// Len returns the number of references in the trace.
func (t *Trace) Len() int { return len(t.Refs) }

// Validate checks internal consistency: every reference has a valid kind
// and a CPU index below t.CPUs. It returns the first problem found.
func (t *Trace) Validate() error {
	if t.CPUs <= 0 {
		return fmt.Errorf("trace %q: non-positive CPU count %d", t.Name, t.CPUs)
	}
	if t.CPUs > MaxCPUs {
		return fmt.Errorf("trace %q: CPU count %d exceeds limit %d", t.Name, t.CPUs, MaxCPUs)
	}
	for i, r := range t.Refs {
		if !r.Kind.Valid() {
			return fmt.Errorf("trace %q: ref %d: invalid kind %d", t.Name, i, r.Kind)
		}
		if int(r.CPU) >= t.CPUs {
			return fmt.Errorf("trace %q: ref %d: CPU %d out of range [0,%d)", t.Name, i, r.CPU, t.CPUs)
		}
	}
	return nil
}

// MaxCPUs bounds the number of processors in a trace. The limit comes from
// the uint8 CPU field plus headroom checks in the protocol engines' bitsets;
// it is far above anything the experiments use.
const MaxCPUs = 256

// ErrEmpty is returned by operations that need at least one reference.
var ErrEmpty = errors.New("trace: empty trace")

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Name: t.Name, CPUs: t.CPUs, Refs: make([]Ref, len(t.Refs))}
	copy(c.Refs, t.Refs)
	return c
}

// Source is a stream of references, the input type accepted by the
// simulator. It abstracts over in-memory traces, codec readers, and filter
// chains so multi-million-reference runs need not be materialized twice.
type Source interface {
	// Next returns the next reference. ok is false when the stream is
	// exhausted, after which Next must keep returning ok == false.
	Next() (r Ref, ok bool)
	// CPUCount returns the number of processors in the stream.
	CPUCount() int
}

// Iterator returns a Source that replays the trace from the beginning.
func (t *Trace) Iterator() Source { return &sliceSource{refs: t.Refs, cpus: t.CPUs} }

type sliceSource struct {
	refs []Ref
	cpus int
	pos  int
}

func (s *sliceSource) Next() (Ref, bool) {
	if s.pos >= len(s.refs) {
		return Ref{}, false
	}
	r := s.refs[s.pos]
	s.pos++
	return r, true
}

func (s *sliceSource) CPUCount() int { return s.cpus }

// Collect drains a Source into an in-memory trace with the given name.
func Collect(name string, src Source) *Trace {
	t := New(name, src.CPUCount())
	for {
		r, ok := src.Next()
		if !ok {
			return t
		}
		t.Append(r)
	}
}
