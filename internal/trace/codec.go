package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The binary trace format is a compact, streamable encoding:
//
//	magic "DSTR" | version u8 | name len uvarint + bytes |
//	cpus uvarint | count uvarint | refs...
//
// Each reference is encoded as:
//
//	tag u8   = kind(2 bits) | flags << 2
//	cpu u8
//	proc uvarint
//	addr delta (zigzag varint against the previous reference's address)
//
// Address deltas make the common case (sequential instruction fetches,
// strided data walks) one or two bytes.

const (
	codecMagic   = "DSTR"
	codecVersion = 1
)

// ErrBadFormat reports a malformed or truncated binary trace.
var ErrBadFormat = errors.New("trace: bad binary format")

// WriteBinary encodes t to w in the binary trace format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(codecVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(t.CPUs)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Refs))); err != nil {
		return err
	}
	prev := uint64(0)
	for _, r := range t.Refs {
		tag := byte(r.Kind) | byte(r.Flags)<<2
		if err := bw.WriteByte(tag); err != nil {
			return err
		}
		if err := bw.WriteByte(r.CPU); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.Proc)); err != nil {
			return err
		}
		delta := int64(r.Addr - prev)
		n := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = r.Addr
	}
	return bw.Flush()
}

// ReadBinary decodes a binary trace from r.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrBadFormat, err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadFormat, magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrBadFormat, err)
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, ver)
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: name length: %v", ErrBadFormat, err)
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("%w: name length %d too large", ErrBadFormat, nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("%w: name: %v", ErrBadFormat, err)
	}
	cpus, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: cpus: %v", ErrBadFormat, err)
	}
	if cpus == 0 || cpus > MaxCPUs {
		return nil, fmt.Errorf("%w: cpu count %d", ErrBadFormat, cpus)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFormat, err)
	}
	// Pre-size conservatively: the header's count is untrusted input and
	// each reference needs at least 4 bytes, so a short stream claiming
	// billions of references must not pre-allocate them.
	prealloc := count
	if prealloc > 1<<20 {
		prealloc = 1 << 20
	}
	t := &Trace{Name: string(name), CPUs: int(cpus), Refs: make([]Ref, 0, prealloc)}
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		tag, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: ref %d tag: %v", ErrBadFormat, i, err)
		}
		kind := Kind(tag & 3)
		if !kind.Valid() {
			return nil, fmt.Errorf("%w: ref %d kind %d", ErrBadFormat, i, kind)
		}
		cpu, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("%w: ref %d cpu: %v", ErrBadFormat, i, err)
		}
		if int(cpu) >= int(cpus) {
			return nil, fmt.Errorf("%w: ref %d cpu %d out of range", ErrBadFormat, i, cpu)
		}
		proc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: ref %d proc: %v", ErrBadFormat, i, err)
		}
		if proc > 1<<16-1 {
			return nil, fmt.Errorf("%w: ref %d proc %d out of range", ErrBadFormat, i, proc)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: ref %d addr: %v", ErrBadFormat, i, err)
		}
		addr := prev + uint64(delta)
		prev = addr
		t.Refs = append(t.Refs, Ref{
			Addr:  addr,
			Proc:  uint16(proc),
			CPU:   cpu,
			Kind:  kind,
			Flags: Flag(tag >> 2),
		})
	}
	return t, nil
}

// WriteText encodes t to w in a human-readable, line-oriented format:
//
//	# trace <name> cpus=<n>
//	<kind> <cpu> <proc> <hex addr> <hex flags>
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s cpus=%d\n", t.Name, t.CPUs); err != nil {
		return err
	}
	for _, r := range t.Refs {
		if _, err := fmt.Fprintf(bw, "%s %d %d %x %x\n", r.Kind, r.CPU, r.Proc, r.Addr, uint8(r.Flags)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText decodes the line format produced by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	t := &Trace{CPUs: 1}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			// Header: "# trace <name> cpus=<n>".
			fields := strings.Fields(line)
			for i, f := range fields {
				if f == "trace" && i+1 < len(fields) {
					t.Name = fields[i+1]
				}
				if strings.HasPrefix(f, "cpus=") {
					n, err := strconv.Atoi(strings.TrimPrefix(f, "cpus="))
					if err != nil {
						return nil, fmt.Errorf("trace: line %d: bad cpus: %v", lineNo, err)
					}
					t.CPUs = n
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		var kind Kind
		switch fields[0] {
		case "I":
			kind = Instr
		case "R":
			kind = Read
		case "W":
			kind = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q", lineNo, fields[0])
		}
		cpu, err := strconv.ParseUint(fields[1], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cpu: %v", lineNo, err)
		}
		proc, err := strconv.ParseUint(fields[2], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad proc: %v", lineNo, err)
		}
		addr, err := strconv.ParseUint(fields[3], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr: %v", lineNo, err)
		}
		flags, err := strconv.ParseUint(fields[4], 16, 8)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad flags: %v", lineNo, err)
		}
		t.Refs = append(t.Refs, Ref{Addr: addr, Proc: uint16(proc), CPU: uint8(cpu), Kind: kind, Flags: Flag(flags)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
