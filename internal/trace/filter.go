package trace

import "fmt"

// FilterFunc decides whether a reference is kept by a filtered Source.
type FilterFunc func(Ref) bool

// Filtered wraps src, yielding only references for which keep returns true.
// The CPU count is preserved.
func Filtered(src Source, keep FilterFunc) Source {
	return &filterSource{src: src, b: Batched(src), keep: keep}
}

type filterSource struct {
	src  Source
	b    BatchSource // batched view of src, for NextBatch
	keep FilterFunc
}

func (f *filterSource) Next() (Ref, bool) {
	for {
		r, ok := f.src.Next()
		if !ok {
			return Ref{}, false
		}
		if f.keep(r) {
			return r, true
		}
	}
}

func (f *filterSource) CPUCount() int { return f.src.CPUCount() }

// NextBatch pulls a batch from the underlying source and compacts the
// surviving references in place, retrying until at least one reference
// passes the filter or the source is exhausted.
func (f *filterSource) NextBatch(buf []Ref) int {
	for {
		n := f.b.NextBatch(buf)
		if n == 0 {
			return 0
		}
		k := 0
		for i := 0; i < n; i++ {
			if f.keep(buf[i]) {
				buf[k] = buf[i]
				k++
			}
		}
		if k > 0 {
			return k
		}
	}
}

// WithoutSpins removes lock-test spin reads, reproducing the Section 5.2
// experiment ("excluding all the tests on locks"). Acquire and release
// accesses are retained: only the polling reads disappear.
func WithoutSpins(src Source) Source {
	return Filtered(src, func(r Ref) bool { return !r.Flags.Has(FlagSpin) })
}

// DataOnly removes instruction fetches. The protocol engines ignore
// instruction references anyway; this filter exists for workload analyses.
func DataOnly(src Source) Source {
	return Filtered(src, func(r Ref) bool { return r.Kind != Instr })
}

// OnlyCPU keeps the references issued by a single processor.
func OnlyCPU(src Source, cpu uint8) Source {
	return Filtered(src, func(r Ref) bool { return r.CPU == cpu })
}

// Map transforms each reference of src with fn. The CPU count is preserved,
// so fn must not move references onto CPUs outside the original range.
func Map(src Source, fn func(Ref) Ref) Source {
	return &mapSource{src: src, b: Batched(src), fn: fn}
}

type mapSource struct {
	src Source
	b   BatchSource // batched view of src, for NextBatch
	fn  func(Ref) Ref
}

func (m *mapSource) Next() (Ref, bool) {
	r, ok := m.src.Next()
	if !ok {
		return Ref{}, false
	}
	return m.fn(r), true
}

func (m *mapSource) CPUCount() int { return m.src.CPUCount() }

// NextBatch pulls a batch from the underlying source and transforms it in
// place.
func (m *mapSource) NextBatch(buf []Ref) int {
	n := m.b.NextBatch(buf)
	for i := 0; i < n; i++ {
		buf[i] = m.fn(buf[i])
	}
	return n
}

// ProcessToCPU remaps every reference's process id to its CPU number,
// collapsing process-based sharing onto processor-based sharing. The paper
// reports the two gave nearly identical numbers on its traces; this mapping
// lets tests verify the same property on ours.
func ProcessToCPU(src Source) Source {
	return Map(src, func(r Ref) Ref {
		r.Proc = uint16(r.CPU)
		return r
	})
}

// ProcAsCPU remaps every reference's CPU to its process id, so a
// downstream simulator caches per *process* rather than per processor —
// the classification the paper uses to exclude migration-induced sharing
// (Section 4.4). It requires process ids below the CPU count.
func ProcAsCPU(src Source) Source {
	return Map(src, func(r Ref) Ref {
		r.CPU = uint8(r.Proc)
		return r
	})
}

// WithBlockSize rescales addresses so that the simulator's fixed 16-byte
// block granularity models blocks of the given size instead: addresses
// are divided by size/16, which makes BlockOf group references at the
// larger granularity. Offsets within a block are irrelevant to the
// engines, so this is exact for classification purposes. The bus cost
// models must be rebuilt for the matching word count (bus.PipelinedWords).
// size must be a power of two, at least BlockBytes.
func WithBlockSize(src Source, size int) (Source, error) {
	if size < BlockBytes || size&(size-1) != 0 {
		return nil, fmt.Errorf("trace: block size %d must be a power of two >= %d", size, BlockBytes)
	}
	shift := 0
	for 1<<shift*BlockBytes < size {
		shift++
	}
	return Map(src, func(r Ref) Ref {
		r.Addr >>= shift
		return r
	}), nil
}

// Limit yields at most n references from src.
func Limit(src Source, n int) Source {
	return &limitSource{src: src, b: Batched(src), left: n}
}

type limitSource struct {
	src  Source
	b    BatchSource // batched view of src, for NextBatch
	left int
}

func (l *limitSource) Next() (Ref, bool) {
	if l.left <= 0 {
		return Ref{}, false
	}
	l.left--
	return l.src.Next()
}

func (l *limitSource) CPUCount() int { return l.src.CPUCount() }

// NextBatch pulls at most the remaining quota in one underlying batch.
func (l *limitSource) NextBatch(buf []Ref) int {
	if l.left <= 0 {
		return 0
	}
	if l.left < len(buf) {
		buf = buf[:l.left]
	}
	n := l.b.NextBatch(buf)
	l.left -= n
	return n
}
