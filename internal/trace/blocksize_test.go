package trace

import "testing"

func TestWithBlockSizeValidation(t *testing.T) {
	src := mkTrace(1, Ref{Addr: 0x100, Kind: Read}).Iterator()
	for _, bad := range []int{0, 8, 15, 24, 48} {
		if _, err := WithBlockSize(src, bad); err == nil {
			t.Errorf("block size %d accepted", bad)
		}
	}
}

func TestWithBlockSizeIdentity(t *testing.T) {
	tr := mkTrace(1,
		Ref{Addr: 0x100, Kind: Read},
		Ref{Addr: 0x1f0, Kind: Write},
	)
	src, err := WithBlockSize(tr.Iterator(), BlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(src)
	for i, r := range got {
		if r.Addr != tr.Refs[i].Addr {
			t.Errorf("16-byte rescale must be the identity: %#x", r.Addr)
		}
	}
}

func TestWithBlockSizeGrouping(t *testing.T) {
	// Addresses 0x100 and 0x110 are distinct 16-byte blocks but the same
	// 32-byte block; 0x120 is a different 32-byte block.
	tr := mkTrace(1,
		Ref{Addr: 0x100, Kind: Read},
		Ref{Addr: 0x110, Kind: Read},
		Ref{Addr: 0x120, Kind: Read},
	)
	src, err := WithBlockSize(tr.Iterator(), 32)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(src)
	if got[0].Block() != got[1].Block() {
		t.Error("0x100 and 0x110 must share a 32-byte block")
	}
	if got[1].Block() == got[2].Block() {
		t.Error("0x110 and 0x120 must be in different 32-byte blocks")
	}
}

func TestWithBlockSizeLarge(t *testing.T) {
	// 128-byte blocks: eight 16-byte blocks collapse into one.
	tr := New("x", 1)
	for i := 0; i < 8; i++ {
		tr.Append(Ref{Addr: uint64(0x1000 + i*16), Kind: Read})
	}
	tr.Append(Ref{Addr: 0x1080, Kind: Read})
	src, err := WithBlockSize(tr.Iterator(), 128)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(src)
	first := got[0].Block()
	for i := 1; i < 8; i++ {
		if got[i].Block() != first {
			t.Fatalf("ref %d left the 128-byte block", i)
		}
	}
	if got[8].Block() == first {
		t.Error("0x1080 should start the next 128-byte block")
	}
}
