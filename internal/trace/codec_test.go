package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// randomTrace builds a pseudo-random but valid trace for round-trip tests.
func randomTrace(r *rand.Rand, n int) *Trace {
	cpus := 1 + r.Intn(8)
	t := New("rnd", cpus)
	for i := 0; i < n; i++ {
		t.Append(Ref{
			Addr:  r.Uint64(),
			Proc:  uint16(r.Intn(1 << 16)),
			CPU:   uint8(r.Intn(cpus)),
			Kind:  Kind(r.Intn(3)),
			Flags: Flag(r.Intn(64)),
		})
	}
	return t
}

// traceEqual compares traces treating nil and empty reference slices as
// equal (the decoder always allocates a slice).
func traceEqual(a, b *Trace) bool {
	if a.Name != b.Name || a.CPUs != b.CPUs || len(a.Refs) != len(b.Refs) {
		return false
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		orig := randomTrace(r, r.Intn(500))
		var buf bytes.Buffer
		if err := WriteBinary(&buf, orig); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !traceEqual(orig, got) {
			t.Fatalf("round trip mismatch: %d refs in, %d out", orig.Len(), got.Len())
		}
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(addrs []uint64, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New("q", 4)
		for _, a := range addrs {
			tr.Append(Ref{Addr: a, CPU: uint8(r.Intn(4)), Kind: Kind(r.Intn(3)), Proc: uint16(r.Intn(100))})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && traceEqual(tr, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinaryCompactness(t *testing.T) {
	// Sequential addresses must encode in a handful of bytes each.
	tr := New("seq", 1)
	for i := 0; i < 1000; i++ {
		tr.Append(Ref{Addr: uint64(i) * 4, Kind: Instr})
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if perRef := float64(buf.Len()) / 1000; perRef > 6 {
		t.Errorf("binary encoding too large: %.1f bytes/ref", perRef)
	}
}

func TestReadBinaryErrors(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		tr := mkTrace(2, Ref{Addr: 0x10, CPU: 1, Kind: Read})
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte("XXXX\x01")},
		{"bad version", append([]byte("DSTR"), 99)},
		{"truncated header", valid[:6]},
		{"truncated refs", valid[:len(valid)-1]},
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c.data)); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: error %v should wrap ErrBadFormat", c.name, err)
		}
	}
}

func TestReadBinaryRejectsBadCPU(t *testing.T) {
	// Hand-craft a trace claiming 1 CPU but containing CPU 5.
	tr := mkTrace(8, Ref{Addr: 0x10, CPU: 5, Kind: Read})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// The cpus uvarint follows "DSTR", version, name-len (0), name ("rnd"
	// is empty here since mkTrace names it "test"): locate and patch is
	// fragile, so rebuild with an empty name instead.
	tr.Name = ""
	buf.Reset()
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data = buf.Bytes()
	// Layout: magic(4) version(1) namelen(1)=0 cpus(1)=8 ...
	if data[6] != 8 {
		t.Fatalf("unexpected layout: cpus byte = %d", data[6])
	}
	data[6] = 1 // now CPU 5 is out of range
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("expected error for out-of-range CPU")
	}
}

// failAfter is a writer that errors once n bytes have been written,
// exercising every error-return branch in the encoders.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("synthetic write failure")
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errors.New("synthetic write failure")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWriteErrorsPropagate(t *testing.T) {
	tr := mkTrace(2,
		Ref{Addr: 0x10, CPU: 0, Kind: Read},
		Ref{Addr: 0x9000, CPU: 1, Kind: Write, Flags: FlagShared},
	)
	tr.Name = "failing"
	// Find the full encoded sizes, then fail at every prefix length.
	var full bytes.Buffer
	if err := WriteBinary(&full, tr); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < full.Len(); n++ {
		if err := WriteBinary(&failAfter{n: n}, tr); err == nil {
			t.Fatalf("binary write with %d-byte budget succeeded", n)
		}
	}
	full.Reset()
	if err := WriteText(&full, tr); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < full.Len(); n++ {
		if err := WriteText(&failAfter{n: n}, tr); err == nil {
			t.Fatalf("text write with %d-byte budget succeeded", n)
		}
	}
	// A large trace overflows the bufio buffer mid-stream, surfacing the
	// per-reference error branches rather than only the final flush.
	big := New("big", 2)
	for i := 0; i < 20_000; i++ {
		big.Append(Ref{Addr: uint64(i) * 1024, CPU: uint8(i % 2), Kind: Read})
	}
	for _, n := range []int{0, 1, 5000, 9000, 20000} {
		if err := WriteBinary(&failAfter{n: n}, big); err == nil {
			t.Fatalf("large binary write with %d-byte budget succeeded", n)
		}
		if err := WriteText(&failAfter{n: n}, big); err == nil {
			t.Fatalf("large text write with %d-byte budget succeeded", n)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	orig := mkTrace(4,
		Ref{Addr: 0x1000, CPU: 0, Proc: 3, Kind: Instr},
		Ref{Addr: 0x2000, CPU: 1, Proc: 4, Kind: Read, Flags: FlagSpin},
		Ref{Addr: 0x3008, CPU: 3, Proc: 5, Kind: Write, Flags: FlagRelease | FlagShared},
	)
	orig.Name = "roundtrip"
	var buf bytes.Buffer
	if err := WriteText(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, got) {
		t.Fatalf("text round trip mismatch:\norig %+v\ngot  %+v", orig, got)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"bad kind", "# trace x cpus=1\nZ 0 0 10 0\n"},
		{"bad cpu", "# trace x cpus=1\nR notanum 0 10 0\n"},
		{"bad addr", "# trace x cpus=1\nR 0 0 zz 0\n"},
		{"wrong fields", "# trace x cpus=1\nR 0 0\n"},
		{"bad cpus header", "# trace x cpus=banana\nR 0 0 10 0\n"},
		{"cpu exceeds header", "# trace x cpus=1\nR 3 0 10 0\n"},
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadTextSkipsBlanksAndComments(t *testing.T) {
	in := "# trace tiny cpus=2\n\n# a comment\nR 1 0 10 0\n"
	tr, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || tr.Name != "tiny" || tr.CPUs != 2 {
		t.Fatalf("got %+v", tr)
	}
}
