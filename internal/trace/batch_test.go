package trace

import (
	"testing"
)

// testTrace builds a deterministic little trace exercising every kind and
// a few flags.
func testTrace(n int) *Trace {
	t := New("batch-test", 4)
	for i := 0; i < n; i++ {
		t.Append(Ref{
			Addr:  uint64(i) * 8,
			Proc:  uint16(i % 4),
			CPU:   uint8(i % 4),
			Kind:  Kind(i % int(numKinds)),
			Flags: Flag(i % 3),
		})
	}
	return t
}

// drainNext collects a source one reference at a time.
func drainNext(src Source) []Ref {
	var out []Ref
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// drainBatch collects a source through NextBatch with the given buffer
// size.
func drainBatch(src Source, bufSize int) []Ref {
	b := Batched(src)
	buf := make([]Ref, bufSize)
	var out []Ref
	for {
		n := b.NextBatch(buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

// nextOnly hides any native NextBatch, forcing the generic adapter.
type nextOnly struct{ src Source }

func (s nextOnly) Next() (Ref, bool) { return s.src.Next() }
func (s nextOnly) CPUCount() int     { return s.src.CPUCount() }

func refsEqual(t *testing.T, name string, got, want []Ref) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d refs, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: ref %d: got %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// TestBatchedMatchesNext checks that every source shape yields an
// identical reference sequence through NextBatch as through Next, across
// buffer sizes including 1, a prime that never divides the length, and a
// size larger than the whole stream.
func TestBatchedMatchesNext(t *testing.T) {
	tr := testTrace(1000)
	shapes := []struct {
		name string
		mk   func() Source
	}{
		{"slice", func() Source { return tr.Iterator() }},
		{"adapter", func() Source { return nextOnly{tr.Iterator()} }},
		{"filter", func() Source { return DataOnly(tr.Iterator()) }},
		{"map", func() Source { return ProcessToCPU(tr.Iterator()) }},
		{"limit", func() Source { return Limit(tr.Iterator(), 123) }},
		{"filter-of-map", func() Source { return DataOnly(ProcessToCPU(tr.Iterator())) }},
	}
	for _, sh := range shapes {
		want := drainNext(sh.mk())
		for _, bufSize := range []int{1, 7, 64, 2048} {
			got := drainBatch(sh.mk(), bufSize)
			refsEqual(t, sh.name, got, want)
		}
	}
}

// TestBatchedReturnsNativeImplementation checks that Batched does not
// re-wrap a source that already supports batch delivery.
func TestBatchedReturnsNativeImplementation(t *testing.T) {
	src := testTrace(10).Iterator()
	if b := Batched(src); b != src.(BatchSource) {
		t.Error("Batched re-wrapped a native BatchSource")
	}
	b := Batched(nextOnly{src})
	if b2 := Batched(b); b2 != b {
		t.Error("Batched re-wrapped its own adapter")
	}
}

// TestBatchedExhaustionSticks checks that NextBatch keeps returning 0
// after the stream ends, mirroring the Next contract.
func TestBatchedExhaustionSticks(t *testing.T) {
	for _, mk := range []func() Source{
		func() Source { return testTrace(5).Iterator() },
		func() Source { return nextOnly{testTrace(5).Iterator()} },
		func() Source { return DataOnly(testTrace(5).Iterator()) },
	} {
		b := Batched(mk())
		buf := make([]Ref, 16)
		for b.NextBatch(buf) != 0 {
		}
		if n := b.NextBatch(buf); n != 0 {
			t.Errorf("NextBatch returned %d after exhaustion", n)
		}
	}
}

// TestInterleavedNextAndBatch checks the two views drain one stream
// consistently.
func TestInterleavedNextAndBatch(t *testing.T) {
	tr := testTrace(100)
	want := tr.Refs
	b := Batched(tr.Iterator())
	var got []Ref
	buf := make([]Ref, 9)
	for i := 0; ; i++ {
		if i%2 == 0 {
			r, ok := b.Next()
			if !ok {
				break
			}
			got = append(got, r)
			continue
		}
		n := b.NextBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	refsEqual(t, "interleaved", got, want)
}
