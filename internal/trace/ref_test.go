package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{Instr, "I"},
		{Read, "R"},
		{Write, "W"},
		{Kind(9), "Kind(9)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestKindValid(t *testing.T) {
	for _, k := range []Kind{Instr, Read, Write} {
		if !k.Valid() {
			t.Errorf("kind %v should be valid", k)
		}
	}
	if Kind(3).Valid() || Kind(200).Valid() {
		t.Error("out-of-range kinds should be invalid")
	}
}

func TestBlockOf(t *testing.T) {
	cases := []struct {
		addr  uint64
		block Block
	}{
		{0, 0},
		{15, 0},
		{16, 1},
		{31, 1},
		{0x1000, 0x100},
		{0xffff_ffff_ffff_ffff, 0x0fff_ffff_ffff_ffff},
	}
	for _, c := range cases {
		if got := BlockOf(c.addr); got != c.block {
			t.Errorf("BlockOf(%#x) = %#x, want %#x", c.addr, got, c.block)
		}
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	f := func(addr uint64) bool {
		b := BlockOf(addr)
		back := b.Addr()
		// The block address must be block-aligned and contain addr.
		return back%BlockBytes == 0 && back <= addr && addr-back < BlockBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlagHas(t *testing.T) {
	f := FlagSpin | FlagShared
	if !f.Has(FlagSpin) || !f.Has(FlagShared) || !f.Has(FlagSpin|FlagShared) {
		t.Error("Has should report set bits")
	}
	if f.Has(FlagAcquire) || f.Has(FlagSpin|FlagAcquire) {
		t.Error("Has must require all queried bits")
	}
}

func TestRefBlockAndIsData(t *testing.T) {
	r := Ref{Addr: 0x123, Kind: Read}
	if r.Block() != BlockOf(0x123) {
		t.Error("Ref.Block mismatch")
	}
	if !r.IsData() {
		t.Error("read is data")
	}
	if !(Ref{Kind: Write}).IsData() {
		t.Error("write is data")
	}
	if (Ref{Kind: Instr}).IsData() {
		t.Error("instr is not data")
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Addr: 0x40, CPU: 2, Proc: 7, Kind: Write, Flags: FlagShared}
	s := r.String()
	for _, want := range []string{"W", "cpu=2", "pid=7", "0x40"} {
		if !strings.Contains(s, want) {
			t.Errorf("Ref.String() = %q, missing %q", s, want)
		}
	}
}
