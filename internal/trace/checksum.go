package trace

// Checksum hashes the full content of a reference slice — every field of
// every reference, order-sensitive — into 64 bits. It is the integrity
// primitive behind the engine's stream defenses: the streaming producer
// stamps each multicast chunk with the checksum of its references, and
// subscribers revalidate it before simulating, so a recycled-buffer bug
// (a chunk returned to the pool while a subscriber still reads it, or a
// write racing a read) surfaces as a detected mismatch instead of a
// silently wrong result. The hash is FNV-1a folded over 64-bit words, so
// a multi-thousand-reference chunk costs a few multiplications per
// reference — cheap enough for verification mode, and never on the
// default hot path.
func Checksum(refs []Ref) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := range refs {
		r := &refs[i]
		h ^= r.Addr
		h *= prime64
		h ^= uint64(r.Proc) | uint64(r.CPU)<<16 | uint64(r.Kind)<<24 | uint64(r.Flags)<<32
		h *= prime64
	}
	return h
}

// Fingerprint identifies the trace's full content: its name, machine
// size, and the checksum of every reference. The execution engine uses it
// to validate trace-cache entries in verification mode — a cached trace
// whose fingerprint no longer matches the one recorded when it was stored
// is evicted and regenerated rather than served.
func (t *Trace) Fingerprint() uint64 {
	const prime64 = 1099511628211
	h := Checksum(t.Refs)
	for i := 0; i < len(t.Name); i++ {
		h ^= uint64(t.Name[i])
		h *= prime64
	}
	h ^= uint64(t.CPUs)
	h *= prime64
	h ^= uint64(len(t.Refs))
	h *= prime64
	return h
}
