package trace

import "testing"

func refSeq(n int) []Ref {
	refs := make([]Ref, n)
	for i := range refs {
		refs[i] = Ref{
			Addr:  uint64(i) * 16,
			Proc:  uint16(i % 7),
			CPU:   uint8(i % 4),
			Kind:  Kind(i % 3),
			Flags: Flag(i % 5),
		}
	}
	return refs
}

// TestChecksumSensitivity flips every field of one reference in turn; each
// perturbation must change the checksum, and undoing it must restore it.
func TestChecksumSensitivity(t *testing.T) {
	refs := refSeq(100)
	base := Checksum(refs)
	if Checksum(refs) != base {
		t.Fatal("checksum not deterministic")
	}
	mutate := []struct {
		name string
		do   func(r *Ref)
		undo func(r *Ref)
	}{
		{"addr", func(r *Ref) { r.Addr ^= 1 << 40 }, func(r *Ref) { r.Addr ^= 1 << 40 }},
		{"proc", func(r *Ref) { r.Proc++ }, func(r *Ref) { r.Proc-- }},
		{"cpu", func(r *Ref) { r.CPU++ }, func(r *Ref) { r.CPU-- }},
		{"kind", func(r *Ref) { r.Kind ^= 1 }, func(r *Ref) { r.Kind ^= 1 }},
		{"flags", func(r *Ref) { r.Flags ^= FlagSpin }, func(r *Ref) { r.Flags ^= FlagSpin }},
	}
	for _, m := range mutate {
		m.do(&refs[37])
		if Checksum(refs) == base {
			t.Errorf("checksum blind to %s mutation", m.name)
		}
		m.undo(&refs[37])
		if Checksum(refs) != base {
			t.Errorf("checksum not restored after %s round trip", m.name)
		}
	}
}

// TestChecksumOrderSensitive swaps two references: the checksum of a
// stream must depend on its order, since simulation does.
func TestChecksumOrderSensitive(t *testing.T) {
	refs := refSeq(50)
	base := Checksum(refs)
	refs[3], refs[11] = refs[11], refs[3]
	if Checksum(refs) == base {
		t.Error("checksum blind to reference reordering")
	}
}

func TestTraceFingerprint(t *testing.T) {
	a := &Trace{Name: "pops", CPUs: 4, Refs: refSeq(64)}
	base := a.Fingerprint()
	if a.Fingerprint() != base {
		t.Fatal("fingerprint not deterministic")
	}
	b := a.Clone()
	if b.Fingerprint() != base {
		t.Error("clone fingerprint differs")
	}
	b.Name = "thor"
	if b.Fingerprint() == base {
		t.Error("fingerprint blind to trace name")
	}
	c := a.Clone()
	c.CPUs = 8
	if c.Fingerprint() == base {
		t.Error("fingerprint blind to CPU count")
	}
	d := a.Clone()
	d.Refs[0].Addr ^= 1
	if d.Fingerprint() == base {
		t.Error("fingerprint blind to reference content")
	}
}
