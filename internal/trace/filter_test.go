package trace

import "testing"

func filterInput() *Trace {
	return mkTrace(4,
		Ref{Addr: 0x10, CPU: 0, Proc: 0, Kind: Instr},
		Ref{Addr: 0x20, CPU: 1, Proc: 1, Kind: Read, Flags: FlagSpin},
		Ref{Addr: 0x20, CPU: 1, Proc: 1, Kind: Read, Flags: FlagAcquire},
		Ref{Addr: 0x30, CPU: 2, Proc: 5, Kind: Write},
		Ref{Addr: 0x20, CPU: 3, Proc: 3, Kind: Read, Flags: FlagSpin | FlagShared},
	)
}

func drain(src Source) []Ref {
	var out []Ref
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestWithoutSpins(t *testing.T) {
	got := drain(WithoutSpins(filterInput().Iterator()))
	if len(got) != 3 {
		t.Fatalf("got %d refs, want 3", len(got))
	}
	for _, r := range got {
		if r.Flags.Has(FlagSpin) {
			t.Errorf("spin ref survived the filter: %v", r)
		}
	}
	// The acquire read (lock access, not a spin) must survive.
	found := false
	for _, r := range got {
		if r.Flags.Has(FlagAcquire) {
			found = true
		}
	}
	if !found {
		t.Error("acquire access should not be filtered")
	}
}

func TestDataOnly(t *testing.T) {
	got := drain(DataOnly(filterInput().Iterator()))
	if len(got) != 4 {
		t.Fatalf("got %d refs, want 4", len(got))
	}
	for _, r := range got {
		if r.Kind == Instr {
			t.Error("instruction survived DataOnly")
		}
	}
}

func TestOnlyCPU(t *testing.T) {
	got := drain(OnlyCPU(filterInput().Iterator(), 1))
	if len(got) != 2 {
		t.Fatalf("got %d refs, want 2", len(got))
	}
	for _, r := range got {
		if r.CPU != 1 {
			t.Errorf("wrong CPU %d", r.CPU)
		}
	}
}

func TestMapAndProcessToCPU(t *testing.T) {
	src := ProcessToCPU(filterInput().Iterator())
	if src.CPUCount() != 4 {
		t.Fatalf("CPUCount = %d", src.CPUCount())
	}
	for _, r := range drain(src) {
		if r.Proc != uint16(r.CPU) {
			t.Errorf("proc %d != cpu %d after remap", r.Proc, r.CPU)
		}
	}
}

func TestLimit(t *testing.T) {
	if got := drain(Limit(filterInput().Iterator(), 2)); len(got) != 2 {
		t.Fatalf("Limit(2) yielded %d refs", len(got))
	}
	if got := drain(Limit(filterInput().Iterator(), 0)); len(got) != 0 {
		t.Fatalf("Limit(0) yielded %d refs", len(got))
	}
	if got := drain(Limit(filterInput().Iterator(), 100)); len(got) != 5 {
		t.Fatalf("Limit(100) yielded %d refs", len(got))
	}
}

func TestProcAsCPU(t *testing.T) {
	tr := mkTrace(4, Ref{Addr: 0x10, CPU: 2, Proc: 1, Kind: Read})
	src := ProcAsCPU(tr.Iterator())
	if src.CPUCount() != 4 {
		t.Errorf("CPUCount = %d", src.CPUCount())
	}
	got := drain(src)
	if got[0].CPU != 1 {
		t.Errorf("CPU = %d, want the process id 1", got[0].CPU)
	}
}

func TestFilterSourceCPUCounts(t *testing.T) {
	tr := mkTrace(3, Ref{Addr: 0x10, CPU: 0, Kind: Read})
	if got := Filtered(tr.Iterator(), func(Ref) bool { return true }).CPUCount(); got != 3 {
		t.Errorf("Filtered CPUCount = %d", got)
	}
	if got := Limit(tr.Iterator(), 1).CPUCount(); got != 3 {
		t.Errorf("Limit CPUCount = %d", got)
	}
	bs, err := WithBlockSize(tr.Iterator(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if got := bs.CPUCount(); got != 3 {
		t.Errorf("WithBlockSize CPUCount = %d", got)
	}
}

func TestFilterChain(t *testing.T) {
	// Filters compose: data-only then CPU 3 leaves exactly one spin read.
	got := drain(OnlyCPU(DataOnly(filterInput().Iterator()), 3))
	if len(got) != 1 || !got[0].Flags.Has(FlagSpin) {
		t.Fatalf("chain result %v", got)
	}
}
