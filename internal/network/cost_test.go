package network

import (
	"math"
	"strings"
	"testing"

	"dirsim/internal/event"
)

func TestTallyFillFromMemory(t *testing.T) {
	tl := NewTally(Crossbar(4)) // unit distance: easy arithmetic
	tl.Add(event.Result{Type: event.RdMissMem})
	// Request (1 flit) + reply (5 flits).
	if tl.Cycles() != 6 || tl.Messages != 2 {
		t.Errorf("cycles=%v msgs=%d", tl.Cycles(), tl.Messages)
	}
}

func TestTallyCacheSupplyWithWriteBack(t *testing.T) {
	tl := NewTally(Crossbar(4))
	tl.Add(event.Result{Type: event.RdMissDirty, CacheSupply: true, WriteBack: true})
	// req + forward (1+1) + data (5) + wb (5) = 12.
	if tl.Cycles() != 12 || tl.Messages != 4 {
		t.Errorf("cycles=%v msgs=%d", tl.Cycles(), tl.Messages)
	}
}

func TestTallyDirectedInvals(t *testing.T) {
	tl := NewTally(Crossbar(4))
	tl.Add(event.Result{Type: event.WrHitClean, DirCheck: true, Inval: 3})
	// query+grant (2) + 3 invals + 3 acks (6) = 8 messages, 8 cycles.
	if tl.Cycles() != 8 || tl.Messages != 8 {
		t.Errorf("cycles=%v msgs=%d", tl.Cycles(), tl.Messages)
	}
}

func TestTallyBroadcastFlood(t *testing.T) {
	bus := NewTally(Bus(16))
	xbar := NewTally(Crossbar(16))
	res := event.Result{Type: event.WrHitClean, DirCheck: true, Broadcast: true}
	bus.Add(res)
	xbar.Add(res)
	if bus.Floods != 0 || xbar.Floods != 1 {
		t.Errorf("flood counting: bus %d, xbar %d", bus.Floods, xbar.Floods)
	}
	if xbar.Cycles() <= bus.Cycles() {
		t.Error("a flood must cost more than a native broadcast")
	}
}

func TestTallyFirstRefExcluded(t *testing.T) {
	tl := NewTally(Mesh(4, 4))
	tl.Add(event.Result{Type: event.RdMissFirst})
	tl.Add(event.Result{Type: event.WrMissFirst, Broadcast: true})
	if tl.Cycles() != 0 || tl.Messages != 0 {
		t.Error("first-reference misses must be free")
	}
	if tl.Refs != 2 {
		t.Error("refs still counted")
	}
}

func TestTallyHitsFree(t *testing.T) {
	tl := NewTally(Mesh(4, 4))
	tl.Add(event.Result{Type: event.RdHit})
	tl.Add(event.Result{Type: event.Instr})
	tl.Add(event.Result{Type: event.WrHitOwn})
	if tl.Cycles() != 0 {
		t.Error("hits and instructions must be free")
	}
	if tl.PerRef() != 0 {
		t.Error("PerRef should be 0")
	}
}

func TestTallyUpdate(t *testing.T) {
	tl := NewTally(Crossbar(8))
	tl.Add(event.Result{Type: event.WrHitShared, Update: true, Broadcast: true})
	// One 1-word message (2 flits) plus a word flood (2 * (n-1)).
	if want := 2.0 + 14; tl.Cycles() != want {
		t.Errorf("update cycles = %v, want %v", tl.Cycles(), want)
	}
}

func TestTallyMerge(t *testing.T) {
	a, b := NewTally(Crossbar(4)), NewTally(Crossbar(4))
	a.Add(event.Result{Type: event.RdMissMem})
	b.Add(event.Result{Type: event.RdMissMem})
	a.Merge(b)
	if a.Refs != 2 || a.Cycles() != 12 {
		t.Errorf("merge: %+v", a)
	}
}

func TestTallyString(t *testing.T) {
	tl := NewTally(Crossbar(16))
	tl.Add(event.Result{Type: event.WrMissClean, Broadcast: true})
	s := tl.String()
	if !strings.Contains(s, "xbar16") || !strings.Contains(s, "floods") {
		t.Errorf("String() = %q", s)
	}
}

func TestAvgDistSanity(t *testing.T) {
	// AvgDist must be positive and at most the diameter for all shapes.
	topos := []Topology{Bus(4), Crossbar(32), Ring(9), Mesh(3, 5), Torus(4, 4), Hypercube(5)}
	for _, topo := range topos {
		if topo.AvgDist <= 0 || topo.AvgDist > float64(topo.Diameter) {
			t.Errorf("%s: avg %v diameter %d", topo.Name, topo.AvgDist, topo.Diameter)
		}
		if math.IsNaN(topo.AvgDist) {
			t.Errorf("%s: NaN avg", topo.Name)
		}
	}
}
