package network_test

import (
	"testing"

	"dirsim/internal/network"
	"dirsim/internal/sim"
	"dirsim/internal/workload"
)

// TestDirectedBeatsBroadcastOffBus is the package's purpose: on a
// point-to-point network the directed-invalidation scheme must consume
// fewer link-cycles than the broadcast scheme, and the gap must grow with
// machine size.
func TestDirectedBeatsBroadcastOffBus(t *testing.T) {
	gap := func(cpus int, topo network.Topology) float64 {
		tr := workload.THOR(cpus, 50_000)
		full, err := sim.SimulateTrace("DirNNB", tr, sim.Options{Topologies: []network.Topology{topo}})
		if err != nil {
			t.Fatal(err)
		}
		bcast, err := sim.SimulateTrace("Dir0B", tr, sim.Options{Topologies: []network.Topology{topo}})
		if err != nil {
			t.Fatal(err)
		}
		return bcast.NetTallies[topo.Name].PerRef() / full.NetTallies[topo.Name].PerRef()
	}
	g16 := gap(16, network.Mesh(4, 4))
	g64 := gap(64, network.Mesh(8, 8))
	if g16 <= 1 {
		t.Errorf("broadcast should lose on a 16-node mesh: ratio %.2f", g16)
	}
	if g64 <= g16 {
		t.Errorf("the broadcast penalty should grow with machine size: %.2f -> %.2f", g16, g64)
	}
}
