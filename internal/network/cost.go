package network

import (
	"fmt"
	"strings"

	"dirsim/internal/event"
)

// The message sequences a distributed-directory protocol exchanges per
// event, with the block's home node (memory + directory slice) placed by
// address interleaving:
//
//	fill from memory:   request (0 words) + data reply (4 words)
//	fill from a cache:  request + forward (0 words) + data (4 words)
//	write-back:         one 4-word message owner -> home
//	directed inval:     invalidation + acknowledgement per victim
//	directory query:    request + grant (0 words) — wh-blk-cln
//	control message:    one 0-word message (Yen-Fu single-bit clears)
//	broadcast:          native on a bus; a spanning-tree flood plus
//	                    per-node acknowledgements elsewhere
//	word update:        request (1 word) to home; note that update
//	                    protocols additionally need sharer identities,
//	                    which only a directory can provide off-bus
const (
	blockWords = 4
)

// Tally accumulates network link-cycles over a protocol's event stream —
// the network analogue of bus.Tally.
type Tally struct {
	Topo Topology
	// CycleUnits is total link-cycles consumed, in exact integer units of
	// 1/Topo.CycleDenom() (the average-distance rational's denominator).
	// Integer accumulation makes the sum independent of event order —
	// float accumulation of fractional hop averages is not associative,
	// which would break the sharded simulator's bit-identical merge.
	// Cycles() converts to link-cycles, rounding exactly once.
	CycleUnits int64
	// Messages counts directed messages; Floods counts broadcast floods.
	Messages int64
	Floods   int64
	Refs     int64
}

// NewTally returns a tally over the given topology.
func NewTally(t Topology) *Tally { return &Tally{Topo: t} }

// Cycles returns total link-cycles consumed.
func (t *Tally) Cycles() float64 {
	return float64(t.CycleUnits) / float64(t.Topo.CycleDenom())
}

// msg adds n directed messages of w data words each.
func (t *Tally) msg(n, w int) {
	t.Messages += int64(n)
	t.CycleUnits += int64(n) * t.Topo.MsgCycleUnits(w)
}

// Add prices one protocol result. First-reference misses are excluded,
// as everywhere in the evaluation.
func (t *Tally) Add(res event.Result) {
	t.Refs++
	if res.Type.IsFirstRef() || res.Quiet() {
		// Quiet results send no messages; every branch below would add
		// zero.
		return
	}
	if res.Type.IsMiss() {
		switch {
		case res.CacheSupply:
			// Request to home, forward to owner, data to requester.
			t.msg(2, 0)
			t.msg(1, blockWords)
			if res.WriteBack {
				t.msg(1, blockWords)
			}
		default:
			t.msg(1, 0)
			t.msg(1, blockWords)
		}
	} else if res.WriteBack {
		t.msg(1, blockWords)
	}
	if res.DirCheck {
		// Query and grant.
		t.msg(2, 0)
	}
	if res.Inval > 0 {
		// Invalidation plus acknowledgement per victim.
		t.msg(2*res.Inval, 0)
	}
	t.msg(2*res.ForcedInval, 0)
	t.msg(res.Control, 0)
	if res.Broadcast && !res.Update {
		if t.Topo.Broadcast {
			t.CycleUnits += t.Topo.CycleDenom()
		} else {
			// Flood the invalidation and collect acknowledgements
			// from every node.
			t.Floods++
			t.CycleUnits += int64(t.Topo.FloodLinks) * t.Topo.CycleDenom()
			t.msg(t.Topo.Nodes-1, 0)
		}
	}
	if res.Update {
		// The written word travels to the home node; on a bus the
		// snoopers pick it up for free, elsewhere sharers would need
		// directed updates from a directory — priced as one flood
		// when the protocol relied on snooping.
		t.msg(1, 1)
		if res.Broadcast && !t.Topo.Broadcast {
			t.Floods++
			// A word to every node.
			t.CycleUnits += int64(t.Topo.FloodLinks) * 2 * t.Topo.CycleDenom()
		}
	}
}

// Merge folds another tally over the same topology into t.
func (t *Tally) Merge(o *Tally) {
	t.CycleUnits += o.CycleUnits
	t.Messages += o.Messages
	t.Floods += o.Floods
	t.Refs += o.Refs
}

// PerRef returns link-cycles consumed per memory reference.
func (t *Tally) PerRef() float64 {
	if t.Refs == 0 {
		return 0
	}
	return t.Cycles() / float64(t.Refs)
}

// MessagesPerRef returns directed messages per reference.
func (t *Tally) MessagesPerRef() float64 {
	if t.Refs == 0 {
		return 0
	}
	return float64(t.Messages) / float64(t.Refs)
}

// String renders a one-line summary.
func (t *Tally) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %.4f link-cycles/ref, %.4f msgs/ref",
		t.Topo.Name, t.PerRef(), t.MessagesPerRef())
	if t.Floods > 0 {
		fmt.Fprintf(&b, ", %d floods", t.Floods)
	}
	return b.String()
}
