package network

import (
	"math"
	"strings"
	"testing"
)

func TestBusTopology(t *testing.T) {
	b := Bus(8)
	if b.AvgDist != 1 || b.Diameter != 1 || !b.Broadcast {
		t.Errorf("bus: %+v", b)
	}
	if b.BroadcastCycles() != 1 {
		t.Error("bus broadcast should cost one cycle")
	}
}

func TestCrossbar(t *testing.T) {
	x := Crossbar(16)
	if x.AvgDist != 1 || x.Broadcast {
		t.Errorf("crossbar: %+v", x)
	}
	if x.BroadcastCycles() != 15 {
		t.Errorf("crossbar flood = %v, want 15", x.BroadcastCycles())
	}
}

func TestRing(t *testing.T) {
	r := Ring(8)
	if r.Diameter != 4 {
		t.Errorf("ring8 diameter = %d, want 4", r.Diameter)
	}
	// Average over distances 1,2,3,4,3,2,1 = 16/7.
	if want := 16.0 / 7; math.Abs(r.AvgDist-want) > 1e-9 {
		t.Errorf("ring8 avg = %v, want %v", r.AvgDist, want)
	}
}

func TestMesh(t *testing.T) {
	m := Mesh(4, 4)
	if m.Nodes != 16 || m.Diameter != 6 {
		t.Errorf("mesh4x4: %+v", m)
	}
	// Known closed form for the 4x4 mesh: average Manhattan distance
	// between distinct nodes is 8/3.
	if want := 8.0 / 3; math.Abs(m.AvgDist-want) > 1e-9 {
		t.Errorf("mesh4x4 avg = %v, want %v", m.AvgDist, want)
	}
}

func TestTorusBeatsMesh(t *testing.T) {
	m, to := Mesh(8, 8), Torus(8, 8)
	if to.AvgDist >= m.AvgDist || to.Diameter >= m.Diameter {
		t.Errorf("torus should beat mesh: %v vs %v", to, m)
	}
	if to.Diameter != 8 {
		t.Errorf("torus8x8 diameter = %d, want 8", to.Diameter)
	}
}

func TestHypercube(t *testing.T) {
	h := Hypercube(4)
	if h.Nodes != 16 || h.Diameter != 4 {
		t.Errorf("hcube4: %+v", h)
	}
	// Average Hamming distance between distinct 4-bit ids:
	// 4 * 2^3 / (2^4 - 1) = 32/15.
	if want := 32.0 / 15; math.Abs(h.AvgDist-want) > 1e-9 {
		t.Errorf("hcube4 avg = %v, want %v", h.AvgDist, want)
	}
}

func TestMsgCycles(t *testing.T) {
	x := Crossbar(4)
	if got := x.MsgCycles(4); got != 5 {
		t.Errorf("4-word message on crossbar = %v, want 5", got)
	}
	m := Mesh(4, 4)
	if got := m.MsgCycles(0); math.Abs(got-m.AvgDist) > 1e-9 {
		t.Errorf("0-word message should cost one flit per hop: %v", got)
	}
}

func TestTopologyString(t *testing.T) {
	s := Mesh(2, 2).String()
	for _, want := range []string{"mesh2x2", "4 nodes", "diameter"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSingleNodeDegenerate(t *testing.T) {
	b := Bus(1)
	if b.AvgDist != 0 || b.Diameter != 0 {
		t.Errorf("single node: %+v", b)
	}
}
