// Package network models interconnection topologies and prices coherence
// protocols on them. It quantifies the paper's central scalability
// argument (Sections 2 and 6): directory schemes send *directed* messages,
// which any point-to-point network can carry, while snoopy schemes rely on
// low-latency broadcast, which only a bus provides cheaply. Pricing a
// protocol's event stream on a mesh or hypercube shows the directed
// schemes' traffic growing with the network's average distance while
// broadcast-dependent schemes pay a flood for every invalidation.
//
// The model is deliberately first-order, in the spirit of the paper's bus
// models: memory and directory are distributed round-robin over the nodes
// (the organization the paper advocates), message endpoints are
// approximated as uniformly random, and a message of w data words
// consumes hops·(1+w) link-cycles (one address flit plus w data flits per
// hop, store-and-forward).
package network

import (
	"fmt"
	"math/bits"
)

// Topology describes one interconnect.
type Topology struct {
	// Name identifies the topology ("bus", "mesh4x4", ...).
	Name string
	// Nodes is the number of processor/memory nodes.
	Nodes int
	// AvgDist is the mean hop distance between two distinct nodes; it
	// equals DistSum/DistPairs and is kept for display and analysis.
	AvgDist float64
	// DistSum is the total hop distance over all ordered pairs of
	// distinct nodes, and DistPairs the number of such pairs. The pair
	// (DistSum, DistPairs) is the exact rational AvgDist, which is what
	// Tally accumulates with: every per-event link-cycle contribution is
	// an integer multiple of 1/DistPairs, so tallies sum in integer
	// units and are independent of accumulation order — the property the
	// sharded simulator's bit-identical merge relies on.
	DistSum   int
	DistPairs int
	// Diameter is the maximum hop distance.
	Diameter int
	// Broadcast reports whether the medium delivers broadcasts natively
	// in one transaction (a bus). Elsewhere a broadcast must be flooded
	// as point-to-point messages.
	Broadcast bool
	// FloodLinks is the number of link traversals needed to reach every
	// node once (a spanning tree: Nodes-1 for any connected topology).
	FloodLinks int
}

// dists computes AvgDist/Diameter from a pairwise hop function.
func build(name string, n int, broadcast bool, hop func(a, b int) int) Topology {
	t := Topology{Name: name, Nodes: n, Broadcast: broadcast, FloodLinks: n - 1}
	if n <= 1 {
		t.DistPairs = 1 // degenerate: zero distance, but a valid denominator
		return t
	}
	sum, pairs := 0, 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			d := hop(a, b)
			sum += d
			pairs++
			if d > t.Diameter {
				t.Diameter = d
			}
		}
	}
	t.DistSum, t.DistPairs = sum, pairs
	t.AvgDist = float64(sum) / float64(pairs)
	return t
}

// Bus returns the shared-bus "topology": every message costs one hop and
// broadcast is free with the message.
func Bus(n int) Topology {
	t := build(fmt.Sprintf("bus%d", n), n, true, func(a, b int) int { return 1 })
	return t
}

// Crossbar returns a full crossbar: unit distance, no native broadcast.
func Crossbar(n int) Topology {
	return build(fmt.Sprintf("xbar%d", n), n, false, func(a, b int) int { return 1 })
}

// Ring returns a bidirectional ring of n nodes.
func Ring(n int) Topology {
	return build(fmt.Sprintf("ring%d", n), n, false, func(a, b int) int {
		d := a - b
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return d
	})
}

// Mesh returns a w×h 2D mesh with dimension-ordered routing.
func Mesh(w, h int) Topology {
	return build(fmt.Sprintf("mesh%dx%d", w, h), w*h, false, func(a, b int) int {
		ax, ay := a%w, a/w
		bx, by := b%w, b/w
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	})
}

// Torus returns a w×h 2D torus (wrap-around mesh).
func Torus(w, h int) Topology {
	wrap := func(d, n int) int {
		if d < 0 {
			d = -d
		}
		if n-d < d {
			d = n - d
		}
		return d
	}
	return build(fmt.Sprintf("torus%dx%d", w, h), w*h, false, func(a, b int) int {
		return wrap(a%w-b%w, w) + wrap(a/w-b/w, h)
	})
}

// Hypercube returns a 2^dim-node hypercube.
func Hypercube(dim int) Topology {
	n := 1 << dim
	return build(fmt.Sprintf("hcube%d", dim), n, false, func(a, b int) int {
		return bits.OnesCount(uint(a ^ b))
	})
}

// MsgCycles returns the link-cycles one directed message of words data
// words consumes: average-distance hops times (address flit + data flits).
func (t Topology) MsgCycles(words int) float64 {
	return t.AvgDist * float64(1+words)
}

// CycleDenom is the denominator of the exact link-cycle units Tally
// accumulates in: one link-cycle equals CycleDenom units.
func (t Topology) CycleDenom() int64 {
	if t.DistPairs <= 0 {
		return 1 // hand-built zero-value topologies
	}
	return int64(t.DistPairs)
}

// MsgCycleUnits is MsgCycles in exact CycleDenom units: the numerator of
// avg-distance hops times (1 + words) flits.
func (t Topology) MsgCycleUnits(words int) int64 {
	return int64(t.DistSum) * int64(1+words)
}

// BroadcastCycles returns the link-cycles to deliver a payload-free
// broadcast: one transaction on a bus, a spanning-tree flood elsewhere.
func (t Topology) BroadcastCycles() float64 {
	if t.Broadcast {
		return 1
	}
	return float64(t.FloodLinks)
}

// String summarizes the topology.
func (t Topology) String() string {
	return fmt.Sprintf("%s: %d nodes, avg dist %.2f, diameter %d",
		t.Name, t.Nodes, t.AvgDist, t.Diameter)
}
