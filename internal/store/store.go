// Package store is the durable second tier behind the execution engine's
// in-memory content-addressed caches: simulation results and generated
// traces persisted on disk under their engine cache key, each stamped
// with the content fingerprint recorded at store time and revalidated on
// every load. A warm-start process — or a second process sharing the
// directory — finds yesterday's sweep already computed; a corrupted file
// (a flipped byte, a poisoned stamp, a torn write) is detected, evicted,
// and recomputed rather than served.
//
// The layout under the store directory:
//
//	res/<kk>/<key>.json   one result per file: a JSON envelope carrying
//	                      the key, the fingerprint, and the sim.Result
//	trc/<kk>/<key>.dstr   one trace per file: a binary header (key,
//	                      fingerprint) followed by the trace codec stream
//
// where <key> is the full hex engine cache key and <kk> its first two
// characters (a fan-out directory, so a million entries do not land in
// one directory). Writes are crash-safe: content goes to a same-directory
// temp file, is fsynced, and is renamed into place, so a reader sees
// either nothing or a complete file, and concurrent writers of the same
// key — which, being content-addressed, carry identical payloads — race
// harmlessly. Leftover temp files from a crashed writer are swept at
// Open.
//
// The store is safe for concurrent use within a process and for
// multi-process sharing of one directory: the in-memory index is an
// accounting structure (LRU order, total bytes), not an authority on
// presence — a lookup that misses the index still consults the disk, so
// entries written by another process after Open are found.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

// SchemaVersion identifies the on-disk envelope format. Files written
// with a different version are treated as absent (and evicted), never
// misread. Version 2: network tallies store exact integer CycleUnits
// instead of a float cycle sum, and result fingerprints hash those units.
const SchemaVersion = 2

// staleTempAge is how old a temp file must be before Open's sweep treats
// it as a crashed writer's leftover and removes it. Live writers — in
// this process or any other sharing the directory — hold a temp for
// milliseconds between create and rename.
const staleTempAge = time.Minute

// ErrCorrupt reports a stored entry that failed integrity revalidation —
// undecodable bytes, a key mismatch, or a fingerprint that no longer
// matches the decoded content. The entry has been evicted by the time
// the error is returned; the caller recomputes.
var ErrCorrupt = errors.New("store: entry failed integrity revalidation")

// corruptError wraps ErrCorrupt with the offending key and cause. It
// reports Corrupt() true, the trait the execution engine keys its
// cache-rejection accounting on.
type corruptError struct {
	key   string
	cause error
}

func (e *corruptError) Error() string {
	return fmt.Sprintf("store: entry %s corrupt: %v", shortKey(e.key), e.cause)
}
func (e *corruptError) Unwrap() error { return ErrCorrupt }

// Corrupt marks the error as an integrity failure (as opposed to an I/O
// failure), so callers can count rejections without string matching.
func (e *corruptError) Corrupt() bool { return true }

// Options configures a store.
type Options struct {
	// MaxBytes bounds the store's total payload size; when an insert
	// pushes past it, least-recently-used entries are evicted until the
	// store fits again. 0 means unbounded.
	MaxBytes int64
	// Metrics is the registry the store's counters live on (store.hits,
	// store.misses, store.rejected, store.writes, store.write_errors,
	// store.evictions, and the store.bytes / store.entries gauges); nil
	// means a private registry.
	Metrics *obs.Registry
}

// Store is a persistent content-addressed result and trace store rooted
// at one directory. All methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*entry // "r:"+key / "t:"+key → entry
	// head..tail is the LRU order, least recently used first, linked
	// through the entries themselves.
	head, tail *entry
	totalBytes int64

	hits        *obs.Counter
	misses      *obs.Counter
	rejected    *obs.Counter
	writes      *obs.Counter
	writeErrors *obs.Counter
	evictions   *obs.Counter
	bytesGauge  *obs.Gauge
	countGauge  *obs.Gauge
}

// entry is one indexed file: its identity, size, and LRU links.
type entry struct {
	id         string // "r:"+key or "t:"+key
	size       int64
	prev, next *entry
}

const (
	resultDir = "res"
	traceDir  = "trc"
	resultExt = ".json"
	traceExt  = ".dstr"
)

// Open opens (creating if needed) the store rooted at dir, sweeps temp
// files left by crashed writers, and indexes the existing entries in
// modification-time order, so the LRU starts from the on-disk access
// history. Opening the same directory from several processes is
// supported; see the package comment for the sharing contract.
func Open(dir string, opts Options) (*Store, error) {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Store{
		dir:         dir,
		maxBytes:    opts.MaxBytes,
		entries:     make(map[string]*entry),
		hits:        reg.Counter("store.hits"),
		misses:      reg.Counter("store.misses"),
		rejected:    reg.Counter("store.rejected"),
		writes:      reg.Counter("store.writes"),
		writeErrors: reg.Counter("store.write_errors"),
		evictions:   reg.Counter("store.evictions"),
		bytesGauge:  reg.Gauge("store.bytes"),
		countGauge:  reg.Gauge("store.entries"),
	}
	for _, sub := range []string{resultDir, traceDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// scan walks the store directory, removing stale temp files and indexing
// complete entries oldest-first, so pre-existing files are first in line
// for LRU eviction until they are touched.
func (s *Store) scan() error {
	type found struct {
		id    string
		size  int64
		mtime time.Time
	}
	var all []found
	for _, sub := range []struct{ dir, ext, prefix string }{
		{resultDir, resultExt, "r:"},
		{traceDir, traceExt, "t:"},
	} {
		root := filepath.Join(s.dir, sub.dir)
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			name := d.Name()
			if strings.Contains(name, ".tmp") {
				// A crashed writer's leftover: unreferenced, possibly torn.
				// But only remove it once it is old enough that no live
				// writer can still own it — another process sharing this
				// directory holds its temp for milliseconds between create
				// and rename, and sweeping a live temp would make that
				// rename fail under the writer.
				if info, err := d.Info(); err == nil && time.Since(info.ModTime()) >= staleTempAge {
					os.Remove(path)
				}
				return nil
			}
			if !strings.HasSuffix(name, sub.ext) {
				return nil
			}
			info, err := d.Info()
			if err != nil {
				return nil // raced with a concurrent eviction
			}
			key := strings.TrimSuffix(name, sub.ext)
			all = append(all, found{id: sub.prefix + key, size: info.Size(), mtime: info.ModTime()})
			return nil
		})
		if err != nil {
			return fmt.Errorf("store: scan: %w", err)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, f := range all {
		s.indexLocked(f.id, f.size)
	}
	return nil
}

// pathFor maps an entry id to its file path.
func (s *Store) pathFor(id string) string {
	key := id[2:]
	fan := "xx"
	if len(key) >= 2 {
		fan = key[:2]
	}
	if id[0] == 'r' {
		return filepath.Join(s.dir, resultDir, fan, key+resultExt)
	}
	return filepath.Join(s.dir, traceDir, fan, key+traceExt)
}

func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// --- LRU index (all under s.mu) ---

// indexLocked inserts or refreshes id as most recently used.
func (s *Store) indexLocked(id string, size int64) {
	if e, ok := s.entries[id]; ok {
		s.totalBytes += size - e.size
		e.size = size
		s.unlinkLocked(e)
		s.pushLocked(e)
	} else {
		e := &entry{id: id, size: size}
		s.entries[id] = e
		s.totalBytes += size
		s.pushLocked(e)
	}
	s.publishLocked()
}

// touchLocked moves id to most recently used, if indexed.
func (s *Store) touchLocked(id string) {
	if e, ok := s.entries[id]; ok {
		s.unlinkLocked(e)
		s.pushLocked(e)
	}
}

// dropLocked removes id from the index without touching the disk.
func (s *Store) dropLocked(id string) {
	if e, ok := s.entries[id]; ok {
		s.unlinkLocked(e)
		delete(s.entries, id)
		s.totalBytes -= e.size
		s.publishLocked()
	}
}

func (s *Store) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if s.head == e {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if s.tail == e {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *Store) pushLocked(e *entry) {
	e.prev = s.tail
	if s.tail != nil {
		s.tail.next = e
	}
	s.tail = e
	if s.head == nil {
		s.head = e
	}
}

func (s *Store) publishLocked() {
	s.bytesGauge.Set(s.totalBytes)
	s.countGauge.Set(int64(len(s.entries)))
}

// evictOverflowLocked removes least-recently-used entries until the store
// fits its byte bound, returning the file paths to delete (deleted by the
// caller outside the lock).
func (s *Store) evictOverflowLocked() []string {
	if s.maxBytes <= 0 {
		return nil
	}
	var paths []string
	for s.totalBytes > s.maxBytes && s.head != nil {
		e := s.head
		s.unlinkLocked(e)
		delete(s.entries, e.id)
		s.totalBytes -= e.size
		paths = append(paths, s.pathFor(e.id))
		s.evictions.Inc()
	}
	if len(paths) > 0 {
		s.publishLocked()
	}
	return paths
}

// evict removes one entry from index and disk — the corrupt-load path.
func (s *Store) evict(id string) {
	s.mu.Lock()
	s.dropLocked(id)
	s.mu.Unlock()
	os.Remove(s.pathFor(id))
}

// --- results ---

// resultEnvelope is the JSON shape of one stored result. The fingerprint
// is hex-encoded so the envelope survives JSON processors that round
// 64-bit integers through float64.
type resultEnvelope struct {
	Schema      int         `json:"schema"`
	Key         string      `json:"key"`
	Fingerprint string      `json:"fingerprint"`
	Written     time.Time   `json:"written"`
	Result      *sim.Result `json:"result"`
}

// HasResult reports whether a result is stored under key, consulting the
// disk when the index misses (another process may have written it after
// this store opened). It never reads content, so a positive answer means
// "present", not "valid" — a later Load still revalidates.
func (s *Store) HasResult(key string) bool { return s.has("r:" + key) }

// HasTrace is HasResult for the trace namespace.
func (s *Store) HasTrace(key string) bool { return s.has("t:" + key) }

func (s *Store) has(id string) bool {
	s.mu.Lock()
	_, ok := s.entries[id]
	s.mu.Unlock()
	if ok {
		return true
	}
	info, err := os.Stat(s.pathFor(id))
	if err != nil {
		return false
	}
	s.mu.Lock()
	s.indexLocked(id, info.Size())
	s.mu.Unlock()
	return true
}

// LoadResult loads the result stored under key. ok is false on a clean
// miss. A non-nil error wrapping ErrCorrupt means the entry existed but
// failed revalidation and has been evicted; other errors are I/O
// failures.
func (s *Store) LoadResult(key string) (*sim.Result, bool, error) {
	id := "r:" + key
	data, ok, err := s.read(id)
	if !ok || err != nil {
		return nil, false, err
	}
	var env resultEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, false, s.reject(id, fmt.Errorf("decode: %w", err))
	}
	if env.Schema != SchemaVersion {
		return nil, false, s.reject(id, fmt.Errorf("schema %d, want %d", env.Schema, SchemaVersion))
	}
	if env.Key != key {
		return nil, false, s.reject(id, fmt.Errorf("envelope names key %s", shortKey(env.Key)))
	}
	want, err := strconv.ParseUint(env.Fingerprint, 0, 64)
	if err != nil || env.Result == nil {
		return nil, false, s.reject(id, fmt.Errorf("bad envelope"))
	}
	if got := env.Result.Fingerprint(); got != want {
		return nil, false, s.reject(id, fmt.Errorf("fingerprint %#x, stamped %#x", got, want))
	}
	s.hit(id)
	return env.Result, true, nil
}

// StoreResult persists r under key with the given fingerprint stamp. The
// stamp is normally r.Fingerprint(); fault injection may poison it, in
// which case every later load rejects the entry and the caller
// recomputes — the durable tier degrades to a recompute, never to
// serving bad data.
func (s *Store) StoreResult(key string, r *sim.Result, fingerprint uint64) error {
	env := resultEnvelope{
		Schema:      SchemaVersion,
		Key:         key,
		Fingerprint: "0x" + strconv.FormatUint(fingerprint, 16),
		Written:     time.Now().UTC(),
		Result:      r,
	}
	data, err := json.Marshal(&env)
	if err != nil {
		s.writeErrors.Inc()
		return fmt.Errorf("store: encode result %s: %w", shortKey(key), err)
	}
	return s.write("r:"+key, data)
}

// --- traces ---

// Trace files carry a small binary header before the trace codec stream:
//
//	magic "DSST" | version u8 | fingerprint u64 LE |
//	key len uvarint + key bytes | trace.WriteBinary payload
const traceMagic = "DSST"

// LoadTrace loads the trace stored under key; semantics match LoadResult.
func (s *Store) LoadTrace(key string) (*trace.Trace, bool, error) {
	id := "t:" + key
	data, ok, err := s.read(id)
	if !ok || err != nil {
		return nil, false, err
	}
	if len(data) < len(traceMagic)+1+8 || string(data[:4]) != traceMagic {
		return nil, false, s.reject(id, fmt.Errorf("bad trace header"))
	}
	if data[4] != SchemaVersion {
		return nil, false, s.reject(id, fmt.Errorf("trace schema %d, want %d", data[4], SchemaVersion))
	}
	want := binary.LittleEndian.Uint64(data[5:13])
	rest := data[13:]
	keyLen, n := binary.Uvarint(rest)
	if n <= 0 || keyLen > uint64(len(rest)-n) {
		return nil, false, s.reject(id, fmt.Errorf("bad trace header"))
	}
	if string(rest[n:n+int(keyLen)]) != key {
		return nil, false, s.reject(id, fmt.Errorf("envelope names another key"))
	}
	t, err := trace.ReadBinary(bytes.NewReader(rest[n+int(keyLen):]))
	if err != nil {
		return nil, false, s.reject(id, fmt.Errorf("decode: %w", err))
	}
	if got := t.Fingerprint(); got != want {
		return nil, false, s.reject(id, fmt.Errorf("fingerprint %#x, stamped %#x", got, want))
	}
	s.hit(id)
	return t, true, nil
}

// StoreTrace persists t under key with the given fingerprint stamp.
func (s *Store) StoreTrace(key string, t *trace.Trace, fingerprint uint64) error {
	var b bytes.Buffer
	b.WriteString(traceMagic)
	b.WriteByte(SchemaVersion)
	var hdr [8 + binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint64(hdr[:8], fingerprint)
	n := binary.PutUvarint(hdr[8:], uint64(len(key)))
	b.Write(hdr[:8+n])
	b.WriteString(key)
	if err := trace.WriteBinary(&b, t); err != nil {
		s.writeErrors.Inc()
		return fmt.Errorf("store: encode trace %s: %w", shortKey(key), err)
	}
	return s.write("t:"+key, b.Bytes())
}

// --- shared read/write machinery ---

// read returns the entry's bytes; ok is false on a clean miss (also
// repairing a stale index entry whose file another process evicted).
func (s *Store) read(id string) ([]byte, bool, error) {
	data, err := os.ReadFile(s.pathFor(id))
	if err != nil {
		s.mu.Lock()
		s.dropLocked(id)
		s.mu.Unlock()
		s.misses.Inc()
		if errors.Is(err, fs.ErrNotExist) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("store: read %s: %w", shortKey(id[2:]), err)
	}
	return data, true, nil
}

// hit records a validated load: the entry becomes most recently used.
func (s *Store) hit(id string) {
	s.hits.Inc()
	s.mu.Lock()
	if _, ok := s.entries[id]; !ok {
		// Found on disk but not yet indexed (written by another
		// process); adopt it so eviction accounting sees it.
		if info, err := os.Stat(s.pathFor(id)); err == nil {
			s.indexLocked(id, info.Size())
		}
	} else {
		s.touchLocked(id)
	}
	s.mu.Unlock()
}

// reject evicts a corrupt entry and returns the corruption error.
func (s *Store) reject(id string, cause error) error {
	s.rejected.Inc()
	s.evict(id)
	return &corruptError{key: id[2:], cause: cause}
}

// write atomically publishes data as the entry's file: temp file in the
// same directory, fsync, rename. Concurrent writers of one key are
// harmless — the key is a content address, so both rename identical
// payloads into place.
func (s *Store) write(id string, data []byte) error {
	path := s.pathFor(id)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.writeErrors.Inc()
		return fmt.Errorf("store: write %s: %w", shortKey(id[2:]), err)
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		s.writeErrors.Inc()
		return fmt.Errorf("store: write %s: %w", shortKey(id[2:]), err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		s.writeErrors.Inc()
		return fmt.Errorf("store: write %s: %w", shortKey(id[2:]), werr)
	}
	s.writes.Inc()
	s.mu.Lock()
	s.indexLocked(id, int64(len(data)))
	doomed := s.evictOverflowLocked()
	s.mu.Unlock()
	for _, p := range doomed {
		os.Remove(p)
	}
	return nil
}

// Stats is a snapshot of the store's population and lifetime counters.
type Stats struct {
	Dir      string `json:"dir"`
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
	MaxBytes int64  `json:"max_bytes,omitempty"`

	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Rejected    int64 `json:"rejected"`
	Writes      int64 `json:"writes"`
	WriteErrors int64 `json:"write_errors"`
	Evictions   int64 `json:"evictions"`
}

// Stats returns a snapshot of the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.entries), s.totalBytes
	s.mu.Unlock()
	return Stats{
		Dir:         s.dir,
		Entries:     entries,
		Bytes:       bytes,
		MaxBytes:    s.maxBytes,
		Hits:        s.hits.Value(),
		Misses:      s.misses.Value(),
		Rejected:    s.rejected.Value(),
		Writes:      s.writes.Value(),
		WriteErrors: s.writeErrors.Value(),
		Evictions:   s.evictions.Value(),
	}
}
