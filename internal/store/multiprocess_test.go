package store

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"testing"

	"dirsim/internal/sim"
)

// Multi-process sharing test: several OS processes race Put/Get/evict on
// one store directory. The store's contract under contention is that a
// reader sees either a miss or a complete, fingerprint-valid entry —
// never torn bytes — because writes land via fsync + rename and loads
// revalidate content fingerprints. The test re-execs its own binary as
// helper processes (the standard Go pattern for multi-process tests),
// each churning the same keyset with a byte bound small enough to force
// continuous LRU eviction, so loads race writers, evictors, and other
// processes' renames the whole time.

const (
	mpHelperEnv = "DIRSIM_STORE_MP_HELPER"
	mpDirEnv    = "DIRSIM_STORE_MP_DIR"
	mpSeedEnv   = "DIRSIM_STORE_MP_SEED"
	mpMaxEnv    = "DIRSIM_STORE_MP_MAXBYTES"
	mpKeys      = 4
	mpIters     = 150
)

// mpResults builds the canonical keyset: every process (parent and
// helpers) recomputes the same deterministic simulations, so any load
// can be checked for torn reads by deep comparison without shipping
// expected values between processes.
func mpResults(t *testing.T) map[string]*canonical {
	t.Helper()
	out := make(map[string]*canonical, mpKeys)
	for i := 0; i < mpKeys; i++ {
		r := testResult(t, "Dir1NB", uint64(100+i))
		out[fmt.Sprintf("mpkey%02d", i)] = &canonical{res: r, fp: r.Fingerprint()}
	}
	return out
}

type canonical struct {
	res *sim.Result
	fp  uint64
}

// churn is the shared workload: store and load the keyset over and over,
// in a per-process rotation so processes collide on different keys at
// different times, asserting every hit is bit-identical to the canonical
// value.
func churn(t *testing.T, s *Store, seed int, keys map[string]*canonical) {
	t.Helper()
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	// Deterministic per-process rotation; no shared clock, no randomness.
	for i := 0; i < mpIters; i++ {
		k := names[(i+seed)%len(names)]
		c := keys[k]
		if i%2 == 0 {
			if err := s.StoreResult(k, c.res, c.fp); err != nil {
				t.Fatalf("iter %d: StoreResult(%s): %v", i, k, err)
			}
		}
		got, ok, err := s.LoadResult(k)
		if err != nil {
			t.Fatalf("iter %d: LoadResult(%s): %v", i, k, err)
		}
		if ok && !reflect.DeepEqual(got, c.res) {
			t.Fatalf("iter %d: torn read on %s: loaded value differs from canonical", i, k)
		}
	}
}

// TestStoreMultiProcessHelper is the re-exec target; it only runs inside
// a helper process launched by TestStoreMultiProcessSharing.
func TestStoreMultiProcessHelper(t *testing.T) {
	if os.Getenv(mpHelperEnv) == "" {
		t.Skip("helper: run via TestStoreMultiProcessSharing")
	}
	var maxBytes int64
	fmt.Sscanf(os.Getenv(mpMaxEnv), "%d", &maxBytes)
	var seed int
	fmt.Sscanf(os.Getenv(mpSeedEnv), "%d", &seed)
	s := open(t, os.Getenv(mpDirEnv), Options{MaxBytes: maxBytes})
	churn(t, s, seed, mpResults(t))
}

// TestStoreMultiProcessSharing races two helper processes plus this one
// on a single store directory sized to evict constantly, then checks
// integrity is still enforced afterwards: a torn (truncated) entry and a
// flipped byte are both rejected by revalidation, evicted, and reported
// as corrupt — never served.
func TestStoreMultiProcessSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	keys := mpResults(t)
	dir := t.TempDir()

	// Size the bound off the real payloads: roughly half the keyset
	// fits, so every churn cycle evicts.
	sizer := open(t, t.TempDir(), Options{})
	var total int64
	for k, c := range keys {
		if err := sizer.StoreResult(k, c.res, c.fp); err != nil {
			t.Fatal(err)
		}
	}
	total = sizer.Stats().Bytes
	maxBytes := total/2 + 1

	procs := make([]*exec.Cmd, 0, 2)
	logs := make([]*bytes.Buffer, 0, 2)
	for i := 0; i < 2; i++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestStoreMultiProcessHelper$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			mpHelperEnv+"=1",
			mpDirEnv+"="+dir,
			fmt.Sprintf("%s=%d", mpSeedEnv, i+1),
			fmt.Sprintf("%s=%d", mpMaxEnv, maxBytes),
		)
		buf := &bytes.Buffer{}
		cmd.Stdout, cmd.Stderr = buf, buf
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		procs = append(procs, cmd)
		logs = append(logs, buf)
	}

	// The parent is the third racing process.
	s := open(t, dir, Options{MaxBytes: maxBytes})
	churn(t, s, 0, keys)

	for i, cmd := range procs {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("helper %d failed: %v\n%s", i, err, logs[i].String())
		}
	}

	// Integrity after the dust settles: make sure one entry is present,
	// then damage it on disk both ways a real crash or scribbler could.
	var key string
	var c *canonical
	for key, c = range keys {
		break
	}
	if err := s.StoreResult(key, c.res, c.fp); err != nil {
		t.Fatal(err)
	}
	path := s.pathFor("r:" + key)

	// Torn write: a half-length file must read as corrupt, not as data.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.LoadResult(key); ok || err == nil {
		t.Errorf("truncated entry served: ok=%v err=%v", ok, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("truncated entry not evicted from disk")
	}

	// Flipped byte: decodes fine, but the fingerprint no longer matches.
	if err := s.StoreResult(key, c.res, c.fp); err != nil {
		t.Fatal(err)
	}
	full, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), full...)
	// Flip inside the payload, away from the JSON envelope's framing.
	flipped[len(flipped)/2] ^= 0x01
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.LoadResult(key); ok {
		t.Errorf("flipped-byte entry served: err=%v", err)
	}
}
