package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/workload"
)

// testResult simulates a tiny run so stored payloads are the real thing:
// populated counts, histograms, and both paper cost models.
func testResult(t *testing.T, scheme string, seed uint64) *sim.Result {
	t.Helper()
	cfg := workload.POPSConfig(4, 4000)
	cfg.Seed = seed
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	r, err := sim.SimulateTrace(scheme, tr, sim.Options{})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return r
}

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestResultRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	r := testResult(t, "Dir1B", 7)
	key := strings.Repeat("ab", 32)
	if _, ok, err := s.LoadResult(key); ok || err != nil {
		t.Fatalf("load before store: ok=%v err=%v", ok, err)
	}
	if err := s.StoreResult(key, r, r.Fingerprint()); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	got, ok, err := s.LoadResult(key)
	if !ok || err != nil {
		t.Fatalf("LoadResult: ok=%v err=%v", ok, err)
	}
	if got.Fingerprint() != r.Fingerprint() {
		t.Fatalf("fingerprint changed across the disk round trip: %#x != %#x",
			got.Fingerprint(), r.Fingerprint())
	}
	if got.Scheme != r.Scheme || got.Counts != r.Counts {
		t.Fatalf("decoded result differs: %+v vs %+v", got.Counts, r.Counts)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	tr, err := workload.Generate(workload.THORConfig(4, 3000))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	key := strings.Repeat("cd", 32)
	if err := s.StoreTrace(key, tr, tr.Fingerprint()); err != nil {
		t.Fatalf("StoreTrace: %v", err)
	}
	got, ok, err := s.LoadTrace(key)
	if !ok || err != nil {
		t.Fatalf("LoadTrace: ok=%v err=%v", ok, err)
	}
	if got.Fingerprint() != tr.Fingerprint() {
		t.Fatalf("trace fingerprint changed across the disk round trip")
	}
}

// TestCorruptResultRejected flips one byte of a stored result and asserts
// the load rejects it as corrupt, evicts the file, and counts the
// rejection — the store's core promise: degrade to a recompute, never
// serve bad data.
func TestCorruptResultRejected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	r := testResult(t, "Dir0B", 9)
	key := strings.Repeat("ef", 32)
	if err := s.StoreResult(key, r, r.Fingerprint()); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	path := filepath.Join(dir, "res", key[:2], key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read stored file: %v", err)
	}
	// Flip a digit inside a counted field so the payload decodes but the
	// content no longer matches the stamp.
	i := strings.Index(string(data), `"Total":`) + len(`"Total":`)
	if data[i] == '9' {
		data[i] = '1'
	} else {
		data[i]++
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt file: %v", err)
	}
	_, ok, err := s.LoadResult(key)
	if ok {
		t.Fatalf("corrupted entry served")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	var c interface{ Corrupt() bool }
	if !errors.As(err, &c) || !c.Corrupt() {
		t.Fatalf("corruption error does not report Corrupt(): %v", err)
	}
	if _, statErr := os.Stat(path); !errors.Is(statErr, os.ErrNotExist) {
		t.Fatalf("corrupt file not evicted: %v", statErr)
	}
	if st := s.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Fatalf("stats after rejection: %+v", st)
	}
	// A second load is a clean miss — the eviction is complete.
	if _, ok, err := s.LoadResult(key); ok || err != nil {
		t.Fatalf("load after eviction: ok=%v err=%v", ok, err)
	}
}

// TestUndecodableResultRejected corrupts the JSON syntax itself.
func TestUndecodableResultRejected(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, Options{})
	r := testResult(t, "Dir1NB", 3)
	key := strings.Repeat("aa", 32)
	if err := s.StoreResult(key, r, r.Fingerprint()); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	path := filepath.Join(dir, "res", key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"key":"`+key+`","garbage`), 0o644); err != nil {
		t.Fatalf("corrupt file: %v", err)
	}
	if _, ok, err := s.LoadResult(key); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt on undecodable entry, got ok=%v err=%v", ok, err)
	}
}

// TestPoisonedStampRejected stores with a deliberately wrong stamp — the
// shape of the engine's fault-injected poisoned cache stores.
func TestPoisonedStampRejected(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	r := testResult(t, "Dragon", 5)
	key := strings.Repeat("bb", 32)
	if err := s.StoreResult(key, r, ^r.Fingerprint()); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	if _, ok, err := s.LoadResult(key); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("poisoned stamp not rejected: ok=%v err=%v", ok, err)
	}
}

// TestReopenIndexesExisting writes through one handle and reads through a
// fresh one — the warm-start path.
func TestReopenIndexesExisting(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, Options{})
	r := testResult(t, "Dir1B", 11)
	key := strings.Repeat("cc", 32)
	if err := s1.StoreResult(key, r, r.Fingerprint()); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	s2 := open(t, dir, Options{})
	if st := s2.Stats(); st.Entries != 1 {
		t.Fatalf("reopen did not index the entry: %+v", st)
	}
	got, ok, err := s2.LoadResult(key)
	if !ok || err != nil || got.Fingerprint() != r.Fingerprint() {
		t.Fatalf("reopen load: ok=%v err=%v", ok, err)
	}
}

// TestCrossProcessVisibility writes through a second handle opened on the
// same directory after the first; the first handle must still find the
// entry (index misses fall through to the disk).
func TestCrossProcessVisibility(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{})
	b := open(t, dir, Options{})
	r := testResult(t, "Dir0B", 13)
	key := strings.Repeat("dd", 32)
	if err := b.StoreResult(key, r, r.Fingerprint()); err != nil {
		t.Fatalf("StoreResult: %v", err)
	}
	if !a.HasResult(key) {
		t.Fatalf("HasResult missed an entry written by another handle")
	}
	if _, ok, err := a.LoadResult(key); !ok || err != nil {
		t.Fatalf("LoadResult across handles: ok=%v err=%v", ok, err)
	}
}

// TestOpenSweepsTempFiles plants two temp files — one stale (a crashed
// writer's leftover, mtime pushed into the past) and one fresh (a live
// writer in another process, mid-rename) — and asserts Open removes only
// the stale one and indexes neither as an entry.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "res", "ee")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(sub, strings.Repeat("ee", 32)+".json.tmp12345")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	fresh := filepath.Join(sub, strings.Repeat("ef", 32)+".json.tmp67890")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, dir, Options{})
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stale temp file survived Open")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp file swept — Open yanked a live writer's rename source: %v", err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("temp file was indexed: %+v", st)
	}
}

// TestLRUEviction bounds the store and asserts the least recently used
// entries are the ones evicted.
func TestLRUEviction(t *testing.T) {
	s := open(t, t.TempDir(), Options{MaxBytes: 1})
	// MaxBytes 1 forces every insert to evict everything older.
	r := testResult(t, "Dir1B", 17)
	k1 := strings.Repeat("01", 32)
	k2 := strings.Repeat("02", 32)
	if err := s.StoreResult(k1, r, r.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if err := s.StoreResult(k2, r, r.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 1-byte bound: %+v", st)
	}
	if s.HasResult(k1) {
		t.Fatalf("least recently used entry survived eviction")
	}
}

// TestLRUOrderRespectsAccess stores three entries under a bound that fits
// two, touches the oldest, and asserts the untouched middle one is the
// eviction victim.
func TestLRUOrderRespectsAccess(t *testing.T) {
	r := testResult(t, "Dir1B", 19)
	// Size one entry to calibrate the bound.
	probe := open(t, t.TempDir(), Options{})
	if err := probe.StoreResult(strings.Repeat("ff", 32), r, r.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	size := probe.Stats().Bytes
	s := open(t, t.TempDir(), Options{MaxBytes: 2*size + size/2})
	k := func(i int) string { return strings.Repeat(fmt.Sprintf("%02x", 16+i), 32) }
	for i := 0; i < 2; i++ {
		if err := s.StoreResult(k(i), r, r.Fingerprint()); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, _ := s.LoadResult(k(0)); !ok { // touch k0: k1 becomes LRU
		t.Fatal("touch load missed")
	}
	if err := s.StoreResult(k(2), r, r.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if s.HasResult(k(1)) {
		t.Fatalf("LRU victim k1 survived")
	}
	if !s.HasResult(k(0)) || !s.HasResult(k(2)) {
		t.Fatalf("recently used entries evicted")
	}
}

// TestConcurrentStoreLoad hammers one store from many goroutines,
// including same-key write races — the content-addressed atomic-rename
// contract under -race.
func TestConcurrentStoreLoad(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	r := testResult(t, "Dir1B", 23)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				key := strings.Repeat(fmt.Sprintf("%02x", 32+i%5), 32)
				if err := s.StoreResult(key, r, r.Fingerprint()); err != nil {
					t.Errorf("goroutine %d: store: %v", g, err)
					return
				}
				if got, ok, err := s.LoadResult(key); err != nil || (ok && got.Fingerprint() != r.Fingerprint()) {
					t.Errorf("goroutine %d: load: ok=%v err=%v", g, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 5 {
		t.Fatalf("want 5 distinct entries, got %+v", st)
	}
}

// TestStatsOnSharedRegistry asserts the store publishes its counters on
// the caller's registry under the documented names.
func TestStatsOnSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s := open(t, t.TempDir(), Options{Metrics: reg})
	r := testResult(t, "Dir1B", 29)
	key := strings.Repeat("09", 32)
	if err := s.StoreResult(key, r, r.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.LoadResult(key); !ok {
		t.Fatal("load missed")
	}
	snap := reg.Snapshot()
	if snap.Counters["store.writes"] != 1 || snap.Counters["store.hits"] != 1 {
		t.Fatalf("registry counters: %+v", snap.Counters)
	}
	if snap.Gauges["store.entries"] != 1 || snap.Gauges["store.bytes"] <= 0 {
		t.Fatalf("registry gauges: %+v", snap.Gauges)
	}
}
