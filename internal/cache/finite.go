package cache

import (
	"fmt"

	"dirsim/internal/trace"
)

// FiniteStats summarizes a multi-cache finite-size run over a trace,
// separated the way the paper separates costs: cold (first-touch-per-CPU)
// misses happen in an infinite cache too; capacity misses are the extra
// traffic a finite cache adds, which the first-order model charges on top
// of the coherence cost measured with infinite caches.
type FiniteStats struct {
	Config Config
	CPUs   int

	DataRefs       int64
	DataMisses     int64 // all finite-cache data misses
	ColdMisses     int64 // first touch of a block by that CPU
	CapacityMisses int64 // misses an infinite cache would not have

	InstrRefs   int64
	InstrMisses int64
}

// DataMissRate returns finite-cache data misses per data reference.
func (s FiniteStats) DataMissRate() float64 {
	if s.DataRefs == 0 {
		return 0
	}
	return float64(s.DataMisses) / float64(s.DataRefs)
}

// ExtraMissesPerRef returns capacity misses per total (instr+data)
// reference — the quantity the first-order model multiplies by the memory
// access cost.
func (s FiniteStats) ExtraMissesPerRef() float64 {
	total := s.DataRefs + s.InstrRefs
	if total == 0 {
		return 0
	}
	return float64(s.CapacityMisses) / float64(total)
}

// String renders a one-line summary.
func (s FiniteStats) String() string {
	return fmt.Sprintf("cache %dKB/%d-way x%d cpus: data miss %.3f%% (cold %.3f%%, capacity %.3f%%)",
		s.Config.SizeBytes/1024, s.Config.Assoc, s.CPUs,
		100*s.DataMissRate(),
		100*float64(s.ColdMisses)/float64(max64(s.DataRefs, 1)),
		100*float64(s.CapacityMisses)/float64(max64(s.DataRefs, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// SimulateFinite runs one private finite cache per CPU over the trace
// (coherence ignored — this measures pure size effects, per the paper's
// first-order model). Instruction and data references use separate caches
// of the same configuration, mirroring the paper's exclusion of
// instruction traffic from the data results.
func SimulateFinite(t *trace.Trace, cfg Config) (FiniteStats, error) {
	if err := cfg.Validate(); err != nil {
		return FiniteStats{}, err
	}
	stats := FiniteStats{Config: cfg, CPUs: t.CPUs}
	data := make([]*Cache, t.CPUs)
	code := make([]*Cache, t.CPUs)
	seen := make([]map[trace.Block]struct{}, t.CPUs)
	for i := range data {
		data[i] = New(cfg)
		code[i] = New(cfg)
		seen[i] = make(map[trace.Block]struct{})
	}
	for _, r := range t.Refs {
		b := r.Block()
		switch r.Kind {
		case trace.Instr:
			stats.InstrRefs++
			if hit, _, _ := code[r.CPU].Access(b); !hit {
				stats.InstrMisses++
			}
		case trace.Read, trace.Write:
			stats.DataRefs++
			hit, _, _ := data[r.CPU].Access(b)
			if hit {
				continue
			}
			stats.DataMisses++
			if _, ok := seen[r.CPU][b]; ok {
				stats.CapacityMisses++
			} else {
				seen[r.CPU][b] = struct{}{}
				stats.ColdMisses++
			}
		}
	}
	return stats, nil
}

// FirstOrderEstimate combines an infinite-cache coherence cost (bus cycles
// per reference) with the extra finite-cache misses priced at memAccess
// cycles each — the estimation procedure the paper sketches in Section 4.
func FirstOrderEstimate(coherenceCyclesPerRef float64, s FiniteStats, memAccess float64) float64 {
	return coherenceCyclesPerRef + s.ExtraMissesPerRef()*memAccess
}
