package cache

import (
	"testing"
	"testing/quick"

	"dirsim/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 1024, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.Sets() != 32 {
		t.Errorf("Sets = %d, want 32", good.Sets())
	}
	bad := []Config{
		{SizeBytes: 1024, Assoc: 0},
		{SizeBytes: 8, Assoc: 1},          // smaller than one block
		{SizeBytes: 1000, Assoc: 1},       // not a multiple
		{SizeBytes: 3 * 16 * 2, Assoc: 2}, // 3 sets: not a power of two
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New should panic on invalid config")
		}
	}()
	New(Config{SizeBytes: 0, Assoc: 1})
}

func TestLRUExactBehaviour(t *testing.T) {
	// One set, two ways: classic LRU sequence. Blocks 0, 4, 8 all map to
	// set 0 of a 4-set direct... use a 1-set cache: 2 blocks capacity.
	c := New(Config{SizeBytes: 32, Assoc: 2}) // 1 set, 2 ways
	access := func(b trace.Block) (bool, trace.Block, bool) { return c.Access(b) }

	if hit, _, _ := access(1); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := access(2); hit {
		t.Error("cold access hit")
	}
	if hit, _, _ := access(1); !hit {
		t.Error("resident block missed")
	}
	// LRU is now 2; filling 3 must evict 2.
	hit, victim, evicted := access(3)
	if hit || !evicted || victim != 2 {
		t.Errorf("expected eviction of 2: hit=%v victim=%v evicted=%v", hit, victim, evicted)
	}
	if c.Contains(2) {
		t.Error("evicted block still resident")
	}
	if !c.Contains(1) || !c.Contains(3) {
		t.Error("resident set wrong")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{SizeBytes: 64, Assoc: 2})
	c.Access(5)
	if !c.Invalidate(5) {
		t.Error("Invalidate missed a resident block")
	}
	if c.Invalidate(5) {
		t.Error("double invalidate reported success")
	}
	if c.Contains(5) {
		t.Error("block still present after invalidate")
	}
	if hit, _, _ := c.Access(5); hit {
		t.Error("access after invalidate hit")
	}
}

func TestStatsAndMissRate(t *testing.T) {
	c := New(Config{SizeBytes: 64, Assoc: 2})
	c.Access(1)
	c.Access(1)
	c.Access(2)
	if c.Accesses != 3 || c.Hits != 1 {
		t.Errorf("accesses=%d hits=%d", c.Accesses, c.Hits)
	}
	if got := c.MissRate(); got < 0.66 || got > 0.67 {
		t.Errorf("MissRate = %v", got)
	}
	empty := New(Config{SizeBytes: 64, Assoc: 2})
	if empty.MissRate() != 0 {
		t.Error("empty cache miss rate should be 0")
	}
}

func TestResidentNeverExceedsCapacity(t *testing.T) {
	f := func(blocks []uint16, hashed bool) bool {
		c := New(Config{SizeBytes: 512, Assoc: 2, HashIndex: hashed}) // 32 blocks
		for _, b := range blocks {
			c.Access(trace.Block(b))
		}
		return c.Resident() <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAccessedBlockAlwaysResident(t *testing.T) {
	f := func(blocks []uint16) bool {
		c := New(Config{SizeBytes: 256, Assoc: 4})
		for _, b := range blocks {
			c.Access(trace.Block(b))
			if !c.Contains(trace.Block(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHashIndexSpreadsAlignedRegions(t *testing.T) {
	// Blocks that collide in the plain index (same low bits, different
	// regions) should mostly land in different sets with hashing.
	// The working set is half the cache, but eight aligned regions pile
	// eight blocks onto each plain set (four ways): constant eviction.
	plain := New(Config{SizeBytes: 32 * 1024, Assoc: 4})
	hashed := New(Config{SizeBytes: 32 * 1024, Assoc: 4, HashIndex: true})
	for round := 0; round < 8; round++ {
		for off := 0; off < 128; off++ {
			for region := 0; region < 8; region++ {
				b := trace.Block(uint64(region)<<20 | uint64(off))
				plain.Access(b)
				hashed.Access(b)
			}
		}
	}
	if plain.Evicts == 0 {
		t.Fatal("expected the plain index to thrash on aligned regions")
	}
	if hashed.Evicts*4 > plain.Evicts {
		t.Errorf("hashing did not help: plain %d evicts, hashed %d", plain.Evicts, hashed.Evicts)
	}
}

func TestMRUOrdering(t *testing.T) {
	// Re-accessing a block must protect it from the next eviction.
	c := New(Config{SizeBytes: 32, Assoc: 2}) // 1 set, 2 ways
	c.Access(1)
	c.Access(2)
	c.Access(1)                  // 1 becomes MRU
	_, victim, ev := c.Access(3) // must evict 2, not 1
	if !ev || victim != 2 {
		t.Errorf("victim = %v (evicted %v), want 2", victim, ev)
	}
}
