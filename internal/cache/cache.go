// Package cache implements a finite set-associative cache model. The
// paper's headline results use infinite caches (internal/core models those
// directly); Section 4 notes that finite-cache performance "can be
// estimated to first order by adding the costs due to the finite cache
// size". This package provides that estimate: it measures the extra
// misses a finite cache suffers beyond the infinite-cache cold misses, so
// the extension studies can add the corresponding memory traffic to any
// scheme's coherence cost.
package cache

import (
	"fmt"

	"dirsim/internal/trace"
)

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity. It must be a multiple of
	// trace.BlockBytes times Assoc.
	SizeBytes int
	// Assoc is the set associativity (1 = direct mapped).
	Assoc int
	// HashIndex selects a hashed set index (XOR-folding the high block
	// bits into the index) instead of the plain low bits. Real designs
	// use index hashing to break pathological alignments; it matters
	// here because the synthetic address-space regions are aligned to
	// large powers of two.
	HashIndex bool
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int {
	return c.SizeBytes / (trace.BlockBytes * c.Assoc)
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	if c.Assoc < 1 {
		return fmt.Errorf("cache: associativity %d < 1", c.Assoc)
	}
	if c.SizeBytes < trace.BlockBytes*c.Assoc {
		return fmt.Errorf("cache: size %d too small for associativity %d", c.SizeBytes, c.Assoc)
	}
	sets := c.Sets()
	if sets*trace.BlockBytes*c.Assoc != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of block*assoc", c.SizeBytes)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg  Config
	mask uint64
	// sets[s] holds the blocks of set s in LRU order: index 0 is the
	// most recently used.
	sets [][]trace.Block

	// Stats.
	Accesses int64
	Hits     int64
	Evicts   int64
}

// New builds a cache; it panics on an invalid configuration (callers
// validate user-supplied configurations first).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	return &Cache{
		cfg:  cfg,
		mask: uint64(sets - 1),
		sets: make([][]trace.Block, sets),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// setOf returns the set index for a block.
func (c *Cache) setOf(b trace.Block) uint64 {
	v := uint64(b)
	if c.cfg.HashIndex {
		v ^= v >> 17
		v ^= v >> 33
		v *= 0x9e3779b97f4a7c15
		v ^= v >> 29
	}
	return v & c.mask
}

// Access touches block b, filling it on a miss. It reports whether the
// access hit, and the victim evicted to make room (evicted is false when
// an empty way was available).
func (c *Cache) Access(b trace.Block) (hit bool, victim trace.Block, evicted bool) {
	c.Accesses++
	s := c.setOf(b)
	ways := c.sets[s]
	for i, blk := range ways {
		if blk == b {
			// Move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = b
			c.Hits++
			return true, 0, false
		}
	}
	if len(ways) < c.cfg.Assoc {
		ways = append(ways, 0)
		copy(ways[1:], ways)
		ways[0] = b
		c.sets[s] = ways
		return false, 0, false
	}
	victim = ways[len(ways)-1]
	copy(ways[1:], ways[:len(ways)-1])
	ways[0] = b
	c.Evicts++
	return false, victim, true
}

// Contains reports whether block b is resident (without touching LRU
// state).
func (c *Cache) Contains(b trace.Block) bool {
	for _, blk := range c.sets[c.setOf(b)] {
		if blk == b {
			return true
		}
	}
	return false
}

// Invalidate removes block b if present, reporting whether it was.
func (c *Cache) Invalidate(b trace.Block) bool {
	s := c.setOf(b)
	ways := c.sets[s]
	for i, blk := range ways {
		if blk == b {
			c.sets[s] = append(ways[:i], ways[i+1:]...)
			return true
		}
	}
	return false
}

// Resident returns the number of blocks currently cached.
func (c *Cache) Resident() int {
	n := 0
	for _, ways := range c.sets {
		n += len(ways)
	}
	return n
}

// MissRate returns misses per access (0 for an untouched cache).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Accesses-c.Hits) / float64(c.Accesses)
}
