package cache

import (
	"math"
	"strings"
	"testing"

	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

func TestSimulateFiniteColdOnly(t *testing.T) {
	// A cache big enough for the whole footprint sees only cold misses.
	tr := workload.Private(2, 64, 20_000)
	s, err := SimulateFinite(tr, Config{SizeBytes: 64 * 1024, Assoc: 2, HashIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.CapacityMisses != 0 {
		t.Errorf("big cache has %d capacity misses", s.CapacityMisses)
	}
	if s.ColdMisses == 0 || s.DataMisses != s.ColdMisses {
		t.Errorf("cold accounting wrong: %+v", s)
	}
	if s.ExtraMissesPerRef() != 0 {
		t.Error("no extra misses expected")
	}
}

func TestSimulateFiniteSmallCacheThrashes(t *testing.T) {
	// 64 blocks per CPU in a 16-block cache: heavy capacity missing.
	tr := workload.Private(2, 64, 20_000)
	s, err := SimulateFinite(tr, Config{SizeBytes: 16 * trace.BlockBytes, Assoc: 2, HashIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.CapacityMisses == 0 {
		t.Error("small cache should thrash")
	}
	if s.DataMisses != s.ColdMisses+s.CapacityMisses {
		t.Errorf("misses don't partition: %+v", s)
	}
	if s.ExtraMissesPerRef() <= 0 {
		t.Error("extra misses per ref should be positive")
	}
}

func TestSimulateFiniteMonotoneInSize(t *testing.T) {
	tr := workload.THOR(2, 60_000)
	prev := math.Inf(1)
	for _, kb := range []int{2, 8, 32, 128} {
		s, err := SimulateFinite(tr, Config{SizeBytes: kb * 1024, Assoc: 2, HashIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		if rate := s.DataMissRate(); rate > prev+0.005 {
			t.Errorf("%dKB miss rate %.4f worse than smaller cache %.4f", kb, rate, prev)
		} else {
			prev = rate
		}
	}
}

func TestSimulateFiniteRejectsBadConfig(t *testing.T) {
	tr := workload.Private(1, 8, 100)
	if _, err := SimulateFinite(tr, Config{SizeBytes: 0, Assoc: 1}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestSimulateFiniteCountsKinds(t *testing.T) {
	tr := trace.New("mini", 1)
	tr.Append(trace.Ref{Addr: 0x100, Kind: trace.Instr})
	tr.Append(trace.Ref{Addr: 0x200, Kind: trace.Read})
	tr.Append(trace.Ref{Addr: 0x200, Kind: trace.Write})
	s, err := SimulateFinite(tr, Config{SizeBytes: 1024, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.InstrRefs != 1 || s.DataRefs != 2 || s.InstrMisses != 1 || s.DataMisses != 1 {
		t.Errorf("kind accounting wrong: %+v", s)
	}
}

func TestFirstOrderEstimate(t *testing.T) {
	s := FiniteStats{DataRefs: 50, InstrRefs: 50, CapacityMisses: 10}
	// 10 extra misses per 100 refs at 5 cycles each = 0.5 cycles/ref.
	got := FirstOrderEstimate(0.05, s, 5)
	if math.Abs(got-0.55) > 1e-9 {
		t.Errorf("estimate = %v, want 0.55", got)
	}
}

func TestFiniteStatsString(t *testing.T) {
	s := FiniteStats{Config: Config{SizeBytes: 16384, Assoc: 2}, CPUs: 4, DataRefs: 100, DataMisses: 10, ColdMisses: 6, CapacityMisses: 4}
	out := s.String()
	if !strings.Contains(out, "16KB") || !strings.Contains(out, "capacity") {
		t.Errorf("String() = %q", out)
	}
}
