package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"dirsim/internal/obs"
)

func ticketExp(tenant string) *Experiment {
	return &Experiment{Tenant: tenant, fanout: obs.NewFanout(1, 1)}
}

// popAll drains the admission queue through Next, returning tenants in
// service order.
func popAll(t *testing.T, a *Admission) []string {
	t.Helper()
	var order []string
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	for a.Depth() > 0 {
		tk, ok := a.Next(ctx)
		if !ok {
			t.Fatal("Next returned early")
		}
		order = append(order, tk.exp.Tenant)
		a.Done(tk.exp.Tenant)
	}
	return order
}

func TestFCFSServesInAdmissionOrder(t *testing.T) {
	d, _ := NewDiscipline("fcfs")
	a := NewAdmission(d, 10, 0, nil)
	// Priorities are ignored: admission order rules.
	for i, pri := range []int{0, 9, 3} {
		if err := a.Submit(ticketExp(string(rune('a'+i))), pri); err != nil {
			t.Fatal(err)
		}
	}
	got := popAll(t, a)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FCFS order = %v, want %v", got, want)
		}
	}
}

func TestPriorityServesHighFirstFCFSWithin(t *testing.T) {
	d, _ := NewDiscipline("priority")
	a := NewAdmission(d, 10, 0, nil)
	subs := []struct {
		tenant string
		pri    int
	}{{"low1", 0}, {"hi1", 5}, {"low2", 0}, {"hi2", 5}, {"mid", 3}}
	for _, s := range subs {
		if err := a.Submit(ticketExp(s.tenant), s.pri); err != nil {
			t.Fatal(err)
		}
	}
	got := popAll(t, a)
	want := []string{"hi1", "hi2", "mid", "low1", "low2"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", got, want)
		}
	}
}

func TestUnknownDisciplineRejected(t *testing.T) {
	if _, err := NewDiscipline("lifo"); err == nil {
		t.Fatal("unknown discipline accepted")
	}
}

func TestAdmissionQuotaAndSaturation(t *testing.T) {
	reg := obs.NewRegistry()
	d, _ := NewDiscipline("fcfs")
	a := NewAdmission(d, 3, 2, reg)

	if err := a.Submit(ticketExp("a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ticketExp("a"), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ticketExp("a"), 0); !errors.Is(err, ErrQuota) {
		t.Fatalf("third submit err = %v, want ErrQuota", err)
	}
	// Another tenant still fits until the queue bound binds.
	if err := a.Submit(ticketExp("b"), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Submit(ticketExp("c"), 0); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over-capacity submit err = %v, want ErrSaturated", err)
	}
	if v := reg.Counter("service.admission.rejected.quota").Value(); v != 1 {
		t.Errorf("quota rejects = %d, want 1", v)
	}
	if v := reg.Counter("service.tenant.rejects.a").Value(); v != 1 {
		t.Errorf("tenant a rejects = %d, want 1", v)
	}
	if v := reg.Counter("service.admission.rejected.saturated").Value(); v != 1 {
		t.Errorf("saturation rejects = %d, want 1", v)
	}

	// Serving one of tenant a's tickets frees its quota.
	ctx := context.Background()
	tk, _ := a.Next(ctx)
	a.Done(tk.exp.Tenant)
	if err := a.Submit(ticketExp("a"), 0); err != nil {
		t.Fatalf("post-release submit: %v", err)
	}

	a.Close()
	if err := a.Submit(ticketExp("z"), 0); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-close submit err = %v, want ErrDraining", err)
	}
	a.Close() // idempotent
}

func TestNextHonorsContextCancel(t *testing.T) {
	d, _ := NewDiscipline("fcfs")
	a := NewAdmission(d, 1, 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan bool, 1)
	go func() {
		_, ok := a.Next(ctx)
		done <- ok
	}()
	cancel()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Next returned a ticket from an empty queue")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not observe context cancellation")
	}
}
