package service

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"

	"dirsim/internal/obs"
)

// Admission errors. The HTTP layer maps them to status codes: quota and
// saturation are retryable (429/503 with Retry-After), draining is
// terminal for this server instance.
var (
	// ErrQuota means the tenant already has its full quota of
	// experiments queued or running.
	ErrQuota = errors.New("service: tenant quota exceeded")
	// ErrSaturated means the admission queue is full across all tenants.
	ErrSaturated = errors.New("service: admission queue full")
	// ErrDraining means the server is shutting down and refuses new work.
	ErrDraining = errors.New("service: draining, not accepting work")
)

// Ticket is one admitted experiment waiting for (or holding) an
// execution slot.
type Ticket struct {
	exp *Experiment
	pri int    // larger runs sooner under the priority discipline
	seq uint64 // admission order; ties and FCFS run in this order
}

// Discipline is a queueing policy for admitted tickets. Implementations
// are not safe for concurrent use; Admission serializes access. The two
// provided policies — FCFS and priority — make the service's scheduling
// explicit and comparable, in the spirit of queueing-discipline studies:
// FCFS bounds waiting time variance, priority bounds important work's
// waiting time at the expense of the rest.
type Discipline interface {
	Name() string
	Push(*Ticket)
	Pop() *Ticket // nil when empty
	Len() int
}

// NewDiscipline resolves a policy by name ("fcfs" or "priority").
func NewDiscipline(name string) (Discipline, error) {
	switch name {
	case "", "fcfs":
		return &fcfs{}, nil
	case "priority":
		return &priorityQueue{}, nil
	}
	return nil, fmt.Errorf("service: unknown discipline %q (try fcfs or priority)", name)
}

// fcfs serves tickets strictly in admission order.
type fcfs struct{ q []*Ticket }

func (f *fcfs) Name() string   { return "fcfs" }
func (f *fcfs) Push(t *Ticket) { f.q = append(f.q, t) }
func (f *fcfs) Len() int       { return len(f.q) }
func (f *fcfs) Pop() *Ticket {
	if len(f.q) == 0 {
		return nil
	}
	t := f.q[0]
	f.q[0] = nil
	f.q = f.q[1:]
	return t
}

// priorityQueue serves the highest-priority ticket first, FCFS within a
// priority level (heap ordered by pri desc, then seq asc).
type priorityQueue struct{ q ticketHeap }

func (p *priorityQueue) Name() string   { return "priority" }
func (p *priorityQueue) Push(t *Ticket) { heap.Push(&p.q, t) }
func (p *priorityQueue) Len() int       { return p.q.Len() }
func (p *priorityQueue) Pop() *Ticket {
	if p.q.Len() == 0 {
		return nil
	}
	return heap.Pop(&p.q).(*Ticket)
}

type ticketHeap []*Ticket

func (h ticketHeap) Len() int { return len(h) }
func (h ticketHeap) Less(i, j int) bool {
	if h[i].pri != h[j].pri {
		return h[i].pri > h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h ticketHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *ticketHeap) Push(x any)   { *h = append(*h, x.(*Ticket)) }
func (h *ticketHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Admission is the service's bounded front door: a queue with a pluggable
// discipline, a per-tenant quota on work in the system (queued plus
// running), and rate accounting on the shared registry.
type Admission struct {
	mu       sync.Mutex
	d        Discipline
	maxQueue int
	quota    int // per-tenant queued+running; 0 means unlimited
	inUse    map[string]int
	seq      uint64
	closed   bool
	notify   chan struct{}

	depth         *obs.Gauge
	admitted      *obs.Counter
	quotaRejects  *obs.Counter
	fullRejects   *obs.Counter
	drainRejects  *obs.Counter
	tenantRejects map[string]*obs.Counter
	reg           *obs.Registry
}

// NewAdmission builds an admission controller. maxQueue bounds waiting
// tickets (not running ones); quota bounds one tenant's queued+running
// total, 0 meaning unlimited.
func NewAdmission(d Discipline, maxQueue, quota int, reg *obs.Registry) *Admission {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Admission{
		d:        d,
		maxQueue: maxQueue,
		quota:    quota,
		inUse:    make(map[string]int),
		notify:   make(chan struct{}, 1),

		depth:         reg.Gauge("service.admission.depth"),
		admitted:      reg.Counter("service.admission.admitted"),
		quotaRejects:  reg.Counter("service.admission.rejected.quota"),
		fullRejects:   reg.Counter("service.admission.rejected.saturated"),
		drainRejects:  reg.Counter("service.admission.rejected.draining"),
		tenantRejects: make(map[string]*obs.Counter),
		reg:           reg,
	}
}

// Discipline reports the active policy's name.
func (a *Admission) Discipline() string { return a.d.Name() }

// Depth reports how many tickets are waiting (not running).
func (a *Admission) Depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.d.Len()
}

// InUse reports a tenant's queued+running total.
func (a *Admission) InUse(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse[tenant]
}

// Submit admits the experiment or explains why not (ErrQuota,
// ErrSaturated, ErrDraining). On success the tenant's in-use count is
// charged until Done.
func (a *Admission) Submit(exp *Experiment, pri int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		a.drainRejects.Add(1)
		return ErrDraining
	}
	if a.quota > 0 && a.inUse[exp.Tenant] >= a.quota {
		a.quotaRejects.Add(1)
		a.tenantRejectLocked(exp.Tenant).Add(1)
		return fmt.Errorf("%w: tenant %q has %d experiments in flight (quota %d)",
			ErrQuota, exp.Tenant, a.inUse[exp.Tenant], a.quota)
	}
	if a.maxQueue > 0 && a.d.Len() >= a.maxQueue {
		a.fullRejects.Add(1)
		a.tenantRejectLocked(exp.Tenant).Add(1)
		return fmt.Errorf("%w: %d waiting", ErrSaturated, a.d.Len())
	}
	a.seq++
	a.inUse[exp.Tenant]++
	a.d.Push(&Ticket{exp: exp, pri: pri, seq: a.seq})
	a.depth.Set(int64(a.d.Len()))
	a.admitted.Add(1)
	select {
	case a.notify <- struct{}{}:
	default:
	}
	return nil
}

// tenantRejectLocked returns the per-tenant reject counter, creating it
// on first use (service.tenant.rejects.<tenant>).
func (a *Admission) tenantRejectLocked(tenant string) *obs.Counter {
	c, ok := a.tenantRejects[tenant]
	if !ok {
		c = a.reg.Counter("service.tenant.rejects." + tenant)
		a.tenantRejects[tenant] = c
	}
	return c
}

// Next blocks until a ticket is available, the controller closes (nil,
// false), or ctx is cancelled (nil, false). The caller must call Done
// with the ticket's tenant when the work finishes.
func (a *Admission) Next(ctx context.Context) (*Ticket, bool) {
	for {
		a.mu.Lock()
		t := a.d.Pop()
		closed := a.closed
		a.depth.Set(int64(a.d.Len()))
		a.mu.Unlock()
		if t != nil {
			return t, true
		}
		if closed {
			return nil, false
		}
		select {
		case <-a.notify:
		case <-ctx.Done():
			return nil, false
		}
	}
}

// Done releases the tenant's in-use charge taken by Submit.
func (a *Admission) Done(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inUse[tenant] > 0 {
		a.inUse[tenant]--
		if a.inUse[tenant] == 0 {
			delete(a.inUse, tenant)
		}
	}
}

// Close refuses further Submits and unparks waiters once the queue
// empties. Already-queued tickets are still handed out: Drain decides
// whether to run or abort them.
func (a *Admission) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	close(a.notify)
}

// Flush removes and returns every waiting ticket, for drain paths that
// abort queued work instead of running it.
func (a *Admission) Flush() []*Ticket {
	a.mu.Lock()
	defer a.mu.Unlock()
	var ts []*Ticket
	for {
		t := a.d.Pop()
		if t == nil {
			break
		}
		ts = append(ts, t)
	}
	a.depth.Set(0)
	return ts
}
