package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dirsim/internal/obs/httpmon"
	"dirsim/internal/sim"
	"dirsim/internal/store"
)

// TenantHeader carries the caller's tenant identity; requests without it
// are grouped under DefaultTenant.
const (
	TenantHeader  = "X-Tenant-ID"
	DefaultTenant = "anonymous"
)

// Register installs the service's routes on mux (typically the httpmon
// monitor mux, composing the API with /metrics, /runz and pprof). Every
// route is wrapped in httpmon.Instrument: requests get a trace context
// (minted, or adopted from the X-Dirsim-Trace header), responses echo
// the trace ID back, and per-route plus per-tenant RED metrics land on
// the service registry.
func (s *Service) Register(mux *http.ServeMux) {
	opts := httpmon.InstrumentOptions{
		Registry:      s.reg,
		TenantHeader:  TenantHeader,
		DefaultTenant: DefaultTenant,
	}
	route := func(pattern, label string, h http.HandlerFunc) {
		mux.Handle(pattern, httpmon.Instrument(label, opts, h))
	}
	route("POST /api/v1/experiments", "experiments.submit", s.handleSubmit)
	route("GET /api/v1/experiments", "experiments.list", s.handleList)
	route("GET /api/v1/experiments/{id}", "experiments.get", s.handleGet)
	route("GET /api/v1/experiments/{id}/events", "experiments.events", s.handleEvents)
	route("GET /api/v1/experiments/{id}/trace", "experiments.trace", s.handleTrace)
	route("GET /api/v1/store", "store.status", s.handleStore)
	route("GET /healthz", "healthz", s.handleHealth)
}

// errorBody is every non-2xx response's shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// ExperimentStatus is the API rendering of an experiment.
type ExperimentStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// Trace is the trace ID the experiment runs under — the submitting
	// request's trace, which every journal line and trace-export span of
	// this experiment carries. A deduplicated submission returns the
	// original experiment's trace, not the attaching request's.
	Trace     string    `json:"trace,omitempty"`
	State     State     `json:"state"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	DurMS     int64     `json:"dur_ms,omitempty"`
	Error     string    `json:"error,omitempty"`
	Specs     int       `json:"specs"`
	// Results is populated once the experiment is done (or partially,
	// on failure), one entry per expanded spec.
	Results []SpecResult `json:"results,omitempty"`
}

// SpecResult pairs one cell of the sweep with its simulation result.
type SpecResult struct {
	SpecMeta
	// Fingerprint is the result's content hash, fixed-width hex: equal
	// fingerprints mean bit-identical results wherever they were
	// computed.
	Fingerprint string      `json:"fingerprint,omitempty"`
	Result      *sim.Result `json:"result,omitempty"`
}

// status renders exp under the service lock.
func (s *Service) status(exp *Experiment, includeResults bool) ExperimentStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ExperimentStatus{
		ID:        exp.ID,
		Tenant:    exp.Tenant,
		Trace:     exp.tc.Trace,
		State:     exp.State,
		Submitted: exp.Submitted,
		Started:   exp.Started,
		Finished:  exp.Finished,
		Error:     exp.Err,
		Specs:     len(exp.specs),
	}
	if !exp.Finished.IsZero() && !exp.Started.IsZero() {
		st.DurMS = exp.Finished.Sub(exp.Started).Milliseconds()
	}
	if includeResults && (exp.State == StateDone || exp.State == StateFailed) {
		st.Results = make([]SpecResult, len(exp.meta))
		for i, m := range exp.meta {
			sr := SpecResult{SpecMeta: m}
			if i < len(exp.results) && exp.results[i] != nil {
				sr.Fingerprint = fmt.Sprintf("%016x", exp.results[i].Fingerprint())
				sr.Result = exp.results[i]
			}
			st.Results[i] = sr
		}
	}
	return st
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = DefaultTenant
	}
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	exp, created, err := s.Submit(r.Context(), tenant, spec)
	switch {
	case err == nil:
	case errors.Is(err, ErrQuota):
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	status := http.StatusAccepted
	if !created {
		// An identical sweep already exists; point the caller at it.
		status = http.StatusOK
	}
	w.Header().Set("Location", "/api/v1/experiments/"+exp.ID)
	writeJSON(w, status, s.status(exp, true))
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no experiment %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(exp, true))
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, len(s.order))
	copy(ids, s.order)
	s.mu.Unlock()
	out := make([]ExperimentStatus, 0, len(ids))
	for _, id := range ids {
		if exp, ok := s.Get(id); ok {
			out = append(out, s.status(exp, false))
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Experiments []ExperimentStatus `json:"experiments"`
	}{out})
}

// handleEvents streams the experiment's journal over Server-Sent Events:
// the retained history first, then live events until the experiment
// finishes or the client disconnects. Each journal line becomes one
// `data:` frame.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no experiment %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	sub := exp.fanout.Subscribe()
	defer sub.Cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// reportDrops tells the client, as an SSE comment, how many journal
	// lines this subscription lost to back-pressure, so a gap in the
	// stream is distinguishable from a quiet run.
	reportDrops := func() {
		if n := sub.Dropped(); n > 0 {
			fmt.Fprintf(w, ": %d events dropped\n\n", n)
			fl.Flush()
		}
	}
	for {
		select {
		case line, open := <-sub.C:
			if !open {
				reportDrops()
				fmt.Fprint(w, "event: end\ndata: {}\n\n")
				fl.Flush()
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", line)
			fl.Flush()
		case <-r.Context().Done():
			reportDrops()
			return
		}
	}
}

// handleTrace exports the experiment's execution trace as Chrome
// trace-event JSON (load it in Perfetto or chrome://tracing): the
// request root span, its admission wait, and every engine job, stream
// chunk, and store tier access the experiment caused. The export locks
// the tracer's lanes, so it is only served once the experiment has
// reached a terminal state.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	exp, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no experiment %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	state := exp.State
	s.mu.Unlock()
	if state == StateQueued || state == StateRunning {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "experiment %s is %s; trace is available once it finishes", exp.ID, state)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="`+exp.ID+`.trace.json"`)
	if err := exp.tracer.WriteJSON(w); err != nil {
		s.log.Warn("trace.export", "id", exp.ID, "error", err)
	}
}

// storeStatus is the /api/v1/store response.
type storeStatus struct {
	Enabled bool         `json:"enabled"`
	Stats   *store.Stats `json:"stats,omitempty"`
}

func (s *Service) handleStore(w http.ResponseWriter, _ *http.Request) {
	st := storeStatus{Enabled: s.st != nil}
	if s.st != nil {
		v := s.st.Stats()
		st.Stats = &v
	}
	writeJSON(w, http.StatusOK, st)
}

// healthStatus is the /healthz response.
type healthStatus struct {
	Status     string `json:"status"` // "ok" or "draining"
	UptimeSec  int64  `json:"uptime_sec"`
	Queued     int    `json:"queued"`
	Discipline string `json:"discipline"`
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h := healthStatus{
		Status:     "ok",
		UptimeSec:  int64(time.Since(s.start).Seconds()),
		Queued:     s.adm.Depth(),
		Discipline: s.adm.Discipline(),
	}
	code := http.StatusOK
	if s.Draining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}
