package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dirsim/internal/faults"
	"dirsim/internal/obs"
	"dirsim/internal/obs/httpmon"
	"dirsim/internal/store"
)

// smallSpec is a cheap two-cell sweep (one workload, one CPU count, two
// schemes) used throughout; seed varies the content so tests that need
// distinct experiments get them.
func smallSpec(seed uint64) Spec {
	return Spec{
		Schemes:   []string{"Dir0B", "Dir1NB"},
		Workloads: []WorkloadSpec{{Name: "pops", CPUs: []int{4}, Refs: 5_000, Seed: seed}},
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc
}

// startHTTP serves the service (plus monitor endpoints) from an
// httptest server.
func startHTTP(t *testing.T, svc *Service) *httptest.Server {
	t.Helper()
	mux := httpmon.NewMux(httpmon.Options{Metrics: svc.Metrics()})
	svc.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func postSpec(t *testing.T, url, tenant string, spec Spec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/api/v1/experiments", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
	return resp
}

// waitDone polls the experiment until it leaves the queued/running
// states.
func waitDone(t *testing.T, url, id string) ExperimentStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st ExperimentStatus
		getJSON(t, url+"/api/v1/experiments/"+id, &st)
		switch st.State {
		case StateDone, StateFailed, StateAborted:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("experiment %s stuck in state %q", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSubmitRunAndFetch(t *testing.T) {
	svc := newTestService(t, Config{Verify: true})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	resp, body := postSpec(t, ts.URL, "team-a", smallSpec(0))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	var st ExperimentStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Specs != 2 || st.Tenant != "team-a" {
		t.Fatalf("submit response: %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/api/v1/experiments/"+st.ID {
		t.Errorf("Location = %q", loc)
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone || len(final.Results) != 2 {
		t.Fatalf("final: state=%s results=%d err=%q", final.State, len(final.Results), final.Error)
	}
	for _, r := range final.Results {
		if r.Result == nil || r.Fingerprint == "" || len(r.Key) != 64 {
			t.Errorf("incomplete result: %+v", r.SpecMeta)
		}
		if r.Result.Counts.Total == 0 {
			t.Errorf("%s: empty result", r.Scheme)
		}
	}

	// An identical sweep from another tenant dedups: 200, same ID, no new
	// computation.
	sims := svc.Engine().Stats().SimsRun
	resp2, body2 := postSpec(t, ts.URL, "team-b", smallSpec(0))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("dedup POST status %d: %s", resp2.StatusCode, body2)
	}
	var st2 ExperimentStatus
	json.Unmarshal(body2, &st2)
	if st2.ID != st.ID {
		t.Errorf("dedup returned different experiment %s", st2.ID)
	}
	if got := svc.Engine().Stats().SimsRun; got != sims {
		t.Errorf("dedup recomputed: SimsRun %d -> %d", sims, got)
	}
}

func TestSubmitValidation(t *testing.T) {
	svc := newTestService(t, Config{})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	for name, spec := range map[string]Spec{
		"no schemes":   {Workloads: []WorkloadSpec{{Name: "pops", CPUs: []int{4}, Refs: 100}}},
		"bad scheme":   {Schemes: []string{"NoSuch"}, Workloads: []WorkloadSpec{{Name: "pops", CPUs: []int{4}, Refs: 100}}},
		"bad workload": {Schemes: []string{"Dir0B"}, Workloads: []WorkloadSpec{{Name: "nope", CPUs: []int{4}, Refs: 100}}},
		"no cpus":      {Schemes: []string{"Dir0B"}, Workloads: []WorkloadSpec{{Name: "pops", Refs: 100}}},
	} {
		resp, body := postSpec(t, ts.URL, "t", spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
		}
	}
	if resp := getJSON(t, ts.URL+"/api/v1/experiments/exp-nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing experiment status %d", resp.StatusCode)
	}
}

// TestQuotaRejectsWhileOtherTenantsProceed is the acceptance criterion:
// with a per-tenant quota of 1, a tenant's second distinct sweep is
// rejected 429 with Retry-After while another tenant's sweep is admitted
// and completes. The service is started only after admission decisions
// are made, so queue occupancy is deterministic.
func TestQuotaRejectsWhileOtherTenantsProceed(t *testing.T) {
	svc := newTestService(t, Config{Quota: 1, MaxInflight: 1})
	ts := startHTTP(t, svc)

	resp1, body1 := postSpec(t, ts.URL, "team-a", smallSpec(1))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST status %d: %s", resp1.StatusCode, body1)
	}
	var first ExperimentStatus
	json.Unmarshal(body1, &first)

	// Same tenant, different content: over quota.
	resp2, body2 := postSpec(t, ts.URL, "team-a", smallSpec(2))
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota POST status %d, want 429: %s", resp2.StatusCode, body2)
	}
	if ra := resp2.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if !strings.Contains(string(body2), "quota") {
		t.Errorf("429 body does not explain quota: %s", body2)
	}

	// A different tenant proceeds.
	resp3, body3 := postSpec(t, ts.URL, "team-b", smallSpec(3))
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("other-tenant POST status %d, want 202: %s", resp3.StatusCode, body3)
	}
	var other ExperimentStatus
	json.Unmarshal(body3, &other)

	// Both admitted experiments complete once workers start.
	svc.Start()
	defer svc.Drain(context.Background())
	if st := waitDone(t, ts.URL, first.ID); st.State != StateDone {
		t.Errorf("team-a experiment: %s (%s)", st.State, st.Error)
	}
	if st := waitDone(t, ts.URL, other.ID); st.State != StateDone {
		t.Errorf("team-b experiment: %s (%s)", st.State, st.Error)
	}

	// With the quota released, team-a can submit again.
	resp4, body4 := postSpec(t, ts.URL, "team-a", smallSpec(2))
	if resp4.StatusCode != http.StatusAccepted {
		t.Errorf("post-release POST status %d: %s", resp4.StatusCode, body4)
	}
	var again ExperimentStatus
	json.Unmarshal(body4, &again)
	waitDone(t, ts.URL, again.ID)
}

// TestQueueSaturationReturns503: when the queue bound (not the quota) is
// the binding constraint, the rejection is 503.
func TestQueueSaturationReturns503(t *testing.T) {
	svc := newTestService(t, Config{MaxQueue: 1})
	ts := startHTTP(t, svc)
	if resp, body := postSpec(t, ts.URL, "a", smallSpec(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST: %d %s", resp.StatusCode, body)
	}
	resp, _ := postSpec(t, ts.URL, "b", smallSpec(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated POST status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	svc.Start()
	svc.Drain(context.Background())
}

// TestSharedStoreServesSecondService: two services over one store
// directory — a fresh service must serve the sweep from disk,
// fingerprint-validated, bit-identical, without simulating.
func TestSharedStoreServesSecondService(t *testing.T) {
	dir := t.TempDir()
	open := func() *store.Store {
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	svc1 := newTestService(t, Config{Store: open(), Verify: true})
	svc1.Start()
	ts1 := startHTTP(t, svc1)
	_, body := postSpec(t, ts1.URL, "a", smallSpec(0))
	var st ExperimentStatus
	json.Unmarshal(body, &st)
	cold := waitDone(t, ts1.URL, st.ID)
	if cold.State != StateDone {
		t.Fatalf("cold run failed: %s", cold.Error)
	}
	svc1.Drain(context.Background())

	svc2 := newTestService(t, Config{Store: open(), Verify: true})
	svc2.Start()
	defer svc2.Drain(context.Background())
	ts2 := startHTTP(t, svc2)
	_, body2 := postSpec(t, ts2.URL, "b", smallSpec(0))
	var st2 ExperimentStatus
	json.Unmarshal(body2, &st2)
	warm := waitDone(t, ts2.URL, st2.ID)
	if warm.State != StateDone {
		t.Fatalf("warm run failed: %s", warm.Error)
	}
	if got := svc2.Engine().Stats().SimsRun; got != 0 {
		t.Errorf("warm service simulated %d times, want 0", got)
	}
	a, _ := json.Marshal(cold.Results)
	b, _ := json.Marshal(warm.Results)
	if !bytes.Equal(a, b) {
		t.Error("store-served results are not bit-identical to the cold run")
	}
}

// TestEventsStreamOverSSE: the events endpoint replays the journal and
// streams to the end frame; lifecycle and job events are present.
func TestEventsStreamOverSSE(t *testing.T) {
	svc := newTestService(t, Config{Verify: true})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	_, body := postSpec(t, ts.URL, "a", smallSpec(0))
	var st ExperimentStatus
	json.Unmarshal(body, &st)

	resp, err := http.Get(ts.URL + "/api/v1/experiments/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var events []string
	ended := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: end" {
			ended = true
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok && data != "{}" {
			var ev struct {
				Msg string `json:"msg"`
			}
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("non-JSON SSE data %q: %v", data, err)
			}
			events = append(events, ev.Msg)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !ended {
		t.Error("stream ended without the end frame")
	}
	want := map[string]bool{"experiment.queued": false, "experiment.start": false,
		"experiment.result": false, "experiment.finish": false, "job.finish": false}
	for _, ev := range events {
		if _, ok := want[ev]; ok {
			want[ev] = true
		}
	}
	for ev, seen := range want {
		if !seen {
			t.Errorf("SSE stream missing %s event (got %v)", ev, events)
		}
	}
}

// TestDrainRefusesAndFinishes: Drain aborts queued work, refuses new
// work with 503, flips /healthz, and leaves no goroutines behind.
func TestDrainRefusesAndFinishes(t *testing.T) {
	snap := faults.Goroutines()
	svc := newTestService(t, Config{})
	ts := startHTTP(t, svc)

	// Queued before Start: aborted by drain, its SSE stream closes.
	_, body := postSpec(t, ts.URL, "a", smallSpec(1))
	var st ExperimentStatus
	json.Unmarshal(body, &st)

	svc.Start()
	time.Sleep(10 * time.Millisecond) // let the worker pick it up or not — both fine
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	final := waitDone(t, ts.URL, st.ID)
	if final.State != StateDone && final.State != StateAborted {
		t.Errorf("drained experiment state %q", final.State)
	}

	resp, _ := postSpec(t, ts.URL, "a", smallSpec(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain POST status %d, want 503", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Errorf("healthz after drain: %d %q", resp.StatusCode, h.Status)
	}

	ts.Close()
	if err := snap.Leaked(5 * time.Second); err != nil {
		t.Errorf("drain leaked goroutines: %v", err)
	}
}

// TestHealthAndStoreEndpoints covers the small read-only endpoints.
func TestHealthAndStoreEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, Config{Store: st, Metrics: reg, Discipline: "priority"})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	var h struct {
		Status     string `json:"status"`
		Discipline string `json:"discipline"`
	}
	if resp := getJSON(t, ts.URL+"/healthz", &h); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
	if h.Status != "ok" || h.Discipline != "priority" {
		t.Errorf("healthz = %+v", h)
	}
	var ss storeStatus
	getJSON(t, ts.URL+"/api/v1/store", &ss)
	if !ss.Enabled || ss.Stats == nil {
		t.Errorf("store status = %+v", ss)
	}
	var list struct {
		Experiments []ExperimentStatus `json:"experiments"`
	}
	getJSON(t, ts.URL+"/api/v1/experiments", &list)
	if len(list.Experiments) != 0 {
		t.Errorf("fresh service lists %d experiments", len(list.Experiments))
	}
	// Metrics exposition includes the service family.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, want := range []string{"service_admission_depth", "store_hits", "engine_jobs_run"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}
