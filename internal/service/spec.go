package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"dirsim/internal/core"
	"dirsim/internal/engine"
	"dirsim/internal/workload"
)

// Spec is the request body of POST /api/v1/experiments: a scheme ×
// workload × CPU-count sweep in the paper's vocabulary. The cross
// product of Schemes, Workloads and each workload's CPUs expands to one
// simulation per cell.
type Spec struct {
	// Schemes names the coherence schemes to sweep, in the paper's
	// notation ("Dir0B", "Dir1NB", "WTI", ...).
	Schemes []string `json:"schemes"`
	// Workloads names the synthetic traces to drive them with.
	Workloads []WorkloadSpec `json:"workloads"`
	// Check enables the value-coherence checker on every simulation.
	Check bool `json:"check,omitempty"`
	// BlockBytes rescales the block size; 0 keeps the native size.
	BlockBytes int `json:"block_bytes,omitempty"`
	// Priority orders the experiment under the priority discipline
	// (larger runs sooner); ignored under FCFS. Not part of the
	// experiment's identity.
	Priority int `json:"priority,omitempty"`
}

// WorkloadSpec selects one of the paper's trace profiles at one or more
// machine sizes.
type WorkloadSpec struct {
	// Name is the profile: "pops", "thor" or "pero" (case-insensitive).
	Name string `json:"name"`
	// CPUs lists the machine sizes to generate the trace for.
	CPUs []int `json:"cpus"`
	// Refs is the approximate trace length in references.
	Refs int `json:"refs"`
	// Seed overrides the profile's default RNG seed when non-zero.
	Seed uint64 `json:"seed,omitempty"`
}

// maxSpecsPerExperiment caps the expansion so one request cannot occupy
// the service indefinitely.
const maxSpecsPerExperiment = 256

// profiles maps workload names to their config constructors.
var profiles = map[string]func(cpus, refs int) workload.Config{
	"pops": workload.POPSConfig,
	"thor": workload.THORConfig,
	"pero": workload.PEROConfig,
}

// ProfileNames lists the workload names Expand accepts, sorted.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SpecMeta describes one expanded simulation for API responses: enough
// to identify the cell in the sweep and its engine cache key.
type SpecMeta struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload"`
	CPUs     int    `json:"cpus"`
	Refs     int    `json:"refs"`
	Seed     uint64 `json:"seed,omitempty"`
	// Key is the full engine content hash the result is stored under.
	Key string `json:"key"`
}

// Expand validates the spec and produces the simulation list plus its
// metadata, in deterministic order (workloads, then CPUs, then schemes,
// as given). Duplicate cells collapse to one simulation.
func (s Spec) Expand() ([]engine.SimSpec, []SpecMeta, error) {
	if len(s.Schemes) == 0 {
		return nil, nil, fmt.Errorf("spec: no schemes")
	}
	if len(s.Workloads) == 0 {
		return nil, nil, fmt.Errorf("spec: no workloads")
	}
	if s.BlockBytes < 0 {
		return nil, nil, fmt.Errorf("spec: negative block_bytes")
	}
	var specs []engine.SimSpec
	var meta []SpecMeta
	seen := make(map[engine.Key]bool)
	for _, w := range s.Workloads {
		mk, ok := profiles[strings.ToLower(strings.TrimSpace(w.Name))]
		if !ok {
			return nil, nil, fmt.Errorf("spec: unknown workload %q (try %s)",
				w.Name, strings.Join(ProfileNames(), ", "))
		}
		if len(w.CPUs) == 0 {
			return nil, nil, fmt.Errorf("spec: workload %q has no cpus", w.Name)
		}
		if w.Refs < 1 {
			return nil, nil, fmt.Errorf("spec: workload %q has non-positive refs", w.Name)
		}
		for _, cpus := range w.CPUs {
			cfg := mk(cpus, w.Refs)
			if w.Seed != 0 {
				cfg.Seed = w.Seed
			}
			if err := cfg.Validate(); err != nil {
				return nil, nil, fmt.Errorf("spec: %s at %d cpus: %w", w.Name, cpus, err)
			}
			for _, scheme := range s.Schemes {
				if _, err := core.NewByName(scheme, cpus); err != nil {
					return nil, nil, fmt.Errorf("spec: %w", err)
				}
				sp := engine.SimSpec{
					Trace:      cfg,
					Scheme:     scheme,
					Check:      s.Check,
					BlockBytes: s.BlockBytes,
				}
				k := sp.Key()
				if seen[k] {
					continue
				}
				seen[k] = true
				if len(specs) >= maxSpecsPerExperiment {
					return nil, nil, fmt.Errorf("spec: expands to more than %d simulations",
						maxSpecsPerExperiment)
				}
				specs = append(specs, sp)
				meta = append(meta, SpecMeta{
					Scheme:   scheme,
					Workload: cfg.Name,
					CPUs:     cpus,
					Refs:     w.Refs,
					Seed:     w.Seed,
					Key:      engine.KeyHex(k),
				})
			}
		}
	}
	return specs, meta, nil
}

// ExperimentID derives the experiment's identity from its expanded
// content keys — tenant and priority excluded, so identical sweeps from
// different tenants dedup to one experiment and one computation.
func ExperimentID(meta []SpecMeta) string {
	keys := make([]string, len(meta))
	for i, m := range meta {
		keys[i] = m.Key
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return "exp-" + hex.EncodeToString(h.Sum(nil))[:16]
}
