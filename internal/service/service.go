// Package service is the multi-tenant experiment API: an HTTP/JSON layer
// over the simulation engine and its durable content-addressed store.
// Clients submit scheme×workload×CPU sweeps; identical sweeps — from any
// tenant, any process sharing the store directory — collapse to one
// computation, so most traffic on a warm service is cache hits. Requests
// pass admission control (bounded queue, pluggable FCFS/priority
// discipline, per-tenant in-flight quotas) and every experiment exposes
// its journal as a live SSE stream.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"dirsim/internal/engine"
	"dirsim/internal/faults"
	"dirsim/internal/obs"
	exectrace "dirsim/internal/obs/trace"
	"dirsim/internal/sim"
	"dirsim/internal/store"
)

// Config assembles a Service.
type Config struct {
	// Store is the durable result tier; nil runs memory-only.
	Store *store.Store
	// Metrics receives service, engine and admission counters; nil
	// allocates a private registry.
	Metrics *obs.Registry
	// MaxInflight is the number of experiments executed concurrently
	// (the worker pool size); 0 means 2.
	MaxInflight int
	// MaxQueue bounds experiments waiting for a worker; 0 means 64.
	MaxQueue int
	// Quota is the per-tenant cap on queued+running experiments; 0
	// means unlimited.
	Quota int
	// Discipline selects the admission queue policy: "fcfs" (default)
	// or "priority".
	Discipline string
	// SimWorkers is the engine parallelism within one experiment; 0
	// means GOMAXPROCS.
	SimWorkers int
	// Verify enables cache-integrity revalidation on the engine.
	Verify bool
	// Faults, when non-nil, injects deterministic failures (tests).
	Faults *faults.Injector
	// Remote, when non-nil, is the distributed execution hook: the
	// engine offers every simulation to it before running locally
	// (typically a *dist.Coordinator sharding the sweep across pull
	// workers), and degrades to local execution when it is unavailable.
	Remote engine.Remote
	// EventHistory is the per-experiment journal replay depth for SSE
	// subscribers arriving mid-run; 0 means 256 lines.
	EventHistory int
	// Log receives operational messages; nil discards them.
	Log *slog.Logger
}

// State is an experiment's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	StateAborted State = "aborted" // drained before it could run
)

// Experiment is one submitted sweep and, eventually, its results.
// Fields are guarded by the owning Service's mu except where noted.
type Experiment struct {
	ID       string
	Tenant   string // tenant that first submitted it
	Priority int
	Spec     Spec

	State     State
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Err       string

	specs   []engine.SimSpec
	meta    []SpecMeta
	results []*sim.Result // parallel to specs; nil entries failed

	// fanout carries the experiment's journal lines to SSE subscribers;
	// journal writes into it. Both are safe for concurrent use.
	fanout  *obs.Fanout
	journal *obs.Journal

	// tc is the trace identity of the request that created the
	// experiment; every journal line carries it and the execution trace
	// parents under it. tracer records the experiment's own timeline
	// (admission wait, engine jobs, store traffic), exported by
	// GET /api/v1/experiments/{id}/trace once the experiment finishes.
	tc     obs.TraceContext
	tracer *exectrace.Tracer
}

// Trace returns the experiment's originating trace ID.
func (e *Experiment) Trace() string { return e.tc.Trace }

// Service executes experiments against a shared engine and serves their
// lifecycle over HTTP. Create with New, start with Start, stop with
// Drain.
type Service struct {
	cfg   Config
	reg   *obs.Registry
	eng   *engine.Engine
	adm   *Admission
	st    *store.Store
	log   *slog.Logger
	start time.Time

	mu       sync.Mutex
	exps     map[string]*Experiment
	order    []string // submission order, for listing
	draining bool

	router *router

	workers sync.WaitGroup
	runCtx  context.Context
	runStop context.CancelFunc

	submitted *obs.Counter
	deduped   *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	running   *obs.Gauge
	admWait   *obs.Histogram
	fanDrops  *obs.Counter
}

// New builds a Service. Call Start to begin executing work.
func New(cfg Config) (*Service, error) {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.SimWorkers <= 0 {
		cfg.SimWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.EventHistory <= 0 {
		cfg.EventHistory = 256
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	d, err := NewDiscipline(cfg.Discipline)
	if err != nil {
		return nil, err
	}
	log := cfg.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	rt := newRouter()
	var tier engine.Tier
	if cfg.Store != nil {
		tier = cfg.Store
	}
	eng := engine.New(engine.Options{
		Metrics:  reg,
		Verify:   cfg.Verify,
		Faults:   cfg.Faults,
		Store:    tier,
		Observer: rt,
		Remote:   cfg.Remote,
	})
	ctx, stop := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		reg:     reg,
		eng:     eng,
		adm:     NewAdmission(d, cfg.MaxQueue, cfg.Quota, reg),
		st:      cfg.Store,
		log:     log,
		start:   time.Now(),
		exps:    make(map[string]*Experiment),
		router:  rt,
		runCtx:  ctx,
		runStop: stop,

		submitted: reg.Counter("service.experiments.submitted"),
		deduped:   reg.Counter("service.experiments.deduped"),
		completed: reg.Counter("service.experiments.completed"),
		failed:    reg.Counter("service.experiments.failed"),
		running:   reg.Gauge("service.experiments.running"),
		// Queue-wait distribution per discipline: one histogram per
		// policy, so an FCFS deployment and a priority deployment are
		// directly comparable on /metrics.
		admWait:  reg.Histogram("service.admission.wait."+d.Name()+".us", obs.DurationBucketsUS),
		fanDrops: reg.Counter("fanout.dropped"),
	}
	return s, nil
}

// Engine exposes the underlying engine (stats, tests).
func (s *Service) Engine() *engine.Engine { return s.eng }

// Metrics exposes the service registry.
func (s *Service) Metrics() *obs.Registry { return s.reg }

// Start launches the worker pool.
func (s *Service) Start() {
	for i := 0; i < s.cfg.MaxInflight; i++ {
		s.workers.Add(1)
		go s.worker()
	}
}

// Submit admits a sweep for tenant, returning the experiment and whether
// it was newly created (false means an identical sweep already exists —
// the caller is not charged quota and shares its lifecycle). The
// context's trace identity (obs.WithTrace — the HTTP middleware injects
// it) becomes the experiment's: every journal line and execution-trace
// span it ever produces carries that trace ID. A context without one
// gets a fresh ID. Admission failures return ErrQuota, ErrSaturated or
// ErrDraining, or a validation error for malformed specs.
func (s *Service) Submit(ctx context.Context, tenant string, spec Spec) (*Experiment, bool, error) {
	specs, meta, err := spec.Expand()
	if err != nil {
		return nil, false, err
	}
	id := ExperimentID(meta)
	tc, ok := obs.TraceFrom(ctx)
	if !ok {
		tc = obs.NewTraceContext()
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, false, ErrDraining
	}
	if exp, ok := s.exps[id]; ok {
		s.mu.Unlock()
		s.deduped.Add(1)
		// The existing experiment keeps its original trace identity; the
		// attach is recorded so its journal shows every request (any
		// tenant, any trace) that mapped onto this computation.
		exp.journal.Event("experiment.attached", "id", id,
			"tenant", tenant, "attached_trace", tc.Trace)
		return exp, false, nil
	}
	fan := obs.NewFanout(s.cfg.EventHistory, s.cfg.EventHistory)
	fan.CountDrops(s.fanDrops)
	exp := &Experiment{
		ID:        id,
		Tenant:    tenant,
		Priority:  spec.Priority,
		Spec:      spec,
		State:     StateQueued,
		Submitted: time.Now(),
		specs:     specs,
		meta:      meta,
		fanout:    fan,
		journal:   obs.NewJournal(fan).WithTrace(tc),
		tc:        tc,
		tracer:    exectrace.New(),
	}
	s.exps[id] = exp
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.adm.Submit(exp, spec.Priority); err != nil {
		s.mu.Lock()
		delete(s.exps, id)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		exp.fanout.Close()
		return nil, false, err
	}
	s.submitted.Add(1)
	exp.journal.Event("experiment.queued",
		"id", id, "tenant", tenant, "specs", len(specs),
		"discipline", s.adm.Discipline(), "priority", spec.Priority)
	return exp, true, nil
}

// Get returns an experiment by ID.
func (s *Service) Get(id string) (*Experiment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	exp, ok := s.exps[id]
	return exp, ok
}

// worker executes experiments until the admission queue closes.
func (s *Service) worker() {
	defer s.workers.Done()
	for {
		t, ok := s.adm.Next(s.runCtx)
		if !ok {
			return
		}
		s.run(t.exp)
		s.adm.Done(t.exp.Tenant)
	}
}

// run executes one experiment end to end.
func (s *Service) run(exp *Experiment) {
	s.mu.Lock()
	exp.State = StateRunning
	exp.Started = time.Now()
	specs, meta := exp.specs, exp.meta
	wait := exp.Started.Sub(exp.Submitted)
	s.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	s.admWait.ObserveDuration(wait)

	// The request's root span is retro-dated to submission time, so the
	// exported trace shows the whole request lifetime; the admission wait
	// is its first child. Everything the engine does for this experiment
	// parents under the root span: the engine pulls lanes from the
	// context's tracer and the context's span as each job's parent.
	lane := exp.tracer.Lane()
	req := lane.SpanAt(0, "request", "experiment:"+exp.ID, exp.Submitted).
		Arg("trace", exp.tc.Trace).Arg("tenant", exp.Tenant).Arg("specs", len(specs))
	adm := lane.SpanAt(req.ID(), "admission", "wait:"+s.adm.Discipline(), exp.Submitted)
	adm.Arg("wait_us", wait.Microseconds()).End(nil)

	// Route engine events for this experiment's keys into its journal
	// while it runs, so SSE subscribers see job-level progress.
	shortKeys := make([]string, len(specs))
	for i := range specs {
		shortKeys[i] = specs[i].Key().String()
	}
	s.router.register(shortKeys, exp.journal)
	defer s.router.unregister(shortKeys)

	exp.journal.Event("admission.done", "id", exp.ID,
		"wait_us", wait.Microseconds(), "discipline", s.adm.Discipline())
	exp.journal.Event("experiment.start", "id", exp.ID, "specs", len(specs))
	ctx := obs.WithTrace(s.runCtx, exp.tc.WithSpan(uint64(req.ID())))
	ctx = exectrace.WithTracer(ctx, exp.tracer)
	ctx = exectrace.NewContext(ctx, nil, req.ID())
	results, err := s.eng.Results(ctx, engine.Parallel{Workers: s.cfg.SimWorkers}, specs)
	req.End(err)
	lane.Release()

	s.mu.Lock()
	exp.Finished = time.Now()
	exp.results = results
	if err != nil {
		exp.State = StateFailed
		exp.Err = err.Error()
	} else {
		exp.State = StateDone
	}
	dur := exp.Finished.Sub(exp.Started)
	s.mu.Unlock()

	if err != nil {
		s.failed.Add(1)
		exp.journal.Error("experiment.finish", err, "id", exp.ID, "dur_us", dur.Microseconds())
		s.log.Error("experiment failed", "id", exp.ID, "tenant", exp.Tenant, "error", err)
	} else {
		s.completed.Add(1)
		for i, r := range results {
			exp.journal.Event("experiment.result",
				"id", exp.ID, "scheme", meta[i].Scheme, "workload", meta[i].Workload,
				"cpus", meta[i].CPUs, "key", meta[i].Key,
				"fingerprint", fmt.Sprintf("%016x", r.Fingerprint()))
		}
		exp.journal.Event("experiment.finish", "id", exp.ID, "dur_us", dur.Microseconds())
		s.log.Info("experiment done", "id", exp.ID, "tenant", exp.Tenant,
			"specs", len(specs), "dur", dur)
	}
	exp.fanout.Close()
}

// Drain gracefully stops the service: new submissions are refused,
// queued-but-unstarted experiments are aborted, running ones finish and
// persist their results (bounded by ctx), and every event stream is
// closed. Safe to call once.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.adm.Close()

	for _, t := range s.adm.Flush() {
		s.mu.Lock()
		t.exp.State = StateAborted
		t.exp.Err = ErrDraining.Error()
		t.exp.Finished = time.Now()
		s.mu.Unlock()
		// Even an aborted experiment gets a (queue-wait-only) request
		// span, so its exported trace explains where the time went.
		lane := t.exp.tracer.Lane()
		lane.SpanAt(0, "request", "experiment:"+t.exp.ID, t.exp.Submitted).
			Arg("trace", t.exp.tc.Trace).Arg("tenant", t.exp.Tenant).
			Arg("aborted", true).End(ErrDraining)
		lane.Release()
		t.exp.journal.Event("experiment.aborted", "id", t.exp.ID, "reason", "drain")
		t.exp.fanout.Close()
		s.adm.Done(t.exp.Tenant)
	}

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Cancel in-flight engine work and wait for the workers to
		// observe it; results computed so far are already persisted.
		s.runStop()
		<-done
		return fmt.Errorf("service: drain deadline exceeded, aborted running work: %w", ctx.Err())
	}
}

// Draining reports whether Drain has begun.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// RetryAfter estimates, in seconds, when a rejected request is worth
// retrying: roughly one queue's worth of work per worker, floored at 1s.
func (s *Service) RetryAfter() int {
	depth := s.adm.Depth()
	sec := depth / s.cfg.MaxInflight
	if sec < 1 {
		sec = 1
	}
	return sec
}

// IsAdmissionError reports whether err is one of the admission rejections
// (as opposed to a validation error).
func IsAdmissionError(err error) bool {
	return errors.Is(err, ErrQuota) || errors.Is(err, ErrSaturated) || errors.Is(err, ErrDraining)
}

// router fans engine observer events out to the journals of the
// experiments whose spec keys they concern. Events for unregistered keys
// (other experiments' internals, unkeyed stream jobs) are dropped.
type router struct {
	mu    sync.Mutex
	byKey map[string][]*obs.Journal
}

func newRouter() *router { return &router{byKey: make(map[string][]*obs.Journal)} }

func (r *router) register(keys []string, j *obs.Journal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		r.byKey[k] = append(r.byKey[k], j)
	}
}

func (r *router) unregister(keys []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range keys {
		delete(r.byKey, k)
	}
}

func (r *router) emit(key, name string, attrs ...any) {
	if key == "" {
		return
	}
	r.mu.Lock()
	js := r.byKey[key]
	r.mu.Unlock()
	for _, j := range js {
		j.Event(name, attrs...)
	}
}

// The experiment journals the router feeds are already tagged with their
// experiment's trace ID (Journal.WithTrace), so events need no explicit
// trace attribute; the context still disambiguates which request ran the
// job, since each experiment's jobs execute under its own context.

func (r *router) JobScheduled(ctx context.Context, id, kind, key string) {
	r.emit(key, "job.scheduled", "job", id, "kind", kind, "key", key)
}

func (r *router) JobStarted(ctx context.Context, id, kind, key string) {
	r.emit(key, "job.start", "job", id, "kind", kind, "key", key)
}

func (r *router) JobFinished(ctx context.Context, id, kind, key string, d time.Duration, cacheHit bool, err error) {
	attrs := []any{"job", id, "kind", kind, "key", key,
		"dur_us", d.Microseconds(), "cache_hit", cacheHit}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	r.emit(key, "job.finish", attrs...)
}

func (r *router) StreamEnded(ctx context.Context, trace string, chunks, stalls int64) {
	// Stream jobs are unkeyed; their lifecycle is engine-internal.
}

// TierFetched and TierStored route durable-store traffic for an
// experiment's result keys into its journal, so a warm-start hit is as
// visible to SSE subscribers as a simulation would have been.
func (r *router) TierFetched(ctx context.Context, kind, key string, hit bool, d time.Duration) {
	r.emit(key, "store.load", "kind", kind, "key", key,
		"hit", hit, "dur_us", d.Microseconds())
}

func (r *router) TierStored(ctx context.Context, kind, key string, d time.Duration) {
	r.emit(key, "store.store", "kind", kind, "key", key, "dur_us", d.Microseconds())
}

func (r *router) CacheRejected(ctx context.Context, key string) {
	r.emit(key, "cache.reject", "key", key)
}

func (r *router) JobRetried(ctx context.Context, id string, attempt int, backoff time.Duration, err error) {
}
func (r *router) JobPanicked(ctx context.Context, id string, stack []byte) {}
