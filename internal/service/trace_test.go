package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"dirsim/internal/obs/httpmon"
	"dirsim/internal/store"
)

// postSpecTraced is postSpec with an explicit X-Dirsim-Trace header.
func postSpecTraced(t *testing.T, url, tenant, traceID string, spec Spec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+"/api/v1/experiments", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, tenant)
	if traceID != "" {
		req.Header.Set(httpmon.TraceHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestResponsesCarryTraceHeader: every API response carries X-Dirsim-
// Trace — minted when the caller sent none, echoed when they did — and
// the submitted experiment adopts the caller's trace as its own.
func TestResponsesCarryTraceHeader(t *testing.T) {
	svc := newTestService(t, Config{})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	// No inbound header: the service mints one.
	resp, body := postSpec(t, ts.URL, "team-a", smallSpec(10))
	minted := resp.Header.Get(httpmon.TraceHeader)
	if minted == "" {
		t.Fatal("submit response missing X-Dirsim-Trace")
	}
	var st ExperimentStatus
	json.Unmarshal(body, &st)
	if st.Trace != minted {
		t.Errorf("experiment trace %q != response header %q", st.Trace, minted)
	}

	// Caller-supplied header: echoed back and adopted by the experiment.
	resp2, body2 := postSpecTraced(t, ts.URL, "team-a", "my-run-7", smallSpec(11))
	if got := resp2.Header.Get(httpmon.TraceHeader); got != "my-run-7" {
		t.Errorf("echoed trace = %q, want my-run-7", got)
	}
	var st2 ExperimentStatus
	json.Unmarshal(body2, &st2)
	if st2.Trace != "my-run-7" {
		t.Errorf("experiment did not adopt the caller's trace: %q", st2.Trace)
	}

	// Plain GETs carry one too.
	if resp := getJSON(t, ts.URL+"/api/v1/experiments", nil); resp.Header.Get(httpmon.TraceHeader) == "" {
		t.Error("list response missing X-Dirsim-Trace")
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.Header.Get(httpmon.TraceHeader) == "" {
		t.Error("healthz response missing X-Dirsim-Trace")
	}

	// A deduplicated submission keeps the ORIGINAL experiment's trace in
	// the body (the journal is tagged with it) while the response header
	// names the attaching request's own trace.
	waitDone(t, ts.URL, st.ID)
	resp3, body3 := postSpecTraced(t, ts.URL, "team-b", "attacher", smallSpec(10))
	var st3 ExperimentStatus
	json.Unmarshal(body3, &st3)
	if st3.ID != st.ID || st3.Trace != minted {
		t.Errorf("dedup changed the experiment trace: %+v", st3)
	}
	if got := resp3.Header.Get(httpmon.TraceHeader); got != "attacher" {
		t.Errorf("dedup response header = %q, want the attacher's trace", got)
	}
}

// chromeExport is the subset of the Chrome trace format the trace
// endpoint test inspects.
type chromeExport struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		ID   uint64         `json:"id"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTraceEndpointExportsHierarchy: the trace endpoint returns Chrome
// trace JSON whose request root span parents the admission wait, and
// whose engine job and store spans belong to the same export — the
// end-to-end hierarchy the tentpole promises.
func TestTraceEndpointExportsHierarchy(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := newTestService(t, Config{Store: st})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	resp, body := postSpecTraced(t, ts.URL, "team-a", "trace-e2e", smallSpec(20))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	var sub ExperimentStatus
	json.Unmarshal(body, &sub)
	waitDone(t, ts.URL, sub.ID)

	httpResp, err := http.Get(ts.URL + "/api/v1/experiments/" + sub.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint status %d", httpResp.StatusCode)
	}
	if ct := httpResp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var export chromeExport
	if err := json.NewDecoder(httpResp.Body).Decode(&export); err != nil {
		t.Fatalf("trace endpoint is not Chrome trace JSON: %v", err)
	}

	var requestID uint64
	cats := map[string]int{}
	for _, ev := range export.TraceEvents {
		cats[ev.Cat]++
		if ev.Cat == "request" && ev.Name == "experiment:"+sub.ID {
			requestID = ev.ID
			if ev.Args["trace"] != "trace-e2e" || ev.Args["tenant"] != "team-a" {
				t.Errorf("request span args wrong: %v", ev.Args)
			}
		}
	}
	if requestID == 0 {
		t.Fatalf("no request root span in export; categories: %v", cats)
	}
	for _, want := range []string{"admission", "job", "sim", "store"} {
		if cats[want] == 0 {
			t.Errorf("export has no %q spans; categories: %v", want, cats)
		}
	}
	// The admission wait parents directly under the request root.
	foundAdm := false
	for _, ev := range export.TraceEvents {
		if ev.Cat == "admission" {
			foundAdm = true
			if parent, _ := ev.Args["parent"].(float64); uint64(parent) != requestID {
				t.Errorf("admission span parent = %v, want request %d", ev.Args["parent"], requestID)
			}
			if _, ok := ev.Args["wait_us"]; !ok {
				t.Errorf("admission span missing wait_us: %v", ev.Args)
			}
		}
	}
	if !foundAdm {
		t.Error("no admission span")
	}
}

// TestTraceEndpointConflictsWhileUnfinished: a queued experiment's trace
// is not exportable yet — the endpoint says 409 + Retry-After instead of
// blocking on the worker's held lanes. The service is never started, so
// the experiment deterministically stays queued.
func TestTraceEndpointConflictsWhileUnfinished(t *testing.T) {
	svc := newTestService(t, Config{MaxInflight: 1})
	ts := startHTTP(t, svc)

	resp, body := postSpec(t, ts.URL, "team-a", smallSpec(30))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	var sub ExperimentStatus
	json.Unmarshal(body, &sub)

	httpResp, err := http.Get(ts.URL + "/api/v1/experiments/" + sub.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusConflict {
		t.Fatalf("trace of queued experiment: status %d, want 409", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Error("409 without Retry-After")
	}
	svc.Drain(context.Background())
}

// TestPerTenantREDMetrics: per-route and per-tenant request counts and
// latency histograms appear on /metrics after traffic.
func TestPerTenantREDMetrics(t *testing.T) {
	svc := newTestService(t, Config{})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	resp, body := postSpec(t, ts.URL, "team-red", smallSpec(40))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	var sub ExperimentStatus
	json.Unmarshal(body, &sub)
	waitDone(t, ts.URL, sub.ID)

	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mResp.Body)
	metrics := buf.String()
	for _, want := range []string{
		"http_route_experiments_submit_requests 1",
		"http_tenant_team_red_requests 1",
		"http_route_experiments_get_requests",
		"http_route_experiments_submit_latency_us_count 1",
		"service_admission_wait_fcfs_us_count 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestAdmissionWaitJournaled: the experiment's journal records the
// admission wait and discipline before the run starts.
func TestAdmissionWaitJournaled(t *testing.T) {
	svc := newTestService(t, Config{})
	svc.Start()
	defer svc.Drain(context.Background())
	ts := startHTTP(t, svc)

	resp, body := postSpecTraced(t, ts.URL, "team-a", "adm-run", smallSpec(50))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d: %s", resp.StatusCode, body)
	}
	var sub ExperimentStatus
	json.Unmarshal(body, &sub)
	waitDone(t, ts.URL, sub.ID)

	exp, ok := svc.Get(sub.ID)
	if !ok {
		t.Fatal("experiment vanished")
	}
	if exp.Trace() != "adm-run" {
		t.Errorf("Experiment.Trace() = %q", exp.Trace())
	}
	sawAdmission := false
	sub2 := exp.fanout.Subscribe()
	defer sub2.Cancel()
	for {
		select {
		case line, open := <-sub2.C:
			if !open {
				if !sawAdmission {
					t.Error("journal has no admission.done event")
				}
				return
			}
			var ev map[string]any
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatalf("journal line not JSON: %s", line)
			}
			if ev["trace"] != "adm-run" {
				t.Errorf("journal line missing trace tag: %s", line)
			}
			if ev["msg"] == "admission.done" {
				sawAdmission = true
				if _, ok := ev["wait_us"]; !ok {
					t.Errorf("admission.done missing wait_us: %s", line)
				}
				if ev["discipline"] != "fcfs" {
					t.Errorf("admission.done discipline = %v", ev["discipline"])
				}
			}
		default:
			if !sawAdmission {
				t.Error("journal has no admission.done event (buffer drained)")
			}
			return
		}
	}
}
