package engine

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"dirsim/internal/core"
	"dirsim/internal/obs"
	exectrace "dirsim/internal/obs/trace"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// SimSpec fully identifies one simulation: a generated workload, a
// coherence scheme, and the options that influence measured numbers. The
// spec — not any materialized artifact — is the unit of caching: its
// content hash keys the result cache.
type SimSpec struct {
	// Trace is the workload specification; the trace is regenerated or
	// streamed on demand, never shipped with the spec.
	Trace workload.Config
	// Scheme is a protocol name accepted by core.NewByName
	// (case-insensitive).
	Scheme string
	// Check enables value-coherence checking during the run.
	Check bool
	// BlockBytes rescales the trace to a non-standard block size before
	// simulation; 0 means the native trace.BlockBytes.
	BlockBytes int
}

// Key returns the spec's content hash. Any difference that can change the
// result — a profile knob, the seed, the CPU count, the scheme, checking,
// block size — yields a different key.
func (s SimSpec) Key() Key {
	return hashOf("sim",
		canonicalScheme(s.Scheme, s.Trace.CPUs),
		fmt.Sprintf("check=%t block=%d", s.Check, s.BlockBytes),
		TraceKey(s.Trace).hex())
}

// Trace returns the materialized trace for cfg, generating it at most
// once per engine (concurrent callers share one generation). In
// verification mode every hit revalidates the trace against the
// fingerprint recorded when it was stored; a mismatch evicts the entry
// and regenerates instead of serving the corrupted trace.
func (e *Engine) Trace(ctx context.Context, cfg workload.Config) (*trace.Trace, error) {
	k := TraceKey(cfg)
	for {
		f, owner := e.traces.claim(k)
		if owner {
			e.cacheMisses.Add(1)
			if t, sum, ok := e.tierLoadTrace(ctx, k); ok {
				e.traces.fulfillStamped(k, f, t, nil, sum, e.verify)
				return t, nil
			}
			t, err := workload.Generate(cfg)
			if err == nil {
				e.tracesGenerated.Add(1)
				e.tierStoreTrace(ctx, k, t)
			}
			sum, stamped := e.stampFor(observedKey(k), t)
			e.traces.fulfillStamped(k, f, t, err, sum, stamped)
			return t, err
		}
		v, err := f.wait(ctx)
		if err != nil {
			return nil, err
		}
		t := v.(*trace.Trace)
		if e.verify && f.stamped && t.Fingerprint() != f.sum {
			e.cacheRejected.Add(1)
			if e.fobs != nil {
				e.fobs.CacheRejected(ctx, observedKey(k))
			}
			e.traces.evict(k, f)
			continue
		}
		e.cacheHits.Add(1)
		return t, nil
	}
}

// Results computes one *sim.Result per spec. Within the batch, specs
// sharing a workload share one trace generation; across batches, results
// (and materialized traces) are reused through the content-addressed
// caches. Duplicate specs collapse to a single simulation.
//
// The batch degrades rather than voids: when some simulations fail the
// successes are still returned (failed positions nil) together with a
// *Partial error mapping each failed job to its cause. A non-Partial
// error means the batch could not run at all.
func (e *Engine) Results(ctx context.Context, exec Executor, specs []SimSpec) ([]*sim.Result, error) {
	if exec == nil {
		exec = Sequential{}
	}
	per, err := e.planSpecs(exec, specs)
	if err != nil {
		return nil, err
	}
	roots := dedupJobs(per)
	if err := e.ExecuteAll(ctx, exec, roots...); err != nil {
		return nil, err
	}
	out := make([]*sim.Result, len(per))
	failed := make(map[string]error)
	done := 0
	for i, j := range per {
		v, err := j.Output()
		if err != nil {
			failed[j.ID] = err
			continue
		}
		out[i] = v.(*sim.Result)
		done++
	}
	if len(failed) > 0 {
		return out, &Partial{Failed: failed, Done: done}
	}
	return out, nil
}

// SchemeOverTraces runs one scheme over several workloads and returns the
// per-workload results plus their reference-weighted merge — the engine
// counterpart of sim.SchemeOverTraces, executed as a trace → simulate →
// aggregate DAG with every stage cached.
func (e *Engine) SchemeOverTraces(ctx context.Context, exec Executor, scheme string,
	cfgs []workload.Config, check bool) (per []*sim.Result, merged *sim.Result, err error) {
	if exec == nil {
		exec = Sequential{}
	}
	specs := make([]SimSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = SimSpec{Trace: cfg, Scheme: scheme, Check: check}
	}
	perJobs, err := e.planSpecs(exec, specs)
	if err != nil {
		return nil, nil, err
	}
	mj := e.mergeJob(fmt.Sprintf("merge:%s", scheme), specs, perJobs)
	if err := e.ExecuteAll(ctx, exec, mj); err != nil {
		return nil, nil, err
	}
	per = make([]*sim.Result, len(perJobs))
	failed := make(map[string]error)
	done := 0
	for i, j := range perJobs {
		v, jerr := j.Output()
		if jerr != nil {
			failed[specs[i].Trace.Name] = jerr
			continue
		}
		per[i] = v.(*sim.Result)
		done++
	}
	if len(failed) > 0 {
		// The merge is skipped when any input failed; the surviving
		// per-trace results are still delivered.
		return per, nil, &Partial{Failed: failed, Done: done}
	}
	out, err := mj.Output()
	if err != nil {
		return per, nil, err
	}
	return per, out.(*sim.Result), nil
}

// Compare runs several schemes over the same set of workloads in one
// batch — the shape of Table 4 and Figure 2 — and returns each scheme's
// merged result. All schemes subscribe to one generation of each
// uncached workload, streamed concurrently under the Parallel executor.
func (e *Engine) Compare(ctx context.Context, exec Executor, schemes []string,
	cfgs []workload.Config, check bool) (map[string]*sim.Result, error) {
	if exec == nil {
		exec = Sequential{}
	}
	specs := make([]SimSpec, 0, len(schemes)*len(cfgs))
	for _, s := range schemes {
		for _, cfg := range cfgs {
			specs = append(specs, SimSpec{Trace: cfg, Scheme: s, Check: check})
		}
	}
	perJobs, err := e.planSpecs(exec, specs)
	if err != nil {
		return nil, err
	}
	merges := make([]*Job, len(schemes))
	for i, s := range schemes {
		merges[i] = e.mergeJob(fmt.Sprintf("merge:%s", s),
			specs[i*len(cfgs):(i+1)*len(cfgs)], perJobs[i*len(cfgs):(i+1)*len(cfgs)])
	}
	if err := e.ExecuteAll(ctx, exec, merges...); err != nil {
		return nil, err
	}
	out := make(map[string]*sim.Result, len(schemes))
	failed := make(map[string]error)
	for i, s := range schemes {
		v, err := merges[i].Output()
		if err != nil {
			// One scheme sinking — a panicking simulator, a poisoned
			// stream — must not void the comparison: the other schemes'
			// merged results are still delivered alongside a *Partial
			// naming the failed scheme and its cause.
			failed[s] = err
			continue
		}
		out[s] = v.(*sim.Result)
	}
	if len(failed) > 0 {
		return out, &Partial{Failed: failed, Done: len(out)}
	}
	return out, nil
}

// RunProtocolOverTraces simulates engines built by build over already
// materialized traces (optionally filtered) and merges the results. It is
// the engine's escape hatch for non-registry protocols and filtered
// replays; the work parallelizes across traces but is uncached, since an
// arbitrary builder or filter has no content identity. Options.Shards is
// deliberately not honored here either: an arbitrary engine may carry
// cross-block state (a finite cache evicts by set occupancy), which
// breaks the per-block independence the sharded path's bit-identity
// rests on — only registry schemes, whose state is strictly per-block,
// go through SimulateSharded.
func (e *Engine) RunProtocolOverTraces(ctx context.Context, exec Executor,
	build func(ncpu int) core.Protocol, traces []*trace.Trace,
	filter func(trace.Source) trace.Source, opts sim.Options) (*sim.Result, error) {
	if exec == nil {
		exec = Sequential{}
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("engine: no traces to run")
	}
	jobs := make([]*Job, len(traces))
	for i, t := range traces {
		t := t
		jobs[i] = &Job{
			ID: fmt.Sprintf("protocol:%s", t.Name),
			Run: func(ctx context.Context, _ []any) (any, error) {
				src := trace.Source(t.Iterator())
				if filter != nil {
					src = filter(src)
				}
				p := build(t.CPUs)
				r, err := sim.Simulate(p, cancellable(ctx, src), opts)
				if err != nil {
					return nil, fmt.Errorf("%s over %s: %w", p.Name(), t.Name, err)
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				e.simsRun.Add(1)
				e.refsSimulated.Add(r.Counts.Total)
				r.Trace = t.Name
				return r, nil
			},
		}
	}
	mj := &Job{
		ID:   "merge:protocol",
		Deps: jobs,
		Run: func(_ context.Context, in []any) (any, error) {
			rs := make([]*sim.Result, len(in))
			for i, v := range in {
				rs[i] = v.(*sim.Result)
			}
			return sim.Merge(rs...)
		},
	}
	if err := e.Execute(ctx, exec, mj); err != nil {
		return nil, err
	}
	out, err := mj.Output()
	if err != nil {
		return nil, err
	}
	return out.(*sim.Result), nil
}

// mergeJob aggregates the per-spec results of one scheme, cached by the
// ordered combination of the inputs' keys.
func (e *Engine) mergeJob(id string, specs []SimSpec, deps []*Job) *Job {
	keys := make([]Key, len(specs))
	for i, s := range specs {
		keys[i] = s.Key()
	}
	return &Job{
		ID:   id,
		Key:  mergeKey(keys),
		Deps: deps,
		Run: func(_ context.Context, in []any) (any, error) {
			rs := make([]*sim.Result, len(in))
			for i, v := range in {
				rs[i] = v.(*sim.Result)
			}
			return sim.Merge(rs...)
		},
	}
}

// planSpecs builds the trace-generation → simulation stages for a batch,
// returning one result job per spec (duplicate specs share a job).
// Delivery of each workload's references is chosen per trace group:
//
//   - already materialized (or a non-streaming executor): a trace job
//     feeds per-scheme simulation jobs that replay it;
//   - otherwise, under a streaming executor: a stream job generates the
//     workload once and multicasts chunks to all of the group's
//     simulators, which run concurrently inside the job; per-spec
//     extraction jobs then publish each result under its own cache key.
func (e *Engine) planSpecs(exec Executor, specs []SimSpec) ([]*Job, error) {
	per := make([]*Job, len(specs))
	byKey := make(map[Key]*Job)

	type group struct {
		cfg     workload.Config
		specs   []SimSpec
		keys    []Key
		jobs    []*Job // filled in the second pass
		indices []int  // positions in per
	}
	var groups []*group
	byTrace := make(map[Key]*group)

	for i, s := range specs {
		if err := s.Trace.Validate(); err != nil {
			return nil, err
		}
		if _, err := core.NewByName(s.Scheme, s.Trace.CPUs); err != nil {
			return nil, err
		}
		k := s.Key()
		if j, ok := byKey[k]; ok {
			per[i] = j
			continue
		}
		tk := TraceKey(s.Trace)
		g, ok := byTrace[tk]
		if !ok {
			g = &group{cfg: s.Trace}
			byTrace[tk] = g
			groups = append(groups, g)
		}
		j := &Job{Key: k} // ID and Run assigned below, per delivery mode
		byKey[k] = j
		per[i] = j
		g.specs = append(g.specs, s)
		g.keys = append(g.keys, k)
		g.jobs = append(g.jobs, j)
	}

	for _, g := range groups {
		g := g
		// Specs whose results are already cached (or in flight) — in
		// memory or in the durable tier — must not force a generation:
		// give them standalone recompute bodies that in practice resolve
		// from a cache.
		pending := make([]int, 0, len(g.specs))
		for i := range g.specs {
			if e.results.peek(g.keys[i]) ||
				(e.tier != nil && e.tier.HasResult(g.keys[i].hex())) {
				e.bindMaterialized(g.jobs[i], g.specs[i], nil)
				continue
			}
			pending = append(pending, i)
		}
		traceCached := func(k Key) bool {
			return e.traces.peek(k) || (e.tier != nil && e.tier.HasTrace(k.hex()))
		}
		switch {
		case len(pending) == 0:
			// Nothing to generate for this workload.
		case e.remote != nil:
			// Remote-first: each uncached spec dispatches on its own — the
			// fleet's workers regenerate the workload themselves, so no
			// trace or stream job is planned here. The degraded path inside
			// each body falls back to Engine.Trace, which still collapses
			// concurrent fallbacks of one workload to a single generation.
			for _, i := range pending {
				e.bindRemote(g.jobs[i], g.specs[i])
			}
		case exec.streams() && !traceCached(TraceKey(g.cfg)):
			reqs := make([]SimSpec, len(pending))
			keys := make([]Key, len(pending))
			for n, i := range pending {
				reqs[n], keys[n] = g.specs[i], g.keys[i]
			}
			stream := &Job{
				ID: fmt.Sprintf("stream:%s", g.cfg.Name),
				Run: func(ctx context.Context, _ []any) (any, error) {
					return e.streamGroup(ctx, g.cfg, reqs, keys)
				},
			}
			for n, i := range pending {
				k := keys[n]
				j := g.jobs[i]
				j.ID = fmt.Sprintf("sim:%s@%s", g.specs[i].Scheme, g.cfg.Name)
				j.Deps = []*Job{stream}
				j.Run = func(_ context.Context, in []any) (any, error) {
					o, ok := in[0].(map[Key]specOutcome)[k]
					if !ok {
						return nil, fmt.Errorf("stream produced no result")
					}
					if o.err != nil {
						return nil, o.err
					}
					return o.res, nil
				}
			}
		default:
			tj := &Job{
				ID: fmt.Sprintf("trace:%s", g.cfg.Name),
				Run: func(ctx context.Context, _ []any) (any, error) {
					return e.Trace(ctx, g.cfg)
				},
			}
			for _, i := range pending {
				e.bindMaterialized(g.jobs[i], g.specs[i], tj)
			}
		}
	}
	return per, nil
}

// bindMaterialized gives a spec job a body that simulates over the
// materialized trace — either the trace job's output (traceJob != nil) or
// an engine-cache lookup (the cache-hit recompute path).
func (e *Engine) bindMaterialized(j *Job, spec SimSpec, traceJob *Job) {
	j.ID = fmt.Sprintf("sim:%s@%s", spec.Scheme, spec.Trace.Name)
	if traceJob != nil {
		j.Deps = []*Job{traceJob}
		j.Run = func(ctx context.Context, in []any) (any, error) {
			t := in[0].(*trace.Trace)
			return e.simulateSource(ctx, spec, t.Iterator(), int64(len(t.Refs)))
		}
		return
	}
	j.Run = func(ctx context.Context, _ []any) (any, error) {
		t, err := e.Trace(ctx, spec.Trace)
		if err != nil {
			return nil, err
		}
		return e.simulateSource(ctx, spec, t.Iterator(), int64(len(t.Refs)))
	}
}

// specOutcome is one spec's result or failure inside a streamed group:
// the group job carries every outcome so one failed simulation degrades
// the group to its survivors instead of voiding it.
type specOutcome struct {
	res *sim.Result
	err error
}

// streamGroup generates one workload and streams it to all pending
// simulators of the group, which run concurrently; it returns the
// outcome per spec key. A simulator that fails — or whose stream fails
// validation — sinks only its own spec: its subscriber drains the rest
// of the stream (keeping the producer unblocked) while the others run to
// completion. Only producer failures and refcount corruption discredit
// the whole group. Unless the engine discards streamed traces, the
// generated reference stream is also captured into the trace cache, so
// later experiments needing the raw trace find it materialized.
func (e *Engine) streamGroup(ctx context.Context, cfg workload.Config,
	specs []SimSpec, keys []Key) (map[Key]specOutcome, error) {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The producer and every subscriber run on their own goroutines, so
	// each acquires its own trace lane; their spans all parent to the
	// stream job's span (carried by ctx), keeping the fan-out visible as
	// one subtree even though it occupies several timeline rows.
	_, jobSpan := exectrace.FromContext(ctx)
	tracer := e.tracerFor(ctx)

	b := newBroadcast(cfg, len(specs), e.chunkRefs, e.chunkWindow, !e.discard)
	b.verify = e.verify
	b.inj = e.faults
	var produced *trace.Trace
	var prodErr error
	var pwg sync.WaitGroup
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		plane := tracer.Lane()
		var pspan *exectrace.Span
		if plane != nil {
			pspan = plane.Span(jobSpan, "stream", "produce:"+cfg.Name).Arg("subs", len(specs))
			b.tlane, b.tspan = plane, pspan.ID()
		}
		produced, prodErr = b.run(gctx)
		if pspan != nil {
			pspan.Arg("chunks", b.chunks).Arg("stalls", b.stalls).End(prodErr)
			plane.Release()
		}
	}()

	results := make([]*sim.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			slane := tracer.Lane()
			var sspan *exectrace.Span
			sctx := gctx
			if slane != nil {
				sspan = slane.Span(jobSpan, "stream",
					fmt.Sprintf("consume:%s@%s", specs[i].Scheme, cfg.Name))
				b.subs[i].tlane, b.subs[i].tspan = slane, sspan.ID()
				sctx = exectrace.NewContext(gctx, slane, sspan.ID())
				defer slane.Release()
				defer func() { sspan.End(errs[i]) }()
			}
			// Deferred in reverse run order: the recover stops a panicking
			// simulator first, then the drain releases this subscriber's
			// remaining chunks so the producer and the chunk pool are not
			// left hanging on a dead consumer (and the span/lane teardown
			// above runs last, after the error is known).
			defer b.subs[i].drain()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = &panicError{val: r, stack: debug.Stack()}
				}
			}()
			r, err := e.simulateSource(sctx, specs[i], b.subs[i], -1)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	pwg.Wait()
	e.tracesStreamed.Add(1)
	e.streamChunks.Add(b.chunks)
	e.streamStalls.Add(b.stalls)
	if e.obs != nil {
		e.obs.StreamEnded(ctx, cfg.Name, b.chunks, b.stalls)
	}

	if fault := b.faultErr(); fault != nil {
		// Refcount corruption means chunks may have been recycled under
		// live readers; no outcome of this generation is trustworthy.
		e.integrityFaults.Add(1)
		return nil, fault
	}
	if prodErr != nil {
		// The producer aborted, so every "successful" simulation above saw
		// a truncated stream; none of it is trustworthy.
		return nil, prodErr
	}
	out := make(map[Key]specOutcome, len(specs))
	for i, k := range keys {
		err := errs[i]
		if err == nil && b.subs[i].err != nil {
			e.integrityFaults.Add(1)
			err = b.subs[i].err
		}
		if err == nil && b.verify && b.subs[i].consumed != b.refsEmitted {
			e.integrityFaults.Add(1)
			err = fmt.Errorf("engine: %s over %s consumed %d of %d streamed refs (stream truncated)",
				specs[i].Scheme, cfg.Name, b.subs[i].consumed, b.refsEmitted)
		}
		if err != nil {
			out[k] = specOutcome{err: fmt.Errorf("%s over %s: %w", specs[i].Scheme, cfg.Name, err)}
			continue
		}
		out[k] = specOutcome{res: results[i]}
	}
	if produced != nil {
		k := TraceKey(cfg)
		if f, owner := e.traces.claim(k); owner {
			e.tracesGenerated.Add(1)
			sum, stamped := e.stampFor(observedKey(k), produced)
			e.traces.fulfillStamped(k, f, produced, nil, sum, stamped)
			e.tierStoreTrace(ctx, k, produced)
		}
	}
	return out, nil
}

// simulateSource runs one spec's protocol over a reference source. expect
// is the reference count the source should deliver (negative when
// unknown, e.g. streamed sources, whose accounting the stream group
// reconciles itself); in verification mode a shortfall is reported as a
// truncation error instead of returning the silently partial result.
func (e *Engine) simulateSource(ctx context.Context, spec SimSpec, src trace.Source, expect int64) (res *sim.Result, err error) {
	lane, parent := exectrace.FromContext(ctx)
	var sp *exectrace.Span
	if lane != nil {
		sp = lane.Span(parent, "sim", fmt.Sprintf("simulate:%s@%s", spec.Scheme, spec.Trace.Name))
		defer func() {
			if res != nil {
				sp.Arg("refs", res.Counts.Total)
			}
			sp.End(err)
		}()
	}
	p, err := core.NewByName(spec.Scheme, spec.Trace.CPUs)
	if err != nil {
		return nil, err
	}
	if e.faults != nil {
		approx := expect
		if approx < 0 {
			approx = int64(spec.Trace.Refs)
		}
		src = e.faults.WrapSource(fmt.Sprintf("sim:%s@%s", spec.Scheme, spec.Trace.Name), src, approx)
	}
	if spec.BlockBytes != 0 && spec.BlockBytes != trace.BlockBytes {
		if src, err = trace.WithBlockSize(src, spec.BlockBytes); err != nil {
			return nil, err
		}
	}
	opts := sim.Options{Check: spec.Check, BatchRefs: e.batchRefs}
	if e.protoSample > 0 {
		// The sampler is per-simulation (its instants land on this
		// goroutine's lane, under the simulate span) but its instruments
		// are per-scheme on the engine's registry, so concurrent runs
		// accumulate into one family.
		opts.Telemetry = obs.NewProtoSampler(e.reg, spec.Scheme, e.protoSample, lane, sp.ID())
	}
	var r *sim.Result
	if e.shards > 1 {
		// Block-sharded path: bit-identical to sim.Simulate by the shard
		// equivalence suite, so the cache key and fingerprint are shared
		// with sequential runs. p above already validated the scheme; the
		// builder mints one fresh core per shard.
		opts.Shards = e.shards
		if e.faults != nil {
			site := fmt.Sprintf("sim:%s@%s", spec.Scheme, spec.Trace.Name)
			opts.ShardFault = func(shard int) error {
				return e.faults.ShardFault(site, shard)
			}
		}
		if e.sobs != nil {
			opts.ShardObserver = func(st sim.ShardStat) {
				e.sobs.ShardFinished(ctx, spec.Trace.Name, spec.Scheme,
					st.Shard, st.Shards, st.Refs, st.Elapsed)
			}
		}
		opts.ShardObserver = countShards(e, opts.ShardObserver)
		r, err = sim.SimulateSharded(func() (core.Protocol, error) {
			return core.NewByName(spec.Scheme, spec.Trace.CPUs)
		}, cancellable(ctx, src), opts)
		if err == nil {
			e.shardedSims.Add(1)
		}
	} else {
		r, err = sim.Simulate(p, cancellable(ctx, src), opts)
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// The source may have been cut short by cancellation; the partial
		// result must not escape into the cache.
		return nil, err
	}
	if e.verify && expect >= 0 && r.Counts.Total != expect {
		e.integrityFaults.Add(1)
		return nil, fmt.Errorf("engine: %s over %s simulated %d of %d refs (trace truncated)",
			spec.Scheme, spec.Trace.Name, r.Counts.Total, expect)
	}
	e.simsRun.Add(1)
	e.refsSimulated.Add(r.Counts.Total)
	r.Trace = spec.Trace.Name
	return r, nil
}

// countShards folds the engine's shard counter into a ShardObserver
// chain: worker stats (shard >= 0) accumulate onto engine.shards.refs,
// then the wrapped observer — nil when none is configured — sees every
// stat. sim serializes the calls, so plain counter adds suffice.
func countShards(e *Engine, next func(sim.ShardStat)) func(sim.ShardStat) {
	return func(st sim.ShardStat) {
		if st.Shard >= 0 {
			e.shardRefs.Add(st.Refs)
		}
		if next != nil {
			next(st)
		}
	}
}

func dedupJobs(jobs []*Job) []*Job {
	seen := make(map[*Job]bool, len(jobs))
	out := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}
