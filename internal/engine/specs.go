package engine

import (
	"context"
	"fmt"
	"sync"

	"dirsim/internal/core"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// SimSpec fully identifies one simulation: a generated workload, a
// coherence scheme, and the options that influence measured numbers. The
// spec — not any materialized artifact — is the unit of caching: its
// content hash keys the result cache.
type SimSpec struct {
	// Trace is the workload specification; the trace is regenerated or
	// streamed on demand, never shipped with the spec.
	Trace workload.Config
	// Scheme is a protocol name accepted by core.NewByName
	// (case-insensitive).
	Scheme string
	// Check enables value-coherence checking during the run.
	Check bool
	// BlockBytes rescales the trace to a non-standard block size before
	// simulation; 0 means the native trace.BlockBytes.
	BlockBytes int
}

// Key returns the spec's content hash. Any difference that can change the
// result — a profile knob, the seed, the CPU count, the scheme, checking,
// block size — yields a different key.
func (s SimSpec) Key() Key {
	return hashOf("sim",
		canonicalScheme(s.Scheme, s.Trace.CPUs),
		fmt.Sprintf("check=%t block=%d", s.Check, s.BlockBytes),
		TraceKey(s.Trace).hex())
}

// Trace returns the materialized trace for cfg, generating it at most
// once per engine (concurrent callers share one generation).
func (e *Engine) Trace(ctx context.Context, cfg workload.Config) (*trace.Trace, error) {
	k := TraceKey(cfg)
	f, owner := e.traces.claim(k)
	if !owner {
		e.cacheHits.Add(1)
		v, err := f.wait(ctx)
		if err != nil {
			return nil, err
		}
		return v.(*trace.Trace), nil
	}
	e.cacheMisses.Add(1)
	t, err := workload.Generate(cfg)
	if err == nil {
		e.tracesGenerated.Add(1)
	}
	e.traces.fulfill(k, f, t, err)
	return t, err
}

// Results computes one *sim.Result per spec. Within the batch, specs
// sharing a workload share one trace generation; across batches, results
// (and materialized traces) are reused through the content-addressed
// caches. Duplicate specs collapse to a single simulation.
func (e *Engine) Results(ctx context.Context, exec Executor, specs []SimSpec) ([]*sim.Result, error) {
	if exec == nil {
		exec = Sequential{}
	}
	per, err := e.planSpecs(exec, specs)
	if err != nil {
		return nil, err
	}
	roots := dedupJobs(per)
	if err := e.Execute(ctx, exec, roots...); err != nil {
		return nil, err
	}
	return collectResults(per)
}

// SchemeOverTraces runs one scheme over several workloads and returns the
// per-workload results plus their reference-weighted merge — the engine
// counterpart of sim.SchemeOverTraces, executed as a trace → simulate →
// aggregate DAG with every stage cached.
func (e *Engine) SchemeOverTraces(ctx context.Context, exec Executor, scheme string,
	cfgs []workload.Config, check bool) (per []*sim.Result, merged *sim.Result, err error) {
	if exec == nil {
		exec = Sequential{}
	}
	specs := make([]SimSpec, len(cfgs))
	for i, cfg := range cfgs {
		specs[i] = SimSpec{Trace: cfg, Scheme: scheme, Check: check}
	}
	perJobs, err := e.planSpecs(exec, specs)
	if err != nil {
		return nil, nil, err
	}
	mj := e.mergeJob(fmt.Sprintf("merge:%s", scheme), specs, perJobs)
	if err := e.Execute(ctx, exec, mj); err != nil {
		return nil, nil, err
	}
	if per, err = collectResults(perJobs); err != nil {
		return nil, nil, err
	}
	out, err := mj.Output()
	if err != nil {
		return nil, nil, err
	}
	return per, out.(*sim.Result), nil
}

// Compare runs several schemes over the same set of workloads in one
// batch — the shape of Table 4 and Figure 2 — and returns each scheme's
// merged result. All schemes subscribe to one generation of each
// uncached workload, streamed concurrently under the Parallel executor.
func (e *Engine) Compare(ctx context.Context, exec Executor, schemes []string,
	cfgs []workload.Config, check bool) (map[string]*sim.Result, error) {
	if exec == nil {
		exec = Sequential{}
	}
	specs := make([]SimSpec, 0, len(schemes)*len(cfgs))
	for _, s := range schemes {
		for _, cfg := range cfgs {
			specs = append(specs, SimSpec{Trace: cfg, Scheme: s, Check: check})
		}
	}
	perJobs, err := e.planSpecs(exec, specs)
	if err != nil {
		return nil, err
	}
	merges := make([]*Job, len(schemes))
	for i, s := range schemes {
		merges[i] = e.mergeJob(fmt.Sprintf("merge:%s", s),
			specs[i*len(cfgs):(i+1)*len(cfgs)], perJobs[i*len(cfgs):(i+1)*len(cfgs)])
	}
	if err := e.Execute(ctx, exec, merges...); err != nil {
		return nil, err
	}
	out := make(map[string]*sim.Result, len(schemes))
	for i, s := range schemes {
		v, err := merges[i].Output()
		if err != nil {
			return nil, err
		}
		out[s] = v.(*sim.Result)
	}
	return out, nil
}

// RunProtocolOverTraces simulates engines built by build over already
// materialized traces (optionally filtered) and merges the results. It is
// the engine's escape hatch for non-registry protocols and filtered
// replays; the work parallelizes across traces but is uncached, since an
// arbitrary builder or filter has no content identity.
func (e *Engine) RunProtocolOverTraces(ctx context.Context, exec Executor,
	build func(ncpu int) core.Protocol, traces []*trace.Trace,
	filter func(trace.Source) trace.Source, opts sim.Options) (*sim.Result, error) {
	if exec == nil {
		exec = Sequential{}
	}
	if len(traces) == 0 {
		return nil, fmt.Errorf("engine: no traces to run")
	}
	jobs := make([]*Job, len(traces))
	for i, t := range traces {
		t := t
		jobs[i] = &Job{
			ID: fmt.Sprintf("protocol:%s", t.Name),
			Run: func(ctx context.Context, _ []any) (any, error) {
				src := trace.Source(t.Iterator())
				if filter != nil {
					src = filter(src)
				}
				p := build(t.CPUs)
				r, err := sim.Simulate(p, cancellable(ctx, src), opts)
				if err != nil {
					return nil, fmt.Errorf("%s over %s: %w", p.Name(), t.Name, err)
				}
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				e.simsRun.Add(1)
				r.Trace = t.Name
				return r, nil
			},
		}
	}
	mj := &Job{
		ID:   "merge:protocol",
		Deps: jobs,
		Run: func(_ context.Context, in []any) (any, error) {
			rs := make([]*sim.Result, len(in))
			for i, v := range in {
				rs[i] = v.(*sim.Result)
			}
			return sim.Merge(rs...)
		},
	}
	if err := e.Execute(ctx, exec, mj); err != nil {
		return nil, err
	}
	out, err := mj.Output()
	if err != nil {
		return nil, err
	}
	return out.(*sim.Result), nil
}

// mergeJob aggregates the per-spec results of one scheme, cached by the
// ordered combination of the inputs' keys.
func (e *Engine) mergeJob(id string, specs []SimSpec, deps []*Job) *Job {
	keys := make([]Key, len(specs))
	for i, s := range specs {
		keys[i] = s.Key()
	}
	return &Job{
		ID:   id,
		Key:  mergeKey(keys),
		Deps: deps,
		Run: func(_ context.Context, in []any) (any, error) {
			rs := make([]*sim.Result, len(in))
			for i, v := range in {
				rs[i] = v.(*sim.Result)
			}
			return sim.Merge(rs...)
		},
	}
}

// planSpecs builds the trace-generation → simulation stages for a batch,
// returning one result job per spec (duplicate specs share a job).
// Delivery of each workload's references is chosen per trace group:
//
//   - already materialized (or a non-streaming executor): a trace job
//     feeds per-scheme simulation jobs that replay it;
//   - otherwise, under a streaming executor: a stream job generates the
//     workload once and multicasts chunks to all of the group's
//     simulators, which run concurrently inside the job; per-spec
//     extraction jobs then publish each result under its own cache key.
func (e *Engine) planSpecs(exec Executor, specs []SimSpec) ([]*Job, error) {
	per := make([]*Job, len(specs))
	byKey := make(map[Key]*Job)

	type group struct {
		cfg     workload.Config
		specs   []SimSpec
		keys    []Key
		jobs    []*Job // filled in the second pass
		indices []int  // positions in per
	}
	var groups []*group
	byTrace := make(map[Key]*group)

	for i, s := range specs {
		if err := s.Trace.Validate(); err != nil {
			return nil, err
		}
		if _, err := core.NewByName(s.Scheme, s.Trace.CPUs); err != nil {
			return nil, err
		}
		k := s.Key()
		if j, ok := byKey[k]; ok {
			per[i] = j
			continue
		}
		tk := TraceKey(s.Trace)
		g, ok := byTrace[tk]
		if !ok {
			g = &group{cfg: s.Trace}
			byTrace[tk] = g
			groups = append(groups, g)
		}
		j := &Job{Key: k} // ID and Run assigned below, per delivery mode
		byKey[k] = j
		per[i] = j
		g.specs = append(g.specs, s)
		g.keys = append(g.keys, k)
		g.jobs = append(g.jobs, j)
	}

	for _, g := range groups {
		g := g
		// Specs whose results are already cached (or in flight) must not
		// force a generation: give them standalone recompute bodies that
		// in practice resolve from the cache.
		pending := make([]int, 0, len(g.specs))
		for i := range g.specs {
			if e.results.peek(g.keys[i]) {
				e.bindMaterialized(g.jobs[i], g.specs[i], nil)
				continue
			}
			pending = append(pending, i)
		}
		switch {
		case len(pending) == 0:
			// Nothing to generate for this workload.
		case exec.streams() && !e.traces.peek(TraceKey(g.cfg)):
			reqs := make([]SimSpec, len(pending))
			keys := make([]Key, len(pending))
			for n, i := range pending {
				reqs[n], keys[n] = g.specs[i], g.keys[i]
			}
			stream := &Job{
				ID: fmt.Sprintf("stream:%s", g.cfg.Name),
				Run: func(ctx context.Context, _ []any) (any, error) {
					return e.streamGroup(ctx, g.cfg, reqs, keys)
				},
			}
			for n, i := range pending {
				k := keys[n]
				j := g.jobs[i]
				j.ID = fmt.Sprintf("sim:%s@%s", g.specs[i].Scheme, g.cfg.Name)
				j.Deps = []*Job{stream}
				j.Run = func(_ context.Context, in []any) (any, error) {
					r, ok := in[0].(map[Key]*sim.Result)[k]
					if !ok || r == nil {
						return nil, fmt.Errorf("stream produced no result")
					}
					return r, nil
				}
			}
		default:
			tj := &Job{
				ID: fmt.Sprintf("trace:%s", g.cfg.Name),
				Run: func(ctx context.Context, _ []any) (any, error) {
					return e.Trace(ctx, g.cfg)
				},
			}
			for _, i := range pending {
				e.bindMaterialized(g.jobs[i], g.specs[i], tj)
			}
		}
	}
	return per, nil
}

// bindMaterialized gives a spec job a body that simulates over the
// materialized trace — either the trace job's output (traceJob != nil) or
// an engine-cache lookup (the cache-hit recompute path).
func (e *Engine) bindMaterialized(j *Job, spec SimSpec, traceJob *Job) {
	j.ID = fmt.Sprintf("sim:%s@%s", spec.Scheme, spec.Trace.Name)
	if traceJob != nil {
		j.Deps = []*Job{traceJob}
		j.Run = func(ctx context.Context, in []any) (any, error) {
			t := in[0].(*trace.Trace)
			return e.simulateSource(ctx, spec, t.Iterator())
		}
		return
	}
	j.Run = func(ctx context.Context, _ []any) (any, error) {
		t, err := e.Trace(ctx, spec.Trace)
		if err != nil {
			return nil, err
		}
		return e.simulateSource(ctx, spec, t.Iterator())
	}
}

// streamGroup generates one workload and streams it to all pending
// simulators of the group, which run concurrently; it returns the result
// per spec key. Unless the engine discards streamed traces, the generated
// reference stream is also captured into the trace cache, so later
// experiments needing the raw trace find it materialized.
func (e *Engine) streamGroup(ctx context.Context, cfg workload.Config,
	specs []SimSpec, keys []Key) (map[Key]*sim.Result, error) {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()

	b := newBroadcast(cfg, len(specs), e.chunkRefs, e.chunkWindow, !e.discard)
	var produced *trace.Trace
	var prodErr error
	var pwg sync.WaitGroup
	pwg.Add(1)
	go func() {
		defer pwg.Done()
		produced, prodErr = b.run(gctx)
	}()

	results := make([]*sim.Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := e.simulateSource(gctx, specs[i], b.subs[i])
			if err != nil {
				errs[i] = err
				cancel() // unblock the producer and the other simulators
				return
			}
			results[i] = r
		}()
	}
	wg.Wait()
	pwg.Wait()
	e.tracesStreamed.Add(1)
	e.streamChunks.Add(b.chunks)
	e.streamStalls.Add(b.stalls)
	if e.obs != nil {
		e.obs.StreamEnded(cfg.Name, b.chunks, b.stalls)
	}

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s over %s: %w", specs[i].Scheme, cfg.Name, err)
		}
	}
	if prodErr != nil {
		// The producer aborted, so every "successful" simulation above saw
		// a truncated stream; none of it is trustworthy.
		return nil, prodErr
	}
	if produced != nil {
		k := TraceKey(cfg)
		if f, owner := e.traces.claim(k); owner {
			e.tracesGenerated.Add(1)
			e.traces.fulfill(k, f, produced, nil)
		}
	}
	out := make(map[Key]*sim.Result, len(specs))
	for i, k := range keys {
		out[k] = results[i]
	}
	return out, nil
}

// simulateSource runs one spec's protocol over a reference source.
func (e *Engine) simulateSource(ctx context.Context, spec SimSpec, src trace.Source) (*sim.Result, error) {
	p, err := core.NewByName(spec.Scheme, spec.Trace.CPUs)
	if err != nil {
		return nil, err
	}
	if spec.BlockBytes != 0 && spec.BlockBytes != trace.BlockBytes {
		if src, err = trace.WithBlockSize(src, spec.BlockBytes); err != nil {
			return nil, err
		}
	}
	r, err := sim.Simulate(p, cancellable(ctx, src), sim.Options{Check: spec.Check, BatchRefs: e.batchRefs})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		// The source may have been cut short by cancellation; the partial
		// result must not escape into the cache.
		return nil, err
	}
	e.simsRun.Add(1)
	r.Trace = spec.Trace.Name
	return r, nil
}

func dedupJobs(jobs []*Job) []*Job {
	seen := make(map[*Job]bool, len(jobs))
	out := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		if !seen[j] {
			seen[j] = true
			out = append(out, j)
		}
	}
	return out
}

func collectResults(jobs []*Job) ([]*sim.Result, error) {
	out := make([]*sim.Result, len(jobs))
	for i, j := range jobs {
		v, err := j.Output()
		if err != nil {
			return nil, err
		}
		out[i] = v.(*sim.Result)
	}
	return out, nil
}
