package engine

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"dirsim/internal/obs"
	"dirsim/internal/workload"
)

// jobRecord is one observed lifecycle event.
type jobRecord struct {
	id, kind, key string
	dur           time.Duration
	cacheHit      bool
	err           error
}

// testObserver records every notification, for assertions.
type testObserver struct {
	mu        sync.Mutex
	scheduled []jobRecord
	started   []jobRecord
	finished  []jobRecord
	streams   []struct {
		trace          string
		chunks, stalls int64
	}
}

func (o *testObserver) JobScheduled(_ context.Context, id, kind, key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.scheduled = append(o.scheduled, jobRecord{id: id, kind: kind, key: key})
}

func (o *testObserver) JobStarted(_ context.Context, id, kind, key string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started = append(o.started, jobRecord{id: id, kind: kind, key: key})
}

func (o *testObserver) JobFinished(_ context.Context, id, kind, key string, d time.Duration, cacheHit bool, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.finished = append(o.finished, jobRecord{id: id, kind: kind, key: key, dur: d, cacheHit: cacheHit, err: err})
}

func (o *testObserver) StreamEnded(_ context.Context, trace string, chunks, stalls int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.streams = append(o.streams, struct {
		trace          string
		chunks, stalls int64
	}{trace, chunks, stalls})
}

func (o *testObserver) finishedByKind() map[string][]jobRecord {
	o.mu.Lock()
	defer o.mu.Unlock()
	m := map[string][]jobRecord{}
	for _, r := range o.finished {
		m[r.kind] = append(m[r.kind], r)
	}
	return m
}

// TestObserverSeesGenerationAndSimulationSpans is the integration test of
// the observability wiring: per uncached trace the observer must see
// exactly one generation span (a stream job under the Parallel executor,
// a trace job under Sequential) and exactly one simulation span per
// scheme, none of them cache hits.
func TestObserverSeesGenerationAndSimulationSpans(t *testing.T) {
	schemes := []string{"Dir0B", "WTI", "Dragon"}
	cfgs := []workload.Config{workload.POPSConfig(4, 10_000)}

	for _, tc := range []struct {
		exec    Executor
		genKind string
	}{
		{Parallel{Workers: 4}, "stream"},
		{Sequential{}, "trace"},
	} {
		t.Run(tc.exec.Name(), func(t *testing.T) {
			o := &testObserver{}
			e := New(Options{Workers: 4, Observer: o})
			if _, err := e.Compare(context.Background(), tc.exec, schemes, cfgs, false); err != nil {
				t.Fatal(err)
			}

			byKind := o.finishedByKind()
			if got := len(byKind[tc.genKind]); got != 1 {
				t.Errorf("generation (%s) spans = %d, want 1; finished: %v",
					tc.genKind, got, byKind)
			}
			sims := byKind["sim"]
			if len(sims) != len(schemes) {
				t.Errorf("simulation spans = %d, want %d", len(sims), len(schemes))
			}
			for _, r := range sims {
				if r.cacheHit {
					t.Errorf("uncached simulation %s flagged as cache hit", r.id)
				}
				if r.key == "" {
					t.Errorf("simulation %s has no key", r.id)
				}
				if r.err != nil {
					t.Errorf("simulation %s finished with error: %v", r.id, r.err)
				}
			}
			if len(byKind["merge"]) != len(schemes) {
				t.Errorf("merge spans = %d, want %d", len(byKind["merge"]), len(schemes))
			}
			// The generation span carries real wall time.
			if len(byKind[tc.genKind]) == 1 && byKind[tc.genKind][0].dur <= 0 {
				t.Errorf("generation span has no duration: %+v", byKind[tc.genKind][0])
			}

			// Every started job finishes, and nothing starts unscheduled.
			o.mu.Lock()
			ns, nf, nsch := len(o.started), len(o.finished), len(o.scheduled)
			o.mu.Unlock()
			if ns != nf {
				t.Errorf("started %d jobs but finished %d", ns, nf)
			}
			if nsch < ns {
				t.Errorf("scheduled %d jobs but started %d", nsch, ns)
			}

			if tc.exec.streams() {
				o.mu.Lock()
				streams := o.streams
				o.mu.Unlock()
				if len(streams) != 1 || streams[0].trace != cfgs[0].Name || streams[0].chunks == 0 {
					t.Errorf("StreamEnded notifications wrong: %+v", streams)
				}
			}

			// A second identical batch is served from cache: no new
			// generation, every simulation span a cache hit.
			o2 := &testObserver{}
			e.obs = o2
			if _, err := e.Compare(context.Background(), tc.exec, schemes, cfgs, false); err != nil {
				t.Fatal(err)
			}
			byKind2 := o2.finishedByKind()
			if n := len(byKind2["stream"]) + len(byKind2["trace"]); n != 0 {
				t.Errorf("cached rerun regenerated the trace (%d generation spans)", n)
			}
			for _, r := range byKind2["sim"] {
				if !r.cacheHit {
					t.Errorf("cached rerun simulation %s not flagged as cache hit", r.id)
				}
			}
		})
	}
}

// TestObserverCountersMatchStats cross-checks the registry-backed
// counters against the Stats snapshot and the shared-registry option.
func TestObserverCountersMatchStats(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Options{Metrics: reg})
	cfgs := []workload.Config{workload.POPSConfig(4, 8_000)}
	if _, _, err := e.SchemeOverTraces(context.Background(), Sequential{}, "Dir0B", cfgs, false); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.SimsRun != reg.Counter("engine.sims.run").Value() {
		t.Errorf("Stats.SimsRun %d != registry %d", s.SimsRun, reg.Counter("engine.sims.run").Value())
	}
	if s.CacheMisses != reg.Counter("engine.cache.misses").Value() {
		t.Errorf("Stats.CacheMisses %d != registry %d", s.CacheMisses,
			reg.Counter("engine.cache.misses").Value())
	}
	if e.Metrics() != reg {
		t.Error("Metrics() does not return the shared registry")
	}
}

// TestStreamStallAccounting forces the producer into back-pressure: a
// one-chunk window whose only consumer drains nothing until the window
// is full, so the producer's next send must block and be counted.
func TestStreamStallAccounting(t *testing.T) {
	cfg := workload.POPSConfig(2, 10_000)
	b := newBroadcast(cfg, 1, 64, 1, false)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.run(context.Background())
	}()

	sub := b.subs[0]
	// Wait for the window to fill, then give the producer time to attempt
	// the next send and park on the full channel before draining.
	for len(sub.ch) < cap(sub.ch) {
		runtime.Gosched()
	}
	time.Sleep(20 * time.Millisecond)
	for {
		if _, ok := sub.Next(); !ok {
			break
		}
	}
	wg.Wait()

	if b.chunks == 0 {
		t.Fatal("no chunks counted")
	}
	if b.stalls == 0 {
		t.Error("full-window send not counted as a stall")
	}
	if b.stalls > b.chunks {
		t.Errorf("stalls %d exceed chunk sends %d for a single subscriber", b.stalls, b.chunks)
	}
}

// TestStreamStallsSurfaceInStats checks the counters propagate from the
// broadcast through the engine to the Stats snapshot.
func TestStreamStallsSurfaceInStats(t *testing.T) {
	e := New(Options{Workers: 4, ChunkRefs: 256, ChunkWindow: 1})
	cfgs := []workload.Config{workload.POPSConfig(4, 20_000)}
	if _, err := e.Compare(context.Background(), Parallel{Workers: 4},
		[]string{"Dir0B", "WTI", "Dragon"}, cfgs, false); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.StreamChunks == 0 {
		t.Error("StreamChunks not surfaced in Stats")
	}
	if s.StreamStalls < 0 || s.StreamStalls > s.StreamChunks*3 {
		t.Errorf("StreamStalls %d out of range for %d chunks × 3 subscribers",
			s.StreamStalls, s.StreamChunks)
	}
}

func TestJobKind(t *testing.T) {
	for id, want := range map[string]string{
		"sim:Dir0B@pops": "sim",
		"trace:pops":     "trace",
		"stream:thor":    "stream",
		"merge:Dir0B":    "merge",
		"adhoc":          "",
		":odd":           "",
	} {
		if got := JobKind(id); got != want {
			t.Errorf("JobKind(%q) = %q, want %q", id, got, want)
		}
	}
}
