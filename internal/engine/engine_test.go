package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// executors returns both strategies so DAG-mechanics tests run under each.
func executors() []Executor {
	return []Executor{Sequential{}, Parallel{Workers: 8}}
}

func TestExecuteDependencyOrder(t *testing.T) {
	for _, exec := range executors() {
		t.Run(exec.Name(), func(t *testing.T) {
			e := New(Options{})
			a := &Job{ID: "a", Run: func(context.Context, []any) (any, error) { return 1, nil }}
			b := &Job{ID: "b", Run: func(context.Context, []any) (any, error) { return 2, nil }}
			c := &Job{
				ID:   "c",
				Deps: []*Job{a, b},
				Run: func(_ context.Context, in []any) (any, error) {
					// Dependency outputs arrive in Deps order.
					return in[0].(int)*10 + in[1].(int), nil
				},
			}
			if err := e.Execute(context.Background(), exec, c); err != nil {
				t.Fatal(err)
			}
			out, err := c.Output()
			if err != nil {
				t.Fatal(err)
			}
			if out.(int) != 12 {
				t.Errorf("c output = %v, want 12", out)
			}
			for _, j := range []*Job{a, b, c} {
				m := j.Metrics()
				if m.Started.IsZero() || m.Finished.Before(m.Started) {
					t.Errorf("job %s has unpopulated metrics: %+v", j.ID, m)
				}
			}
			if got := e.Stats().JobsRun; got != 3 {
				t.Errorf("JobsRun = %d, want 3", got)
			}
		})
	}
}

func TestExecuteSharedDependencyRunsOnce(t *testing.T) {
	for _, exec := range executors() {
		t.Run(exec.Name(), func(t *testing.T) {
			e := New(Options{})
			var runs atomic.Int64
			shared := &Job{ID: "shared", Run: func(context.Context, []any) (any, error) {
				runs.Add(1)
				return "s", nil
			}}
			mk := func(id string) *Job {
				return &Job{ID: id, Deps: []*Job{shared},
					Run: func(_ context.Context, in []any) (any, error) { return in[0], nil }}
			}
			if err := e.Execute(context.Background(), exec, mk("x"), mk("y"), mk("z")); err != nil {
				t.Fatal(err)
			}
			if runs.Load() != 1 {
				t.Errorf("shared dependency ran %d times, want 1", runs.Load())
			}
		})
	}
}

func TestExecuteKeyedDedup(t *testing.T) {
	for _, exec := range executors() {
		t.Run(exec.Name(), func(t *testing.T) {
			e := New(Options{})
			var runs atomic.Int64
			k := hashOf("test", "dedup")
			mk := func(id string) *Job {
				return &Job{ID: id, Key: k, Run: func(context.Context, []any) (any, error) {
					runs.Add(1)
					return 42, nil
				}}
			}
			jobs := []*Job{mk("j1"), mk("j2"), mk("j3")}
			if err := e.Execute(context.Background(), exec, jobs...); err != nil {
				t.Fatal(err)
			}
			if runs.Load() != 1 {
				t.Errorf("keyed job bodies ran %d times, want 1", runs.Load())
			}
			hits := 0
			for _, j := range jobs {
				out, err := j.Output()
				if err != nil || out.(int) != 42 {
					t.Fatalf("job %s output = %v, %v", j.ID, out, err)
				}
				if j.Metrics().CacheHit {
					hits++
				}
			}
			if hits != 2 {
				t.Errorf("cache-hit metrics on %d jobs, want 2", hits)
			}
			// A later batch with the same key is served entirely from cache.
			late := mk("late")
			if err := e.Execute(context.Background(), exec, late); err != nil {
				t.Fatal(err)
			}
			if runs.Load() != 1 {
				t.Errorf("cached key re-ran the body (total runs %d)", runs.Load())
			}
			if out, _ := late.Output(); out.(int) != 42 {
				t.Errorf("late output = %v, want 42", out)
			}
			s := e.Stats()
			if s.CacheHits != 3 || s.CachedResults != 1 {
				t.Errorf("stats = %+v, want 3 hits and 1 cached result", s)
			}
		})
	}
}

func TestExecuteCycleRejected(t *testing.T) {
	e := New(Options{})
	a := &Job{ID: "a", Run: func(context.Context, []any) (any, error) { return nil, nil }}
	b := &Job{ID: "b", Deps: []*Job{a}, Run: func(context.Context, []any) (any, error) { return nil, nil }}
	a.Deps = []*Job{b}
	err := e.Execute(context.Background(), Sequential{}, a)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not rejected: %v", err)
	}
}

func TestExecuteNilRunRejected(t *testing.T) {
	e := New(Options{})
	err := e.Execute(context.Background(), Sequential{}, &Job{ID: "empty"})
	if err == nil || !strings.Contains(err.Error(), "no Run function") {
		t.Errorf("nil Run not rejected: %v", err)
	}
}

func TestExecuteErrorPropagatesAndCancels(t *testing.T) {
	boom := errors.New("boom")
	for _, exec := range executors() {
		t.Run(exec.Name(), func(t *testing.T) {
			e := New(Options{})
			bad := &Job{ID: "bad", Run: func(context.Context, []any) (any, error) {
				return nil, boom
			}}
			var depRan atomic.Bool
			child := &Job{ID: "child", Deps: []*Job{bad},
				Run: func(context.Context, []any) (any, error) {
					depRan.Store(true)
					return nil, nil
				}}
			err := e.Execute(context.Background(), exec, child)
			if !errors.Is(err, boom) || !strings.Contains(err.Error(), "bad") {
				t.Errorf("error = %v, want wrapped boom naming the job", err)
			}
			if depRan.Load() {
				t.Error("dependent of failed job still ran")
			}
		})
	}
}

func TestExecuteContextCancellation(t *testing.T) {
	e := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	first := &Job{ID: "first", Run: func(context.Context, []any) (any, error) {
		cancel()
		close(release)
		return nil, nil
	}}
	var secondRan atomic.Bool
	second := &Job{ID: "second", Deps: []*Job{first},
		Run: func(context.Context, []any) (any, error) {
			secondRan.Store(true)
			return nil, nil
		}}
	err := e.Execute(ctx, Sequential{}, second)
	<-release
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want context.Canceled", err)
	}
	if secondRan.Load() {
		t.Error("job ran after cancellation")
	}
}

func TestKeyedFailureIsRetriable(t *testing.T) {
	e := New(Options{})
	k := hashOf("test", "retry")
	var attempts atomic.Int64
	mk := func() *Job {
		return &Job{ID: "flaky", Key: k, Run: func(context.Context, []any) (any, error) {
			if attempts.Add(1) == 1 {
				return nil, fmt.Errorf("transient")
			}
			return "ok", nil
		}}
	}
	if err := e.Execute(context.Background(), Sequential{}, mk()); err == nil {
		t.Fatal("first attempt should fail")
	}
	// The failure must have been evicted so the key can be recomputed.
	j := mk()
	if err := e.Execute(context.Background(), Sequential{}, j); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
	if out, _ := j.Output(); out.(string) != "ok" {
		t.Errorf("retry output = %v, want ok", out)
	}
	if attempts.Load() != 2 {
		t.Errorf("attempts = %d, want 2", attempts.Load())
	}
}

func TestNilExecutorDefaultsToSequential(t *testing.T) {
	e := New(Options{})
	j := &Job{ID: "solo", Run: func(context.Context, []any) (any, error) { return 7, nil }}
	if err := e.Execute(context.Background(), nil, j); err != nil {
		t.Fatal(err)
	}
	if out, _ := j.Output(); out.(int) != 7 {
		t.Errorf("output = %v, want 7", out)
	}
}
