package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dirsim/internal/faults"
	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// The run recorder must receive the engine's failure-path events.
var _ FaultObserver = (*obs.Recorder)(nil)

// transientErr is a self-declared retryable failure for the retry tests.
type transientErr struct{}

func (transientErr) Error() string   { return "transient blip" }
func (transientErr) Retryable() bool { return true }

// TestPanicIsolation: a panicking job body must surface as a structured
// *JobError carrying the recovered stack — never unwind through the
// executor — under both executors.
func TestPanicIsolation(t *testing.T) {
	for _, exec := range []Executor{Sequential{}, Parallel{Workers: 4}} {
		e := New(Options{})
		j := &Job{ID: "boom", Run: func(context.Context, []any) (any, error) {
			panic("kaboom")
		}}
		err := e.Execute(context.Background(), exec, j)
		if err == nil {
			t.Fatalf("%s: panic did not fail the run", exec.Name())
		}
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("%s: error is not a *JobError: %v", exec.Name(), err)
		}
		if !je.Panicked || je.ID != "boom" {
			t.Errorf("%s: JobError = %+v, want Panicked for job boom", exec.Name(), je)
		}
		if !strings.Contains(string(je.Stack), "faults_test") {
			t.Errorf("%s: stack does not point at the panic site:\n%s", exec.Name(), je.Stack)
		}
		if !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("%s: error loses the panic value: %v", exec.Name(), err)
		}
		if got := e.Stats().JobPanics; got != 1 {
			t.Errorf("%s: JobPanics = %d, want 1", exec.Name(), got)
		}
	}
}

// TestExecuteAllKeepsGoing: in keep-going mode a failed job sinks only
// its own dependents — which record the dependency failure without
// running — while independent jobs complete.
func TestExecuteAllKeepsGoing(t *testing.T) {
	for _, exec := range []Executor{Sequential{}, Parallel{Workers: 4}} {
		e := New(Options{})
		bad := &Job{ID: "bad", Run: func(context.Context, []any) (any, error) {
			return nil, errors.New("broken")
		}}
		depRan := false
		dep := &Job{ID: "dep", Deps: []*Job{bad}, Run: func(context.Context, []any) (any, error) {
			depRan = true
			return "never", nil
		}}
		good := &Job{ID: "good", Run: func(context.Context, []any) (any, error) {
			return 42, nil
		}}
		if err := e.ExecuteAll(context.Background(), exec, dep, good); err != nil {
			t.Fatalf("%s: ExecuteAll returned %v; job failures belong on Output", exec.Name(), err)
		}
		if v, err := good.Output(); err != nil || v != 42 {
			t.Errorf("%s: independent job: %v, %v", exec.Name(), v, err)
		}
		if depRan {
			t.Errorf("%s: dependent body ran despite failed dependency", exec.Name())
		}
		_, err := dep.Output()
		var je *JobError
		if !errors.As(err, &je) || !strings.Contains(err.Error(), "dependency bad failed") {
			t.Errorf("%s: dependent error = %v, want JobError naming dependency bad", exec.Name(), err)
		}
		if _, err := bad.Output(); err == nil || !strings.Contains(err.Error(), "broken") {
			t.Errorf("%s: failing job error = %v", exec.Name(), err)
		}
	}
}

// TestRetryRecoversTransient: a body failing with a retryable error is
// re-attempted with backoff until it succeeds, within the budget.
func TestRetryRecoversTransient(t *testing.T) {
	e := New(Options{Retries: 3, RetryBackoff: time.Millisecond})
	calls := 0
	j := &Job{ID: "flaky", Run: func(context.Context, []any) (any, error) {
		calls++
		if calls < 3 {
			return nil, transientErr{}
		}
		return "ok", nil
	}}
	if err := e.Execute(context.Background(), Sequential{}, j); err != nil {
		t.Fatalf("retryable failure not recovered: %v", err)
	}
	if v, _ := j.Output(); v != "ok" {
		t.Errorf("output = %v", v)
	}
	if j.Metrics().Attempts != 3 {
		t.Errorf("Attempts = %d, want 3", j.Metrics().Attempts)
	}
	if got := e.Stats().JobRetries; got != 2 {
		t.Errorf("JobRetries = %d, want 2", got)
	}
}

// TestRetryBudgetExhausted: a persistently failing retryable body gives
// up after the budget, reporting the attempt count.
func TestRetryBudgetExhausted(t *testing.T) {
	e := New(Options{Retries: 2, RetryBackoff: time.Millisecond})
	j := &Job{ID: "doomed", Run: func(context.Context, []any) (any, error) {
		return nil, transientErr{}
	}}
	err := e.Execute(context.Background(), Sequential{}, j)
	var je *JobError
	if !errors.As(err, &je) || je.Attempts != 3 {
		t.Fatalf("error = %v, want JobError after 3 attempts", err)
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Errorf("error does not report attempts: %v", err)
	}
}

// TestPlainErrorsNotRetried: only errors that declare themselves
// retryable (or per-job deadline expiries) consume the retry budget; a
// plain failure keeps failing fast even with retries configured.
func TestPlainErrorsNotRetried(t *testing.T) {
	e := New(Options{Retries: 3, RetryBackoff: time.Millisecond})
	calls := 0
	j := &Job{ID: "hard", Run: func(context.Context, []any) (any, error) {
		calls++
		return nil, errors.New("deterministic failure")
	}}
	if err := e.Execute(context.Background(), Sequential{}, j); err == nil {
		t.Fatal("failure swallowed")
	}
	if calls != 1 {
		t.Errorf("non-retryable body ran %d times, want 1", calls)
	}
}

// TestPerJobRetryOverride: Job.Retries overrides the engine budget in
// both directions — more attempts, or none at all.
func TestPerJobRetryOverride(t *testing.T) {
	e := New(Options{Retries: 5, RetryBackoff: time.Millisecond})
	calls := 0
	noRetry := &Job{ID: "noretry", Retries: -1, Run: func(context.Context, []any) (any, error) {
		calls++
		return nil, transientErr{}
	}}
	if err := e.Execute(context.Background(), Sequential{}, noRetry); err == nil {
		t.Fatal("failure swallowed")
	}
	if calls != 1 {
		t.Errorf("Retries<0 job ran %d times, want 1", calls)
	}
}

// TestJobTimeout: a body exceeding its per-job deadline fails with a
// structured timeout while the run itself stays alive — and the expiry
// is retryable, so a budget grants it another attempt.
func TestJobTimeout(t *testing.T) {
	e := New(Options{JobTimeout: 20 * time.Millisecond, Retries: 1, RetryBackoff: time.Millisecond})
	j := &Job{ID: "stuck", Run: func(ctx context.Context, _ []any) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	err := e.Execute(context.Background(), Sequential{}, j)
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("error = %v, want *JobError", err)
	}
	if !je.Timeout || je.Panicked {
		t.Errorf("JobError = %+v, want Timeout", je)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("timeout does not unwrap to DeadlineExceeded: %v", err)
	}
	if je.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (timeouts are retryable)", je.Attempts)
	}
	if got := e.Stats().JobTimeouts; got != 2 {
		t.Errorf("JobTimeouts = %d, want 2", got)
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error does not say timed out: %v", err)
	}
}

// faultMatrixSchemes/Configs are the workloads shared by the injected
// fault tests below: small enough to keep the matrix cheap, large enough
// to stream several chunks per trace.
var faultMatrixSchemes = []string{"Dir0B", "WTI"}

func faultMatrixConfigs() []workload.Config { return workload.StandardConfigs(4, 10_000) }

// cleanCompare computes the fault-free baseline the degraded runs are
// judged against.
func cleanCompare(t *testing.T, exec Executor, schemes []string, cfgs []workload.Config) map[string]*sim.Result {
	t.Helper()
	e := New(Options{Workers: 4, ChunkRefs: 1024})
	out, err := e.Compare(context.Background(), exec, schemes, cfgs, false)
	if err != nil {
		t.Fatalf("clean baseline failed: %v", err)
	}
	return out
}

// faultyCompare runs one Compare under the given fault schedule and
// returns the surviving results plus the set of failed schemes.
func faultyCompare(t *testing.T, exec Executor, fc faults.Config, schemes []string,
	cfgs []workload.Config) (map[string]*sim.Result, map[string]error) {
	t.Helper()
	e := New(Options{Workers: 4, ChunkRefs: 1024, Retries: 1, RetryBackoff: time.Millisecond,
		Faults: faults.New(fc)})
	out, err := e.Compare(context.Background(), exec, schemes, cfgs, false)
	if err == nil {
		return out, nil
	}
	p, ok := AsPartial(err)
	if !ok {
		t.Fatalf("%s under %+v: non-partial failure: %v", exec.Name(), fc, err)
	}
	return out, p.Failed
}

// TestComparePartialOnInjectedPanic is the headline acceptance property:
// an injected panic inside one scheme's pipeline yields a *Partial that
// names the failed scheme while the survivors' merged results are
// bit-identical to a clean run — and the same seed reproduces the same
// failure set.
func TestComparePartialOnInjectedPanic(t *testing.T) {
	schemes := []string{"Dir0B", "WTI", "Dragon"}
	cfgs := faultMatrixConfigs()
	for _, exec := range []Executor{Sequential{}, Parallel{Workers: 4}} {
		clean := cleanCompare(t, exec, schemes, cfgs)
		// The schedule is a pure function of the seed, so probing seeds for
		// one that fails some schemes but not all is itself deterministic.
		var seed uint64
		var out map[string]*sim.Result
		var failed map[string]error
		for s := uint64(1); s <= 300; s++ {
			fc := faults.Config{Seed: s, Panic: 0.2}
			out, failed = faultyCompare(t, exec, fc, schemes, cfgs)
			if len(failed) > 0 && len(out) > 0 {
				seed = s
				break
			}
		}
		if seed == 0 {
			t.Fatalf("%s: no seed in 1..300 produced a partial comparison", exec.Name())
		}
		for s, r := range out {
			if !reflect.DeepEqual(r, clean[s]) {
				t.Errorf("%s seed %d: surviving scheme %s diverged from the clean run", exec.Name(), seed, s)
			}
		}
		sawPanic := false
		for s, err := range failed {
			if _, ok := out[s]; ok {
				t.Errorf("%s seed %d: scheme %s both failed and delivered", exec.Name(), seed, s)
			}
			if strings.Contains(err.Error(), "injected panic") {
				sawPanic = true
			}
		}
		if !sawPanic {
			t.Errorf("%s seed %d: no failure names the injected panic: %v", exec.Name(), seed, failed)
		}
		// Same seed, fresh engine: identical failure set.
		_, failed2 := faultyCompare(t, exec, faults.Config{Seed: seed, Panic: 0.2}, schemes, cfgs)
		if !sameKeys(failed, failed2) {
			t.Errorf("%s seed %d: failure set not reproducible: %v vs %v",
				exec.Name(), seed, keysOf(failed), keysOf(failed2))
		}
	}
}

func sameKeys(a, b map[string]error) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}

func keysOf(m map[string]error) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestCachePoisoningDetected mutates a cached result behind the engine's
// back: the next hit must fail stamp revalidation, evict the entry, and
// recompute — serving the corrupted value is the one forbidden outcome.
func TestCachePoisoningDetected(t *testing.T) {
	ctx := context.Background()
	e := New(Options{Verify: true})
	spec := SimSpec{Trace: workload.POPSConfig(4, 6_000), Scheme: "Dir0B"}
	res, err := e.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	base := res[0].Fingerprint()
	baseTotal := res[0].Counts.Total
	// Corrupt the cached object in place (res[0] aliases the cache entry).
	res[0].Counts.Total += 17

	res2, err := e.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatalf("recompute after poisoning failed: %v", err)
	}
	if got := e.Stats().CacheRejected; got < 1 {
		t.Fatalf("CacheRejected = %d, want >= 1", got)
	}
	if res2[0] == res[0] {
		t.Fatal("poisoned cache entry was served instead of recomputed")
	}
	if res2[0].Fingerprint() != base || res2[0].Counts.Total != baseTotal {
		t.Errorf("recomputed result differs from the original: fingerprint %x vs %x",
			res2[0].Fingerprint(), base)
	}
}

// TestPoisonedStampForcesRecompute drives the same defense through the
// injector: with every store's stamp poisoned, every hit is rejected and
// recomputed, and the caller still only ever sees correct results.
func TestPoisonedStampForcesRecompute(t *testing.T) {
	ctx := context.Background()
	spec := SimSpec{Trace: workload.POPSConfig(4, 6_000), Scheme: "Dir0B"}
	clean := New(Options{})
	want, err := clean.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}

	e := New(Options{Faults: faults.New(faults.Config{Seed: 1, Poison: 1})})
	for round := 0; round < 3; round++ {
		got, err := e.Results(ctx, Sequential{}, []SimSpec{spec})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !reflect.DeepEqual(got[0], want[0]) {
			t.Fatalf("round %d: poisoned-cache result differs from clean run", round)
		}
	}
	if got := e.Stats().CacheRejected; got < 2 {
		t.Errorf("CacheRejected = %d, want >= 2 (rounds 2 and 3 must reject)", got)
	}
}

// TestStreamChecksumCorruptionDetected: with one chunk guaranteed to be
// corrupted after stamping, every subscriber must catch the mismatch and
// fail its spec rather than price a damaged reference stream.
func TestStreamChecksumCorruptionDetected(t *testing.T) {
	cfg := workload.POPSConfig(4, 40_000)
	e := New(Options{Workers: 4, ChunkRefs: 2048,
		Faults: faults.New(faults.Config{Seed: 3, Corrupt: 1})})
	out, err := e.Compare(context.Background(), Parallel{Workers: 4},
		faultMatrixSchemes, []workload.Config{cfg}, false)
	p, ok := AsPartial(err)
	if !ok {
		t.Fatalf("corrupted stream not reported as partial: %v (out=%d)", err, len(out))
	}
	if len(p.Failed) != len(faultMatrixSchemes) {
		t.Errorf("failed schemes = %v, want all of %v", keysOf(p.Failed), faultMatrixSchemes)
	}
	for s, err := range p.Failed {
		if !strings.Contains(err.Error(), "checksum") {
			t.Errorf("scheme %s: failure does not name the checksum: %v", s, err)
		}
	}
	if got := e.Stats().IntegrityFaults; got < int64(len(faultMatrixSchemes)) {
		t.Errorf("IntegrityFaults = %d, want >= %d", got, len(faultMatrixSchemes))
	}
	// The trace captured from the stream is taken before the injected
	// corruption: replaying it must match a clean generation.
	captured, err := e.Trace(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := workload.MustGenerate(cfg); captured.Fingerprint() != want.Fingerprint() {
		t.Error("retained trace was captured after corruption")
	}
}

// TestTruncationDetected: a silently shortened reference stream must be
// caught by reference accounting on both delivery paths — materialized
// replay (Sequential) and chunked streaming (Parallel).
func TestTruncationDetected(t *testing.T) {
	cfg := workload.POPSConfig(4, 10_000)
	for _, exec := range []Executor{Sequential{}, Parallel{Workers: 4}} {
		found := false
		for seed := uint64(1); seed <= 20 && !found; seed++ {
			e := New(Options{Workers: 4, ChunkRefs: 1024,
				Faults: faults.New(faults.Config{Seed: seed, Truncate: 1})})
			_, err := e.Results(context.Background(), exec, []SimSpec{{Trace: cfg, Scheme: "Dir0B"}})
			p, ok := AsPartial(err)
			if !ok {
				t.Fatalf("%s seed %d: truncated stream did not fail: %v", exec.Name(), seed, err)
			}
			for _, err := range p.Failed {
				if strings.Contains(err.Error(), "truncated") {
					found = true
				}
			}
			if found && e.Stats().IntegrityFaults < 1 {
				t.Errorf("%s seed %d: truncation found but IntegrityFaults = 0", exec.Name(), seed)
			}
		}
		if !found {
			t.Errorf("%s: no seed in 1..20 produced a detected truncation", exec.Name())
		}
	}
}

// TestCancellationMidStreamReleasesChunks cancels a broadcast while its
// subscribers are mid-chunk and unevenly behind: after the drains, every
// pooled chunk must be back (outstanding == 0) and no refcount fault
// recorded.
func TestCancellationMidStreamReleasesChunks(t *testing.T) {
	cfg := workload.POPSConfig(4, 200_000)
	b := newBroadcast(cfg, 2, 1024, 2, false)
	ctx, cancel := context.WithCancel(context.Background())
	prodErr := make(chan error, 1)
	go func() {
		_, err := b.run(ctx)
		prodErr <- err
	}()
	// Leave subscriber 0 mid-chunk and subscriber 1 several chunks ahead,
	// so the cancel lands with shares in every state: consumed, queued,
	// and never-delivered.
	for i := 0; i < 100; i++ {
		if _, ok := b.subs[0].Next(); !ok {
			break
		}
	}
	buf := make([]trace.Ref, 1024)
	for i := 0; i < 2; i++ {
		if b.subs[1].NextBatch(buf) == 0 {
			break
		}
	}
	cancel()
	for _, s := range b.subs {
		s.drain()
	}
	if err := <-prodErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("producer error = %v, want context.Canceled", err)
	}
	if n := b.outstanding.Load(); n != 0 {
		t.Errorf("%d chunks still outside the pool after cancel + drain", n)
	}
	if err := b.faultErr(); err != nil {
		t.Errorf("spurious refcount fault on the cancel path: %v", err)
	}
}

// TestCancelledCompareLeaksNothing cancels a full streamed comparison
// mid-flight and asserts every goroutine the engine started exits.
func TestCancelledCompareLeaksNothing(t *testing.T) {
	snap := faults.Goroutines()
	for i := 0; i < 3; i++ {
		e := New(Options{Workers: 4, ChunkRefs: 512, ChunkWindow: 2})
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := e.Compare(ctx, Parallel{Workers: 4}, []string{"Dir0B", "WTI", "Dragon"},
				workload.StandardConfigs(4, 400_000), false)
			done <- err
		}()
		time.Sleep(time.Duration(1+2*i) * time.Millisecond)
		cancel()
		if err := <-done; err == nil {
			t.Fatalf("run %d: cancellation produced no error", i)
		}
	}
	if err := snap.Leaked(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestRefcountUnderflowDetected: releasing a chunk past its last reader
// must record a fault on the broadcast (discrediting the whole group)
// instead of recycling a chunk someone may still be reading.
func TestRefcountUnderflowDetected(t *testing.T) {
	b := newBroadcast(workload.POPSConfig(2, 100), 1, 64, 2, false)
	c := &refChunk{idx: 7}
	c.live.Store(1)
	b.outstanding.Add(1)
	s := b.subs[0]
	s.curRelease(c)
	if err := b.faultErr(); err != nil {
		t.Fatalf("legitimate release recorded a fault: %v", err)
	}
	if b.outstanding.Load() != 0 {
		t.Fatalf("outstanding = %d after final release", b.outstanding.Load())
	}
	s.curRelease(c) // double release: the bug the refcount guard exists for
	err := b.faultErr()
	if err == nil {
		t.Fatal("double release went undetected")
	}
	if !strings.Contains(err.Error(), "chunk 7") || !strings.Contains(err.Error(), "released") {
		t.Errorf("fault does not identify the chunk: %v", err)
	}
	first := err
	s.curRelease(c)
	if b.faultErr() != first {
		t.Error("later fault displaced the first recorded one")
	}
}

// eventSink records the engine's failure-path callbacks.
type eventSink struct {
	mu      sync.Mutex
	retries int
	panics  int
	rejects int
}

func (s *eventSink) JobScheduled(context.Context, string, string, string) {}
func (s *eventSink) JobStarted(context.Context, string, string, string)   {}
func (s *eventSink) JobFinished(context.Context, string, string, string, time.Duration, bool, error) {
}
func (s *eventSink) StreamEnded(context.Context, string, int64, int64) {}
func (s *eventSink) JobRetried(_ context.Context, _ string, _ int, _ time.Duration, _ error) {
	s.mu.Lock()
	s.retries++
	s.mu.Unlock()
}
func (s *eventSink) JobPanicked(_ context.Context, _ string, _ []byte) {
	s.mu.Lock()
	s.panics++
	s.mu.Unlock()
}
func (s *eventSink) CacheRejected(_ context.Context, _ string) {
	s.mu.Lock()
	s.rejects++
	s.mu.Unlock()
}

// TestFaultObserverEvents: an Observer that also implements
// FaultObserver receives retry, panic, and cache-rejection events.
func TestFaultObserverEvents(t *testing.T) {
	ctx := context.Background()
	sink := &eventSink{}
	e := New(Options{Observer: sink, Verify: true, Retries: 1, RetryBackoff: time.Millisecond})

	calls := 0
	flaky := &Job{ID: "flaky", Run: func(context.Context, []any) (any, error) {
		if calls++; calls == 1 {
			return nil, transientErr{}
		}
		return "ok", nil
	}}
	boom := &Job{ID: "boom", Retries: -1, Run: func(context.Context, []any) (any, error) {
		panic("observed")
	}}
	if err := e.ExecuteAll(ctx, Sequential{}, flaky, boom); err != nil {
		t.Fatal(err)
	}

	spec := SimSpec{Trace: workload.POPSConfig(4, 5_000), Scheme: "Dir0B"}
	res, err := e.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	res[0].Counts.Total++ // corrupt the cached entry
	if _, err := e.Results(ctx, Sequential{}, []SimSpec{spec}); err != nil {
		t.Fatal(err)
	}

	if sink.retries != 1 || sink.panics != 1 || sink.rejects < 1 {
		t.Errorf("events = %d retries, %d panics, %d rejects; want 1, 1, >=1",
			sink.retries, sink.panics, sink.rejects)
	}
}

// TestFaultMatrixSoak sweeps every fault class (and a mixed schedule)
// over both executors with fixed seeds. For each cell it asserts the two
// invariants that make fault runs trustworthy: the same seed reproduces
// the same failure set, and every surviving result is bit-identical to a
// clean run — degraded, never wrong. DIRSIM_SOAK=1 widens the seed
// sweep; -short narrows it.
func TestFaultMatrixSoak(t *testing.T) {
	matrix := []struct {
		name string
		cfg  faults.Config
	}{
		{"panic", faults.Config{Panic: 0.2}},
		{"spurious", faults.Config{Spurious: 0.3}},
		{"truncate", faults.Config{Truncate: 0.5}},
		{"corrupt", faults.Config{Corrupt: 0.5}},
		{"slow", faults.Config{Slow: 0.2, SlowDelay: 100 * time.Microsecond}},
		{"poison", faults.Config{Poison: 1}},
		{"mixed", faults.Config{Panic: 0.1, Spurious: 0.2, Truncate: 0.2, Corrupt: 0.2, Poison: 0.3}},
	}
	seeds := []uint64{1, 2}
	if os.Getenv("DIRSIM_SOAK") != "" {
		seeds = []uint64{1, 2, 3, 4, 5, 6}
	} else if testing.Short() {
		seeds = []uint64{1}
	}
	cfgs := faultMatrixConfigs()
	clean := cleanCompare(t, Sequential{}, faultMatrixSchemes, cfgs)

	for _, exec := range []Executor{Sequential{}, Parallel{Workers: 4}} {
		for _, m := range matrix {
			for _, seed := range seeds {
				t.Run(fmt.Sprintf("%s/%s/seed%d", exec.Name(), m.name, seed), func(t *testing.T) {
					fc := m.cfg
					fc.Seed = seed
					out1, failed1 := faultyCompare(t, exec, fc, faultMatrixSchemes, cfgs)
					out2, failed2 := faultyCompare(t, exec, fc, faultMatrixSchemes, cfgs)
					if !sameKeys(failed1, failed2) {
						t.Errorf("failure set not reproducible: %v vs %v",
							keysOf(failed1), keysOf(failed2))
					}
					for _, out := range []map[string]*sim.Result{out1, out2} {
						for s, r := range out {
							if !reflect.DeepEqual(r, clean[s]) {
								t.Errorf("surviving scheme %s diverged from the clean run", s)
							}
						}
					}
				})
			}
		}
	}
}
