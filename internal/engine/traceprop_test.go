package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"dirsim/internal/faults"
	"dirsim/internal/obs"
	exectrace "dirsim/internal/obs/trace"
	"dirsim/internal/store"
	"dirsim/internal/workload"
)

// traceSink records, for every observer callback, which trace ID the
// callback's context carried — the property the journal's causal chain
// rests on.
type traceSink struct {
	mu sync.Mutex
	// traces maps callback name → trace IDs seen ("" = untraced ctx).
	traces map[string][]string
	// spans counts callbacks whose ctx carried a non-zero span ID.
	spans map[string]int
	// hits counts cache-hit JobFinished and hit TierFetched callbacks.
	cacheHits, tierHits int
}

func newTraceSink() *traceSink {
	return &traceSink{traces: map[string][]string{}, spans: map[string]int{}}
}

func (s *traceSink) record(ctx context.Context, event string) {
	tc, _ := obs.TraceFrom(ctx)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces[event] = append(s.traces[event], tc.Trace)
	if tc.Span != 0 {
		s.spans[event]++
	}
}

func (s *traceSink) JobScheduled(ctx context.Context, id, kind, key string) {
	s.record(ctx, "job.scheduled")
}
func (s *traceSink) JobStarted(ctx context.Context, id, kind, key string) {
	s.record(ctx, "job.start")
}
func (s *traceSink) JobFinished(ctx context.Context, id, kind, key string, d time.Duration, cacheHit bool, err error) {
	s.record(ctx, "job.finish")
	if cacheHit {
		s.mu.Lock()
		s.cacheHits++
		s.mu.Unlock()
	}
}
func (s *traceSink) StreamEnded(ctx context.Context, trace string, chunks, stalls int64) {
	s.record(ctx, "stream.end")
}
func (s *traceSink) TierFetched(ctx context.Context, kind, key string, hit bool, d time.Duration) {
	s.record(ctx, "store.load")
	if hit {
		s.mu.Lock()
		s.tierHits++
		s.mu.Unlock()
	}
}
func (s *traceSink) TierStored(ctx context.Context, kind, key string, d time.Duration) {
	s.record(ctx, "store.store")
}
func (s *traceSink) JobRetried(ctx context.Context, id string, attempt int, backoff time.Duration, err error) {
	s.record(ctx, "job.retry")
}
func (s *traceSink) JobPanicked(ctx context.Context, id string, stack []byte) {
	s.record(ctx, "job.panic")
}
func (s *traceSink) CacheRejected(ctx context.Context, key string) {
	s.record(ctx, "cache.reject")
}

// requireAll asserts every recorded trace for event equals want and that
// the event fired at all.
func (s *traceSink) requireAll(t *testing.T, event, want string) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	got := s.traces[event]
	if len(got) == 0 {
		t.Fatalf("no %s callbacks recorded", event)
	}
	for _, tr := range got {
		if tr != want {
			t.Fatalf("%s callback carried trace %q, want %q (all: %v)", event, tr, want, got)
		}
	}
}

func tracePropConfigs() []workload.Config { return workload.StandardConfigs(2, 5_000) }

// TestTracePropagationThroughJobsAndCache: every observer callback of a
// traced submission carries the submitter's trace ID — including the
// cache-hit JobFinished of a second, differently-traced submission of
// identical work, which must carry the SECOND caller's trace (the hit
// belongs to whoever asked).
func TestTracePropagationThroughJobsAndCache(t *testing.T) {
	sink := newTraceSink()
	e := New(Options{Observer: sink, Tracer: exectrace.New()})
	cfgs := tracePropConfigs()

	ctx1 := obs.WithTrace(context.Background(), obs.TraceContext{Trace: "run-1"})
	if _, _, err := e.SchemeOverTraces(ctx1, Sequential{}, "Dir0B", cfgs, false); err != nil {
		t.Fatal(err)
	}
	for _, ev := range []string{"job.scheduled", "job.start", "job.finish"} {
		sink.requireAll(t, ev, "run-1")
	}
	if sink.spans["job.finish"] == 0 {
		t.Error("no JobFinished ctx carried a span ID despite an attached tracer")
	}

	// Second submission, same work, new trace: everything is a cache hit
	// and every callback carries the new trace.
	sink2 := newTraceSink()
	e.obs = sink2 // same engine, fresh sink
	ctx2 := obs.WithTrace(context.Background(), obs.TraceContext{Trace: "run-2"})
	if _, _, err := e.SchemeOverTraces(ctx2, Sequential{}, "Dir0B", cfgs, false); err != nil {
		t.Fatal(err)
	}
	sink2.requireAll(t, "job.finish", "run-2")
	if sink2.cacheHits == 0 {
		t.Error("re-submission produced no cache-hit JobFinished callbacks")
	}
}

// TestTracePropagationThroughStoreTiers: durable-store loads and stores
// fire TierObserver callbacks carrying the requesting submission's
// trace — a cold engine's write-throughs carry the cold trace, and a
// second engine warm-starting from the same store carries its own.
func TestTracePropagationThroughStoreTiers(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := tracePropConfigs()

	cold := newTraceSink()
	e1 := New(Options{Observer: cold, Store: st})
	ctxCold := obs.WithTrace(context.Background(), obs.TraceContext{Trace: "cold"})
	if _, _, err := e1.SchemeOverTraces(ctxCold, Sequential{}, "Dir0B", cfgs, false); err != nil {
		t.Fatal(err)
	}
	cold.requireAll(t, "store.store", "cold")
	cold.requireAll(t, "store.load", "cold") // misses still fire, tagged

	warm := newTraceSink()
	e2 := New(Options{Observer: warm, Store: st})
	ctxWarm := obs.WithTrace(context.Background(), obs.TraceContext{Trace: "warm"})
	if _, _, err := e2.SchemeOverTraces(ctxWarm, Sequential{}, "Dir0B", cfgs, false); err != nil {
		t.Fatal(err)
	}
	warm.requireAll(t, "store.load", "warm")
	if warm.tierHits == 0 {
		t.Error("warm engine recorded no store tier hits")
	}
}

// TestTracePropagationThroughRetries: a job that fails and re-attempts
// keeps its submission's trace on every JobRetried callback.
func TestTracePropagationThroughRetries(t *testing.T) {
	sink := newTraceSink()
	e := New(Options{Observer: sink, Retries: 2, RetryBackoff: time.Millisecond,
		Faults: faults.New(faults.Config{Seed: 1, Spurious: 1})})
	ctx := obs.WithTrace(context.Background(), obs.TraceContext{Trace: "retry-run"})
	// Every attempt fails spuriously, so the run errors; the retry
	// callbacks along the way are what we are after.
	_, _, _ = e.SchemeOverTraces(ctx, Sequential{}, "Dir0B", tracePropConfigs(), false)
	sink.requireAll(t, "job.retry", "retry-run")
}

// TestUntracedSubmissionStaysUntraced: without a TraceContext the
// callbacks see an untraced context (no fabricated IDs).
func TestUntracedSubmissionStaysUntraced(t *testing.T) {
	sink := newTraceSink()
	e := New(Options{Observer: sink})
	if _, _, err := e.SchemeOverTraces(context.Background(), Sequential{}, "Dir0B", tracePropConfigs(), false); err != nil {
		t.Fatal(err)
	}
	sink.requireAll(t, "job.finish", "")
}
