package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	exectrace "dirsim/internal/obs/trace"
	"dirsim/internal/workload"
)

// traceEvent mirrors the Chrome trace-event fields the acceptance
// criteria require: pid/tid/ph/ts/dur, plus name and the args map the
// exporter uses for parent links.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	ID   uint64         `json:"id"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type flakyErr struct{ n int }

func (e flakyErr) Error() string   { return fmt.Sprintf("transient failure %d", e.n) }
func (e flakyErr) Retryable() bool { return true }

// TestEngineTraceExport runs a real concurrent sweep — streamed
// generation, several schemes, plus a flaky job that needs two retries —
// with the tracer on, exports the trace, and validates the Chrome
// trace-event JSON end to end: required fields on every event, every
// scheduled job and every retry attempt represented as spans, and child
// spans contained within their parents' intervals.
func TestEngineTraceExport(t *testing.T) {
	tr := exectrace.New()
	e := New(Options{Workers: 4, Tracer: tr, ProtoSample: 64, Retries: 2, RetryBackoff: 1})

	cfgs := workload.StandardConfigs(4, 20_000)[:2]
	schemes := []string{"Dir0B", "Dir4NB", "WTI"}
	ctx := context.Background()
	if _, err := e.Compare(ctx, Parallel{}, schemes, cfgs, false); err != nil {
		t.Fatalf("Compare: %v", err)
	}

	// A job that fails twice with a retryable error before succeeding:
	// the trace must show all three attempts plus two retry instants.
	fails := 0
	flaky := &Job{
		ID: "sim:flaky@test",
		Run: func(context.Context, []any) (any, error) {
			if fails < 2 {
				fails++
				return nil, flakyErr{n: fails}
			}
			return "ok", nil
		},
	}
	if err := e.Execute(ctx, Sequential{}, flaky); err != nil {
		t.Fatalf("flaky job: %v", err)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	spans := map[uint64]traceEvent{}
	spanNames := map[string]int{}
	retryInstants := 0
	for _, ev := range tf.TraceEvents {
		if ev.PID == nil || ev.TID == nil || ev.Ph == "" || ev.TS == nil {
			t.Fatalf("event %q missing required field: %+v", ev.Name, ev)
		}
		switch ev.Ph {
		case "M":
			continue
		case "X":
			if ev.Dur == nil {
				t.Fatalf("complete event %q has no dur", ev.Name)
			}
			spans[ev.ID] = ev
			spanNames[ev.Name]++
		case "i":
			if ev.Name == "retry" {
				retryInstants++
			}
		default:
			t.Fatalf("unexpected phase %q on %q", ev.Ph, ev.Name)
		}
	}

	// Every scheduled job is represented as a span named by its ID: the
	// stream jobs, one sim job per (scheme, workload), the merge jobs,
	// and the flaky ad-hoc job.
	var wantJobs []string
	for _, cfg := range cfgs {
		wantJobs = append(wantJobs, "stream:"+cfg.Name)
		for _, s := range schemes {
			wantJobs = append(wantJobs, fmt.Sprintf("sim:%s@%s", s, cfg.Name))
		}
	}
	for _, s := range schemes {
		wantJobs = append(wantJobs, "merge:"+s)
	}
	wantJobs = append(wantJobs, "sim:flaky@test")
	for _, id := range wantJobs {
		if spanNames[id] == 0 {
			t.Errorf("job %q has no span in the trace", id)
		}
	}

	// Every retry attempt is represented: the flaky job ran three
	// attempts (attempt:0 through attempt:2) and fired two retry
	// instants. Attempt spans also exist for every other executed job.
	if spanNames["attempt:0"] == 0 || spanNames["attempt:1"] == 0 || spanNames["attempt:2"] == 0 {
		t.Errorf("missing attempt spans: %v", spanNames)
	}
	if retryInstants != 2 {
		t.Errorf("got %d retry instants, want 2", retryInstants)
	}

	// The streamed sweep's structure is visible: per-subscriber consume
	// spans and per-simulation simulate spans.
	for _, cfg := range cfgs {
		if spanNames["produce:"+cfg.Name] == 0 {
			t.Errorf("no producer span for %s", cfg.Name)
		}
		for _, s := range schemes {
			if spanNames[fmt.Sprintf("consume:%s@%s", s, cfg.Name)] == 0 {
				t.Errorf("no consume span for %s@%s", s, cfg.Name)
			}
			if spanNames[fmt.Sprintf("simulate:%s@%s", s, cfg.Name)] == 0 {
				t.Errorf("no simulate span for %s@%s", s, cfg.Name)
			}
		}
	}

	// Span nesting is consistent: every child with a same-lane parent
	// lies within the parent's [ts, ts+dur] interval (small epsilon for
	// the ns→µs float conversion).
	const eps = 1e-3
	nested := 0
	for _, ev := range spans {
		pid, ok := ev.Args["parent"].(float64)
		if !ok {
			continue
		}
		p, ok := spans[uint64(pid)]
		if !ok {
			continue // parent is an instant or on a lane-crossing link
		}
		if *ev.TID != *p.TID {
			continue // cross-lane parent: containment not required
		}
		nested++
		if *ev.TS < *p.TS-eps || *ev.TS+*ev.Dur > *p.TS+*p.Dur+eps {
			t.Errorf("span %q [%v, %v] escapes parent %q [%v, %v]",
				ev.Name, *ev.TS, *ev.TS+*ev.Dur, p.Name, *p.TS, *p.TS+*p.Dur)
		}
	}
	if nested == 0 {
		t.Error("no same-lane parent/child span pairs found — nesting unverified")
	}

	// Sampled protocol telemetry landed on the engine registry.
	snap := e.Metrics().Snapshot()
	if snap.Counters["sim.proto.dir0b.clean_writes"] == 0 {
		t.Error("protocol telemetry counters absent with ProtoSample on")
	}
	if h := snap.Histograms["sim.proto.dir0b.invals_clean_write"]; h.Count == 0 {
		t.Error("invalidation histogram empty with ProtoSample on")
	}
	if snap.Counters["engine.refs.simulated"] == 0 {
		t.Error("engine.refs.simulated not counted")
	}
}

// TestTracedRunMatchesUntraced pins the zero-interference property: the
// same sweep with tracing and telemetry on produces bit-identical
// results to an untraced run.
func TestTracedRunMatchesUntraced(t *testing.T) {
	cfgs := workload.StandardConfigs(4, 15_000)[:2]
	schemes := []string{"Dir1B", "Dragon"}
	ctx := context.Background()

	plain := New(Options{Workers: 4})
	want, err := plain.Compare(ctx, Parallel{}, schemes, cfgs, false)
	if err != nil {
		t.Fatal(err)
	}
	traced := New(Options{Workers: 4, Tracer: exectrace.New(), ProtoSample: 16})
	got, err := traced.Compare(ctx, Parallel{}, schemes, cfgs, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range schemes {
		if want[s].Fingerprint() != got[s].Fingerprint() {
			t.Errorf("scheme %s: traced run diverged from untraced", s)
		}
	}
}

// TestJobErrorLandsOnSpan checks failed jobs carry their error into the
// exported args.
func TestJobErrorLandsOnSpan(t *testing.T) {
	tr := exectrace.New()
	e := New(Options{Tracer: tr})
	boom := errors.New("boom")
	j := &Job{ID: "sim:bad@x", Run: func(context.Context, []any) (any, error) { return nil, boom }}
	if err := e.Execute(context.Background(), Sequential{}, j); err == nil {
		t.Fatal("job unexpectedly succeeded")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range tf.TraceEvents {
		if ev.Name == "sim:bad@x" && ev.Ph == "X" {
			if s, _ := ev.Args["error"].(string); s == "" {
				t.Errorf("job span has no error arg: %v", ev.Args)
			}
			found = true
		}
	}
	if !found {
		t.Error("failed job has no span")
	}
}
