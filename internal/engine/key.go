package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"dirsim/internal/core"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// Key is a content hash identifying a cacheable artifact — a generated
// trace, a simulation result, or an aggregate. Two artifacts share a key
// exactly when every input that can influence their contents is equal, so
// a key hit is always safe to reuse and a changed input (seed, CPU count,
// profile knob, scheme, cost option, block geometry) always misses.
type Key [sha256.Size]byte

// IsZero reports whether k is the zero key; zero-keyed jobs are never
// cached or deduplicated.
func (k Key) IsZero() bool { return k == Key{} }

// String renders a short hex prefix for logs and metrics.
func (k Key) String() string { return hex.EncodeToString(k[:6]) }

func (k Key) hex() string { return hex.EncodeToString(k[:]) }

// KeyHex renders the full hex form of k — the form durable store tiers
// index entries by, so API consumers can correlate results with store
// contents.
func KeyHex(k Key) string { return k.hex() }

// hashOf hashes the parts with separators so adjacent fields cannot
// collide by concatenation.
func hashOf(parts ...string) Key {
	h := sha256.New()
	for _, p := range parts {
		io.WriteString(h, p)
		h.Write([]byte{0})
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// TraceKey identifies a generated trace by its full workload
// specification — every Profile parameter, the machine size, length and
// seed — plus the global block geometry, since a changed block size
// changes every derived block address.
func TraceKey(cfg workload.Config) Key {
	return hashOf("trace",
		fmt.Sprintf("block=%d", trace.BlockBytes),
		fmt.Sprintf("%#v", cfg))
}

// canonicalScheme maps a scheme name to the engine's canonical spelling
// (scheme lookup is case-insensitive, so "dir0b" and "Dir0B" must share
// cache entries). Unknown names fall back to lowercase; they fail with a
// proper error at plan time.
func canonicalScheme(name string, cpus int) string {
	if cpus < 1 {
		cpus = 4
	}
	if p, err := core.NewByName(name, cpus); err == nil {
		return p.Name()
	}
	return strings.ToLower(name)
}

// mergeKey identifies the aggregate of several cached results; it is
// order-sensitive, matching sim.Merge's order-sensitive trace naming.
func mergeKey(keys []Key) Key {
	parts := make([]string, 0, len(keys)+1)
	parts = append(parts, "merge")
	for _, k := range keys {
		parts = append(parts, k.hex())
	}
	return hashOf(parts...)
}
