package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// JobError is the structured failure record for one job: which job, how
// it died (panic, deadline, or a plain error), after how many attempts,
// and — for panics — the recovered stack. Every job failure the engine
// reports wraps one, so callers can triage a partial run without parsing
// error strings.
type JobError struct {
	// ID and Kind identify the job ("sim:Dir0B@pops", kind "sim").
	ID   string
	Kind string
	// Key is the short content hash for keyed jobs, empty otherwise.
	Key string
	// Attempts is how many times the body ran before the engine gave up.
	Attempts int
	// Panicked marks a recovered panic; Stack holds the goroutine stack
	// captured at the recovery site.
	Panicked bool
	Stack    []byte
	// Timeout marks a per-job deadline expiry (the run's own context was
	// still alive).
	Timeout bool
	// Err is the underlying cause: the body's error, the recovered panic
	// value wrapped as an error, or context.DeadlineExceeded.
	Err error
}

func (e *JobError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "job %s", e.ID)
	switch {
	case e.Panicked:
		b.WriteString(" panicked")
	case e.Timeout:
		b.WriteString(" timed out")
	default:
		b.WriteString(" failed")
	}
	if e.Attempts > 1 {
		fmt.Fprintf(&b, " after %d attempts", e.Attempts)
	}
	fmt.Fprintf(&b, ": %v", e.Err)
	return b.String()
}

func (e *JobError) Unwrap() error { return e.Err }

// Retryable reports whether another attempt could plausibly succeed: a
// deadline expiry is retryable, a panic is not (the body is presumed
// broken, not unlucky), and anything else defers to the cause.
func (e *JobError) Retryable() bool {
	if e.Panicked {
		return false
	}
	if e.Timeout {
		return true
	}
	return IsRetryable(e.Err)
}

// Retryable is implemented by errors that declare themselves transient.
// The engine re-attempts a failed job body only when its error (or one it
// wraps) reports Retryable() == true.
type Retryable interface{ Retryable() bool }

// IsRetryable reports whether err, or any error it wraps, declares itself
// retryable.
func IsRetryable(err error) bool {
	for err != nil {
		if r, ok := err.(Retryable); ok {
			return r.Retryable()
		}
		err = errors.Unwrap(err)
	}
	return false
}

// Partial reports a batch that completed with some failures: Done results
// are valid and were delivered; Failed maps each failed unit (a job ID, a
// trace name, a scheme name — whatever the caller batched over) to its
// error. The batch helpers (Results, SchemeOverTraces, Compare) return a
// *Partial instead of discarding the survivors, so one poisoned
// simulation degrades a sweep instead of voiding it.
type Partial struct {
	// Failed maps the failed unit's name to its error (usually wrapping a
	// *JobError).
	Failed map[string]error
	// Done counts the units that completed successfully.
	Done int
}

func (p *Partial) Error() string {
	names := make([]string, 0, len(p.Failed))
	for name := range p.Failed {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d of %d units failed", len(names), len(names)+p.Done)
	for _, name := range names {
		fmt.Fprintf(&b, "\n  %s: %v", name, p.Failed[name])
	}
	return b.String()
}

// AsPartial unwraps err to a *Partial when the failure is a partial batch
// (some results still delivered), so callers can branch on degraded
// versus void without string matching.
func AsPartial(err error) (*Partial, bool) {
	var p *Partial
	if errors.As(err, &p) {
		return p, true
	}
	return nil, false
}
