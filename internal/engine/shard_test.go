package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"dirsim/internal/faults"
	"dirsim/internal/obs"
	"dirsim/internal/sim"
	"dirsim/internal/workload"
)

// The run recorder is the production ShardObserver.
var _ ShardObserver = (*obs.Recorder)(nil)

// TestEngineShardedBitIdentical is the engine-level acceptance test for
// intra-trace sharding: an engine with Options.Shards > 1 produces
// per-trace and merged results bit-identical to a sequential engine for
// every paper scheme, under both executors, and its counters prove the
// sharded path actually ran.
func TestEngineShardedBitIdentical(t *testing.T) {
	ctx := context.Background()
	cfgs := workload.StandardConfigs(4, 25_000)

	seq := New(Options{})
	shd := New(Options{Shards: 3})

	for _, scheme := range paperSchemes {
		sPer, sMerged, err := seq.SchemeOverTraces(ctx, Sequential{}, scheme, cfgs, false)
		if err != nil {
			t.Fatalf("%s sequential: %v", scheme, err)
		}
		pPer, pMerged, err := shd.SchemeOverTraces(ctx, Parallel{Workers: 4}, scheme, cfgs, false)
		if err != nil {
			t.Fatalf("%s sharded: %v", scheme, err)
		}
		for i := range sPer {
			if !reflect.DeepEqual(sPer[i], pPer[i]) {
				t.Errorf("%s over %s: sharded engine result differs from sequential",
					scheme, cfgs[i].Name)
			}
		}
		if !reflect.DeepEqual(sMerged, pMerged) {
			t.Errorf("%s merged: sharded engine result differs from sequential", scheme)
		}
	}

	st := shd.Stats()
	if st.ShardedSims == 0 || st.ShardedSims != st.SimsRun {
		t.Errorf("ShardedSims = %d of %d sims; want every simulation sharded",
			st.ShardedSims, st.SimsRun)
	}
	if st.ShardRefs != st.RefsSimulated {
		t.Errorf("ShardRefs = %d, want %d (every ref simulated by a shard worker)",
			st.ShardRefs, st.RefsSimulated)
	}
	if sq := seq.Stats(); sq.ShardedSims != 0 || sq.ShardRefs != 0 {
		t.Errorf("sequential engine reports shard activity: %d sims, %d refs",
			sq.ShardedSims, sq.ShardRefs)
	}
}

// TestEngineShardObserverJournal: with a Recorder observing a sharded
// engine, every simulation journals one sim.shard event per shard plus
// one for the splitter (shard -1), refs partitioning the trace exactly.
func TestEngineShardObserverJournal(t *testing.T) {
	const shards = 3
	var buf bytes.Buffer
	rec := obs.NewRecorder(nil, obs.NewJournal(&buf))
	e := New(Options{Shards: shards, Observer: rec})

	spec := SimSpec{Trace: workload.POPSConfig(4, 8_000), Scheme: "Dir1NB"}
	// Generation rounds the requested count up to whole sharing episodes;
	// the journal must account for the refs actually generated.
	tr, err := workload.Generate(spec.Trace)
	if err != nil {
		t.Fatal(err)
	}
	refs := int64(len(tr.Refs))
	if _, err := e.Results(context.Background(), Sequential{}, []SimSpec{spec}); err != nil {
		t.Fatal(err)
	}

	type shardEvent struct {
		Msg    string `json:"msg"`
		Trace  string `json:"workload"`
		Scheme string `json:"scheme"`
		Shard  int    `json:"shard"`
		Shards int    `json:"shards"`
		Refs   int64  `json:"refs"`
	}
	var workers, splitters int
	var sum int64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev shardEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Msg != "sim.shard" {
			continue
		}
		if ev.Trace != spec.Trace.Name || ev.Scheme != "Dir1NB" || ev.Shards != shards {
			t.Errorf("sim.shard event misattributed: %+v", ev)
		}
		if ev.Shard == -1 {
			splitters++
			if ev.Refs != refs {
				t.Errorf("splitter routed %d refs, want %d", ev.Refs, refs)
			}
			continue
		}
		workers++
		sum += ev.Refs
	}
	if workers != shards || splitters != 1 {
		t.Fatalf("journal holds %d worker + %d splitter sim.shard events, want %d + 1",
			workers, splitters, shards)
	}
	if sum != refs {
		t.Errorf("shard refs sum to %d, want %d", sum, refs)
	}
}

// TestEngineShardPanicFault: an injected shard panic (faults spec key
// shardpanic) fails the simulation job with a structured error chain —
// *JobError wrapping the *sim.ShardError that names the killed shard —
// while the engine survives and leaks no goroutines.
func TestEngineShardPanicFault(t *testing.T) {
	snap := faults.Goroutines()
	cfg, err := faults.ParseSpec("shardpanic=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	e := New(Options{Shards: 4, Faults: faults.New(cfg)})

	spec := SimSpec{Trace: workload.POPSConfig(4, 10_000), Scheme: "Dir0B"}
	_, err = e.Results(context.Background(), Sequential{}, []SimSpec{spec})
	if err == nil {
		t.Fatal("shardpanic=1 run succeeded")
	}
	p, ok := AsPartial(err)
	if !ok || len(p.Failed) != 1 {
		t.Fatalf("error %v is not a 1-unit *Partial", err)
	}
	var unit error
	for _, ue := range p.Failed {
		unit = ue
	}
	var je *JobError
	if !errors.As(unit, &je) {
		t.Fatalf("unit error %v wraps no *JobError", unit)
	}
	var serr *sim.ShardError
	if !errors.As(unit, &serr) {
		t.Fatalf("error chain %v carries no *sim.ShardError", unit)
	}
	// Probability 1 kills every shard; the lowest index wins
	// deterministically.
	if serr.Shard != 0 || !serr.Panicked || serr.Stack == "" {
		t.Errorf("ShardError = shard %d panicked %v stack %d bytes; want shard 0, panic, stack",
			serr.Shard, serr.Panicked, len(serr.Stack))
	}
	if !strings.Contains(err.Error(), "injected panic") {
		t.Errorf("error loses the injected-panic cause: %v", err)
	}
	if leak := snap.Leaked(5 * time.Second); leak != nil {
		t.Error(leak)
	}

	// The same engine keeps serving: a scheme whose fault site draws
	// differently is irrelevant here since probability is 1, so disable
	// injection and confirm recovery end-to-end.
	clean := New(Options{Shards: 4})
	res, err := clean.Results(context.Background(), Sequential{}, []SimSpec{spec})
	if err != nil || len(res) != 1 {
		t.Fatalf("clean sharded run after fault: %v", err)
	}
}
