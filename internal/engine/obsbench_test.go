package engine

import (
	"context"
	"testing"

	"dirsim/internal/obs"
	"dirsim/internal/workload"
)

// benchCompare measures the full streamed pipeline — generation
// multicast to three concurrent simulators plus merges — on a fresh
// engine every iteration, so caching never hides the work.
func benchCompare(b *testing.B, o Observer) {
	b.Helper()
	cfgs := workload.StandardConfigs(4, 30_000)
	schemes := []string{"Dir0B", "WTI", "Dragon"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Options{Workers: 4, Observer: o})
		if _, err := e.Compare(context.Background(), Parallel{Workers: 4}, schemes, cfgs, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareNoObserver is the engine's baseline throughput with
// observation disabled — the acceptance bar is that this path stays
// within 2% of the pre-observability engine (the only additions are nil
// checks and the same atomic counter adds the private fields used to
// cost).
func BenchmarkCompareNoObserver(b *testing.B) { benchCompare(b, nil) }

// BenchmarkCompareObserved runs the same work with a full recorder
// (registry + phase breakdown, no journal) attached.
func BenchmarkCompareObserved(b *testing.B) {
	benchCompare(b, obs.NewRecorder(nil, nil))
}
