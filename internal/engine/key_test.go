package engine

import (
	"context"
	"testing"

	"dirsim/internal/workload"
)

// TestSimSpecKeySensitivity pins the cache-key contract: any input that
// can change a simulation result must change the key, and inputs that
// cannot (scheme-name case) must not.
func TestSimSpecKeySensitivity(t *testing.T) {
	base := SimSpec{Trace: workload.POPSConfig(4, 50_000), Scheme: "Dir0B"}

	if base.Key() != base.Key() {
		t.Fatal("identical spec hashed to different keys")
	}
	same := SimSpec{Trace: workload.POPSConfig(4, 50_000), Scheme: "Dir0B"}
	if base.Key() != same.Key() {
		t.Error("independently built identical specs hashed differently")
	}
	lower := base
	lower.Scheme = "dir0b"
	if base.Key() != lower.Key() {
		t.Error("scheme-name case changed the key; lookup is case-insensitive")
	}

	variants := map[string]SimSpec{}
	seed := base
	seed.Trace.Seed += 1
	variants["seed"] = seed
	cpus := SimSpec{Trace: workload.POPSConfig(8, 50_000), Scheme: "Dir0B"}
	variants["cpu count"] = cpus
	refs := SimSpec{Trace: workload.POPSConfig(4, 60_000), Scheme: "Dir0B"}
	variants["trace length"] = refs
	scheme := base
	scheme.Scheme = "Dir1NB"
	variants["scheme"] = scheme
	check := base
	check.Check = true
	variants["check option"] = check
	block := base
	block.BlockBytes = 16
	variants["block size"] = block
	prof := base
	prof.Trace.Profile.SharedObjects += 1
	variants["profile knob"] = prof
	other := SimSpec{Trace: workload.THORConfig(4, 50_000), Scheme: "Dir0B"}
	variants["workload"] = other

	seen := map[Key]string{base.Key(): "base"}
	for name, v := range variants {
		k := v.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("spec differing only in %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

func TestTraceKeySensitivity(t *testing.T) {
	base := workload.POPSConfig(4, 50_000)
	if TraceKey(base) != TraceKey(workload.POPSConfig(4, 50_000)) {
		t.Error("identical configs hashed differently")
	}
	seeded := base
	seeded.Seed += 1
	if TraceKey(base) == TraceKey(seeded) {
		t.Error("seed change did not change the trace key")
	}
	if TraceKey(base) == TraceKey(workload.POPSConfig(16, 50_000)) {
		t.Error("CPU-count change did not change the trace key")
	}
}

// TestCacheHitCountersAcrossBatches verifies — by counter, not by timing —
// that a repeated batch is served from the result cache: no new
// simulations or generations run, and the hit counter grows.
func TestCacheHitCountersAcrossBatches(t *testing.T) {
	e := New(Options{})
	ctx := context.Background()
	cfgs := workload.StandardConfigs(4, 30_000)

	per1, merged1, err := e.SchemeOverTraces(ctx, Sequential{}, "Dir0B", cfgs, false)
	if err != nil {
		t.Fatal(err)
	}
	first := e.Stats()
	if first.SimsRun != int64(len(cfgs)) {
		t.Fatalf("first batch ran %d sims, want %d", first.SimsRun, len(cfgs))
	}
	if first.TracesGenerated != int64(len(cfgs)) {
		t.Fatalf("first batch generated %d traces, want %d", first.TracesGenerated, len(cfgs))
	}

	per2, merged2, err := e.SchemeOverTraces(ctx, Sequential{}, "Dir0B", cfgs, false)
	if err != nil {
		t.Fatal(err)
	}
	second := e.Stats()
	if second.SimsRun != first.SimsRun {
		t.Errorf("repeat batch ran %d new sims, want 0", second.SimsRun-first.SimsRun)
	}
	if second.TracesGenerated != first.TracesGenerated {
		t.Errorf("repeat batch regenerated traces (%d → %d)",
			first.TracesGenerated, second.TracesGenerated)
	}
	if second.CacheHits <= first.CacheHits {
		t.Errorf("repeat batch recorded no cache hits (%d → %d)",
			first.CacheHits, second.CacheHits)
	}
	// Cached results come back as the same objects, not equal copies.
	if merged1 != merged2 {
		t.Error("merged result not served from cache (different pointers)")
	}
	for i := range per1 {
		if per1[i] != per2[i] {
			t.Errorf("per-trace result %d not served from cache", i)
		}
	}

	// A different seed is a different workload: it must miss.
	alt := make([]workload.Config, len(cfgs))
	copy(alt, cfgs)
	alt[0].Seed += 1
	if _, _, err := e.SchemeOverTraces(ctx, Sequential{}, "Dir0B", alt, false); err != nil {
		t.Fatal(err)
	}
	third := e.Stats()
	if third.SimsRun != second.SimsRun+1 {
		t.Errorf("seed-changed batch ran %d new sims, want exactly 1",
			third.SimsRun-second.SimsRun)
	}
}
