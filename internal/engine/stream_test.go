package engine

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// TestBroadcastDeliversExactSequence checks the streaming backbone: every
// subscriber observes exactly the reference sequence a materialized
// generation would produce, and the retained trace matches it too.
func TestBroadcastDeliversExactSequence(t *testing.T) {
	cfg := workload.POPSConfig(4, 20_000)
	want, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const nsubs = 3
	// A deliberately small chunk and window so chunk boundaries and
	// back-pressure are actually exercised.
	b := newBroadcast(cfg, nsubs, 64, 2, true)
	var retained *trace.Trace
	var prodErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		retained, prodErr = b.run(context.Background())
	}()

	got := make([][]trace.Ref, nsubs)
	for i := 0; i < nsubs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := b.subs[i]
			if src.CPUCount() != cfg.CPUs {
				t.Errorf("subscriber %d CPUCount = %d, want %d", i, src.CPUCount(), cfg.CPUs)
			}
			for {
				r, ok := src.Next()
				if !ok {
					return
				}
				got[i] = append(got[i], r)
			}
		}()
	}
	wg.Wait()

	if prodErr != nil {
		t.Fatal(prodErr)
	}
	for i := 0; i < nsubs; i++ {
		if !reflect.DeepEqual(got[i], want.Refs) {
			t.Errorf("subscriber %d saw %d refs differing from Generate's %d",
				i, len(got[i]), len(want.Refs))
		}
	}
	if retained == nil {
		t.Fatal("retain=true returned no materialized trace")
	}
	if retained.Name != want.Name || retained.CPUs != want.CPUs ||
		!reflect.DeepEqual(retained.Refs, want.Refs) {
		t.Error("retained trace differs from Generate output")
	}
}

func TestBroadcastDiscardReturnsNoTrace(t *testing.T) {
	cfg := workload.POPSConfig(2, 5_000)
	b := newBroadcast(cfg, 1, 256, 4, false)
	var wg sync.WaitGroup
	wg.Add(1)
	var retained *trace.Trace
	go func() {
		defer wg.Done()
		retained, _ = b.run(context.Background())
	}()
	for {
		if _, ok := b.subs[0].Next(); !ok {
			break
		}
	}
	wg.Wait()
	if retained != nil {
		t.Error("retain=false still materialized a trace")
	}
}

// TestStreamedBatchPopulatesTraceCache checks the retention contract at
// the engine level: a Parallel batch streams its traces yet leaves them
// materialized in the cache (unless DiscardStreamedTraces is set), so a
// later Trace call costs nothing.
func TestStreamedBatchPopulatesTraceCache(t *testing.T) {
	ctx := context.Background()
	cfg := workload.THORConfig(4, 20_000)
	specs := []SimSpec{
		{Trace: cfg, Scheme: "Dir0B"},
		{Trace: cfg, Scheme: "WTI"},
	}

	e := New(Options{Workers: 4})
	if _, err := e.Results(ctx, Parallel{}, specs); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.TracesStreamed != 1 {
		t.Errorf("TracesStreamed = %d, want 1 (both schemes share one stream)", s.TracesStreamed)
	}
	if s.CachedTraces != 1 {
		t.Errorf("CachedTraces = %d, want the streamed trace captured", s.CachedTraces)
	}
	gen := s.TracesGenerated
	if _, err := e.Trace(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if e.Stats().TracesGenerated != gen {
		t.Error("Trace() after a retained stream regenerated the workload")
	}

	d := New(Options{Workers: 4, DiscardStreamedTraces: true})
	if _, err := d.Results(ctx, Parallel{}, specs); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().CachedTraces; got != 0 {
		t.Errorf("DiscardStreamedTraces engine cached %d traces, want 0", got)
	}
}

// TestBroadcastBatchedConsumption drains subscribers through NextBatch
// with buffer sizes smaller than, equal to, and larger than the producer's
// chunk, checking the sequence survives chunk recycling in every regime.
// With a tiny window and concurrent consumers this also forces chunks
// back through the pool while others are still in flight.
func TestBroadcastBatchedConsumption(t *testing.T) {
	cfg := workload.POPSConfig(4, 20_000)
	want, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bufSizes := []int{17, 64, 300} // chunkRefs is 64
	b := newBroadcast(cfg, len(bufSizes), 64, 2, false)
	var prodErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, prodErr = b.run(context.Background())
	}()
	got := make([][]trace.Ref, len(bufSizes))
	for i, size := range bufSizes {
		i, size := i, size
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]trace.Ref, size)
			for {
				n := b.subs[i].NextBatch(buf)
				if n == 0 {
					return
				}
				got[i] = append(got[i], buf[:n]...)
			}
		}()
	}
	wg.Wait()
	if prodErr != nil {
		t.Fatal(prodErr)
	}
	for i, size := range bufSizes {
		if !reflect.DeepEqual(got[i], want.Refs) {
			t.Errorf("subscriber with %d-ref buffer saw a different sequence", size)
		}
	}
}

// TestMismatchedBatchAndChunkSizesIdentical runs the parallel executor
// with a simulation batch size that is prime relative to the streaming
// chunk, against a plain sequential engine — results must not notice.
func TestMismatchedBatchAndChunkSizesIdentical(t *testing.T) {
	ctx := context.Background()
	cfgs := workload.StandardConfigs(4, 25_000)

	seq := New(Options{})
	odd := New(Options{Workers: 4, ChunkRefs: 512, ChunkWindow: 2, BatchRefs: 97})
	_, want, err := seq.SchemeOverTraces(ctx, Sequential{}, "Dir1NB", cfgs, false)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := odd.SchemeOverTraces(ctx, Parallel{Workers: 4}, "Dir1NB", cfgs, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("odd batch/chunk sizing changed the merged result")
	}
	if odd.Stats().TracesStreamed == 0 {
		t.Error("parallel engine never streamed; the comparison did not exercise the pool")
	}
}

// TestWorkloadStreamMatchesGenerate pins the generator-level equivalence
// the whole streaming design rests on.
func TestWorkloadStreamMatchesGenerate(t *testing.T) {
	for _, cfg := range workload.StandardConfigs(4, 15_000) {
		want := workload.MustGenerate(cfg)
		var got []trace.Ref
		if err := workload.Stream(cfg, func(r trace.Ref) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want.Refs) {
			t.Errorf("%s: streamed refs differ from generated refs", cfg.Name)
		}
	}
}
