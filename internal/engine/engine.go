// Package engine executes experiment workloads concurrently. Every
// experiment is expressed as a DAG of Jobs — trace generation feeding
// per-scheme simulations feeding aggregation — run on a bounded worker
// pool with cancellable contexts and per-job timing.
//
// Two properties make large sweeps cheap:
//
//   - Results are deduplicated and cached by a content hash of everything
//     that can influence them (workload spec including seed and CPU
//     count, scheme, cost options, block geometry), so a trace shared by
//     twenty experiments is generated once and a scheme priced by five
//     figures is simulated once.
//   - Under the Parallel executor an uncached trace is not materialized
//     first and replayed later: the generator streams references in
//     chunks through bounded channels to all subscribed simulators
//     running concurrently, so generation and simulation overlap and the
//     peak footprint is a chunk window, not a full trace.
//
// The Sequential executor runs the identical DAG one job at a time with
// materialized traces; because simulations are pure functions of the
// reference sequence, both executors produce bit-identical results, which
// the tests assert.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"dirsim/internal/faults"
	"dirsim/internal/obs"
	exectrace "dirsim/internal/obs/trace"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

// Options configures an Engine. The zero value is ready to use.
type Options struct {
	// Workers bounds the number of jobs executing concurrently under the
	// Parallel executor; 0 means runtime.GOMAXPROCS(0).
	Workers int
	// ChunkRefs is the streaming granularity: references travel from
	// generator to simulators in chunks of this many (default 4096).
	ChunkRefs int
	// ChunkWindow is the per-simulator channel capacity in chunks
	// (default 16); it bounds how far the generator runs ahead of the
	// slowest simulator before back-pressure stalls it.
	ChunkWindow int
	// BatchRefs is the simulation hot-loop batch size handed to
	// sim.Options.BatchRefs: how many references each simulator pulls
	// from its source per call. 0 means ChunkRefs, so streamed chunks
	// are consumed whole. Results never depend on it.
	BatchRefs int
	// Shards is the intra-trace parallelism handed to sim.Options.Shards:
	// > 1 runs every simulation's references through that many concurrent
	// block-sharded protocol cores with a deterministic merge, bit-identical
	// to the sequential path, so cache keys and fingerprints are unchanged.
	// 0 or 1 (the default) keeps simulations sequential. Negative means
	// auto: runtime.GOMAXPROCS(0) shards. Sharding composes with Workers —
	// inter-job parallelism multiplies by intra-trace parallelism — so on a
	// saturated batch sweep leave it off; it earns its overhead when jobs
	// are fewer than cores.
	Shards int
	// DiscardStreamedTraces stops streamed generations from also being
	// captured into the trace cache. The default (false) captures them,
	// so a later experiment needing the raw trace — or the same trace
	// under another scheme — finds it materialized; set it for
	// lowest-memory batch sweeps over traces that will not be revisited.
	DiscardStreamedTraces bool
	// Metrics is the registry the engine's lifetime counters live on,
	// shared with whatever else the caller instruments; nil means a
	// private registry (reachable via Engine.Metrics).
	Metrics *obs.Registry
	// Observer receives job and stream lifecycle notifications. nil (the
	// default) disables observation entirely; the only cost left on the
	// hot path is a nil check. An Observer that also implements
	// FaultObserver additionally receives retry, panic, and
	// cache-rejection events.
	Observer Observer
	// Tracer, when non-nil, records the run's execution timeline: a span
	// per job, attempt, stream production/consumption, and simulation,
	// plus instants for retries, back-pressure stalls, and streamed
	// chunks, exportable as Chrome trace-event JSON. nil (the default)
	// disables tracing; the only cost left anywhere is a nil check.
	Tracer *exectrace.Tracer
	// ProtoSample, when positive, attaches sampled coherence-protocol
	// telemetry to every simulation: per-scheme counters and the live
	// invalidation histogram on the engine's registry, plus — when Tracer
	// is also set — one trace instant per ProtoSample coherence events.
	// 0 (the default) disables telemetry entirely.
	ProtoSample int

	// JobTimeout bounds each job-body attempt; 0 means no per-job
	// deadline. A per-Job Timeout overrides it.
	JobTimeout time.Duration
	// Retries is how many additional attempts a job body gets when it
	// fails with a retryable error (one with Retryable() true, or a
	// per-attempt deadline expiry). 0 means fail on the first error. A
	// per-Job Retries overrides it.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubling per
	// attempt (default 10ms when Retries > 0).
	RetryBackoff time.Duration
	// Faults, when non-nil, injects deterministic faults into job bodies,
	// streams, and cache stores, and switches Verify on. nil — the
	// default — costs a nil check per site and nothing more.
	Faults *faults.Injector
	// Verify turns on integrity checking without fault injection: cached
	// results and traces are fingerprinted when stored and revalidated on
	// every hit, streamed chunks carry checksums validated before
	// simulation, and streamed reference counts are reconciled against
	// what the producer emitted.
	Verify bool

	// Store, when non-nil, is a durable second tier behind the in-memory
	// caches: computed results and generated traces are written through
	// to it, and a memory miss consults it before computing, so
	// warm-start runs and concurrent processes sharing one store serve
	// each other's work. Entries it returns are fingerprint-validated by
	// the tier itself; a corrupt entry surfaces as a Corrupt() error,
	// counts as a cache rejection, and is recomputed.
	Store Tier

	// Remote, when non-nil, is offered every simulation spec that missed
	// all cache tiers before the engine computes it locally: sweeps fan
	// out to a worker fleet, and an individual job — or the whole run —
	// degrades to local execution when the Remote reports
	// ErrRemoteUnavailable. Cached and in-flight work never dispatches
	// remotely. See the Remote interface contract.
	Remote Remote
}

// Tier is the contract of a durable second-tier content-addressed cache
// (internal/store satisfies it). Keys are the full hex form of the
// engine's content hashes. Load methods return ok == false on a clean
// miss; an error whose chain reports Corrupt() true means the entry
// existed, failed integrity revalidation, and has been evicted — the
// engine counts it on engine.cache.rejected and recomputes. Store
// methods receive the content fingerprint to stamp the entry with
// (normally the value's own fingerprint; fault injection may poison it).
// Implementations must be safe for concurrent use.
type Tier interface {
	HasResult(key string) bool
	LoadResult(key string) (*sim.Result, bool, error)
	StoreResult(key string, r *sim.Result, fingerprint uint64) error
	HasTrace(key string) bool
	LoadTrace(key string) (*trace.Trace, bool, error)
	StoreTrace(key string, t *trace.Trace, fingerprint uint64) error
}

// Observer receives the engine's execution events: one JobScheduled per
// DAG node at submission, a JobStarted/JobFinished span around every job
// body (cache hits included, flagged as such), and one StreamEnded per
// streamed generation with its chunk count and producer back-pressure
// stalls. Every method receives the context the work ran under, which
// carries the originating request's obs.TraceContext when there is one —
// observers attribute events to requests by reading it (obs.TraceFrom),
// never by guessing. kind classifies the job (see JobKind); key is the
// short content hash of keyed jobs, empty otherwise. Implementations
// must be safe for concurrent use — under the Parallel executor, jobs
// finish on many goroutines at once. obs.Recorder satisfies this
// interface.
type Observer interface {
	JobScheduled(ctx context.Context, id, kind, key string)
	JobStarted(ctx context.Context, id, kind, key string)
	JobFinished(ctx context.Context, id, kind, key string, d time.Duration, cacheHit bool, err error)
	StreamEnded(ctx context.Context, trace string, chunks, stalls int64)
}

// FaultObserver extends Observer with the engine's failure-path events.
// It is optional: the engine type-asserts the configured Observer once at
// construction, so existing Observer implementations keep working
// unchanged. Implementations must be safe for concurrent use.
type FaultObserver interface {
	// JobRetried fires before each retry sleep: the attempt that failed
	// (0-based), the backoff about to be taken, and the error that
	// triggered it.
	JobRetried(ctx context.Context, id string, attempt int, backoff time.Duration, err error)
	// JobPanicked fires when a job body's panic is recovered, with the
	// stack captured at the recovery site.
	JobPanicked(ctx context.Context, id string, stack []byte)
	// CacheRejected fires when a cached entry failed integrity
	// revalidation and was evicted for recompute.
	CacheRejected(ctx context.Context, key string)
}

// TierObserver extends Observer with durable-tier (Options.Store)
// traffic: one TierFetched per lookup the tier answered (hit true) or
// cleanly missed, one TierStored per write-through. Like FaultObserver
// it is optional and type-asserted once at construction. kind is
// "result" or "trace"; key is the short content hash.
type TierObserver interface {
	TierFetched(ctx context.Context, kind, key string, hit bool, d time.Duration)
	TierStored(ctx context.Context, kind, key string, d time.Duration)
}

// ShardObserver extends Observer with intra-trace sharding (Options.
// Shards) events: one ShardFinished per shard of every sharded
// simulation, plus one with shard == -1 for the splitter that partitioned
// the reference stream. Like FaultObserver it is optional and
// type-asserted once at construction. Calls for one simulation arrive
// serialized; calls from concurrent simulations may interleave, so
// implementations must be safe for concurrent use. trace and scheme name
// the simulation, refs is how many references the shard simulated (the
// full trace for the splitter), and d the shard's wall-clock busy time.
type ShardObserver interface {
	ShardFinished(ctx context.Context, trace, scheme string, shard, shards int, refs int64, d time.Duration)
}

// JobKind classifies a job by its ID prefix — "trace", "stream", "sim",
// "merge", "protocol" — or "" for ad-hoc jobs without one.
func JobKind(id string) string {
	if i := strings.IndexByte(id, ':'); i > 0 {
		return id[:i]
	}
	return ""
}

// Engine schedules jobs and owns the content-addressed caches. An Engine
// is safe for concurrent use by multiple goroutines; all submissions
// share its caches and its worker bound.
type Engine struct {
	workers     int
	chunkRefs   int
	chunkWindow int
	batchRefs   int
	shards      int
	discard     bool

	jobTimeout time.Duration
	retries    int
	backoff    time.Duration
	faults     *faults.Injector // nil disables injection
	verify     bool             // integrity validation (implied by faults)

	results *flightCache // Key → job output (typically *sim.Result)
	traces  *flightCache // Key → *trace.Trace
	tier    Tier         // durable second tier; nil disables it
	remote  Remote       // remote executor for uncached specs; nil disables it

	reg    *obs.Registry     // metrics registry the counters below live on
	obs    Observer          // nil disables observation
	fobs   FaultObserver     // obs narrowed to failure events, nil when not implemented
	tobs   TierObserver      // obs narrowed to durable-tier events, nil when not implemented
	sobs   ShardObserver     // obs narrowed to shard events, nil when not implemented
	tracer *exectrace.Tracer // nil disables execution tracing
	// protoSample is the coherence-telemetry stride; 0 disables it.
	protoSample int

	// Lifetime counters, resolved from the registry once at construction
	// so every update is a single atomic add.
	jobsRun         *obs.Counter
	cacheHits       *obs.Counter
	cacheMisses     *obs.Counter
	simsRun         *obs.Counter
	refsSimulated   *obs.Counter
	tracesGenerated *obs.Counter
	tracesStreamed  *obs.Counter
	streamChunks    *obs.Counter
	streamStalls    *obs.Counter
	jobPanics       *obs.Counter
	jobRetries      *obs.Counter
	jobTimeouts     *obs.Counter
	cacheRejected   *obs.Counter
	integrityFaults *obs.Counter
	shardedSims     *obs.Counter
	shardRefs       *obs.Counter
	simsRemote      *obs.Counter
	remoteDegraded  *obs.Counter
}

// New builds an engine with the given options.
func New(opts Options) *Engine {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	cr := opts.ChunkRefs
	if cr <= 0 {
		cr = 4096
	}
	cw := opts.ChunkWindow
	if cw <= 0 {
		cw = 16
	}
	br := opts.BatchRefs
	if br <= 0 {
		br = cr
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	bo := opts.RetryBackoff
	if bo <= 0 {
		bo = 10 * time.Millisecond
	}
	sh := opts.Shards
	if sh < 0 {
		sh = runtime.GOMAXPROCS(0)
	}
	fobs, _ := opts.Observer.(FaultObserver)
	tobs, _ := opts.Observer.(TierObserver)
	sobs, _ := opts.Observer.(ShardObserver)
	return &Engine{
		workers:         w,
		chunkRefs:       cr,
		chunkWindow:     cw,
		batchRefs:       br,
		shards:          sh,
		discard:         opts.DiscardStreamedTraces,
		jobTimeout:      opts.JobTimeout,
		retries:         opts.Retries,
		backoff:         bo,
		faults:          opts.Faults,
		verify:          opts.Verify || opts.Faults != nil,
		results:         newFlightCache(),
		traces:          newFlightCache(),
		tier:            opts.Store,
		remote:          opts.Remote,
		reg:             reg,
		obs:             opts.Observer,
		fobs:            fobs,
		tobs:            tobs,
		sobs:            sobs,
		tracer:          opts.Tracer,
		protoSample:     opts.ProtoSample,
		jobsRun:         reg.Counter("engine.jobs.run"),
		cacheHits:       reg.Counter("engine.cache.hits"),
		cacheMisses:     reg.Counter("engine.cache.misses"),
		simsRun:         reg.Counter("engine.sims.run"),
		refsSimulated:   reg.Counter("engine.refs.simulated"),
		tracesGenerated: reg.Counter("engine.traces.generated"),
		tracesStreamed:  reg.Counter("engine.traces.streamed"),
		streamChunks:    reg.Counter("engine.stream.chunks"),
		streamStalls:    reg.Counter("engine.stream.stalls"),
		jobPanics:       reg.Counter("engine.jobs.panics"),
		jobRetries:      reg.Counter("engine.jobs.retries"),
		jobTimeouts:     reg.Counter("engine.jobs.timeouts"),
		cacheRejected:   reg.Counter("engine.cache.rejected"),
		integrityFaults: reg.Counter("engine.stream.integrity"),
		shardedSims:     reg.Counter("engine.sims.sharded"),
		shardRefs:       reg.Counter("engine.shards.refs"),
		simsRemote:      reg.Counter("engine.sims.remote"),
		remoteDegraded:  reg.Counter("engine.remote.degraded"),
	}
}

// Stats is a snapshot of the engine's lifetime counters.
type Stats struct {
	// JobsRun counts job bodies actually executed (cache hits excluded).
	JobsRun int64
	// CacheHits / CacheMisses count keyed lookups that were satisfied
	// from (or claimed into) the result and trace caches.
	CacheHits   int64
	CacheMisses int64
	// SimsRun counts protocol simulations executed; RefsSimulated totals
	// the references they processed — the numerator of refs/s.
	SimsRun       int64
	RefsSimulated int64
	// TracesGenerated counts materialized trace generations;
	// TracesStreamed counts streamed (chunked multicast) generations.
	TracesGenerated int64
	TracesStreamed  int64
	// StreamChunks counts chunks multicast by streamed generations;
	// StreamStalls counts producer sends that found a subscriber's
	// channel full and had to block — the back-pressure signal that
	// drives ChunkWindow tuning.
	StreamChunks int64
	StreamStalls int64
	// JobPanics counts job-body panics recovered; JobRetries counts
	// re-attempts after retryable failures; JobTimeouts counts per-job
	// deadline expiries.
	JobPanics   int64
	JobRetries  int64
	JobTimeouts int64
	// CacheRejected counts cached entries that failed integrity
	// revalidation and were evicted for recompute; IntegrityFaults counts
	// stream-integrity violations detected (checksum mismatches,
	// reference-count shortfalls, refcount corruption).
	CacheRejected   int64
	IntegrityFaults int64
	// ShardedSims counts simulations that ran block-sharded (Options.
	// Shards > 1); ShardRefs totals references simulated by shard workers
	// across them (equal to those simulations' share of RefsSimulated).
	ShardedSims int64
	ShardRefs   int64
	// SimsRemote counts simulations whose results a Remote executor
	// delivered (included in SimsRun); RemoteDegraded counts remote
	// dispatches that fell back to local execution because the Remote
	// reported unavailability.
	SimsRemote     int64
	RemoteDegraded int64
	// CachedResults and CachedTraces are the current cache populations.
	CachedResults int
	CachedTraces  int
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		JobsRun:         e.jobsRun.Value(),
		CacheHits:       e.cacheHits.Value(),
		CacheMisses:     e.cacheMisses.Value(),
		SimsRun:         e.simsRun.Value(),
		RefsSimulated:   e.refsSimulated.Value(),
		TracesGenerated: e.tracesGenerated.Value(),
		TracesStreamed:  e.tracesStreamed.Value(),
		StreamChunks:    e.streamChunks.Value(),
		StreamStalls:    e.streamStalls.Value(),
		JobPanics:       e.jobPanics.Value(),
		JobRetries:      e.jobRetries.Value(),
		JobTimeouts:     e.jobTimeouts.Value(),
		CacheRejected:   e.cacheRejected.Value(),
		IntegrityFaults: e.integrityFaults.Value(),
		ShardedSims:     e.shardedSims.Value(),
		ShardRefs:       e.shardRefs.Value(),
		SimsRemote:      e.simsRemote.Value(),
		RemoteDegraded:  e.remoteDegraded.Value(),
		CachedResults:   e.results.size(),
		CachedTraces:    e.traces.size(),
	}
}

// Metrics returns the registry the engine's counters live on.
func (e *Engine) Metrics() *obs.Registry { return e.reg }

// BatchRefs returns the resolved simulation batch size: Options.BatchRefs,
// or the chunk size when that was left zero.
func (e *Engine) BatchRefs() int { return e.batchRefs }

// Shards returns the resolved intra-trace shard count: Options.Shards,
// with negative resolved to GOMAXPROCS. 0 or 1 means sequential.
func (e *Engine) Shards() int { return e.shards }

// Job is one node of an execution DAG. Jobs are single-use: build a fresh
// graph per Execute call (cached work is cheap to re-plan).
type Job struct {
	// ID names the job in errors and metrics, e.g. "sim:Dir0B@pops".
	ID string
	// Key, when non-zero, deduplicates and caches the output: the first
	// job to claim the key runs, everyone else — in this batch, a
	// concurrent batch, or a later one — reuses its output.
	Key Key
	// Deps run before this job; their outputs arrive in Run's in slice,
	// in order.
	Deps []*Job
	// Run computes the output. It must honour ctx for long work.
	Run func(ctx context.Context, in []any) (any, error)
	// Timeout bounds each attempt of this job's body, overriding the
	// engine's JobTimeout; 0 inherits the engine default.
	Timeout time.Duration
	// Retries overrides the engine's retry budget for this job; 0
	// inherits the engine's Retries, negative disables retries for this
	// job even when the engine allows them.
	Retries int

	out any
	err error
	met Metrics
}

// Metrics records one job's execution timeline.
type Metrics struct {
	// Started and Finished bound the job's execution (or its wait on a
	// cache flight).
	Started, Finished time.Time
	// CacheHit is set when the output came from the result cache.
	CacheHit bool
	// Attempts is how many times the body ran (0 for cache hits).
	Attempts int
}

// Duration returns the wall-clock time the job took.
func (m Metrics) Duration() time.Duration { return m.Finished.Sub(m.Started) }

// Output returns the job's result after Execute has returned.
func (j *Job) Output() (any, error) { return j.out, j.err }

// Metrics returns the job's timing after Execute has returned.
func (j *Job) Metrics() Metrics { return j.met }

// Executor is a DAG execution strategy.
type Executor interface {
	// Name identifies the strategy in reports and flags.
	Name() string
	workerCount(engineDefault int) int
	streams() bool
}

// Sequential executes jobs one at a time in deterministic dependency
// order with materialized traces — the reference path used to assert
// that concurrency does not change results.
type Sequential struct{}

// Name returns "sequential".
func (Sequential) Name() string        { return "sequential" }
func (Sequential) workerCount(int) int { return 1 }
func (Sequential) streams() bool       { return false }

// Parallel executes ready jobs concurrently on a bounded worker pool and
// streams uncached traces to their simulators.
type Parallel struct {
	// Workers overrides the engine's pool size; 0 keeps the engine
	// default (GOMAXPROCS).
	Workers int
}

// Name returns "parallel".
func (Parallel) Name() string { return "parallel" }
func (p Parallel) workerCount(engineDefault int) int {
	if p.Workers > 0 {
		return p.Workers
	}
	return engineDefault
}
func (Parallel) streams() bool { return true }

// Execute runs the given jobs and all their transitive dependencies,
// returning the first error (with remaining work cancelled). A nil
// executor means Sequential.
func (e *Engine) Execute(ctx context.Context, exec Executor, roots ...*Job) error {
	return e.execute(ctx, exec, roots, true)
}

// ExecuteAll runs the given jobs and all their transitive dependencies to
// completion, tolerating job failures: a failed job does not cancel its
// siblings, only its own dependents (which fail with a *JobError wrapping
// the dependency's failure, without running). ExecuteAll returns an error
// only when the graph itself is unrunnable (a cycle, a missing Run
// function) or the context dies; per-job outcomes — success or structured
// failure — are on each Job's Output. It is the foundation of the batch
// helpers' partial-result semantics.
func (e *Engine) ExecuteAll(ctx context.Context, exec Executor, roots ...*Job) error {
	return e.execute(ctx, exec, roots, false)
}

func (e *Engine) execute(ctx context.Context, exec Executor, roots []*Job, failFast bool) error {
	if exec == nil {
		exec = Sequential{}
	}
	jobs, err := flatten(roots)
	if err != nil {
		return err
	}
	if e.obs != nil {
		for _, j := range jobs {
			e.obs.JobScheduled(ctx, j.ID, JobKind(j.ID), observedKey(j.Key))
		}
	}
	if w := exec.workerCount(e.workers); w > 1 {
		return e.executePool(ctx, jobs, w, failFast)
	}
	return e.executeSerial(ctx, jobs, failFast)
}

// flatten returns the transitive closure of roots in deterministic
// topological order (dependencies first), rejecting cycles.
func flatten(roots []*Job) ([]*Job, error) {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[*Job]int)
	var order []*Job
	var visit func(j *Job) error
	visit = func(j *Job) error {
		switch state[j] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("engine: dependency cycle through job %q", j.ID)
		}
		if j.Run == nil {
			return fmt.Errorf("engine: job %q has no Run function", j.ID)
		}
		state[j] = visiting
		for _, d := range j.Deps {
			if err := visit(d); err != nil {
				return err
			}
		}
		state[j] = done
		order = append(order, j)
		return nil
	}
	for _, r := range roots {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func (e *Engine) executeSerial(ctx context.Context, jobs []*Job, failFast bool) error {
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.runOrSkip(ctx, j, failFast); err != nil && failFast {
			return fmt.Errorf("engine: job %s: %w", j.ID, err)
		}
	}
	return nil
}

func (e *Engine) executePool(ctx context.Context, jobs []*Job, workers int, failFast bool) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	indeg := make(map[*Job]int, len(jobs))
	children := make(map[*Job][]*Job, len(jobs))
	for _, j := range jobs {
		indeg[j] = len(j.Deps)
		for _, d := range j.Deps {
			children[d] = append(children[d], j)
		}
	}

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error

	var start func(j *Job)
	start = func(j *Job) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			var err error
			if err = ctx.Err(); err == nil {
				err = e.runOrSkip(ctx, j, failFast)
			} else {
				j.err = err
			}
			<-sem
			if err != nil && failFast {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("engine: job %s: %w", j.ID, err)
				}
				mu.Unlock()
				cancel()
				return
			}
			// In keep-going mode a failed job still releases its
			// dependents: they observe the dependency failure and record
			// it as their own structured error without running.
			mu.Lock()
			ready := make([]*Job, 0, len(children[j]))
			for _, c := range children[j] {
				indeg[c]--
				if indeg[c] == 0 {
					ready = append(ready, c)
				}
			}
			mu.Unlock()
			for _, c := range ready {
				start(c)
			}
		}()
	}
	// Collect the initial ready set before starting anything: completion
	// handlers mutate indeg concurrently once the first job is running.
	initial := make([]*Job, 0, len(jobs))
	for _, j := range jobs {
		if indeg[j] == 0 {
			initial = append(initial, j)
		}
	}
	for _, j := range initial {
		start(j)
	}
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// runOrSkip runs the job, except that in keep-going mode a job whose
// dependency failed is skipped: its body never runs and its error records
// which dependency sank it.
func (e *Engine) runOrSkip(ctx context.Context, j *Job, failFast bool) error {
	if !failFast {
		for _, d := range j.Deps {
			if d.err != nil {
				return e.skipJob(ctx, j, d)
			}
		}
	}
	return e.runJob(ctx, j)
}

// skipJob marks j failed because dependency d failed, emitting the usual
// observer span (and a short trace span) so traces show the skip.
func (e *Engine) skipJob(ctx context.Context, j, d *Job) error {
	j.met.Started = time.Now()
	if e.obs != nil {
		e.obs.JobStarted(ctx, j.ID, JobKind(j.ID), observedKey(j.Key))
	}
	_, parent := exectrace.FromContext(ctx)
	lane := e.tracerFor(ctx).Lane()
	span := lane.Span(parent, "job", j.ID).Arg("kind", JobKind(j.ID)).Arg("skipped", true)
	j.err = &JobError{
		ID:   j.ID,
		Kind: JobKind(j.ID),
		Key:  observedKey(j.Key),
		Err:  fmt.Errorf("dependency %s failed: %w", d.ID, d.err),
	}
	span.End(j.err)
	lane.Release()
	j.met.Finished = time.Now()
	if e.obs != nil {
		e.obs.JobFinished(ctx, j.ID, JobKind(j.ID), observedKey(j.Key),
			j.met.Duration(), false, j.err)
	}
	return j.err
}

// tracerFor resolves the execution tracer for work running under ctx: the
// engine's own (Options.Tracer, the CLI case) wins; otherwise the tracer
// the context carries (the service case, where each request brings its
// own timeline via exectrace.WithTracer); nil disables tracing.
func (e *Engine) tracerFor(ctx context.Context) *exectrace.Tracer {
	if e.tracer != nil {
		return e.tracer
	}
	return exectrace.TracerFrom(ctx)
}

// observedKey renders a job key for observers: the short hex form, or
// empty for uncached jobs.
func observedKey(k Key) string {
	if k.IsZero() {
		return ""
	}
	return k.String()
}

// runJob executes one job, routing keyed jobs through the single-flight
// result cache. In verification mode every cache hit is revalidated
// against the integrity stamp recorded at store time; a mismatch evicts
// the entry and loops back to re-claim, so a corrupted cached value is
// recomputed rather than served.
func (e *Engine) runJob(ctx context.Context, j *Job) error {
	j.met.Started = time.Now()
	if e.obs != nil {
		e.obs.JobStarted(ctx, j.ID, JobKind(j.ID), observedKey(j.Key))
	}
	// The job's root span lives on a lane owned by this worker goroutine
	// for the job's whole duration; the lane+span travel down through the
	// context so attempts and simulations parent correctly. The span
	// parents under whatever span the context already carried — for
	// service work, the originating HTTP request's root span. With
	// tracing off (nil tracer, no context tracer) every step here is a
	// nil-check no-op and the context is left untouched.
	_, parent := exectrace.FromContext(ctx)
	lane := e.tracerFor(ctx).Lane()
	var span *exectrace.Span
	if lane != nil {
		span = lane.Span(parent, "job", j.ID).Arg("kind", JobKind(j.ID))
		if k := observedKey(j.Key); k != "" {
			span.Arg("key", k)
		}
		if tc, ok := obs.TraceFrom(ctx); ok {
			// The trace ID lands on the span and the span ID on the trace
			// context, so the Chrome trace and the journal cross-reference.
			span.Arg("trace", tc.Trace)
			ctx = obs.WithTrace(ctx, tc.WithSpan(uint64(span.ID())))
		}
		ctx = exectrace.NewContext(ctx, lane, span.ID())
	}
	defer func() {
		j.met.Finished = time.Now()
		if span != nil {
			span.Arg("cache_hit", j.met.CacheHit).End(j.err)
			lane.Release()
		}
		if e.obs != nil {
			e.obs.JobFinished(ctx, j.ID, JobKind(j.ID), observedKey(j.Key),
				j.met.Duration(), j.met.CacheHit, j.err)
		}
	}()

	if j.Key.IsZero() {
		j.out, j.err = e.runBody(ctx, j)
		return j.err
	}
	for {
		f, owner := e.results.claim(j.Key)
		if owner {
			e.cacheMisses.Add(1)
			// A memory miss consults the durable tier before computing:
			// a fingerprint-validated entry written by an earlier run (or
			// another process sharing the store) is a cache hit without a
			// simulation.
			if out, sum, ok := e.tierLoadResult(ctx, j.Key); ok {
				e.results.fulfillStamped(j.Key, f, out, nil, sum, e.verify)
				j.met.CacheHit = true
				j.out, j.err = out, nil
				return nil
			}
			out, err := e.runBody(ctx, j)
			sum, stamped := e.stampFor(observedKey(j.Key), out)
			e.results.fulfillStamped(j.Key, f, out, err, sum, stamped)
			if err == nil {
				e.tierStoreResult(ctx, j.Key, out)
			}
			j.out, j.err = out, err
			return err
		}
		out, err := f.wait(ctx)
		if err == nil && e.verify && f.stamped {
			if sum, ok := fingerprintOf(out); ok && sum != f.sum {
				e.cacheRejected.Add(1)
				if e.fobs != nil {
					e.fobs.CacheRejected(ctx, observedKey(j.Key))
				}
				e.results.evict(j.Key, f)
				continue
			}
		}
		e.cacheHits.Add(1)
		j.met.CacheHit = true
		j.out, j.err = out, err
		return err
	}
}

// runBody executes a job's body with panic isolation, a per-attempt
// deadline, and bounded retry-with-backoff for retryable failures.
func (e *Engine) runBody(ctx context.Context, j *Job) (any, error) {
	retries := e.retries
	if j.Retries > 0 {
		retries = j.Retries
	} else if j.Retries < 0 {
		retries = 0
	}
	backoff := e.backoff
	for attempt := 0; ; attempt++ {
		out, err := e.attempt(ctx, j, attempt)
		j.met.Attempts = attempt + 1
		if err == nil {
			return out, nil
		}
		je := &JobError{
			ID:       j.ID,
			Kind:     JobKind(j.ID),
			Key:      observedKey(j.Key),
			Attempts: attempt + 1,
			Err:      err,
		}
		var pe *panicError
		var te *timeoutError
		switch {
		case errors.As(err, &pe):
			je.Panicked, je.Stack, je.Err = true, pe.stack, pe
		case errors.As(err, &te):
			je.Timeout, je.Err = true, te.cause
		}
		if attempt >= retries || ctx.Err() != nil || !je.Retryable() {
			return nil, je
		}
		e.jobRetries.Add(1)
		if e.fobs != nil {
			e.fobs.JobRetried(ctx, j.ID, attempt, backoff, je.Err)
		}
		if lane, parent := exectrace.FromContext(ctx); lane != nil {
			lane.Instant(parent, "engine", "retry",
				"attempt", attempt, "backoff_us", backoff.Microseconds(), "error", je.Err.Error())
		}
		t := time.NewTimer(backoff)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, je
		}
		backoff *= 2
	}
}

// panicError carries a recovered panic value and the stack captured at
// the recovery site.
type panicError struct {
	val   any
	stack []byte
}

func (p *panicError) Error() string { return fmt.Sprintf("panic: %v", p.val) }

// timeoutError marks an attempt that died to its own per-job deadline
// (as opposed to the run's context).
type timeoutError struct{ cause error }

func (t *timeoutError) Error() string { return t.cause.Error() }
func (t *timeoutError) Unwrap() error { return t.cause }

// attempt runs the job body once: under its per-attempt deadline, with
// fault injection when configured, and with panics recovered into a
// *panicError rather than unwinding through the worker pool.
func (e *Engine) attempt(ctx context.Context, j *Job, attempt int) (out any, err error) {
	timeout := j.Timeout
	if timeout <= 0 {
		timeout = e.jobTimeout
	}
	attemptCtx := ctx
	var cancel context.CancelFunc
	if timeout > 0 {
		attemptCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// The attempt span is registered before the recover defer below, so it
	// runs after it (LIFO) and records the error the recovery produced.
	// The attempt's context carries the attempt span as the new parent,
	// so simulation spans nest under the attempt that ran them.
	if lane, parent := exectrace.FromContext(ctx); lane != nil {
		sp := lane.Span(parent, "attempt", fmt.Sprintf("attempt:%d", attempt))
		attemptCtx = exectrace.NewContext(attemptCtx, lane, sp.ID())
		defer func() { sp.End(err) }()
	}
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			e.jobPanics.Add(1)
			if e.fobs != nil {
				e.fobs.JobPanicked(ctx, j.ID, stack)
			}
			out, err = nil, &panicError{val: r, stack: stack}
		}
	}()
	e.jobsRun.Add(1)
	if ferr := e.faults.JobFault(j.ID, attempt); ferr != nil {
		return nil, ferr
	}
	out, err = j.Run(attemptCtx, e.inputs(j))
	// A deadline expiry of the attempt's own context — while the overall
	// run is still alive — is a per-job timeout, a retryable condition
	// distinct from the run being cancelled.
	if err != nil && attemptCtx != ctx && attemptCtx.Err() != nil && ctx.Err() == nil &&
		errors.Is(err, context.DeadlineExceeded) {
		e.jobTimeouts.Add(1)
		return nil, &timeoutError{cause: err}
	}
	return out, err
}

// stampFor fingerprints values the engine knows how to validate —
// simulation results and traces — for cache-integrity stamps. In fault
// mode the stamp may be deliberately poisoned, modelling an entry
// corrupted between store and hit.
func (e *Engine) stampFor(key string, v any) (uint64, bool) {
	if !e.verify {
		return 0, false
	}
	sum, ok := fingerprintOf(v)
	if !ok {
		return 0, false
	}
	if e.faults.PoisonStamp(key) {
		sum = ^sum
	}
	return sum, true
}

// tierLoadResult consults the durable second tier for a job's result. A
// validated hit returns the result and its fingerprint (which becomes the
// in-memory stamp, so later memory hits revalidate against the same sum).
// A corrupt entry has already been evicted by the store; the engine
// counts it like any other integrity rejection and recomputes. The
// lookup is spanned on the caller's trace lane and reported to the tier
// observer, so store traffic shows up both on the request's timeline and
// in its journal.
func (e *Engine) tierLoadResult(ctx context.Context, k Key) (*sim.Result, uint64, bool) {
	if e.tier == nil {
		return nil, 0, false
	}
	lane, parent := exectrace.FromContext(ctx)
	sp := lane.Span(parent, "store", "load:result").Arg("key", observedKey(k))
	start := time.Now()
	r, ok, err := e.tier.LoadResult(k.hex())
	hit := err == nil && ok && r != nil
	sp.Arg("hit", hit).End(err)
	if e.tobs != nil {
		e.tobs.TierFetched(ctx, "result", observedKey(k), hit, time.Since(start))
	}
	if err != nil {
		if isCorrupt(err) {
			e.cacheRejected.Add(1)
			if e.fobs != nil {
				e.fobs.CacheRejected(ctx, observedKey(k))
			}
		}
		return nil, 0, false
	}
	if !hit {
		return nil, 0, false
	}
	return r, r.Fingerprint(), true
}

// tierStoreResult writes a freshly computed result through to the durable
// tier, best-effort: the store accounts its own write failures and a
// broken disk must not fail the simulation that just succeeded. In fault
// mode the persisted stamp may be deliberately poisoned — the same
// mechanism stampFor uses — so injected corruption exercises the store's
// load-time revalidation end to end.
func (e *Engine) tierStoreResult(ctx context.Context, k Key, v any) {
	if e.tier == nil {
		return
	}
	r, ok := v.(*sim.Result)
	if !ok || r == nil {
		return
	}
	sum := r.Fingerprint()
	if e.faults.PoisonStamp(observedKey(k)) {
		sum = ^sum
	}
	lane, parent := exectrace.FromContext(ctx)
	sp := lane.Span(parent, "store", "store:result").Arg("key", observedKey(k))
	start := time.Now()
	err := e.tier.StoreResult(k.hex(), r, sum)
	sp.End(err)
	if e.tobs != nil {
		e.tobs.TierStored(ctx, "result", observedKey(k), time.Since(start))
	}
}

// tierLoadTrace and tierStoreTrace are the trace-cache analogues of the
// result helpers above.
func (e *Engine) tierLoadTrace(ctx context.Context, k Key) (*trace.Trace, uint64, bool) {
	if e.tier == nil {
		return nil, 0, false
	}
	lane, parent := exectrace.FromContext(ctx)
	sp := lane.Span(parent, "store", "load:trace").Arg("key", observedKey(k))
	start := time.Now()
	t, ok, err := e.tier.LoadTrace(k.hex())
	hit := err == nil && ok && t != nil
	sp.Arg("hit", hit).End(err)
	if e.tobs != nil {
		e.tobs.TierFetched(ctx, "trace", observedKey(k), hit, time.Since(start))
	}
	if err != nil {
		if isCorrupt(err) {
			e.cacheRejected.Add(1)
			if e.fobs != nil {
				e.fobs.CacheRejected(ctx, observedKey(k))
			}
		}
		return nil, 0, false
	}
	if !hit {
		return nil, 0, false
	}
	return t, t.Fingerprint(), true
}

func (e *Engine) tierStoreTrace(ctx context.Context, k Key, t *trace.Trace) {
	if e.tier == nil || t == nil {
		return
	}
	sum := t.Fingerprint()
	if e.faults.PoisonStamp(observedKey(k)) {
		sum = ^sum
	}
	lane, parent := exectrace.FromContext(ctx)
	sp := lane.Span(parent, "store", "store:trace").Arg("key", observedKey(k))
	start := time.Now()
	err := e.tier.StoreTrace(k.hex(), t, sum)
	sp.End(err)
	if e.tobs != nil {
		e.tobs.TierStored(ctx, "trace", observedKey(k), time.Since(start))
	}
}

// isCorrupt reports whether any error in the chain declares itself a
// failed integrity revalidation via a Corrupt() bool trait, mirroring the
// Retryable() convention.
func isCorrupt(err error) bool {
	var c interface{ Corrupt() bool }
	return errors.As(err, &c) && c.Corrupt()
}

// fingerprintOf computes the content fingerprint of cacheable value
// types; ok is false for types without one.
func fingerprintOf(v any) (uint64, bool) {
	switch t := v.(type) {
	case *sim.Result:
		if t != nil {
			return t.Fingerprint(), true
		}
	case *trace.Trace:
		if t != nil {
			return t.Fingerprint(), true
		}
	}
	return 0, false
}

func (e *Engine) inputs(j *Job) []any {
	if len(j.Deps) == 0 {
		return nil
	}
	in := make([]any, len(j.Deps))
	for i, d := range j.Deps {
		in[i] = d.out
	}
	return in
}
