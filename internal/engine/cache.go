package engine

import (
	"context"
	"sync"
)

// flightCache is a keyed single-flight cache: the first claimant of a key
// owns the computation while concurrent claimants wait for its result.
// Fulfilled values are retained for the engine's lifetime — the working
// sets here (a handful of traces and a few hundred merged results) are
// small next to one materialized trace, so no eviction policy is needed
// yet. Failed computations are evicted so a later claimant can retry.
type flightCache struct {
	mu sync.Mutex
	m  map[Key]*flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightCache() *flightCache {
	return &flightCache{m: make(map[Key]*flight)}
}

// claim returns the flight for k and whether the caller owns it. An owner
// must call fulfill exactly once; a non-owner waits on the flight.
func (c *flightCache) claim(k Key) (f *flight, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.m[k]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.m[k] = f
	return f, true
}

// peek reports whether k is present, fulfilled or in flight.
func (c *flightCache) peek(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[k]
	return ok
}

// fulfill publishes the owner's result to all waiters. Errors evict the
// entry first, so the computation can be retried by a later claimant.
func (c *flightCache) fulfill(k Key, f *flight, val any, err error) {
	if err != nil {
		c.mu.Lock()
		delete(c.m, k)
		c.mu.Unlock()
	}
	f.val, f.err = val, err
	close(f.done)
}

// wait blocks until the flight is fulfilled or the context is cancelled.
func (f *flight) wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// size returns the number of entries, fulfilled or in flight.
func (c *flightCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
