package engine

import (
	"context"
	"sync"
)

// flightCache is a keyed single-flight cache: the first claimant of a key
// owns the computation while concurrent claimants wait for its result.
// Fulfilled values are retained for the engine's lifetime — the working
// sets here (a handful of traces and a few hundred merged results) are
// small next to one materialized trace, so no eviction policy is needed
// yet. Failed computations are evicted so a later claimant can retry.
type flightCache struct {
	mu sync.Mutex
	m  map[Key]*flight
}

type flight struct {
	done chan struct{}
	val  any
	err  error
	// sum is the integrity stamp recorded when the value entered the
	// cache (a content fingerprint of the result or trace); stamped marks
	// it valid. In verification mode every later hit recomputes the
	// fingerprint and compares: a mismatch means the cached value mutated
	// after the fact, and the entry is evicted and recomputed instead of
	// served.
	sum     uint64
	stamped bool
}

func newFlightCache() *flightCache {
	return &flightCache{m: make(map[Key]*flight)}
}

// claim returns the flight for k and whether the caller owns it. An owner
// must call fulfill exactly once; a non-owner waits on the flight.
func (c *flightCache) claim(k Key) (f *flight, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.m[k]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.m[k] = f
	return f, true
}

// peek reports whether k is present, fulfilled or in flight.
func (c *flightCache) peek(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.m[k]
	return ok
}

// fulfill publishes the owner's result to all waiters. Errors evict the
// entry first, so the computation can be retried by a later claimant.
func (c *flightCache) fulfill(k Key, f *flight, val any, err error) {
	c.fulfillStamped(k, f, val, err, 0, false)
}

// fulfillStamped is fulfill plus an integrity stamp recorded alongside
// the value.
func (c *flightCache) fulfillStamped(k Key, f *flight, val any, err error, sum uint64, stamped bool) {
	if err != nil {
		c.mu.Lock()
		delete(c.m, k)
		c.mu.Unlock()
	}
	f.sum, f.stamped = sum, stamped && err == nil
	f.val, f.err = val, err
	close(f.done)
}

// evict removes k if it still maps to f, so a reader that found the entry
// corrupted can force a recompute without racing a fresh claimant that
// already replaced it.
func (c *flightCache) evict(k Key, f *flight) {
	c.mu.Lock()
	if c.m[k] == f {
		delete(c.m, k)
	}
	c.mu.Unlock()
}

// wait blocks until the flight is fulfilled or the context is cancelled.
func (f *flight) wait(ctx context.Context) (any, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// size returns the number of entries, fulfilled or in flight.
func (c *flightCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
