package engine

import (
	"context"
	"errors"
	"fmt"

	exectrace "dirsim/internal/obs/trace"
	"dirsim/internal/sim"
)

// Remote executes one simulation spec somewhere else — typically a
// coordinator fanning the spec out to a worker fleet (internal/dist). The
// engine stays the single owner of caching and planning: only specs that
// missed every cache tier are offered to the Remote, and an accepted
// result enters the caches exactly like a locally computed one.
//
// The contract is strict so the engine can trust what comes back:
//
//   - SimulateRemote must return a result bit-identical to what the
//     local engine would compute for spec — implementations revalidate
//     the result's Fingerprint before returning it.
//   - ErrRemoteUnavailable (possibly wrapped) means remote execution is
//     not currently possible — fleet unreachable, drained, or out of
//     attempts on transport-class failures. The engine then degrades to
//     local execution; the sweep completes either way.
//   - Any other error is a structured execution failure: the simulation
//     itself failed and would fail identically locally (simulations are
//     deterministic), so the engine surfaces it instead of burning a
//     local retry.
//
// Implementations must be safe for concurrent use; under the Parallel
// executor many specs dispatch at once.
type Remote interface {
	SimulateRemote(ctx context.Context, spec SimSpec) (*sim.Result, error)
}

// ErrRemoteUnavailable is the sentinel a Remote returns (wrapped is fine)
// when remote execution cannot be had right now. It converts a remote
// dispatch into a local fallback rather than a failure.
var ErrRemoteUnavailable = errors.New("remote execution unavailable")

// bindRemote gives a spec job a remote-first body: dispatch the spec to
// the configured Remote, and on unavailability degrade to the local
// materialize-and-simulate path. Remote jobs take no trace dependency —
// the worker regenerates the workload from the spec on its side — so a
// fleet-served sweep never generates traces on the coordinator; the trace
// is only produced here on the degraded path.
func (e *Engine) bindRemote(j *Job, spec SimSpec) {
	j.ID = fmt.Sprintf("sim:%s@%s", spec.Scheme, spec.Trace.Name)
	j.Run = func(ctx context.Context, _ []any) (any, error) {
		r, err := e.remote.SimulateRemote(ctx, spec)
		switch {
		case err == nil:
			e.simsRemote.Add(1)
			e.simsRun.Add(1)
			e.refsSimulated.Add(r.Counts.Total)
			r.Trace = spec.Trace.Name
			return r, nil
		case errors.Is(err, ErrRemoteUnavailable):
			e.remoteDegraded.Add(1)
			if lane, parent := exectrace.FromContext(ctx); lane != nil {
				lane.Instant(parent, "engine", "remote.degrade", "error", err.Error())
			}
			t, terr := e.Trace(ctx, spec.Trace)
			if terr != nil {
				return nil, terr
			}
			return e.simulateSource(ctx, spec, t.Iterator(), int64(len(t.Refs)))
		default:
			return nil, err
		}
	}
}
