package engine

import (
	"context"
	"reflect"
	"testing"

	"dirsim/internal/workload"
)

// paperSchemes are the schemes behind Table 4, Figure 1 and Figure 2
// (report.PaperSchemes, plus DirNNB to cover the sequential-invalidation
// path).
var paperSchemes = []string{"Dir1NB", "WTI", "Dir0B", "Dragon", "DirNNB"}

// TestExecutorsProduceIdenticalResults is the engine's acceptance test:
// for every paper scheme over the three standard workloads, the Parallel
// executor (streamed traces, concurrent simulations) produces results
// bit-identical to the Sequential executor (materialized traces, one job
// at a time). Results are plain data — counters, histograms, bus-cycle
// tallies — so reflect.DeepEqual is an exact bit-level comparison.
func TestExecutorsProduceIdenticalResults(t *testing.T) {
	ctx := context.Background()
	cfgs := workload.StandardConfigs(4, 40_000)

	// Separate engines so the parallel run cannot borrow the sequential
	// run's cache (which would make the comparison vacuous).
	seq := New(Options{})
	par := New(Options{Workers: 8, ChunkRefs: 512, ChunkWindow: 2})

	for _, scheme := range paperSchemes {
		sPer, sMerged, err := seq.SchemeOverTraces(ctx, Sequential{}, scheme, cfgs, false)
		if err != nil {
			t.Fatalf("%s sequential: %v", scheme, err)
		}
		pPer, pMerged, err := par.SchemeOverTraces(ctx, Parallel{Workers: 8}, scheme, cfgs, false)
		if err != nil {
			t.Fatalf("%s parallel: %v", scheme, err)
		}
		for i := range sPer {
			if !reflect.DeepEqual(sPer[i], pPer[i]) {
				t.Errorf("%s over %s: parallel result differs from sequential",
					scheme, cfgs[i].Name)
			}
		}
		if !reflect.DeepEqual(sMerged, pMerged) {
			t.Errorf("%s merged: parallel result differs from sequential", scheme)
		}
	}

	if streamed := par.Stats().TracesStreamed; streamed == 0 {
		t.Error("parallel engine never streamed; the comparison did not exercise streaming")
	}
	if streamed := seq.Stats().TracesStreamed; streamed != 0 {
		t.Errorf("sequential engine streamed %d traces; expected materialized delivery", streamed)
	}
}

// TestCompareMatchesSchemeOverTraces checks the batched multi-scheme entry
// point against per-scheme submission, under both executors.
func TestCompareMatchesSchemeOverTraces(t *testing.T) {
	ctx := context.Background()
	cfgs := workload.StandardConfigs(4, 30_000)
	schemes := []string{"Dir1NB", "WTI", "Dir0B", "Dragon"}

	ref := New(Options{})
	want := map[string]any{}
	for _, s := range schemes {
		_, merged, err := ref.SchemeOverTraces(ctx, Sequential{}, s, cfgs, false)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = merged
	}

	for _, exec := range []Executor{Sequential{}, Parallel{Workers: 6}} {
		e := New(Options{})
		got, err := e.Compare(ctx, exec, schemes, cfgs, false)
		if err != nil {
			t.Fatalf("%s: %v", exec.Name(), err)
		}
		for _, s := range schemes {
			if !reflect.DeepEqual(got[s], want[s]) {
				t.Errorf("%s: Compare result for %s differs from SchemeOverTraces",
					exec.Name(), s)
			}
		}
	}
}

// TestCheckedRunsIdentical repeats the equivalence with value-coherence
// checking enabled, covering the Check code path end to end.
func TestCheckedRunsIdentical(t *testing.T) {
	ctx := context.Background()
	cfgs := []workload.Config{workload.POPSConfig(4, 25_000)}

	seq := New(Options{})
	par := New(Options{Workers: 4})
	_, sMerged, err := seq.SchemeOverTraces(ctx, Sequential{}, "Dir0B", cfgs, true)
	if err != nil {
		t.Fatal(err)
	}
	_, pMerged, err := par.SchemeOverTraces(ctx, Parallel{}, "Dir0B", cfgs, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sMerged, pMerged) {
		t.Error("checked parallel run differs from checked sequential run")
	}
}
