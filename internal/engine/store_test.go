package engine

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dirsim/internal/faults"
	"dirsim/internal/store"
	"dirsim/internal/workload"
)

// The durable store must satisfy the engine's second-tier contract.
var _ Tier = (*store.Store)(nil)

func openTier(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestTierWarmStartServesFromStore is the heart of the two-tier design: a
// second engine over the same store directory — a fresh process, as far
// as caching is concerned — must serve the whole batch from disk, bit
// identical, without simulating or generating anything.
func TestTierWarmStartServesFromStore(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	specs := []SimSpec{
		{Trace: workload.POPSConfig(4, 6_000), Scheme: "Dir0B"},
		{Trace: workload.POPSConfig(4, 6_000), Scheme: "Dir2B"},
	}

	cold := New(Options{Verify: true, Store: openTier(t, dir)})
	want, err := cold.Results(ctx, Sequential{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats().SimsRun != 2 {
		t.Fatalf("cold engine SimsRun = %d, want 2", cold.Stats().SimsRun)
	}

	for _, exec := range executors() {
		t.Run(exec.Name(), func(t *testing.T) {
			warm := New(Options{Verify: true, Store: openTier(t, dir)})
			got, err := warm.Results(ctx, exec, specs)
			if err != nil {
				t.Fatal(err)
			}
			st := warm.Stats()
			if st.SimsRun != 0 || st.TracesGenerated != 0 {
				t.Errorf("warm engine simulated: SimsRun=%d TracesGenerated=%d, want 0/0",
					st.SimsRun, st.TracesGenerated)
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Errorf("spec %d: store-served result differs from cold run", i)
				}
				if got[i].Fingerprint() != want[i].Fingerprint() {
					t.Errorf("spec %d: fingerprint mismatch", i)
				}
			}
		})
	}
}

// TestTierServesTraceForNewScheme: a warm store holds the trace even when
// the requested scheme was never simulated, so a new scheme over a known
// workload reuses the stored trace instead of regenerating it.
func TestTierServesTraceForNewScheme(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := workload.POPSConfig(4, 6_000)

	cold := New(Options{Verify: true, Store: openTier(t, dir)})
	if _, err := cold.Results(ctx, Sequential{}, []SimSpec{{Trace: cfg, Scheme: "Dir0B"}}); err != nil {
		t.Fatal(err)
	}

	warm := New(Options{Verify: true, Store: openTier(t, dir)})
	if _, err := warm.Results(ctx, Sequential{}, []SimSpec{{Trace: cfg, Scheme: "Dir1B"}}); err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.SimsRun != 1 {
		t.Errorf("SimsRun = %d, want 1 (new scheme must simulate)", st.SimsRun)
	}
	if st.TracesGenerated != 0 {
		t.Errorf("TracesGenerated = %d, want 0 (trace must come from the store)", st.TracesGenerated)
	}
}

// TestTierPoisonedStampRejected reuses the fault injector's poisoned-stamp
// machinery against the durable tier: an engine whose stores are all
// poisoned persists corrupt stamps, and a clean engine sharing the
// directory must reject every load, recompute, and still return results
// identical to a never-cached run.
func TestTierPoisonedStampRejected(t *testing.T) {
	ctx := context.Background()
	spec := SimSpec{Trace: workload.POPSConfig(4, 6_000), Scheme: "Dir0B"}

	clean := New(Options{})
	want, err := clean.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	poisoned := New(Options{
		Store:  openTier(t, dir),
		Faults: faults.New(faults.Config{Seed: 1, Poison: 1}),
	})
	if _, err := poisoned.Results(ctx, Sequential{}, []SimSpec{spec}); err != nil {
		t.Fatal(err)
	}

	tier := openTier(t, dir)
	e := New(Options{Verify: true, Store: tier})
	got, err := e.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want[0]) {
		t.Error("result after poisoned-store rejection differs from clean run")
	}
	if st := e.Stats(); st.CacheRejected < 1 || st.SimsRun != 1 {
		t.Errorf("CacheRejected = %d (want >= 1), SimsRun = %d (want 1)",
			st.CacheRejected, st.SimsRun)
	}
	if rej := tier.Stats().Rejected; rej < 1 {
		t.Errorf("store Rejected = %d, want >= 1", rej)
	}
}

// TestTierCorruptFileRecomputed flips bytes in the stored result file on
// disk — bit rot, not a poisoned stamp — and asserts the next engine over
// the directory rejects the entry, bumps cache.rejected, evicts the file,
// and recomputes the correct result.
func TestTierCorruptFileRecomputed(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := SimSpec{Trace: workload.POPSConfig(4, 6_000), Scheme: "Dir0B"}

	cold := New(Options{Verify: true, Store: openTier(t, dir)})
	want, err := cold.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}

	var corrupted int
	err = filepath.WalkDir(filepath.Join(dir, "res"), func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		i := strings.Index(string(data), `"Total":`)
		if i < 0 {
			t.Fatalf("%s: no Total field to corrupt", path)
		}
		i += len(`"Total":`)
		data[i] = '9' + '8' - data[i] // flip the digit, keep the JSON valid
		corrupted++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no stored result files found to corrupt")
	}

	e := New(Options{Verify: true, Store: openTier(t, dir)})
	got, err := e.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[0], want[0]) {
		t.Error("recomputed result differs from the original")
	}
	if st := e.Stats(); st.CacheRejected < 1 || st.SimsRun != 1 {
		t.Errorf("CacheRejected = %d (want >= 1), SimsRun = %d (want 1)",
			st.CacheRejected, st.SimsRun)
	}

	// The corrupt file was evicted, so a further engine recomputes cleanly
	// from the trace (still stored) and repopulates the result.
	again := New(Options{Verify: true, Store: openTier(t, dir)})
	got2, err := again.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2[0], want[0]) {
		t.Error("post-eviction result differs from the original")
	}
	if st := again.Stats(); st.CacheRejected != 0 {
		t.Errorf("post-eviction CacheRejected = %d, want 0 (bad entry was evicted)", st.CacheRejected)
	}
}
