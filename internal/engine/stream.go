package engine

import (
	"context"

	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// broadcast fans one generated reference stream out to several
// simulators through bounded chunk channels: the producer goroutine runs
// workload.Stream, packs references into fixed-size chunks, and sends
// each chunk to every subscriber. Chunks are immutable once sent, so all
// subscribers share the same backing arrays; the channel capacity
// (chunkWindow) is the only buffering, giving real back-pressure — the
// generator stalls when it runs a window ahead of the slowest simulator.
//
// Subscribers must all be consuming concurrently (the stream jobs built
// by planSpecs guarantee this); otherwise the producer would park on a
// full channel forever.
type broadcast struct {
	cfg       workload.Config
	chunkRefs int
	retain    bool
	subs      []*streamSource

	// chunks counts chunks multicast; stalls counts sends that found a
	// subscriber's channel full and had to block — the generator waiting
	// on the slowest simulator. Both are written only by the producer
	// goroutine inside run and read after it returns.
	chunks int64
	stalls int64
}

func newBroadcast(cfg workload.Config, nsubs, chunkRefs, window int, retain bool) *broadcast {
	b := &broadcast{cfg: cfg, chunkRefs: chunkRefs, retain: retain}
	b.subs = make([]*streamSource, nsubs)
	for i := range b.subs {
		b.subs[i] = &streamSource{cpus: cfg.CPUs, ch: make(chan []trace.Ref, window)}
	}
	return b
}

// run generates the trace once, multicasting chunks to every subscriber,
// and closes all subscriber channels when done. With retain set it also
// accumulates the full reference slice and returns it as a materialized
// trace. Cancelling ctx aborts generation; subscribers then observe a
// truncated stream, which callers must discard (the group job does).
func (b *broadcast) run(ctx context.Context) (*trace.Trace, error) {
	var retained []trace.Ref
	if b.retain {
		retained = make([]trace.Ref, 0, b.cfg.Refs+b.cfg.Refs/8)
	}
	chunk := make([]trace.Ref, 0, b.chunkRefs)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		b.chunks++
		for _, s := range b.subs {
			select {
			case s.ch <- chunk:
				continue
			default:
				// The subscriber's window is full: the generator is about
				// to park on it. Counted so chunk-window tuning has data.
				b.stalls++
			}
			select {
			case s.ch <- chunk:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if b.retain {
			retained = append(retained, chunk...)
		}
		chunk = make([]trace.Ref, 0, b.chunkRefs)
		return nil
	}
	err := workload.Stream(b.cfg, func(r trace.Ref) error {
		chunk = append(chunk, r)
		if len(chunk) == b.chunkRefs {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	for _, s := range b.subs {
		close(s.ch)
	}
	if err != nil {
		return nil, err
	}
	if !b.retain {
		return nil, nil
	}
	t := &trace.Trace{Name: b.cfg.Name, CPUs: b.cfg.CPUs, Refs: retained}
	return t, nil
}

// streamSource adapts one subscriber's chunk channel to trace.Source.
type streamSource struct {
	cpus int
	ch   chan []trace.Ref
	cur  []trace.Ref
	pos  int
}

func (s *streamSource) Next() (trace.Ref, bool) {
	for s.pos >= len(s.cur) {
		c, ok := <-s.ch
		if !ok {
			return trace.Ref{}, false
		}
		s.cur, s.pos = c, 0
	}
	r := s.cur[s.pos]
	s.pos++
	return r, true
}

func (s *streamSource) CPUCount() int { return s.cpus }

// cancellableSource wraps a Source so long replays of materialized traces
// observe context cancellation; it checks every checkEvery references.
type cancellableSource struct {
	src trace.Source
	ctx context.Context
	n   int
}

const checkEvery = 8192

func cancellable(ctx context.Context, src trace.Source) trace.Source {
	return &cancellableSource{src: src, ctx: ctx}
}

func (c *cancellableSource) Next() (trace.Ref, bool) {
	c.n++
	if c.n%checkEvery == 0 && c.ctx.Err() != nil {
		return trace.Ref{}, false
	}
	return c.src.Next()
}

func (c *cancellableSource) CPUCount() int { return c.src.CPUCount() }
