package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dirsim/internal/faults"
	exectrace "dirsim/internal/obs/trace"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// refChunk is one multicast unit of a streamed generation: a fixed-size
// block of references plus the number of subscribers still reading it.
// Chunks are recycled through the broadcast's pool — the last subscriber
// to finish a chunk returns it — so a steady-state stream allocates
// nothing per chunk regardless of trace length.
type refChunk struct {
	refs []trace.Ref
	// live is the number of subscribers that have not finished the chunk
	// yet; it is set by the producer before the chunk is sent and
	// decremented by each subscriber exactly once. A decrement below zero
	// means a double release — a recycling bug that would hand a chunk
	// back to the pool while another subscriber still reads it — and is
	// reported as a detected fault rather than silently corrupting data.
	live atomic.Int32
	// idx is the chunk's ordinal in the stream; sum is the checksum of
	// refs taken by the producer at send time, revalidated by subscribers
	// in verification mode.
	idx int64
	sum uint64
}

// broadcast fans one generated reference stream out to several
// simulators through bounded chunk channels: the producer goroutine runs
// workload.StreamBatches, copies each batch into a pool-recycled chunk,
// and sends the chunk to every subscriber. A chunk is immutable from send
// until its last subscriber releases it, so all subscribers share the
// same backing array; the channel capacity (chunkWindow) is the only
// buffering, giving real back-pressure — the generator stalls when it
// runs a window ahead of the slowest simulator.
//
// Subscribers must all be consuming concurrently (the stream jobs built
// by planSpecs guarantee this); otherwise the producer would park on a
// full channel forever. A subscriber that stops early (an error, a
// cancelled simulation) must drain its channel for the same reason.
type broadcast struct {
	cfg       workload.Config
	chunkRefs int
	retain    bool
	subs      []*streamSource
	pool      sync.Pool // *refChunk, capacity chunkRefs

	// verify turns on per-chunk checksums (stamped by the producer,
	// revalidated by every subscriber) and reference accounting; inj,
	// when non-nil, injects stream faults. Both are set before run.
	verify bool
	inj    *faults.Injector

	// tlane/tspan, when set (by the producer goroutine before run),
	// record a back-pressure stall instant each time a send finds a
	// subscriber's window full. Only the producer touches them.
	tlane *exectrace.Lane
	tspan exectrace.SpanID

	// chunks counts chunks multicast; stalls counts sends that found a
	// subscriber's channel full and had to block — the generator waiting
	// on the slowest simulator. Both are written only by the producer
	// goroutine inside run, once per chunk (never per reference), and
	// read after it returns. refsEmitted totals references multicast, the
	// producer's side of the truncation reconciliation.
	chunks      int64
	stalls      int64
	refsEmitted int64

	// outstanding counts chunks currently out of the pool; it returns to
	// zero only when every chunk has been released by its last
	// subscriber, so tests can assert no pooled chunk is retained after a
	// cancelled or failed stream.
	outstanding atomic.Int64

	mu    sync.Mutex
	fault error // first refcount-corruption fault, fails the whole group
}

func newBroadcast(cfg workload.Config, nsubs, chunkRefs, window int, retain bool) *broadcast {
	b := &broadcast{cfg: cfg, chunkRefs: chunkRefs, retain: retain}
	b.pool.New = func() any {
		return &refChunk{refs: make([]trace.Ref, 0, chunkRefs)}
	}
	b.subs = make([]*streamSource, nsubs)
	for i := range b.subs {
		b.subs[i] = &streamSource{cpus: cfg.CPUs, b: b, ch: make(chan *refChunk, window)}
	}
	return b
}

// setFault records the first integrity fault observed on the stream's
// recycling machinery; any such fault discredits the whole group.
func (b *broadcast) setFault(err error) {
	b.mu.Lock()
	if b.fault == nil {
		b.fault = err
	}
	b.mu.Unlock()
}

func (b *broadcast) faultErr() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fault
}

// run generates the trace once, multicasting chunks to every subscriber,
// and closes all subscriber channels when done. With retain set it also
// accumulates the full reference slice and returns it as a materialized
// trace. Cancelling ctx aborts generation; subscribers then observe a
// truncated stream, which callers must discard (the group job does).
func (b *broadcast) run(ctx context.Context) (*trace.Trace, error) {
	var retained []trace.Ref
	if b.retain {
		retained = make([]trace.Ref, 0, b.cfg.Refs+b.cfg.Refs/8)
	}
	expectChunks := int64(b.cfg.Refs/b.chunkRefs) + 1
	err := workload.StreamBatches(b.cfg, b.chunkRefs, func(batch []trace.Ref) error {
		// The retained copy is taken from the generator's batch before any
		// injected corruption, so the captured trace stays clean even when
		// the multicast chunk is deliberately damaged.
		if b.retain {
			retained = append(retained, batch...)
		}
		// The generator reuses batch, so it is copied once into a chunk
		// that stays immutable until the last subscriber releases it back
		// to the pool.
		c := b.pool.Get().(*refChunk)
		b.outstanding.Add(1)
		c.refs = append(c.refs[:0], batch...)
		c.idx = b.chunks
		if b.verify {
			c.sum = trace.Checksum(c.refs)
			// Injected corruption happens after the stamp — modelling the
			// buffer changing between producer and consumer, exactly what
			// the checksum defends against.
			b.inj.CorruptChunk(b.cfg.Name, c.idx, expectChunks, c.refs)
		}
		if d := b.inj.ChunkDelay(b.cfg.Name, c.idx); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				c.live.Store(1)
				b.subs[0].curRelease(c)
				return ctx.Err()
			}
		}
		c.live.Store(int32(len(b.subs)))
		b.chunks++
		b.refsEmitted += int64(len(c.refs))
		for si, s := range b.subs {
			select {
			case s.ch <- c:
				continue
			default:
				// The subscriber's window is full: the generator is about
				// to park on it. Counted so chunk-window tuning has data.
				b.stalls++
				if b.tlane != nil {
					b.tlane.Instant(b.tspan, "stream", "stall", "chunk", c.idx, "sub", si)
				}
			}
			select {
			case s.ch <- c:
			case <-ctx.Done():
				// Subscribers that already received the chunk release
				// their own shares (directly or by draining); the shares
				// of subscribers that never will are released here so the
				// chunk's refcount still reaches zero.
				for j := si; j < len(b.subs); j++ {
					s.curRelease(c)
				}
				return ctx.Err()
			}
		}
		return nil
	})
	for _, s := range b.subs {
		close(s.ch)
	}
	if err != nil {
		return nil, err
	}
	if !b.retain {
		return nil, nil
	}
	t := &trace.Trace{Name: b.cfg.Name, CPUs: b.cfg.CPUs, Refs: retained}
	return t, nil
}

// streamSource adapts one subscriber's chunk channel to trace.Source and
// trace.BatchSource. It is used by a single simulator goroutine.
type streamSource struct {
	cpus int
	b    *broadcast
	ch   chan *refChunk
	cur  *refChunk
	pos  int
	// consumed counts references delivered to the simulator — the
	// subscriber's side of the truncation reconciliation against the
	// producer's refsEmitted.
	consumed int64
	// err is set when the subscriber detects chunk corruption; the stream
	// then ends early and the group surfaces the error for this spec.
	err error
	// tlane/tspan, when set (by the subscriber goroutine before it starts
	// consuming), record a chunk-received instant per chunk. Only the
	// consuming goroutine touches them.
	tlane *exectrace.Lane
	tspan exectrace.SpanID
}

// release hands the finished chunk back; the last subscriber out returns
// it to the pool for the producer to refill. A refcount that goes
// negative is a double release: the fault is recorded on the broadcast
// (failing the whole group) instead of recycling a chunk someone may
// still be reading.
func (s *streamSource) release() {
	c := s.cur
	s.cur, s.pos = nil, 0
	s.curRelease(c)
}

func (s *streamSource) curRelease(c *refChunk) {
	if c == nil {
		return
	}
	switch n := c.live.Add(-1); {
	case n == 0:
		s.b.outstanding.Add(-1)
		s.b.pool.Put(c)
	case n < 0:
		s.b.setFault(fmt.Errorf("engine: chunk %d of %s released %d times past its last reader",
			c.idx, s.b.cfg.Name, -n))
	}
}

// drain releases the current chunk and everything still queued, running
// until the producer closes the channel. A subscriber that stops
// consuming early — its simulation failed or was cancelled — must drain:
// it unblocks the producer (which may be parked on this subscriber's full
// window) and releases the stranded chunks' refcounts so they return to
// the pool.
func (s *streamSource) drain() {
	s.release()
	for c := range s.ch {
		s.curRelease(c)
	}
}

// advance ensures s.cur holds unread references, blocking on the channel
// when the current chunk is drained. It reports false at end of stream.
// In verification mode each incoming chunk's checksum is revalidated; a
// mismatch sets the subscriber's error and ends its stream.
func (s *streamSource) advance() bool {
	if s.err != nil {
		return false
	}
	for s.cur == nil || s.pos >= len(s.cur.refs) {
		if s.cur != nil {
			s.release()
		}
		c, ok := <-s.ch
		if !ok {
			return false
		}
		if s.b.verify && trace.Checksum(c.refs) != c.sum {
			s.err = fmt.Errorf("engine: chunk %d of %s failed checksum validation", c.idx, s.b.cfg.Name)
			s.cur = c
			s.release()
			return false
		}
		if s.tlane != nil {
			s.tlane.Instant(s.tspan, "stream", "chunk", "idx", c.idx, "refs", len(c.refs))
		}
		s.cur, s.pos = c, 0
	}
	return true
}

func (s *streamSource) Next() (trace.Ref, bool) {
	if !s.advance() {
		return trace.Ref{}, false
	}
	r := s.cur.refs[s.pos]
	s.pos++
	s.consumed++
	return r, true
}

// NextBatch copies the remainder of the current chunk (receiving the next
// one when drained) into buf. It never blocks while it holds undelivered
// references, so a consumer with a batch size other than the producer's
// chunk size still makes progress chunk by chunk.
func (s *streamSource) NextBatch(buf []trace.Ref) int {
	if !s.advance() {
		return 0
	}
	n := copy(buf, s.cur.refs[s.pos:])
	s.pos += n
	s.consumed += int64(n)
	return n
}

func (s *streamSource) CPUCount() int { return s.cpus }

// cancellableSource wraps a Source so long replays of materialized traces
// observe context cancellation; the per-reference path checks every
// checkEvery references, the batched path once per batch.
type cancellableSource struct {
	src trace.Source
	b   trace.BatchSource
	ctx context.Context
	n   int
}

const checkEvery = 8192

func cancellable(ctx context.Context, src trace.Source) trace.Source {
	return &cancellableSource{src: src, b: trace.Batched(src), ctx: ctx}
}

func (c *cancellableSource) Next() (trace.Ref, bool) {
	c.n++
	if c.n%checkEvery == 0 && c.ctx.Err() != nil {
		return trace.Ref{}, false
	}
	return c.src.Next()
}

func (c *cancellableSource) NextBatch(buf []trace.Ref) int {
	if c.ctx.Err() != nil {
		return 0
	}
	return c.b.NextBatch(buf)
}

func (c *cancellableSource) CPUCount() int { return c.src.CPUCount() }
