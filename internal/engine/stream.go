package engine

import (
	"context"
	"sync"
	"sync/atomic"

	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// refChunk is one multicast unit of a streamed generation: a fixed-size
// block of references plus the number of subscribers still reading it.
// Chunks are recycled through the broadcast's pool — the last subscriber
// to finish a chunk returns it — so a steady-state stream allocates
// nothing per chunk regardless of trace length.
type refChunk struct {
	refs []trace.Ref
	// live is the number of subscribers that have not finished the chunk
	// yet; it is set by the producer before the chunk is sent and
	// decremented by each subscriber exactly once.
	live atomic.Int32
}

// broadcast fans one generated reference stream out to several
// simulators through bounded chunk channels: the producer goroutine runs
// workload.StreamBatches, copies each batch into a pool-recycled chunk,
// and sends the chunk to every subscriber. A chunk is immutable from send
// until its last subscriber releases it, so all subscribers share the
// same backing array; the channel capacity (chunkWindow) is the only
// buffering, giving real back-pressure — the generator stalls when it
// runs a window ahead of the slowest simulator.
//
// Subscribers must all be consuming concurrently (the stream jobs built
// by planSpecs guarantee this); otherwise the producer would park on a
// full channel forever.
type broadcast struct {
	cfg       workload.Config
	chunkRefs int
	retain    bool
	subs      []*streamSource
	pool      sync.Pool // *refChunk, capacity chunkRefs

	// chunks counts chunks multicast; stalls counts sends that found a
	// subscriber's channel full and had to block — the generator waiting
	// on the slowest simulator. Both are written only by the producer
	// goroutine inside run, once per chunk (never per reference), and
	// read after it returns.
	chunks int64
	stalls int64
}

func newBroadcast(cfg workload.Config, nsubs, chunkRefs, window int, retain bool) *broadcast {
	b := &broadcast{cfg: cfg, chunkRefs: chunkRefs, retain: retain}
	b.pool.New = func() any {
		return &refChunk{refs: make([]trace.Ref, 0, chunkRefs)}
	}
	b.subs = make([]*streamSource, nsubs)
	for i := range b.subs {
		b.subs[i] = &streamSource{cpus: cfg.CPUs, pool: &b.pool, ch: make(chan *refChunk, window)}
	}
	return b
}

// run generates the trace once, multicasting chunks to every subscriber,
// and closes all subscriber channels when done. With retain set it also
// accumulates the full reference slice and returns it as a materialized
// trace. Cancelling ctx aborts generation; subscribers then observe a
// truncated stream, which callers must discard (the group job does).
func (b *broadcast) run(ctx context.Context) (*trace.Trace, error) {
	var retained []trace.Ref
	if b.retain {
		retained = make([]trace.Ref, 0, b.cfg.Refs+b.cfg.Refs/8)
	}
	err := workload.StreamBatches(b.cfg, b.chunkRefs, func(batch []trace.Ref) error {
		// The generator reuses batch, so it is copied once into a chunk
		// that stays immutable until the last subscriber releases it back
		// to the pool.
		c := b.pool.Get().(*refChunk)
		c.refs = append(c.refs[:0], batch...)
		c.live.Store(int32(len(b.subs)))
		b.chunks++
		for _, s := range b.subs {
			select {
			case s.ch <- c:
				continue
			default:
				// The subscriber's window is full: the generator is about
				// to park on it. Counted so chunk-window tuning has data.
				b.stalls++
			}
			select {
			case s.ch <- c:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if b.retain {
			retained = append(retained, batch...)
		}
		return nil
	})
	for _, s := range b.subs {
		close(s.ch)
	}
	if err != nil {
		return nil, err
	}
	if !b.retain {
		return nil, nil
	}
	t := &trace.Trace{Name: b.cfg.Name, CPUs: b.cfg.CPUs, Refs: retained}
	return t, nil
}

// streamSource adapts one subscriber's chunk channel to trace.Source and
// trace.BatchSource. It is used by a single simulator goroutine.
type streamSource struct {
	cpus int
	pool *sync.Pool
	ch   chan *refChunk
	cur  *refChunk
	pos  int
}

// release hands the finished chunk back; the last subscriber out returns
// it to the pool for the producer to refill.
func (s *streamSource) release() {
	c := s.cur
	s.cur, s.pos = nil, 0
	if c != nil && c.live.Add(-1) == 0 {
		s.pool.Put(c)
	}
}

// advance ensures s.cur holds unread references, blocking on the channel
// when the current chunk is drained. It reports false at end of stream.
func (s *streamSource) advance() bool {
	for s.cur == nil || s.pos >= len(s.cur.refs) {
		if s.cur != nil {
			s.release()
		}
		c, ok := <-s.ch
		if !ok {
			return false
		}
		s.cur, s.pos = c, 0
	}
	return true
}

func (s *streamSource) Next() (trace.Ref, bool) {
	if !s.advance() {
		return trace.Ref{}, false
	}
	r := s.cur.refs[s.pos]
	s.pos++
	return r, true
}

// NextBatch copies the remainder of the current chunk (receiving the next
// one when drained) into buf. It never blocks while it holds undelivered
// references, so a consumer with a batch size other than the producer's
// chunk size still makes progress chunk by chunk.
func (s *streamSource) NextBatch(buf []trace.Ref) int {
	if !s.advance() {
		return 0
	}
	n := copy(buf, s.cur.refs[s.pos:])
	s.pos += n
	return n
}

func (s *streamSource) CPUCount() int { return s.cpus }

// cancellableSource wraps a Source so long replays of materialized traces
// observe context cancellation; the per-reference path checks every
// checkEvery references, the batched path once per batch.
type cancellableSource struct {
	src trace.Source
	b   trace.BatchSource
	ctx context.Context
	n   int
}

const checkEvery = 8192

func cancellable(ctx context.Context, src trace.Source) trace.Source {
	return &cancellableSource{src: src, b: trace.Batched(src), ctx: ctx}
}

func (c *cancellableSource) Next() (trace.Ref, bool) {
	c.n++
	if c.n%checkEvery == 0 && c.ctx.Err() != nil {
		return trace.Ref{}, false
	}
	return c.src.Next()
}

func (c *cancellableSource) NextBatch(buf []trace.Ref) int {
	if c.ctx.Err() != nil {
		return 0
	}
	return c.b.NextBatch(buf)
}

func (c *cancellableSource) CPUCount() int { return c.src.CPUCount() }
