package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"dirsim/internal/sim"
	"dirsim/internal/workload"
)

// fakeRemote executes specs through a private local engine — the honest
// stand-in for a worker fleet, since workers run the same code — while
// counting dispatches. Its fail hook lets tests force unavailability or
// structured execution failures per spec.
type fakeRemote struct {
	exec  *Engine
	calls atomic.Int64
	fail  func(spec SimSpec) error
}

func (f *fakeRemote) SimulateRemote(ctx context.Context, spec SimSpec) (*sim.Result, error) {
	f.calls.Add(1)
	if f.fail != nil {
		if err := f.fail(spec); err != nil {
			return nil, err
		}
	}
	rs, err := f.exec.Results(ctx, Sequential{}, []SimSpec{spec})
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

func remoteSpecs() []SimSpec {
	var specs []SimSpec
	for _, cfg := range workload.StandardConfigs(4, 5_000) {
		for _, scheme := range []string{"Dir0B", "Dir1NB"} {
			specs = append(specs, SimSpec{Trace: cfg, Scheme: scheme})
		}
	}
	return specs
}

// TestRemoteServesUncachedSpecs checks the remote-first plan: every
// uncached spec dispatches to the Remote, the results are bit-identical
// to a purely local run, and the coordinator side generates no traces.
func TestRemoteServesUncachedSpecs(t *testing.T) {
	ctx := context.Background()
	specs := remoteSpecs()
	want, err := New(Options{}).Results(ctx, Sequential{}, specs)
	if err != nil {
		t.Fatal(err)
	}

	for _, exec := range executors() {
		t.Run(exec.Name(), func(t *testing.T) {
			rem := &fakeRemote{exec: New(Options{})}
			e := New(Options{Remote: rem})
			got, err := e.Results(ctx, exec, specs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Fingerprint() != want[i].Fingerprint() || !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("spec %d (%s@%s) diverged from local run", i, specs[i].Scheme, specs[i].Trace.Name)
				}
			}
			st := e.Stats()
			if st.SimsRemote != int64(len(specs)) || rem.calls.Load() != int64(len(specs)) {
				t.Errorf("SimsRemote=%d remote calls=%d, want %d", st.SimsRemote, rem.calls.Load(), len(specs))
			}
			if st.TracesGenerated != 0 || st.TracesStreamed != 0 {
				t.Errorf("remote-served run generated traces locally: generated=%d streamed=%d",
					st.TracesGenerated, st.TracesStreamed)
			}
			if st.RemoteDegraded != 0 {
				t.Errorf("RemoteDegraded = %d, want 0", st.RemoteDegraded)
			}

			// Warm re-run: everything is cached, the fleet sees nothing.
			before := rem.calls.Load()
			again, err := e.Results(ctx, exec, specs)
			if err != nil {
				t.Fatal(err)
			}
			if rem.calls.Load() != before {
				t.Errorf("cached specs dispatched remotely: %d extra calls", rem.calls.Load()-before)
			}
			for i := range want {
				if !reflect.DeepEqual(again[i], want[i]) {
					t.Fatalf("warm spec %d diverged", i)
				}
			}
		})
	}
}

// TestRemoteUnavailableDegradesToLocal checks the degradation ladder's
// bottom rung: a Remote that reports unavailability (wrapped, as real
// clients return it) converts every dispatch into a local computation
// with identical results.
func TestRemoteUnavailableDegradesToLocal(t *testing.T) {
	ctx := context.Background()
	specs := remoteSpecs()
	want, err := New(Options{}).Results(ctx, Sequential{}, specs)
	if err != nil {
		t.Fatal(err)
	}

	rem := &fakeRemote{exec: New(Options{}), fail: func(SimSpec) error {
		return fmt.Errorf("fleet drained: %w", ErrRemoteUnavailable)
	}}
	e := New(Options{Remote: rem})
	got, err := e.Results(ctx, Parallel{}, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("degraded spec %d diverged from local run", i)
		}
	}
	st := e.Stats()
	if st.RemoteDegraded != int64(len(specs)) || st.SimsRemote != 0 {
		t.Errorf("RemoteDegraded=%d SimsRemote=%d, want %d/0", st.RemoteDegraded, st.SimsRemote, len(specs))
	}
	if st.SimsRun != int64(len(specs)) {
		t.Errorf("SimsRun = %d, want %d local computations", st.SimsRun, len(specs))
	}
	// The degraded fallbacks share trace generations: 3 workloads, not 6.
	if st.TracesGenerated != 3 {
		t.Errorf("TracesGenerated = %d, want 3 (one per workload)", st.TracesGenerated)
	}
}

// TestRemoteExecutionErrorSurfaces checks that a structured worker-side
// failure is terminal: it surfaces through the job as an errors.As
// matchable error, with no local fallback masking it.
func TestRemoteExecutionErrorSurfaces(t *testing.T) {
	ctx := context.Background()
	specs := remoteSpecs()[:2]
	boom := &sim.ShardError{Shard: 1, Panicked: true, Stack: "goroutine 7 [running]:",
		Err: errors.New("injected shard panic")}
	rem := &fakeRemote{exec: New(Options{}), fail: func(s SimSpec) error {
		if s.Scheme == "Dir1NB" {
			return boom
		}
		return nil
	}}
	e := New(Options{Remote: rem})
	got, err := e.Results(ctx, Parallel{}, specs)
	var p *Partial
	if !errors.As(err, &p) || len(p.Failed) != 1 {
		t.Fatalf("want one-failure Partial, got %v", err)
	}
	for _, ferr := range p.Failed {
		var se *sim.ShardError
		if !errors.As(ferr, &se) || !se.Panicked || se.Stack == "" {
			t.Fatalf("worker failure lost structure: %v", ferr)
		}
	}
	// The surviving spec still came back remote; nothing ran locally.
	if got[0] == nil {
		t.Error("surviving spec voided by sibling's failure")
	}
	if st := e.Stats(); st.RemoteDegraded != 0 {
		t.Errorf("execution error must not degrade to local, RemoteDegraded=%d", st.RemoteDegraded)
	}
}
