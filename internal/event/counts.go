package event

import (
	"fmt"
	"strings"
)

// Counts accumulates event frequencies for one protocol over one trace —
// the raw material of Table 4.
type Counts struct {
	// N[t] is the number of references classified as event t.
	N [NumTypes]int64
	// Total is the total number of references seen (including
	// instruction fetches).
	Total int64
}

// Add records one classified reference.
func (c *Counts) Add(t Type) {
	c.N[t]++
	c.Total++
}

// AddCounts merges other into c (used to average across traces).
func (c *Counts) AddCounts(other Counts) {
	for i := range c.N {
		c.N[i] += other.N[i]
	}
	c.Total += other.Total
}

// Pct returns the frequency of event t as a percentage of all references,
// the unit used throughout Table 4.
func (c *Counts) Pct(t Type) float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.N[t]) / float64(c.Total)
}

// Frac returns the frequency of event t as a fraction of all references.
func (c *Counts) Frac(t Type) float64 { return c.Pct(t) / 100 }

// PctSum returns the combined percentage of the given event types.
func (c *Counts) PctSum(types ...Type) float64 {
	var s float64
	for _, t := range types {
		s += c.Pct(t)
	}
	return s
}

// Reads returns the percentage of references that are data reads.
func (c *Counts) Reads() float64 {
	return c.PctSum(RdHit, RdMissFirst, RdMissMem, RdMissClean, RdMissDirty)
}

// Writes returns the percentage of references that are data writes.
func (c *Counts) Writes() float64 {
	return c.PctSum(WrHitOwn, WrHitClean, WrHitShared, WrHitLocal,
		WrMissFirst, WrMissMem, WrMissClean, WrMissDirty)
}

// ReadMisses returns the percentage of references that are non-first read
// misses (the paper's rd-miss row).
func (c *Counts) ReadMisses() float64 {
	return c.PctSum(RdMissMem, RdMissClean, RdMissDirty)
}

// WriteMisses returns the percentage of references that are non-first
// write misses (the paper's wrt-miss row).
func (c *Counts) WriteMisses() float64 {
	return c.PctSum(WrMissMem, WrMissClean, WrMissDirty)
}

// DataMissRate returns the total data miss rate including first-reference
// misses, as a percentage of all references. For an update protocol this is
// the "native" miss rate of the trace (paper, Section 5).
func (c *Counts) DataMissRate() float64 {
	return c.ReadMisses() + c.WriteMisses() + c.PctSum(RdMissFirst, WrMissFirst)
}

// String renders the counts as a Table 4 style column.
func (c *Counts) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %8s\n", "event", "count", "% refs")
	for t := Type(0); t < NumTypes; t++ {
		if c.N[t] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-14s %8d %8.3f\n", t, c.N[t], c.Pct(t))
	}
	fmt.Fprintf(&b, "%-14s %8d\n", "total", c.Total)
	return b.String()
}

// Hist is an integer-valued histogram, used for the Figure 1 distribution
// of how many caches must be invalidated on a write to a previously-clean
// block, and for related distributions (holders at miss time, etc.).
type Hist struct {
	// Buckets[i] counts observations of value i.
	Buckets []int64
}

// Observe records one observation of value v (v >= 0).
func (h *Hist) Observe(v int) {
	if v < 0 {
		panic(fmt.Sprintf("event: negative histogram value %d", v))
	}
	for len(h.Buckets) <= v {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[v]++
}

// AddHist merges other into h.
func (h *Hist) AddHist(other Hist) {
	for v, n := range other.Buckets {
		for len(h.Buckets) <= v {
			h.Buckets = append(h.Buckets, 0)
		}
		h.Buckets[v] += n
	}
}

// Total returns the number of observations.
func (h *Hist) Total() int64 {
	var t int64
	for _, n := range h.Buckets {
		t += n
	}
	return t
}

// Pct returns the percentage of observations with value v.
func (h *Hist) Pct(v int) float64 {
	t := h.Total()
	if t == 0 || v < 0 || v >= len(h.Buckets) {
		return 0
	}
	return 100 * float64(h.Buckets[v]) / float64(t)
}

// PctAtMost returns the percentage of observations with value <= v.
// The paper's headline Figure 1 statistic is PctAtMost(1) > 85.
func (h *Hist) PctAtMost(v int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var n int64
	for i := 0; i <= v && i < len(h.Buckets); i++ {
		n += h.Buckets[i]
	}
	return 100 * float64(n) / float64(t)
}

// Mean returns the average observed value.
func (h *Hist) Mean() float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	var sum int64
	for v, n := range h.Buckets {
		sum += int64(v) * n
	}
	return float64(sum) / float64(t)
}

// String renders the histogram one bucket per line with percentages.
func (h *Hist) String() string {
	var b strings.Builder
	for v, n := range h.Buckets {
		if n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%3d: %10d (%6.2f%%)\n", v, n, h.Pct(v))
	}
	return b.String()
}
