package event

import (
	"strings"
	"testing"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Instr:       "instr",
		RdHit:       "rd-hit",
		RdMissClean: "rm-blk-cln",
		RdMissDirty: "rm-blk-drty",
		RdMissFirst: "rm-first-ref",
		WrHitClean:  "wh-blk-cln",
		WrHitShared: "wh-distrib",
		WrMissFirst: "wm-first-ref",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := Type(200).String(); !strings.Contains(got, "200") {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestTypeClassification(t *testing.T) {
	// Every type must be exactly one of instr / read / write.
	for ty := Type(0); ty < NumTypes; ty++ {
		n := 0
		if ty == Instr {
			n++
		}
		if ty.IsRead() {
			n++
		}
		if ty.IsWrite() {
			n++
		}
		if n != 1 {
			t.Errorf("%v classified into %d categories", ty, n)
		}
	}
}

func TestIsMiss(t *testing.T) {
	misses := []Type{RdMissFirst, RdMissMem, RdMissClean, RdMissDirty,
		WrMissFirst, WrMissMem, WrMissClean, WrMissDirty}
	hits := []Type{Instr, RdHit, WrHitOwn, WrHitClean, WrHitShared, WrHitLocal}
	for _, ty := range misses {
		if !ty.IsMiss() {
			t.Errorf("%v should be a miss", ty)
		}
	}
	for _, ty := range hits {
		if ty.IsMiss() {
			t.Errorf("%v should not be a miss", ty)
		}
	}
}

func TestIsFirstRef(t *testing.T) {
	for ty := Type(0); ty < NumTypes; ty++ {
		want := ty == RdMissFirst || ty == WrMissFirst
		if ty.IsFirstRef() != want {
			t.Errorf("%v.IsFirstRef() = %v", ty, ty.IsFirstRef())
		}
	}
}
