package event

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCountsAddAndPct(t *testing.T) {
	var c Counts
	c.Add(Instr)
	c.Add(Instr)
	c.Add(RdHit)
	c.Add(WrMissClean)
	if c.Total != 4 {
		t.Fatalf("Total = %d", c.Total)
	}
	if got := c.Pct(Instr); got != 50 {
		t.Errorf("Pct(Instr) = %v", got)
	}
	if got := c.Frac(RdHit); got != 0.25 {
		t.Errorf("Frac(RdHit) = %v", got)
	}
	if got := c.PctSum(RdHit, WrMissClean); got != 50 {
		t.Errorf("PctSum = %v", got)
	}
}

func TestCountsEmpty(t *testing.T) {
	var c Counts
	if c.Pct(Instr) != 0 || c.Reads() != 0 || c.DataMissRate() != 0 {
		t.Error("empty counts should report zeros")
	}
}

func TestCountsPartition(t *testing.T) {
	// instr + reads + writes must cover every reference.
	var c Counts
	for ty := Type(0); ty < NumTypes; ty++ {
		c.Add(ty)
	}
	total := c.Pct(Instr) + c.Reads() + c.Writes()
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("partition covers %v%%, want 100%%", total)
	}
}

func TestCountsAddCounts(t *testing.T) {
	var a, b Counts
	a.Add(RdHit)
	a.Add(Instr)
	b.Add(RdHit)
	a.AddCounts(b)
	if a.Total != 3 || a.N[RdHit] != 2 {
		t.Errorf("merge wrong: %+v", a)
	}
}

func TestAggregateRates(t *testing.T) {
	var c Counts
	c.Add(RdMissClean)
	c.Add(RdMissFirst)
	c.Add(WrMissDirty)
	c.Add(RdHit)
	if got := c.ReadMisses(); got != 25 {
		t.Errorf("ReadMisses = %v, want 25 (first-refs excluded)", got)
	}
	if got := c.WriteMisses(); got != 25 {
		t.Errorf("WriteMisses = %v", got)
	}
	if got := c.DataMissRate(); got != 75 {
		t.Errorf("DataMissRate = %v, want 75 (first-refs included)", got)
	}
}

func TestCountsString(t *testing.T) {
	var c Counts
	c.Add(RdHit)
	out := c.String()
	if !strings.Contains(out, "rd-hit") || !strings.Contains(out, "total") {
		t.Errorf("String() = %q", out)
	}
	if strings.Contains(out, "wh-distrib") {
		t.Error("zero-count events should be omitted")
	}
}

func TestHistObserveAndQueries(t *testing.T) {
	var h Hist
	for _, v := range []int{0, 1, 1, 1, 3} {
		h.Observe(v)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.Pct(1); got != 60 {
		t.Errorf("Pct(1) = %v", got)
	}
	if got := h.PctAtMost(1); got != 80 {
		t.Errorf("PctAtMost(1) = %v", got)
	}
	if got := h.PctAtMost(99); got != 100 {
		t.Errorf("PctAtMost(99) = %v", got)
	}
	if got := h.Mean(); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("Mean = %v, want 1.2", got)
	}
	if h.Pct(7) != 0 || h.Pct(-1) != 0 {
		t.Error("out-of-range Pct should be 0")
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Total() != 0 || h.Mean() != 0 || h.PctAtMost(3) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Observe(-1) should panic")
		}
	}()
	var h Hist
	h.Observe(-1)
}

func TestHistAddHist(t *testing.T) {
	var a, b Hist
	a.Observe(0)
	b.Observe(2)
	b.Observe(2)
	a.AddHist(b)
	if a.Total() != 3 || a.Buckets[2] != 2 {
		t.Errorf("AddHist wrong: %+v", a)
	}
}

func TestHistString(t *testing.T) {
	var h Hist
	h.Observe(1)
	h.Observe(0)
	out := h.String()
	if !strings.Contains(out, "0:") || !strings.Contains(out, "1:") {
		t.Errorf("String() = %q", out)
	}
}

func TestHistProperties(t *testing.T) {
	f := func(vals []uint8) bool {
		var h Hist
		sum := 0
		for _, v := range vals {
			h.Observe(int(v))
			sum += int(v)
		}
		if h.Total() != int64(len(vals)) {
			return false
		}
		if len(vals) > 0 {
			want := float64(sum) / float64(len(vals))
			if math.Abs(h.Mean()-want) > 1e-9 {
				return false
			}
		}
		// PctAtMost is monotone and reaches 100.
		prev := 0.0
		for v := 0; v <= 256; v++ {
			p := h.PctAtMost(v)
			if p+1e-9 < prev {
				return false
			}
			prev = p
		}
		return len(vals) == 0 || math.Abs(prev-100) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
