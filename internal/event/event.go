// Package event defines the per-reference event taxonomy of the paper's
// Table 4, counters over that taxonomy, and the invalidation-count
// histogram of Figure 1.
//
// A coherence protocol is split — exactly as Section 5 of the paper
// describes — into (1) a state-change specification, which fixes how often
// each event occurs, and (2) an implementation, which fixes what each event
// costs on the bus. Packages internal/core (protocol engines) produce
// values of this package; internal/bus consumes them with a cost model.
package event

import "fmt"

// Type classifies one memory reference under a given protocol's
// state-change specification. The names follow Table 4 of the paper.
type Type uint8

const (
	// Instr is an instruction fetch. Instructions cause no coherence
	// traffic and their misses are not costed (paper, Section 4).
	Instr Type = iota
	// RdHit is a data read that hits in the local cache.
	RdHit
	// RdMissFirst is a read miss that is the first reference to the
	// block by any processor in the trace (rm-first-ref). It would occur
	// in a uniprocessor infinite cache too, so it is excluded from the
	// multiprocessing overhead.
	RdMissFirst
	// RdMissMem is a read miss on a block no other cache holds; memory
	// supplies the data.
	RdMissMem
	// RdMissClean is a read miss on a block clean in at least one other
	// cache (rm-blk-cln).
	RdMissClean
	// RdMissDirty is a read miss on a block dirty in another cache
	// (rm-blk-drty).
	RdMissDirty
	// WrHitOwn is a write hit on a block this cache already holds with
	// write permission — dirty, or exclusive-clean where the protocol
	// tracks that (wh-blk-drty). It costs nothing.
	WrHitOwn
	// WrHitClean is a write hit on a block the writer holds clean
	// (wh-blk-cln). In the directory schemes the directory must be
	// queried and any other copies invalidated.
	WrHitClean
	// WrHitShared is a Dragon write hit on a block other caches also
	// hold (wh-distrib); the written word is broadcast as an update.
	WrHitShared
	// WrHitLocal is a Dragon write hit on a block no other cache holds
	// (wh-local); it stays local.
	WrHitLocal
	// WrMissFirst is a write miss that is the first reference to the
	// block in the trace (wm-first-ref); excluded from overhead.
	WrMissFirst
	// WrMissMem is a write miss on a block no other cache holds.
	WrMissMem
	// WrMissClean is a write miss on a block clean in other caches
	// (wm-blk-cln); the copies must be invalidated (or updated).
	WrMissClean
	// WrMissDirty is a write miss on a block dirty in another cache
	// (wm-blk-drty); the owner must flush (or supply) it.
	WrMissDirty

	// NumTypes is the number of event types.
	NumTypes
)

var typeNames = [NumTypes]string{
	Instr:       "instr",
	RdHit:       "rd-hit",
	RdMissFirst: "rm-first-ref",
	RdMissMem:   "rm-blk-mem",
	RdMissClean: "rm-blk-cln",
	RdMissDirty: "rm-blk-drty",
	WrHitOwn:    "wh-blk-drty",
	WrHitClean:  "wh-blk-cln",
	WrHitShared: "wh-distrib",
	WrHitLocal:  "wh-local",
	WrMissFirst: "wm-first-ref",
	WrMissMem:   "wm-blk-mem",
	WrMissClean: "wm-blk-cln",
	WrMissDirty: "wm-blk-drty",
}

// String returns the paper's mnemonic for the event type.
func (t Type) String() string {
	if t < NumTypes {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// IsRead reports whether the event classifies a data read.
func (t Type) IsRead() bool {
	switch t {
	case RdHit, RdMissFirst, RdMissMem, RdMissClean, RdMissDirty:
		return true
	}
	return false
}

// IsWrite reports whether the event classifies a data write.
func (t Type) IsWrite() bool {
	switch t {
	case WrHitOwn, WrHitClean, WrHitShared, WrHitLocal,
		WrMissFirst, WrMissMem, WrMissClean, WrMissDirty:
		return true
	}
	return false
}

// IsMiss reports whether the event is a cache miss (first-reference misses
// included).
func (t Type) IsMiss() bool {
	switch t {
	case RdMissFirst, RdMissMem, RdMissClean, RdMissDirty,
		WrMissFirst, WrMissMem, WrMissClean, WrMissDirty:
		return true
	}
	return false
}

// IsFirstRef reports whether the event is a first-reference miss, which the
// paper excludes from the multiprocessing overhead.
func (t Type) IsFirstRef() bool { return t == RdMissFirst || t == WrMissFirst }

// Result is the full outcome of applying one reference to a protocol
// engine: the Table 4 classification plus the concrete coherence actions
// taken, which the cost models and Figure 1 need.
type Result struct {
	// Type is the Table 4 classification.
	Type Type
	// Holders is the number of *other* caches that held the block at the
	// time of the reference (before any invalidation). For writes to
	// previously-clean blocks this is the Figure 1 quantity.
	Holders int
	// Inval is the number of directed (sequential) invalidation messages
	// sent. Zero when a broadcast was used instead.
	Inval int
	// Broadcast reports that an invalidation (or update) was performed
	// by bus broadcast rather than directed messages.
	Broadcast bool
	// WriteBack reports that a dirty block was flushed to memory.
	WriteBack bool
	// CacheSupply reports that the data came from another cache rather
	// than memory.
	CacheSupply bool
	// DirCheck reports a directory access that cannot be overlapped with
	// a memory access (Dir0B's wh-blk-cln query, for example).
	DirCheck bool
	// Update reports a Dragon-style word update or a WTI write-through
	// placed on the bus.
	Update bool
	// ForcedInval is the number of copies invalidated only to make room
	// in a limited-pointer (DiriNB) directory entry, not to satisfy the
	// multiple-readers/single-writer invariant.
	ForcedInval int
	// Control counts auxiliary one-cycle control messages that are
	// neither invalidations nor data: the Yen–Fu scheme's single-bit
	// clears and finite-cache replacement notifications, for example.
	Control int
	// EvictWB reports that a *replacement* (not a coherence action)
	// flushed a dirty victim to memory — finite-cache engines only.
	EvictWB bool
}

// CoherenceSignal reports whether the result is one of the
// coherence-relevant outcomes the paper's distributional evidence is
// built from: a write to a previously-clean shared block (the Figure 1
// population), a broadcast invalidation, or a forced invalidation from
// limited-pointer directory overflow. Protocol telemetry samples exactly
// this subset; everything else is hit/miss bookkeeping the flat counters
// already cover.
func (r Result) CoherenceSignal() bool {
	switch r.Type {
	case WrHitClean, WrMissClean:
		return true
	}
	return (r.Broadcast && !r.Update) || r.ForcedInval > 0
}

// Quiet reports whether the result records no coherence action at all: no
// miss fill, no invalidation or update, no write-back, no directory query,
// no control traffic. Quiet results — cache hits and instruction fetches,
// the overwhelming majority of any trace — cost nothing under every cost
// model, so pricing hot loops branch on this before touching category
// arithmetic.
func (r Result) Quiet() bool {
	return !r.Broadcast && !r.WriteBack && !r.DirCheck && !r.Update &&
		!r.EvictWB && r.Inval == 0 && r.ForcedInval == 0 && r.Control == 0 &&
		!r.Type.IsMiss()
}
