package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/faults"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// shardBuild returns a fresh-core builder for SimulateSharded.
func shardBuild(scheme string, cpus int) func() (core.Protocol, error) {
	return func() (core.Protocol, error) { return core.NewByName(scheme, cpus) }
}

// TestShardedEquivalence is the tentpole's oracle extended to the sharded
// path: for every paper scheme over the three standard workloads, at
// every shard count including the degenerate 1, SimulateSharded produces
// a Result bit-identical to the sequential Simulate — counts, histograms,
// bus and network tallies, every field.
func TestShardedEquivalence(t *testing.T) {
	schemes := []string{"Dir1NB", "WTI", "Dir0B", "Dragon", "DirNNB"}
	for _, cfg := range workload.StandardConfigs(4, 30_000) {
		tr, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range schemes {
			p, err := core.NewByName(scheme, tr.CPUs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Simulate(p, tr.Iterator(), batchTestOpts())
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 3, 8, 16} {
				opts := batchTestOpts()
				opts.Shards = shards
				got, err := SimulateSharded(shardBuild(scheme, tr.CPUs), tr.Iterator(), opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s over %s at %d shards: sharded result differs from sequential",
						scheme, cfg.Name, shards)
				}
			}
		}
	}
}

// TestShardedViaSimulateTrace covers the production dispatch: Options.
// Shards > 1 routes SimulateTrace through the sharded path and the
// result (trace name included) matches the sequential call.
func TestShardedViaSimulateTrace(t *testing.T) {
	tr, err := workload.Generate(workload.THORConfig(4, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := SimulateTrace("Dir0B", tr, batchTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := batchTestOpts()
	opts.Shards = 4
	got, err := SimulateTrace("Dir0B", tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("sharded SimulateTrace differs from sequential")
	}
	if got.Trace != tr.Name {
		t.Errorf("sharded result trace = %q, want %q", got.Trace, tr.Name)
	}
}

// TestShardedBatchSizeInvariance: awkward batch sizes exercise partial
// final buffers on every shard; the result must not move.
func TestShardedBatchSizeInvariance(t *testing.T) {
	tr, err := workload.Generate(workload.POPSConfig(4, 10_001))
	if err != nil {
		t.Fatal(err)
	}
	want, err := runReference("Dir1NB", tr)
	if err != nil {
		t.Fatal(err)
	}
	want.Trace = ""
	for _, batch := range []int{1, 7, 513, 4096} {
		opts := batchTestOpts()
		opts.Shards = 3
		opts.BatchRefs = batch
		got, err := SimulateSharded(shardBuild("Dir1NB", tr.CPUs), tr.Iterator(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batch size %d: sharded result differs from per-ref reference", batch)
		}
	}
}

// TestShardedChecked runs the sharded path with per-shard coherence
// checkers attached; checking must not change measurements.
func TestShardedChecked(t *testing.T) {
	tr, err := workload.Generate(workload.PEROConfig(4, 12_000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := runReference("DirNNB", tr)
	if err != nil {
		t.Fatal(err)
	}
	want.Trace = ""
	opts := batchTestOpts()
	opts.Shards = 4
	opts.Check = true
	opts.InvariantEvery = 777
	got, err := SimulateSharded(shardBuild("DirNNB", tr.CPUs), tr.Iterator(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("checked sharded result differs from reference")
	}
}

// TestShardedObserver: per-shard stats must partition the trace — shard
// refs sum to the total, match the ShardOf partition exactly, and the
// splitter reports Shard == -1 with the full count.
func TestShardedObserver(t *testing.T) {
	const shards = 5
	tr, err := workload.Generate(workload.POPSConfig(4, 9_000))
	if err != nil {
		t.Fatal(err)
	}
	wantPerShard := make([]int64, shards)
	for _, r := range tr.Refs {
		wantPerShard[ShardOf(r.Block(), shards)]++
	}
	var stats []ShardStat
	var total int64
	opts := batchTestOpts()
	opts.Shards = shards
	opts.ShardObserver = func(st ShardStat) { stats = append(stats, st) }
	opts.Observer = func(refs int64, _ time.Duration) { total = refs }
	if _, err := SimulateSharded(shardBuild("Dragon", tr.CPUs), tr.Iterator(), opts); err != nil {
		t.Fatal(err)
	}
	if total != int64(len(tr.Refs)) {
		t.Errorf("observer total = %d, want %d", total, len(tr.Refs))
	}
	if len(stats) != shards+1 {
		t.Fatalf("got %d shard stats, want %d", len(stats), shards+1)
	}
	var sum int64
	splitters := 0
	for _, st := range stats {
		if st.Shards != shards {
			t.Errorf("stat reports %d shards, want %d", st.Shards, shards)
		}
		if st.Shard == -1 {
			splitters++
			if st.Refs != int64(len(tr.Refs)) {
				t.Errorf("splitter routed %d refs, want %d", st.Refs, len(tr.Refs))
			}
			continue
		}
		if st.Refs != wantPerShard[st.Shard] {
			t.Errorf("shard %d simulated %d refs, want %d", st.Shard, st.Refs, wantPerShard[st.Shard])
		}
		sum += st.Refs
	}
	if splitters != 1 {
		t.Errorf("got %d splitter stats, want 1", splitters)
	}
	if sum != int64(len(tr.Refs)) {
		t.Errorf("shard refs sum to %d, want %d", sum, len(tr.Refs))
	}
}

// TestShardedTelemetry: the shared, locked telemetry must see exactly the
// sequential run's coherence-event population (order is scheduling-
// dependent and deliberately unasserted).
func TestShardedTelemetry(t *testing.T) {
	tr, err := workload.Generate(workload.THORConfig(4, 15_000))
	if err != nil {
		t.Fatal(err)
	}
	count := func(shards int) int64 {
		var n int64
		opts := batchTestOpts()
		opts.Telemetry = telemetryFunc(func(event.Result) { n++ })
		var res *Result
		if shards > 1 {
			opts.Shards = shards
			res, err = SimulateSharded(shardBuild("Dir0B", tr.CPUs), tr.Iterator(), opts)
		} else {
			var p core.Protocol
			if p, err = core.NewByName("Dir0B", tr.CPUs); err != nil {
				t.Fatal(err)
			}
			res, err = Simulate(p, tr.Iterator(), opts)
		}
		if err != nil || res == nil {
			t.Fatal(err)
		}
		return n
	}
	if seq, shd := count(1), count(6); seq != shd || seq == 0 {
		t.Errorf("telemetry saw %d events sharded, %d sequential", shd, seq)
	}
}

type telemetryFunc func(event.Result)

func (f telemetryFunc) Coherence(out event.Result) { f(out) }

// TestShardedFaultPanic injects a panic into one shard via the ShardFault
// hook: the failure must surface as a structured *ShardError naming that
// shard and carrying the stack, every other shard must drain cleanly, and
// no goroutines may leak.
func TestShardedFaultPanic(t *testing.T) {
	tr, err := workload.Generate(workload.POPSConfig(4, 20_000))
	if err != nil {
		t.Fatal(err)
	}
	snap := faults.Goroutines()
	opts := batchTestOpts()
	opts.Shards = 4
	opts.BatchRefs = 64 // many batches per shard, so back-pressure engages
	opts.ShardFault = func(shard int) error {
		if shard == 2 {
			panic(fmt.Errorf("injected shard fault"))
		}
		return nil
	}
	res, err := SimulateSharded(shardBuild("Dir1NB", tr.CPUs), tr.Iterator(), opts)
	if res != nil {
		t.Error("faulted run returned a result")
	}
	var serr *ShardError
	if !errors.As(err, &serr) {
		t.Fatalf("error %v is not a *ShardError", err)
	}
	if serr.Shard != 2 || !serr.Panicked || serr.Stack == "" {
		t.Errorf("ShardError = shard %d panicked %v stack %d bytes; want shard 2, panic, stack",
			serr.Shard, serr.Panicked, len(serr.Stack))
	}
	if leak := snap.Leaked(5 * time.Second); leak != nil {
		t.Error(leak)
	}
}

// TestShardedFaultError: an error (not panic) from the hook fails the
// shard without a panic flag, and the lowest failing shard wins so the
// reported error is deterministic.
func TestShardedFaultError(t *testing.T) {
	tr, err := workload.Generate(workload.POPSConfig(4, 5_000))
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	opts := batchTestOpts()
	opts.Shards = 6
	opts.ShardFault = func(shard int) error {
		calls.Add(1)
		if shard >= 3 {
			return fmt.Errorf("shard %d refused", shard)
		}
		return nil
	}
	_, err = SimulateSharded(shardBuild("WTI", tr.CPUs), tr.Iterator(), opts)
	var serr *ShardError
	if !errors.As(err, &serr) {
		t.Fatalf("error %v is not a *ShardError", err)
	}
	if serr.Shard != 3 || serr.Panicked {
		t.Errorf("got shard %d (panicked=%v), want deterministic lowest failing shard 3",
			serr.Shard, serr.Panicked)
	}
	if calls.Load() != 6 {
		t.Errorf("fault hook ran %d times, want once per shard", calls.Load())
	}
}

// TestShardOf pins the partition function: deterministic, in range, and
// reasonably balanced over a dense block population.
func TestShardOf(t *testing.T) {
	const shards = 8
	counts := make([]int, shards)
	for b := trace.Block(0); b < 1<<14; b++ {
		s := ShardOf(b, shards)
		if s != ShardOf(b, shards) {
			t.Fatal("ShardOf is not deterministic")
		}
		if s < 0 || s >= shards {
			t.Fatalf("ShardOf(%d, %d) = %d out of range", b, shards, s)
		}
		counts[s]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 || float64(max)/float64(min) > 1.5 {
		t.Errorf("unbalanced partition: per-shard counts %v", counts)
	}
}

// TestShardedAutoShards: Shards <= 0 resolves to GOMAXPROCS and still
// matches the sequential result.
func TestShardedAutoShards(t *testing.T) {
	tr, err := workload.Generate(workload.POPSConfig(4, 8_000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := runReference("Dir1NB", tr)
	if err != nil {
		t.Fatal(err)
	}
	want.Trace = ""
	opts := batchTestOpts()
	opts.Shards = 0
	got, err := SimulateSharded(shardBuild("Dir1NB", tr.CPUs), tr.Iterator(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("auto-sharded result differs from reference")
	}
}
