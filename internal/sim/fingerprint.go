package sim

import (
	"math"
	"sort"
)

// sumHash is FNV-1a folded over 64-bit words, matching trace.Checksum's
// construction.
type sumHash uint64

const (
	sumOffset = 14695981039346656037
	sumPrime  = 1099511628211
)

func (h *sumHash) word(v uint64) {
	*h ^= sumHash(v)
	*h *= sumPrime
}

func (h *sumHash) str(s string) {
	for i := 0; i < len(s); i++ {
		h.word(uint64(s[i]))
	}
	h.word(uint64(len(s)))
}

func (h *sumHash) hist(buckets []int64) {
	h.word(uint64(len(buckets)))
	for _, b := range buckets {
		h.word(uint64(b))
	}
}

// Fingerprint hashes every measured field of the result — event counts,
// histograms, traffic counters, and all bus and network tallies — into 64
// bits. Results are pure functions of the reference sequence, so a
// result's fingerprint is stable across executors and batch sizes; the
// execution engine records it when a result enters the cache and, in
// verification mode, revalidates it on every hit, so an entry corrupted
// after the fact (a stray write, a mutated aggregate) is rejected and
// recomputed instead of served. Map-valued fields are folded in sorted
// key order, so the fingerprint does not depend on map iteration.
func (r *Result) Fingerprint() uint64 {
	h := sumHash(sumOffset)
	h.str(r.Scheme)
	h.str(r.Trace)
	for _, n := range r.Counts.N {
		h.word(uint64(n))
	}
	h.word(uint64(r.Counts.Total))
	h.hist(r.InvalClean.Buckets)
	h.hist(r.HoldersAtInval.Buckets)
	h.word(uint64(r.Broadcasts))
	h.word(uint64(r.SeqInvals))
	h.word(uint64(r.ForcedInvals))
	h.word(uint64(r.WriteBacks))

	names := make([]string, 0, len(r.Tallies))
	for name := range r.Tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := r.Tallies[name]
		h.str(name)
		h.word(uint64(t.Refs))
		h.word(uint64(t.Transactions))
		for _, c := range t.Cycles {
			h.word(math.Float64bits(c))
		}
	}

	names = names[:0]
	for name := range r.NetTallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := r.NetTallies[name]
		h.str(name)
		h.word(uint64(t.CycleUnits))
		h.word(uint64(t.Messages))
		h.word(uint64(t.Floods))
		h.word(uint64(t.Refs))
	}
	return uint64(h)
}
