package sim

import (
	"math"
	"sort"
)

// sumHash is FNV-1a folded over 64-bit words, matching trace.Checksum's
// construction.
type sumHash uint64

const (
	sumOffset = 14695981039346656037
	sumPrime  = 1099511628211
)

func (h *sumHash) word(v uint64) {
	*h ^= sumHash(v)
	*h *= sumPrime
}

func (h *sumHash) str(s string) {
	for i := 0; i < len(s); i++ {
		h.word(uint64(s[i]))
	}
	h.word(uint64(len(s)))
}

func (h *sumHash) hist(buckets []int64) {
	h.word(uint64(len(buckets)))
	for _, b := range buckets {
		h.word(uint64(b))
	}
}

func (h *sumHash) flag(b bool) {
	if b {
		h.word(1)
	} else {
		h.word(0)
	}
}

// Fingerprint hashes every field of the result — event counts,
// histograms, traffic counters, and all bus and network tallies,
// including the cost-model and topology descriptors each tally carries —
// into 64 bits. Results are pure functions of the reference sequence, so
// a result's fingerprint is stable across executors and batch sizes; the
// execution engine records it when a result enters the cache and, in
// verification mode, revalidates it on every hit, and the distributed
// coordinator revalidates it on every result push, so bytes corrupted
// after the fact (a stray write, a mutated aggregate, a flipped bit in
// flight) are rejected and recomputed instead of served. The descriptor
// fields are covered deliberately: they are not measurements, but they
// ride in the same serialized payload, and a fingerprint that skips them
// would bless a result whose tariffs were silently rewritten. Map-valued
// fields are folded in sorted key order, so the fingerprint does not
// depend on map iteration.
func (r *Result) Fingerprint() uint64 {
	h := sumHash(sumOffset)
	h.str(r.Scheme)
	h.str(r.Trace)
	for _, n := range r.Counts.N {
		h.word(uint64(n))
	}
	h.word(uint64(r.Counts.Total))
	h.hist(r.InvalClean.Buckets)
	h.hist(r.HoldersAtInval.Buckets)
	h.word(uint64(r.Broadcasts))
	h.word(uint64(r.SeqInvals))
	h.word(uint64(r.ForcedInvals))
	h.word(uint64(r.WriteBacks))

	names := make([]string, 0, len(r.Tallies))
	for name := range r.Tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := r.Tallies[name]
		h.str(name)
		m := t.Model
		h.str(m.Name)
		for _, c := range [...]float64{m.MemAccess, m.CacheAccess, m.WriteBackFill,
			m.WriteWord, m.DirCheck, m.Inval, m.BroadcastInval, m.Q} {
			h.word(math.Float64bits(c))
		}
		h.flag(m.DirCheckFree)
		h.word(uint64(t.Refs))
		h.word(uint64(t.Transactions))
		for _, c := range t.Cycles {
			h.word(math.Float64bits(c))
		}
	}

	names = names[:0]
	for name := range r.NetTallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := r.NetTallies[name]
		h.str(name)
		topo := t.Topo
		h.str(topo.Name)
		h.word(uint64(topo.Nodes))
		h.word(math.Float64bits(topo.AvgDist))
		h.word(uint64(topo.DistSum))
		h.word(uint64(topo.DistPairs))
		h.word(uint64(topo.Diameter))
		h.flag(topo.Broadcast)
		h.word(uint64(topo.FloodLinks))
		h.word(uint64(t.CycleUnits))
		h.word(uint64(t.Messages))
		h.word(uint64(t.Floods))
		h.word(uint64(t.Refs))
	}
	return uint64(h)
}
