// Benchmarks and the machine-readable report for the simulation hot
// path: the batched Simulate loop against the seed's per-reference loop
// (referenceSimulate in batch_test.go, the bit-identity oracle).
//
//	DIRSIM_BENCH_JSON=1 go test -run TestWriteHotpathBenchJSON ./internal/sim
//
// writes BENCH_hotpath.json at the repo root — one record per loop
// variant with throughput and the speedup over the per-reference
// baseline. Gated like the engine benchmark because it runs real
// measurements, not assertions.
package sim

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"dirsim/internal/core"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// hotpathWorkloads materializes the three standard traces once per
// process; both loop variants replay the identical references.
func hotpathWorkloads(b testing.TB, refs int) []*trace.Trace {
	cfgs := workload.StandardConfigs(4, refs)
	traces := make([]*trace.Trace, len(cfgs))
	for i, cfg := range cfgs {
		t, err := workload.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		traces[i] = t
	}
	return traces
}

// runLoop simulates one scheme over every trace with the given loop.
func runLoop(b testing.TB, scheme string, traces []*trace.Trace,
	loop func(core.Protocol, trace.Source, Options) (*Result, error), opts Options) {
	for _, t := range traces {
		p, err := core.NewByName(scheme, t.CPUs)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := loop(p, t.Iterator(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHotpathPerRef(b *testing.B) {
	traces := hotpathWorkloads(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLoop(b, "Dir1NB", traces, referenceSimulate, Options{})
	}
}

func BenchmarkHotpathBatched(b *testing.B) {
	traces := hotpathWorkloads(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLoop(b, "Dir1NB", traces, Simulate, Options{})
	}
}

// hotpathBenchRecord is one measured loop variant.
type hotpathBenchRecord struct {
	Path         string  `json:"path"`
	Scheme       string  `json:"scheme"`
	BatchRefs    int     `json:"batch_refs,omitempty"`
	Traces       int     `json:"traces"`
	RefsEach     int     `json:"refs_per_trace"`
	Iters        int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	RefsPerS     float64 `json:"refs_per_second"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Speedup      float64 `json:"speedup_vs_per_ref"`
	BitIdentical bool    `json:"bit_identical_to_per_ref"`
}

type hotpathBenchReport struct {
	Date       string               `json:"date"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	GoVersion  string               `json:"go_version"`
	Note       string               `json:"note"`
	Results    []hotpathBenchRecord `json:"results"`
}

// TestWriteHotpathBenchJSON measures the per-reference baseline against
// the batched hot path at workers=1 (one simulation goroutine, no
// engine) and writes BENCH_hotpath.json at the repo root. Skipped unless
// DIRSIM_BENCH_JSON is set.
func TestWriteHotpathBenchJSON(t *testing.T) {
	if os.Getenv("DIRSIM_BENCH_JSON") == "" {
		t.Skip("set DIRSIM_BENCH_JSON=1 to run the hot-path benchmark and write BENCH_hotpath.json")
	}

	const refs = 200_000
	const scheme = "Dir1NB"
	traces := hotpathWorkloads(t, refs)
	totalRefs := 0
	for _, tr := range traces {
		totalRefs += tr.Len()
	}

	variants := []struct {
		path  string
		batch int
		loop  func(core.Protocol, trace.Source, Options) (*Result, error)
	}{
		{"per-ref", 0, referenceSimulate},
		{"batched", DefaultBatchRefs, Simulate},
	}

	report := hotpathBenchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "single-goroutine replay of the three standard traces under " + scheme +
			"; per-ref is the seed's loop (Next per reference, map-iterated tallies), " +
			"batched is sim.Simulate's NextBatch loop with pre-resolved tally slices. " +
			"Identical Results are asserted by TestBatchedEquivalence, not here",
	}
	var baseline float64
	for _, v := range variants {
		opts := Options{BatchRefs: v.batch}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runLoop(b, scheme, traces, v.loop, opts)
			}
		})
		rec := hotpathBenchRecord{
			Path:         v.path,
			Scheme:       scheme,
			BatchRefs:    v.batch,
			Traces:       len(traces),
			RefsEach:     refs,
			Iters:        r.N,
			NsPerOp:      r.NsPerOp(),
			RefsPerS:     float64(totalRefs) / (float64(r.NsPerOp()) / 1e9),
			AllocsPerOp:  r.AllocsPerOp(),
			BitIdentical: true,
		}
		if v.path == "per-ref" {
			baseline = float64(r.NsPerOp())
			rec.Speedup = 1
		} else if baseline > 0 {
			rec.Speedup = baseline / float64(r.NsPerOp())
		}
		report.Results = append(report.Results, rec)
		t.Logf("%s: %dns/op, %.0f refs/s, %d allocs/op, speedup %.2fx",
			v.path, r.NsPerOp(), rec.RefsPerS, r.AllocsPerOp(), rec.Speedup)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	// The test runs with the package directory as cwd; the report lives
	// at the repo root next to BENCH_engine.json.
	if err := os.WriteFile("../../BENCH_hotpath.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_hotpath.json")
}
