package sim

import (
	"testing"

	"dirsim/internal/network"
	"dirsim/internal/workload"
)

// TestFingerprintStableAndSensitive runs a real simulation twice: the two
// results must share a fingerprint, and mutating any measured field must
// change it.
func TestFingerprintStableAndSensitive(t *testing.T) {
	tr := workload.POPS(4, 20_000)
	opts := Options{Topologies: []network.Topology{network.Mesh(2, 2)}}
	a, err := SimulateTrace("Dir0B", tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace("Dir0B", tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	base := a.Fingerprint()
	if b.Fingerprint() != base {
		t.Fatal("identical runs produced different fingerprints")
	}

	mutations := []struct {
		name string
		do   func(r *Result)
	}{
		{"scheme", func(r *Result) { r.Scheme += "x" }},
		{"trace", func(r *Result) { r.Trace += "x" }},
		{"counts", func(r *Result) { r.Counts.N[0]++ }},
		{"total", func(r *Result) { r.Counts.Total++ }},
		{"hist", func(r *Result) { r.InvalClean.Observe(1) }},
		{"broadcasts", func(r *Result) { r.Broadcasts++ }},
		{"seqinvals", func(r *Result) { r.SeqInvals++ }},
		{"writebacks", func(r *Result) { r.WriteBacks++ }},
		{"tally refs", func(r *Result) {
			for _, tl := range r.Tallies {
				tl.Refs++
				break
			}
		}},
		{"tally cycles", func(r *Result) {
			for _, tl := range r.Tallies {
				tl.Cycles[0] += 1
				break
			}
		}},
		{"net cycles", func(r *Result) {
			for _, tl := range r.NetTallies {
				tl.CycleUnits += 1
			}
		}},
		{"model tariff", func(r *Result) {
			for _, tl := range r.Tallies {
				tl.Model.Inval += 1
				break
			}
		}},
		{"model flag", func(r *Result) {
			for _, tl := range r.Tallies {
				tl.Model.DirCheckFree = !tl.Model.DirCheckFree
				break
			}
		}},
		{"topology", func(r *Result) {
			for _, tl := range r.NetTallies {
				tl.Topo.DistSum++
			}
		}},
	}
	for _, m := range mutations {
		mut, err := SimulateTrace("Dir0B", tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		m.do(mut)
		if mut.Fingerprint() == base {
			t.Errorf("fingerprint blind to %s mutation", m.name)
		}
	}
}

// TestFingerprintDistinguishesSchemes checks that two different runs do
// not collide on the obvious axis.
func TestFingerprintDistinguishesSchemes(t *testing.T) {
	tr := workload.POPS(4, 15_000)
	a, err := SimulateTrace("Dir0B", tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace("Dragon", tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different schemes share a fingerprint")
	}
}
