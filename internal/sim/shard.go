package sim

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// shardWindow is the depth of each shard's work queue in batches. It
// bounds how far the splitter can run ahead of a slow shard: with the
// shared free list sized to shards*(shardWindow+1) buffers, a full queue
// stalls the splitter instead of growing memory, and the whole pipeline
// holds a fixed set of reference buffers recycled for the life of the run.
const shardWindow = 8

// ShardOf maps a block to its shard in [0, shards). The hash is a fixed
// multiplicative mix (no per-run seed), so the partition is deterministic
// across runs and processes: journal shard tags are comparable between
// runs, and a fault injected into shard k replays against the same block
// population. Every reference to a block lands on the same shard, which is
// the whole trick — the paper's directory state is per-block independent,
// so per-shard protocol cores never share state.
func ShardOf(b trace.Block, shards int) int {
	x := uint64(b) * 0x9E3779B97F4A7C15
	x ^= x >> 32
	return int(x % uint64(shards))
}

// ShardStat is one ShardObserver notification: the work one shard
// performed, or — with Shard == -1 — the splitter's totals.
type ShardStat struct {
	// Shard is the worker's index in [0, Shards), or -1 for the splitter.
	Shard int
	// Shards is the worker count the run used (after resolving
	// Options.Shards == 0 to GOMAXPROCS).
	Shards int
	// Refs is the number of references this shard simulated (for the
	// splitter: the total routed).
	Refs int64
	// Elapsed is the shard's wall time from first batch wait to drain.
	Elapsed time.Duration
}

// ShardError reports the failure of one shard worker. It is the structured
// error SimulateSharded returns (lowest failing shard wins, so the error is
// deterministic when several shards fail); the engine wraps it into its
// JobError like any other simulation failure, preserving the shard index
// and panic stack for the journal.
type ShardError struct {
	// Shard is the failing worker's index.
	Shard int
	// Panicked reports that the shard died by panic rather than by an
	// error return; Stack then holds the recovered goroutine stack.
	Panicked bool
	Stack    string
	// Err is the underlying failure (the recovered panic value when it
	// was an error, such as an injected *faults.Panic).
	Err error
}

func (e *ShardError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("sim: shard %d panicked: %v", e.Shard, e.Err)
	}
	return fmt.Sprintf("sim: shard %d: %v", e.Shard, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// lockedTelemetry serializes a Telemetry shared by shard workers. The
// mutex is per-coherence-event, not per-reference — coherence signals are
// a small fraction of any trace, so contention stays low.
type lockedTelemetry struct {
	mu  sync.Mutex
	tel Telemetry
}

func (l *lockedTelemetry) Coherence(out event.Result) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tel.Coherence(out)
}

// SimulateSharded runs one trace through shards concurrent protocol cores
// and merges their tallies into a single Result, bit-identical to
// Simulate over the same stream at every shard count (the shard
// equivalence suite asserts exactly this).
//
// build constructs one protocol core per shard; cores must be fresh (no
// shared state). References are partitioned by block (ShardOf), so each
// core sees the full time-ordered subsequence for its blocks and no
// per-block state ever crosses goroutines. A single splitter goroutine —
// the caller's — pulls batches from src, routes references into per-shard
// buffers, and hands full buffers to the shard's bounded work queue;
// buffers recycle through one shared free list, so the steady-state loop
// allocates nothing and a slow shard back-pressures the splitter instead
// of growing memory.
//
// Merging is deterministic: per-shard results combine in ascending shard
// index via Merge. Counters and histograms are integer sums over disjoint
// reference subsets, and bus-cycle breakdowns sum cost-table entries that
// are integer-valued floats (exact in float64 far beyond any trace
// length), so addition order cannot change a single bit.
//
// opts.Shards <= 0 resolves to runtime.GOMAXPROCS(0). Check mode attaches
// one checker per core and keeps the per-shard invariant cadence. On a
// shard failure the remaining shards drain cleanly (no goroutine leaks)
// and the lowest failing shard's *ShardError is returned.
func SimulateSharded(build func() (core.Protocol, error), src trace.Source, opts Options) (*Result, error) {
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	batch := opts.BatchRefs
	if batch <= 0 {
		batch = DefaultBatchRefs
	}

	// Build every core up front so constructor errors surface before any
	// goroutine starts.
	protos := make([]core.Protocol, shards)
	checkers := make([]*core.Checker, shards)
	var scheme string
	for s := range protos {
		p, err := build()
		if err != nil {
			return nil, err
		}
		if s == 0 {
			scheme = p.Name()
			if src.CPUCount() > p.CPUs() {
				return nil, fmt.Errorf("sim: trace has %d CPUs but %s engine simulates %d",
					src.CPUCount(), p.Name(), p.CPUs())
			}
		} else if p.Name() != scheme {
			return nil, fmt.Errorf("sim: shard cores disagree on scheme: %s vs %s",
				p.Name(), scheme)
		}
		if opts.Check {
			checkers[s] = core.NewChecker()
			if !core.Attach(p, checkers[s]) {
				return nil, fmt.Errorf("sim: %s does not support coherence checking", p.Name())
			}
		}
		protos[s] = p
	}

	tel := opts.Telemetry
	if tel != nil {
		tel = &lockedTelemetry{tel: opts.Telemetry}
	}
	var obsMu sync.Mutex
	notify := func(st ShardStat) {
		if opts.ShardObserver == nil {
			return
		}
		obsMu.Lock()
		defer obsMu.Unlock()
		opts.ShardObserver(st)
	}

	var start time.Time
	if opts.Observer != nil || opts.ShardObserver != nil {
		start = time.Now()
	}

	// Per-shard bounded work queues plus one shared free list holding
	// every reference buffer the pipeline will ever use.
	work := make([]chan []trace.Ref, shards)
	for s := range work {
		work[s] = make(chan []trace.Ref, shardWindow)
	}
	free := make(chan []trace.Ref, shards*(shardWindow+1))
	for i := 0; i < cap(free); i++ {
		free <- make([]trace.Ref, 0, batch)
	}

	results := make([]*Result, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	wg.Add(shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			defer wg.Done()
			var ws time.Time
			if opts.ShardObserver != nil {
				ws = time.Now()
			}
			res, n, err := runShard(s, protos[s], checkers[s], work[s], free, batch, opts, tel)
			results[s], errs[s] = res, err
			// A failed worker stops consuming early; drain what the
			// splitter still sends so it never blocks on a full queue or
			// an exhausted free list.
			for buf := range work[s] {
				free <- buf[:0]
			}
			notify(ShardStat{Shard: s, Shards: shards, Refs: n, Elapsed: time.Since(ws)})
		}(s)
	}

	// The splitter: route references by block hash into per-shard buffers.
	bsrc := trace.Batched(src)
	in := make([]trace.Ref, batch)
	cur := make([][]trace.Ref, shards)
	for s := range cur {
		cur[s] = <-free
	}
	var total int64
	for {
		k := bsrc.NextBatch(in)
		if k == 0 {
			break
		}
		total += int64(k)
		for _, r := range in[:k] {
			s := ShardOf(r.Block(), shards)
			buf := append(cur[s], r)
			if len(buf) == batch {
				work[s] <- buf
				cur[s] = <-free
			} else {
				cur[s] = buf
			}
		}
	}
	for s := range work {
		if len(cur[s]) > 0 {
			work[s] <- cur[s]
		} else {
			free <- cur[s]
		}
		close(work[s])
	}
	notify(ShardStat{Shard: -1, Shards: shards, Refs: total, Elapsed: time.Since(start)})
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	merged, err := Merge(results...)
	if err != nil {
		return nil, err
	}
	// Shard results carry no trace names; Merge's name-joining would
	// produce "+" separators between empty strings.
	merged.Trace = ""
	if opts.Observer != nil {
		opts.Observer(total, time.Since(start))
	}
	return merged, nil
}

// runShard is one worker: it owns one protocol core and one Result, and
// consumes batches until the splitter closes the queue. Any panic —
// protocol bug or injected fault — is recovered into a *ShardError so the
// other shards finish their drain undisturbed.
func runShard(shard int, p core.Protocol, checker *core.Checker, work <-chan []trace.Ref,
	free chan<- []trace.Ref, batch int, opts Options, tel Telemetry) (res *Result, n int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			rerr, ok := r.(error)
			if !ok {
				rerr = fmt.Errorf("panic: %v", r)
			}
			res = nil
			err = &ShardError{Shard: shard, Panicked: true, Stack: string(debug.Stack()), Err: rerr}
		}
	}()
	if opts.ShardFault != nil {
		if ferr := opts.ShardFault(shard); ferr != nil {
			return nil, 0, &ShardError{Shard: shard, Err: ferr}
		}
	}
	res, busTallies, netTallies := newResult(p.Name(), opts)
	every := int64(opts.InvariantEvery)
	if every <= 0 {
		every = 8192
	}
	outs := make([]event.Result, 0, batch)
	for buf := range work {
		if opts.Check {
			// Per-reference like the sequential checked path, so a
			// violation is pinned to this shard's exact reference count.
			for _, r := range buf {
				res.record(p.Access(r), busTallies, netTallies, tel)
				n++
				if n%every == 0 {
					if cerr := p.CheckInvariants(); cerr != nil {
						free <- buf[:0]
						return nil, n, &ShardError{Shard: shard,
							Err: fmt.Errorf("after %d refs: %w", n, cerr)}
					}
				}
			}
		} else {
			outs = core.AccessBatch(p, buf, outs[:0])
			for i := range outs {
				res.record(outs[i], busTallies, netTallies, tel)
			}
			n += int64(len(buf))
		}
		free <- buf[:0]
	}
	if opts.Check {
		if cerr := p.CheckInvariants(); cerr != nil {
			return nil, n, &ShardError{Shard: shard, Err: cerr}
		}
		if cerr := checker.Err(); cerr != nil {
			return nil, n, &ShardError{Shard: shard, Err: cerr}
		}
	}
	return res, n, nil
}
