package sim

import (
	"testing"

	"dirsim/internal/event"
	"dirsim/internal/workload"
)

// Cross-field consistency invariants on full application runs: the
// action counters a Result accumulates must agree with its event
// frequencies.

func TestInvalHistogramMatchesEventCounts(t *testing.T) {
	for _, scheme := range []string{"Dir0B", "DirNNB", "Dir1NB", "WTI"} {
		res, err := SimulateTrace(scheme, workload.POPS(4, 120_000), Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantClean := res.Counts.N[event.WrHitClean] + res.Counts.N[event.WrMissClean]
		if got := res.InvalClean.Total(); got != wantClean {
			t.Errorf("%s: InvalClean observed %d, events say %d", scheme, got, wantClean)
		}
		wantAll := wantClean + res.Counts.N[event.WrMissDirty] + res.Counts.N[event.RdMissDirty]
		if got := res.HoldersAtInval.Total(); got != wantAll {
			t.Errorf("%s: HoldersAtInval observed %d, events say %d", scheme, got, wantAll)
		}
	}
}

func TestDir0BBroadcastAccounting(t *testing.T) {
	res, err := SimulateTrace("Dir0B", workload.THOR(4, 120_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Dir0B broadcasts on: write hits to clean blocks with other
	// holders, all write misses to cached blocks, and never sends a
	// directed invalidation.
	if res.SeqInvals != 0 {
		t.Errorf("Dir0B sent %d directed invalidations", res.SeqInvals)
	}
	maxBcasts := res.Counts.N[event.WrHitClean] +
		res.Counts.N[event.WrMissClean] + res.Counts.N[event.WrMissDirty]
	if res.Broadcasts > maxBcasts {
		t.Errorf("broadcasts %d exceed eligible events %d", res.Broadcasts, maxBcasts)
	}
	// Sole-holder write hits skip the broadcast, so strictly fewer than
	// the bound on real workloads.
	if res.Broadcasts == 0 || res.Broadcasts >= maxBcasts {
		t.Errorf("broadcast count %d implausible against bound %d", res.Broadcasts, maxBcasts)
	}
}

func TestDirNNBInvalAccounting(t *testing.T) {
	res, err := SimulateTrace("DirNNB", workload.THOR(4, 120_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Broadcasts != 0 {
		t.Errorf("DirNNB broadcast %d times", res.Broadcasts)
	}
	// Directed invalidations: the holders summed over clean-write events
	// plus one per dirty miss (the flush).
	var fromHist int64
	for v, n := range res.InvalClean.Buckets {
		fromHist += int64(v) * n
	}
	fromHist += res.Counts.N[event.WrMissDirty]
	if res.SeqInvals != fromHist {
		t.Errorf("SeqInvals %d, derived %d", res.SeqInvals, fromHist)
	}
}

func TestWriteBackAccounting(t *testing.T) {
	res, err := SimulateTrace("Dir0B", workload.POPS(4, 120_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := res.Counts.N[event.RdMissDirty] + res.Counts.N[event.WrMissDirty]
	if res.WriteBacks != want {
		t.Errorf("WriteBacks %d, dirty-miss events %d", res.WriteBacks, want)
	}
	// Dragon never writes back.
	dragon, err := SimulateTrace("Dragon", workload.POPS(4, 120_000), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dragon.WriteBacks != 0 {
		t.Errorf("Dragon wrote back %d times", dragon.WriteBacks)
	}
}

func TestCycleConsistencyAcrossModels(t *testing.T) {
	// The non-pipelined bus is never cheaper than the pipelined one for
	// any scheme on any workload (every operation costs at least as
	// much).
	for _, scheme := range []string{"Dir1NB", "WTI", "Dir0B", "DirNNB", "Dragon", "MESI", "Berkeley", "Firefly", "YenFu"} {
		res, err := SimulateTrace(scheme, workload.THOR(4, 80_000), Options{})
		if err != nil {
			t.Fatal(err)
		}
		p, np := res.PerRef("pipelined"), res.PerRef("non-pipelined")
		if np < p {
			t.Errorf("%s: non-pipelined %0.4f cheaper than pipelined %0.4f", scheme, np, p)
		}
		// Transactions are model-independent.
		if res.Tally("pipelined").Transactions != res.Tally("non-pipelined").Transactions {
			t.Errorf("%s: transaction counts differ between models", scheme)
		}
	}
}
