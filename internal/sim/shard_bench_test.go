// Benchmarks and the machine-readable report for intra-trace sharded
// simulation: SimulateSharded at several shard counts against the
// single-goroutine batched Simulate.
//
//	DIRSIM_BENCH_JSON=1 go test -run TestWriteShardBenchJSON ./internal/sim
//
// writes BENCH_shard.json at the repo root — one record per shard count
// with throughput, speedup over the sequential batched path, and a
// bit-identity flag verified in-process against the sequential result.
package sim

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dirsim/internal/core"
)

func BenchmarkShardedSim(b *testing.B) {
	for _, shards := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			traces := hotpathWorkloads(b, 100_000)
			opts := Options{Shards: shards}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, tr := range traces {
					if _, err := SimulateSharded(shardBuild("Dir1NB", tr.CPUs), tr.Iterator(), opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// shardBenchRecord is one measured shard count.
type shardBenchRecord struct {
	Path         string  `json:"path"`
	Scheme       string  `json:"scheme"`
	Shards       int     `json:"shards,omitempty"`
	Traces       int     `json:"traces"`
	RefsEach     int     `json:"refs_per_trace"`
	Iters        int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	RefsPerS     float64 `json:"refs_per_second"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	Speedup      float64 `json:"speedup_vs_sequential"`
	BitIdentical bool    `json:"bit_identical_to_sequential"`
}

type shardBenchReport struct {
	Date       string             `json:"date"`
	GoMaxProcs int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	GoVersion  string             `json:"go_version"`
	Note       string             `json:"note"`
	Results    []shardBenchRecord `json:"results"`
}

// TestWriteShardBenchJSON measures SimulateSharded at shard counts
// {1,2,4,8,GOMAXPROCS} against the sequential batched Simulate, verifies
// bit-identity of every sharded result in-process, and writes
// BENCH_shard.json at the repo root. Skipped unless DIRSIM_BENCH_JSON is
// set.
func TestWriteShardBenchJSON(t *testing.T) {
	if os.Getenv("DIRSIM_BENCH_JSON") == "" {
		t.Skip("set DIRSIM_BENCH_JSON=1 to run the shard benchmark and write BENCH_shard.json")
	}

	const refs = 200_000
	const scheme = "Dir1NB"
	traces := hotpathWorkloads(t, refs)
	totalRefs := 0
	for _, tr := range traces {
		totalRefs += tr.Len()
	}

	// The sequential results every sharded run must reproduce bitwise.
	sequential := make([]*Result, len(traces))
	for i, tr := range traces {
		p, err := core.NewByName(scheme, tr.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		if sequential[i], err = Simulate(p, tr.Iterator(), Options{}); err != nil {
			t.Fatal(err)
		}
	}

	shardCounts := []int{1, 2, 4, 8}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 && g != 8 {
		shardCounts = append(shardCounts, g)
	}

	report := shardBenchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Note: "three standard traces under " + scheme + " (table-driven core); " +
			"sequential is the single-goroutine batched sim.Simulate, sharded " +
			"runs partition references by block hash across concurrent protocol " +
			"cores with a deterministic merge. bit_identical is verified " +
			"in-process against the sequential Result before timing. Parallel " +
			"speedup requires real cores: on a 1-CPU box every shard count " +
			"time-slices one core and the splitter/channel overhead shows as " +
			"slowdown; see gomaxprocs/num_cpu above for this run's box",
	}

	seq := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runLoop(b, scheme, traces, Simulate, Options{})
		}
	})
	baseline := float64(seq.NsPerOp())
	report.Results = append(report.Results, shardBenchRecord{
		Path: "sequential", Scheme: scheme, Traces: len(traces), RefsEach: refs,
		Iters: seq.N, NsPerOp: seq.NsPerOp(),
		RefsPerS:    float64(totalRefs) / (float64(seq.NsPerOp()) / 1e9),
		AllocsPerOp: seq.AllocsPerOp(), Speedup: 1, BitIdentical: true,
	})
	t.Logf("sequential: %dns/op, %.0f refs/s", seq.NsPerOp(), report.Results[0].RefsPerS)

	for _, shards := range shardCounts {
		opts := Options{Shards: shards}
		identical := true
		for i, tr := range traces {
			got, err := SimulateSharded(shardBuild(scheme, tr.CPUs), tr.Iterator(), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, sequential[i]) {
				identical = false
				t.Errorf("shards=%d over %s: result differs from sequential", shards, tr.Name)
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, tr := range traces {
					if _, err := SimulateSharded(shardBuild(scheme, tr.CPUs), tr.Iterator(), opts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		rec := shardBenchRecord{
			Path: "sharded", Scheme: scheme, Shards: shards,
			Traces: len(traces), RefsEach: refs,
			Iters: r.N, NsPerOp: r.NsPerOp(),
			RefsPerS:     float64(totalRefs) / (float64(r.NsPerOp()) / 1e9),
			AllocsPerOp:  r.AllocsPerOp(),
			Speedup:      baseline / float64(r.NsPerOp()),
			BitIdentical: identical,
		}
		report.Results = append(report.Results, rec)
		t.Logf("shards=%d: %dns/op, %.0f refs/s, %d allocs/op, speedup %.2fx, identical=%v",
			shards, r.NsPerOp(), rec.RefsPerS, r.AllocsPerOp(), rec.Speedup, identical)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_shard.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_shard.json")
}
