package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV exports results in a flat machine-readable form, one row per
// (result, bus model) pair, for plotting or regression tracking. Columns:
//
//	scheme, trace, model, refs, cycles_per_ref, txn_per_ref,
//	cycles_per_txn, rd_miss_pct, wr_miss_pct, inval_le1_pct,
//	broadcasts, seq_invals, write_backs
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)
	header := []string{"scheme", "trace", "model", "refs",
		"cycles_per_ref", "txn_per_ref", "cycles_per_txn",
		"rd_miss_pct", "wr_miss_pct", "inval_le1_pct",
		"broadcasts", "seq_invals", "write_backs"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.6f", v) }
	for _, r := range results {
		models := make([]string, 0, len(r.Tallies))
		for name := range r.Tallies {
			models = append(models, name)
		}
		sort.Strings(models)
		for _, name := range models {
			t := r.Tallies[name]
			row := []string{
				r.Scheme, r.Trace, name,
				fmt.Sprintf("%d", r.Counts.Total),
				f(t.PerRef()), f(t.TransactionsPerRef()), f(t.PerTransaction()),
				f(r.Counts.ReadMisses()), f(r.Counts.WriteMisses()),
				f(r.InvalClean.PctAtMost(1)),
				fmt.Sprintf("%d", r.Broadcasts),
				fmt.Sprintf("%d", r.SeqInvals),
				fmt.Sprintf("%d", r.WriteBacks),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
