package sim

import (
	"fmt"
	"reflect"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/network"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// referenceSimulate is the seed's per-reference simulation loop, kept
// verbatim as the oracle for the batched hot path: one Next call per
// reference and map iteration over the tallies in record. Any divergence
// between this and Simulate is a correctness bug, not a tuning artifact.
func referenceSimulate(p core.Protocol, src trace.Source, opts Options) (*Result, error) {
	if src.CPUCount() > p.CPUs() {
		return nil, fmt.Errorf("sim: trace has %d CPUs but %s engine simulates %d",
			src.CPUCount(), p.Name(), p.CPUs())
	}
	res := &Result{
		Scheme:  p.Name(),
		Tallies: make(map[string]*bus.Tally),
	}
	for _, m := range opts.models() {
		res.Tallies[m.Name] = bus.NewTally(m)
	}
	if len(opts.Topologies) > 0 {
		res.NetTallies = make(map[string]*network.Tally)
		for _, topo := range opts.Topologies {
			res.NetTallies[topo.Name] = network.NewTally(topo)
		}
	}
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		out := p.Access(r)
		res.Counts.Add(out.Type)
		switch out.Type {
		case event.WrHitClean, event.WrMissClean:
			res.InvalClean.Observe(out.Holders)
			res.HoldersAtInval.Observe(out.Holders)
		case event.WrMissDirty, event.RdMissDirty:
			res.HoldersAtInval.Observe(out.Holders)
		}
		if out.Broadcast && !out.Update {
			res.Broadcasts++
		}
		res.SeqInvals += int64(out.Inval)
		res.ForcedInvals += int64(out.ForcedInval)
		if out.WriteBack {
			res.WriteBacks++
		}
		for _, t := range res.Tallies {
			t.Add(out)
		}
		for _, t := range res.NetTallies {
			t.Add(out)
		}
	}
	return res, nil
}

// batchTestOpts prices bus models and two topologies so the equivalence
// covers the NetTallies slice path too.
func batchTestOpts() Options {
	return Options{Topologies: []network.Topology{network.Bus(4), network.Mesh(2, 2)}}
}

// TestBatchedEquivalence is the tentpole's oracle: for every paper scheme
// over the three standard workloads, the batched Simulate produces a
// Result bit-identical to the seed's per-reference loop, bus and network
// tallies included.
func TestBatchedEquivalence(t *testing.T) {
	schemes := []string{"Dir1NB", "WTI", "Dir0B", "Dragon", "DirNNB"}
	for _, cfg := range workload.StandardConfigs(4, 30_000) {
		tr, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range schemes {
			want, err := runReference(scheme, tr)
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewByName(scheme, tr.CPUs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(p, tr.Iterator(), batchTestOpts())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s over %s: batched result differs from per-ref reference",
					scheme, cfg.Name)
			}
		}
	}
}

func runReference(scheme string, tr *trace.Trace) (*Result, error) {
	p, err := core.NewByName(scheme, tr.CPUs)
	if err != nil {
		return nil, err
	}
	return referenceSimulate(p, tr.Iterator(), batchTestOpts())
}

// TestBatchSizeInvariance checks that awkward batch sizes — 1, a prime
// that never divides the trace, and sizes forcing a short final batch —
// all produce the identical Result. The trace length is chosen so every
// size below ends on a partial batch.
func TestBatchSizeInvariance(t *testing.T) {
	cfg := workload.POPSConfig(4, 10_001)
	tr, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := runReference("Dir1NB", tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 7, 1000, 4096, 1 << 20} {
		p, err := core.NewByName("Dir1NB", tr.CPUs)
		if err != nil {
			t.Fatal(err)
		}
		opts := batchTestOpts()
		opts.BatchRefs = batch
		got, err := Simulate(p, tr.Iterator(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batch size %d: result differs from per-ref reference", batch)
		}
	}
}

// TestBatchedCheckedRun covers the checked (per-reference) path of the
// batched loop against the reference loop with checking off — checking
// must never change measurements.
func TestBatchedCheckedRun(t *testing.T) {
	tr, err := workload.Generate(workload.POPSConfig(4, 8_000))
	if err != nil {
		t.Fatal(err)
	}
	want, err := runReference("Dir0B", tr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewByName("Dir0B", tr.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	opts := batchTestOpts()
	opts.Check = true
	opts.BatchRefs = 513
	got, err := Simulate(p, tr.Iterator(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("checked batched run differs from unchecked per-ref reference")
	}
}

// TestMergeRejectsTallyMismatch is the regression test for Merge silently
// dropping tallies: a result set where some results price topologies (or
// models) and others do not must error in both directions, mirroring the
// existing "missing from first result" case.
func TestMergeRejectsTallyMismatch(t *testing.T) {
	tr := workload.PingPong(200)
	plain, err := SimulateTrace("Dir0B", tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	priced, err := SimulateTrace("Dir0B", tr, Options{Topologies: []network.Topology{network.Bus(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(plain, priced); err == nil {
		t.Error("merge accepted topologies missing from the first result")
	}
	if _, err := Merge(priced, plain); err == nil {
		t.Error("merge accepted topologies missing from a later result")
	}

	oneModel, err := SimulateTrace("Dir0B", tr, Options{Models: []bus.Model{bus.Pipelined()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(plain, oneModel); err == nil {
		t.Error("merge accepted a result priced under fewer cost models")
	}
	if _, err := Merge(oneModel, plain); err == nil {
		t.Error("merge accepted a result priced under extra cost models")
	}

	// Matching sets still merge.
	if _, err := Merge(priced, priced); err != nil {
		t.Errorf("merge of matching results failed: %v", err)
	}
}
