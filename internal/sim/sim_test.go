package sim

import (
	"strings"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

func TestSimulateTraceBasics(t *testing.T) {
	tr := workload.PingPong(1000)
	res, err := SimulateTrace("Dir0B", tr, Options{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "Dir0B" || res.Trace != "pingpong" {
		t.Errorf("identity wrong: %s/%s", res.Scheme, res.Trace)
	}
	if res.Counts.Total != int64(tr.Len()) {
		t.Errorf("counted %d refs of %d", res.Counts.Total, tr.Len())
	}
	// Both default models priced.
	if res.Tally("pipelined") == nil || res.Tally("non-pipelined") == nil {
		t.Fatal("default models missing")
	}
	if res.Tally("nope") != nil {
		t.Error("unknown model should be nil")
	}
	if res.PerRef("pipelined") <= 0 {
		t.Error("pingpong must cost cycles")
	}
	if res.PerRef("nope") != 0 {
		t.Error("unknown model PerRef should be 0")
	}
}

func TestSimulateUnknownScheme(t *testing.T) {
	if _, err := SimulateTrace("MOESI", workload.PingPong(10), Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestSimulateCPUCountMismatch(t *testing.T) {
	p, err := core.NewByName("Dir0B", 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.Migratory(4, 2, 10) // 4 CPUs
	if _, err := Simulate(p, tr.Iterator(), Options{}); err == nil {
		t.Error("engine smaller than trace accepted")
	}
	// An engine larger than the trace is fine.
	p8, _ := core.NewByName("Dir0B", 8)
	if _, err := Simulate(p8, tr.Iterator(), Options{}); err != nil {
		t.Errorf("larger engine rejected: %v", err)
	}
}

func TestSimulateCustomModel(t *testing.T) {
	m := bus.Pipelined().WithQ(1)
	m.Name = "q1"
	res, err := SimulateTrace("Dir0B", workload.PingPong(1000), Options{Models: []bus.Model{m}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally("q1") == nil || res.Tally("pipelined") != nil {
		t.Error("custom model list not honoured")
	}
}

func TestResultHistograms(t *testing.T) {
	// Producer-consumer: each round's write finds cpus-1 clean copies.
	tr := workload.ProducerConsumer(4, 4, 20)
	res, err := SimulateTrace("Dir0B", tr, Options{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvalClean.Total() == 0 {
		t.Fatal("no writes to clean blocks observed")
	}
	// From round 2 on, every write sees 3 remote holders.
	if res.InvalClean.Buckets[3] == 0 {
		t.Errorf("expected 3-holder invalidations: %v", res.InvalClean.Buckets)
	}
	if res.Broadcasts == 0 {
		t.Error("Dir0B should have broadcast invalidations")
	}
}

func TestWriteBackCounting(t *testing.T) {
	tr := workload.PingPong(1000)
	res, err := SimulateTrace("DirNNB", tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WriteBacks == 0 {
		t.Error("migratory pattern must cause write-backs")
	}
	if res.SeqInvals == 0 {
		t.Error("DirNNB sends directed invalidations")
	}
	if res.Broadcasts != 0 {
		t.Error("DirNNB must not broadcast")
	}
}

func TestMerge(t *testing.T) {
	a, err := SimulateTrace("Dir0B", workload.PingPong(500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace("Dir0B", workload.Migratory(2, 4, 50), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Counts.Total != a.Counts.Total+b.Counts.Total {
		t.Error("merged totals wrong")
	}
	if !strings.Contains(m.Trace, "+") {
		t.Errorf("merged trace name %q", m.Trace)
	}
	wantCycles := a.Tally("pipelined").Cycles.Total() + b.Tally("pipelined").Cycles.Total()
	if got := m.Tally("pipelined").Cycles.Total(); got != wantCycles {
		t.Errorf("merged cycles %v, want %v", got, wantCycles)
	}
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
	a, _ := SimulateTrace("Dir0B", workload.PingPong(100), Options{})
	b, _ := SimulateTrace("Dragon", workload.PingPong(100), Options{})
	if _, err := Merge(a, b); err == nil {
		t.Error("cross-scheme merge accepted")
	}
}

func TestSchemeOverTraces(t *testing.T) {
	traces := []*trace.Trace{workload.PingPong(400), workload.Migratory(2, 4, 40)}
	per, merged, err := SchemeOverTraces("Dragon", traces, Options{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != 2 {
		t.Fatalf("per-trace results: %d", len(per))
	}
	if merged.Counts.Total != per[0].Counts.Total+per[1].Counts.Total {
		t.Error("merge totals wrong")
	}
}

func TestRecordClassification(t *testing.T) {
	var r Result
	r.Tallies = map[string]*bus.Tally{}
	r.record(event.Result{Type: event.WrHitClean, Holders: 2, Broadcast: true}, nil, nil, nil)
	r.record(event.Result{Type: event.WrMissClean, Holders: 0}, nil, nil, nil)
	r.record(event.Result{Type: event.RdMissDirty, Holders: 1, WriteBack: true}, nil, nil, nil)
	r.record(event.Result{Type: event.WrHitShared, Holders: 3, Broadcast: true, Update: true}, nil, nil, nil)
	if r.InvalClean.Total() != 2 {
		t.Errorf("InvalClean observed %d events, want 2", r.InvalClean.Total())
	}
	if r.HoldersAtInval.Total() != 3 {
		t.Errorf("HoldersAtInval observed %d events, want 3", r.HoldersAtInval.Total())
	}
	if r.Broadcasts != 1 {
		t.Errorf("Broadcasts = %d, want 1 (updates excluded)", r.Broadcasts)
	}
	if r.WriteBacks != 1 {
		t.Errorf("WriteBacks = %d", r.WriteBacks)
	}
}

func TestCheckRejectsUncheckableEngine(t *testing.T) {
	// All bundled engines support checking; verify the error path with a
	// stub.
	p := stubProtocol{}
	if _, err := Simulate(p, workload.PingPong(10).Iterator(), Options{Check: true}); err == nil {
		t.Error("uncheckable engine accepted with Check set")
	}
}

type stubProtocol struct{}

func (stubProtocol) Name() string                  { return "stub" }
func (stubProtocol) CPUs() int                     { return 64 }
func (stubProtocol) Access(trace.Ref) event.Result { return event.Result{} }
func (stubProtocol) CheckInvariants() error        { return nil }
