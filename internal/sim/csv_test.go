package sim

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"dirsim/internal/workload"
)

func TestWriteCSV(t *testing.T) {
	a, err := SimulateTrace("Dir0B", workload.PingPong(500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace("Dragon", workload.PingPong(500), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Result{a, b}); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	// Header + 2 results x 2 default models.
	if len(rows) != 1+4 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][0] != "scheme" || rows[0][4] != "cycles_per_ref" {
		t.Errorf("header wrong: %v", rows[0])
	}
	// Rows are sorted by model name within a result.
	if rows[1][2] != "non-pipelined" || rows[2][2] != "pipelined" {
		t.Errorf("model ordering: %v / %v", rows[1][2], rows[2][2])
	}
	if rows[1][0] != "Dir0B" || rows[3][0] != "Dragon" {
		t.Errorf("scheme column wrong: %v", rows)
	}
	for _, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			t.Fatalf("ragged row: %v", row)
		}
		if !strings.Contains(row[4], ".") {
			t.Errorf("cycles_per_ref not numeric: %q", row[4])
		}
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 1 {
		t.Errorf("empty export should be header only, got %d lines", lines)
	}
}
