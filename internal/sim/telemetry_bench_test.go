// Benchmarks and the machine-readable report for the observability
// overhead on the simulation hot path: the batched Simulate loop with
// telemetry disabled (nil Telemetry — the default for every plain run)
// against the same loop with a sampling ProtoSampler attached.
//
//	DIRSIM_BENCH_JSON=1 go test -run TestWriteObsBenchJSON ./internal/sim
//
// writes BENCH_obs.json at the repo root, recording both variants and
// the delta against BENCH_hotpath.json's batched baseline. The
// disabled-path delta is the number the tracing subsystem must keep
// within run-to-run noise: with no Telemetry the record path pays one
// nil check per recorded event and nothing else.
package sim

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"dirsim/internal/obs"
)

func BenchmarkHotpathTelemetryOff(b *testing.B) {
	traces := hotpathWorkloads(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLoop(b, "Dir1NB", traces, Simulate, Options{})
	}
}

func BenchmarkHotpathTelemetryOn(b *testing.B) {
	traces := hotpathWorkloads(b, 100_000)
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLoop(b, "Dir1NB", traces, Simulate,
			Options{Telemetry: obs.NewProtoSampler(reg, "Dir1NB", 64, nil, 0)})
	}
}

// obsBenchRecord is one measured telemetry variant.
type obsBenchRecord struct {
	Path        string  `json:"path"`
	Scheme      string  `json:"scheme"`
	Stride      int     `json:"stride,omitempty"`
	Traces      int     `json:"traces"`
	RefsEach    int     `json:"refs_per_trace"`
	Iters       int     `json:"iterations"`
	NsPerOp     int64   `json:"ns_per_op"`
	RefsPerS    float64 `json:"refs_per_second"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// OverheadPct is the slowdown against this run's telemetry-off
	// variant (same machine, same process — the fair comparison).
	OverheadPct float64 `json:"overhead_pct_vs_off"`
}

type obsBenchReport struct {
	Date       string `json:"date"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	Note       string `json:"note"`
	// HotpathBaselineRefsPerS is BENCH_hotpath.json's batched
	// refs/second, copied in for the cross-file comparison; DeltaPct is
	// the telemetry-off variant's delta against it (noise plus whatever
	// the nil-telemetry check costs — must stay within noise).
	HotpathBaselineRefsPerS float64          `json:"hotpath_baseline_refs_per_second,omitempty"`
	DeltaPctVsHotpath       float64          `json:"delta_pct_vs_hotpath_baseline,omitempty"`
	Results                 []obsBenchRecord `json:"results"`
}

// TestWriteObsBenchJSON measures the batched hot path with telemetry off
// and on and writes BENCH_obs.json at the repo root. Skipped unless
// DIRSIM_BENCH_JSON is set.
func TestWriteObsBenchJSON(t *testing.T) {
	if os.Getenv("DIRSIM_BENCH_JSON") == "" {
		t.Skip("set DIRSIM_BENCH_JSON=1 to run the telemetry benchmark and write BENCH_obs.json")
	}

	const refs = 200_000
	const scheme = "Dir1NB"
	const stride = 64
	traces := hotpathWorkloads(t, refs)
	totalRefs := 0
	for _, tr := range traces {
		totalRefs += tr.Len()
	}

	report := obsBenchReport{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Note: "single-goroutine batched replay of the three standard traces under " + scheme +
			"; telemetry-off is sim.Simulate with a nil Telemetry (the default), telemetry-on " +
			"attaches a ProtoSampler at stride 64 with no trace lane. Results are bit-identical " +
			"either way (TestTracedRunMatchesUntraced); this file records only the time cost",
	}

	reg := obs.NewRegistry()
	variants := []struct {
		path   string
		stride int
		opts   Options
	}{
		{"telemetry-off", 0, Options{}},
		{"telemetry-on", stride, Options{Telemetry: obs.NewProtoSampler(reg, scheme, stride, nil, 0)}},
	}
	var offNs float64
	for _, v := range variants {
		v := v
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runLoop(b, scheme, traces, Simulate, v.opts)
			}
		})
		rec := obsBenchRecord{
			Path:        v.path,
			Scheme:      scheme,
			Stride:      v.stride,
			Traces:      len(traces),
			RefsEach:    refs,
			Iters:       r.N,
			NsPerOp:     r.NsPerOp(),
			RefsPerS:    float64(totalRefs) / (float64(r.NsPerOp()) / 1e9),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if v.path == "telemetry-off" {
			offNs = float64(r.NsPerOp())
		} else if offNs > 0 {
			rec.OverheadPct = 100 * (float64(r.NsPerOp()) - offNs) / offNs
		}
		report.Results = append(report.Results, rec)
		t.Logf("%s: %dns/op, %.0f refs/s, %d allocs/op, overhead %.2f%%",
			v.path, r.NsPerOp(), rec.RefsPerS, r.AllocsPerOp(), rec.OverheadPct)
	}

	// Compare the telemetry-off variant against the recorded hot-path
	// baseline, when it exists; the delta should be run-to-run noise.
	if data, err := os.ReadFile("../../BENCH_hotpath.json"); err == nil {
		var hp struct {
			Results []struct {
				Path     string  `json:"path"`
				RefsPerS float64 `json:"refs_per_second"`
			} `json:"results"`
		}
		if json.Unmarshal(data, &hp) == nil {
			for _, r := range hp.Results {
				if r.Path == "batched" && r.RefsPerS > 0 {
					report.HotpathBaselineRefsPerS = r.RefsPerS
					report.DeltaPctVsHotpath = 100 * (report.Results[0].RefsPerS - r.RefsPerS) / r.RefsPerS
				}
			}
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_obs.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_obs.json")
}
