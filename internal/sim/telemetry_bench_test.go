// Benchmarks for the observability overhead on the simulation hot path:
// the batched Simulate loop with telemetry disabled (nil Telemetry — the
// default for every plain run) against the same loop with a sampling
// ProtoSampler attached. With no Telemetry the record path pays one nil
// check per recorded event and nothing else.
//
// The machine-readable report covering these variants plus the engine
// tracing stack lives at the repo root (TestWriteObsBenchJSON, writes
// BENCH_obs.json; run it with `make bench-obs`).
package sim

import (
	"testing"

	"dirsim/internal/obs"
)

func BenchmarkHotpathTelemetryOff(b *testing.B) {
	traces := hotpathWorkloads(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLoop(b, "Dir1NB", traces, Simulate, Options{})
	}
}

func BenchmarkHotpathTelemetryOn(b *testing.B) {
	traces := hotpathWorkloads(b, 100_000)
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runLoop(b, "Dir1NB", traces, Simulate,
			Options{Telemetry: obs.NewProtoSampler(reg, "Dir1NB", 64, nil, 0)})
	}
}
