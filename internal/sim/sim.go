// Package sim drives trace simulations: it feeds a reference stream
// through a protocol engine, accumulates the Table 4 event frequencies,
// the Figure 1 invalidation histogram, and bus-cycle tallies under one or
// more cost models, and merges results across traces.
package sim

import (
	"fmt"
	"time"

	"dirsim/internal/bus"
	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/network"
	"dirsim/internal/trace"
)

// DefaultBatchRefs is the number of references Simulate pulls from the
// source per NextBatch call when Options.BatchRefs is zero. It matches
// the engine's default streaming chunk so a streamed simulation consumes
// whole chunks without re-buffering.
const DefaultBatchRefs = 4096

// Options configures a simulation run.
type Options struct {
	// Models are the bus cost models to price the run under. When
	// empty, the paper's pipelined and non-pipelined models are used.
	Models []bus.Model
	// BatchRefs is the hot-loop batch size: how many references Simulate
	// pulls from the source per NextBatch call (default
	// DefaultBatchRefs). Results are bit-identical for every batch size —
	// the knob tunes amortization only.
	BatchRefs int
	// Topologies additionally prices the run on interconnection
	// networks (the Section 6 scalability analysis); results land in
	// Result.NetTallies keyed by topology name.
	Topologies []network.Topology
	// Check attaches a value-coherence checker to the engine and
	// verifies engine invariants periodically. Slower; used by tests.
	Check bool
	// InvariantEvery is how many references pass between invariant
	// checks when Check is set (default 8192).
	InvariantEvery int
	// Observer, when set, receives one completion notification with the
	// number of references simulated and the wall time — the span hook
	// the CLIs use for per-simulation timing. Timing lives here rather
	// than on Result so results stay pure functions of the reference
	// sequence (the engine's executors assert bit-identity on them).
	// nil skips the clock reads entirely.
	Observer func(refs int64, elapsed time.Duration)
	// Telemetry, when set, receives every coherence-relevant event (see
	// event.Result.CoherenceSignal) as it is recorded — the protocol
	// telemetry channel the observability layer samples into histograms
	// and trace instants. It is called from the simulation goroutine and
	// never changes the Result; nil (the default) costs one nil check per
	// reference. Under SimulateSharded the value is shared by every shard
	// behind a mutex, so event *order* across shards is scheduling-
	// dependent — results remain bit-identical regardless.
	Telemetry Telemetry
	// Shards selects intra-trace parallel simulation: when > 1,
	// SimulateTrace partitions the trace's references by block across
	// this many concurrent protocol cores and merges the per-shard
	// tallies (see SimulateSharded) — bit-identical to the sequential
	// path. 0 or 1 runs the single-goroutine loop above.
	Shards int
	// ShardObserver, when set, receives one ShardStat as each shard
	// worker finishes, plus one with Shard == -1 for the splitter — the
	// hook behind per-shard journal events and skew reporting. Calls are
	// serialized by SimulateSharded; the single-goroutine path never
	// calls it.
	ShardObserver func(ShardStat)
	// ShardFault, when set, is invoked once at each shard worker's start;
	// a non-nil return (or a panic) fails that shard. It exists for fault
	// injection: the engine wires faults.Injector.ShardFault here so soak
	// tests can kill one shard and assert the others drain cleanly.
	ShardFault func(shard int) error
}

// Telemetry receives coherence-relevant protocol events during a
// simulation. Implementations are called synchronously from the
// simulation hot loop and need not be safe for concurrent use: each
// Simulate call owns its Telemetry value.
type Telemetry interface {
	Coherence(out event.Result)
}

func (o Options) models() []bus.Model {
	if len(o.Models) == 0 {
		return []bus.Model{bus.Pipelined(), bus.NonPipelined()}
	}
	return o.Models
}

// Result holds everything measured in one run (or merged across runs) of
// one scheme.
type Result struct {
	// Scheme is the protocol name; Trace names the input (or the list
	// of merged inputs).
	Scheme string
	Trace  string

	// Counts is the Table 4 event-frequency table.
	Counts event.Counts
	// InvalClean is the Figure 1 histogram: the number of remote caches
	// holding a previously-clean block when it is written (events
	// wh-blk-cln and wm-blk-cln).
	InvalClean event.Hist
	// HoldersAtInval extends Figure 1's footnote: remote holders at
	// *every* reference that may require invalidations, including
	// misses to dirty blocks (which need exactly one).
	HoldersAtInval event.Hist

	// Broadcasts counts invalidations delivered by broadcast,
	// SeqInvals directed invalidation messages, ForcedInvals
	// pointer-overflow evictions (DiriNB), WriteBacks dirty flushes.
	Broadcasts   int64
	SeqInvals    int64
	ForcedInvals int64
	WriteBacks   int64

	// Tallies holds one bus-cycle tally per cost model, keyed by model
	// name.
	Tallies map[string]*bus.Tally
	// NetTallies holds one network tally per topology, keyed by
	// topology name (present only when Options.Topologies was set).
	NetTallies map[string]*network.Tally
}

// Tally returns the tally for the named bus model, or nil.
func (r *Result) Tally(model string) *bus.Tally { return r.Tallies[model] }

// PerRef returns bus cycles per reference under the named model (0 when
// the model was not priced).
func (r *Result) PerRef(model string) float64 {
	t := r.Tallies[model]
	if t == nil {
		return 0
	}
	return t.PerRef()
}

// Simulate runs the protocol over the stream and returns the measurements.
func Simulate(p core.Protocol, src trace.Source, opts Options) (*Result, error) {
	if src.CPUCount() > p.CPUs() {
		return nil, fmt.Errorf("sim: trace has %d CPUs but %s engine simulates %d",
			src.CPUCount(), p.Name(), p.CPUs())
	}
	res, busTallies, netTallies := newResult(p.Name(), opts)
	var checker *core.Checker
	if opts.Check {
		checker = core.NewChecker()
		if !core.Attach(p, checker) {
			return nil, fmt.Errorf("sim: %s does not support coherence checking", p.Name())
		}
	}
	every := int64(opts.InvariantEvery)
	if every <= 0 {
		every = 8192
	}
	batch := opts.BatchRefs
	if batch <= 0 {
		batch = DefaultBatchRefs
	}
	tel := opts.Telemetry
	var start time.Time
	if opts.Observer != nil {
		start = time.Now()
	}
	// References move in batches through two reusable buffers (refs in,
	// classifications out), so the steady-state loop allocates nothing
	// and pays the Source interface dispatch once per batch instead of
	// once per reference.
	bsrc := trace.Batched(src)
	buf := make([]trace.Ref, batch)
	outs := make([]event.Result, 0, batch)
	var n int64
	for {
		k := bsrc.NextBatch(buf)
		if k == 0 {
			break
		}
		if opts.Check {
			// The checked path stays per-reference so invariant
			// violations are pinned to the exact reference count that
			// exposed them, batch boundaries notwithstanding.
			for _, r := range buf[:k] {
				res.record(p.Access(r), busTallies, netTallies, tel)
				n++
				if n%every == 0 {
					if err := p.CheckInvariants(); err != nil {
						return nil, fmt.Errorf("sim: after %d refs: %w", n, err)
					}
				}
			}
			continue
		}
		outs = core.AccessBatch(p, buf[:k], outs[:0])
		for i := range outs {
			res.record(outs[i], busTallies, netTallies, tel)
		}
		n += int64(k)
	}
	if opts.Check {
		if err := p.CheckInvariants(); err != nil {
			return nil, err
		}
		if err := checker.Err(); err != nil {
			return nil, err
		}
	}
	if opts.Observer != nil {
		opts.Observer(n, time.Since(start))
	}
	return res, nil
}

// newResult builds an empty Result for one simulation (or one shard of
// one) with its tallies instantiated from opts. The Tallies/NetTallies
// maps are the stable public shape of the result, but iterating them per
// reference costs more than pricing does; the returned slices are the
// pre-resolved views the hot loop walks instead. Accumulation order
// across tallies is irrelevant — each tally only ever adds to itself — so
// results stay bit-identical whatever the map iteration order.
func newResult(scheme string, opts Options) (*Result, []*bus.Tally, []*network.Tally) {
	res := &Result{
		Scheme:  scheme,
		Tallies: make(map[string]*bus.Tally),
	}
	for _, m := range opts.models() {
		res.Tallies[m.Name] = bus.NewTally(m)
	}
	if len(opts.Topologies) > 0 {
		res.NetTallies = make(map[string]*network.Tally)
		for _, topo := range opts.Topologies {
			res.NetTallies[topo.Name] = network.NewTally(topo)
		}
	}
	busTallies := make([]*bus.Tally, 0, len(res.Tallies))
	for _, t := range res.Tallies {
		busTallies = append(busTallies, t)
	}
	var netTallies []*network.Tally
	if len(res.NetTallies) > 0 {
		netTallies = make([]*network.Tally, 0, len(res.NetTallies))
		for _, t := range res.NetTallies {
			netTallies = append(netTallies, t)
		}
	}
	return res, busTallies, netTallies
}

// record accumulates one classified reference. The tally lists are the
// pre-resolved values of r.Tallies/r.NetTallies; Simulate binds them once
// so this stays free of map iteration. tel, when non-nil, is forwarded
// every coherence-relevant event; it observes but never alters the
// result, so the batched/sequential bit-identity guarantees hold with
// telemetry on or off.
func (r *Result) record(out event.Result, busTallies []*bus.Tally, netTallies []*network.Tally, tel Telemetry) {
	if tel != nil && out.CoherenceSignal() {
		tel.Coherence(out)
	}
	r.Counts.Add(out.Type)
	switch out.Type {
	case event.WrHitClean, event.WrMissClean:
		r.InvalClean.Observe(out.Holders)
		r.HoldersAtInval.Observe(out.Holders)
	case event.WrMissDirty, event.RdMissDirty:
		r.HoldersAtInval.Observe(out.Holders)
	}
	if out.Quiet() {
		// Hits and instruction fetches — the bulk of every trace — touch
		// no traffic counter, and every cost model prices them at zero;
		// each tally just sees one more free reference. Checking once
		// here spares pricing the result under every model separately.
		for _, t := range busTallies {
			t.Refs++
		}
		for _, t := range netTallies {
			t.Refs++
		}
		return
	}
	if out.Broadcast && !out.Update {
		r.Broadcasts++
	}
	r.SeqInvals += int64(out.Inval)
	r.ForcedInvals += int64(out.ForcedInval)
	if out.WriteBack {
		r.WriteBacks++
	}
	for _, t := range busTallies {
		t.Add(out)
	}
	for _, t := range netTallies {
		t.Add(out)
	}
}

// SimulateTrace builds the named scheme for the trace's CPU count and runs
// it over the whole trace — sharded across Options.Shards protocol cores
// when Shards > 1, single-goroutine otherwise; results are bit-identical
// either way.
func SimulateTrace(scheme string, t *trace.Trace, opts Options) (*Result, error) {
	var res *Result
	var err error
	if opts.Shards > 1 {
		res, err = SimulateSharded(func() (core.Protocol, error) {
			return core.NewByName(scheme, t.CPUs)
		}, t.Iterator(), opts)
	} else {
		var p core.Protocol
		if p, err = core.NewByName(scheme, t.CPUs); err != nil {
			return nil, err
		}
		res, err = Simulate(p, t.Iterator(), opts)
	}
	if err != nil {
		return nil, err
	}
	res.Trace = t.Name
	return res, nil
}

// Merge combines results of the same scheme over different traces into an
// aggregate (totals are summed, so per-reference metrics become
// reference-weighted averages, the same averaging Table 4 uses).
func Merge(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("sim: nothing to merge")
	}
	out := &Result{
		Scheme:  results[0].Scheme,
		Trace:   results[0].Trace,
		Tallies: make(map[string]*bus.Tally),
	}
	for name, t := range results[0].Tallies {
		out.Tallies[name] = bus.NewTally(t.Model)
	}
	if len(results[0].NetTallies) > 0 {
		out.NetTallies = make(map[string]*network.Tally)
		for name, t := range results[0].NetTallies {
			out.NetTallies[name] = network.NewTally(t.Topo)
		}
	}
	for i, r := range results {
		if r.Scheme != out.Scheme {
			return nil, fmt.Errorf("sim: merging %s into %s", r.Scheme, out.Scheme)
		}
		if i > 0 {
			out.Trace += "+" + r.Trace
		}
		out.Counts.AddCounts(r.Counts)
		out.InvalClean.AddHist(r.InvalClean)
		out.HoldersAtInval.AddHist(r.HoldersAtInval)
		out.Broadcasts += r.Broadcasts
		out.SeqInvals += r.SeqInvals
		out.ForcedInvals += r.ForcedInvals
		out.WriteBacks += r.WriteBacks
		for name, t := range r.Tallies {
			dst := out.Tallies[name]
			if dst == nil {
				return nil, fmt.Errorf("sim: model %q missing from first result", name)
			}
			dst.Merge(t)
		}
		// The reverse mismatch — the first result priced a model this one
		// did not — would otherwise merge silently and skew the
		// reference-weighted averages (the missing tally's Refs never
		// arrive).
		if len(r.Tallies) != len(out.Tallies) {
			return nil, fmt.Errorf("sim: result %q has %d cost models, first has %d",
				r.Trace, len(r.Tallies), len(out.Tallies))
		}
		for name, t := range r.NetTallies {
			dst := out.NetTallies[name]
			if dst == nil {
				return nil, fmt.Errorf("sim: topology %q missing from first result", name)
			}
			dst.Merge(t)
		}
		if len(r.NetTallies) != len(out.NetTallies) {
			return nil, fmt.Errorf("sim: result %q has %d topologies, first has %d",
				r.Trace, len(r.NetTallies), len(out.NetTallies))
		}
	}
	return out, nil
}

// SchemeOverTraces runs one scheme over several traces and returns the
// per-trace results plus their merge.
func SchemeOverTraces(scheme string, traces []*trace.Trace, opts Options) (per []*Result, merged *Result, err error) {
	for _, t := range traces {
		r, err := SimulateTrace(scheme, t, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: %s over %s: %w", scheme, t.Name, err)
		}
		per = append(per, r)
	}
	merged, err = Merge(per...)
	return per, merged, err
}
