package sim

import (
	"testing"

	"dirsim/internal/network"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

func netOpts() Options {
	return Options{Topologies: []network.Topology{network.Crossbar(4), network.Mesh(2, 2)}}
}

func TestSimulateWithTopologies(t *testing.T) {
	tr := workload.PingPong(2000)
	res, err := SimulateTrace("DirNNB", tr, netOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NetTallies) != 2 {
		t.Fatalf("priced %d topologies", len(res.NetTallies))
	}
	for name, tl := range res.NetTallies {
		if tl.Refs != int64(tr.Len()) {
			t.Errorf("%s: %d refs tallied of %d", name, tl.Refs, tr.Len())
		}
		if tl.PerRef() <= 0 {
			t.Errorf("%s: pingpong should cost link cycles", name)
		}
	}
}

func TestMergeNetTallies(t *testing.T) {
	a, err := SimulateTrace("DirNNB", workload.PingPong(500), netOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace("DirNNB", workload.Migratory(4, 4, 50), netOpts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for name := range a.NetTallies {
		want := a.NetTallies[name].CycleUnits + b.NetTallies[name].CycleUnits
		if got := m.NetTallies[name].CycleUnits; got != want {
			t.Errorf("%s: merged %v cycles, want %v", name, got, want)
		}
	}
}

func TestMergeNetTalliesMismatch(t *testing.T) {
	a, err := SimulateTrace("DirNNB", workload.PingPong(100), netOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace("DirNNB", workload.PingPong(100),
		Options{Topologies: []network.Topology{network.Ring(4)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(a, b); err == nil {
		t.Error("merging mismatched topology sets should fail")
	}
}

func TestMergeBusModelMismatch(t *testing.T) {
	a, err := SimulateTrace("Dir0B", workload.PingPong(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace("Dir0B", workload.PingPong(100), netOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The second result carries network tallies the first lacks:
	// merging differently-configured runs must fail loudly rather than
	// silently dropping measurements.
	if _, err := Merge(a, b); err == nil {
		t.Error("merging differently-priced results should fail")
	}
}

func TestSchemeOverTracesErrors(t *testing.T) {
	traces := []*trace.Trace{workload.PingPong(100)}
	if _, _, err := SchemeOverTraces("NotAScheme", traces, Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, _, err := SchemeOverTraces("Dir0B", nil, Options{}); err == nil {
		t.Error("empty trace list should fail (nothing to merge)")
	}
}
