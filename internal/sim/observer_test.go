package sim

import (
	"testing"
	"time"

	"dirsim/internal/workload"
)

// TestSimulateObserver checks the completion hook fires exactly once
// with the reference count actually simulated, and that enabling it does
// not perturb the measured result (results must stay pure functions of
// the reference sequence).
func TestSimulateObserver(t *testing.T) {
	tr := workload.PingPong(2_000)

	var calls int
	var refs int64
	var elapsed time.Duration
	observed, err := SimulateTrace("Dir0B", tr, Options{
		Observer: func(r int64, d time.Duration) {
			calls++
			refs, elapsed = r, d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("observer called %d times, want 1", calls)
	}
	if refs != observed.Counts.Total {
		t.Errorf("observer refs = %d, want %d", refs, observed.Counts.Total)
	}
	if elapsed < 0 {
		t.Errorf("observer elapsed negative: %v", elapsed)
	}

	plain, err := SimulateTrace("Dir0B", tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if observed.Counts != plain.Counts {
		t.Error("observer changed the measured event counts")
	}
	if observed.PerRef("pipelined") != plain.PerRef("pipelined") {
		t.Error("observer changed the measured bus cycles")
	}
}
