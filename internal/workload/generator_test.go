package workload

import (
	"testing"

	"dirsim/internal/trace"
)

func testConfig(seed uint64) Config {
	return Config{Name: "test", CPUs: 4, Refs: 120_000, Seed: seed, Profile: POPSProfile()}
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() < 120_000 {
		t.Errorf("trace too short: %d", tr.Len())
	}
	if tr.Len() > 140_000 {
		t.Errorf("trace overshoots target badly: %d", tr.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
	c, err := Generate(testConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() == c.Len() {
		same := true
		for i := range a.Refs {
			if a.Refs[i] != c.Refs[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := []Config{
		{Name: "x", CPUs: 0, Refs: 100, Profile: POPSProfile()},
		{Name: "x", CPUs: trace.MaxCPUs + 1, Refs: 100, Profile: POPSProfile()},
		{Name: "x", CPUs: 2, Refs: 0, Profile: POPSProfile()},
		{Name: "x", CPUs: 2, Refs: 100}, // zero profile fails validation
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	good := POPSProfile()
	if err := good.Validate(); err != nil {
		t.Fatalf("POPS profile invalid: %v", err)
	}
	mutations := []func(*Profile){
		func(p *Profile) { p.DataPerInstr = 0 },
		func(p *Profile) { p.PrivBlocks = 0 },
		func(p *Profile) { p.SharedObjects = 0 },
		func(p *Profile) { p.ObjBlocks = 0 },
		func(p *Profile) { p.Locks = 0 },
		func(p *Profile) { p.CSMin = 0 },
		func(p *Profile) { p.CSMax = p.CSMin - 1 },
		func(p *Profile) { p.SpinBurst = 0 },
		func(p *Profile) { p.BurstMin = 0 },
		func(p *Profile) { p.BurstMax = p.BurstMin - 1 },
		func(p *Profile) { p.CodeBlocks = 0 },
		func(p *Profile) { p.LoopLen = 0 },
		func(p *Profile) { p.LockRegionBlocks = 0 },
	}
	for i, mutate := range mutations {
		p := POPSProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate the profile", i)
		}
	}
}

func TestGeneratedMix(t *testing.T) {
	// The generated traces must stay near the paper's reference mix.
	for _, tr := range Standard(4, 150_000) {
		s := trace.ComputeStats(tr)
		if instr := s.Pct(s.Instr); instr < 44 || instr > 56 {
			t.Errorf("%s: instruction share %.1f%% out of range", tr.Name, instr)
		}
		if reads := s.Pct(s.Reads); reads < 32 || reads > 50 {
			t.Errorf("%s: read share %.1f%% out of range", tr.Name, reads)
		}
		if writes := s.Pct(s.Writes); writes < 5 || writes > 16 {
			t.Errorf("%s: write share %.1f%% out of range", tr.Name, writes)
		}
	}
}

func TestSpinBehaviourPerApp(t *testing.T) {
	pops := trace.ComputeStats(POPS(4, 150_000))
	thor := trace.ComputeStats(THOR(4, 150_000))
	pero := trace.ComputeStats(PERO(4, 150_000))
	// POPS and THOR spin heavily (paper: about a third of reads).
	for _, s := range []trace.Stats{pops, thor} {
		frac := float64(s.SpinReads) / float64(s.Reads)
		if frac < 0.15 || frac > 0.5 {
			t.Errorf("%s: spin fraction of reads %.2f out of range", s.Name, frac)
		}
	}
	// PERO barely locks at all.
	if frac := float64(pero.SpinReads) / float64(pero.Reads); frac > 0.05 {
		t.Errorf("pero spins too much: %.3f", frac)
	}
	// PERO shares much less than POPS/THOR.
	peroShared := float64(pero.SharedRefs) / float64(pero.Refs)
	popsShared := float64(pops.SharedRefs) / float64(pops.Refs)
	if peroShared > popsShared/2 {
		t.Errorf("pero sharing %.3f not clearly below pops %.3f", peroShared, popsShared)
	}
}

func TestLockProtocolWellFormed(t *testing.T) {
	// Per lock address: acquires and releases must alternate, starting
	// with an acquire, and spins only occur while the lock is held by a
	// different process.
	tr := POPS(4, 150_000)
	type lockState struct {
		held  bool
		owner uint16
	}
	locks := map[trace.Block]*lockState{}
	for i, r := range tr.Refs {
		if r.Kind == trace.Write && r.Flags.Has(trace.FlagAcquire) {
			l := locks[r.Block()]
			if l == nil {
				l = &lockState{}
				locks[r.Block()] = l
			}
			if l.held {
				t.Fatalf("ref %d: acquire of a held lock", i)
			}
			l.held = true
			l.owner = r.Proc
		}
		if r.Flags.Has(trace.FlagRelease) {
			l := locks[r.Block()]
			if l == nil || !l.held {
				t.Fatalf("ref %d: release of a free lock", i)
			}
			if l.owner != r.Proc {
				t.Fatalf("ref %d: release by non-owner", i)
			}
			l.held = false
		}
		if r.Flags.Has(trace.FlagSpin) {
			l := locks[r.Block()]
			if l == nil || !l.held {
				t.Fatalf("ref %d: spin on a free lock", i)
			}
			if l.owner == r.Proc {
				t.Fatalf("ref %d: owner spinning on its own lock", i)
			}
		}
	}
	if len(locks) == 0 {
		t.Fatal("no lock activity generated")
	}
}

func TestProcessPinnedToCPU(t *testing.T) {
	for _, r := range POPS(4, 50_000).Refs {
		if uint16(r.CPU) != r.Proc {
			t.Fatalf("process %d ran on CPU %d", r.Proc, r.CPU)
		}
	}
}

func TestAddressRegionsDisjoint(t *testing.T) {
	// Private regions must never be touched by another process.
	tr := THOR(4, 100_000)
	owner := map[trace.Block]uint16{}
	for i, r := range tr.Refs {
		if r.Addr >= privBase && r.Addr < sharedBase {
			if prev, ok := owner[r.Block()]; ok && prev != r.Proc {
				t.Fatalf("ref %d: private block %#x shared by procs %d and %d",
					i, r.Block(), prev, r.Proc)
			}
			owner[r.Block()] = r.Proc
		}
	}
}

func TestSystemShare(t *testing.T) {
	s := trace.ComputeStats(THOR(4, 150_000))
	if sys := s.Pct(s.System); sys < 2 || sys > 20 {
		t.Errorf("system share %.1f%% far from the paper's ~10%%", sys)
	}
}

func TestMustGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGenerate should panic on a bad config")
		}
	}()
	MustGenerate(Config{})
}
