package workload

import (
	"testing"

	"dirsim/internal/trace"
)

func migratingConfig(rate float64) Config {
	p := POPSProfile()
	p.MigrationRate = rate
	return Config{Name: "mig", CPUs: 4, Refs: 80_000, Seed: 9, Profile: p}
}

func TestNoMigrationPinsProcesses(t *testing.T) {
	tr := MustGenerate(migratingConfig(0))
	for _, r := range tr.Refs {
		if uint16(r.CPU) != r.Proc {
			t.Fatalf("process %d ran on CPU %d without migration enabled", r.Proc, r.CPU)
		}
	}
}

func TestMigrationMovesProcesses(t *testing.T) {
	tr := MustGenerate(migratingConfig(0.01))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	moved := 0
	cpusSeen := map[uint16]map[uint8]struct{}{}
	for _, r := range tr.Refs {
		m := cpusSeen[r.Proc]
		if m == nil {
			m = map[uint8]struct{}{}
			cpusSeen[r.Proc] = m
		}
		m[r.CPU] = struct{}{}
		if uint16(r.CPU) != r.Proc {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("migration rate 0.01 produced no migrated references")
	}
	for proc, cpus := range cpusSeen {
		if len(cpus) < 2 {
			t.Errorf("process %d never migrated", proc)
		}
	}
}

func TestMigrationKeepsCPUsBalanced(t *testing.T) {
	// Swap-based migration preserves one process per CPU, so every CPU
	// should keep issuing a healthy share of the references.
	tr := MustGenerate(migratingConfig(0.02))
	perCPU := make([]int, tr.CPUs)
	for _, r := range tr.Refs {
		perCPU[r.CPU]++
	}
	want := tr.Len() / tr.CPUs
	for cpu, n := range perCPU {
		if n < want/2 || n > want*2 {
			t.Errorf("cpu %d issued %d refs, expected near %d", cpu, n, want)
		}
	}
}

func TestMigrationIncreasesProcessorSharing(t *testing.T) {
	pinned := MustGenerate(migratingConfig(0))
	moving := MustGenerate(migratingConfig(0.01))
	cpuShared := func(tr *trace.Trace) int {
		seen := map[trace.Block]map[uint8]struct{}{}
		for _, r := range tr.Refs {
			if !r.IsData() {
				continue
			}
			m := seen[r.Block()]
			if m == nil {
				m = map[uint8]struct{}{}
				seen[r.Block()] = m
			}
			m[r.CPU] = struct{}{}
		}
		n := 0
		for _, m := range seen {
			if len(m) > 1 {
				n++
			}
		}
		return n
	}
	if cpuShared(moving) <= cpuShared(pinned) {
		t.Error("migration should induce extra processor-level sharing")
	}
}
