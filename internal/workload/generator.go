package workload

import "dirsim/internal/trace"

// generator drives one synthetic run: a set of per-CPU process state
// machines scheduled round-robin with randomized burst lengths, sharing a
// global lock table and shared heap. References are written straight into
// an internal batch buffer and handed to the sink one full batch at a
// time, so the same machinery serves materialized generation (the sink
// appends to a trace) and streaming delivery (the sink feeds a channel)
// without a per-reference callback on the hot path.
type generator struct {
	cfg  Config
	prof Profile
	rng  *rng
	buf  []trace.Ref             // in-flight batch; flushed at cap(buf)
	sink func([]trace.Ref) error // receives each full batch; the slice is reused
	err  error                   // first sink error; aborts generation
	n    int                     // references emitted so far
	stop bool                    // set by flush on sink error

	procs []*proc
	locks []*lockState
}

// flush hands the buffered batch to the sink and resets the buffer. A
// sink error stops generation; the error is surfaced by run's caller.
func (g *generator) flush() {
	if len(g.buf) == 0 || g.err != nil {
		return
	}
	if err := g.sink(g.buf); err != nil {
		g.err = err
		g.stop = true
		return
	}
	g.buf = g.buf[:0]
}

// lockState is one test-and-test-and-set lock and the migratory region it
// guards.
type lockState struct {
	addr      uint64 // lock word (one block)
	guardBase uint64 // protected region base
	held      bool
	owner     int
}

// procMode is the activity a process is engaged in.
type procMode uint8

const (
	modeCompute procMode = iota
	modeSpin             // waiting on a lock
	modeCS               // inside a critical section
)

// proc is one process. By default it is pinned to the CPU of the same
// index (the paper's traces showed negligible process migration and the
// study deliberately classifies sharing per process); a non-zero
// MigrationRate lets processes swap CPUs.
type proc struct {
	id   int
	cpu  int // current CPU (== id unless migration is enabled)
	mode procMode

	pc       uint64 // next instruction address
	pcLeft   int    // fetches until the next jump
	privUsed int    // private working-set blocks touched so far
	lockIdx  int    // lock being waited on / held
	csLeft   int    // critical-section data refs remaining
	csBase   int    // first protected block this critical section visits
	sysBase  int    // locality window base for the current system stretch
	sysLeft  int    // system-stretch data refs remaining
	lastLock int    // affinity: processes tend to reuse locks

	// pendingWrite holds an address just read inside a critical section
	// that may be written next (read-modify-write), matching the paper's
	// observation that most writes land on blocks brought in by a read.
	pendingWrite uint64
	hasPending   bool
}

func newGenerator(cfg Config, batchRefs int, sink func([]trace.Ref) error) *generator {
	g := &generator{
		cfg:  cfg,
		prof: cfg.Profile,
		rng:  newRNG(cfg.Seed),
		buf:  make([]trace.Ref, 0, batchRefs),
		sink: sink,
	}
	g.locks = make([]*lockState, cfg.Profile.Locks)
	for i := range g.locks {
		g.locks[i] = &lockState{
			addr:      lockBase + uint64(i)*trace.BlockBytes,
			guardBase: lockGuard + uint64(i)*uint64(cfg.Profile.LockRegionBlocks)*trace.BlockBytes,
		}
	}
	g.procs = make([]*proc, cfg.CPUs)
	for i := range g.procs {
		g.procs[i] = &proc{
			id:       i,
			cpu:      i,
			pc:       codeBase + uint64(i)*codeStride,
			pcLeft:   cfg.Profile.LoopLen,
			privUsed: 1,
			// Everyone starts attached to the hottest lock; the
			// 40% re-pick in beginLock spreads some load to others
			// while keeping lock 0 heavily contended, as in POPS
			// and THOR.
			lastLock: 0,
		}
	}
	return g
}

// run interleaves the processes until the target length is reached (or
// the sink stops the stream), then flushes the final partial batch.
func (g *generator) run() {
	for g.n < g.cfg.Refs && !g.stop {
		for _, p := range g.procs {
			g.turn(p)
			if g.n >= g.cfg.Refs || g.stop {
				break
			}
		}
	}
	g.flush()
}

// turn lets one process issue a burst of references, possibly migrating
// to another CPU first (swapping places with the process running there,
// so the one-process-per-CPU discipline is preserved).
func (g *generator) turn(p *proc) {
	if g.prof.MigrationRate > 0 && g.rng.chance(g.prof.MigrationRate) && len(g.procs) > 1 {
		other := g.procs[g.rng.intn(len(g.procs))]
		if other != p {
			p.cpu, other.cpu = other.cpu, p.cpu
		}
	}
	if p.mode == modeSpin {
		g.spinTurn(p)
		return
	}
	burst := g.rng.rangeInt(g.prof.BurstMin, g.prof.BurstMax)
	for i := 0; i < burst && p.mode != modeSpin && !g.stop; i++ {
		g.step(p)
	}
}

// emit delivers a reference from p's context, applying the system flag.
// The reference lands directly in the batch buffer; a full buffer is
// flushed to the sink in place, so emission costs one bounds-checked
// append in the common case.
func (g *generator) emit(p *proc, kind trace.Kind, addr uint64, flags trace.Flag) {
	if p.sysLeft > 0 {
		flags |= trace.FlagSystem
	}
	g.buf = append(g.buf, trace.Ref{
		Addr:  addr,
		Proc:  uint16(p.id),
		CPU:   uint8(p.cpu),
		Kind:  kind,
		Flags: flags,
	})
	g.n++
	if len(g.buf) == cap(g.buf) {
		g.flush()
	}
}

// instr issues the instruction fetches that precede a data reference,
// maintaining sequential-with-jumps code locality.
func (g *generator) instr(p *proc) {
	n := 1
	if g.prof.DataPerInstr < 1 {
		// Fewer data refs per instruction → several fetches per datum.
		n = int(1/g.prof.DataPerInstr + 0.5)
	} else if g.prof.DataPerInstr > 1 && g.rng.chance(1-1/g.prof.DataPerInstr) {
		n = 0
	}
	for i := 0; i < n; i++ {
		g.emit(p, trace.Instr, p.pc, 0)
		p.pc += 4
		p.pcLeft--
		if p.pcLeft <= 0 {
			blk := g.rng.intn(g.prof.CodeBlocks)
			p.pc = codeBase + uint64(p.id)*codeStride + uint64(blk)*trace.BlockBytes
			p.pcLeft = g.prof.LoopLen
		}
	}
}

// step issues one instruction/data unit in the process's current mode.
func (g *generator) step(p *proc) {
	switch p.mode {
	case modeCS:
		g.csStep(p)
	default:
		g.computeStep(p)
	}
}

func (g *generator) computeStep(p *proc) {
	g.instr(p)
	if p.sysLeft > 0 {
		g.systemData(p)
		p.sysLeft--
		return
	}
	switch {
	case g.rng.chance(g.prof.LockRate):
		g.beginLock(p)
	case g.rng.chance(g.prof.SysRate):
		p.sysLeft = g.prof.SysLen
		p.sysBase = g.rng.intn(osSharedBlocks - sysWindow + 1)
		g.systemData(p)
	case g.rng.chance(g.prof.SharedFrac):
		g.sharedData(p)
	default:
		g.privateData(p)
	}
}

// privateData touches the process-private working set, growing it slowly
// so first-reference misses are spread through the trace.
func (g *generator) privateData(p *proc) {
	if p.privUsed < g.prof.PrivBlocks && g.rng.chance(g.prof.GrowthRate) {
		p.privUsed++
	}
	blk := g.rng.intn(p.privUsed)
	addr := privBase + uint64(p.id)*privStride + uint64(blk)*trace.BlockBytes +
		uint64(g.rng.intn(trace.BlockBytes/4))*4
	kind := trace.Write
	if g.rng.chance(g.prof.PrivateReadFrac) {
		kind = trace.Read
	}
	g.emit(p, kind, addr, 0)
}

// sharedData touches the read-mostly shared heap with a hot/cold skew.
func (g *generator) sharedData(p *proc) {
	obj := g.rng.zipfish(g.prof.SharedObjects)
	blk := g.rng.intn(g.prof.ObjBlocks)
	addr := sharedBase + (uint64(obj)*uint64(g.prof.ObjBlocks)+uint64(blk))*trace.BlockBytes
	kind := trace.Write
	if g.rng.chance(g.prof.SharedReadFrac) {
		kind = trace.Read
	}
	g.emit(p, kind, addr, trace.FlagShared)
}

// sysWindow is the locality window of one system stretch: a stretch reads
// a small neighbourhood of the shared kernel structures rather than
// striding across all of them, so consecutive system reads mostly hit.
const sysWindow = 8

// systemData models an operating-system stretch: mostly reads of shared
// kernel structures with stretch-local locality, plus occasional updates
// to migratory scheduler state.
func (g *generator) systemData(p *proc) {
	if g.rng.chance(0.06) {
		blk := g.rng.intn(osMigrateBlocks)
		addr := osMigrate + uint64(blk)*trace.BlockBytes
		kind := trace.Write
		if g.rng.chance(0.65) {
			kind = trace.Read
		}
		g.emit(p, kind, addr, trace.FlagShared)
		return
	}
	blk := p.sysBase + g.rng.intn(sysWindow)
	addr := osShared + uint64(blk)*trace.BlockBytes
	g.emit(p, trace.Read, addr, trace.FlagShared)
}

// beginLock starts a critical section: acquire immediately if the lock is
// free, otherwise start spinning.
func (g *generator) beginLock(p *proc) {
	// Lock choice: strong affinity for the previously used lock (data
	// structures are revisited), otherwise a hot/cold skewed pick. The
	// affinity is what makes a handful of locks heavily contended, as in
	// POPS and THOR.
	if !g.rng.chance(0.85) {
		p.lastLock = g.rng.zipfish(g.prof.Locks)
	}
	p.lockIdx = p.lastLock
	l := g.locks[p.lockIdx]
	if l.held {
		p.mode = modeSpin
		g.spinReads(p, l)
		return
	}
	g.acquire(p, l)
}

// spinTurn is one scheduling turn of a waiting process.
func (g *generator) spinTurn(p *proc) {
	l := g.locks[p.lockIdx]
	if l.held {
		g.spinReads(p, l)
		return
	}
	g.acquire(p, l)
	// Continue with a short burst inside the critical section so lock
	// handoff does not consume a whole turn.
	burst := g.rng.rangeInt(g.prof.BurstMin, g.prof.BurstMax)
	for i := 0; i < burst && p.mode == modeCS && !g.stop; i++ {
		g.step(p)
	}
}

// spinReads emits a burst of lock-test reads (the first "test" of
// test-and-test-and-set), flagged so the Section 5.2 filter can remove
// them.
func (g *generator) spinReads(p *proc, l *lockState) {
	for i := 0; i < g.prof.SpinBurst; i++ {
		g.instr(p)
		g.emit(p, trace.Read, l.addr, trace.FlagSpin|trace.FlagShared)
	}
}

// acquire emits the successful test and the test-and-set, and enters the
// critical section.
func (g *generator) acquire(p *proc, l *lockState) {
	g.instr(p)
	g.emit(p, trace.Read, l.addr, trace.FlagAcquire|trace.FlagShared)
	g.instr(p)
	g.emit(p, trace.Write, l.addr, trace.FlagAcquire|trace.FlagShared)
	l.held = true
	l.owner = p.id
	p.mode = modeCS
	p.csLeft = g.rng.rangeInt(g.prof.CSMin, g.prof.CSMax)
	fp := g.csFootprint()
	p.csBase = 0
	if fp < g.prof.LockRegionBlocks {
		p.csBase = g.rng.intn(g.prof.LockRegionBlocks - fp + 1)
	}
}

// csFootprint returns the number of protected blocks one critical section
// visits.
func (g *generator) csFootprint() int {
	fp := g.prof.CSFootprint
	if fp <= 0 || fp > g.prof.LockRegionBlocks {
		fp = g.prof.LockRegionBlocks
	}
	return fp
}

// csStep issues one access inside the critical section, releasing the lock
// when done. Protected data is accessed read-modify-write: a block is read
// first and possibly written on the next step, reproducing the paper's
// observation that most writes land on blocks a read miss brought in.
func (g *generator) csStep(p *proc) {
	l := g.locks[p.lockIdx]
	if p.csLeft > 0 {
		g.instr(p)
		if p.hasPending && g.rng.chance(g.prof.CSWriteFrac) {
			g.emit(p, trace.Write, p.pendingWrite, trace.FlagShared)
			p.hasPending = false
		} else {
			blk := p.csBase + g.rng.intn(g.csFootprint())
			addr := l.guardBase + uint64(blk)*trace.BlockBytes
			g.emit(p, trace.Read, addr, trace.FlagShared)
			p.pendingWrite = addr
			p.hasPending = true
		}
		p.csLeft--
		return
	}
	g.instr(p)
	g.emit(p, trace.Write, l.addr, trace.FlagRelease|trace.FlagShared)
	l.held = false
	p.hasPending = false
	p.mode = modeCompute
}
