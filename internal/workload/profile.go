package workload

import (
	"fmt"

	"dirsim/internal/trace"
)

// Profile parameterizes the behaviour of one synthetic parallel
// application. The defaults in the POPS/THOR/PERO constructors are tuned so
// the generated traces reproduce the structural statistics of the paper's
// Table 3 and Table 4 (reference mix, spin-lock share, sharing intensity).
type Profile struct {
	// DataPerInstr is the average number of data references per
	// instruction fetch; the paper's traces average 1.0.
	DataPerInstr float64
	// PrivateReadFrac is the fraction of private data accesses that are
	// reads.
	PrivateReadFrac float64
	// SharedReadFrac is the fraction of unsynchronized shared-object
	// accesses that are reads. Keep close to 1: writes to widely
	// read-shared data invalidate many caches and the paper's Figure 1
	// shows those are rare.
	SharedReadFrac float64
	// SharedFrac is the probability that a compute-mode data reference
	// targets a shared object rather than private data.
	SharedFrac float64
	// LockRate is the per-data-reference probability of starting a
	// critical section.
	LockRate float64
	// SysRate is the per-data-reference probability of entering an
	// operating-system stretch; together with SysLen it sets the
	// roughly-10% system share of the paper's traces.
	SysRate float64
	// SysLen is the length of a system stretch in data references.
	SysLen int

	// PrivBlocks is the maximum private working set, in blocks, per
	// process. The set grows gradually (see GrowthRate) so
	// first-reference misses are spread through the trace.
	PrivBlocks int
	// GrowthRate is the per-access probability of touching a brand-new
	// private block while the working set is below PrivBlocks.
	GrowthRate float64
	// SharedObjects and ObjBlocks shape the read-shared heap: objects
	// are chosen with a hot/cold skew, blocks within uniformly.
	SharedObjects int
	ObjBlocks     int

	// Locks is the number of lock variables; acquisition is skewed so a
	// few locks are hot and contended. Each lock guards a private
	// migratory region of LockRegionBlocks blocks.
	Locks            int
	LockRegionBlocks int
	// CSMin/CSMax bound critical-section lengths in data references.
	CSMin, CSMax int
	// CSWriteFrac is the fraction of critical-section accesses to the
	// protected region that are writes (migratory read-modify-write).
	CSWriteFrac float64
	// CSFootprint is how many consecutive blocks of the protected
	// region one critical section actually visits (a window chosen at
	// acquire time). Values below LockRegionBlocks give critical
	// sections locality, which keeps the per-CS miss cost realistic.
	// Zero means the whole region.
	CSFootprint int
	// SpinBurst is how many lock-test reads a waiting process issues per
	// scheduling turn; the paper's POPS and THOR spin heavily (about a
	// third of all reads are lock tests).
	SpinBurst int

	// CodeBlocks is the per-process instruction footprint; LoopLen is
	// the number of sequential fetches between jumps.
	CodeBlocks int
	LoopLen    int

	// BurstMin/BurstMax bound the number of data references a process
	// issues per scheduling turn, i.e. the interleaving granularity.
	BurstMin, BurstMax int

	// MigrationRate is the per-turn probability that a process migrates
	// to a different CPU. The paper's traces contained a little
	// migration-induced sharing, which it deliberately excluded by
	// classifying sharing per process; this knob reproduces that
	// phenomenon. Zero (the default) pins processes, making process-
	// and processor-based classifications identical.
	MigrationRate float64
}

// Validate reports the first problem with the profile.
func (p Profile) Validate() error {
	switch {
	case p.DataPerInstr <= 0:
		return fmt.Errorf("workload: DataPerInstr must be positive")
	case p.PrivBlocks < 1:
		return fmt.Errorf("workload: PrivBlocks must be at least 1")
	case p.SharedObjects < 1 || p.ObjBlocks < 1:
		return fmt.Errorf("workload: need at least one shared object and block")
	case p.Locks < 1:
		return fmt.Errorf("workload: need at least one lock")
	case p.CSMin < 1 || p.CSMax < p.CSMin:
		return fmt.Errorf("workload: bad critical section bounds [%d,%d]", p.CSMin, p.CSMax)
	case p.SpinBurst < 1:
		return fmt.Errorf("workload: SpinBurst must be at least 1")
	case p.BurstMin < 1 || p.BurstMax < p.BurstMin:
		return fmt.Errorf("workload: bad burst bounds [%d,%d]", p.BurstMin, p.BurstMax)
	case p.CodeBlocks < 1 || p.LoopLen < 1:
		return fmt.Errorf("workload: bad code shape")
	case p.LockRegionBlocks < 1:
		return fmt.Errorf("workload: LockRegionBlocks must be at least 1")
	}
	return nil
}

// Config identifies one generated trace: a named profile instantiated for
// a machine size, length, and seed.
type Config struct {
	Name    string
	CPUs    int
	Refs    int // approximate total references (the generator stops at or just above this)
	Seed    uint64
	Profile Profile
}

// Address-space layout (byte addresses). Regions are spaced so they can
// never collide for any sane parameter choice.
const (
	codeBase   = 0x0100_0000 // + proc * codeStride
	codeStride = 0x0010_0000
	privBase   = 0x2000_0000 // + proc * privStride
	privStride = 0x0010_0000
	sharedBase = 0x4000_0000
	lockBase   = 0x5000_0000
	lockGuard  = 0x5800_0000 // migratory regions guarded by locks
	osShared   = 0x6000_0000 // read-shared kernel text/data
	osMigrate  = 0x6100_0000 // kernel scheduler state, migratory
)

const (
	osSharedBlocks  = 192
	osMigrateBlocks = 24
)

// Validate reports the first problem with the configuration.
func (cfg Config) Validate() error {
	if cfg.CPUs < 1 || cfg.CPUs > trace.MaxCPUs {
		return fmt.Errorf("workload: cpu count %d out of range", cfg.CPUs)
	}
	if cfg.Refs < 1 {
		return fmt.Errorf("workload: non-positive trace length %d", cfg.Refs)
	}
	return cfg.Profile.Validate()
}

// DefaultBatchRefs is the generator's batch granularity when a caller
// passes a non-positive size: references are buffered and handed to sinks
// this many at a time. It matches the engine's default streaming chunk.
const DefaultBatchRefs = 4096

// Generate synthesizes a trace from the configuration. The result is
// deterministic in cfg.
func Generate(cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := trace.New(cfg.Name, cfg.CPUs)
	t.Refs = make([]trace.Ref, 0, cfg.Refs+cfg.Refs/8)
	g := newGenerator(cfg, DefaultBatchRefs, func(batch []trace.Ref) error {
		t.Refs = append(t.Refs, batch...)
		return nil
	})
	g.run()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid trace: %w", err)
	}
	return t, nil
}

// StreamBatches synthesizes the reference sequence of Generate(cfg) but
// delivers it to emit in batches of up to batchRefs references (the final
// batch may be short; non-positive sizes mean DefaultBatchRefs) instead
// of materializing a trace, so arbitrarily long traces can feed
// simulators in constant memory with no per-reference callback. The batch
// slice is owned by the generator and reused between calls: emit must
// copy or fully consume it before returning. Generation stops early when
// emit returns a non-nil error, which StreamBatches returns unchanged.
func StreamBatches(cfg Config, batchRefs int, emit func([]trace.Ref) error) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if batchRefs <= 0 {
		batchRefs = DefaultBatchRefs
	}
	g := newGenerator(cfg, batchRefs, emit)
	g.run()
	return g.err
}

// Stream is the per-reference form of StreamBatches, kept for consumers
// that inspect references one at a time (analyses, codec writers).
// Generation stops early when emit returns a non-nil error, which Stream
// returns unchanged; emit is never called again after it fails.
func Stream(cfg Config, emit func(trace.Ref) error) error {
	return StreamBatches(cfg, DefaultBatchRefs, func(batch []trace.Ref) error {
		for _, r := range batch {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// MustGenerate is Generate for known-good configurations; it panics on
// error. The app constructors use it.
func MustGenerate(cfg Config) *trace.Trace {
	t, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return t
}
