// Package workload synthesizes multiprocessor address traces that stand in
// for the paper's ATUM traces of real parallel applications (POPS, THOR,
// PERO). The generators are deterministic given a seed and model the
// structural features the evaluation is sensitive to: the
// instruction/read/write mix, per-process private working sets,
// read-shared and migratory shared data, test-and-test-and-set spin locks
// (with their characteristic bursts of lock-test reads), and a slice of
// operating-system activity.
//
// See DESIGN.md for the substitution argument: the downstream evaluation
// depends only on reference-pattern statistics, which these generators are
// tuned to reproduce, not on the instruction sets of the original traces.
package workload

// rng is a small deterministic PRNG (splitmix64) so traces are reproducible
// across Go releases, which the standard library's math/rand does not
// guarantee for a fixed seed.
type rng struct{ state uint64 }

// newRNG returns a generator seeded with seed (0 is remapped so the stream
// is never degenerate).
func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{state: seed}
}

// next returns the next 64 uniformly distributed bits.
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n). n must be positive.
func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("workload: intn with non-positive bound")
	}
	return int(r.next() % uint64(n))
}

// float returns a uniform float64 in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// chance reports true with probability p.
func (r *rng) chance(p float64) bool { return r.float() < p }

// rangeInt returns a uniform integer in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int {
	if hi < lo {
		panic("workload: empty range")
	}
	return lo + r.intn(hi-lo+1)
}

// zipfish returns an index in [0, n) skewed toward small values: index 0
// is hottest, with roughly geometric decay. It is a cheap stand-in for a
// Zipf distribution, adequate for producing hot/cold shared objects.
func (r *rng) zipfish(n int) int {
	if n <= 1 {
		return 0
	}
	// Repeatedly halve the candidate range with probability 1/2.
	hi := n
	for hi > 1 && r.chance(0.5) {
		hi = (hi + 1) / 2
	}
	return r.intn(hi)
}
