package workload

import "testing"

func TestRNGDeterminism(t *testing.T) {
	a, b := newRNG(7), newRNG(7)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same seed must produce the same stream")
		}
	}
	c := newRNG(8)
	same := true
	a = newRNG(7)
	for i := 0; i < 10; i++ {
		if a.next() != c.next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should produce different streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := newRNG(0)
	// A zero seed is remapped; the stream must not be all zeros.
	if r.next() == 0 && r.next() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := newRNG(3)
	for i := 0; i < 10000; i++ {
		if v := r.intn(7); v < 0 || v >= 7 {
			t.Fatalf("intn(7) = %d", v)
		}
	}
	if r.intn(1) != 0 {
		t.Error("intn(1) must be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("intn(0) should panic")
		}
	}()
	r.intn(0)
}

func TestFloatRange(t *testing.T) {
	r := newRNG(5)
	for i := 0; i < 10000; i++ {
		if f := r.float(); f < 0 || f >= 1 {
			t.Fatalf("float() = %v", f)
		}
	}
}

func TestChanceExtremes(t *testing.T) {
	r := newRNG(11)
	for i := 0; i < 100; i++ {
		if r.chance(0) {
			t.Fatal("chance(0) fired")
		}
		if !r.chance(1.1) {
			t.Fatal("chance(>1) must always fire")
		}
	}
}

func TestChanceFrequency(t *testing.T) {
	r := newRNG(13)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.chance(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.28 || got > 0.32 {
		t.Errorf("chance(0.3) frequency = %.3f", got)
	}
}

func TestRangeInt(t *testing.T) {
	r := newRNG(17)
	for i := 0; i < 10000; i++ {
		if v := r.rangeInt(3, 9); v < 3 || v > 9 {
			t.Fatalf("rangeInt = %d", v)
		}
	}
	if r.rangeInt(5, 5) != 5 {
		t.Error("degenerate range should return its only value")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty range should panic")
		}
	}()
	r.rangeInt(5, 4)
}

func TestZipfishSkew(t *testing.T) {
	r := newRNG(19)
	counts := make([]int, 16)
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.zipfish(16)
		if v < 0 || v >= 16 {
			t.Fatalf("zipfish out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[15]*3 {
		t.Errorf("zipfish not skewed: first=%d last=%d", counts[0], counts[15])
	}
	if got := r.zipfish(1); got != 0 {
		t.Errorf("zipfish(1) = %d", got)
	}
	if got := r.zipfish(0); got != 0 {
		t.Errorf("zipfish(0) = %d", got)
	}
}
