package workload

import "dirsim/internal/trace"

// Microkernels: tiny synthetic workloads with exactly known sharing
// behaviour. They are used by the protocol tests (where event counts can
// be predicted in closed form) and by the ablation benchmarks.

// PingPong generates refs references in which two CPUs alternately read
// and then write the same single block — the worst case for Dir1NB and the
// textbook migratory pattern. Each "turn" is one read followed by one
// write by the same CPU.
func PingPong(refs int) *trace.Trace {
	t := trace.New("pingpong", 2)
	const addr = sharedBase
	cpu := uint8(0)
	for t.Len() < refs {
		t.Append(trace.Ref{Addr: addr, Proc: uint16(cpu), CPU: cpu, Kind: trace.Read, Flags: trace.FlagShared})
		t.Append(trace.Ref{Addr: addr, Proc: uint16(cpu), CPU: cpu, Kind: trace.Write, Flags: trace.FlagShared})
		cpu ^= 1
	}
	return t
}

// Migratory generates a token-passing pattern over cpus processors: each
// CPU in turn reads and writes every block of a region of regionBlocks
// blocks, then the region "migrates" to the next CPU. Writes to
// previously-clean blocks always find exactly one remote copy.
func Migratory(cpus, regionBlocks, rounds int) *trace.Trace {
	t := trace.New("migratory", cpus)
	for round := 0; round < rounds; round++ {
		cpu := uint8(round % cpus)
		for b := 0; b < regionBlocks; b++ {
			addr := uint64(sharedBase) + uint64(b)*trace.BlockBytes
			t.Append(trace.Ref{Addr: addr, Proc: uint16(cpu), CPU: cpu, Kind: trace.Read, Flags: trace.FlagShared})
			t.Append(trace.Ref{Addr: addr, Proc: uint16(cpu), CPU: cpu, Kind: trace.Write, Flags: trace.FlagShared})
		}
	}
	return t
}

// ProducerConsumer generates rounds in which CPU 0 writes each block of a
// buffer and every other CPU then reads all of it — the pattern where an
// update protocol shines and writes to clean blocks invalidate cpus-1
// copies.
func ProducerConsumer(cpus, bufferBlocks, rounds int) *trace.Trace {
	t := trace.New("prodcons", cpus)
	for round := 0; round < rounds; round++ {
		for b := 0; b < bufferBlocks; b++ {
			addr := uint64(sharedBase) + uint64(b)*trace.BlockBytes
			t.Append(trace.Ref{Addr: addr, Proc: 0, CPU: 0, Kind: trace.Write, Flags: trace.FlagShared})
		}
		for c := 1; c < cpus; c++ {
			for b := 0; b < bufferBlocks; b++ {
				addr := uint64(sharedBase) + uint64(b)*trace.BlockBytes
				t.Append(trace.Ref{Addr: addr, Proc: uint16(c), CPU: uint8(c), Kind: trace.Read, Flags: trace.FlagShared})
			}
		}
	}
	return t
}

// ReadShared generates a region read repeatedly by every CPU with no
// writes at all after an initializing pass by CPU 0. After the first
// round no coherence traffic of any kind should remain.
func ReadShared(cpus, regionBlocks, rounds int) *trace.Trace {
	t := trace.New("readshared", cpus)
	for b := 0; b < regionBlocks; b++ {
		addr := uint64(sharedBase) + uint64(b)*trace.BlockBytes
		t.Append(trace.Ref{Addr: addr, Proc: 0, CPU: 0, Kind: trace.Write, Flags: trace.FlagShared})
	}
	for round := 0; round < rounds; round++ {
		for c := 0; c < cpus; c++ {
			for b := 0; b < regionBlocks; b++ {
				addr := uint64(sharedBase) + uint64(b)*trace.BlockBytes
				t.Append(trace.Ref{Addr: addr, Proc: uint16(c), CPU: uint8(c), Kind: trace.Read, Flags: trace.FlagShared})
			}
		}
	}
	return t
}

// Private generates a workload with no sharing at all: each CPU reads and
// writes only its own region. Every protocol should see identical, purely
// cold-miss behaviour.
func Private(cpus, blocksPerCPU, refs int) *trace.Trace {
	t := trace.New("private", cpus)
	r := newRNG(uint64(cpus)*1e9 + uint64(blocksPerCPU))
	for t.Len() < refs {
		for c := 0; c < cpus && t.Len() < refs; c++ {
			blk := r.intn(blocksPerCPU)
			addr := privBase + uint64(c)*privStride + uint64(blk)*trace.BlockBytes
			kind := trace.Read
			if r.chance(0.25) {
				kind = trace.Write
			}
			t.Append(trace.Ref{Addr: addr, Proc: uint16(c), CPU: uint8(c), Kind: kind})
		}
	}
	return t
}

// SpinContention generates cpus-1 processors spinning on a lock while CPU
// 0 repeatedly acquires, works, and releases it — a distilled version of
// the POPS/THOR lock behaviour behind the Section 5.2 study.
func SpinContention(cpus, rounds, csLen int) *trace.Trace {
	t := trace.New("spincontend", cpus)
	lock := uint64(lockBase)
	work := uint64(lockGuard)
	for round := 0; round < rounds; round++ {
		// Owner acquires.
		t.Append(trace.Ref{Addr: lock, Proc: 0, CPU: 0, Kind: trace.Read, Flags: trace.FlagAcquire | trace.FlagShared})
		t.Append(trace.Ref{Addr: lock, Proc: 0, CPU: 0, Kind: trace.Write, Flags: trace.FlagAcquire | trace.FlagShared})
		// Waiters spin; owner works.
		for i := 0; i < csLen; i++ {
			for c := 1; c < cpus; c++ {
				t.Append(trace.Ref{Addr: lock, Proc: uint16(c), CPU: uint8(c), Kind: trace.Read, Flags: trace.FlagSpin | trace.FlagShared})
			}
			addr := work + uint64(i%4)*trace.BlockBytes
			t.Append(trace.Ref{Addr: addr, Proc: 0, CPU: 0, Kind: trace.Write, Flags: trace.FlagShared})
		}
		// Owner releases.
		t.Append(trace.Ref{Addr: lock, Proc: 0, CPU: 0, Kind: trace.Write, Flags: trace.FlagRelease | trace.FlagShared})
	}
	return t
}
