package workload

import (
	"testing"

	"dirsim/internal/trace"
)

func TestPingPong(t *testing.T) {
	tr := PingPong(100)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.CPUs != 2 || tr.Len() < 100 {
		t.Fatalf("cpus=%d len=%d", tr.CPUs, tr.Len())
	}
	// Strictly alternating CPU turns of read-then-write on one block.
	b := tr.Refs[0].Block()
	for i, r := range tr.Refs {
		if r.Block() != b {
			t.Fatalf("ref %d touches a second block", i)
		}
		wantKind := trace.Read
		if i%2 == 1 {
			wantKind = trace.Write
		}
		if r.Kind != wantKind {
			t.Fatalf("ref %d kind %v", i, r.Kind)
		}
		wantCPU := uint8(i / 2 % 2)
		if r.CPU != wantCPU {
			t.Fatalf("ref %d on cpu %d, want %d", i, r.CPU, wantCPU)
		}
	}
}

func TestMigratory(t *testing.T) {
	tr := Migratory(4, 8, 12)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 12*8*2 {
		t.Fatalf("len = %d", tr.Len())
	}
	// Each round is a single CPU touching all blocks read+write.
	for round := 0; round < 12; round++ {
		cpu := uint8(round % 4)
		for i := 0; i < 16; i++ {
			r := tr.Refs[round*16+i]
			if r.CPU != cpu {
				t.Fatalf("round %d ref %d on cpu %d", round, i, r.CPU)
			}
		}
	}
}

func TestProducerConsumer(t *testing.T) {
	tr := ProducerConsumer(4, 8, 3)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per round: 8 writes by CPU 0 then 3*8 reads by CPUs 1..3.
	if tr.Len() != 3*(8+3*8) {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < 8; i++ {
		if tr.Refs[i].Kind != trace.Write || tr.Refs[i].CPU != 0 {
			t.Fatalf("ref %d: %v", i, tr.Refs[i])
		}
	}
	for i := 8; i < 32; i++ {
		if tr.Refs[i].Kind != trace.Read || tr.Refs[i].CPU == 0 {
			t.Fatalf("ref %d: %v", i, tr.Refs[i])
		}
	}
}

func TestReadShared(t *testing.T) {
	tr := ReadShared(4, 16, 5)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, r := range tr.Refs {
		if r.Kind == trace.Write {
			writes++
		}
	}
	if writes != 16 {
		t.Errorf("expected exactly the initializing writes, got %d", writes)
	}
}

func TestPrivateNoSharing(t *testing.T) {
	tr := Private(4, 64, 10_000)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	owner := map[trace.Block]uint8{}
	for _, r := range tr.Refs {
		if prev, ok := owner[r.Block()]; ok && prev != r.CPU {
			t.Fatalf("block %#x shared between CPUs %d and %d", r.Block(), prev, r.CPU)
		}
		owner[r.Block()] = r.CPU
	}
}

func TestSpinContention(t *testing.T) {
	tr := SpinContention(4, 50, 6)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	if s.SpinReads == 0 || s.LockWrites == 0 {
		t.Fatalf("kernel generated no lock activity: %+v", s)
	}
	// Spins come from the non-owner CPUs only.
	for i, r := range tr.Refs {
		if r.Flags.Has(trace.FlagSpin) && r.CPU == 0 {
			t.Fatalf("ref %d: owner spinning", i)
		}
	}
}
