package workload

import "dirsim/internal/trace"

// The three application models below correspond to the paper's traces
// (Table 3). Parameter values are tuned so that, at 4 CPUs, the generated
// traces land near the paper's published reference mix and event
// frequencies: about half instruction fetches, a 4:1 read/write ratio,
// roughly a third of POPS/THOR reads being lock-test spins, and PERO
// sharing far less than the other two.

// POPSProfile models POPS, a parallel implementation of the OPS5
// rule-based language: processes match rules against a shared working
// memory (read-mostly heap) and serialize updates through a small set of
// hot locks, spinning heavily while they wait.
func POPSProfile() Profile {
	return Profile{
		DataPerInstr:     1.0,
		PrivateReadFrac:  0.45,
		SharedReadFrac:   0.995,
		SharedFrac:       0.10,
		LockRate:         0.022,
		SysRate:          0.009,
		SysLen:           22,
		PrivBlocks:       700,
		GrowthRate:       0.012,
		SharedObjects:    48,
		ObjBlocks:        8,
		Locks:            4,
		LockRegionBlocks: 16,
		CSMin:            60,
		CSMax:            120,
		CSWriteFrac:      0.12,
		CSFootprint:      4,
		SpinBurst:        3,
		CodeBlocks:       256,
		LoopLen:          12,
		BurstMin:         2,
		BurstMax:         6,
	}
}

// THORProfile models THOR, a parallel logic simulator: a migratory event
// wheel protected by locks (more write-intensive critical sections than
// POPS), a widely read-shared netlist, and the same heavy spinning the
// paper reports.
func THORProfile() Profile {
	return Profile{
		DataPerInstr:     1.05,
		PrivateReadFrac:  0.48,
		SharedReadFrac:   0.99,
		SharedFrac:       0.13,
		LockRate:         0.020,
		SysRate:          0.010,
		SysLen:           25,
		PrivBlocks:       550,
		GrowthRate:       0.012,
		SharedObjects:    64,
		ObjBlocks:        6,
		Locks:            3,
		LockRegionBlocks: 20,
		CSMin:            50,
		CSMax:            110,
		CSWriteFrac:      0.18,
		CSFootprint:      5,
		SpinBurst:        3,
		CodeBlocks:       320,
		LoopLen:          10,
		BurstMin:         2,
		BurstMax:         6,
	}
}

// PEROProfile models PERO, a parallel VLSI router: each process routes in
// a mostly-private region of the grid, so sharing is light, locks are
// rarely contended, and the read ratio is high by algorithm rather than by
// spinning.
func PEROProfile() Profile {
	return Profile{
		DataPerInstr:     0.95,
		PrivateReadFrac:  0.80,
		SharedReadFrac:   0.998,
		SharedFrac:       0.05,
		LockRate:         0.0015,
		SysRate:          0.004,
		SysLen:           20,
		PrivBlocks:       900,
		GrowthRate:       0.015,
		SharedObjects:    32,
		ObjBlocks:        8,
		Locks:            8,
		LockRegionBlocks: 8,
		CSMin:            10,
		CSMax:            30,
		CSWriteFrac:      0.25,
		CSFootprint:      3,
		SpinBurst:        3,
		CodeBlocks:       384,
		LoopLen:          14,
		BurstMin:         3,
		BurstMax:         8,
	}
}

// Seeds chosen once; fixed so every run of the experiments regenerates the
// identical traces.
// Exported so tools can reproduce the standard traces from a Config.
const (
	SeedPOPS = 0x5e15_0001
	SeedTHOR = 0x5e15_0002
	SeedPERO = 0x5e15_0003
)

// ScaleProfile adapts a 4-CPU application profile to a larger machine:
// locks and shared objects grow with the processor count (a real
// application run at 64 processors partitions its work and its
// synchronization), so per-lock contention stays in the regime the 4-CPU
// profiles were tuned for rather than becoming a 63-way spin storm. At 4
// CPUs or below the profile is returned unchanged, preserving the
// headline traces exactly.
func ScaleProfile(p Profile, cpus int) Profile {
	if cpus <= 4 {
		return p
	}
	factor := cpus / 4
	p.Locks *= factor
	p.SharedObjects *= factor
	return p
}

// POPSConfig is the generation configuration of the standard POPS trace;
// the configuration (not the materialized trace) is what identifies a
// workload to the execution engine's content-addressed caches.
func POPSConfig(cpus, refs int) Config {
	return Config{Name: "pops", CPUs: cpus, Refs: refs, Seed: SeedPOPS,
		Profile: ScaleProfile(POPSProfile(), cpus)}
}

// THORConfig is the generation configuration of the standard THOR trace.
func THORConfig(cpus, refs int) Config {
	return Config{Name: "thor", CPUs: cpus, Refs: refs, Seed: SeedTHOR,
		Profile: ScaleProfile(THORProfile(), cpus)}
}

// PEROConfig is the generation configuration of the standard PERO trace.
func PEROConfig(cpus, refs int) Config {
	return Config{Name: "pero", CPUs: cpus, Refs: refs, Seed: SeedPERO,
		Profile: ScaleProfile(PEROProfile(), cpus)}
}

// StandardConfigs returns the configurations of the three paper traces at
// the given size, in paper order.
func StandardConfigs(cpus, refs int) []Config {
	return []Config{POPSConfig(cpus, refs), THORConfig(cpus, refs), PEROConfig(cpus, refs)}
}

// POPS generates the POPS-like trace.
func POPS(cpus, refs int) *trace.Trace { return MustGenerate(POPSConfig(cpus, refs)) }

// THOR generates the THOR-like trace.
func THOR(cpus, refs int) *trace.Trace { return MustGenerate(THORConfig(cpus, refs)) }

// PERO generates the PERO-like trace.
func PERO(cpus, refs int) *trace.Trace { return MustGenerate(PEROConfig(cpus, refs)) }

// Standard returns the three paper traces at the given size. The headline
// experiments use cpus = 4 to match the ATUM machine.
func Standard(cpus, refs int) []*trace.Trace {
	return []*trace.Trace{POPS(cpus, refs), THOR(cpus, refs), PERO(cpus, refs)}
}
