package workload

import (
	"errors"
	"reflect"
	"testing"

	"dirsim/internal/trace"
)

// TestStreamEquivalentToGenerate: Stream must emit exactly the reference
// sequence Generate materializes — the execution engine's streamed and
// materialized delivery modes rest on this.
func TestStreamEquivalentToGenerate(t *testing.T) {
	for _, cfg := range StandardConfigs(4, 20_000) {
		want := MustGenerate(cfg)
		var got []trace.Ref
		if err := Stream(cfg, func(r trace.Ref) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(got, want.Refs) {
			t.Errorf("%s: streamed sequence differs from generated trace", cfg.Name)
		}
	}
}

// TestStreamEarlyStop: an emit error must stop generation promptly and
// surface unchanged from Stream.
func TestStreamEarlyStop(t *testing.T) {
	stop := errors.New("enough")
	const limit = 1000
	n := 0
	err := Stream(POPSConfig(4, 100_000), func(trace.Ref) error {
		n++
		if n >= limit {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("Stream error = %v, want the emit error", err)
	}
	// The generator may finish its current burst but must not run on to
	// the configured length.
	if n < limit || n > limit+100 {
		t.Errorf("emitted %d refs; want to stop at ~%d", n, limit)
	}
}

// TestStreamBatchesEquivalentToGenerate: batched delivery must emit the
// identical reference sequence for every batch size, including sizes that
// never divide the trace length.
func TestStreamBatchesEquivalentToGenerate(t *testing.T) {
	cfg := POPSConfig(4, 20_000)
	want := MustGenerate(cfg)
	for _, batch := range []int{1, 7, 1024, 1 << 20, 0} {
		var got []trace.Ref
		maxBatch := 0
		if err := StreamBatches(cfg, batch, func(b []trace.Ref) error {
			if len(b) > maxBatch {
				maxBatch = len(b)
			}
			got = append(got, b...) // copy: the slice is reused
			return nil
		}); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !reflect.DeepEqual(got, want.Refs) {
			t.Errorf("batch %d: streamed sequence differs from generated trace", batch)
		}
		if limit := batch; limit > 0 && maxBatch > limit {
			t.Errorf("batch %d: received a %d-reference batch", batch, maxBatch)
		}
	}
}

// TestStreamBatchesEarlyStop: a sink error must stop generation promptly
// and surface unchanged.
func TestStreamBatchesEarlyStop(t *testing.T) {
	stop := errors.New("enough")
	n := 0
	err := StreamBatches(POPSConfig(4, 100_000), 512, func(b []trace.Ref) error {
		n += len(b)
		if n >= 2048 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("StreamBatches error = %v, want the sink error", err)
	}
	if n < 2048 || n > 2048+512 {
		t.Errorf("received %d refs; want to stop at ~2048", n)
	}
}

func TestStreamRejectsInvalidConfig(t *testing.T) {
	bad := POPSConfig(0, 10_000)
	if err := Stream(bad, func(trace.Ref) error { return nil }); err == nil {
		t.Error("Stream accepted a zero-CPU config")
	}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a zero-CPU config")
	}
}
