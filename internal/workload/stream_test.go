package workload

import (
	"errors"
	"reflect"
	"testing"

	"dirsim/internal/trace"
)

// TestStreamEquivalentToGenerate: Stream must emit exactly the reference
// sequence Generate materializes — the execution engine's streamed and
// materialized delivery modes rest on this.
func TestStreamEquivalentToGenerate(t *testing.T) {
	for _, cfg := range StandardConfigs(4, 20_000) {
		want := MustGenerate(cfg)
		var got []trace.Ref
		if err := Stream(cfg, func(r trace.Ref) error {
			got = append(got, r)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(got, want.Refs) {
			t.Errorf("%s: streamed sequence differs from generated trace", cfg.Name)
		}
	}
}

// TestStreamEarlyStop: an emit error must stop generation promptly and
// surface unchanged from Stream.
func TestStreamEarlyStop(t *testing.T) {
	stop := errors.New("enough")
	const limit = 1000
	n := 0
	err := Stream(POPSConfig(4, 100_000), func(trace.Ref) error {
		n++
		if n >= limit {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("Stream error = %v, want the emit error", err)
	}
	// The generator may finish its current burst but must not run on to
	// the configured length.
	if n < limit || n > limit+100 {
		t.Errorf("emitted %d refs; want to stop at ~%d", n, limit)
	}
}

func TestStreamRejectsInvalidConfig(t *testing.T) {
	bad := POPSConfig(0, 10_000)
	if err := Stream(bad, func(trace.Ref) error { return nil }); err == nil {
		t.Error("Stream accepted a zero-CPU config")
	}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a zero-CPU config")
	}
}
