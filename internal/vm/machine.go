package vm

import (
	"fmt"

	"dirsim/internal/trace"
)

// Machine executes one program per CPU against a shared word-addressed
// memory, emitting a multiprocessor trace as it runs. Scheduling is
// deterministic: round-robin turns whose lengths come from a seeded PRNG,
// mirroring the interleaving granularity of the workload generators.
type Machine struct {
	// Programs holds one program per CPU (they may share one *Program).
	Programs []*Program
	// Seed drives the deterministic turn-length scheduler.
	Seed uint64
	// TurnMin/TurnMax bound instructions per scheduling turn
	// (defaults 2 and 6).
	TurnMin, TurnMax int
	// MaxSteps bounds total executed instructions, guarding against
	// livelock in buggy programs (default 4,000,000).
	MaxSteps int
	// InitMem pre-seeds the shared memory (copied, not aliased).
	InitMem Memory
}

// Memory is the shared memory state after a run.
type Memory map[Word]Word

// cpuState is one processor's execution context.
type cpuState struct {
	prog *Program
	pc   int
	reg  [NumRegs]Word
	done bool
	// spinning marks that the CPU's last TAS failed, so its polling
	// loads are flagged as lock-test spins in the trace.
	spinning bool
}

// memBase is where VM data lives in the trace address space; code for CPU
// c occupies codeBase + c*codeStride, matching the workload layout.
const (
	vmDataBase   = 0x7000_0000
	vmCodeBase   = 0x0100_0000
	vmCodeStride = 0x0010_0000
)

// addrOf maps a VM word address to a trace byte address.
func addrOf(w Word) uint64 { return vmDataBase + uint64(w)*8 }

// Run executes until every CPU halts (or MaxSteps is hit, which is an
// error). It returns the emitted trace and the final shared memory.
func (m *Machine) Run() (*trace.Trace, Memory, error) {
	n := len(m.Programs)
	if n == 0 || n > trace.MaxCPUs {
		return nil, nil, fmt.Errorf("vm: bad CPU count %d", n)
	}
	turnMin, turnMax := m.TurnMin, m.TurnMax
	if turnMin <= 0 {
		turnMin = 2
	}
	if turnMax < turnMin {
		turnMax = turnMin + 4
	}
	maxSteps := m.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4_000_000
	}
	cpus := make([]*cpuState, n)
	for i, p := range m.Programs {
		if p == nil || len(p.Code) == 0 {
			return nil, nil, fmt.Errorf("vm: cpu %d has no program", i)
		}
		if err := p.link(); err != nil {
			return nil, nil, err
		}
		st := &cpuState{prog: p}
		st.reg[7] = Word(i) // r7 is preloaded with the CPU id
		cpus[i] = st
	}
	mem := Memory{}
	for k, v := range m.InitMem {
		mem[k] = v
	}
	t := trace.New("vm", n)
	rng := m.Seed
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15
	}
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	steps := 0
	for {
		active := false
		for c, st := range cpus {
			if st.done {
				continue
			}
			active = true
			turn := turnMin + int(next()%uint64(turnMax-turnMin+1))
			for i := 0; i < turn && !st.done; i++ {
				if steps >= maxSteps {
					return nil, nil, fmt.Errorf("vm: exceeded %d steps (livelock?)", maxSteps)
				}
				steps++
				if err := m.step(uint8(c), st, mem, t); err != nil {
					return nil, nil, err
				}
			}
		}
		if !active {
			break
		}
	}
	if err := t.Validate(); err != nil {
		return nil, nil, fmt.Errorf("vm: emitted invalid trace: %w", err)
	}
	return t, mem, nil
}

// step executes one instruction for CPU c.
func (m *Machine) step(c uint8, st *cpuState, mem Memory, t *trace.Trace) error {
	if st.pc < 0 || st.pc >= len(st.prog.Code) {
		return fmt.Errorf("vm: cpu %d pc %d out of range", c, st.pc)
	}
	// Instruction fetch.
	t.Append(trace.Ref{
		Addr: vmCodeBase + uint64(c)*vmCodeStride + uint64(st.pc)*4,
		CPU:  c, Proc: uint16(c), Kind: trace.Instr,
	})
	ins := st.prog.Code[st.pc]
	st.pc++
	switch ins.Op {
	case OpLdi:
		st.reg[ins.A] = ins.Imm
	case OpMov:
		st.reg[ins.A] = st.reg[ins.B]
	case OpAdd:
		st.reg[ins.A] = st.reg[ins.B] + st.reg[ins.C]
	case OpSub:
		st.reg[ins.A] = st.reg[ins.B] - st.reg[ins.C]
	case OpMul:
		st.reg[ins.A] = st.reg[ins.B] * st.reg[ins.C]
	case OpAnd:
		st.reg[ins.A] = st.reg[ins.B] & st.reg[ins.C]
	case OpLd:
		addr := st.reg[ins.B] + ins.Imm
		flags := trace.Flag(0)
		if st.spinning {
			flags |= trace.FlagSpin | trace.FlagShared
		}
		t.Append(trace.Ref{Addr: addrOf(addr), CPU: c, Proc: uint16(c), Kind: trace.Read, Flags: flags})
		st.reg[ins.A] = mem[addr]
	case OpSt:
		addr := st.reg[ins.B] + ins.Imm
		t.Append(trace.Ref{Addr: addrOf(addr), CPU: c, Proc: uint16(c), Kind: trace.Write})
		mem[addr] = st.reg[ins.A]
		st.spinning = false
	case OpTas:
		addr := st.reg[ins.B] + ins.Imm
		old := mem[addr]
		t.Append(trace.Ref{Addr: addrOf(addr), CPU: c, Proc: uint16(c), Kind: trace.Read,
			Flags: trace.FlagAcquire | trace.FlagShared})
		t.Append(trace.Ref{Addr: addrOf(addr), CPU: c, Proc: uint16(c), Kind: trace.Write,
			Flags: trace.FlagAcquire | trace.FlagShared})
		mem[addr] = 1
		st.reg[ins.A] = old
		// A failed TAS means the CPU is about to poll: flag its loads.
		st.spinning = old != 0
	case OpFai:
		addr := st.reg[ins.B] + ins.Imm
		old := mem[addr]
		t.Append(trace.Ref{Addr: addrOf(addr), CPU: c, Proc: uint16(c), Kind: trace.Read,
			Flags: trace.FlagAcquire | trace.FlagShared})
		t.Append(trace.Ref{Addr: addrOf(addr), CPU: c, Proc: uint16(c), Kind: trace.Write,
			Flags: trace.FlagAcquire | trace.FlagShared})
		mem[addr] = old + 1
		st.reg[ins.A] = old
	case OpBz:
		if st.reg[ins.A] == 0 {
			st.pc = int(ins.Imm)
		}
	case OpBnz:
		if st.reg[ins.A] != 0 {
			st.pc = int(ins.Imm)
		}
	case OpJmp:
		st.pc = int(ins.Imm)
	case OpDone:
		st.done = true
	default:
		return fmt.Errorf("vm: cpu %d: bad opcode %d", c, ins.Op)
	}
	return nil
}
