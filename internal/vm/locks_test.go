package vm

import (
	"testing"

	"dirsim/internal/sim"
)

func TestTicketCounterMutualExclusion(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		const iters = 40
		m := &Machine{Programs: sameProgram(TicketCounter(iters), cpus), Seed: uint64(cpus) + 100}
		_, mem, err := m.Run()
		if err != nil {
			t.Fatalf("%d cpus: %v", cpus, err)
		}
		if mem[8] != Word(cpus*iters) {
			t.Errorf("%d cpus: counter = %d, want %d", cpus, mem[8], cpus*iters)
		}
		// Tickets issued == acquisitions; now-serving catches up.
		if mem[0] != Word(cpus*iters) || mem[1] != Word(cpus*iters) {
			t.Errorf("%d cpus: tickets %d served %d", cpus, mem[0], mem[1])
		}
	}
}

func TestAndersonCounterMutualExclusion(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8} {
		const iters = 40
		m := &Machine{
			Programs: sameProgram(AndersonCounter(iters, 16), cpus),
			InitMem:  InitAndersonMemory(),
			Seed:     uint64(cpus) + 200,
		}
		_, mem, err := m.Run()
		if err != nil {
			t.Fatalf("%d cpus: %v", cpus, err)
		}
		if mem[8] != Word(cpus*iters) {
			t.Errorf("%d cpus: counter = %d, want %d", cpus, mem[8], cpus*iters)
		}
	}
}

func TestAndersonRejectsBadSlotCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two slot count accepted")
		}
	}()
	AndersonCounter(10, 12)
}

func TestQueueLockTracesAreCoherent(t *testing.T) {
	progs := map[string]*Machine{
		"ticket": {Programs: sameProgram(TicketCounter(60), 4), Seed: 31},
		"anderson": {Programs: sameProgram(AndersonCounter(60, 8), 4),
			InitMem: InitAndersonMemory(), Seed: 32},
	}
	for name, m := range progs {
		tr, _, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, scheme := range []string{"Dir1NB", "Dir0B", "DirNNB", "Dragon", "MESI"} {
			if _, err := sim.SimulateTrace(scheme, tr, sim.Options{Check: true}); err != nil {
				t.Errorf("%s under %s: %v", name, scheme, err)
			}
		}
	}
}

// TestLocalSpinningFixesDir1NB is the queue-lock payoff, stated as the
// paper would: under Dir1NB, waiters spinning on a shared word steal the
// block from each other on every test, while Anderson's per-waiter slots
// spin locally. Same work, same iterations — far fewer misses.
func TestLocalSpinningFixesDir1NB(t *testing.T) {
	const cpus, iters = 4, 120
	run := func(prog *Program, init Memory, seed uint64) float64 {
		m := &Machine{Programs: sameProgram(prog, cpus), InitMem: init, Seed: seed}
		tr, mem, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if mem[8] != Word(cpus*iters) {
			t.Fatalf("lost updates: %d", mem[8])
		}
		r, err := sim.SimulateTrace("Dir1NB", tr, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r.Counts.ReadMisses()
	}
	tas := run(LockedCounter(iters), nil, 41)
	anderson := run(AndersonCounter(iters, 8), InitAndersonMemory(), 43)
	if anderson*1.5 > tas {
		t.Errorf("local spinning should cut Dir1NB read misses: TAS %.2f%% vs Anderson %.2f%%",
			tas, anderson)
	}
}
