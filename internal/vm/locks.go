package vm

// Alternative lock algorithms for the same locked-counter workload as
// LockedCounter, enabling a lock-algorithm comparison on identical work:
// the paper's Section 5.2 shows test-and-test-and-set spinning is what
// breaks Dir1NB; ticket and array (Anderson) queue locks change *where*
// the waiting loads land and therefore how much coherence traffic waiting
// costs.
//
// Shared memory layout for both (word addresses):
//
//	0: next-ticket counter (fetch-and-increment)
//	1: now-serving (ticket) / unused (array)
//	8: the protected counter
//	32+: the Anderson lock's slot array (slot i at word 32+i)

// TicketCounter increments the shared counter at word 8 under a ticket
// lock: acquire = fetch-and-increment of next-ticket (word 0), then spin
// until now-serving (word 1) equals the ticket; release = now-serving++.
// All waiters spin on the same word, so every release still invalidates
// every waiter, but the TAS retry storm is gone.
func TicketCounter(iters Word) *Program {
	p := NewProgram("ticket")
	const (
		rIter   = 1
		rTicket = 2
		rTmp    = 3
		rOne    = 4
		rZero   = 5
	)
	p.Ldi(rIter, iters).
		Ldi(rOne, 1).
		Ldi(rZero, 0)
	p.Label("loop").
		Fai(rTicket, rZero, 0) // take a ticket
	p.Label("wait").
		Ld(rTmp, rZero, 1). // now-serving
		Sub(rTmp, rTmp, rTicket).
		Bnz(rTmp, "wait").
		// Critical section.
		Ld(rTmp, rZero, 8).
		Add(rTmp, rTmp, rOne).
		St(rTmp, rZero, 8).
		// Release: now-serving++ (single writer: the lock holder).
		Ld(rTmp, rZero, 1).
		Add(rTmp, rTmp, rOne).
		St(rTmp, rZero, 1).
		Sub(rIter, rIter, rOne).
		Bnz(rIter, "loop").
		Done()
	return p
}

// AndersonCounter increments the shared counter at word 8 under an
// array-based queue lock (Anderson): each acquirer takes a slot index by
// fetch-and-increment mod nslots and spins on its *own* slot word, so
// waiting generates no coherence traffic at all after the first read —
// the fix for the lock pathology the paper measures. The releaser writes
// the next slot, transferring the lock with exactly one invalidation.
// nslots must be a power of two at least the CPU count; slot i lives at
// word 32+i, one per cache block (slots are spaced 2 words = 16 bytes
// apart so two slots never share a block).
func AndersonCounter(iters, nslots Word) *Program {
	if nslots <= 0 || nslots&(nslots-1) != 0 {
		panic("vm: AndersonCounter requires a power-of-two slot count")
	}
	p := NewProgram("anderson")
	const (
		rIter = 1
		rSlot = 2
		rTmp  = 3
		rOne  = 4
		rZero = 5
		rAddr = 6
	)
	p.Ldi(rIter, iters).
		Ldi(rOne, 1).
		Ldi(rZero, 0)
	// Slot 0 starts "open": the machine's zero-filled memory means all
	// slots read 0, and we treat 0 as "go" for slot 0 only by seeding it
	// via InitAndersonMemory (slot words hold 1 when it is the owner's
	// turn).
	p.Label("loop").
		Fai(rSlot, rZero, 0). // my queue position
		// rAddr = 32 + 2*(slot & (nslots-1)): my slot word.
		Ldi(rTmp, nslots-1).
		And(rSlot, rSlot, rTmp).
		Add(rAddr, rSlot, rSlot). // 2*slot
		Ldi(rTmp, 32).
		Add(rAddr, rAddr, rTmp)
	p.Label("await").
		Ld(rTmp, rAddr, 0). // spin on MY slot
		Bz(rTmp, "await").
		// Got the lock: clear my slot for its next use.
		St(rZero, rAddr, 0).
		// Critical section.
		Ld(rTmp, rZero, 8).
		Add(rTmp, rTmp, rOne).
		St(rTmp, rZero, 8).
		// Release: set the next slot. next = 32 + 2*((slot+1) & mask).
		Add(rSlot, rSlot, rOne).
		Ldi(rTmp, nslots-1).
		And(rSlot, rSlot, rTmp).
		Add(rAddr, rSlot, rSlot).
		Ldi(rTmp, 32).
		Add(rAddr, rAddr, rTmp).
		St(rOne, rAddr, 0).
		Sub(rIter, rIter, rOne).
		Bnz(rIter, "loop").
		Done()
	return p
}

// InitAndersonMemory opens slot 0 so the first acquirer proceeds.
func InitAndersonMemory() Memory {
	return Memory{32: 1}
}
