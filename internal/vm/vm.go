// Package vm is an execution-driven multiprocessor simulator: a small
// register machine runs one program per CPU against a shared memory, and
// every instruction fetch, load, store, and atomic emits a trace
// reference. This is the style of tracing the paper names as its future
// work ("a multiprocessor simulator that builds on top of the VAX T-bit
// mechanism and can provide accurate simulated traces of a much larger
// number of processors") — where internal/workload synthesizes reference
// patterns statistically, vm derives them from real synchronization
// algorithms actually executing, with final memory state available as an
// end-to-end correctness check.
//
// The machine is deliberately tiny: eight registers, word-addressed
// memory, test-and-set as the only atomic. Programs are built with the
// Program builder (a label-resolving assembler).
package vm

import "fmt"

// Word is the machine word.
type Word int64

// NumRegs is the register-file size.
const NumRegs = 8

// Opcode enumerates the instruction set.
type Opcode uint8

const (
	// OpLdi loads an immediate: r[A] = Imm.
	OpLdi Opcode = iota
	// OpMov copies: r[A] = r[B].
	OpMov
	// OpAdd: r[A] = r[B] + r[C].
	OpAdd
	// OpSub: r[A] = r[B] - r[C].
	OpSub
	// OpMul: r[A] = r[B] * r[C].
	OpMul
	// OpAnd: r[A] = r[B] & r[C].
	OpAnd
	// OpLd loads from memory: r[A] = mem[r[B] + Imm]. Emits a read.
	OpLd
	// OpSt stores to memory: mem[r[B] + Imm] = r[A]. Emits a write.
	OpSt
	// OpTas is test-and-set: r[A] = mem[r[B]+Imm]; mem[r[B]+Imm] = 1,
	// atomically. Emits a read then a write (flagged as an acquire).
	OpTas
	// OpFai is fetch-and-increment: r[A] = mem[r[B]+Imm]; mem[r[B]+Imm]++,
	// atomically. Emits a read then a write (flagged as an acquire).
	OpFai
	// OpBz branches to Imm when r[A] == 0.
	OpBz
	// OpBnz branches to Imm when r[A] != 0.
	OpBnz
	// OpJmp jumps to Imm.
	OpJmp
	// OpDone halts the CPU.
	OpDone
)

var opNames = map[Opcode]string{
	OpLdi: "ldi", OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and",
	OpLd: "ld", OpSt: "st", OpTas: "tas", OpFai: "fai",
	OpBz: "bz", OpBnz: "bnz", OpJmp: "jmp", OpDone: "done",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. A, B, C name registers; Imm is an immediate,
// address offset, or branch target depending on the opcode.
type Instr struct {
	Op      Opcode
	A, B, C uint8
	Imm     Word
}

// Program is an instruction sequence with label support.
type Program struct {
	Name   string
	Code   []Instr
	labels map[string]int
	// fixups records instructions whose Imm must be patched to a label.
	fixups map[int]string
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, labels: map[string]int{}, fixups: map[int]string{}}
}

// Label marks the next instruction's position.
func (p *Program) Label(name string) *Program {
	p.labels[name] = len(p.Code)
	return p
}

// emit appends an instruction.
func (p *Program) emit(i Instr) *Program {
	p.Code = append(p.Code, i)
	return p
}

// Ldi, Mov, Add, Sub, Ld, St, Tas append the corresponding instruction.
func (p *Program) Ldi(r uint8, v Word) *Program { return p.emit(Instr{Op: OpLdi, A: r, Imm: v}) }
func (p *Program) Mov(dst, src uint8) *Program  { return p.emit(Instr{Op: OpMov, A: dst, B: src}) }
func (p *Program) Add(dst, a, b uint8) *Program { return p.emit(Instr{Op: OpAdd, A: dst, B: a, C: b}) }
func (p *Program) Sub(dst, a, b uint8) *Program { return p.emit(Instr{Op: OpSub, A: dst, B: a, C: b}) }
func (p *Program) Mul(dst, a, b uint8) *Program { return p.emit(Instr{Op: OpMul, A: dst, B: a, C: b}) }
func (p *Program) And(dst, a, b uint8) *Program { return p.emit(Instr{Op: OpAnd, A: dst, B: a, C: b}) }
func (p *Program) Ld(dst, base uint8, off Word) *Program {
	return p.emit(Instr{Op: OpLd, A: dst, B: base, Imm: off})
}
func (p *Program) St(src, base uint8, off Word) *Program {
	return p.emit(Instr{Op: OpSt, A: src, B: base, Imm: off})
}
func (p *Program) Tas(dst, base uint8, off Word) *Program {
	return p.emit(Instr{Op: OpTas, A: dst, B: base, Imm: off})
}
func (p *Program) Fai(dst, base uint8, off Word) *Program {
	return p.emit(Instr{Op: OpFai, A: dst, B: base, Imm: off})
}

// Bz, Bnz and Jmp append branches to a label (resolved at Run time).
func (p *Program) Bz(r uint8, label string) *Program {
	p.fixups[len(p.Code)] = label
	return p.emit(Instr{Op: OpBz, A: r})
}
func (p *Program) Bnz(r uint8, label string) *Program {
	p.fixups[len(p.Code)] = label
	return p.emit(Instr{Op: OpBnz, A: r})
}
func (p *Program) Jmp(label string) *Program {
	p.fixups[len(p.Code)] = label
	return p.emit(Instr{Op: OpJmp})
}

// Done appends a halt.
func (p *Program) Done() *Program { return p.emit(Instr{Op: OpDone}) }

// link resolves label fixups. It returns an error for unknown labels.
func (p *Program) link() error {
	for pos, label := range p.fixups {
		target, ok := p.labels[label]
		if !ok {
			return fmt.Errorf("vm: program %q: undefined label %q", p.Name, label)
		}
		p.Code[pos].Imm = Word(target)
	}
	return nil
}
