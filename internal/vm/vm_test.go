package vm

import (
	"strings"
	"testing"

	"dirsim/internal/core"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
)

func sameProgram(p *Program, n int) []*Program {
	out := make([]*Program, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestOpcodeString(t *testing.T) {
	if OpTas.String() != "tas" || OpLdi.String() != "ldi" {
		t.Error("mnemonics wrong")
	}
	if !strings.Contains(Opcode(99).String(), "99") {
		t.Error("unknown opcode formatting")
	}
}

func TestLinkErrors(t *testing.T) {
	p := NewProgram("bad")
	p.Jmp("nowhere").Done()
	m := &Machine{Programs: []*Program{p}}
	if _, _, err := m.Run(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestMachineValidation(t *testing.T) {
	if _, _, err := (&Machine{}).Run(); err == nil {
		t.Error("no programs accepted")
	}
	if _, _, err := (&Machine{Programs: []*Program{nil}}).Run(); err == nil {
		t.Error("nil program accepted")
	}
	if _, _, err := (&Machine{Programs: []*Program{NewProgram("empty")}}).Run(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestStraightLineExecution(t *testing.T) {
	p := NewProgram("arith")
	p.Ldi(1, 6).Ldi(2, 7).Mul(3, 1, 2). // r3 = 42
						Sub(3, 3, 2). // 35
						Add(3, 3, 1). // 41
						Ldi(4, 0).
						St(3, 4, 5). // mem[5] = 41
						Done()
	tr, mem, err := (&Machine{Programs: []*Program{p}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if mem[5] != 41 {
		t.Errorf("mem[5] = %d, want 41", mem[5])
	}
	// 8 instruction fetches + 1 data write.
	if tr.Len() != 9 {
		t.Errorf("trace length %d, want 9", tr.Len())
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p := NewProgram("ldst")
	p.Ldi(1, 123).Ldi(2, 0).
		St(1, 2, 9).
		Ld(3, 2, 9).
		St(3, 2, 10).
		Done()
	_, mem, err := (&Machine{Programs: []*Program{p}}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if mem[9] != 123 || mem[10] != 123 {
		t.Errorf("mem = %v", mem)
	}
}

func TestInitMemIsCopied(t *testing.T) {
	init := Memory{5: 50}
	p := NewProgram("w")
	p.Ldi(1, 99).Ldi(2, 0).St(1, 2, 5).Done()
	_, mem, err := (&Machine{Programs: []*Program{p}, InitMem: init}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if mem[5] != 99 {
		t.Errorf("final mem[5] = %d", mem[5])
	}
	if init[5] != 50 {
		t.Error("machine mutated the caller's init memory")
	}
}

func TestLivelockGuard(t *testing.T) {
	p := NewProgram("spin")
	p.Label("x").Jmp("x")
	m := &Machine{Programs: []*Program{p}, MaxSteps: 1000}
	if _, _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "livelock") {
		t.Errorf("livelock not detected: %v", err)
	}
}

func TestLockedCounterMutualExclusion(t *testing.T) {
	// The canonical end-to-end check: n CPUs, k increments each, under a
	// real TAS lock running on the VM. Any lost update means the lock or
	// the machine is broken.
	for _, cpus := range []int{1, 2, 4, 8} {
		const iters = 50
		m := &Machine{Programs: sameProgram(LockedCounter(iters), cpus), Seed: uint64(cpus)}
		tr, mem, err := m.Run()
		if err != nil {
			t.Fatalf("%d cpus: %v", cpus, err)
		}
		if got := mem[8]; got != Word(cpus*iters) {
			t.Errorf("%d cpus: counter = %d, want %d", cpus, got, cpus*iters)
		}
		if cpus > 1 {
			s := trace.ComputeStats(tr)
			if s.SpinReads == 0 {
				t.Errorf("%d cpus: contended counter produced no spin reads", cpus)
			}
			if s.LockWrites == 0 {
				t.Errorf("%d cpus: no acquire writes flagged", cpus)
			}
		}
	}
}

func TestBarrierCompletesAllRounds(t *testing.T) {
	const cpus, rounds = 4, 10
	m := &Machine{Programs: sameProgram(Barrier(cpus, rounds), cpus), Seed: 7}
	_, mem, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	for c := Word(0); c < cpus; c++ {
		if got := mem[3+c]; got != rounds {
			t.Errorf("cpu %d completed %d rounds, want %d", c, got, rounds)
		}
	}
	if mem[1] != 0 {
		t.Errorf("arrival counter not reset: %d", mem[1])
	}
}

func TestReduceComputesSum(t *testing.T) {
	const cpus, n = 4, 64
	m := &Machine{
		Programs: sameProgram(Reduce(cpus, n), cpus),
		InitMem:  InitReduceMemory(n),
		Seed:     11,
	}
	_, mem, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := Word(n * (n + 1) / 2); mem[1] != want {
		t.Errorf("total = %d, want %d", mem[1], want)
	}
}

func TestReducePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("indivisible n accepted")
		}
	}()
	Reduce(3, 64)
}

func TestVMDeterminism(t *testing.T) {
	run := func() *trace.Trace {
		m := &Machine{Programs: sameProgram(LockedCounter(30), 4), Seed: 42}
		tr, _, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatalf("ref %d differs", i)
		}
	}
}

// TestVMTracesAreCoherent closes the loop: traces produced by real
// executing programs run through every protocol with value-coherence
// checking.
func TestVMTracesAreCoherent(t *testing.T) {
	machines := map[string]*Machine{
		"counter": {Programs: sameProgram(LockedCounter(40), 4), Seed: 3},
		"barrier": {Programs: sameProgram(Barrier(4, 6), 4), Seed: 5},
		"reduce": {Programs: sameProgram(Reduce(4, 32), 4),
			InitMem: InitReduceMemory(32), Seed: 9},
	}
	for name, m := range machines {
		tr, _, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, scheme := range []string{"Dir1NB", "Dir0B", "DirNNB", "WTI", "Dragon", "MESI", "Berkeley", "Firefly"} {
			if _, err := sim.SimulateTrace(scheme, tr, sim.Options{Check: true}); err != nil {
				t.Errorf("%s under %s: %v", name, scheme, err)
			}
		}
	}
}

// TestVMLockBehaviourMatchesPaper reproduces the Section 5.2 phenomenon
// from first principles: on the executed counter program, Dir1NB pays far
// more for the lock traffic than Dir0B, and filtering the spin reads
// closes most of the gap.
func TestVMLockBehaviourMatchesPaper(t *testing.T) {
	m := &Machine{Programs: sameProgram(LockedCounter(150), 4), Seed: 13}
	tr, _, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := sim.SimulateTrace("Dir1NB", tr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d0, err := sim.SimulateTrace("Dir0B", tr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d1.PerRef("pipelined") <= d0.PerRef("pipelined") {
		t.Error("Dir1NB should suffer on a contended lock")
	}
	p, err := core.NewByName("Dir1NB", tr.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	noSpins, err := sim.Simulate(p, trace.WithoutSpins(tr.Iterator()), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if noSpins.PerRef("pipelined") >= d1.PerRef("pipelined") {
		t.Error("removing spin reads should reduce Dir1NB's cost")
	}
}
