package vm

// Canonical parallel programs. Memory is word-addressed: the lock word
// lives at word 0 and shared data from word 1 upward; r7 is preloaded
// with the CPU id by the machine.

// LockedCounter returns a program in which each CPU increments the shared
// counter at word 8, iters times, under the test-and-test-and-set lock at
// word 0. After a run with n CPUs the counter must equal n·iters — the
// canonical mutual-exclusion check.
func LockedCounter(iters Word) *Program {
	p := NewProgram("counter")
	const (
		rIter = 1
		rTmp  = 2
		rOne  = 3
		rZero = 4
	)
	p.Ldi(rIter, iters).
		Ldi(rOne, 1).
		Ldi(rZero, 0)
	p.Label("loop").
		// Test-and-test-and-set acquire.
		Label("test").
		Ld(rTmp, rZero, 0). // poll the lock word
		Bnz(rTmp, "test").
		Tas(rTmp, rZero, 0). // attempt the atomic
		Bnz(rTmp, "test").   // lost the race: back to polling
		// Critical section: counter++.
		Ld(rTmp, rZero, 8).
		Add(rTmp, rTmp, rOne).
		St(rTmp, rZero, 8).
		// Release.
		St(rZero, rZero, 0).
		// Loop control.
		Sub(rIter, rIter, rOne).
		Bnz(rIter, "loop").
		Done()
	return p
}

// Barrier returns a program executing rounds sense-reversing barriers: an
// arrival counter at word 1 guarded by the lock at word 0, and the shared
// sense at word 2. Each CPU also bumps its private progress word (3+cpu)
// once per round, so the final memory state proves every CPU completed
// every round.
func Barrier(cpus, rounds Word) *Program {
	p := NewProgram("barrier")
	const (
		rRound = 1
		rTmp   = 2
		rOne   = 3
		rZero  = 4
		rSense = 5
		rSlot  = 6
		rCPU   = 7
	)
	p.Ldi(rRound, rounds).
		Ldi(rOne, 1).
		Ldi(rZero, 0).
		Ldi(rSense, 0).
		// rSlot = 3 + cpu: this CPU's private progress word.
		Ldi(rTmp, 3).
		Add(rSlot, rTmp, rCPU)
	p.Label("round").
		// local sense flips each round.
		Ldi(rTmp, 1).
		Sub(rSense, rTmp, rSense). // sense = 1 - sense
		// progress[cpu]++ (private, no lock needed).
		Ld(rTmp, rSlot, 0).
		Add(rTmp, rTmp, rOne).
		St(rTmp, rSlot, 0).
		// acquire the lock.
		Label("btest").
		Ld(rTmp, rZero, 0).
		Bnz(rTmp, "btest").
		Tas(rTmp, rZero, 0).
		Bnz(rTmp, "btest").
		// arrivals++ under the lock; last arrival resets and flips the
		// shared sense word at 2 (word index).
		Ld(rTmp, rZero, 1).
		Add(rTmp, rTmp, rOne).
		St(rTmp, rZero, 1)
	p.Ldi(0, cpus).
		Sub(rTmp, rTmp, 0). // rTmp = arrivals - cpus
		Bnz(rTmp, "notlast").
		// Last arrival: reset the counter, publish the new sense.
		St(rZero, rZero, 1).
		St(rSense, rZero, 2).
		St(rZero, rZero, 0). // release
		Jmp("joined")
	p.Label("notlast").
		St(rZero, rZero, 0) // release
	p.Label("wait").
		Ld(rTmp, rZero, 2).
		Sub(rTmp, rTmp, rSense).
		Bnz(rTmp, "wait")
	p.Label("joined").
		Sub(rRound, rRound, rOne).
		Bnz(rRound, "round").
		Done()
	return p
}

// Reduce returns a program that sums the shared input array (words
// 16..16+n-1, pre-seeded by InitReduceMemory) in contiguous per-CPU
// chunks of k = n/cpus elements (n must be divisible by cpus) and then
// accumulates the partial sum into the shared total at word 1 under the
// lock at word 0.
func Reduce(cpus, n Word) *Program {
	if cpus <= 0 || n%cpus != 0 {
		panic("vm: Reduce requires n divisible by cpus")
	}
	k := n / cpus
	p := NewProgram("reduce")
	const (
		rIdx  = 1
		rSum  = 2
		rTmp  = 3
		rOne  = 4
		rZero = 5
		rCnt  = 6
		rCPU  = 7
	)
	p.Ldi(rOne, 1).
		Ldi(rZero, 0).
		Ldi(rSum, 0).
		Ldi(rCnt, k).
		// rIdx = cpu * k: the chunk base.
		Ldi(rTmp, k).
		Mul(rIdx, rCPU, rTmp)
	p.Label("sumloop").
		Bz(rCnt, "acc").
		Ld(rTmp, rIdx, 16). // element at word 16+idx
		Add(rSum, rSum, rTmp).
		Add(rIdx, rIdx, rOne).
		Sub(rCnt, rCnt, rOne).
		Jmp("sumloop")
	p.Label("acc").
		Label("rtest").
		Ld(rTmp, rZero, 0).
		Bnz(rTmp, "rtest").
		Tas(rTmp, rZero, 0).
		Bnz(rTmp, "rtest").
		Ld(rTmp, rZero, 1).
		Add(rTmp, rTmp, rSum).
		St(rTmp, rZero, 1).
		St(rZero, rZero, 0).
		Done()
	return p
}

// InitReduceMemory returns the initial memory image for Reduce: input[i]
// = i+1 at words 16..16+n-1, so the expected total is n(n+1)/2.
func InitReduceMemory(n Word) Memory {
	mem := Memory{}
	for i := Word(0); i < n; i++ {
		mem[16+i] = i + 1
	}
	return mem
}
