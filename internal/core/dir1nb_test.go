package core

import (
	"testing"

	"dirsim/internal/event"
)

func TestDir1NBSingleCopySemantics(t *testing.T) {
	p := NewDir1NB(4)
	res := applyChecked(t, p,
		rd(0, 1), // first ref
		rd(0, 1), // hit
		rd(1, 1), // steal from 0 (clean)
		rd(0, 1), // steal back
		wr(0, 1), // write hit, exclusive by construction: free
		rd(1, 1), // steal dirty block: write-back
		wr(2, 1), // write miss, steal clean block from 1
	)
	expectTypes(t, res,
		event.RdMissFirst, event.RdHit, event.RdMissClean, event.RdMissClean,
		event.WrHitOwn, event.RdMissDirty, event.WrMissClean)

	steal := res[2]
	if steal.Inval != 1 || steal.Holders != 1 {
		t.Errorf("clean steal: %+v", steal)
	}
	dirtySteal := res[5]
	if !dirtySteal.WriteBack || !dirtySteal.CacheSupply || dirtySteal.Inval != 1 {
		t.Errorf("dirty steal: %+v", dirtySteal)
	}
	// Write hits never touch the bus or the directory in Dir1NB.
	whit := res[4]
	if whit.Inval != 0 || whit.DirCheck || whit.Update || whit.Broadcast {
		t.Errorf("Dir1NB write hit should be free: %+v", whit)
	}
}

func TestDir1NBWriteMissOnUncached(t *testing.T) {
	p := NewDir1NB(2)
	res := applyChecked(t, p, wr(0, 3), rd(0, 3), wr(1, 3), wr(1, 3))
	expectTypes(t, res,
		event.WrMissFirst, event.RdHit, event.WrMissDirty, event.WrHitOwn)
}

func TestDir1NBNeverHasTwoHolders(t *testing.T) {
	p := NewDir1NB(8)
	apply(t, p, randomRefs(23, 8, 32, 30000)...)
	// Count how many blocks each cache "holds" by replaying reads: the
	// engine's own structure cannot represent two holders, so instead we
	// assert the classifications stay consistent: a hit by one CPU
	// immediately after a read by another is impossible.
	res1 := p.Access(rd(0, 5))
	res2 := p.Access(rd(1, 5))
	if res2.Type == event.RdHit && res1.Type != event.RdHit {
		t.Error("two CPUs cannot both hit the same block in Dir1NB")
	}
}

func TestDir1NBSpinBouncing(t *testing.T) {
	// Two CPUs alternately reading one block: every access after the
	// first is a miss — the lock-bouncing pathology of Section 5.2.
	p := NewDir1NB(2)
	res := applyChecked(t, p,
		rd(0, 9), rd(1, 9), rd(0, 9), rd(1, 9), rd(0, 9))
	misses := 0
	for _, r := range res {
		if r.Type.IsMiss() {
			misses++
		}
	}
	if misses != 5 {
		t.Errorf("all 5 alternating reads should miss, got %d", misses)
	}
	// The same pattern under Dir0B misses only once.
	res = applyChecked(t, NewDir0B(2),
		rd(0, 9), rd(1, 9), rd(0, 9), rd(1, 9), rd(0, 9))
	misses = 0
	for _, r := range res {
		if r.Type.IsMiss() {
			misses++
		}
	}
	if misses != 2 {
		t.Errorf("Dir0B should miss twice (one per CPU), got %d", misses)
	}
}

func TestDir1NBInstr(t *testing.T) {
	res := applyChecked(t, NewDir1NB(2), in(0, 1), in(1, 1))
	expectTypes(t, res, event.Instr, event.Instr)
}

func TestDir1NBPanicsOnBadInput(t *testing.T) {
	p := NewDir1NB(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range CPU")
		}
	}()
	p.Access(rd(3, 0))
}
