package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// CheckerSetter is implemented by engines that can report data movement to
// a value-coherence Checker. All engines in this package implement it.
type CheckerSetter interface {
	SetChecker(*Checker)
}

// Attach connects a checker to p if the engine supports it, reporting
// whether it did.
func Attach(p Protocol, c *Checker) bool {
	s, ok := p.(CheckerSetter)
	if ok {
		s.SetChecker(c)
	}
	return ok
}

// Factory builds a protocol engine for a processor count.
type Factory func(ncpu int) Protocol

// factories maps lower-case scheme names to constructors. Parameterized
// names (dir<i>b, dir<i>nb) are handled by NewByName directly.
var factories = map[string]Factory{
	"dir1nb":   NewDir1NB,
	"dir0b":    NewDir0B,
	"dirnnb":   NewDirNNB,
	"yenfu":    NewYenFu,
	"wti":      NewWTI,
	"dragon":   NewDragon,
	"berkeley": NewBerkeley,
	"mesi":     NewMESI,
	"illinois": NewMESI,
	"firefly":  NewFirefly,
}

// Schemes returns the fixed (non-parameterized) scheme names available to
// NewByName, sorted.
func Schemes() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewByName builds an engine from a scheme name in the paper's notation,
// case-insensitively: "Dir1NB", "Dir0B", "DirNNB", "WTI", "Dragon", and the
// parameterized families "Dir<i>B" and "Dir<i>NB" (e.g. "Dir2NB",
// "Dir4B").
func NewByName(name string, ncpu int) (Protocol, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if f, ok := factories[key]; ok {
		return f(ncpu), nil
	}
	if strings.HasPrefix(key, "dir") {
		rest := strings.TrimPrefix(key, "dir")
		switch {
		case strings.HasSuffix(rest, "nb"):
			i, err := strconv.Atoi(strings.TrimSuffix(rest, "nb"))
			if err == nil && i >= 1 {
				if i == 1 {
					return NewDir1NB(ncpu), nil
				}
				return NewDiriNB(ncpu, i), nil
			}
		case strings.HasSuffix(rest, "b"):
			i, err := strconv.Atoi(strings.TrimSuffix(rest, "b"))
			if err == nil && i >= 1 {
				return NewDiriB(ncpu, i), nil
			}
		}
	}
	return nil, fmt.Errorf("core: unknown scheme %q (try %s, Dir<i>B, or Dir<i>NB)",
		name, strings.Join(Schemes(), ", "))
}
