package core

import (
	"testing"

	"dirsim/internal/event"
)

// Tests for the extended comparator set: Berkeley, MESI (Illinois),
// Firefly, and the Yen–Fu single-bit refinement.

func TestBerkeleyOwnerSuppliesWithoutWriteBack(t *testing.T) {
	p := NewBerkeley(4)
	res := applyChecked(t, p,
		rd(0, 1), // cold
		wr(0, 1), // hit on unowned clean: broadcast, becomes owned-excl
		rd(1, 1), // owner supplies, memory NOT updated, owned-shared
		rd(2, 1), // owner still supplies (memory is stale)
		wr(0, 1), // owned-shared write: broadcast invalidation
		rd(1, 1), // owner supplies again
	)
	expectTypes(t, res,
		event.RdMissFirst, event.WrHitClean, event.RdMissDirty,
		event.RdMissDirty, event.WrHitClean, event.RdMissDirty)
	for i, r := range res {
		if r.WriteBack {
			t.Errorf("ref %d: Berkeley never writes back on sharing", i)
		}
	}
	if !res[2].CacheSupply || !res[3].CacheSupply {
		t.Error("owner must supply read misses")
	}
	if !res[4].Broadcast {
		t.Error("owned-shared write must broadcast")
	}
}

func TestBerkeleySilentExclusiveWrite(t *testing.T) {
	p := NewBerkeley(2)
	res := applyChecked(t, p, wr(0, 2), wr(0, 2), wr(0, 2))
	expectTypes(t, res, event.WrMissFirst, event.WrHitOwn, event.WrHitOwn)
	for _, r := range res[1:] {
		if r.Broadcast || r.Update {
			t.Errorf("owned-exclusive writes must be silent: %+v", r)
		}
	}
}

func TestBerkeleyNoExclusiveCleanState(t *testing.T) {
	// Unlike MESI, a sole clean copy still pays an invalidation
	// broadcast on a write hit — Berkeley has no E state.
	p := NewBerkeley(2)
	res := applyChecked(t, p, rd(0, 3), wr(0, 3))
	if res[1].Type != event.WrHitClean || !res[1].Broadcast {
		t.Errorf("clean write hit should broadcast: %+v", res[1])
	}
}

func TestMESISilentEUpgrade(t *testing.T) {
	p := NewMESI(2)
	res := applyChecked(t, p,
		rd(0, 1), // E (alone)
		wr(0, 1), // silent E->M
		wr(0, 1), // silent M
	)
	expectTypes(t, res, event.RdMissFirst, event.WrHitOwn, event.WrHitOwn)
	for _, r := range res {
		if r.Broadcast || r.DirCheck {
			t.Errorf("E/M writes must be silent: %+v", r)
		}
	}
}

func TestMESISharedWriteBroadcasts(t *testing.T) {
	p := NewMESI(4)
	res := applyChecked(t, p,
		rd(0, 1), // E
		rd(1, 1), // S, cache-to-cache supply (Illinois)
		wr(0, 1), // S->M: broadcast invalidation
		rd(1, 1), // M supplies, writes memory back
	)
	expectTypes(t, res, event.RdMissFirst, event.RdMissClean, event.WrHitClean, event.RdMissDirty)
	if !res[1].CacheSupply {
		t.Error("Illinois supplies clean blocks cache-to-cache")
	}
	if !res[2].Broadcast || res[2].Holders != 1 {
		t.Errorf("shared write: %+v", res[2])
	}
	if !res[3].WriteBack || !res[3].CacheSupply {
		t.Errorf("M supplier must flush memory: %+v", res[3])
	}
}

func TestMESIBeatsDir0BOnPrivateWrites(t *testing.T) {
	// Read-then-write private data: MESI's E state writes silently where
	// Dir0B pays a directory check. Events differ exactly there.
	refs := randomRefs(37, 4, 30, 30000)
	mesiCounts := countTypes(apply(t, NewMESI(4), refs...))
	d0bCounts := countTypes(apply(t, NewDir0B(4), refs...))
	if mesiCounts.N[event.WrHitOwn] <= d0bCounts.N[event.WrHitOwn] {
		t.Error("MESI should convert some wh-blk-cln into silent wh-blk-drty")
	}
	// Miss counts stay identical: E changes write hits only.
	if mesiCounts.ReadMisses() != d0bCounts.ReadMisses() {
		t.Error("E state must not change read-miss frequencies")
	}
}

func TestFireflySharedWriteKeepsMemoryCurrent(t *testing.T) {
	p := NewFirefly(4)
	res := applyChecked(t, p,
		rd(0, 1),
		rd(1, 1), // shared
		wr(0, 1), // update sharers + memory (write-through on shared)
		rd(2, 1), // memory is current: but caches supply in Firefly
		wr(2, 1), // shared write again
	)
	expectTypes(t, res,
		event.RdMissFirst, event.RdMissClean, event.WrHitShared,
		event.RdMissClean, event.WrHitShared)
	if !res[2].Update {
		t.Error("shared write must be an update")
	}
	// After the shared write, memory is NOT stale: the later miss is
	// classified clean, not dirty.
	if res[3].Type != event.RdMissClean {
		t.Errorf("memory should be current after a shared write: %v", res[3].Type)
	}
}

func TestFireflyExclusiveWriteGoesStale(t *testing.T) {
	p := NewFirefly(2)
	res := applyChecked(t, p,
		rd(0, 2),
		wr(0, 2), // local write, memory stale
		rd(1, 2), // supplied by owner, memory refreshed
	)
	expectTypes(t, res, event.RdMissFirst, event.WrHitLocal, event.RdMissDirty)
	if !res[2].WriteBack || !res[2].CacheSupply {
		t.Errorf("stale fill must flush: %+v", res[2])
	}
}

func TestFireflyNeverInvalidates(t *testing.T) {
	refs := randomRefs(41, 4, 20, 30000)
	for _, res := range apply(t, NewFirefly(4), refs...) {
		if res.Inval != 0 || res.ForcedInval != 0 {
			t.Fatal("Firefly invalidated a copy")
		}
	}
}

func TestYenFuSavesDirectoryAccess(t *testing.T) {
	p := NewYenFu(4)
	res := applyChecked(t, p,
		rd(0, 1), // sole copy, single bit set
		wr(0, 1), // single bit says alone: NO directory access
		rd(1, 1), // flush; two copies
		rd(2, 1), // three copies (control message on 1->2 only)
		wr(1, 1), // shared write: directory consulted, directed invals
	)
	expectTypes(t, res,
		event.RdMissFirst, event.WrHitClean, event.RdMissDirty,
		event.RdMissClean, event.WrHitClean)
	if res[1].DirCheck {
		t.Error("sole-holder write must skip the directory (single bit)")
	}
	if !res[4].DirCheck || res[4].Inval != 2 || res[4].Broadcast {
		t.Errorf("shared write should use the directory with directed invals: %+v", res[4])
	}
}

func TestYenFuControlTraffic(t *testing.T) {
	p := NewYenFu(4)
	res := applyChecked(t, p,
		rd(0, 1), // sole holder
		rd(1, 1), // 1 -> 2: clear holder 0's single bit
		rd(2, 1), // 2 -> 3: no single bit to clear
	)
	if res[1].Control != 1 {
		t.Errorf("second fill should clear a single bit: %+v", res[1])
	}
	if res[2].Control != 0 {
		t.Errorf("third fill has no single bit to clear: %+v", res[2])
	}
}

func TestYenFuMatchesDirNNBEventCounts(t *testing.T) {
	// The single bit changes costs, never state evolution.
	refs := randomRefs(47, 4, 30, 30000)
	yf := countTypes(apply(t, NewYenFu(4), refs...))
	dn := countTypes(apply(t, NewDirNNB(4), refs...))
	if yf != dn {
		t.Error("Yen-Fu event counts diverge from DirNNB")
	}
}

func TestExtendedSchemesValueCoherent(t *testing.T) {
	refs := randomRefs(53, 6, 24, 50000)
	for _, p := range []Protocol{NewBerkeley(6), NewMESI(6), NewFirefly(6), NewYenFu(6)} {
		applyChecked(t, p, refs...)
	}
}

func TestExtendedSchemesFirstRefsAgree(t *testing.T) {
	refs := randomRefs(59, 4, 20, 20000)
	base := countTypes(apply(t, NewDir0B(4), refs...))
	for _, p := range []Protocol{NewBerkeley(4), NewMESI(4), NewFirefly(4), NewYenFu(4)} {
		c := countTypes(apply(t, p, refs...))
		if c.N[event.RdMissFirst] != base.N[event.RdMissFirst] ||
			c.N[event.WrMissFirst] != base.N[event.WrMissFirst] {
			t.Errorf("%s first-ref counts diverge", p.Name())
		}
	}
}
