package core

import (
	"strings"
	"testing"

	"dirsim/internal/trace"
)

func TestCheckerNilIsSafe(t *testing.T) {
	var c *Checker
	// All methods must be no-ops on nil.
	c.ReadHit(0, 1)
	c.FillFromMemory(0, 1)
	c.FillFromCache(0, 1, 1)
	c.Write(0, 1)
	c.WriteThrough(0, 1)
	c.WriteBack(0, 1)
	c.Invalidate(0, 1)
	c.UpdateSharers(1)
	if c.Err() != nil {
		t.Error("nil checker should have no error")
	}
	if c.HolderVersions(1) != nil {
		t.Error("nil checker should report no holders")
	}
}

func TestCheckerHappyPath(t *testing.T) {
	c := NewChecker()
	b := trace.Block(5)
	c.FillFromMemory(0, b)
	c.Write(0, b)
	c.ReadHit(0, b)
	c.WriteBack(0, b)
	c.FillFromMemory(1, b)
	c.ReadHit(1, b)
	if err := c.Err(); err != nil {
		t.Fatalf("clean sequence flagged: %v", err)
	}
	hv := c.HolderVersions(b)
	if len(hv) != 2 || hv[0] != hv[1] {
		t.Errorf("holder versions: %v", hv)
	}
}

func checkerError(t *testing.T, want string, ops func(*Checker)) {
	t.Helper()
	c := NewChecker()
	ops(c)
	err := c.Err()
	if err == nil {
		t.Fatalf("expected %q violation", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not mention %q", err, want)
	}
}

func TestCheckerCatchesStaleRead(t *testing.T) {
	checkerError(t, "stale", func(c *Checker) {
		b := trace.Block(1)
		c.FillFromMemory(0, b)
		c.FillFromMemory(1, b)
		c.Write(0, b) // cache 1 now stale; no invalidate/update issued
		c.ReadHit(1, b)
	})
}

func TestCheckerCatchesStaleMemorySupply(t *testing.T) {
	checkerError(t, "memory supplied stale", func(c *Checker) {
		b := trace.Block(2)
		c.FillFromMemory(0, b)
		c.Write(0, b)
		// No write-back, yet the protocol fills another cache from
		// memory: stale.
		c.FillFromMemory(1, b)
	})
}

func TestCheckerCatchesReadWithoutCopy(t *testing.T) {
	checkerError(t, "does not hold", func(c *Checker) {
		c.ReadHit(3, trace.Block(9))
	})
}

func TestCheckerCatchesWriteWithoutCopy(t *testing.T) {
	checkerError(t, "without holding", func(c *Checker) {
		c.Write(2, trace.Block(4))
	})
}

func TestCheckerCatchesStaleCacheSupply(t *testing.T) {
	checkerError(t, "stale", func(c *Checker) {
		b := trace.Block(7)
		c.FillFromMemory(0, b)
		c.FillFromMemory(1, b)
		c.Write(0, b)
		// Cache 1's stale copy supplies a third cache.
		c.FillFromCache(2, 1, b)
	})
}

func TestCheckerCatchesSupplierWithoutCopy(t *testing.T) {
	checkerError(t, "does not hold", func(c *Checker) {
		c.FillFromCache(0, 1, trace.Block(8))
	})
}

func TestCheckerCatchesWriteBackWithoutCopy(t *testing.T) {
	checkerError(t, "does not hold", func(c *Checker) {
		c.WriteBack(0, trace.Block(6))
	})
}

func TestCheckerInvalidateClearsCopy(t *testing.T) {
	c := NewChecker()
	b := trace.Block(3)
	c.FillFromMemory(0, b)
	c.FillFromMemory(1, b)
	c.Write(0, b)
	c.Invalidate(1, b) // the protocol did the right thing
	c.WriteBack(0, b)
	c.FillFromMemory(1, b)
	c.ReadHit(1, b)
	if err := c.Err(); err != nil {
		t.Fatalf("invalidate-then-refill flagged: %v", err)
	}
}

func TestCheckerUpdateSharers(t *testing.T) {
	c := NewChecker()
	b := trace.Block(11)
	c.FillFromMemory(0, b)
	c.FillFromMemory(1, b)
	c.Write(0, b)
	c.UpdateSharers(b) // Dragon-style update
	c.ReadHit(1, b)
	if err := c.Err(); err != nil {
		t.Fatalf("updated sharer flagged stale: %v", err)
	}
}

func TestCheckerWriteThrough(t *testing.T) {
	c := NewChecker()
	b := trace.Block(12)
	c.FillFromMemory(0, b)
	c.Write(0, b)
	c.WriteThrough(0, b)
	c.FillFromMemory(1, b) // memory is current: fine
	if err := c.Err(); err != nil {
		t.Fatalf("write-through path flagged: %v", err)
	}
}

func TestCheckerKeepsFirstError(t *testing.T) {
	c := NewChecker()
	c.ReadHit(0, 1) // first violation
	first := c.Err()
	c.Write(5, 2) // second violation
	if c.Err() != first {
		t.Error("checker should retain the first violation")
	}
}
