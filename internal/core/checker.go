package core

import (
	"fmt"

	"dirsim/internal/trace"
)

// Checker verifies value coherence as a protocol engine runs: every read
// must observe the most recently written value of its block, regardless of
// which cache or memory supplies the data. Engines call the Checker's
// methods at the points where a real implementation would move data; the
// Checker models versions (a counter per block, bumped on every write) and
// records the first violation.
//
// A nil *Checker is valid and all methods are no-ops on it, so engines can
// call unconditionally.
type Checker struct {
	latest map[trace.Block]uint64           // version produced by the last write
	memory map[trace.Block]uint64           // version main memory holds
	copies map[trace.Block]map[uint8]uint64 // version each cache holds
	err    error
}

// NewChecker returns an empty coherence checker.
func NewChecker() *Checker {
	return &Checker{
		latest: make(map[trace.Block]uint64),
		memory: make(map[trace.Block]uint64),
		copies: make(map[trace.Block]map[uint8]uint64),
	}
}

// Err returns the first coherence violation observed, or nil.
func (c *Checker) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

func (c *Checker) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("coherence: "+format, args...)
	}
}

func (c *Checker) blockCopies(b trace.Block) map[uint8]uint64 {
	m := c.copies[b]
	if m == nil {
		m = make(map[uint8]uint64, 2)
		c.copies[b] = m
	}
	return m
}

// ReadHit asserts that cpu's cached copy of b carries the latest value.
func (c *Checker) ReadHit(cpu uint8, b trace.Block) {
	if c == nil {
		return
	}
	v, ok := c.copies[b][cpu]
	if !ok {
		c.fail("read hit by cpu %d on block %#x it does not hold", cpu, b)
		return
	}
	if want := c.latest[b]; v != want {
		c.fail("cpu %d read stale version %d of block %#x (latest %d)", cpu, v, b, want)
	}
}

// FillFromMemory models a miss satisfied by main memory and asserts memory
// holds the latest value.
func (c *Checker) FillFromMemory(cpu uint8, b trace.Block) {
	if c == nil {
		return
	}
	v := c.memory[b]
	if want := c.latest[b]; v != want {
		c.fail("memory supplied stale version %d of block %#x to cpu %d (latest %d)", v, b, cpu, want)
	}
	c.blockCopies(b)[cpu] = v
}

// FillFromCache models a miss satisfied cache-to-cache (or via a write-back
// the requester snarfs) and asserts the supplier holds the latest value.
func (c *Checker) FillFromCache(cpu, supplier uint8, b trace.Block) {
	if c == nil {
		return
	}
	v, ok := c.copies[b][supplier]
	if !ok {
		c.fail("cpu %d supplied block %#x it does not hold", supplier, b)
		return
	}
	if want := c.latest[b]; v != want {
		c.fail("cpu %d supplied stale version %d of block %#x (latest %d)", supplier, v, b, want)
	}
	c.blockCopies(b)[cpu] = v
}

// Write models cpu writing b. The writer must hold a copy (engines fill
// before writing); the write produces a new latest version held by the
// writer alone unless the protocol updates sharers (see UpdateSharers).
func (c *Checker) Write(cpu uint8, b trace.Block) {
	if c == nil {
		return
	}
	m := c.blockCopies(b)
	if _, ok := m[cpu]; !ok {
		c.fail("cpu %d wrote block %#x without holding a copy", cpu, b)
	}
	c.latest[b]++
	m[cpu] = c.latest[b]
}

// WriteThrough models the written value propagating to memory (WTI).
func (c *Checker) WriteThrough(cpu uint8, b trace.Block) {
	if c == nil {
		return
	}
	c.memory[b] = c.latest[b]
}

// WriteBack models owner flushing its copy of b to memory.
func (c *Checker) WriteBack(owner uint8, b trace.Block) {
	if c == nil {
		return
	}
	v, ok := c.copies[b][owner]
	if !ok {
		c.fail("cpu %d wrote back block %#x it does not hold", owner, b)
		return
	}
	c.memory[b] = v
}

// Invalidate models cpu losing its copy of b.
func (c *Checker) Invalidate(cpu uint8, b trace.Block) {
	if c == nil {
		return
	}
	delete(c.copies[b], cpu)
}

// UpdateSharers models a Dragon-style update: every cache currently holding
// b receives the latest value.
func (c *Checker) UpdateSharers(b trace.Block) {
	if c == nil {
		return
	}
	v := c.latest[b]
	for cpu := range c.copies[b] {
		c.copies[b][cpu] = v
	}
}

// HolderVersions returns the versions cached for block b, keyed by CPU.
// Tests use it to cross-check engine holder sets.
func (c *Checker) HolderVersions(b trace.Block) map[uint8]uint64 {
	if c == nil {
		return nil
	}
	out := make(map[uint8]uint64, len(c.copies[b]))
	for cpu, v := range c.copies[b] {
		out[cpu] = v
	}
	return out
}
