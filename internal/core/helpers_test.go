package core

import (
	"math/rand"
	"testing"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// Shared helpers for the protocol tests.

// blockAddr returns the byte address of block n.
func blockAddr(n int) uint64 { return uint64(n) * trace.BlockBytes }

// rd, wr and in build references tersely.
func rd(cpu uint8, block int) trace.Ref {
	return trace.Ref{Addr: blockAddr(block), CPU: cpu, Proc: uint16(cpu), Kind: trace.Read}
}

func wr(cpu uint8, block int) trace.Ref {
	return trace.Ref{Addr: blockAddr(block), CPU: cpu, Proc: uint16(cpu), Kind: trace.Write}
}

func in(cpu uint8, block int) trace.Ref {
	return trace.Ref{Addr: blockAddr(block), CPU: cpu, Proc: uint16(cpu), Kind: trace.Instr}
}

// apply feeds references through a protocol, returning the per-reference
// results and failing the test on invariant violations.
func apply(t *testing.T, p Protocol, refs ...trace.Ref) []event.Result {
	t.Helper()
	out := make([]event.Result, 0, len(refs))
	for _, r := range refs {
		out = append(out, p.Access(r))
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("%s invariants: %v", p.Name(), err)
	}
	return out
}

// applyChecked is apply with a value-coherence checker attached first.
func applyChecked(t *testing.T, p Protocol, refs ...trace.Ref) []event.Result {
	t.Helper()
	if !Attach(p, NewChecker()) {
		t.Fatalf("%s does not support coherence checking", p.Name())
	}
	return apply(t, p, refs...)
}

// types extracts the event classifications.
func types(results []event.Result) []event.Type {
	out := make([]event.Type, len(results))
	for i, r := range results {
		out[i] = r.Type
	}
	return out
}

// expectTypes asserts the exact classification sequence.
func expectTypes(t *testing.T, got []event.Result, want ...event.Type) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i] {
			t.Errorf("ref %d: classified %v, want %v", i, got[i].Type, want[i])
		}
	}
}

// randomRefs generates a random shared/private access mix over a small
// block pool so protocol state machines are exercised heavily.
func randomRefs(seed int64, cpus, blocks, n int) []trace.Ref {
	r := rand.New(rand.NewSource(seed))
	refs := make([]trace.Ref, 0, n)
	for i := 0; i < n; i++ {
		cpu := uint8(r.Intn(cpus))
		kind := trace.Read
		switch x := r.Intn(10); {
		case x == 0:
			kind = trace.Instr
		case x <= 3:
			kind = trace.Write
		}
		refs = append(refs, trace.Ref{
			Addr: blockAddr(r.Intn(blocks)),
			CPU:  cpu,
			Proc: uint16(cpu),
			Kind: kind,
		})
	}
	return refs
}

// countTypes tallies classifications.
func countTypes(results []event.Result) event.Counts {
	var c event.Counts
	for _, r := range results {
		c.Add(r.Type)
	}
	return c
}
