package core

import (
	"testing"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// The MRSW family: Dir0B, DirNNB, DiriNB, DiriB, WTI.

func TestDir0BReadSharingThenWrite(t *testing.T) {
	p := NewDir0B(4)
	res := applyChecked(t, p,
		rd(0, 1), // first ref
		rd(1, 1), // clean in cache 0
		rd(2, 1), // clean in 0,1
		wr(0, 1), // write hit on clean block: invalidate 1,2
		rd(1, 1), // miss on dirty block: flush from 0
	)
	expectTypes(t, res,
		event.RdMissFirst, event.RdMissClean, event.RdMissClean,
		event.WrHitClean, event.RdMissDirty)

	wh := res[3]
	if wh.Holders != 2 {
		t.Errorf("write hit saw %d holders, want 2", wh.Holders)
	}
	if !wh.Broadcast || wh.Inval != 0 {
		t.Errorf("Dir0B must broadcast invalidations: %+v", wh)
	}
	if !wh.DirCheck {
		t.Error("Dir0B write hit to clean block must query the directory")
	}
	rm := res[4]
	if !rm.WriteBack || !rm.CacheSupply {
		t.Errorf("dirty-miss must flush and snarf: %+v", rm)
	}
}

func TestDir0BCleanExactlyOneAvoidsBroadcast(t *testing.T) {
	p := NewDir0B(4)
	res := applyChecked(t, p,
		rd(0, 1), // sole clean holder
		wr(0, 1), // clean-in-exactly-one: no broadcast needed
	)
	wh := res[1]
	if wh.Type != event.WrHitClean {
		t.Fatalf("classified %v", wh.Type)
	}
	if wh.Broadcast || wh.Inval != 0 {
		t.Errorf("sole-holder write should not invalidate: %+v", wh)
	}
	if !wh.DirCheck {
		t.Error("directory must still be consulted to set the dirty state")
	}
}

func TestDir0BWriteMissDirtyBroadcasts(t *testing.T) {
	p := NewDir0B(2)
	res := applyChecked(t, p,
		wr(0, 1), // first ref, dirty in 0
		wr(1, 1), // write miss, dirty elsewhere
	)
	expectTypes(t, res, event.WrMissFirst, event.WrMissDirty)
	wm := res[1]
	if !wm.Broadcast || !wm.WriteBack {
		t.Errorf("Dir0B dirty write miss must broadcast the flush: %+v", wm)
	}
}

func TestDirNNBSequentialInvalidation(t *testing.T) {
	p := NewDirNNB(4)
	res := applyChecked(t, p,
		rd(0, 1), rd(1, 1), rd(2, 1), rd(3, 1),
		wr(3, 1), // invalidate 0,1,2 with directed messages
	)
	wh := res[4]
	if wh.Type != event.WrHitClean || wh.Inval != 3 || wh.Broadcast {
		t.Errorf("DirNNB should send 3 directed invals: %+v", wh)
	}
	// Dirty write miss is directed too.
	res = applyChecked(t, NewDirNNB(2), wr(0, 2), wr(1, 2))
	if res[1].Inval != 1 || res[1].Broadcast {
		t.Errorf("DirNNB dirty miss: %+v", res[1])
	}
}

func TestDirNNBNeverBroadcasts(t *testing.T) {
	p := NewDirNNB(4)
	for _, res := range apply(t, p, randomRefs(7, 4, 32, 20000)...) {
		if res.Broadcast {
			t.Fatal("DirNNB broadcast an invalidation")
		}
	}
}

func TestDiriBOverflowSetsBroadcastBit(t *testing.T) {
	p := NewDiriB(4, 1) // Dir1B
	res := applyChecked(t, p,
		rd(0, 1), // pointer -> 0
		wr(0, 1), // clean hit by the sole holder; entry becomes dirty {0}
		rd(1, 1), // flush, two holders {0,1}: pointer full -> bcast bit
		wr(1, 1), // must broadcast
	)
	expectTypes(t, res, event.RdMissFirst, event.WrHitClean, event.RdMissDirty, event.WrHitClean)
	wh := res[3]
	if !wh.Broadcast || wh.Inval != 0 {
		t.Errorf("Dir1B with overflowed pointer must broadcast: %+v", wh)
	}
	// After the write the entry is exclusive again: one more reader then
	// a write by the same reader needs no broadcast... but two readers do.
	res = applyChecked(t, NewDiriB(4, 2),
		rd(0, 2), rd(1, 2), wr(0, 2),
	)
	wh = res[2]
	if wh.Broadcast || wh.Inval != 1 {
		t.Errorf("Dir2B with room should send one directed inval: %+v", wh)
	}
}

func TestDiriBNameAndConstruction(t *testing.T) {
	if got := NewDiriB(8, 3).Name(); got != "Dir3B" {
		t.Errorf("name = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewDiriB with i=0 should panic")
		}
	}()
	NewDiriB(4, 0)
}

func TestDiriNBLimitsCopies(t *testing.T) {
	p := NewDiriNB(4, 2)
	res := applyChecked(t, p,
		rd(0, 1), rd(1, 1),
		rd(2, 1), // third copy: oldest (cache 0) forcibly invalidated
	)
	third := res[2]
	if third.ForcedInval != 1 {
		t.Errorf("expected a forced invalidation: %+v", third)
	}
	// Cache 0 lost its copy, so its next read misses.
	res = apply(t, p, rd(0, 1))
	if res[0].Type != event.RdMissClean {
		t.Errorf("evicted holder should miss: %v", res[0].Type)
	}
}

func TestDiriNBHolderLimitInvariant(t *testing.T) {
	p := NewDiriNB(8, 3).(*mrsw)
	apply(t, p, randomRefs(11, 8, 24, 30000)...)
	for b, bl := range p.blocks {
		if n := bl.holders.Count(); n > 3 {
			t.Fatalf("block %#x has %d holders, limit 3", b, n)
		}
	}
}

func TestDiriNBFullPointerEqualsFullMap(t *testing.T) {
	// With i >= ncpu the DiriNB constructor degrades to the full map.
	p := NewDiriNB(4, 4)
	refs := randomRefs(13, 4, 16, 10000)
	full := NewDirNNB(4)
	a := countTypes(apply(t, p, refs...))
	b := countTypes(apply(t, full, refs...))
	if a != b {
		t.Error("Dir4NB at 4 CPUs should classify like DirNNB")
	}
}

func TestWTIWritesGoThrough(t *testing.T) {
	p := NewWTI(2)
	res := applyChecked(t, p,
		rd(0, 1),
		wr(0, 1), // write-through, sole holder
		rd(1, 1), // memory is current: plain fill, no write-back
		wr(1, 1), // write hit; the write-through invalidates 0 by snooping
		rd(0, 1), // re-fetch after snoop invalidation
		wr(0, 2), // first touch of a fresh block
		wr(1, 2), // write miss on a block exclusive elsewhere
	)
	expectTypes(t, res,
		event.RdMissFirst, event.WrHitClean, event.RdMissDirty,
		event.WrHitClean, event.RdMissDirty,
		event.WrMissFirst, event.WrMissDirty)
	for i, r := range res {
		if r.WriteBack {
			t.Errorf("ref %d: WTI must never write back", i)
		}
		if r.Type.IsWrite() && !r.Update {
			t.Errorf("ref %d: WTI write did not go to memory", i)
		}
		if r.DirCheck {
			t.Errorf("ref %d: WTI has no directory", i)
		}
	}
}

func TestWTIMatchesDir0BEventCounts(t *testing.T) {
	// The paper: same state-change model, identical event frequencies.
	refs := randomRefs(17, 4, 40, 50000)
	wti := countTypes(apply(t, NewWTI(4), refs...))
	d0b := countTypes(apply(t, NewDir0B(4), refs...))
	if wti != d0b {
		t.Errorf("WTI and Dir0B event counts differ:\nWTI %v\nDir0B %v", wti, d0b)
	}
}

func TestMRSWInstrIgnored(t *testing.T) {
	p := NewDir0B(2)
	res := applyChecked(t, p, in(0, 1), in(1, 1), rd(0, 1))
	expectTypes(t, res, event.Instr, event.Instr, event.RdMissFirst)
}

func TestMRSWWriteAfterReadIsHitClean(t *testing.T) {
	// The read-modify-write pattern the paper highlights: the write after
	// a read miss is a hit on a clean block, not a write miss.
	p := NewDir0B(2)
	res := applyChecked(t, p, rd(0, 5), wr(0, 5), wr(0, 5))
	expectTypes(t, res, event.RdMissFirst, event.WrHitClean, event.WrHitOwn)
}

func TestMRSWRejectsBadInput(t *testing.T) {
	p := NewDir0B(2)
	for _, fn := range []func(){
		func() { p.Access(rd(5, 1)) },       // CPU out of range
		func() { p.Access(trRefBadKind()) }, // invalid kind
		func() { checkCPUs(0) },             // bad constructor arg
		func() { checkCPUs(MaxCPUs + 1) },   // too many CPUs
		func() { NewDiriNB(4, 0) },          // no pointers
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func trRefBadKind() trace.Ref {
	r := rd(0, 1)
	r.Kind = 9
	return r
}
