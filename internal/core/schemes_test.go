package core

import (
	"strings"
	"testing"
)

func TestNewByNameFixedSchemes(t *testing.T) {
	cases := map[string]string{
		"Dir1NB":  "Dir1NB",
		"dir0b":   "Dir0B",
		"DIRNNB":  "DirNNB",
		"wti":     "WTI",
		"Dragon":  "Dragon",
		" dir0b ": "Dir0B",
	}
	for in, want := range cases {
		p, err := NewByName(in, 4)
		if err != nil {
			t.Errorf("NewByName(%q): %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("NewByName(%q).Name() = %q, want %q", in, p.Name(), want)
		}
		if p.CPUs() != 4 {
			t.Errorf("NewByName(%q).CPUs() = %d", in, p.CPUs())
		}
	}
}

func TestNewByNameParameterized(t *testing.T) {
	cases := map[string]string{
		"Dir2NB": "Dir2NB",
		"dir4nb": "Dir4NB",
		"Dir1B":  "Dir1B",
		"dir8b":  "Dir8B",
		// Dir1NB resolves to the dedicated single-copy engine, not
		// DiriNB with one pointer.
		"dir1nb": "Dir1NB",
	}
	for in, want := range cases {
		p, err := NewByName(in, 16)
		if err != nil {
			t.Errorf("NewByName(%q): %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("NewByName(%q) = %q, want %q", in, p.Name(), want)
		}
	}
}

func TestNewByNameErrors(t *testing.T) {
	for _, in := range []string{"", "MOESI", "dirXb", "dir0nb", "dir-1b", "dirb"} {
		if _, err := NewByName(in, 4); err == nil {
			t.Errorf("NewByName(%q) should fail", in)
		} else if !strings.Contains(err.Error(), "unknown scheme") {
			t.Errorf("NewByName(%q) error %q", in, err)
		}
	}
}

func TestSchemesSorted(t *testing.T) {
	s := Schemes()
	if len(s) < 5 {
		t.Fatalf("Schemes() = %v", s)
	}
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			t.Errorf("Schemes not sorted: %v", s)
		}
	}
	// Every listed scheme must construct.
	for _, name := range s {
		if _, err := NewByName(name, 2); err != nil {
			t.Errorf("listed scheme %q does not construct: %v", name, err)
		}
	}
}

func TestAttach(t *testing.T) {
	for _, name := range []string{"Dir1NB", "Dir0B", "DirNNB", "Dir2B", "Dir2NB", "WTI", "Dragon"} {
		p, err := NewByName(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !Attach(p, NewChecker()) {
			t.Errorf("%s does not accept a checker", name)
		}
	}
}
