package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// firefly implements the DEC Firefly snoopy update protocol (Thacker &
// Stewart, the paper's reference [3]). Like Dragon it updates sharers
// instead of invalidating them, but writes to shared blocks also go
// through to memory, so memory is stale only for blocks a single cache
// holds dirty. A miss is supplied by the caches when the shared line is
// asserted, by memory otherwise.
type firefly struct {
	ncpu   int
	seen   seenSet
	blocks map[trace.Block]*fireflyBlock

	Checker *Checker
}

type fireflyBlock struct {
	holders Set
	// stale reports that memory lags the (sole) holder's copy; a shared
	// write refreshes memory, so stale implies one holder.
	stale bool
	owner uint8
}

// NewFirefly returns a Firefly engine for ncpu caches.
func NewFirefly(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &firefly{ncpu: ncpu, seen: seenSet{}, blocks: map[trace.Block]*fireflyBlock{}}
}

func (p *firefly) Name() string { return "Firefly" }
func (p *firefly) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *firefly) SetChecker(c *Checker) { p.Checker = c }

func (p *firefly) block(b trace.Block) *fireflyBlock {
	bl := p.blocks[b]
	if bl == nil {
		bl = &fireflyBlock{}
		p.blocks[b] = bl
	}
	return bl
}

func (p *firefly) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: Firefly: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.read(r.CPU, r.Block())
	case trace.Write:
		return p.write(r.CPU, r.Block())
	}
	panic(fmt.Sprintf("core: Firefly: invalid reference kind %d", r.Kind))
}

func (p *firefly) fill(bl *fireflyBlock, c uint8, b trace.Block, res *event.Result) {
	res.Holders = bl.holders.Count()
	switch {
	case bl.stale:
		// The dirty holder supplies and writes memory back in the
		// same transaction (Firefly semantics); everyone ends shared.
		res.CacheSupply = true
		res.WriteBack = true
		p.Checker.WriteBack(bl.owner, b)
		p.Checker.FillFromCache(c, bl.owner, b)
		bl.stale = false
	case !bl.holders.Empty():
		res.CacheSupply = true
		p.Checker.FillFromCache(c, bl.holders.First(), b)
	default:
		p.Checker.FillFromMemory(c, b)
	}
	bl.holders = bl.holders.Add(c)
}

func (p *firefly) read(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		p.Checker.ReadHit(c, b)
		return event.Result{Type: event.RdHit}
	}
	first := p.seen.touch(b)
	var res event.Result
	switch {
	case bl.stale:
		res.Type = event.RdMissDirty
	case !bl.holders.Empty():
		res.Type = event.RdMissClean
	case first:
		res.Type = event.RdMissFirst
	default:
		res.Type = event.RdMissMem
	}
	p.fill(bl, c, b, &res)
	return res
}

func (p *firefly) write(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		others := bl.holders.Del(c)
		p.Checker.Write(c, b)
		if others.Empty() {
			// Exclusive: write locally, memory goes stale.
			bl.stale = true
			bl.owner = c
			return event.Result{Type: event.WrHitLocal}
		}
		// Shared: the update goes to the sharers AND to memory
		// (write-through on shared data — the Firefly difference from
		// Dragon), so memory stays current.
		p.Checker.UpdateSharers(b)
		p.Checker.WriteThrough(c, b)
		bl.stale = false
		return event.Result{
			Type:      event.WrHitShared,
			Holders:   others.Count(),
			Broadcast: true,
			Update:    true,
		}
	}
	first := p.seen.touch(b)
	var res event.Result
	switch {
	case bl.stale:
		res.Type = event.WrMissDirty
	case !bl.holders.Empty():
		res.Type = event.WrMissClean
	case first:
		res.Type = event.WrMissFirst
	default:
		res.Type = event.WrMissMem
	}
	p.fill(bl, c, b, &res)
	p.Checker.Write(c, b)
	if others := bl.holders.Del(c); !others.Empty() {
		res.Update = true
		res.Broadcast = true
		p.Checker.UpdateSharers(b)
		p.Checker.WriteThrough(c, b)
		bl.stale = false
	} else {
		bl.stale = true
		bl.owner = c
	}
	return res
}

func (p *firefly) CheckInvariants() error {
	for b, bl := range p.blocks {
		if bl.stale && !bl.holders.Only(bl.owner) {
			return fmt.Errorf("Firefly: block %#x stale with holders %b (owner %d)",
				b, bl.holders, bl.owner)
		}
	}
	return p.Checker.Err()
}
