package core

import (
	"reflect"
	"testing"

	"dirsim/internal/event"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

// TestDir1NBTableMatchesSpec cross-validates the table-driven Dir1NB
// engine against the method-dispatch specification: identical event
// results, reference by reference, over heavy random streams at several
// machine sizes.
func TestDir1NBTableMatchesSpec(t *testing.T) {
	for _, cpus := range []int{1, 2, 4, 8, 64} {
		refs := randomRefs(int64(100+cpus), cpus, 512, 60000)
		table, spec := NewDir1NB(cpus), NewDir1NBSpec(cpus)
		if _, ok := table.(Batcher); !ok {
			t.Fatal("table engine should implement Batcher")
		}
		for i, r := range refs {
			got, want := table.Access(r), spec.Access(r)
			if got != want {
				t.Fatalf("cpus=%d ref %d %v: table %+v, spec %+v", cpus, i, r, got, want)
			}
		}
		if err := table.CheckInvariants(); err != nil {
			t.Fatalf("cpus=%d: table invariants: %v", cpus, err)
		}
	}
}

// TestDir1NBTableBatchMatchesSpec drives the table engine through its
// batched loop (the production path) on the standard workloads and
// compares against the specification engine run per reference.
func TestDir1NBTableBatchMatchesSpec(t *testing.T) {
	for _, cfg := range workload.StandardConfigs(4, 20000) {
		tr := workload.MustGenerate(cfg)
		table, spec := NewDir1NB(tr.CPUs), NewDir1NBSpec(tr.CPUs)
		got := AccessBatch(table, tr.Refs, nil)
		want := make([]event.Result, 0, len(tr.Refs))
		for _, r := range tr.Refs {
			want = append(want, spec.Access(r))
		}
		if !reflect.DeepEqual(got, want) {
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s ref %d: table %+v, spec %+v", cfg.Name, i, got[i], want[i])
				}
			}
			t.Fatalf("%s: batch results differ", cfg.Name)
		}
	}
}

// TestDir1NBTableCheckedMatchesSpec holds the two engines identical with a
// value-coherence checker attached — the checked path falls back to
// per-reference access, and both checkers must stay clean.
func TestDir1NBTableCheckedMatchesSpec(t *testing.T) {
	refs := randomRefs(7, 8, 64, 30000)
	table, spec := NewDir1NB(8), NewDir1NBSpec(8)
	if !Attach(table, NewChecker()) || !Attach(spec, NewChecker()) {
		t.Fatal("both engines should accept a checker")
	}
	got := AccessBatch(table, refs, nil)
	want := AccessBatch(spec, refs, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("checked results differ")
	}
	if err := table.CheckInvariants(); err != nil {
		t.Fatalf("table invariants: %v", err)
	}
	if err := spec.CheckInvariants(); err != nil {
		t.Fatalf("spec invariants: %v", err)
	}
}

// TestDir1NBTablePanicsOnBadInput mirrors the spec engine's contract.
func TestDir1NBTablePanicsOnBadInput(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	p := NewDir1NB(2)
	expectPanic("cpu out of range", func() { p.Access(rd(3, 0)) })
	expectPanic("cpu out of range (batch)", func() {
		AccessBatch(NewDir1NB(2), []trace.Ref{rd(3, 0)}, nil)
	})
	expectPanic("bad kind", func() {
		p.Access(trace.Ref{Addr: 0, CPU: 0, Kind: trace.Kind(9)})
	})
	expectPanic("bad kind (batch)", func() {
		AccessBatch(NewDir1NB(2), []trace.Ref{{Addr: 0, CPU: 0, Kind: trace.Kind(9)}}, nil)
	})
}

// BenchmarkDir1NBTable and BenchmarkDir1NBSpec size the win from the
// table-driven core on a standard trace.
func BenchmarkDir1NBTable(b *testing.B) { benchDir1NB(b, NewDir1NB) }
func BenchmarkDir1NBSpec(b *testing.B)  { benchDir1NB(b, NewDir1NBSpec) }

func benchDir1NB(b *testing.B, mk func(int) Protocol) {
	tr := workload.POPS(4, 200000)
	out := make([]event.Result, 0, len(tr.Refs))
	b.SetBytes(int64(len(tr.Refs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mk(tr.CPUs)
		out = AccessBatch(p, tr.Refs, out[:0])
	}
	_ = out
}
