package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// dragon implements the Dragon snoopy update protocol, the
// best-performing snoopy scheme in the paper's comparison. Instead of
// invalidating stale copies, a write to a shared block broadcasts the
// written word and every sharer updates in place. A "shared" bus line
// (asserted by any snooping cache that holds the address) tells the writer
// whether the broadcast is necessary at all.
//
// With infinite caches a block, once loaded, stays loaded forever: the
// only misses are cold fills, and the interesting events are write hits to
// shared blocks (wh-distrib), which each cost a bus transaction.
type dragon struct {
	ncpu   int
	seen   seenSet
	blocks map[trace.Block]*dragonBlock

	Checker *Checker
}

type dragonBlock struct {
	holders Set
	// stale reports that memory does not have the latest value; the last
	// writer (owner) is responsible for supplying data on a miss.
	stale bool
	owner uint8
}

// NewDragon returns a Dragon engine for ncpu caches.
func NewDragon(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &dragon{ncpu: ncpu, seen: seenSet{}, blocks: map[trace.Block]*dragonBlock{}}
}

func (p *dragon) Name() string { return "Dragon" }
func (p *dragon) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *dragon) SetChecker(c *Checker) { p.Checker = c }

func (p *dragon) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: Dragon: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.read(r.CPU, r.Block())
	case trace.Write:
		return p.write(r.CPU, r.Block())
	}
	panic(fmt.Sprintf("core: Dragon: invalid reference kind %d", r.Kind))
}

func (p *dragon) block(b trace.Block) *dragonBlock {
	bl := p.blocks[b]
	if bl == nil {
		bl = &dragonBlock{}
		p.blocks[b] = bl
	}
	return bl
}

func (p *dragon) fill(bl *dragonBlock, c uint8, b trace.Block, res *event.Result) {
	res.Holders = bl.holders.Count()
	if bl.stale {
		// The last writer supplies the block cache-to-cache.
		res.CacheSupply = true
		p.Checker.FillFromCache(c, bl.owner, b)
	} else {
		p.Checker.FillFromMemory(c, b)
	}
	bl.holders = bl.holders.Add(c)
}

func (p *dragon) read(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		p.Checker.ReadHit(c, b)
		return event.Result{Type: event.RdHit}
	}
	first := p.seen.touch(b)
	var res event.Result
	switch {
	case bl.stale:
		res.Type = event.RdMissDirty
	case !bl.holders.Empty():
		res.Type = event.RdMissClean
	case first:
		res.Type = event.RdMissFirst
	default:
		res.Type = event.RdMissMem
	}
	p.fill(bl, c, b, &res)
	return res
}

func (p *dragon) write(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		others := bl.holders.Del(c)
		p.Checker.Write(c, b)
		bl.stale = true
		bl.owner = c
		if others.Empty() {
			return event.Result{Type: event.WrHitLocal}
		}
		// Shared line asserted: broadcast the word, sharers update.
		p.Checker.UpdateSharers(b)
		return event.Result{
			Type:      event.WrHitShared,
			Holders:   others.Count(),
			Broadcast: true,
			Update:    true,
		}
	}
	// Write miss: fetch the block, then behave like a write hit.
	first := p.seen.touch(b)
	var res event.Result
	switch {
	case bl.stale:
		res.Type = event.WrMissDirty
	case !bl.holders.Empty():
		res.Type = event.WrMissClean
	case first:
		res.Type = event.WrMissFirst
	default:
		res.Type = event.WrMissMem
	}
	p.fill(bl, c, b, &res)
	p.Checker.Write(c, b)
	bl.stale = true
	bl.owner = c
	if res.Holders > 0 {
		res.Update = true
		res.Broadcast = true
		p.Checker.UpdateSharers(b)
	}
	return res
}

func (p *dragon) CheckInvariants() error {
	for b, bl := range p.blocks {
		if bl.stale && !bl.holders.Has(bl.owner) {
			return fmt.Errorf("Dragon: block %#x stale but owner %d is not a holder", b, bl.owner)
		}
	}
	return p.Checker.Err()
}
