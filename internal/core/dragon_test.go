package core

import (
	"testing"

	"dirsim/internal/event"
)

func TestDragonUpdateSemantics(t *testing.T) {
	p := NewDragon(4)
	res := applyChecked(t, p,
		rd(0, 1), // cold fill
		rd(1, 1), // clean fill
		wr(0, 1), // shared write: broadcast update, 1 keeps a live copy
		rd(1, 1), // HIT — the update refreshed cache 1
		wr(1, 1), // shared write the other way
		rd(0, 1), // hit again
		wr(2, 1), // write miss: fill from owner (stale memory) + update
	)
	expectTypes(t, res,
		event.RdMissFirst, event.RdMissClean, event.WrHitShared,
		event.RdHit, event.WrHitShared, event.RdHit, event.WrMissDirty)

	sharedWrite := res[2]
	if !sharedWrite.Update || !sharedWrite.Broadcast || sharedWrite.Holders != 1 {
		t.Errorf("shared write: %+v", sharedWrite)
	}
	wm := res[6]
	if !wm.CacheSupply {
		t.Error("miss on a stale block must be supplied by the owner cache")
	}
	if !wm.Update {
		t.Error("write miss to a shared block must update the sharers")
	}
	if wm.WriteBack {
		t.Error("Dragon never writes back")
	}
}

func TestDragonLocalWritesStayLocal(t *testing.T) {
	p := NewDragon(4)
	res := applyChecked(t, p, rd(0, 2), wr(0, 2), wr(0, 2))
	expectTypes(t, res, event.RdMissFirst, event.WrHitLocal, event.WrHitLocal)
	for _, r := range res[1:] {
		if r.Update || r.Broadcast {
			t.Errorf("local write used the bus: %+v", r)
		}
	}
}

func TestDragonNeverInvalidates(t *testing.T) {
	// Under Dragon a cache that ever held a block holds it forever: the
	// number of misses equals the number of distinct (cpu, block) pairs.
	refs := randomRefs(31, 4, 16, 20000)
	p := NewDragon(4)
	results := apply(t, p, refs...)
	seen := map[[2]uint64]bool{}
	wantMisses := 0
	for _, r := range refs {
		if r.Kind == 0 { // instr
			continue
		}
		key := [2]uint64{uint64(r.CPU), uint64(r.Block())}
		if !seen[key] {
			seen[key] = true
			wantMisses++
		}
	}
	misses := 0
	for _, res := range results {
		if res.Type.IsMiss() {
			misses++
		}
	}
	if misses != wantMisses {
		t.Errorf("Dragon misses = %d, want %d (one per cpu-block pair)", misses, wantMisses)
	}
	for _, res := range results {
		if res.Inval != 0 || res.ForcedInval != 0 {
			t.Fatal("Dragon sent an invalidation")
		}
	}
}

func TestDragonSpinnersNeverMiss(t *testing.T) {
	// The Section 5.2 contrast: a lock release updates the spinners'
	// copies instead of invalidating them.
	p := NewDragon(2)
	res := applyChecked(t, p,
		rd(1, 9),           // spinner caches the lock
		wr(0, 9),           // owner releases: write miss + update
		rd(1, 9), rd(1, 9), // spins hit
	)
	expectTypes(t, res,
		event.RdMissFirst, event.WrMissClean, event.RdHit, event.RdHit)
}

func TestDragonInstrAndErrors(t *testing.T) {
	p := NewDragon(2)
	res := applyChecked(t, p, in(0, 1))
	expectTypes(t, res, event.Instr)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range CPU")
		}
	}()
	p.Access(rd(7, 0))
}
