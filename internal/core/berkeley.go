package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// berkeley implements the Berkeley Ownership snoopy protocol (Katz,
// Eggers, Wood, Perkins, Sheldon — the paper's reference [7] and the
// subject of its Section 5 cost-model aside). Its distinguishing features
// over Dir0B's state model:
//
//   - A dirty block read by another cache is supplied cache-to-cache by
//     its owner *without* updating memory: the owner moves to an
//     owned-shared state and remains responsible for the data, so memory
//     can stay stale across arbitrarily long read-sharing phases.
//   - The writer's own cache state answers the "do I need to
//     invalidate?" question, so there is no directory and no directory
//     access; invalidations ride a one-cycle bus broadcast.
//
// The paper estimates Berkeley by re-pricing Dir0B's event stream
// (bus.Model.Berkeley); this engine simulates the protocol outright so
// the estimate can be validated against a real state machine.
type berkeley struct {
	ncpu   int
	seen   seenSet
	blocks map[trace.Block]*berkeleyBlock

	Checker *Checker
}

type berkeleyBlock struct {
	holders Set
	// owned reports that memory is stale and owner must supply the
	// data. Unlike the MRSW engines, an owned block may be shared.
	owned bool
	owner uint8
}

// NewBerkeley returns a Berkeley Ownership engine for ncpu caches.
func NewBerkeley(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &berkeley{ncpu: ncpu, seen: seenSet{}, blocks: map[trace.Block]*berkeleyBlock{}}
}

func (p *berkeley) Name() string { return "Berkeley" }
func (p *berkeley) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *berkeley) SetChecker(c *Checker) { p.Checker = c }

func (p *berkeley) block(b trace.Block) *berkeleyBlock {
	bl := p.blocks[b]
	if bl == nil {
		bl = &berkeleyBlock{}
		p.blocks[b] = bl
	}
	return bl
}

func (p *berkeley) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: Berkeley: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.read(r.CPU, r.Block())
	case trace.Write:
		return p.write(r.CPU, r.Block())
	}
	panic(fmt.Sprintf("core: Berkeley: invalid reference kind %d", r.Kind))
}

func (p *berkeley) read(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		p.Checker.ReadHit(c, b)
		return event.Result{Type: event.RdHit}
	}
	first := p.seen.touch(b)
	res := event.Result{Holders: bl.holders.Count()}
	switch {
	case bl.owned:
		// The owner supplies; it keeps ownership (owned-shared) and
		// memory stays stale — no write-back.
		res.Type = event.RdMissDirty
		res.CacheSupply = true
		p.Checker.FillFromCache(c, bl.owner, b)
	case !bl.holders.Empty():
		res.Type = event.RdMissClean
		p.Checker.FillFromMemory(c, b)
	case first:
		res.Type = event.RdMissFirst
		p.Checker.FillFromMemory(c, b)
	default:
		res.Type = event.RdMissMem
		p.Checker.FillFromMemory(c, b)
	}
	bl.holders = bl.holders.Add(c)
	return res
}

func (p *berkeley) write(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	var res event.Result
	others := bl.holders.Del(c)
	switch {
	case bl.holders.Has(c) && bl.owned && bl.owner == c && others.Empty():
		// Owned exclusively: silent write.
		res.Type = event.WrHitOwn
		p.Checker.Write(c, b)
	case bl.holders.Has(c):
		// Shared (owned-shared by the writer, owned by another cache,
		// or unowned-clean): broadcast an invalidation. The writer's
		// own state makes the decision — no directory is involved —
		// and Berkeley has no exclusive-clean state, so even a sole
		// unowned copy pays the broadcast.
		res.Type = event.WrHitClean
		res.Holders = others.Count()
		res.Broadcast = true
		for _, v := range others.Members(nil) {
			p.Checker.Invalidate(v, b)
		}
		p.Checker.Write(c, b)
	default:
		first := p.seen.touch(b)
		res.Holders = bl.holders.Count()
		switch {
		case bl.owned:
			// Fetch from the owner and invalidate every copy; the
			// broadcast read-for-ownership does both. Memory is
			// not updated.
			res.Type = event.WrMissDirty
			res.CacheSupply = true
			res.Broadcast = true
			p.Checker.FillFromCache(c, bl.owner, b)
			for _, v := range bl.holders.Members(nil) {
				p.Checker.Invalidate(v, b)
			}
		case !bl.holders.Empty():
			res.Type = event.WrMissClean
			res.Broadcast = true
			p.Checker.FillFromMemory(c, b)
			for _, v := range bl.holders.Members(nil) {
				p.Checker.Invalidate(v, b)
			}
		case first:
			res.Type = event.WrMissFirst
			p.Checker.FillFromMemory(c, b)
		default:
			res.Type = event.WrMissMem
			p.Checker.FillFromMemory(c, b)
		}
		p.Checker.Write(c, b)
	}
	bl.holders = 0
	bl.holders = bl.holders.Add(c)
	bl.owned = true
	bl.owner = c
	return res
}

func (p *berkeley) CheckInvariants() error {
	for b, bl := range p.blocks {
		if bl.owned && !bl.holders.Has(bl.owner) {
			return fmt.Errorf("Berkeley: block %#x owned by non-holder %d", b, bl.owner)
		}
		if !bl.owned && bl.holders.Empty() && len(p.seen) > 0 {
			// Unowned, uncached blocks are fine (never written).
			continue
		}
	}
	return p.Checker.Err()
}
