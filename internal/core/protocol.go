// Package core implements the cache-coherence protocol engines evaluated in
// the paper: the directory schemes of the Dir_i X taxonomy (Dir1NB, DiriNB
// including the full-map DirNNB, Dir0B, DiriB including Dir1B) and the
// snoopy baselines (write-through-with-invalidate and Dragon).
//
// An engine is a state-change specification: fed a time-ordered reference
// stream, it classifies every reference into the Table 4 event taxonomy and
// reports the coherence actions taken (invalidations, write-backs,
// broadcasts, directory queries). It deliberately knows nothing about bus
// timing — costs are applied afterwards by internal/bus, mirroring the
// paper's separation between event frequencies and hardware cost models.
//
// All engines model the paper's infinite caches: a block leaves a cache
// only through coherence actions, never through replacement. The finite
// cache substrate in internal/cache is wired in by the extension studies.
package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// MaxCPUs is the largest processor count the engines support; holder sets
// are single-word bitsets.
const MaxCPUs = 64

// Protocol is a coherence state machine over a fixed set of caches.
// Implementations are not safe for concurrent use; run one trace through
// one engine at a time.
type Protocol interface {
	// Name returns the scheme's name in the paper's notation
	// (e.g. "Dir1NB", "Dir0B", "WTI", "Dragon").
	Name() string
	// CPUs returns the number of caches the engine simulates.
	CPUs() int
	// Access applies one reference and returns its classification and
	// the coherence actions it triggered.
	Access(r trace.Ref) event.Result
	// CheckInvariants validates the engine's internal consistency (for
	// example: a dirty block has exactly one holder). It is cheap enough
	// to call periodically from tests.
	CheckInvariants() error
}

// Batcher is implemented by engines with a data-oriented inner loop: they
// classify a whole batch of references without per-reference interface
// dispatch. Semantics must be identical to calling Access on each
// reference in order — the equivalence suites assert exactly that.
type Batcher interface {
	AccessBatch(refs []trace.Ref, out []event.Result) []event.Result
}

// AccessBatch applies every reference in refs to p in order, appending
// each classification to out and returning the extended slice. It is the
// batch-friendly form of the Access loop: callers reuse one results
// buffer (pass out[:0]) so a simulation's inner loop performs no
// per-reference allocation, and the single call site keeps the
// ref-fetch/classify stage separate from whatever accounting follows.
// Engines that implement Batcher get their batched loop called directly.
func AccessBatch(p Protocol, refs []trace.Ref, out []event.Result) []event.Result {
	if b, ok := p.(Batcher); ok {
		return b.AccessBatch(refs, out)
	}
	for _, r := range refs {
		out = append(out, p.Access(r))
	}
	return out
}

// checkCPUs validates a processor count for an engine constructor.
func checkCPUs(ncpu int) {
	if ncpu <= 0 || ncpu > MaxCPUs {
		panic(fmt.Sprintf("core: cpu count %d out of range [1,%d]", ncpu, MaxCPUs))
	}
}

// Set is a bitset of cache indices (one bit per CPU, up to MaxCPUs).
type Set uint64

// Has reports whether cpu is in the set.
func (s Set) Has(cpu uint8) bool { return s&(1<<cpu) != 0 }

// Add returns the set with cpu included.
func (s Set) Add(cpu uint8) Set { return s | 1<<cpu }

// Del returns the set with cpu removed.
func (s Set) Del(cpu uint8) Set { return s &^ (1 << cpu) }

// Count returns the number of caches in the set.
func (s Set) Count() int {
	n := 0
	for ; s != 0; s &= s - 1 {
		n++
	}
	return n
}

// Empty reports whether the set has no members.
func (s Set) Empty() bool { return s == 0 }

// Only reports whether cpu is the sole member of the set.
func (s Set) Only(cpu uint8) bool { return s == 1<<cpu }

// First returns the lowest cache index in the set; it panics on an empty
// set (callers check Empty first).
func (s Set) First() uint8 {
	if s == 0 {
		panic("core: First on empty set")
	}
	var i uint8
	for s&1 == 0 {
		s >>= 1
		i++
	}
	return i
}

// Members appends the set's cache indices to dst and returns it.
func (s Set) Members(dst []uint8) []uint8 {
	for i := uint8(0); s != 0; i++ {
		if s&1 != 0 {
			dst = append(dst, i)
		}
		s >>= 1
	}
	return dst
}

// seenSet tracks which blocks have ever been referenced, so engines can
// classify first-reference misses (rm-first-ref / wm-first-ref), which the
// paper excludes from the multiprocessing overhead.
type seenSet map[trace.Block]struct{}

// touch records a reference to b and reports whether it was the first one.
func (s seenSet) touch(b trace.Block) (first bool) {
	if _, ok := s[b]; ok {
		return false
	}
	s[b] = struct{}{}
	return true
}
