package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// dir1nbTable is the data-oriented Dir1NB engine: the scheme's entire
// state machine compiled into lookup tables so the batched inner loop does
// no interface dispatch and no branch tree per reference.
//
// Per-block state is three flag bits plus the holder index packed into one
// uint16, stored in fixed-size pages keyed by the high block bits (the zero
// value is exactly the "never referenced" state, so fresh pages need no
// initialisation). Each reference builds a 5-bit situation key —
//
//	bit 0  held   (some cache holds the block)
//	bit 1  dirty  (the holder's copy is modified)
//	bit 2  seen   (the block has been referenced before)
//	bit 3  own    (the holder is the referencing CPU)
//	bit 4  write  (the reference is a write)
//
// — and the key indexes two precomputed tables: the Table 4 classification
// with its coherence actions (d1tRes) and the state transition as an
// and/or/holder mask triple, so the update is
//
//	state' = state&and | or | cpu<<8&holderMask
//
// with no protocol branches at all. The method-dispatch engine behind
// NewDir1NBSpec remains the specification; TestDir1NBTableMatchesSpec holds
// the two bit-identical over random and standard reference streams.
type dir1nbTable struct {
	ncpu int

	pages    map[uint64]*dir1nbPage
	lastKey  uint64
	lastPage *dir1nbPage

	Checker *Checker
}

// Packed per-block state bits. Bits 8..13 hold the holder's CPU index
// (MaxCPUs is 64, so six bits suffice and uint16(cpu)<<8 cannot overflow).
const (
	d1tHeld        = 1 << 0
	d1tDirty       = 1 << 1
	d1tSeen        = 1 << 2
	d1tHolderShift = 8
	d1tHolderBits  = 0x3F << d1tHolderShift
)

// Situation-key bits (the low three mirror the state bits on purpose: the
// key starts as state&7).
const (
	d1tKeyOwn   = 1 << 3
	d1tKeyWrite = 1 << 4
	d1tKeys     = 1 << 5
)

// Pages are 4096 blocks (8 KiB) — big enough that the one-entry last-page
// cache almost always hits under the workloads' block locality, small
// enough that sparse address spaces stay cheap.
const (
	d1tPageBits = 12
	d1tPageSize = 1 << d1tPageBits
	d1tPageMask = d1tPageSize - 1
)

type dir1nbPage [d1tPageSize]uint16

// The precomputed tables: per-key classification and transition masks.
var (
	d1tRes        [d1tKeys]event.Result
	d1tAnd, d1tOr [d1tKeys]uint16
	d1tHolderMask [d1tKeys]uint16
)

func init() {
	for key := 0; key < d1tKeys; key++ {
		held := key&d1tHeld != 0
		dirty := key&d1tDirty != 0
		seen := key&d1tSeen != 0
		own := key&d1tKeyOwn != 0
		write := key&d1tKeyWrite != 0

		var res event.Result
		if held && own {
			// Hit: the copy is exclusive by construction, so even a
			// write to a clean block just sets the local dirty bit.
			if write {
				res.Type = event.WrHitOwn
				d1tOr[key] = d1tDirty
			} else {
				res.Type = event.RdHit
			}
			d1tAnd[key] = 0xFFFF
			d1tRes[key] = res
			continue
		}
		// Miss: steal the block from the holder, if any. The new state is
		// fully determined — held, seen, dirty iff writing, holder = cpu.
		switch {
		case held && dirty:
			res.Type = event.RdMissDirty
			if write {
				res.Type = event.WrMissDirty
			}
			res.Holders, res.Inval = 1, 1
			res.WriteBack, res.CacheSupply = true, true
		case held:
			res.Type = event.RdMissClean
			if write {
				res.Type = event.WrMissClean
			}
			res.Holders, res.Inval = 1, 1
		default:
			switch {
			case !seen && write:
				res.Type = event.WrMissFirst
			case !seen:
				res.Type = event.RdMissFirst
			case write:
				res.Type = event.WrMissMem
			default:
				res.Type = event.RdMissMem
			}
		}
		d1tAnd[key] = 0
		d1tOr[key] = d1tHeld | d1tSeen
		if write {
			d1tOr[key] |= d1tDirty
		}
		d1tHolderMask[key] = d1tHolderBits
		d1tRes[key] = res
	}
}

// NewDir1NB returns a Dir1NB engine for ncpu caches: the table-driven
// implementation, validated bit-identical against NewDir1NBSpec.
func NewDir1NB(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &dir1nbTable{ncpu: ncpu, pages: map[uint64]*dir1nbPage{}}
}

func (p *dir1nbTable) Name() string { return "Dir1NB" }
func (p *dir1nbTable) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only). With a
// checker attached the batched loop falls back to per-reference Access so
// data-movement callbacks fire in specification order.
func (p *dir1nbTable) SetChecker(c *Checker) { p.Checker = c }

// page returns the state page containing block index bi, allocating it on
// first touch. The one-entry cache makes consecutive same-page lookups a
// compare instead of a map probe.
func (p *dir1nbTable) page(bi uint64) *dir1nbPage {
	key := bi >> d1tPageBits
	if pg := p.lastPage; pg != nil && key == p.lastKey {
		return pg
	}
	pg := p.pages[key]
	if pg == nil {
		pg = new(dir1nbPage)
		p.pages[key] = pg
	}
	p.lastKey, p.lastPage = key, pg
	return pg
}

// AccessBatch implements Batcher: the allocation-free hot loop.
func (p *dir1nbTable) AccessBatch(refs []trace.Ref, out []event.Result) []event.Result {
	if p.Checker != nil {
		for _, r := range refs {
			out = append(out, p.Access(r))
		}
		return out
	}
	ncpu := p.ncpu
	for _, r := range refs {
		var write uint16
		switch r.Kind {
		case trace.Instr:
			out = append(out, event.Result{Type: event.Instr})
			continue
		case trace.Read:
		case trace.Write:
			write = d1tKeyWrite
		default:
			panic(fmt.Sprintf("core: Dir1NB: invalid reference kind %d", r.Kind))
		}
		if int(r.CPU) >= ncpu {
			panic(fmt.Sprintf("core: Dir1NB: cpu %d out of range [0,%d)", r.CPU, ncpu))
		}
		bi := uint64(r.Block())
		pg := p.page(bi)
		idx := bi & d1tPageMask
		st := pg[idx]

		key := st&7 | write
		if st&d1tHeld != 0 && uint8(st>>d1tHolderShift) == r.CPU {
			key |= d1tKeyOwn
		}
		out = append(out, d1tRes[key])
		pg[idx] = st&d1tAnd[key] | d1tOr[key] |
			uint16(r.CPU)<<d1tHolderShift&d1tHolderMask[key]
	}
	return out
}

func (p *dir1nbTable) Access(r trace.Ref) event.Result {
	var write uint16
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
	case trace.Write:
		write = d1tKeyWrite
	default:
		panic(fmt.Sprintf("core: Dir1NB: invalid reference kind %d", r.Kind))
	}
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: Dir1NB: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	b := r.Block()
	bi := uint64(b)
	pg := p.page(bi)
	idx := bi & d1tPageMask
	st := pg[idx]

	key := st&7 | write
	own := st&d1tHeld != 0 && uint8(st>>d1tHolderShift) == r.CPU
	if own {
		key |= d1tKeyOwn
	}
	pg[idx] = st&d1tAnd[key] | d1tOr[key] |
		uint16(r.CPU)<<d1tHolderShift&d1tHolderMask[key]

	if p.Checker != nil {
		// Replay the data movement in the same order the specification
		// engine reports it.
		c, holder := r.CPU, uint8(st>>d1tHolderShift)
		isWrite := write != 0
		switch {
		case own:
			if isWrite {
				p.Checker.Write(c, b)
				return d1tRes[key]
			}
			p.Checker.ReadHit(c, b)
			return d1tRes[key]
		case st&d1tHeld != 0 && st&d1tDirty != 0:
			p.Checker.WriteBack(holder, b)
			p.Checker.FillFromCache(c, holder, b)
			p.Checker.Invalidate(holder, b)
		case st&d1tHeld != 0:
			p.Checker.Invalidate(holder, b)
			p.Checker.FillFromMemory(c, b)
		default:
			p.Checker.FillFromMemory(c, b)
		}
		if isWrite {
			p.Checker.Write(c, b)
		}
	}
	return d1tRes[key]
}

func (p *dir1nbTable) CheckInvariants() error {
	// The packed state cannot represent more than one holder, so — as in
	// the specification engine — the only invariant to verify is
	// checker-level value coherence, plus basic state sanity: a dirty or
	// held flag on a block implies the block has been seen.
	for pk, pg := range p.pages {
		for i, st := range pg {
			if st == 0 {
				continue
			}
			if st&(d1tHeld|d1tDirty) != 0 && st&d1tSeen == 0 {
				return fmt.Errorf("core: Dir1NB: block %#x held or dirty but never seen",
					pk<<d1tPageBits|uint64(i))
			}
			if st&d1tDirty != 0 && st&d1tHeld == 0 {
				return fmt.Errorf("core: Dir1NB: block %#x dirty but not held",
					pk<<d1tPageBits|uint64(i))
			}
			if int(st>>d1tHolderShift) >= p.ncpu {
				return fmt.Errorf("core: Dir1NB: block %#x holder %d out of range",
					pk<<d1tPageBits|uint64(i), st>>d1tHolderShift)
			}
		}
	}
	return p.Checker.Err()
}
