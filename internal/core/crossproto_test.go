package core

import (
	"testing"
	"testing/quick"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// Cross-protocol properties: relationships between the schemes that must
// hold on any trace, checked on randomized inputs.

func allSchemes(ncpu int) []Protocol {
	return []Protocol{
		NewDir1NB(ncpu),
		NewDir0B(ncpu),
		NewDirNNB(ncpu),
		NewDiriNB(ncpu, 2),
		NewDiriB(ncpu, 1),
		NewDiriB(ncpu, 2),
		NewWTI(ncpu),
		NewDragon(ncpu),
	}
}

func TestAllSchemesValueCoherent(t *testing.T) {
	// Every protocol must keep every read coherent on a heavily shared
	// random workload — the central correctness property.
	refs := randomRefs(101, 6, 24, 60000)
	for _, p := range allSchemes(6) {
		applyChecked(t, p, refs...)
	}
}

func TestValueCoherenceQuick(t *testing.T) {
	f := func(seed int64) bool {
		refs := randomRefs(seed, 4, 10, 2000)
		for _, p := range allSchemes(4) {
			if !Attach(p, NewChecker()) {
				return false
			}
			for _, r := range refs {
				p.Access(r)
			}
			if p.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFirstRefCountsAgreeAcrossSchemes(t *testing.T) {
	// First-reference misses are a property of the trace, not of the
	// scheme: all engines must count exactly the same number.
	refs := randomRefs(55, 4, 40, 30000)
	var wantRd, wantWr int64 = -1, -1
	for _, p := range allSchemes(4) {
		c := countTypes(apply(t, p, refs...))
		if wantRd == -1 {
			wantRd, wantWr = c.N[event.RdMissFirst], c.N[event.WrMissFirst]
			continue
		}
		if c.N[event.RdMissFirst] != wantRd || c.N[event.WrMissFirst] != wantWr {
			t.Errorf("%s first-ref counts %d/%d, want %d/%d",
				p.Name(), c.N[event.RdMissFirst], c.N[event.WrMissFirst], wantRd, wantWr)
		}
	}
}

func TestMRSWFamilySameEventCounts(t *testing.T) {
	// Dir0B, DirNNB, DiriB and WTI share the state-change model, so
	// their classifications must be identical reference by reference.
	refs := randomRefs(77, 4, 30, 40000)
	family := []Protocol{NewDir0B(4), NewDirNNB(4), NewDiriB(4, 1), NewDiriB(4, 3), NewWTI(4)}
	var want event.Counts
	for i, p := range family {
		c := countTypes(apply(t, p, refs...))
		if i == 0 {
			want = c
			continue
		}
		if c != want {
			t.Errorf("%s diverges from Dir0B event counts", p.Name())
		}
	}
}

func TestDragonHasFewestMisses(t *testing.T) {
	// An update protocol never invalidates, so its total data miss count
	// is a lower bound for every invalidation protocol.
	refs := randomRefs(91, 4, 30, 40000)
	dragon := countTypes(apply(t, NewDragon(4), refs...))
	dMiss := dragon.ReadMisses() + dragon.WriteMisses()
	for _, p := range []Protocol{NewDir1NB(4), NewDir0B(4), NewDirNNB(4), NewWTI(4), NewDiriNB(4, 2)} {
		c := countTypes(apply(t, p, refs...))
		if m := c.ReadMisses() + c.WriteMisses(); m < dMiss-1e-9 {
			t.Errorf("%s misses %.4f%% < Dragon %.4f%%", p.Name(), m, dMiss)
		}
	}
}

func TestDir1NBHasMostMisses(t *testing.T) {
	// One-copy-at-a-time cannot miss less than the multi-copy schemes.
	refs := randomRefs(93, 4, 30, 40000)
	d1 := countTypes(apply(t, NewDir1NB(4), refs...))
	d1Miss := d1.ReadMisses() + d1.WriteMisses()
	for _, p := range []Protocol{NewDir0B(4), NewDirNNB(4), NewDragon(4)} {
		c := countTypes(apply(t, p, refs...))
		if m := c.ReadMisses() + c.WriteMisses(); m > d1Miss+1e-9 {
			t.Errorf("%s misses %.4f%% > Dir1NB %.4f%%", p.Name(), m, d1Miss)
		}
	}
}

func TestDiriNBMissesDecreaseWithPointers(t *testing.T) {
	refs := randomRefs(95, 8, 20, 40000)
	prev := -1.0
	for _, i := range []int{1, 2, 4, 8} {
		var p Protocol
		if i == 1 {
			p = NewDir1NB(8)
		} else {
			p = NewDiriNB(8, i)
		}
		c := countTypes(apply(t, p, refs...))
		m := c.ReadMisses() + c.WriteMisses()
		if prev >= 0 && m > prev+1e-9 {
			t.Errorf("Dir%dNB misses %.4f%% exceed Dir%dNB", i, m, i/2)
		}
		prev = m
	}
}

func TestDeterminism(t *testing.T) {
	// Same trace, fresh engine: identical result stream.
	refs := randomRefs(99, 4, 16, 5000)
	for _, build := range []func() Protocol{
		func() Protocol { return NewDir0B(4) },
		func() Protocol { return NewDragon(4) },
		func() Protocol { return NewDir1NB(4) },
	} {
		a, b := build(), build()
		for i, r := range refs {
			ra, rb := a.Access(r), b.Access(r)
			if ra != rb {
				t.Fatalf("%s nondeterministic at ref %d: %+v vs %+v", a.Name(), i, ra, rb)
			}
		}
	}
}

func TestReadOnlyTraceCostsNothingAfterFill(t *testing.T) {
	// Once every cache holds a read-only block, no protocol may generate
	// further events beyond hits.
	var refs []trace.Ref
	for round := 0; round < 5; round++ {
		for cpu := uint8(0); cpu < 4; cpu++ {
			refs = append(refs, rd(cpu, 1))
		}
	}
	for _, p := range []Protocol{NewDir0B(4), NewDirNNB(4), NewWTI(4), NewDragon(4), NewDiriB(4, 2)} {
		results := applyChecked(t, p, refs...)
		for i, r := range results[4:] {
			if r.Type != event.RdHit {
				t.Errorf("%s: read %d classified %v after warm-up", p.Name(), i+4, r.Type)
			}
		}
	}
}
