package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// mrsw implements the multiple-readers/single-writer state-change model
// shared — as the paper observes in Section 5 — by Dir0B, the sequential
// invalidation schemes DiriNB/DirNNB, the limited-pointer-plus-broadcast
// schemes DiriB, and the snoopy WTI protocol: a clean block may live in any
// number of caches, a written block in exactly one. The variants differ in
// how invalidations are delivered (directed messages, limited broadcast, or
// full broadcast), in how much the directory knows (two state bits, i
// pointers, a full bit map, or nothing at all for a snoopy bus), and in
// whether writes propagate to memory (write-through for WTI).
//
// Because the state-change model is shared, all variants produce identical
// event frequencies on a given trace (the paper's Table 4 shows one column
// for Dir0B and WTI for this reason) — except DiriNB with i smaller than
// the machine, whose pointer-overflow invalidations genuinely change the
// state evolution and raise the miss rate.
type mrsw struct {
	name string
	ncpu int

	// ptrs is the number of cache pointers a directory entry can hold:
	// 0 for Dir0B (state bits only), i for DiriB/DiriNB, ncpu for the
	// full-map DirNNB, and ignored for snoopy WTI.
	ptrs int
	// broadcast selects the B schemes: on pointer overflow the entry
	// falls back to broadcast invalidation instead of limiting copies.
	broadcast bool
	// limitCopies selects the NB schemes with i < ncpu: a read fill that
	// would exceed i copies forcibly invalidates an existing copy.
	limitCopies bool
	// writeThrough selects WTI: every write is transmitted to memory,
	// memory is never stale, and invalidation happens by bus snooping
	// (free of directory queries).
	writeThrough bool
	// singleBit selects the Yen–Fu refinement of the full-map scheme:
	// each cache keeps a "single" bit that is set while it holds the
	// only copy, so a write hit on an unshared clean block proceeds
	// without a directory access. The price is an extra control message
	// to clear the previous sole holder's bit whenever a block goes
	// from one copy to two (the extra bus bandwidth the paper notes).
	singleBit bool

	seen   seenSet
	blocks map[trace.Block]*mrswBlock

	// Checker, when non-nil, receives data-movement callbacks so tests
	// can assert value coherence.
	Checker *Checker
}

// mrswBlock is the global coherence state of one block.
type mrswBlock struct {
	holders Set   // caches with a valid copy
	dirty   bool  // memory is stale; owner holds the only copy
	owner   uint8 // valid when dirty

	// Directory knowledge (what the hardware entry would record):
	ptrSet  Set     // pointer contents for DiriB/DiriNB/full-map
	ptrFIFO []uint8 // pointer fill order, for DiriNB victim choice
	bcast   bool    // DiriB broadcast bit / Dir0B "clean in unknown caches"
}

// Variant constructors ---------------------------------------------------

// NewDir0B returns the Archibald–Baer scheme: a two-bit directory entry
// (uncached / clean-in-exactly-one / clean-in-unknown-many / dirty-in-one)
// with broadcast invalidations.
func NewDir0B(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &mrsw{name: "Dir0B", ncpu: ncpu, ptrs: 0, broadcast: true,
		seen: seenSet{}, blocks: map[trace.Block]*mrswBlock{}}
}

// NewDirNNB returns the Censier–Feautrier full-map scheme: one valid bit
// per cache in every directory entry, invalidations delivered as directed
// sequential messages, no broadcasts ever.
func NewDirNNB(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &mrsw{name: "DirNNB", ncpu: ncpu, ptrs: ncpu,
		seen: seenSet{}, blocks: map[trace.Block]*mrswBlock{}}
}

// NewDiriNB returns the limited-pointer no-broadcast scheme Dir_i NB: at
// most i cached copies of a block may exist; a fill beyond that forcibly
// invalidates the oldest copy. i must be at least 1 (Dir0NB cannot grant
// exclusive access, as the paper notes).
func NewDiriNB(ncpu, i int) Protocol {
	checkCPUs(ncpu)
	if i < 1 {
		panic("core: DiriNB requires at least one pointer")
	}
	if i >= ncpu {
		p := NewDirNNB(ncpu).(*mrsw)
		p.name = fmt.Sprintf("Dir%dNB", i)
		return p
	}
	return &mrsw{name: fmt.Sprintf("Dir%dNB", i), ncpu: ncpu, ptrs: i,
		limitCopies: true,
		seen:        seenSet{}, blocks: map[trace.Block]*mrswBlock{}}
}

// NewDiriB returns the limited-pointer broadcast scheme Dir_i B: the entry
// holds up to i pointers plus a broadcast bit; overflow sets the bit and
// later invalidation falls back to broadcast. Dir1B is the single-pointer
// instance studied in Section 6.
func NewDiriB(ncpu, i int) Protocol {
	checkCPUs(ncpu)
	if i < 1 {
		panic("core: DiriB requires at least one pointer (use NewDir0B for i=0)")
	}
	return &mrsw{name: fmt.Sprintf("Dir%dB", i), ncpu: ncpu, ptrs: i,
		broadcast: true,
		seen:      seenSet{}, blocks: map[trace.Block]*mrswBlock{}}
}

// NewYenFu returns the Yen–Fu refinement of the Censier–Feautrier
// full-map scheme (paper, Section 2): directory organization and
// invalidation delivery are DirNNB's, but a per-cache "single" bit lets a
// write to an unshared clean block skip the directory query, at the cost
// of control traffic to keep the bits current.
func NewYenFu(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &mrsw{name: "YenFu", ncpu: ncpu, ptrs: ncpu, singleBit: true,
		seen: seenSet{}, blocks: map[trace.Block]*mrswBlock{}}
}

// NewWTI returns the write-through-with-invalidate snoopy protocol: all
// writes go to memory, snooping caches invalidate matching blocks, memory
// is never stale.
func NewWTI(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &mrsw{name: "WTI", ncpu: ncpu, writeThrough: true, broadcast: true,
		seen: seenSet{}, blocks: map[trace.Block]*mrswBlock{}}
}

// Engine ------------------------------------------------------------------

func (p *mrsw) Name() string { return p.name }
func (p *mrsw) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *mrsw) SetChecker(c *Checker) { p.Checker = c }

func (p *mrsw) block(b trace.Block) *mrswBlock {
	bl := p.blocks[b]
	if bl == nil {
		bl = &mrswBlock{}
		p.blocks[b] = bl
	}
	return bl
}

func (p *mrsw) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: %s: cpu %d out of range [0,%d)", p.name, r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.read(r.CPU, r.Block())
	case trace.Write:
		return p.write(r.CPU, r.Block())
	}
	panic(fmt.Sprintf("core: %s: invalid reference kind %d", p.name, r.Kind))
}

func (p *mrsw) read(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		p.Checker.ReadHit(c, b)
		return event.Result{Type: event.RdHit}
	}
	first := p.seen.touch(b)
	res := event.Result{Holders: bl.holders.Count()}
	switch {
	case bl.dirty:
		// The owner flushes the dirty block to memory; the requester
		// snarfs the data off the write-back. Both end up with clean
		// copies (Dir0B/DirNNB semantics). Under write-through memory
		// was never stale, so the fill comes straight from memory.
		res.Type = event.RdMissDirty
		if p.writeThrough {
			p.Checker.FillFromMemory(c, b)
		} else {
			res.WriteBack = true
			res.CacheSupply = true
			p.Checker.WriteBack(bl.owner, b)
			p.Checker.FillFromCache(c, bl.owner, b)
		}
		bl.dirty = false
		bl.holders = bl.holders.Add(c)
	case !bl.holders.Empty():
		res.Type = event.RdMissClean
		if p.singleBit && bl.holders.Count() == 1 {
			// The previous sole holder's single bit must be
			// cleared before a second copy exists.
			res.Control = 1
		}
		p.Checker.FillFromMemory(c, b)
		bl.holders = bl.holders.Add(c)
	default:
		if first {
			res.Type = event.RdMissFirst
		} else {
			res.Type = event.RdMissMem
		}
		p.Checker.FillFromMemory(c, b)
		bl.holders = bl.holders.Add(c)
	}
	p.dirRecordFill(bl, c, b, &res)
	return res
}

// dirRecordFill updates the directory entry after a read fill and, for
// DiriNB, enforces the copy limit by invalidating the oldest pointer.
func (p *mrsw) dirRecordFill(bl *mrswBlock, c uint8, b trace.Block, res *event.Result) {
	if p.writeThrough {
		return // snoopy: no directory
	}
	if bl.ptrSet.Has(c) {
		return
	}
	if p.ptrs == 0 {
		// Dir0B: only the clean-one/clean-many distinction is kept.
		bl.bcast = bl.holders.Count() > 1
		return
	}
	if bl.ptrSet.Count() < p.ptrs {
		bl.ptrSet = bl.ptrSet.Add(c)
		bl.ptrFIFO = append(bl.ptrFIFO, c)
		return
	}
	// Pointer overflow.
	if p.limitCopies {
		// DiriNB: invalidate the oldest copy to make room.
		victim := bl.ptrFIFO[0]
		bl.ptrFIFO = bl.ptrFIFO[1:]
		bl.ptrSet = bl.ptrSet.Del(victim)
		bl.holders = bl.holders.Del(victim)
		p.Checker.Invalidate(victim, b)
		res.ForcedInval++
		bl.ptrSet = bl.ptrSet.Add(c)
		bl.ptrFIFO = append(bl.ptrFIFO, c)
		return
	}
	// DiriB: set the broadcast bit, leave pointers as they are.
	bl.bcast = true
}

func (p *mrsw) write(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	var res event.Result
	switch {
	case bl.dirty && bl.owner == c:
		res.Type = event.WrHitOwn
		p.Checker.Write(c, b)
	case bl.holders.Has(c):
		others := bl.holders.Del(c)
		res.Type = event.WrHitClean
		res.Holders = others.Count()
		p.invalidate(bl, others, b, &res, true)
		p.Checker.Write(c, b)
		p.takeExclusive(bl, c, b)
	default:
		first := p.seen.touch(b)
		res.Holders = bl.holders.Count()
		switch {
		case bl.dirty:
			res.Type = event.WrMissDirty
			if p.writeThrough {
				p.Checker.FillFromMemory(c, b)
			} else {
				res.WriteBack = true
				res.CacheSupply = true
				p.Checker.WriteBack(bl.owner, b)
				p.Checker.FillFromCache(c, bl.owner, b)
			}
			p.flushInval(bl, &res)
			p.Checker.Invalidate(bl.owner, b)
		case !bl.holders.Empty():
			res.Type = event.WrMissClean
			p.Checker.FillFromMemory(c, b)
			p.invalidate(bl, bl.holders, b, &res, false)
		default:
			if first {
				res.Type = event.WrMissFirst
			} else {
				res.Type = event.WrMissMem
			}
			p.Checker.FillFromMemory(c, b)
		}
		p.Checker.Write(c, b)
		p.takeExclusive(bl, c, b)
	}
	if p.writeThrough {
		res.Update = true
		p.Checker.WriteThrough(c, b)
	}
	return res
}

// invalidate fills the Result's invalidation fields for eliminating the
// given copies, according to the variant's delivery mechanism, and tells
// the checker. hit distinguishes a write hit (the directory must be
// queried before the writer may proceed) from a write miss (the directory
// is consulted as part of the miss and the lookup overlaps the memory
// access).
func (p *mrsw) invalidate(bl *mrswBlock, victims Set, b trace.Block, res *event.Result, hit bool) {
	k := victims.Count()
	if hit && !p.writeThrough {
		// Yen–Fu: the writer's single bit answers the "am I alone?"
		// question locally, so an unshared write skips the directory.
		res.DirCheck = !(p.singleBit && k == 0)
	}
	if k > 0 {
		switch {
		case p.writeThrough:
			// Snoopy: copies die by watching the write on the bus.
			res.Broadcast = true
		case p.ptrs == 0:
			// Dir0B: the entry cannot name the holders.
			// A sole clean copy held by the writer itself needs no
			// invalidation at all (the clean-in-exactly-one state);
			// that case arrives here with k == 0.
			res.Broadcast = true
		case bl.bcast:
			// DiriB after overflow.
			res.Broadcast = true
		default:
			res.Inval = k
		}
	}
	for _, v := range victims.Members(nil) {
		p.Checker.Invalidate(v, b)
	}
}

// flushInval fills the invalidation fields for purging a dirty owner on a
// write miss. Directory entries always know a dirty owner exactly when
// they have at least one pointer; Dir0B must broadcast the flush request.
func (p *mrsw) flushInval(bl *mrswBlock, res *event.Result) {
	switch {
	case p.writeThrough:
		res.Broadcast = true
	case p.ptrs == 0:
		res.Broadcast = true
	default:
		res.Inval = 1
	}
}

// takeExclusive installs c as the sole (dirty) holder and resets the
// directory entry accordingly.
func (p *mrsw) takeExclusive(bl *mrswBlock, c uint8, b trace.Block) {
	bl.holders = 0
	bl.holders = bl.holders.Add(c)
	bl.dirty = true
	bl.owner = c
	bl.bcast = false
	if p.ptrs > 0 {
		bl.ptrSet = 0
		bl.ptrSet = bl.ptrSet.Add(c)
		bl.ptrFIFO = bl.ptrFIFO[:0]
		bl.ptrFIFO = append(bl.ptrFIFO, c)
	}
}

// CheckInvariants validates the engine's internal consistency.
func (p *mrsw) CheckInvariants() error {
	for b, bl := range p.blocks {
		if bl.dirty {
			if !bl.holders.Only(bl.owner) {
				return fmt.Errorf("%s: block %#x dirty but holders=%b owner=%d", p.name, b, bl.holders, bl.owner)
			}
		}
		if p.limitCopies && bl.holders.Count() > p.ptrs {
			return fmt.Errorf("%s: block %#x has %d copies, limit %d", p.name, b, bl.holders.Count(), p.ptrs)
		}
		if p.ptrs > 0 {
			if bl.ptrSet&^bl.holders != 0 {
				return fmt.Errorf("%s: block %#x directory points at non-holders (ptr=%b holders=%b)", p.name, b, bl.ptrSet, bl.holders)
			}
			if !bl.bcast && bl.ptrSet != bl.holders {
				return fmt.Errorf("%s: block %#x directory lost holders without broadcast bit (ptr=%b holders=%b)", p.name, b, bl.ptrSet, bl.holders)
			}
		}
		if p.ptrs == 0 && !p.writeThrough {
			many := bl.holders.Count() > 1
			if bl.bcast != many {
				return fmt.Errorf("%s: block %#x clean-many bit %v but %d holders", p.name, b, bl.bcast, bl.holders.Count())
			}
		}
	}
	return p.Checker.Err()
}
