package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// mesi implements the Illinois protocol (Papamarcos & Patel, the paper's
// reference [5]) — the four-state snoopy invalidation protocol now known
// as MESI. Relative to the Dir0B/WTI state model it adds the
// exclusive-clean (E) state: a cache that loaded a block no one else held
// may write it silently, with no bus traffic at all. Illinois also
// supplies misses cache-to-cache whenever any cache holds the block; a
// modified supplier writes memory back in the same transaction.
type mesi struct {
	ncpu   int
	seen   seenSet
	blocks map[trace.Block]*mesiBlock

	Checker *Checker
}

type mesiBlock struct {
	holders Set
	// modified reports an M-state copy (memory stale); exclusive
	// reports an E-state copy. Both imply a single holder, owner.
	modified  bool
	exclusive bool
	owner     uint8
}

// NewMESI returns an Illinois/MESI engine for ncpu caches.
func NewMESI(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &mesi{ncpu: ncpu, seen: seenSet{}, blocks: map[trace.Block]*mesiBlock{}}
}

func (p *mesi) Name() string { return "MESI" }
func (p *mesi) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *mesi) SetChecker(c *Checker) { p.Checker = c }

func (p *mesi) block(b trace.Block) *mesiBlock {
	bl := p.blocks[b]
	if bl == nil {
		bl = &mesiBlock{}
		p.blocks[b] = bl
	}
	return bl
}

func (p *mesi) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: MESI: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.read(r.CPU, r.Block())
	case trace.Write:
		return p.write(r.CPU, r.Block())
	}
	panic(fmt.Sprintf("core: MESI: invalid reference kind %d", r.Kind))
}

func (p *mesi) read(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		p.Checker.ReadHit(c, b)
		return event.Result{Type: event.RdHit}
	}
	first := p.seen.touch(b)
	res := event.Result{Holders: bl.holders.Count()}
	switch {
	case bl.modified:
		// The M copy supplies the requester and flushes memory in the
		// same bus transaction; both end shared.
		res.Type = event.RdMissDirty
		res.CacheSupply = true
		res.WriteBack = true
		p.Checker.WriteBack(bl.owner, b)
		p.Checker.FillFromCache(c, bl.owner, b)
		bl.modified = false
	case !bl.holders.Empty():
		// Illinois supplies clean blocks cache-to-cache too.
		res.Type = event.RdMissClean
		res.CacheSupply = true
		p.Checker.FillFromCache(c, bl.holders.First(), b)
	case first:
		res.Type = event.RdMissFirst
		p.Checker.FillFromMemory(c, b)
	default:
		res.Type = event.RdMissMem
		p.Checker.FillFromMemory(c, b)
	}
	// E state when alone, S otherwise; any second fill kills E.
	wasAlone := bl.holders.Empty()
	bl.holders = bl.holders.Add(c)
	bl.exclusive = wasAlone
	if wasAlone {
		bl.owner = c
	}
	return res
}

func (p *mesi) write(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	var res event.Result
	switch {
	case bl.holders.Has(c) && bl.holders.Only(c) && (bl.modified || bl.exclusive):
		// M or E: silent upgrade — the Illinois improvement over
		// Dir0B's directory query and WTI's write-through.
		res.Type = event.WrHitOwn
		p.Checker.Write(c, b)
	case bl.holders.Has(c):
		// S: broadcast an invalidation signal.
		res.Type = event.WrHitClean
		res.Holders = bl.holders.Del(c).Count()
		res.Broadcast = true
		for _, v := range bl.holders.Del(c).Members(nil) {
			p.Checker.Invalidate(v, b)
		}
		p.Checker.Write(c, b)
	default:
		first := p.seen.touch(b)
		res.Holders = bl.holders.Count()
		switch {
		case bl.modified:
			res.Type = event.WrMissDirty
			res.CacheSupply = true
			res.WriteBack = true
			res.Broadcast = true
			p.Checker.WriteBack(bl.owner, b)
			p.Checker.FillFromCache(c, bl.owner, b)
			p.Checker.Invalidate(bl.owner, b)
		case !bl.holders.Empty():
			res.Type = event.WrMissClean
			res.CacheSupply = true
			res.Broadcast = true
			p.Checker.FillFromCache(c, bl.holders.First(), b)
			for _, v := range bl.holders.Members(nil) {
				p.Checker.Invalidate(v, b)
			}
		case first:
			res.Type = event.WrMissFirst
			p.Checker.FillFromMemory(c, b)
		default:
			res.Type = event.WrMissMem
			p.Checker.FillFromMemory(c, b)
		}
		p.Checker.Write(c, b)
	}
	bl.holders = 0
	bl.holders = bl.holders.Add(c)
	bl.modified = true
	bl.exclusive = false
	bl.owner = c
	return res
}

func (p *mesi) CheckInvariants() error {
	for b, bl := range p.blocks {
		if bl.modified && !bl.holders.Only(bl.owner) {
			return fmt.Errorf("MESI: block %#x modified with holders %b", b, bl.holders)
		}
		if bl.exclusive && bl.holders.Count() != 1 {
			return fmt.Errorf("MESI: block %#x exclusive with %d holders", b, bl.holders.Count())
		}
		if bl.modified && bl.exclusive {
			return fmt.Errorf("MESI: block %#x both M and E", b)
		}
	}
	return p.Checker.Err()
}
