package core

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	var s Set
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero set should be empty")
	}
	s = s.Add(3).Add(7).Add(3)
	if s.Count() != 2 || !s.Has(3) || !s.Has(7) || s.Has(0) {
		t.Fatalf("set contents wrong: %b", s)
	}
	if s.Only(3) {
		t.Error("Only should fail with two members")
	}
	s = s.Del(7)
	if !s.Only(3) || s.Count() != 1 {
		t.Errorf("after Del: %b", s)
	}
	if s.First() != 3 {
		t.Errorf("First = %d", s.First())
	}
	s = s.Del(3)
	if !s.Empty() {
		t.Error("set should be empty again")
	}
	// Deleting an absent member is a no-op.
	if s.Del(5) != s {
		t.Error("Del on absent member changed the set")
	}
}

func TestSetMembers(t *testing.T) {
	s := Set(0).Add(0).Add(5).Add(63)
	got := s.Members(nil)
	want := []uint8{0, 5, 63}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestSetFirstPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("First on empty set should panic")
		}
	}()
	Set(0).First()
}

func TestSetProperties(t *testing.T) {
	f := func(adds, dels []uint8) bool {
		var s Set
		ref := map[uint8]bool{}
		for _, a := range adds {
			a %= MaxCPUs
			s = s.Add(a)
			ref[a] = true
		}
		for _, d := range dels {
			d %= MaxCPUs
			s = s.Del(d)
			delete(ref, d)
		}
		if s.Count() != len(ref) {
			return false
		}
		for m := range ref {
			if !s.Has(m) {
				return false
			}
		}
		for _, m := range s.Members(nil) {
			if !ref[m] {
				return false
			}
		}
		return s.Empty() == (len(ref) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
