package core

import (
	"fmt"

	"dirsim/internal/cache"
	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// finiteDir is the full-map directory scheme (DirNNB) running over
// *finite* set-associative caches instead of the paper's infinite ones.
// Replacement interacts with coherence in two ways the infinite model
// cannot show:
//
//   - a replaced dirty victim must be written back (EvictWB) and a
//     replaced clean victim must notify the directory so the full map
//     stays exact (a one-cycle control message);
//   - some blocks that an invalidation *would* have purged are already
//     gone, so — the paper's footnote 2 — the coherence-related miss
//     component is *smaller* in a finite cache, while capacity misses
//     appear on top.
//
// The engine classifies each miss by why the block was absent (never
// cached, invalidated away, or evicted away) in the Cold / Coherence /
// Capacity counters.
type finiteDir struct {
	ncpu   int
	cfg    cache.Config
	caches []*cache.Cache
	blocks map[trace.Block]*mrswBlock
	seen   seenSet
	// gone[c][b] records why CPU c lost block b.
	gone []map[trace.Block]lossReason

	// Miss-cause accounting (data misses, first references excluded
	// from Coherence/Capacity by construction).
	Cold, Coherence, Capacity int64

	Checker *Checker
}

type lossReason uint8

const (
	lostInvalidated lossReason = iota + 1
	lostEvicted
)

// NewFiniteDirNNB returns a full-map directory engine over per-CPU finite
// caches of the given configuration.
func NewFiniteDirNNB(ncpu int, cfg cache.Config) (Protocol, error) {
	checkCPUs(ncpu)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &finiteDir{
		ncpu:   ncpu,
		cfg:    cfg,
		caches: make([]*cache.Cache, ncpu),
		blocks: map[trace.Block]*mrswBlock{},
		seen:   seenSet{},
		gone:   make([]map[trace.Block]lossReason, ncpu),
	}
	for i := range p.caches {
		p.caches[i] = cache.New(cfg)
		p.gone[i] = map[trace.Block]lossReason{}
	}
	return p, nil
}

func (p *finiteDir) Name() string { return "FiniteDirNNB" }
func (p *finiteDir) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *finiteDir) SetChecker(c *Checker) { p.Checker = c }

func (p *finiteDir) block(b trace.Block) *mrswBlock {
	bl := p.blocks[b]
	if bl == nil {
		bl = &mrswBlock{}
		p.blocks[b] = bl
	}
	return bl
}

func (p *finiteDir) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: FiniteDirNNB: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		// Instruction traffic stays off the data caches, as in the
		// paper's methodology.
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.access(r.CPU, r.Block(), false)
	case trace.Write:
		return p.access(r.CPU, r.Block(), true)
	}
	panic(fmt.Sprintf("core: FiniteDirNNB: invalid reference kind %d", r.Kind))
}

func (p *finiteDir) access(c uint8, b trace.Block, write bool) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		// Residency and directory state agree by construction; touch
		// the cache to keep LRU order honest.
		p.caches[c].Access(b)
		if !write {
			p.Checker.ReadHit(c, b)
			return event.Result{Type: event.RdHit}
		}
		if bl.dirty && bl.owner == c {
			p.Checker.Write(c, b)
			return event.Result{Type: event.WrHitOwn}
		}
		// Write hit on a clean block: directed invalidations.
		others := bl.holders.Del(c)
		res := event.Result{
			Type:     event.WrHitClean,
			Holders:  others.Count(),
			Inval:    others.Count(),
			DirCheck: true,
		}
		for _, v := range others.Members(nil) {
			p.dropCopy(v, b, lostInvalidated)
			p.Checker.Invalidate(v, b)
		}
		p.Checker.Write(c, b)
		bl.holders = 0
		bl.holders = bl.holders.Add(c)
		bl.dirty = true
		bl.owner = c
		return res
	}
	// Miss. Attribute the cause before refilling.
	first := p.seen.touch(b)
	switch {
	case first:
		// First reference in the whole trace: uniprocessor cold.
	case p.gone[c][b] == lostInvalidated:
		p.Coherence++
	case p.gone[c][b] == lostEvicted:
		p.Capacity++
	default:
		// First touch by this CPU (the block lives elsewhere or was
		// never here): the fetch-into-multiple-caches cost, counted
		// as cold for this cache.
		p.Cold++
	}
	delete(p.gone[c], b)

	var res event.Result
	res.Holders = bl.holders.Count()
	switch {
	case bl.dirty:
		res.Type = event.RdMissDirty
		if write {
			res.Type = event.WrMissDirty
			res.Inval = 1
		}
		res.WriteBack = true
		res.CacheSupply = true
		p.Checker.WriteBack(bl.owner, b)
		p.Checker.FillFromCache(c, bl.owner, b)
		if write {
			p.dropCopy(bl.owner, b, lostInvalidated)
			p.Checker.Invalidate(bl.owner, b)
		}
		bl.dirty = false
	case !bl.holders.Empty():
		res.Type = event.RdMissClean
		if write {
			res.Type = event.WrMissClean
			res.Inval = bl.holders.Count()
			for _, v := range bl.holders.Members(nil) {
				p.dropCopy(v, b, lostInvalidated)
				p.Checker.Invalidate(v, b)
			}
		}
		p.Checker.FillFromMemory(c, b)
	default:
		if first {
			res.Type = event.RdMissFirst
			if write {
				res.Type = event.WrMissFirst
			}
		} else {
			res.Type = event.RdMissMem
			if write {
				res.Type = event.WrMissMem
			}
		}
		p.Checker.FillFromMemory(c, b)
	}
	// Fill, possibly evicting a victim.
	_, victim, evicted := p.caches[c].Access(b)
	if evicted {
		p.evict(c, victim, &res)
	}
	bl.holders = bl.holders.Add(c)
	if write {
		p.Checker.Write(c, b)
		bl.holders = 0
		bl.holders = bl.holders.Add(c)
		bl.dirty = true
		bl.owner = c
	}
	return res
}

// dropCopy removes CPU v's copy of b from its cache and records why.
func (p *finiteDir) dropCopy(v uint8, b trace.Block, why lossReason) {
	p.caches[v].Invalidate(b)
	p.gone[v][b] = why
}

// evict handles a replacement victim: dirty victims flush to memory,
// clean ones notify the directory; either way the full map stays exact.
func (p *finiteDir) evict(c uint8, victim trace.Block, res *event.Result) {
	vbl := p.block(victim)
	if vbl.dirty && vbl.owner == c {
		res.EvictWB = true
		p.Checker.WriteBack(c, victim)
		vbl.dirty = false
	} else {
		// Replacement notification to the directory.
		res.Control++
	}
	vbl.holders = vbl.holders.Del(c)
	p.Checker.Invalidate(c, victim)
	p.gone[c][victim] = lostEvicted
}

// Counters returns the miss-cause accounting: per-cache cold fills,
// coherence (invalidation-caused) misses, and capacity (eviction-caused)
// misses. First-trace-reference misses are in none of the three.
func (p *finiteDir) Counters() (cold, coherence, capacity int64) {
	return p.Cold, p.Coherence, p.Capacity
}

// CheckInvariants verifies the directory map matches cache residency.
func (p *finiteDir) CheckInvariants() error {
	for b, bl := range p.blocks {
		for cpu := 0; cpu < p.ncpu; cpu++ {
			inDir := bl.holders.Has(uint8(cpu))
			inCache := p.caches[cpu].Contains(b)
			if inDir != inCache {
				return fmt.Errorf("FiniteDirNNB: block %#x cpu %d: directory=%v cache=%v",
					b, cpu, inDir, inCache)
			}
		}
		if bl.dirty && !bl.holders.Only(bl.owner) {
			return fmt.Errorf("FiniteDirNNB: block %#x dirty with holders %b", b, bl.holders)
		}
	}
	return p.Checker.Err()
}
