package core

import (
	"testing"

	"dirsim/internal/cache"
	"dirsim/internal/event"
)

func finiteCfg(blocks int) cache.Config {
	return cache.Config{SizeBytes: blocks * 16, Assoc: 2}
}

func newFinite(t *testing.T, ncpu, blocks int) Protocol {
	t.Helper()
	p, err := NewFiniteDirNNB(ncpu, finiteCfg(blocks))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestFiniteDirBasicCoherence(t *testing.T) {
	p := newFinite(t, 4, 64)
	res := applyChecked(t, p,
		rd(0, 1), rd(1, 1), wr(0, 1), rd(1, 1),
	)
	expectTypes(t, res,
		event.RdMissFirst, event.RdMissClean, event.WrHitClean, event.RdMissDirty)
	if res[2].Inval != 1 {
		t.Errorf("directed invalidation expected: %+v", res[2])
	}
}

func TestFiniteDirRejectsBadConfig(t *testing.T) {
	if _, err := NewFiniteDirNNB(4, cache.Config{SizeBytes: 0, Assoc: 1}); err == nil {
		t.Error("bad cache config accepted")
	}
}

func TestFiniteDirEvictionWriteBack(t *testing.T) {
	// A 2-block, 1-set cache: the third distinct block evicts.
	p, err := NewFiniteDirNNB(2, cache.Config{SizeBytes: 32, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := applyChecked(t, p,
		wr(0, 1), // dirty
		rd(0, 2),
		rd(0, 3), // evicts dirty block 1: replacement write-back
	)
	if !res[2].EvictWB {
		t.Errorf("dirty eviction should flush: %+v", res[2])
	}
	// Block 2 (clean) is the next victim.
	res = applyChecked(t, p, rd(0, 4))
	if res[0].EvictWB || res[0].Control != 1 {
		t.Errorf("clean eviction should notify the directory: %+v", res[0])
	}
}

func TestFiniteDirMissCauseAccounting(t *testing.T) {
	p, err := NewFiniteDirNNB(2, cache.Config{SizeBytes: 32, Assoc: 2})
	if err != nil {
		t.Fatal(err)
	}
	fd := p.(interface{ Counters() (int64, int64, int64) })
	applyChecked(t, p,
		rd(0, 1), // trace-first: none of the three
		rd(1, 1), // cold for cpu 1
		wr(1, 1), // invalidates cpu 0
		rd(0, 1), // coherence miss
		rd(0, 2), // trace-first
		rd(0, 3), // trace-first; evicts block 1 or 2 on cpu 0
		rd(0, 1), // capacity or coherence depending on victim...
	)
	cold, coh, capm := fd.Counters()
	if cold != 1 {
		t.Errorf("cold = %d, want 1", cold)
	}
	if coh < 1 {
		t.Errorf("coherence = %d, want >= 1", coh)
	}
	if coh+capm != 2 {
		t.Errorf("coh %d + cap %d should account for both re-misses", coh, capm)
	}
}

func TestFiniteDirMatchesInfiniteWhenHuge(t *testing.T) {
	// With a cache far larger than the footprint, the finite engine must
	// classify exactly like the infinite DirNNB.
	refs := randomRefs(61, 4, 32, 20000)
	big := newFinite(t, 4, 4096)
	inf := NewDirNNB(4)
	a := countTypes(apply(t, big, refs...))
	b := countTypes(apply(t, inf, refs...))
	if a != b {
		t.Error("huge finite cache should match infinite classification")
	}
	fd := big.(interface{ Counters() (int64, int64, int64) })
	_, _, capm := fd.Counters()
	if capm != 0 {
		t.Errorf("no capacity misses expected, got %d", capm)
	}
}

func TestFiniteDirInvariantsUnderLoad(t *testing.T) {
	// A small cache under a heavy random workload: the directory map and
	// residency must agree at all times, with coherence intact.
	p := newFinite(t, 4, 16)
	refs := randomRefs(67, 4, 64, 30000)
	if !Attach(p, NewChecker()) {
		t.Fatal("no checker support")
	}
	for i, r := range refs {
		p.Access(r)
		if i%2000 == 0 {
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("after %d refs: %v", i, err)
			}
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFiniteDirCoherenceMissesShrinkWithCache(t *testing.T) {
	// Footnote 2 as a property: smaller cache => fewer coherence misses.
	refs := randomRefs(71, 4, 256, 60000)
	cohAt := func(blocks int) int64 {
		p := newFinite(t, 4, blocks)
		apply(t, p, refs...)
		_, coh, _ := p.(interface{ Counters() (int64, int64, int64) }).Counters()
		return coh
	}
	big, small := cohAt(4096), cohAt(32)
	if small > big {
		t.Errorf("coherence misses grew as the cache shrank: %d -> %d", big, small)
	}
}
