package core

import (
	"fmt"

	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// dir1nb implements Dir1NB, the most restrictive scheme in the taxonomy: a
// block may reside in at most one cache at a time, so inconsistency is
// impossible by construction. The directory entry is a single pointer to
// the holding cache. Every miss steals the block: the current holder is
// invalidated (writing back first if dirty) and the requester becomes the
// sole holder. Write hits never consult the directory — the holder is
// guaranteed exclusive — which is why Table 5 notes that directory accesses
// always overlap memory accesses in this scheme.
//
// Dir1NB is the paper's stand-in for simple software-flush consistency as
// well (Section 5.2): spin locks make blocks ping-pong between caches,
// which is exactly the pathology the evaluation exposes.
type dir1nb struct {
	ncpu   int
	seen   seenSet
	blocks map[trace.Block]*dir1nbBlock

	Checker *Checker
}

type dir1nbBlock struct {
	held   bool
	holder uint8
	dirty  bool
}

// NewDir1NBSpec returns the method-dispatch Dir1NB engine. It is the
// scheme's executable specification: one branch per protocol rule, written
// to mirror the prose above. Production simulation uses the table-driven
// engine behind NewDir1NB; the cross-validation suite holds the two
// bit-identical over random and standard workloads.
func NewDir1NBSpec(ncpu int) Protocol {
	checkCPUs(ncpu)
	return &dir1nb{ncpu: ncpu, seen: seenSet{}, blocks: map[trace.Block]*dir1nbBlock{}}
}

func (p *dir1nb) Name() string { return "Dir1NB" }
func (p *dir1nb) CPUs() int    { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *dir1nb) SetChecker(c *Checker) { p.Checker = c }

func (p *dir1nb) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("core: Dir1NB: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.access(r.CPU, r.Block(), false)
	case trace.Write:
		return p.access(r.CPU, r.Block(), true)
	}
	panic(fmt.Sprintf("core: Dir1NB: invalid reference kind %d", r.Kind))
}

func (p *dir1nb) access(c uint8, b trace.Block, write bool) event.Result {
	bl := p.blocks[b]
	if bl == nil {
		bl = &dir1nbBlock{}
		p.blocks[b] = bl
	}
	if bl.held && bl.holder == c {
		// Hit. The copy is exclusive, so even a write to a clean block
		// proceeds without a directory query; the local dirty bit is
		// simply set.
		if write {
			p.Checker.Write(c, b)
			bl.dirty = true
			return event.Result{Type: event.WrHitOwn}
		}
		p.Checker.ReadHit(c, b)
		return event.Result{Type: event.RdHit}
	}
	// Miss: steal the block from the holder, if any.
	first := p.seen.touch(b)
	var res event.Result
	switch {
	case bl.held && bl.dirty:
		res.Type = event.RdMissDirty
		if write {
			res.Type = event.WrMissDirty
		}
		res.Holders = 1
		res.Inval = 1
		res.WriteBack = true
		res.CacheSupply = true
		p.Checker.WriteBack(bl.holder, b)
		p.Checker.FillFromCache(c, bl.holder, b)
		p.Checker.Invalidate(bl.holder, b)
	case bl.held:
		res.Type = event.RdMissClean
		if write {
			res.Type = event.WrMissClean
		}
		res.Holders = 1
		res.Inval = 1
		p.Checker.Invalidate(bl.holder, b)
		p.Checker.FillFromMemory(c, b)
	default:
		switch {
		case first && write:
			res.Type = event.WrMissFirst
		case first:
			res.Type = event.RdMissFirst
		case write:
			res.Type = event.WrMissMem
		default:
			res.Type = event.RdMissMem
		}
		p.Checker.FillFromMemory(c, b)
	}
	bl.held = true
	bl.holder = c
	bl.dirty = write
	if write {
		p.Checker.Write(c, b)
	}
	return res
}

func (p *dir1nb) CheckInvariants() error {
	// The structure cannot represent more than one holder, so the single
	// invariant to verify is checker-level coherence.
	return p.Checker.Err()
}
