package directory

import (
	"strings"
	"testing"
)

func TestFullMapBits(t *testing.T) {
	s := FullMap()
	if s.BitsPerEntry(4) != 5 || s.BitsPerEntry(64) != 65 || s.BitsPerEntry(256) != 257 {
		t.Error("full map must cost n+1 bits")
	}
	if !s.Precise {
		t.Error("full map is precise")
	}
}

func TestTwoBitBits(t *testing.T) {
	s := TwoBit()
	for _, n := range []int{2, 64, 1024} {
		if s.BitsPerEntry(n) != 2 {
			t.Errorf("two-bit entry at %d cpus = %d bits", n, s.BitsPerEntry(n))
		}
	}
	if s.Precise {
		t.Error("two-bit entries cannot name holders")
	}
}

func TestLimitedPointerBits(t *testing.T) {
	// 2 pointers at 64 CPUs: 2*6 + dirty + bcast + count(2 bits) = 16.
	s := LimitedPointer(2, true)
	if got := s.BitsPerEntry(64); got != 16 {
		t.Errorf("ptr(2)+B at 64 cpus = %d bits, want 16", got)
	}
	nb := LimitedPointer(2, false)
	if got := nb.BitsPerEntry(64); got != 15 {
		t.Errorf("ptr(2) at 64 cpus = %d bits, want 15", got)
	}
	if !strings.Contains(s.Name, "+B") || strings.Contains(nb.Name, "+B") {
		t.Errorf("names: %q %q", s.Name, nb.Name)
	}
}

func TestCoarseCodeBits(t *testing.T) {
	s := CoarseCode()
	if got := s.BitsPerEntry(64); got != 13 {
		t.Errorf("coarse at 64 cpus = %d bits, want 2*6+1", got)
	}
	if got := s.BitsPerEntry(256); got != 17 {
		t.Errorf("coarse at 256 cpus = %d bits", got)
	}
}

func TestScalingComparison(t *testing.T) {
	// The Section 6 point: at large n the alternatives beat the full map.
	n := 256
	full := FullMap().BitsPerEntry(n)
	for _, s := range []Spec{TwoBit(), CoarseCode(), LimitedPointer(2, true)} {
		if got := s.BitsPerEntry(n); got >= full {
			t.Errorf("%s (%d bits) should beat full map (%d bits) at %d cpus",
				s.Name, got, full, n)
		}
	}
}

func TestTangBits(t *testing.T) {
	// 4 caches of 1024 lines, 4096 memory blocks, 10-bit tags:
	// 4*1024*11/4096 = 11 bits/block.
	if got := TangBits(4, 1024, 4096, 10); got != 11 {
		t.Errorf("TangBits = %v, want 11", got)
	}
	if TangBits(4, 1024, 0, 10) != 0 {
		t.Error("zero memory should yield 0")
	}
}

func TestStandardSpecsAndTable(t *testing.T) {
	specs := StandardSpecs(1, 4)
	if len(specs) != 3+2*2 {
		t.Fatalf("StandardSpecs produced %d entries", len(specs))
	}
	out := StorageTable(specs, []int{4, 64})
	for _, want := range []string{"full-map", "two-bit", "coarse-2logn", "ptr(1)+B", "ptr(4)", "65"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
