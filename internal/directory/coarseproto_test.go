package directory

import (
	"testing"

	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/sim"
	"dirsim/internal/trace"
	"dirsim/internal/workload"
)

func cvRef(cpu uint8, kind trace.Kind, block int) trace.Ref {
	return trace.Ref{Addr: uint64(block) * trace.BlockBytes, CPU: cpu, Proc: uint16(cpu), Kind: kind}
}

func TestCoarseVectorBasics(t *testing.T) {
	p := NewCoarseVector(8)
	p.SetChecker(core.NewChecker())
	results := []event.Result{
		p.Access(cvRef(0, trace.Read, 1)),  // first
		p.Access(cvRef(1, trace.Read, 1)),  // clean share: code {0,1} -> wild digit 0
		p.Access(cvRef(0, trace.Read, 1)),  // hit
		p.Access(cvRef(1, trace.Write, 1)), // invalidate named set minus writer
		p.Access(cvRef(0, trace.Read, 1)),  // dirty miss: flush from 1
		p.Access(cvRef(0, trace.Instr, 9)), // instruction: ignored
	}
	want := []event.Type{
		event.RdMissFirst, event.RdMissClean, event.RdHit,
		event.WrHitClean, event.RdMissDirty, event.Instr,
	}
	for i, res := range results {
		if res.Type != want[i] {
			t.Errorf("ref %d: %v, want %v", i, res.Type, want[i])
		}
	}
	// {0,1} encodes exactly; the write invalidates one cache, none wasted.
	if results[3].Inval != 1 {
		t.Errorf("write sent %d invals, want 1", results[3].Inval)
	}
	if p.Wasted != 0 {
		t.Errorf("wasted %d invals on an exact code", p.Wasted)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseVectorOvershoot(t *testing.T) {
	p := NewCoarseVector(8)
	p.SetChecker(core.NewChecker())
	// Holders {0, 3}: 000 and 011 wildcard two digits -> superset {0,1,2,3}.
	p.Access(cvRef(0, trace.Read, 2))
	p.Access(cvRef(3, trace.Read, 2))
	res := p.Access(cvRef(0, trace.Write, 2))
	if res.Inval != 3 {
		t.Errorf("superset invalidation sent %d messages, want 3 (caches 1,2,3)", res.Inval)
	}
	if p.Wasted != 2 || p.Useful != 1 {
		t.Errorf("wasted=%d useful=%d, want 2/1", p.Wasted, p.Useful)
	}
	if got := p.Overshoot(); got < 0.6 || got > 0.7 {
		t.Errorf("overshoot = %v, want 2/3", got)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseVectorOvershootEmpty(t *testing.T) {
	if got := NewCoarseVector(4).Overshoot(); got != 0 {
		t.Errorf("overshoot with no invals = %v", got)
	}
}

func TestCoarseVectorMatchesFullMapEvents(t *testing.T) {
	// Event classification must equal DirNNB's: the code changes only
	// invalidation delivery, never the state evolution.
	tr := workload.THOR(8, 60_000)
	cv, err := sim.Simulate(NewCoarseVector(8), tr.Iterator(), sim.Options{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.SimulateTrace("DirNNB", tr, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cv.Counts != full.Counts {
		t.Error("coarse-vector event counts diverge from the full map")
	}
	// Superset delivery can only send more messages, never fewer.
	if cv.SeqInvals < full.SeqInvals {
		t.Errorf("coarse sent fewer invals (%d) than exact (%d)", cv.SeqInvals, full.SeqInvals)
	}
}

func TestCoarseVectorCoherentOnContention(t *testing.T) {
	tr := workload.SpinContention(8, 300, 6)
	if _, err := sim.Simulate(NewCoarseVector(8), tr.Iterator(), sim.Options{Check: true}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseVectorPanicsOnBadInput(t *testing.T) {
	p := NewCoarseVector(4)
	for _, fn := range []func(){
		func() { p.Access(cvRef(7, trace.Read, 0)) },
		func() { NewCoarseVector(0) },
		func() { NewCoarseVector(core.MaxCPUs + 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
