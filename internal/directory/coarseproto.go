package directory

import (
	"fmt"

	"dirsim/internal/core"
	"dirsim/internal/event"
	"dirsim/internal/trace"
)

// CoarseVector is a directory protocol that stores holder sets as the
// Section 6 coarse ternary-digit code instead of a full bit map. Its
// state-change behaviour is identical to the full-map DirNNB scheme —
// multiple clean readers, one dirty writer, sequential directed
// invalidations, never a broadcast — but invalidations go to every cache
// the code *names*, which is a superset of the caches that actually hold
// the block. The overshoot (wasted invalidation messages) is the price of
// squeezing the entry into 2·log2(n)+1 bits, and is what the §6 coarse
// experiment measures.
type CoarseVector struct {
	ncpu   int
	seen   map[trace.Block]struct{}
	blocks map[trace.Block]*cvBlock

	// Wasted counts invalidation messages sent to caches that held no
	// copy; Useful counts those that did.
	Wasted, Useful int64

	checker *core.Checker
}

type cvBlock struct {
	holders core.Set
	code    Code
	dirty   bool
	owner   uint8
}

// NewCoarseVector returns a coarse-vector directory engine for ncpu
// caches.
func NewCoarseVector(ncpu int) *CoarseVector {
	if ncpu <= 0 || ncpu > core.MaxCPUs {
		panic(fmt.Sprintf("directory: cpu count %d out of range", ncpu))
	}
	return &CoarseVector{
		ncpu:   ncpu,
		seen:   make(map[trace.Block]struct{}),
		blocks: make(map[trace.Block]*cvBlock),
	}
}

// Name implements core.Protocol.
func (p *CoarseVector) Name() string { return "DirCV" }

// CPUs implements core.Protocol.
func (p *CoarseVector) CPUs() int { return p.ncpu }

// SetChecker attaches a value-coherence checker (tests only).
func (p *CoarseVector) SetChecker(c *core.Checker) { p.checker = c }

func (p *CoarseVector) block(b trace.Block) *cvBlock {
	bl := p.blocks[b]
	if bl == nil {
		bl = &cvBlock{code: EmptyCode()}
		p.blocks[b] = bl
	}
	return bl
}

func (p *CoarseVector) first(b trace.Block) bool {
	if _, ok := p.seen[b]; ok {
		return false
	}
	p.seen[b] = struct{}{}
	return true
}

// Access implements core.Protocol.
func (p *CoarseVector) Access(r trace.Ref) event.Result {
	if int(r.CPU) >= p.ncpu {
		panic(fmt.Sprintf("directory: DirCV: cpu %d out of range [0,%d)", r.CPU, p.ncpu))
	}
	switch r.Kind {
	case trace.Instr:
		return event.Result{Type: event.Instr}
	case trace.Read:
		return p.read(r.CPU, r.Block())
	case trace.Write:
		return p.write(r.CPU, r.Block())
	}
	panic(fmt.Sprintf("directory: DirCV: invalid reference kind %d", r.Kind))
}

func (p *CoarseVector) read(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	if bl.holders.Has(c) {
		p.checker.ReadHit(c, b)
		return event.Result{Type: event.RdHit}
	}
	first := p.first(b)
	res := event.Result{Holders: bl.holders.Count()}
	switch {
	case bl.dirty:
		// The flush request is directed exactly (a dirty block's code
		// names one cache), so no invalidation message is counted; the
		// owner keeps a clean copy, as in DirNNB.
		res.Type = event.RdMissDirty
		res.WriteBack = true
		res.CacheSupply = true
		p.checker.WriteBack(bl.owner, b)
		p.checker.FillFromCache(c, bl.owner, b)
		bl.dirty = false
	case !bl.holders.Empty():
		res.Type = event.RdMissClean
		p.checker.FillFromMemory(c, b)
	case first:
		res.Type = event.RdMissFirst
		p.checker.FillFromMemory(c, b)
	default:
		res.Type = event.RdMissMem
		p.checker.FillFromMemory(c, b)
	}
	bl.holders = bl.holders.Add(c)
	bl.code = bl.code.Add(c)
	return res
}

func (p *CoarseVector) write(c uint8, b trace.Block) event.Result {
	bl := p.block(b)
	var res event.Result
	switch {
	case bl.dirty && bl.owner == c:
		res.Type = event.WrHitOwn
		p.checker.Write(c, b)
		return res
	case bl.holders.Has(c):
		res.Type = event.WrHitClean
		res.Holders = bl.holders.Del(c).Count()
		res.DirCheck = true
		res.Inval = p.invalidateNamed(bl, c, b)
		p.checker.Write(c, b)
	default:
		first := p.first(b)
		res.Holders = bl.holders.Count()
		switch {
		case bl.dirty:
			res.Type = event.WrMissDirty
			res.WriteBack = true
			res.CacheSupply = true
			res.Inval = 1
			p.Useful++
			p.checker.WriteBack(bl.owner, b)
			p.checker.FillFromCache(c, bl.owner, b)
			p.checker.Invalidate(bl.owner, b)
		case !bl.holders.Empty():
			res.Type = event.WrMissClean
			p.checker.FillFromMemory(c, b)
			res.Inval = p.invalidateNamed(bl, c, b)
		case first:
			res.Type = event.WrMissFirst
			p.checker.FillFromMemory(c, b)
		default:
			res.Type = event.WrMissMem
			p.checker.FillFromMemory(c, b)
		}
		p.checker.Write(c, b)
	}
	bl.holders = 0
	bl.holders = bl.holders.Add(c)
	bl.dirty = true
	bl.owner = c
	bl.code = CodeOf(c)
	return res
}

// invalidateNamed sends invalidations to every cache the code names except
// the writer, counting useful and wasted messages, and clears the victims
// from the holder set.
func (p *CoarseVector) invalidateNamed(bl *cvBlock, writer uint8, b trace.Block) int {
	sent := 0
	for _, v := range bl.code.Members(p.ncpu, nil) {
		if v == writer {
			continue
		}
		sent++
		if bl.holders.Has(v) {
			p.Useful++
			p.checker.Invalidate(v, b)
			bl.holders = bl.holders.Del(v)
		} else {
			p.Wasted++
		}
	}
	return sent
}

// CheckInvariants implements core.Protocol: the code must always cover the
// holder set, and dirty blocks must have a single holder.
func (p *CoarseVector) CheckInvariants() error {
	for b, bl := range p.blocks {
		if err := bl.code.Validate(); err != nil {
			return err
		}
		for _, h := range bl.holders.Members(nil) {
			if !bl.code.Covers(h) {
				return fmt.Errorf("directory: block %#x holder %d not covered by code %s", b, h, bl.code)
			}
		}
		if bl.dirty && !bl.holders.Only(bl.owner) {
			return fmt.Errorf("directory: block %#x dirty with holders %b", b, bl.holders)
		}
	}
	if p.checker != nil {
		return p.checker.Err()
	}
	return nil
}

// Overshoot returns the fraction of invalidation messages that were
// wasted on caches holding no copy (0 when no invalidations were sent).
func (p *CoarseVector) Overshoot() float64 {
	total := p.Wasted + p.Useful
	if total == 0 {
		return 0
	}
	return float64(p.Wasted) / float64(total)
}

var _ core.Protocol = (*CoarseVector)(nil)
var _ core.CheckerSetter = (*CoarseVector)(nil)
