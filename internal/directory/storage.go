// Package directory models the *storage organizations* of directory
// entries discussed throughout the paper: Tang's duplicate-tag directory,
// the Censier–Feautrier full bit map, Archibald–Baer's two state bits, the
// limited-pointer entries of the Dir_i taxonomy, and the Section 6 coarse
// ternary-digit code that names a superset of holders in 2·log2(n) bits.
//
// The protocol engines in internal/core decide *when* invalidations
// happen; this package answers the orthogonal questions of how many bits
// each organization needs per block and — for the coarse code — how many
// unnecessary invalidations its imprecision causes. CoarseVector in this
// package is a full core.Protocol so the overshoot can be measured on real
// traces.
package directory

import (
	"fmt"
	"math/bits"
	"strings"
)

// log2Ceil returns ceil(log2(n)) for n >= 1.
func log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Spec is a concrete directory-entry layout description.
type Spec struct {
	// Name identifies the layout ("full-map", "ptr(2)+B", ...).
	Name string
	// Precise reports whether the layout always identifies the exact
	// holder set.
	Precise bool
	// BitsPerEntry returns per-block directory storage for ncpu caches.
	BitsPerEntry func(ncpu int) int
}

// FullMap is the Censier–Feautrier organization: one valid bit per cache
// plus a dirty bit (DirNNB).
func FullMap() Spec {
	return Spec{
		Name:         "full-map",
		Precise:      true,
		BitsPerEntry: func(ncpu int) int { return ncpu + 1 },
	}
}

// TwoBit is the Archibald–Baer organization (Dir0B): two state bits
// encoding uncached / clean-exactly-one / clean-unknown / dirty-one.
func TwoBit() Spec {
	return Spec{
		Name:         "two-bit",
		Precise:      false,
		BitsPerEntry: func(int) int { return 2 },
	}
}

// LimitedPointer is the Dir_i organization: i pointers of log2(n) bits, a
// dirty bit, and a broadcast bit when the scheme falls back to broadcast
// (DiriB) rather than limiting copies (DiriNB).
func LimitedPointer(i int, broadcast bool) Spec {
	name := fmt.Sprintf("ptr(%d)", i)
	if broadcast {
		name += "+B"
	}
	return Spec{
		Name:    name,
		Precise: false,
		BitsPerEntry: func(ncpu int) int {
			b := i*log2Ceil(ncpu) + 1
			if broadcast {
				b++
			}
			// A pointer-count field distinguishes how many
			// pointers are live.
			b += log2Ceil(i + 1)
			return b
		},
	}
}

// CoarseCode is the Section 6 ternary-digit organization: log2(n) digits,
// each 0, 1, or "both", coded in 2 bits per digit, plus a dirty bit. It
// names a superset of the caches holding the block.
func CoarseCode() Spec {
	return Spec{
		Name:         "coarse-2logn",
		Precise:      false,
		BitsPerEntry: func(ncpu int) int { return 2*log2Ceil(ncpu) + 1 },
	}
}

// TangDuplicate is Tang's organization: the directory is a copy of every
// cache's tag store. Storage is per cache *line* rather than per memory
// block, so BitsPerEntry reports the equivalent per-block cost for a
// machine whose caches together hold cacheLinesPerCPU lines per CPU out of
// memBlocks memory blocks: (ncpu · lines · (tag+dirty)) / memBlocks.
// Because the cost structure is so different, Tang appears only in the
// storage comparison, via TangBits.
func TangBits(ncpu, cacheLinesPerCPU, memBlocks, tagBits int) float64 {
	if memBlocks <= 0 {
		return 0
	}
	total := float64(ncpu) * float64(cacheLinesPerCPU) * float64(tagBits+1)
	return total / float64(memBlocks)
}

// StandardSpecs returns the organizations compared in the Section 6
// discussion, with i-pointer entries for the given i values.
func StandardSpecs(ptrCounts ...int) []Spec {
	specs := []Spec{FullMap(), TwoBit(), CoarseCode()}
	for _, i := range ptrCounts {
		specs = append(specs, LimitedPointer(i, true), LimitedPointer(i, false))
	}
	return specs
}

// StorageTable renders per-entry bits for each spec across machine sizes.
func StorageTable(specs []Spec, cpuCounts []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s", "organization")
	for _, n := range cpuCounts {
		fmt.Fprintf(&b, " %6d", n)
	}
	b.WriteString("  (bits/entry by cpu count)\n")
	for _, s := range specs {
		fmt.Fprintf(&b, "%-14s", s.Name)
		for _, n := range cpuCounts {
			fmt.Fprintf(&b, " %6d", s.BitsPerEntry(n))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
