package directory

import (
	"testing"
	"testing/quick"
)

func TestEmptyCode(t *testing.T) {
	k := EmptyCode()
	if k.Covers(0) || k.Covers(63) {
		t.Error("empty code covers a cache")
	}
	if k.Count(16) != 0 {
		t.Errorf("empty count = %d", k.Count(16))
	}
	if got := k.Members(8, nil); len(got) != 0 {
		t.Errorf("empty members = %v", got)
	}
	if k.String() != "<empty>" {
		t.Errorf("String = %q", k.String())
	}
}

func TestCodeOfSingle(t *testing.T) {
	for c := uint8(0); c < 16; c++ {
		k := CodeOf(c)
		if !k.Covers(c) {
			t.Errorf("CodeOf(%d) does not cover %d", c, c)
		}
		if k.Count(16) != 1 {
			t.Errorf("CodeOf(%d) names %d caches", c, k.Count(16))
		}
	}
}

func TestCodeAddCoversAll(t *testing.T) {
	k := EmptyCode().Add(1).Add(2)
	for _, c := range []uint8{1, 2} {
		if !k.Covers(c) {
			t.Errorf("code misses member %d", c)
		}
	}
	// 1 = 001, 2 = 010: two differing digits, so the code covers 0..3.
	if k.Count(8) != 4 {
		t.Errorf("count = %d, want 4", k.Count(8))
	}
}

func TestCodeAddOnEmpty(t *testing.T) {
	k := EmptyCode().Add(5)
	if !k.Covers(5) || k.Count(16) != 1 {
		t.Error("Add on empty should name exactly the added cache")
	}
}

func TestCodeSupersetProperty(t *testing.T) {
	// The defining property: the code of any member set covers every
	// member, and its size is a power of two bounded by the machine.
	f := func(members []uint8, nExp uint8) bool {
		n := 1 << (1 + nExp%6) // machine sizes 2..64
		k := EmptyCode()
		seen := map[uint8]bool{}
		for _, m := range members {
			m %= uint8(n)
			k = k.Add(m)
			seen[m] = true
		}
		if k.Validate() != nil {
			return false
		}
		for m := range seen {
			if !k.Covers(m) {
				return false
			}
		}
		count := k.Count(n)
		if count < len(seen) || count > n {
			return false
		}
		// Count must agree with Members.
		return count == len(k.Members(n, nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCodeCountNonPowerOfTwoMachine(t *testing.T) {
	// With 6 caches, the code for {0,4} wildcards digit 2 covering
	// {0,4}; adding 5 wildcards digit 0 too: {0,1,4,5}, all below 6.
	k := EmptyCode().Add(0).Add(4).Add(5)
	if got := k.Count(6); got != 4 {
		t.Errorf("Count(6) = %d, want 4", got)
	}
	// For {3,7} with n=6: code covers {3,7} but 7 doesn't exist.
	k = EmptyCode().Add(3).Add(7)
	if got := k.Count(6); got != 1 {
		t.Errorf("Count(6) = %d, want 1 (only cache 3 exists)", got)
	}
}

func TestCodeString(t *testing.T) {
	k := EmptyCode().Add(1).Add(3) // 001 and 011: digit 1 wild
	s := k.String()
	if s != "000000*1" {
		t.Errorf("String = %q", s)
	}
}

func TestCodeValidate(t *testing.T) {
	bad := Code{value: 1, wild: 1}
	if bad.Validate() == nil {
		t.Error("overlapping value/wild bits should be invalid")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 64: 6, 65: 7, 256: 8}
	for n, want := range cases {
		if got := log2Ceil(n); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", n, got, want)
		}
	}
}
