package directory

import (
	"fmt"
	"math/bits"
)

// Code is the Section 6 coarse ternary-digit encoding of a set of cache
// indices: a word of d = log2(n) digits, each of which is 0, 1, or "both".
// If every digit is 0/1 the code names exactly one cache; each "both"
// digit doubles the set named. The code of a holder set is the smallest
// such pattern covering every member — a superset, so invalidating every
// named cache is always safe, at the cost of some unnecessary messages.
//
// The representation uses two bitmasks over digit positions: value[i] is
// the digit's bit value where fixed, and wild marks "both" digits.
type Code struct {
	value uint32 // digit values at fixed positions
	wild  uint32 // positions coded "both"
	empty bool   // no cache named at all
}

// EmptyCode returns the code naming no caches.
func EmptyCode() Code { return Code{empty: true} }

// CodeOf returns the code naming exactly cache c.
func CodeOf(c uint8) Code { return Code{value: uint32(c)} }

// Add returns the smallest code covering both the current set and cache c.
func (k Code) Add(c uint8) Code {
	if k.empty {
		return CodeOf(c)
	}
	diff := (k.value ^ uint32(c)) &^ k.wild
	k.wild |= diff
	k.value &^= diff
	return k
}

// Covers reports whether the code names cache c.
func (k Code) Covers(c uint8) bool {
	if k.empty {
		return false
	}
	return (k.value^uint32(c))&^k.wild == 0
}

// Count returns how many caches of an n-cache machine the code names.
// n must be a power of two for the digit encoding to be exact; other
// machine sizes are handled by clipping to n.
func (k Code) Count(n int) int {
	if k.empty {
		return 0
	}
	d := log2Ceil(n)
	relevant := k.wild & (1<<uint(d) - 1)
	c := 1 << uint(bits.OnesCount32(relevant))
	// Clip: with non-power-of-two n some named indices do not exist.
	if c > n {
		c = n
	}
	// Count precisely when clipping may matter.
	if c == n || n&(n-1) != 0 {
		precise := 0
		for i := 0; i < n; i++ {
			if k.Covers(uint8(i)) {
				precise++
			}
		}
		return precise
	}
	return c
}

// Members appends all cache indices below n that the code names.
func (k Code) Members(n int, dst []uint8) []uint8 {
	for i := 0; i < n; i++ {
		if k.Covers(uint8(i)) {
			dst = append(dst, uint8(i))
		}
	}
	return dst
}

// String renders the code most-significant digit first for d digits
// covering machines up to 256 caches.
func (k Code) String() string {
	if k.empty {
		return "<empty>"
	}
	const d = 8
	out := make([]byte, d)
	for i := 0; i < d; i++ {
		pos := uint(d - 1 - i)
		switch {
		case k.wild>>pos&1 == 1:
			out[i] = '*'
		case k.value>>pos&1 == 1:
			out[i] = '1'
		default:
			out[i] = '0'
		}
	}
	return string(out)
}

// Validate checks internal consistency (wild and value bits must not
// overlap).
func (k Code) Validate() error {
	if k.value&k.wild != 0 {
		return fmt.Errorf("directory: code has value bits at wild positions: %s", k)
	}
	return nil
}
