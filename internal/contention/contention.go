// Package contention adds what the paper's bus-cycles metric deliberately
// leaves out: queueing. The paper's Section 5 estimate ("15 effective
// processors") divides bus capacity by average demand, an optimistic bound
// because processors stall while the bus serves others. This package
// replays a protocol's event stream through a first-order timing
// simulation — each processor alternates think time and bus transactions,
// the bus serves one transaction at a time — and reports the achieved
// utilization, waiting time, and effective parallelism.
//
// Arbitration follows trace order: the trace's fine-grained interleaving
// stands in for arrival order, which is exact when processors proceed at
// similar rates and first-order otherwise (the same spirit as the paper's
// other models).
package contention

import (
	"fmt"

	"dirsim/internal/bus"
	"dirsim/internal/core"
	"dirsim/internal/trace"
)

// Config parameterizes the timing model. All times are in bus cycles.
type Config struct {
	// ThinkCycles is the processor time per memory reference that does
	// not use the bus (cache hit plus pipeline work). The paper's
	// system — a 10-MIPS processor against a 100ns bus, two references
	// per instruction — gives 0.5 bus cycles per reference.
	ThinkCycles float64
	// Model prices each reference's bus occupancy.
	Model bus.Model
}

// PaperConfig returns the Section 5 system: 0.5 think cycles per
// reference on the pipelined bus.
func PaperConfig() Config {
	return Config{ThinkCycles: 0.5, Model: bus.Pipelined()}
}

// Stats reports the outcome of a contention simulation.
type Stats struct {
	// CPUs is the machine size; Refs the references replayed.
	CPUs int
	Refs int64
	// Span is the makespan: the time the last processor finishes.
	Span float64
	// BusBusy is the total time the bus was held; Utilization is
	// BusBusy / Span.
	BusBusy float64
	// Wait is total processor time spent queued for the bus.
	Wait float64
	// AloneTime is the summed per-processor completion time had each
	// run with a private bus (no queueing).
	AloneTime float64
}

// Utilization returns the bus duty cycle over the run.
func (s Stats) Utilization() float64 {
	if s.Span == 0 {
		return 0
	}
	return s.BusBusy / s.Span
}

// EffectiveProcessors returns the achieved parallelism: the work of
// AloneTime compressed into Span. It equals CPUs when the bus never
// queues and degrades toward bus-bound throughput as it saturates.
func (s Stats) EffectiveProcessors() float64 {
	if s.Span == 0 {
		return 0
	}
	return s.AloneTime / s.Span
}

// WaitPerTransaction returns mean queueing delay per bus transaction.
func (s Stats) WaitPerTransaction(transactions int64) float64 {
	if transactions == 0 {
		return 0
	}
	return s.Wait / float64(transactions)
}

// String summarizes the run.
func (s Stats) String() string {
	return fmt.Sprintf("%d CPUs: span %.0f cycles, bus %.1f%% busy, %.2f effective processors",
		s.CPUs, s.Span, 100*s.Utilization(), s.EffectiveProcessors())
}

// Simulate replays the trace through the protocol with the timing model.
// The protocol engine must match the trace's CPU count (as in sim).
func Simulate(t *trace.Trace, p core.Protocol, cfg Config) (Stats, int64, error) {
	if t.CPUs > p.CPUs() {
		return Stats{}, 0, fmt.Errorf("contention: trace has %d CPUs, engine %d", t.CPUs, p.CPUs())
	}
	if cfg.ThinkCycles < 0 {
		return Stats{}, 0, fmt.Errorf("contention: negative think time")
	}
	stats := Stats{CPUs: t.CPUs}
	clock := make([]float64, t.CPUs) // per-CPU local time
	alone := make([]float64, t.CPUs) // per-CPU time with a private bus
	var busFree float64              // when the bus next becomes idle
	var transactions int64
	for _, r := range t.Refs {
		res := p.Access(r)
		c := r.CPU
		stats.Refs++
		clock[c] += cfg.ThinkCycles
		alone[c] += cfg.ThinkCycles
		cost, txn := cfg.Model.Cost(res)
		if !txn {
			continue
		}
		transactions++
		d := cost.Total()
		alone[c] += d
		req := clock[c]
		start := req
		if busFree > start {
			start = busFree
		}
		stats.Wait += start - req
		clock[c] = start + d
		busFree = start + d
		stats.BusBusy += d
	}
	for c := 0; c < t.CPUs; c++ {
		if clock[c] > stats.Span {
			stats.Span = clock[c]
		}
		stats.AloneTime += alone[c]
	}
	return stats, transactions, nil
}

// RunScheme is a convenience wrapper: build the named scheme for the
// trace and simulate under the configuration.
func RunScheme(scheme string, t *trace.Trace, cfg Config) (Stats, int64, error) {
	p, err := core.NewByName(scheme, t.CPUs)
	if err != nil {
		return Stats{}, 0, err
	}
	return Simulate(t, p, cfg)
}
