package contention

import (
	"math"
	"strings"
	"testing"

	"dirsim/internal/bus"
	"dirsim/internal/core"
	"dirsim/internal/workload"
)

func TestSimulateValidation(t *testing.T) {
	tr := workload.PingPong(100) // 2 CPUs
	p := core.NewDir0B(1)
	if _, _, err := Simulate(tr, p, PaperConfig()); err == nil {
		t.Error("undersized engine accepted")
	}
	cfg := PaperConfig()
	cfg.ThinkCycles = -1
	if _, _, err := Simulate(tr, core.NewDir0B(2), cfg); err == nil {
		t.Error("negative think time accepted")
	}
}

func TestNoBusTrafficMeansNoContention(t *testing.T) {
	// Purely private data after warm-up: the bus is nearly idle, so the
	// effective parallelism approaches the CPU count.
	tr := workload.Private(4, 64, 40_000)
	s, _, err := RunScheme("Dir0B", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.EffectiveProcessors() < 3.5 {
		t.Errorf("private workload should parallelize: %.2f effective", s.EffectiveProcessors())
	}
	if s.Utilization() > 0.2 {
		t.Errorf("bus should be mostly idle: %.2f", s.Utilization())
	}
}

func TestSingleCPUMatchesAloneTime(t *testing.T) {
	tr := workload.Private(1, 32, 5_000)
	s, _, err := RunScheme("Dir0B", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Span-s.AloneTime) > 1e-6 {
		t.Errorf("one CPU never waits: span %v vs alone %v", s.Span, s.AloneTime)
	}
	if s.Wait != 0 {
		t.Errorf("wait = %v on a single CPU", s.Wait)
	}
	if got := s.EffectiveProcessors(); math.Abs(got-1) > 1e-9 {
		t.Errorf("effective processors = %v, want 1", got)
	}
}

func TestSaturationDegradesParallelism(t *testing.T) {
	// WTI floods the bus with write-throughs; Dragon barely uses it. On
	// the same trace WTI must achieve less effective parallelism.
	tr := workload.POPS(4, 60_000)
	wti, _, err := RunScheme("WTI", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	dragon, _, err := RunScheme("Dragon", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if wti.EffectiveProcessors() >= dragon.EffectiveProcessors() {
		t.Errorf("WTI %.2f should trail Dragon %.2f",
			wti.EffectiveProcessors(), dragon.EffectiveProcessors())
	}
	if wti.Utilization() <= dragon.Utilization() {
		t.Error("WTI should load the bus harder")
	}
}

func TestUtilizationBounded(t *testing.T) {
	tr := workload.THOR(8, 40_000)
	s, txns, err := RunScheme("Dir0B", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if u := s.Utilization(); u <= 0 || u > 1+1e-9 {
		t.Errorf("utilization out of range: %v", u)
	}
	if s.EffectiveProcessors() > float64(s.CPUs)+1e-9 {
		t.Errorf("effective processors %v exceed machine size", s.EffectiveProcessors())
	}
	if s.WaitPerTransaction(txns) < 0 {
		t.Error("negative wait")
	}
	if s.WaitPerTransaction(0) != 0 {
		t.Error("division guard missing")
	}
}

func TestContentionBelowOptimisticBound(t *testing.T) {
	// The queueing simulation can never beat the paper's no-contention
	// bound computed from the same demand.
	tr := workload.POPS(8, 60_000)
	s, _, err := RunScheme("Dir0B", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	demandPerRef := s.BusBusy / float64(s.Refs)
	bound := (PaperConfig().ThinkCycles + demandPerRef) / demandPerRef
	if s.EffectiveProcessors() > bound+1e-6 {
		t.Errorf("simulation %.2f beat the analytic bound %.2f",
			s.EffectiveProcessors(), bound)
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := workload.PingPong(2_000)
	a, _, err := RunScheme("Dir0B", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunScheme("Dir0B", tr, PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("replay is not deterministic")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{CPUs: 4, Span: 100, BusBusy: 50, AloneTime: 300}
	out := s.String()
	for _, want := range []string{"4 CPUs", "50.0%", "3.00 effective"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
	var zero Stats
	if zero.Utilization() != 0 || zero.EffectiveProcessors() != 0 {
		t.Error("zero stats should report zeros")
	}
}

func TestCustomModel(t *testing.T) {
	// A free bus model: everything is think time, no contention.
	free := bus.Model{Name: "free"}
	tr := workload.PingPong(1_000)
	s, txns, err := RunScheme("Dir0B", tr, Config{ThinkCycles: 1, Model: free})
	if err != nil {
		t.Fatal(err)
	}
	if txns != 0 || s.BusBusy != 0 {
		t.Errorf("free model should produce no transactions: %d, %v", txns, s.BusBusy)
	}
}
